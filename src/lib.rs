//! # rvf — workspace facade
//!
//! Umbrella crate for the reproduction of *Extracting Analytical
//! Nonlinear Models from Analog Circuits by Recursive Vector Fitting of
//! Transfer Function Trajectories* (De Jonghe, Deschrijver, Dhaene,
//! Gielen — DATE 2013).
//!
//! This package exists to host the workspace-level integration tests
//! (`tests/`) and the runnable examples (`examples/`); it re-exports the
//! member crates so downstream users can depend on a single crate:
//!
//! | re-export | crate | role |
//! |---|---|---|
//! | [`numerics`] | `rvf-numerics` | dense LU/QR/eig kernels, complex arithmetic |
//! | [`vecfit`] | `rvf-vecfit` | common-pole (relaxed) vector fitting |
//! | [`circuit`] | `rvf-circuit` | MNA simulator with Jacobian snapshot capture |
//! | [`tft`] | `rvf-tft` | transfer-function-trajectory datasets |
//! | [`caffeine`] | `rvf-caffeine` | CAFFEINE GP baseline (paper Table I) |
//! | [`model`] | `rvf-core` | the RVF extraction pipeline + Hammerstein models |
//! | [`serve`] | `rvf-serve` | fault-tolerant serving tier: registry, scheduler, chaos harness |
//! | [`validate`] | `rvf-validate` | circuit zoo + accuracy-contract gate |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use rvf_caffeine as caffeine;
pub use rvf_circuit as circuit;
pub use rvf_core as model;
pub use rvf_numerics as numerics;
pub use rvf_serve as serve;
pub use rvf_tft as tft;
pub use rvf_validate as validate;
pub use rvf_vecfit as vecfit;
