//! Streaming an extracted model chunk by chunk: open resumable
//! sessions on one compiled buffer macromodel, feed inputs as they
//! "arrive", checkpoint mid-stream, and advance many live sessions in
//! lockstep — the model-serving service tier.
//!
//! ```sh
//! cargo run --release --example streaming_serving
//! ```

use std::time::Instant;

use rvf::circuit::{high_speed_buffer, prbs7, BufferParams, Waveform};
use rvf::model::{extract_model, RvfOptions};
use rvf::numerics::SweepPool;
use rvf::tft::TftConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Extract and compile the model once (paper §IV setup).
    let train =
        Waveform::Sine { offset: 0.9, amplitude: 0.5, freq_hz: 1.0e5, phase_rad: 0.0, delay: 0.0 };
    let mut buffer = high_speed_buffer(&BufferParams::default(), train);
    let tft_cfg = TftConfig {
        f_min_hz: 1.0,
        f_max_hz: 1.0e10,
        n_freqs: 60,
        t_train: 1.0e-5,
        steps: 2000,
        n_snapshots: 100,
        embed_depth: 1,
        threads: 0,
    };
    let opts = RvfOptions { epsilon: 1e-4, max_state_poles: 20, ..Default::default() };
    println!("extracting the buffer model…");
    let (report, _dataset, _train) = extract_model(&mut buffer, &tft_cfg, &opts)?;
    let sim = report.model.compile();

    // 2. One live input stream, served in 64-sample chunks. The session
    //    carries the block state across chunk boundaries, so the result
    //    is bit-identical to evaluating the whole stimulus at once.
    let dt = 2.0e-12;
    let wave = Waveform::BitPattern {
        v0: 0.5,
        v1: 1.3,
        bits: prbs7(1, 40),
        rate_hz: 2.5e9,
        rise: 60e-12,
        delay: 0.0,
    };
    let stream: Vec<f64> = (0..65_536).map(|i| wave.value(i as f64 * dt)).collect();

    let mut session = sim.session(dt)?;
    let mut out = vec![0.0; 64];
    let mut streamed = Vec::with_capacity(stream.len());
    let start = Instant::now();
    for chunk in stream.chunks(64) {
        // feed_into reuses the caller's buffer: no allocation per chunk.
        session.feed_into(chunk, &mut out[..chunk.len()])?;
        streamed.extend_from_slice(&out[..chunk.len()]);
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "streamed {} samples in 64-sample chunks: {:.1} ms ({:.2} Msamples/s)",
        stream.len(),
        secs * 1e3,
        stream.len() as f64 / secs / 1e6
    );
    let one_shot = sim.simulate(dt, &stream);
    assert!(streamed.iter().zip(&one_shot).all(|(a, b)| a.to_bits() == b.to_bits()));
    println!("chunked output is bit-identical to the one-shot call");

    // 3. Checkpoint / resume: clone the state mid-stream, park it, and
    //    continue later from exactly the same point.
    let mut session = sim.session(dt)?;
    let head = session.feed(&stream[..32_768])?;
    let checkpoint = session.checkpoint();
    println!("checkpointed after {} samples", checkpoint.samples());
    let mut resumed = sim.session_from(dt, checkpoint)?;
    let tail = resumed.feed(&stream[32_768..])?;
    assert!(head.iter().chain(&tail).zip(&one_shot).all(|(a, b)| a.to_bits() == b.to_bits()));
    println!("resumed session reproduced the stream bit-for-bit");

    // 4. A SessionSet advances many live sessions at once: equal-length
    //    pending chunks share lockstep lanes, and lane groups fan over a
    //    persistent worker pool. Worker failures come back as typed
    //    errors (ServingError), never panics.
    let pool = SweepPool::new(0);
    let mut set = sim.sessions(dt)?;
    let ids: Vec<_> = (0..48).map(|_| set.open()).collect();
    let start = Instant::now();
    let mut served = 0usize;
    for round in 0..16 {
        for (k, id) in ids.iter().enumerate() {
            // Sessions drift apart in chunk size, as real traffic would.
            let n = 192 + 32 * ((k + round) % 3);
            let off = (round * 256) % (stream.len() - n);
            set.push(*id, &stream[off..off + n])?;
        }
        for (_, out) in set.advance_in(&pool)? {
            served += out.len();
        }
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "session set: {} sessions, {} samples in {:.1} ms ({:.2} Msamples/s, {} pool sweeps)",
        ids.len(),
        served,
        secs * 1e3,
        served as f64 / secs / 1e6,
        pool.sweeps()
    );
    Ok(())
}
