//! From SPICE netlist text to analytical equations — the paper's
//! automation claim, end to end: parse, simulate, extract, report.
//!
//! ```sh
//! cargo run --release -p rvf-core --example netlist_to_model
//! ```

use rvf_circuit::parse_netlist;
use rvf_core::{fit_tft, RvfOptions};
use rvf_tft::{extract_from_circuit, TftConfig};

const NETLIST: &str = "\
* Nonlinear RC chain with a diode load
Vin in 0 SINE(0.6 0.55 100k)
R1  in  a   2k
C1  a   0   40p
R2  a   out 1k
D1  out 0   IS=1e-13 N=1.1
C2  out 0   80p
RL  out 0   5k
.input Vin
.output out
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut circuit = parse_netlist(NETLIST)?;
    println!("parsed netlist: {} devices, {} nodes", circuit.n_devices(), circuit.n_nodes());

    let cfg = TftConfig {
        f_min_hz: 1.0e2,
        f_max_hz: 1.0e8,
        n_freqs: 40,
        t_train: 1.0e-5,
        steps: 1200,
        n_snapshots: 90,
        embed_depth: 1,
        threads: 4,
    };
    let (dataset, _train) = extract_from_circuit(&mut circuit, &cfg)?;
    println!("TFT: {} states x {} freqs", dataset.n_states(), dataset.n_freqs());

    let report = fit_tft(&dataset, &RvfOptions { epsilon: 1e-3, ..Default::default() })?;
    println!(
        "model: {} freq poles (err {:.2e}), state poles {:?}",
        report.diagnostics.n_freq_poles,
        report.diagnostics.freq_rel_error,
        report.diagnostics.state_pole_counts
    );

    // Show the extracted static transfer curve — the nonlinearity the
    // diode imprints on the DC path.
    println!("--- static transfer curve y_s(u) ---");
    for i in 0..=10 {
        let u = 0.05 + 0.11 * i as f64;
        println!("u = {:5.2} V  ->  y_s = {:7.4} V", u, report.model.static_output(u));
    }
    Ok(())
}
