//! Export the extracted analytical equations: text round-trip,
//! Verilog-A and MATLAB code generation (the paper exports VHDL-AMS).
//!
//! ```sh
//! cargo run --release -p rvf-core --example model_export
//! ```

use rvf_circuit::{rc_ladder, Waveform};
use rvf_core::{extract_model, text, to_matlab, to_verilog_a, RvfOptions};
use rvf_tft::TftConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A second-order RC chain keeps the generated code readable.
    let train =
        Waveform::Sine { offset: 0.5, amplitude: 0.4, freq_hz: 2.0e4, phase_rad: 0.0, delay: 0.0 };
    let mut circuit = rc_ladder(2, 1.0e3, 1.0e-9, train);
    let cfg = TftConfig {
        f_min_hz: 1.0e3,
        f_max_hz: 1.0e7,
        n_freqs: 40,
        t_train: 5.0e-5,
        steps: 800,
        n_snapshots: 60,
        embed_depth: 1,
        threads: 2,
    };
    let opts = RvfOptions { epsilon: 1e-4, ..Default::default() };
    let (report, ..) = extract_model(&mut circuit, &cfg, &opts)?;
    let model = &report.model;

    println!("===== text serialization (lossless, versioned) =====");
    let encoded = text::encode(model);
    println!("{encoded}");
    let decoded = text::decode(&encoded)?;
    assert_eq!(&decoded, model);
    println!("round-trip: exact ✓");

    println!("===== Verilog-A module =====");
    println!("{}", to_verilog_a(model, "rc_chain_rvf"));

    println!("===== MATLAB function =====");
    println!("{}", to_matlab(model, "rc_chain_rvf"));
    Ok(())
}
