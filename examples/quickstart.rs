//! Quickstart: extract an analytical model from a small nonlinear
//! circuit and validate it on a fresh stimulus.
//!
//! ```sh
//! cargo run --release -p rvf-core --example quickstart
//! ```

use rvf_circuit::{dc_operating_point, diode_clipper, transient, DcOptions, TranOptions, Waveform};
use rvf_core::{extract_model, time_domain_report, RvfOptions};
use rvf_tft::TftConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A nonlinear circuit: resistively loaded diode clipper, driven
    //    hard enough to clip.
    let train =
        Waveform::Sine { offset: 0.0, amplitude: 1.2, freq_hz: 1.0e5, phase_rad: 0.0, delay: 0.0 };
    let mut circuit = diode_clipper(train);
    println!("circuit: {} devices", circuit.n_devices());

    // 2. Extract: one training period, 80 snapshots, automatic pole
    //    counts against epsilon.
    let tft_cfg = TftConfig {
        f_min_hz: 1.0e2,
        f_max_hz: 1.0e8,
        n_freqs: 40,
        t_train: 1.0e-5,
        steps: 1000,
        n_snapshots: 80,
        embed_depth: 1,
        threads: 4,
    };
    let opts = RvfOptions { epsilon: 1e-3, ..Default::default() };
    let (report, dataset, _train) = extract_model(&mut circuit, &tft_cfg, &opts)?;
    println!(
        "extracted model: {} frequency poles (rel err {:.2e}), static path {} state poles",
        report.diagnostics.n_freq_poles,
        report.diagnostics.freq_rel_error,
        report.diagnostics.static_pole_count,
    );
    println!("TFT dataset: {} states x {} freqs", dataset.n_states(), dataset.n_freqs());
    println!("build time: {:.2} s", report.build_seconds);

    // 3. Validate on a different waveform.
    let test =
        Waveform::Sine { offset: 0.2, amplitude: 0.9, freq_hz: 2.5e5, phase_rad: 1.0, delay: 0.0 };
    let mut test_ckt = diode_clipper(test);
    let op = dc_operating_point(&mut test_ckt, &DcOptions::default())?;
    let dt = 5.0e-9;
    let tran =
        transient(&mut test_ckt, &op, &TranOptions { dt, t_stop: 2.0e-5, ..Default::default() })?;
    let y_model = report.model.simulate(dt, &tran.inputs);
    let rep = time_domain_report(&tran.outputs, &y_model);
    println!(
        "validation: nrmse = {:.4} ({:.1} dB), max abs err = {:.4} V",
        rep.nrmse, rep.nrmse_db, rep.max_abs
    );
    Ok(())
}
