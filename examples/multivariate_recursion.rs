//! The general RVF recursion (paper §III-B, eq. 16): residues that
//! depend on several state variables are fitted level by level, and the
//! innermost variable still integrates in closed form (eq. 18).
//!
//! The paper's buffer experiment needs only `q = 1`; this example
//! demonstrates the `q = 2` machinery on a gridded bivariate surface of
//! the kind a two-tap delay embedding `x = (u(t), u(t−Δ))` produces.
//!
//! ```sh
//! cargo run --release -p rvf-core --example multivariate_recursion
//! ```

use rvf_core::{fit_recursive_2d, RvfOptions};
use rvf_numerics::linspace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A non-separable smooth residue surface over (x1, x2).
    let truth = |a: f64, b: f64| (1.0 + 0.4 * b) / (1.0 + (a + 0.5 * b) * (a + 0.5 * b));
    let x1 = linspace(-1.0, 1.0, 41);
    let x2 = linspace(-1.0, 1.0, 41);
    let values: Vec<Vec<f64>> =
        x1.iter().map(|&a| x2.iter().map(|&b| truth(a, b)).collect()).collect();

    let opts = RvfOptions { epsilon: 1e-4, max_state_poles: 16, ..Default::default() };
    let model = fit_recursive_2d(&x1, &x2, &values, &opts)?;
    let (p2, p1) = model.pole_counts();
    println!("recursive fit: {p2} poles in x2, up to {p1} poles in x1 per coefficient");

    // Accuracy over the grid.
    let mut rms = 0.0;
    let mut n = 0;
    for &a in &x1 {
        for &b in &x2 {
            let e = model.eval(a, b) - truth(a, b);
            rms += e * e;
            n += 1;
        }
    }
    println!("surface rms error: {:.3e}", (rms / n as f64).sqrt());

    // The paper's automation claim carries over: the partial integral
    // over the innermost variable is closed-form (log base functions).
    println!("closed-form partial integrals I(x2) = ∫_{{-1}}^{{1}} f dx1:");
    for &b in &[-0.8, 0.0, 0.8] {
        let analytic = model.integral_x1(1.0, b) - model.integral_x1(-1.0, b);
        // Dense quadrature reference.
        let steps = 20_000;
        let h = 2.0 / steps as f64;
        let numeric: f64 = (0..steps)
            .map(|i| {
                let a = -1.0 + i as f64 * h;
                0.5 * h * (truth(a, b) + truth(a + h, b))
            })
            .sum();
        println!(
            "  x2 = {b:>4.1}: analytic {analytic:.6} vs quadrature {numeric:.6} (diff {:.1e})",
            (analytic - numeric).abs()
        );
    }
    Ok(())
}
