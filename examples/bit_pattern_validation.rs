//! Fig. 9 of the paper: validate the extracted buffer model on a
//! spectrally rich 2.5 GS/s bit pattern it never saw during training,
//! and measure the simulation speedup (Table I).
//!
//! ```sh
//! cargo run --release -p rvf-core --example bit_pattern_validation
//! ```

use rvf_circuit::{
    dc_operating_point, high_speed_buffer, prbs7, transient, BufferParams, DcOptions, TranOptions,
    Waveform,
};
use rvf_core::{extract_model, measure_speedup, time_domain_report, RvfOptions};
use rvf_tft::TftConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train on the sine (as in the paper).
    let train =
        Waveform::Sine { offset: 0.9, amplitude: 0.5, freq_hz: 1.0e5, phase_rad: 0.0, delay: 0.0 };
    let mut buffer = high_speed_buffer(&BufferParams::default(), train);
    let tft_cfg = TftConfig::default();
    let opts = RvfOptions { epsilon: 1e-4, max_state_poles: 20, ..Default::default() };
    let (report, ..) = extract_model(&mut buffer, &tft_cfg, &opts)?;
    println!(
        "model: {} freq poles, freq err {:.2e}",
        report.diagnostics.n_freq_poles, report.diagnostics.freq_rel_error
    );

    // Test on a PRBS-7 bit pattern at 2.5 GS/s.
    let wave = Waveform::BitPattern {
        v0: 0.5,
        v1: 1.3,
        bits: prbs7(0x2f, 20),
        rate_hz: 2.5e9,
        rise: 60e-12,
        delay: 0.0,
    };
    let dt = 2.0e-12;
    let t_stop = 8.0e-9;
    let mut test_ckt = high_speed_buffer(&BufferParams::default(), wave);
    let op = dc_operating_point(&mut test_ckt, &DcOptions::default())?;
    let tran = transient(&mut test_ckt, &op, &TranOptions { dt, t_stop, ..Default::default() })?;
    let y_model = report.model.simulate(dt, &tran.inputs);
    let rep = time_domain_report(&tran.outputs, &y_model);
    println!("--- Fig. 9 / Table I ---");
    println!("time-domain RMSE : {:.4} (paper RVF: 0.0098)", rep.nrmse);
    println!("max abs error    : {:.4} V", rep.max_abs);

    // Speedup: transistor-level vs model on the same stimulus.
    let inputs = tran.inputs.clone();
    let model = report.model.clone();
    let speedup = measure_speedup(
        || {
            let mut ckt = high_speed_buffer(
                &BufferParams::default(),
                Waveform::BitPattern {
                    v0: 0.5,
                    v1: 1.3,
                    bits: prbs7(0x2f, 20),
                    rate_hz: 2.5e9,
                    rise: 60e-12,
                    delay: 0.0,
                },
            );
            let op = dc_operating_point(&mut ckt, &DcOptions::default()).expect("dc");
            let _ = transient(&mut ckt, &op, &TranOptions { dt, t_stop, ..Default::default() })
                .expect("transient");
        },
        || {
            std::hint::black_box(model.simulate(dt, &inputs));
        },
        3,
    );
    println!(
        "speedup          : {:.1}x (SPICE {:.3} s vs model {:.4} s; paper: 7x)",
        speedup.factor, speedup.reference_seconds, speedup.model_seconds
    );

    // A few eye-ball samples of the two waveforms.
    println!("--- waveform samples (t, circuit, model) ---");
    for i in (0..tran.times.len()).step_by(tran.times.len() / 16) {
        println!("{:9.3e}  {:8.4}  {:8.4}", tran.times[i], tran.outputs[i], y_model[i]);
    }
    Ok(())
}
