//! Batch-serving an extracted model: push many distinct bit patterns
//! through one compiled buffer macromodel and report throughput — the
//! deployment scenario behind the paper's Table I "Speedup".
//!
//! ```sh
//! cargo run --release --example serving_throughput
//! ```

use std::time::Instant;

use rvf::circuit::{high_speed_buffer, prbs7, BufferParams, Waveform};
use rvf::model::{extract_model, RvfOptions};
use rvf::numerics::SweepPool;
use rvf::tft::TftConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Extract the analytical model once (paper §IV setup).
    let train =
        Waveform::Sine { offset: 0.9, amplitude: 0.5, freq_hz: 1.0e5, phase_rad: 0.0, delay: 0.0 };
    let mut buffer = high_speed_buffer(&BufferParams::default(), train);
    let tft_cfg = TftConfig {
        f_min_hz: 1.0,
        f_max_hz: 1.0e10,
        n_freqs: 60,
        t_train: 1.0e-5,
        steps: 2000,
        n_snapshots: 100,
        embed_depth: 1,
        threads: 0,
    };
    let opts = RvfOptions { epsilon: 1e-4, max_state_poles: 20, ..Default::default() };
    println!("extracting the buffer model…");
    let (report, _dataset, _train) = extract_model(&mut buffer, &tft_cfg, &opts)?;
    let model = report.model;

    // 2. Lower it into the compiled serving tables — once.
    let sim = model.compile().with_threads(0);
    println!(
        "compiled: {} blocks, {} drive rows, {} shared pole features",
        sim.n_blocks(),
        sim.n_drives(),
        sim.n_pole_features()
    );

    // 3. A workload of distinct 2.5 GS/s bit patterns (different PRBS
    //    seeds), sampled at 2 ps.
    let dt = 2.0e-12;
    let n_samples = 2000;
    let stimuli: Vec<Vec<f64>> = (1..=256u32)
        .map(|seed| {
            let wave = Waveform::BitPattern {
                v0: 0.5,
                v1: 1.3,
                bits: prbs7((seed % 127 + 1) as u8, 20),
                rate_hz: 2.5e9,
                rise: 60e-12,
                delay: 0.0,
            };
            (0..n_samples).map(|i| wave.value(i as f64 * dt)).collect()
        })
        .collect();
    let refs: Vec<&[f64]> = stimuli.iter().map(Vec::as_slice).collect();
    let total_samples = (refs.len() * n_samples) as f64;

    // 4. Serve: one batch call fans lane groups over a worker pool; a
    //    long-lived server would keep the pool and use
    //    `simulate_batch_in` so the threads are spawned once.
    let pool = SweepPool::new(0);
    for round in 1..=3 {
        let start = Instant::now();
        let outputs = sim.simulate_batch_in(&pool, dt, &refs);
        let secs = start.elapsed().as_secs_f64();
        let last = outputs.last().and_then(|o| o.last()).copied().unwrap_or(0.0);
        println!(
            "round {round}: {} stimuli × {n_samples} samples in {:.1} ms  \
             ({:.2} Msamples/s, last output {last:.4} V)",
            refs.len(),
            secs * 1e3,
            total_samples / secs / 1e6
        );
    }

    // Sanity: the batch output is bit-identical to a serial call.
    let serial = sim.simulate(dt, refs[0]);
    let batch = sim.simulate_batch_in(&pool, dt, &refs[..1]);
    assert!(serial.iter().zip(&batch[0]).all(|(a, b)| a.to_bits() == b.to_bits()));
    println!("bit-identity check passed; pool ran {} sweeps", pool.sweeps());
    Ok(())
}
