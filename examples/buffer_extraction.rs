//! The paper's headline experiment (§IV): extract an analytical model
//! of the 27-transistor high-speed output buffer from one period of a
//! low-frequency, high-amplitude sine.
//!
//! ```sh
//! cargo run --release -p rvf-core --example buffer_extraction
//! ```

use rvf_circuit::{high_speed_buffer, transistor_count, BufferParams, Waveform};
use rvf_core::{extract_model, RvfOptions};
use rvf_tft::{error_surface, Hyperplane, TftConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train =
        Waveform::Sine { offset: 0.9, amplitude: 0.5, freq_hz: 1.0e5, phase_rad: 0.0, delay: 0.0 };
    let mut buffer = high_speed_buffer(&BufferParams::default(), train);
    println!(
        "buffer: {} transistors, {} devices total",
        transistor_count(&buffer),
        buffer.n_devices()
    );

    // Paper setup: ~100 TFT samples over one period, frequency grid up
    // to 10 GHz, epsilon = 1e-3.
    let tft_cfg = TftConfig {
        f_min_hz: 1.0e0,
        f_max_hz: 1.0e10,
        n_freqs: 60,
        t_train: 1.0e-5,
        steps: 2000,
        n_snapshots: 100,
        embed_depth: 1,
        threads: 4,
    };
    let opts = RvfOptions { epsilon: 1e-4, max_state_poles: 20, ..Default::default() };
    let (report, dataset, _train) = extract_model(&mut buffer, &tft_cfg, &opts)?;

    println!("--- extraction summary (paper: 12 freq poles, ~10 state poles) ---");
    println!("frequency poles : {}", report.diagnostics.n_freq_poles);
    println!(
        "freq fit error  : {:.3e} (epsilon {:.1e})",
        report.diagnostics.freq_rel_error, opts.epsilon
    );
    println!("state poles/res : {:?}", report.diagnostics.state_pole_counts);
    println!("static poles    : {}", report.diagnostics.static_pole_count);
    println!("build time      : {:.2} s (paper: 2 min on 2013 hardware)", report.build_seconds);

    // The Fig. 6 hyperplane and the Fig. 7 model error surface.
    let data_surface = Hyperplane::of_dataset(&dataset);
    let es = error_surface(&dataset, |x, s| report.model.transfer(x, s));
    println!("--- hyperplane (Fig. 6/7 shape checks) ---");
    println!(
        "state range     : [{:.2}, {:.2}] V",
        data_surface.states.first().unwrap(),
        data_surface.states.last().unwrap()
    );
    println!(
        "gain range      : [{:.1}, {:.1}] dB",
        data_surface.gain_db.as_slice().iter().cloned().fold(f64::INFINITY, f64::min),
        data_surface.gain_db.as_slice().iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    );
    println!("max gain error  : {:.1} dB (paper: about -60 dB)", es.max_gain_err_db);
    println!(
        "max phase error : {:.1} deg (paper: <= 150 deg at negligible gain)",
        es.max_phase_err_deg
    );
    println!("TFT RMSE        : {:.1} dB (paper Table I: -62 dB)", es.rms_complex_db);
    Ok(())
}
