//! Static nonlinearity reconstruction from DC-gain samples.
//!
//! The instantaneous small-signal conductance `H(k)(0) = g(u_k)` sampled
//! along the large-signal trajectory integrates (over the input, in
//! trajectory order) to the static transfer curve `y_s(u) = ∫ g du + c`
//! up to a constant fixed by the DC solution at `t = 0` (paper §II).

use rvf_numerics::cumtrapz;

/// A sampled static transfer curve `y_s(u)` on a monotone `u` grid.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StaticCurve {
    /// Input values, strictly increasing.
    pub u: Vec<f64>,
    /// Static output at each input.
    pub y: Vec<f64>,
}

impl StaticCurve {
    /// Linear interpolation (clamped at the ends).
    pub fn eval(&self, u: f64) -> f64 {
        if self.u.is_empty() {
            return 0.0;
        }
        if u <= self.u[0] {
            return self.y[0];
        }
        if u >= *self.u.last().expect("nonempty") {
            return *self.y.last().expect("nonempty");
        }
        // Binary search for the segment.
        let mut lo = 0;
        let mut hi = self.u.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.u[mid] <= u {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let f = (u - self.u[lo]) / (self.u[hi] - self.u[lo]);
        self.y[lo] + f * (self.y[hi] - self.y[lo])
    }
}

/// Reconstructs the static curve from trajectory-ordered samples.
///
/// * `u_traj`: input values in trajectory (time) order,
/// * `g_traj`: conductance samples `H(k)(0)` in the same order,
/// * `u0`, `y0`: the DC anchor (input and output at `t = 0`).
///
/// Integration runs along the trajectory (retraced segments cancel, so a
/// full sine period is fine); afterwards the samples are sorted by `u`
/// and duplicates averaged.
///
/// # Panics
///
/// Panics if the input slices have different lengths.
pub fn reconstruct_static(u_traj: &[f64], g_traj: &[f64], u0: f64, y0: f64) -> StaticCurve {
    assert_eq!(u_traj.len(), g_traj.len(), "trajectory lengths differ");
    if u_traj.is_empty() {
        return StaticCurve::default();
    }
    // Indefinite integral along the trajectory.
    let integral = cumtrapz(u_traj, g_traj);
    // Fix the constant so the curve passes through (u0, y0): evaluate the
    // integral at the trajectory point closest to u0.
    let (anchor_idx, _) = u_traj
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            (**a - u0).abs().partial_cmp(&(**b - u0).abs()).unwrap_or(core::cmp::Ordering::Equal)
        })
        .expect("nonempty");
    let offset = y0 - integral[anchor_idx];

    // Sort by u, merging near-duplicate states (retraced trajectory).
    let mut pairs: Vec<(f64, f64)> =
        u_traj.iter().zip(&integral).map(|(&u, &v)| (u, v + offset)).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(core::cmp::Ordering::Equal));
    let span = pairs.last().expect("nonempty").0 - pairs[0].0;
    let merge_tol = (span * 1e-9).max(f64::MIN_POSITIVE);
    let mut u = Vec::with_capacity(pairs.len());
    let mut y = Vec::with_capacity(pairs.len());
    for (ui, yi) in pairs {
        match u.last() {
            Some(&last) if ui - last <= merge_tol => {
                // Average duplicates.
                let n = y.len();
                y[n - 1] = 0.5 * (y[n - 1] + yi);
            }
            _ => {
                u.push(ui);
                y.push(yi);
            }
        }
    }
    StaticCurve { u, y }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvf_numerics::linspace;

    #[test]
    fn integrates_linear_conductance() {
        // g(u) = 2 ⇒ y(u) = 2u + c with c fixed by anchor (0, 0).
        let u = linspace(0.0, 1.0, 51);
        let g = vec![2.0; 51];
        let curve = reconstruct_static(&u, &g, 0.0, 0.0);
        for (ui, yi) in curve.u.iter().zip(&curve.y) {
            assert!((yi - 2.0 * ui).abs() < 1e-12);
        }
    }

    #[test]
    fn recovers_tanh_from_its_derivative() {
        // g(u) = sech²(u) = d/du tanh(u); anchor at u = 0.
        let u = linspace(-2.0, 2.0, 401);
        let g: Vec<f64> = u.iter().map(|&x| 1.0 - x.tanh().powi(2)).collect();
        let curve = reconstruct_static(&u, &g, 0.0, 0.0);
        for (ui, yi) in curve.u.iter().zip(&curve.y) {
            assert!((yi - ui.tanh()).abs() < 1e-4, "at {ui}: {yi} vs {}", ui.tanh());
        }
    }

    #[test]
    fn sine_trajectory_retrace_is_consistent() {
        // u(t) = sin(t) sweeps up and down; the reconstruction must match
        // the single-valued primitive.
        let t = linspace(0.0, 2.0 * core::f64::consts::PI, 1001);
        let u: Vec<f64> = t.iter().map(|x| x.sin()).collect();
        let g: Vec<f64> = u.iter().map(|&x| 3.0 * x * x).collect(); // d/du u³
        let curve = reconstruct_static(&u, &g, 0.0, 0.0);
        for (ui, yi) in curve.u.iter().zip(&curve.y) {
            assert!((yi - ui.powi(3)).abs() < 1e-4, "at {ui}: {yi}");
        }
    }

    #[test]
    fn anchor_offsets_the_curve() {
        let u = linspace(0.0, 1.0, 11);
        let g = vec![1.0; 11];
        let curve = reconstruct_static(&u, &g, 0.5, 10.0);
        // y(u) = u + c with y(0.5) = 10 ⇒ c = 9.5.
        assert!((curve.eval(0.0) - 9.5).abs() < 1e-12);
        assert!((curve.eval(1.0) - 10.5).abs() < 1e-12);
    }

    #[test]
    fn eval_clamps_and_interpolates() {
        let c = StaticCurve { u: vec![0.0, 1.0, 2.0], y: vec![0.0, 1.0, 4.0] };
        assert_eq!(c.eval(-1.0), 0.0);
        assert_eq!(c.eval(3.0), 4.0);
        assert!((c.eval(0.5) - 0.5).abs() < 1e-15);
        assert!((c.eval(1.5) - 2.5).abs() < 1e-15);
    }

    #[test]
    fn empty_input() {
        let c = reconstruct_static(&[], &[], 0.0, 0.0);
        assert_eq!(c.eval(1.0), 0.0);
    }
}
