//! Gain/phase hyperplanes over (state × frequency) and error surfaces —
//! the quantities plotted in the paper's Figs. 6–8.

use rvf_numerics::{db20, unwrap_phase, Complex, Mat};

use crate::dataset::TftDataset;

/// A gain/phase surface over the (state, frequency) grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Hyperplane {
    /// State axis values (sorted ascending).
    pub states: Vec<f64>,
    /// Frequency axis (hertz).
    pub freqs_hz: Vec<f64>,
    /// Gain in dB, `K × L`.
    pub gain_db: Mat,
    /// Phase in degrees (unwrapped along frequency), `K × L`.
    pub phase_deg: Mat,
}

impl Hyperplane {
    /// Builds the hyperplane from complex response rows (`K × L`).
    ///
    /// # Panics
    ///
    /// Panics if row lengths are inconsistent.
    pub fn from_responses(
        states: Vec<f64>,
        freqs_hz: Vec<f64>,
        responses: &[Vec<Complex>],
    ) -> Self {
        let k = states.len();
        let l = freqs_hz.len();
        assert_eq!(responses.len(), k, "row count mismatch");
        let mut gain_db = Mat::zeros(k, l);
        let mut phase_deg = Mat::zeros(k, l);
        for (ki, row) in responses.iter().enumerate() {
            assert_eq!(row.len(), l, "column count mismatch");
            let mut phases: Vec<f64> = row.iter().map(|h| h.arg()).collect();
            unwrap_phase(&mut phases);
            for (li, (h, ph)) in row.iter().zip(&phases).enumerate() {
                gain_db[(ki, li)] = db20(h.abs());
                phase_deg[(ki, li)] = ph.to_degrees();
            }
        }
        Self { states, freqs_hz, gain_db, phase_deg }
    }

    /// The TFT hyperplane of a dataset (the paper's Fig. 6 surface).
    pub fn of_dataset(dataset: &TftDataset) -> Self {
        Self::from_responses(dataset.states(), dataset.freqs_hz.clone(), &dataset.full_responses())
    }

    /// Builds a hyperplane by evaluating a model `H(x, s)` over the same
    /// grid as `dataset` (Figs. 7/8 top surfaces).
    pub fn of_model(dataset: &TftDataset, mut model: impl FnMut(f64, Complex) -> Complex) -> Self {
        let s_grid = dataset.s_grid();
        let responses: Vec<Vec<Complex>> = dataset
            .samples
            .iter()
            .map(|sample| s_grid.iter().map(|&s| model(sample.state, s)).collect())
            .collect();
        Self::from_responses(dataset.states(), dataset.freqs_hz.clone(), &responses)
    }
}

/// Pointwise fitting-error surfaces between a model and the TFT data
/// (the paper's Fig. 7/8 bottom contours), plus their maxima.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorSurface {
    /// State axis.
    pub states: Vec<f64>,
    /// Frequency axis (hertz).
    pub freqs_hz: Vec<f64>,
    /// Gain error `20·log10(| |H_model| − |H_data| |)` in dB, `K × L`.
    pub gain_err_db: Mat,
    /// Absolute phase error in degrees (wrapped to [0°, 180°]), `K × L`.
    pub phase_err_deg: Mat,
    /// Maximum of the gain error surface (the paper's "maximum RMSE
    /// −60 dB" number for Fig. 7).
    pub max_gain_err_db: f64,
    /// Maximum phase error (degrees).
    pub max_phase_err_deg: f64,
    /// Maximum phase error restricted to points with significant gain
    /// (above −70 dB of the surface peak). The paper reports its 150°
    /// worst-case phase error "at high frequencies and negligible gain
    /// (< −70 dB)"; this field separates the meaningful region.
    pub max_phase_err_deg_significant: f64,
    /// RMS of the complex error over the surface.
    pub rms_complex: f64,
    /// RMS of the complex error in dB relative to unit gain
    /// (`20·log10(rms)`) — the Table I "TFT RMSE" figure.
    pub rms_complex_db: f64,
}

/// Computes the error surfaces of a model against the dataset.
pub fn error_surface(
    dataset: &TftDataset,
    mut model: impl FnMut(f64, Complex) -> Complex,
) -> ErrorSurface {
    let s_grid = dataset.s_grid();
    let k = dataset.n_states();
    let l = dataset.n_freqs();
    let mut gain_err_db = Mat::zeros(k, l);
    let mut phase_err_deg = Mat::zeros(k, l);
    let mut max_g = f64::NEG_INFINITY;
    let mut max_p = 0.0_f64;
    let mut max_p_sig = 0.0_f64;
    let mut acc = 0.0;
    let peak = dataset.peak_magnitude().max(1e-300);
    let significant = peak * rvf_numerics::from_db20(-70.0);
    for (ki, sample) in dataset.samples.iter().enumerate() {
        for (li, (&s, &h_data)) in s_grid.iter().zip(&sample.h).enumerate() {
            let h_model = model(sample.state, s);
            let diff_mag = (h_model.abs() - h_data.abs()).abs();
            let g_err = db20(diff_mag.max(1e-30));
            let mut p_err = (h_model.arg() - h_data.arg()).to_degrees().abs();
            if p_err > 180.0 {
                p_err = 360.0 - p_err;
            }
            gain_err_db[(ki, li)] = g_err;
            phase_err_deg[(ki, li)] = p_err;
            max_g = max_g.max(g_err);
            max_p = max_p.max(p_err);
            if h_data.abs() >= significant {
                max_p_sig = max_p_sig.max(p_err);
            }
            acc += (h_model - h_data).norm_sqr();
        }
    }
    let rms = (acc / (k * l) as f64).sqrt();
    ErrorSurface {
        states: dataset.states(),
        freqs_hz: dataset.freqs_hz.clone(),
        gain_err_db,
        phase_err_deg,
        max_gain_err_db: max_g,
        max_phase_err_deg: max_p,
        max_phase_err_deg_significant: max_p_sig,
        rms_complex: rms,
        rms_complex_db: db20(rms.max(1e-30)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::StateSample;
    use rvf_numerics::c;

    fn toy_dataset() -> TftDataset {
        // H(x, s) = x/(1 + s/ω₀) sampled at two states, three freqs.
        let w0 = 2.0 * core::f64::consts::PI * 1.0e6;
        let freqs = vec![1.0e5, 1.0e6, 1.0e7];
        let mk = |x: f64| {
            let h: Vec<Complex> = freqs
                .iter()
                .map(|&f| {
                    let s = Complex::from_im(2.0 * core::f64::consts::PI * f);
                    Complex::from_re(x) * (Complex::ONE + s.scale(1.0 / w0)).inv()
                })
                .collect();
            StateSample { t: 0.0, state: x, x_embed: vec![x], y: 0.0, h, h0: c(x, 0.0) }
        };
        let samples = vec![mk(0.5), mk(1.0)];
        TftDataset::new(freqs, samples)
    }

    #[test]
    fn hyperplane_gain_and_phase() {
        let ds = toy_dataset();
        let hp = Hyperplane::of_dataset(&ds);
        assert_eq!(hp.gain_db.shape(), (2, 3));
        // At the corner frequency the gain is −3 dB below DC and the
        // phase is −45°.
        let g_corner = hp.gain_db[(1, 1)];
        assert!((g_corner + 3.0103).abs() < 0.02, "corner gain {g_corner}");
        let p_corner = hp.phase_deg[(1, 1)];
        assert!((p_corner + 45.0).abs() < 0.5, "corner phase {p_corner}");
        // State 0.5 sits 6 dB below state 1.0.
        assert!((hp.gain_db[(1, 0)] - hp.gain_db[(0, 0)] - 6.0206).abs() < 0.01);
    }

    #[test]
    fn perfect_model_has_tiny_error() {
        let ds = toy_dataset();
        let w0 = 2.0 * core::f64::consts::PI * 1.0e6;
        let es = error_surface(&ds, |x, s| {
            Complex::from_re(x) * (Complex::ONE + s.scale(1.0 / w0)).inv()
        });
        assert!(es.max_gain_err_db < -200.0, "max gain err {}", es.max_gain_err_db);
        assert!(es.max_phase_err_deg < 1e-8);
        assert!(es.rms_complex < 1e-12);
    }

    #[test]
    fn biased_model_error_is_quantified() {
        let ds = toy_dataset();
        // Model off by ×(1+1e-3) in magnitude: gain error ≈ 20log10(1e-3·|H|).
        let w0 = 2.0 * core::f64::consts::PI * 1.0e6;
        let es = error_surface(&ds, |x, s| {
            Complex::from_re(x * 1.001) * (Complex::ONE + s.scale(1.0 / w0)).inv()
        });
        // Peak |H| = 1 ⇒ max gain error ≈ −60 dB.
        assert!((es.max_gain_err_db + 60.0).abs() < 0.5, "{}", es.max_gain_err_db);
        assert!(es.rms_complex_db < -60.0);
    }

    #[test]
    fn of_model_matches_dataset_grid() {
        let ds = toy_dataset();
        let hp = Hyperplane::of_model(&ds, |x, s| {
            let w0 = 2.0 * core::f64::consts::PI * 1.0e6;
            Complex::from_re(x) * (Complex::ONE + s.scale(1.0 / w0)).inv()
        });
        let hd = Hyperplane::of_dataset(&ds);
        for i in 0..2 {
            for j in 0..3 {
                assert!((hp.gain_db[(i, j)] - hd.gain_db[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn phase_error_wraps() {
        let ds = toy_dataset();
        // Model with a 350° phase offset ⇒ wrapped error 10°.
        let w0 = 2.0 * core::f64::consts::PI * 1.0e6;
        let rot = Complex::from_polar(1.0, 350.0_f64.to_radians());
        let es = error_surface(&ds, |x, s| {
            Complex::from_re(x) * (Complex::ONE + s.scale(1.0 / w0)).inv() * rot
        });
        assert!((es.max_phase_err_deg - 10.0).abs() < 0.1, "{}", es.max_phase_err_deg);
    }
}
