//! The TFT dataset: state-dependent frequency responses.

use rvf_numerics::{jw_grid, Complex};

/// One state point of the trajectory with its sampled transfer function.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSample {
    /// Simulation time of the underlying snapshot.
    pub t: f64,
    /// The scalar state estimator value `x(k) = u(t_k)` (first delay tap).
    pub state: f64,
    /// Full delay-embedded state estimator (length `q ≥ 1`).
    pub x_embed: Vec<f64>,
    /// Circuit output at the snapshot.
    pub y: f64,
    /// Sampled transfer function `H(k)(s_l)` on the frequency grid.
    pub h: Vec<Complex>,
    /// Static (DC) transfer `H(k)(0)` — the instantaneous small-signal
    /// gain around the trajectory (paper §II).
    pub h0: Complex,
}

/// A transfer-function-trajectory dataset: `K` state points × `L`
/// frequencies, sorted by ascending state.
///
/// The *dynamic* part `H(k)(s) − H(k)(0)` and the *static* part
/// `H(k)(0)` are modeled separately (paper eq. split after eq. 3,
/// following Ngoya et al.).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TftDataset {
    /// Frequency grid (hertz).
    pub freqs_hz: Vec<f64>,
    /// State samples sorted by ascending `state`.
    pub samples: Vec<StateSample>,
}

impl TftDataset {
    /// Builds a dataset and sorts the samples by state.
    pub fn new(freqs_hz: Vec<f64>, mut samples: Vec<StateSample>) -> Self {
        samples.sort_by(|a, b| a.state.partial_cmp(&b.state).unwrap_or(core::cmp::Ordering::Equal));
        Self { freqs_hz, samples }
    }

    /// Number of state points `K`.
    pub fn n_states(&self) -> usize {
        self.samples.len()
    }

    /// Number of frequency points `L`.
    pub fn n_freqs(&self) -> usize {
        self.freqs_hz.len()
    }

    /// The complex frequency grid `s = j·2πf`.
    pub fn s_grid(&self) -> Vec<Complex> {
        jw_grid(&self.freqs_hz)
    }

    /// The state values in sorted order.
    pub fn states(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.state).collect()
    }

    /// Full responses `H(k)(s_l)` as `K` rows for the fitting engine.
    pub fn full_responses(&self) -> Vec<Vec<Complex>> {
        self.samples.iter().map(|s| s.h.clone()).collect()
    }

    /// Dynamic responses `H(k)(s_l) − H(k)(0)` as `K` rows.
    pub fn dynamic_responses(&self) -> Vec<Vec<Complex>> {
        self.samples.iter().map(|s| s.h.iter().map(|&v| v - s.h0).collect()).collect()
    }

    /// The static conductance trajectory `H(k)(0)` (real parts; the
    /// imaginary parts vanish at DC).
    pub fn static_gains(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.h0.re).collect()
    }

    /// Peak magnitude over the whole hyperplane (normalization helper).
    pub fn peak_magnitude(&self) -> f64 {
        self.samples.iter().flat_map(|s| s.h.iter()).fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Restricts the dataset to every `n`-th state sample (training-set
    /// thinning experiments).
    pub fn thin_states(&self, n: usize) -> TftDataset {
        assert!(n > 0, "thinning factor must be positive");
        TftDataset {
            freqs_hz: self.freqs_hz.clone(),
            samples: self.samples.iter().step_by(n).cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvf_numerics::c;

    fn sample(state: f64, h0: f64) -> StateSample {
        StateSample {
            t: 0.0,
            state,
            x_embed: vec![state],
            y: 2.0 * state,
            h: vec![c(h0 + 1.0, 0.5), c(h0, -0.5)],
            h0: c(h0, 0.0),
        }
    }

    #[test]
    fn sorted_by_state() {
        let d = TftDataset::new(vec![1.0, 10.0], vec![sample(1.2, 2.0), sample(0.4, 1.0)]);
        assert_eq!(d.states(), vec![0.4, 1.2]);
        assert_eq!(d.n_states(), 2);
        assert_eq!(d.n_freqs(), 2);
    }

    #[test]
    fn dynamic_subtracts_static() {
        let d = TftDataset::new(vec![1.0, 10.0], vec![sample(0.4, 1.0)]);
        let dy = d.dynamic_responses();
        assert_eq!(dy[0][0], c(1.0, 0.5));
        assert_eq!(dy[0][1], c(0.0, -0.5));
        assert_eq!(d.static_gains(), vec![1.0]);
    }

    #[test]
    fn s_grid_is_imaginary() {
        let d = TftDataset::new(vec![1.0, 2.0], vec![]);
        for s in d.s_grid() {
            assert_eq!(s.re, 0.0);
            assert!(s.im > 0.0);
        }
    }

    #[test]
    fn thinning() {
        let d = TftDataset::new(vec![1.0], (0..10).map(|i| sample(i as f64, 0.0)).collect());
        let t = d.thin_states(3);
        assert_eq!(t.n_states(), 4);
        assert_eq!(t.states(), vec![0.0, 3.0, 6.0, 9.0]);
    }

    #[test]
    fn peak_magnitude() {
        let d = TftDataset::new(vec![1.0, 2.0], vec![sample(0.0, 3.0)]);
        assert!((d.peak_magnitude() - c(4.0, 0.5).abs()).abs() < 1e-15);
    }
}
