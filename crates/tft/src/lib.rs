//! # rvf-tft
//!
//! Transfer Function Trajectories (De Jonghe & Gielen, paper refs.
//! \[3\], \[4\]): converting Jacobian snapshots captured along a circuit's
//! large-signal trajectory into state-dependent frequency responses
//!
//! ```text
//! H(k)(s) = Dᵀ·(G(k) + s·C(k))⁻¹·B
//! ```
//!
//! sampled over a frequency grid — the hyperplane in the mixed
//! state-space/frequency domain that the RVF algorithm subsequently fits.
//!
//! The crate also provides:
//!
//! * static/dynamic splitting `H = H(0) + [H − H(0)]`,
//! * static transfer-curve reconstruction by integrating the sampled
//!   small-signal conductance over the input trajectory,
//! * gain/phase hyperplanes and error surfaces (Figs. 6–8 of the paper).
//!
//! # Example
//!
//! ```no_run
//! use rvf_circuit::{high_speed_buffer, BufferParams, Waveform};
//! use rvf_tft::{extract_from_circuit, Hyperplane, TftConfig};
//!
//! # fn main() -> Result<(), rvf_tft::TftError> {
//! let sine = Waveform::Sine {
//!     offset: 0.9, amplitude: 0.5, freq_hz: 5.0e7, phase_rad: 0.0, delay: 0.0,
//! };
//! let mut buf = high_speed_buffer(&BufferParams::default(), sine);
//! let (dataset, _tran) = extract_from_circuit(&mut buf, &TftConfig::default())?;
//! let surface = Hyperplane::of_dataset(&dataset); // Fig. 6
//! assert_eq!(surface.gain_db.rows(), dataset.n_states());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
pub mod error;
pub mod hyperplane;
pub mod sampler;
pub mod static_part;

pub use dataset::{StateSample, TftDataset};
pub use error::TftError;
pub use hyperplane::{error_surface, ErrorSurface, Hyperplane};
pub use sampler::{extract_from_circuit, tft_from_snapshots, TftConfig};
pub use static_part::{reconstruct_static, StaticCurve};
