//! Error type for TFT extraction.

use core::fmt;

use rvf_circuit::CircuitError;
use rvf_numerics::{NumericsError, SweepError};

/// Errors produced while building transfer function trajectories.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TftError {
    /// No snapshots were provided / captured.
    NoSnapshots,
    /// The extraction configuration is unusable (zero step count, zero
    /// snapshot count, non-positive training window, …).
    BadConfig {
        /// Description of the rejected field.
        message: String,
    },
    /// The frequency grid is empty or non-positive.
    BadFrequencyGrid,
    /// Snapshot dimensions are inconsistent with the port vectors.
    DimensionMismatch {
        /// Snapshot index.
        snapshot: usize,
        /// Expected MNA dimension.
        expected: usize,
        /// Found dimension.
        got: usize,
    },
    /// The underlying circuit analysis failed.
    Circuit(CircuitError),
    /// A frequency-domain solve failed (singular system matrix).
    Numerics(NumericsError),
    /// A sweep worker thread panicked; the extraction was aborted
    /// cleanly instead of propagating the panic to the caller.
    WorkerPanicked {
        /// Index of the worker whose task panicked.
        worker: usize,
    },
}

impl fmt::Display for TftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSnapshots => write!(f, "no jacobian snapshots to transform"),
            Self::BadConfig { message } => write!(f, "bad tft config: {message}"),
            Self::BadFrequencyGrid => write!(f, "frequency grid must be non-empty and positive"),
            Self::DimensionMismatch { snapshot, expected, got } => {
                write!(f, "snapshot {snapshot} has dimension {got}, expected {expected}")
            }
            Self::Circuit(e) => write!(f, "circuit analysis failed: {e}"),
            Self::Numerics(e) => write!(f, "frequency solve failed: {e}"),
            Self::WorkerPanicked { worker } => {
                write!(f, "tft sweep worker {worker} panicked")
            }
        }
    }
}

impl std::error::Error for TftError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Circuit(e) => Some(e),
            Self::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for TftError {
    fn from(e: CircuitError) -> Self {
        Self::Circuit(e)
    }
}

impl From<NumericsError> for TftError {
    fn from(e: NumericsError) -> Self {
        Self::Numerics(e)
    }
}

impl From<SweepError<TftError>> for TftError {
    fn from(e: SweepError<TftError>) -> Self {
        match e {
            SweepError::Task { error, .. } => error,
            SweepError::WorkerPanicked { worker } => Self::WorkerPanicked { worker },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        assert!(TftError::NoSnapshots.to_string().contains("snapshots"));
        assert!(TftError::BadConfig { message: "steps must be nonzero".into() }
            .to_string()
            .contains("steps must be nonzero"));
        let e = TftError::from(NumericsError::Singular { pivot: 1 });
        assert!(e.source().is_some());
        let e = TftError::from(CircuitError::MissingPort { which: "input" });
        assert!(e.source().is_some());
    }
}
