//! Jacobian snapshots → TFT dataset (paper §II, eq. 3).
//!
//! Each snapshot `(G(k), C(k))` becomes a sampled transfer function
//!
//! ```text
//! H(k)(s_l) = Dᵀ·(G(k) + s_l·C(k))⁻¹·B
//! ```
//!
//! Two layers of structure keep the `K snapshots × L frequencies` sweep
//! cheap:
//!
//! * per snapshot, the pencil `(G, C)` is reduced once to
//!   Hessenberg–triangular form (via [`rvf_circuit::transfer_sweep`]),
//!   so each frequency point is an `O(n²)` back-substitution instead of
//!   an `O(n³)` dense LU — `O(K·(n³ + L·n²))` overall instead of
//!   `O(K·L·n³)`;
//! * across snapshots, the work is spread over the work-stealing sweep
//!   runtime of `rvf-numerics` — one [`rvf_numerics::SweepPool`] round
//!   per extraction, batched claiming for small snapshots — so a slow
//!   snapshot (near-singular operating point, pivoting churn) occupies
//!   one worker while the rest keep draining the queue.

use rvf_circuit::{
    dc_operating_point, transfer_sweep, transient, Circuit, DcOptions, JacobianSnapshot,
    TranOptions, TranResult,
};
use rvf_numerics::{logspace, resolve_threads, Complex, Lu, SweepConfig, SweepPool};

use crate::dataset::{StateSample, TftDataset};
use crate::error::TftError;

/// Configuration of a TFT extraction run.
#[derive(Debug, Clone)]
pub struct TftConfig {
    /// Lowest frequency of the grid (Hz).
    pub f_min_hz: f64,
    /// Highest frequency of the grid (Hz).
    pub f_max_hz: f64,
    /// Number of (log-spaced) frequency points.
    pub n_freqs: usize,
    /// Training transient length (s).
    pub t_train: f64,
    /// Transient step count.
    pub steps: usize,
    /// Number of snapshots to capture along the trajectory.
    pub n_snapshots: usize,
    /// Delay-embedding depth `q` of the state estimator (1 = `u(t)` only).
    pub embed_depth: usize,
    /// Worker threads for the frequency sweep.
    ///
    /// Snapshots are distributed over this many scoped threads by a
    /// work-stealing task queue, so the setting is a cap, not a
    /// partition: an idle worker always picks up the next pending
    /// snapshot. `0` means "one worker per available core"
    /// ([`std::thread::available_parallelism`]); any other value is
    /// used as-is (clamped to the snapshot count).
    pub threads: usize,
}

impl Default for TftConfig {
    fn default() -> Self {
        Self {
            f_min_hz: 1.0,
            f_max_hz: 1.0e10,
            n_freqs: 60,
            // One period of a 100 kHz training sine: slow enough that
            // the Jacobian sampling stays quasi-static (the paper's
            // "low-frequency high-amplitude" pump), which keeps the
            // residue trajectories single-valued over the state.
            t_train: 1.0e-5,
            steps: 2000,
            n_snapshots: 100,
            embed_depth: 1,
            threads: 4,
        }
    }
}

impl TftConfig {
    /// The log-spaced frequency grid in hertz.
    pub fn freq_grid(&self) -> Vec<f64> {
        logspace(self.f_min_hz.log10(), self.f_max_hz.log10(), self.n_freqs)
    }
}

/// Transforms captured snapshots into a TFT dataset given the circuit's
/// port vectors `b` (input column) and `d` (output row).
///
/// `threads` follows the [`TftConfig::threads`] convention
/// (`0` = available parallelism).
///
/// # Errors
///
/// Returns [`TftError::NoSnapshots`], [`TftError::BadFrequencyGrid`],
/// [`TftError::DimensionMismatch`], a numerics error if a frequency
/// solve hits a singular matrix, or [`TftError::WorkerPanicked`] if a
/// sweep worker dies (the panic is contained, not propagated).
pub fn tft_from_snapshots(
    snapshots: &[JacobianSnapshot],
    b: &[f64],
    d: &[f64],
    freqs_hz: &[f64],
    embed_depth: usize,
    threads: usize,
) -> Result<TftDataset, TftError> {
    if snapshots.is_empty() {
        return Err(TftError::NoSnapshots);
    }
    if freqs_hz.is_empty() || freqs_hz.iter().any(|&f| !(f > 0.0)) {
        return Err(TftError::BadFrequencyGrid);
    }
    let dim = b.len();
    for (i, s) in snapshots.iter().enumerate() {
        if s.g.shape() != (dim, dim) || s.c.shape() != (dim, dim) || s.x.len() != dim {
            return Err(TftError::DimensionMismatch {
                snapshot: i,
                expected: dim,
                got: s.g.rows(),
            });
        }
    }
    let s_grid: Vec<Complex> =
        freqs_hz.iter().map(|&f| Complex::from_im(2.0 * core::f64::consts::PI * f)).collect();

    // One task per snapshot, dispatched as a single round on a worker
    // pool shared with the rest of the extraction pipeline's runtime
    // conventions: workers borrow snapshots/b/d without Arc, and a slow
    // snapshot no longer idles the workers that finished their share.
    // Small-dimension snapshots are claimed in batches (uniformly cheap
    // tasks: claim-queue traffic would otherwise dominate); large ones
    // keep task-granular stealing for load balance.
    // Capacity clamped to the snapshot count before spawning: a sweep
    // of 4 snapshots on a many-core machine must not park unusable
    // workers.
    let pool = SweepPool::new(resolve_threads(threads).min(snapshots.len()));
    let workers = pool.workers();
    let cfg =
        SweepConfig::threads(threads).with_batch(snapshot_batch(snapshots.len(), dim, workers));
    let mut samples: Vec<StateSample> =
        pool.run(snapshots.len(), &cfg, |k| -> Result<StateSample, TftError> {
            let snap = &snapshots[k];
            // Reduced-pencil sweep: one O(n³) reduction, O(n²) per
            // frequency (transfer_sweep falls back to per-point LU for
            // short grids where the reduction doesn't pay).
            let h = transfer_sweep(&snap.g, &snap.c, b, d, &s_grid)
                .map_err(TftError::from_circuit_err)?;
            // Static gain from the real DC solve.
            let lu = Lu::factor(&snap.g)?;
            let xg = lu.solve(b)?;
            let h0: f64 = d.iter().zip(&xg).map(|(di, xi)| di * xi).sum();
            Ok(StateSample {
                t: snap.t,
                state: snap.u,
                x_embed: vec![snap.u],
                y: snap.y,
                h,
                h0: Complex::from_re(h0),
            })
        })?;
    // Delay embedding beyond depth 1: append lagged input values taken
    // from the snapshot sequence (trajectory order).
    if embed_depth > 1 {
        let us: Vec<f64> = samples.iter().map(|s| s.state).collect();
        for (i, s) in samples.iter_mut().enumerate() {
            for q in 1..embed_depth {
                let j = i.saturating_sub(q);
                s.x_embed.push(us[j]);
            }
        }
    }
    Ok(TftDataset::new(freqs_hz.to_vec(), samples))
}

/// MNA dimension at or below which a snapshot's frequency sweep is
/// cheap and uniform enough that claim-queue traffic, not load
/// imbalance, is the binding cost — such sweeps are chunked several
/// snapshots per claim.
const SMALL_SNAPSHOT_DIM: usize = 16;

/// Claim batch for the snapshot sweep: small snapshots (MNA dimension ≤
/// [`SMALL_SNAPSHOT_DIM`]) are chunked so each worker aims for ~4
/// claims over the whole sweep; larger snapshots — an `O(n³)` reduction
/// each, and irregular near singular operating points — keep
/// task-granular stealing.
fn snapshot_batch(n_snapshots: usize, dim: usize, workers: usize) -> usize {
    if dim > SMALL_SNAPSHOT_DIM || workers <= 1 {
        return 1;
    }
    (n_snapshots / (workers * 4)).max(1)
}

impl TftError {
    fn from_circuit_err(e: rvf_circuit::CircuitError) -> Self {
        match e {
            rvf_circuit::CircuitError::Numerics(n) => TftError::Numerics(n),
            other => TftError::Circuit(other),
        }
    }
}

/// Runs the full training flow on a circuit: DC operating point, one
/// training transient with snapshot capture, then the TFT transform.
///
/// Returns the dataset together with the raw transient (reference
/// waveforms for validation).
///
/// # Errors
///
/// Returns [`TftError::BadConfig`] for a zero step/snapshot count or a
/// non-positive training window (each used to be an unchecked panic —
/// division by zero, or an `assert!` deep inside the transient solver);
/// otherwise propagates circuit analysis and TFT transform failures.
pub fn extract_from_circuit(
    circuit: &mut Circuit,
    cfg: &TftConfig,
) -> Result<(TftDataset, TranResult), TftError> {
    if cfg.steps == 0 {
        return Err(TftError::BadConfig { message: "steps must be nonzero".into() });
    }
    if cfg.n_snapshots == 0 {
        return Err(TftError::BadConfig { message: "n_snapshots must be nonzero".into() });
    }
    if !(cfg.t_train.is_finite() && cfg.t_train > 0.0) {
        return Err(TftError::BadConfig {
            message: format!("t_train must be finite and positive, got {}", cfg.t_train),
        });
    }
    let op = dc_operating_point(circuit, &DcOptions::default())?;
    let every = (cfg.steps / cfg.n_snapshots).max(1);
    let opts = TranOptions {
        dt: cfg.t_train / cfg.steps as f64,
        t_stop: cfg.t_train,
        snapshot_every: Some(every),
        ..Default::default()
    };
    let tran = transient(circuit, &op, &opts)?;
    let b = circuit.input_column()?;
    let d = circuit.output_row()?;
    let dataset = tft_from_snapshots(
        &tran.snapshots,
        &b,
        &d,
        &cfg.freq_grid(),
        cfg.embed_depth,
        cfg.threads,
    )?;
    Ok((dataset, tran))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvf_circuit::{rc_ladder, Waveform};
    use rvf_numerics::db20;

    #[test]
    fn rc_ladder_tft_matches_analytic_single_section() {
        // One RC section: H(s) = 1/(1 + sRC) regardless of state
        // (linear circuit ⇒ flat trajectory).
        let r = 1.0e3;
        let c = 1.0e-9;
        let mut ckt = rc_ladder(
            1,
            r,
            c,
            Waveform::Sine {
                offset: 0.5,
                amplitude: 0.3,
                freq_hz: 1.0e4,
                phase_rad: 0.0,
                delay: 0.0,
            },
        );
        let cfg = TftConfig {
            f_min_hz: 1.0e3,
            f_max_hz: 1.0e7,
            n_freqs: 30,
            t_train: 1.0e-4,
            steps: 400,
            n_snapshots: 20,
            embed_depth: 1,
            threads: 2,
        };
        let (ds, _tran) = extract_from_circuit(&mut ckt, &cfg).unwrap();
        assert_eq!(ds.n_states(), 21);
        assert_eq!(ds.n_freqs(), 30);
        let rc = r * c;
        for sample in &ds.samples {
            assert!((sample.h0.re - 1.0).abs() < 1e-9, "static gain 1");
            for (f, h) in ds.freqs_hz.iter().zip(&sample.h) {
                let s = Complex::from_im(2.0 * core::f64::consts::PI * f);
                let want = (Complex::ONE + s.scale(rc)).inv();
                assert!((*h - want).abs() < 1e-9, "H mismatch at f={f}: {h:?} vs {want:?}");
            }
        }
        // Linear circuit: the hyperplane is flat along the state axis.
        let first = &ds.samples[0].h;
        let last = &ds.samples[ds.n_states() - 1].h;
        for (a, b) in first.iter().zip(last) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn nonlinear_circuit_has_state_dependent_tft() {
        use rvf_circuit::diode_clipper;
        let mut ckt = diode_clipper(Waveform::Sine {
            offset: 0.0,
            amplitude: 1.5,
            freq_hz: 1.0e5,
            phase_rad: 0.0,
            delay: 0.0,
        });
        let cfg = TftConfig {
            f_min_hz: 1.0e3,
            f_max_hz: 1.0e8,
            n_freqs: 20,
            t_train: 1.0e-5,
            steps: 500,
            n_snapshots: 50,
            embed_depth: 1,
            threads: 3,
        };
        let (ds, _) = extract_from_circuit(&mut ckt, &cfg).unwrap();
        // Small-signal gain at u≈0 (diodes off) is near RL/(R+RL);
        // at |u| large the conducting diode crushes the gain.
        let g_mid = ds.samples[ds.n_states() / 2].h0.re;
        let g_hi = ds.samples.last().unwrap().h0.re;
        assert!(g_mid > 0.7, "mid-state gain {g_mid}");
        assert!(g_hi < 0.2, "clipped gain {g_hi} (state {})", ds.samples.last().unwrap().state);
        // Gain drop in dB for good measure.
        assert!(db20(g_mid / g_hi) > 15.0);
    }

    #[test]
    fn error_paths() {
        let freqs = [1.0e3];
        assert!(matches!(
            tft_from_snapshots(&[], &[1.0], &[1.0], &freqs, 1, 1),
            Err(TftError::NoSnapshots)
        ));
        let snap = JacobianSnapshot {
            t: 0.0,
            u: 0.0,
            y: 0.0,
            x: vec![0.0],
            g: rvf_numerics::Mat::identity(1),
            c: rvf_numerics::Mat::zeros(1, 1),
        };
        assert!(matches!(
            tft_from_snapshots(&[snap.clone()], &[1.0], &[1.0], &[], 1, 1),
            Err(TftError::BadFrequencyGrid)
        ));
        assert!(matches!(
            tft_from_snapshots(&[snap], &[1.0, 0.0], &[1.0, 0.0], &freqs, 1, 1),
            Err(TftError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn bad_config_is_a_typed_error_not_a_panic() {
        // Regression: steps == 0 used to divide by zero computing dt,
        // n_snapshots == 0 divided by zero computing the capture cadence,
        // and a non-positive t_train tripped an assert in the transient
        // solver. All three must surface as TftError::BadConfig.
        let mut ckt = rc_ladder(
            1,
            1.0e3,
            1.0e-9,
            Waveform::Sine {
                offset: 0.5,
                amplitude: 0.3,
                freq_hz: 1e4,
                phase_rad: 0.0,
                delay: 0.0,
            },
        );
        let base = TftConfig {
            f_min_hz: 1.0e3,
            f_max_hz: 1.0e7,
            n_freqs: 10,
            t_train: 1.0e-4,
            steps: 100,
            n_snapshots: 10,
            embed_depth: 1,
            threads: 1,
        };
        for cfg in [
            TftConfig { steps: 0, ..base.clone() },
            TftConfig { n_snapshots: 0, ..base.clone() },
            TftConfig { t_train: 0.0, ..base.clone() },
            TftConfig { t_train: f64::NAN, ..base.clone() },
            TftConfig { t_train: -1.0, ..base.clone() },
        ] {
            let got = extract_from_circuit(&mut ckt, &cfg);
            assert!(matches!(got, Err(TftError::BadConfig { .. })), "{got:?}");
        }
        // The base config itself still extracts.
        extract_from_circuit(&mut ckt, &base).unwrap();
    }

    #[test]
    fn worker_panic_becomes_error_not_abort() {
        // Regression for the old `h.join().expect("tft worker panicked")`:
        // a poisoned worker must surface as TftError::WorkerPanicked
        // through the runtime's containment — on the pooled path the
        // sampler now takes — not tear down the caller.
        let pool = SweepPool::new(2);
        let swept = pool.run(8, &SweepConfig::threads(2), |k| -> Result<usize, TftError> {
            if k == 3 {
                panic!("poisoned snapshot");
            }
            Ok(k)
        });
        let err: TftError = swept.unwrap_err().into();
        assert!(matches!(err, TftError::WorkerPanicked { .. }), "got {err:?}");
        assert!(err.to_string().contains("panicked"));
    }

    #[test]
    fn sweep_task_error_unwraps_to_inner_tft_error() {
        let pool = SweepPool::new(2);
        let swept = pool.run(4, &SweepConfig::threads(2), |k| -> Result<usize, TftError> {
            if k == 1 {
                Err(TftError::NoSnapshots)
            } else {
                Ok(k)
            }
        });
        let err: TftError = swept.unwrap_err().into();
        assert!(matches!(err, TftError::NoSnapshots));
    }

    #[test]
    fn snapshot_batch_chunks_small_snapshots_only() {
        // Small MNA dimension: ~4 claims per worker over the sweep.
        assert_eq!(snapshot_batch(100, 4, 4), 6);
        assert_eq!(snapshot_batch(100, SMALL_SNAPSHOT_DIM, 2), 12);
        // Never zero, even for tiny sweeps.
        assert_eq!(snapshot_batch(3, 4, 4), 1);
        // Large snapshots and serial sweeps keep task granularity.
        assert_eq!(snapshot_batch(100, SMALL_SNAPSHOT_DIM + 1, 4), 1);
        assert_eq!(snapshot_batch(100, 4, 1), 1);
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let snap = JacobianSnapshot {
            t: 0.0,
            u: 0.25,
            y: 0.0,
            x: vec![0.0],
            g: rvf_numerics::Mat::identity(1),
            c: rvf_numerics::Mat::zeros(1, 1),
        };
        let ds = tft_from_snapshots(&[snap.clone(), snap], &[1.0], &[1.0], &[1.0e3, 1.0e4], 1, 0)
            .unwrap();
        assert_eq!(ds.n_freqs(), 2);
    }

    #[test]
    fn reduced_sweep_matches_naive_per_point_lu() {
        // Dataset-level pin of the tentpole equivalence: every H(k)(s_l)
        // from the reduced-pencil path agrees with a fresh per-point
        // dense LU to 1e-10 on a nonlinear circuit's snapshots.
        use rvf_circuit::{diode_clipper, transfer_at};
        let mut ckt = diode_clipper(Waveform::Sine {
            offset: 0.0,
            amplitude: 1.5,
            freq_hz: 1.0e5,
            phase_rad: 0.0,
            delay: 0.0,
        });
        let cfg = TftConfig {
            f_min_hz: 1.0e3,
            f_max_hz: 1.0e8,
            n_freqs: 30,
            t_train: 1.0e-5,
            steps: 200,
            n_snapshots: 10,
            embed_depth: 1,
            threads: 2,
        };
        let op = dc_operating_point(&mut ckt, &DcOptions::default()).unwrap();
        let opts = TranOptions {
            dt: cfg.t_train / cfg.steps as f64,
            t_stop: cfg.t_train,
            snapshot_every: Some((cfg.steps / cfg.n_snapshots).max(1)),
            ..Default::default()
        };
        let tran = transient(&mut ckt, &op, &opts).unwrap();
        let b = ckt.input_column().unwrap();
        let d = ckt.output_row().unwrap();
        let ds =
            tft_from_snapshots(&tran.snapshots, &b, &d, &cfg.freq_grid(), 1, cfg.threads).unwrap();
        // Samples come back sorted by state; match them to their
        // snapshot through the capture timestamp.
        for snap in &tran.snapshots {
            let sample = ds.samples.iter().find(|s| s.t == snap.t).expect("snapshot sample");
            for (f, h) in ds.freqs_hz.iter().zip(&sample.h) {
                let s = Complex::from_im(2.0 * core::f64::consts::PI * f);
                let naive = transfer_at(&snap.g, &snap.c, &b, &d, s).unwrap();
                assert!(
                    (*h - naive).abs() < 1e-10,
                    "reduced vs naive mismatch at f={f}: {h:?} vs {naive:?}"
                );
            }
        }
    }

    #[test]
    fn embedding_depth_adds_lagged_states() {
        let snapmaker = |t: f64, u: f64| JacobianSnapshot {
            t,
            u,
            y: 0.0,
            x: vec![0.0],
            g: rvf_numerics::Mat::identity(1),
            c: rvf_numerics::Mat::zeros(1, 1),
        };
        let snaps = vec![snapmaker(0.0, 0.1), snapmaker(1.0, 0.2), snapmaker(2.0, 0.3)];
        let ds = tft_from_snapshots(&snaps, &[1.0], &[1.0], &[1.0e3], 2, 1).unwrap();
        // x_embed = (u(t), u(t−Δ)) in trajectory order before sorting.
        let s0 = ds.samples.iter().find(|s| s.state == 0.2).unwrap();
        assert_eq!(s0.x_embed, vec![0.2, 0.1]);
    }
}
