//! Jacobian snapshots → TFT dataset (paper §II, eq. 3).
//!
//! Each snapshot `(G(k), C(k))` becomes a sampled transfer function
//!
//! ```text
//! H(k)(s_l) = Dᵀ·(G(k) + s_l·C(k))⁻¹·B
//! ```
//!
//! The frequency sweep factors one complex matrix per `(k, l)` pair;
//! sweeps across snapshots are embarrassingly parallel and are spread
//! over worker threads with `std::thread` scoped threads.

use rvf_circuit::{
    dc_operating_point, transfer_at, transient, Circuit, DcOptions, JacobianSnapshot, TranOptions,
    TranResult,
};
use rvf_numerics::{logspace, Complex, Lu};
use std::thread;

use crate::dataset::{StateSample, TftDataset};
use crate::error::TftError;

/// Configuration of a TFT extraction run.
#[derive(Debug, Clone)]
pub struct TftConfig {
    /// Lowest frequency of the grid (Hz).
    pub f_min_hz: f64,
    /// Highest frequency of the grid (Hz).
    pub f_max_hz: f64,
    /// Number of (log-spaced) frequency points.
    pub n_freqs: usize,
    /// Training transient length (s).
    pub t_train: f64,
    /// Transient step count.
    pub steps: usize,
    /// Number of snapshots to capture along the trajectory.
    pub n_snapshots: usize,
    /// Delay-embedding depth `q` of the state estimator (1 = `u(t)` only).
    pub embed_depth: usize,
    /// Worker threads for the frequency sweep.
    pub threads: usize,
}

impl Default for TftConfig {
    fn default() -> Self {
        Self {
            f_min_hz: 1.0,
            f_max_hz: 1.0e10,
            n_freqs: 60,
            // One period of a 100 kHz training sine: slow enough that
            // the Jacobian sampling stays quasi-static (the paper's
            // "low-frequency high-amplitude" pump), which keeps the
            // residue trajectories single-valued over the state.
            t_train: 1.0e-5,
            steps: 2000,
            n_snapshots: 100,
            embed_depth: 1,
            threads: 4,
        }
    }
}

impl TftConfig {
    /// The log-spaced frequency grid in hertz.
    pub fn freq_grid(&self) -> Vec<f64> {
        logspace(self.f_min_hz.log10(), self.f_max_hz.log10(), self.n_freqs)
    }
}

/// Transforms captured snapshots into a TFT dataset given the circuit's
/// port vectors `b` (input column) and `d` (output row).
///
/// # Errors
///
/// Returns [`TftError::NoSnapshots`], [`TftError::BadFrequencyGrid`],
/// [`TftError::DimensionMismatch`], or a numerics error if a frequency
/// solve hits a singular matrix.
pub fn tft_from_snapshots(
    snapshots: &[JacobianSnapshot],
    b: &[f64],
    d: &[f64],
    freqs_hz: &[f64],
    embed_depth: usize,
    threads: usize,
) -> Result<TftDataset, TftError> {
    if snapshots.is_empty() {
        return Err(TftError::NoSnapshots);
    }
    if freqs_hz.is_empty() || freqs_hz.iter().any(|&f| !(f > 0.0)) {
        return Err(TftError::BadFrequencyGrid);
    }
    let dim = b.len();
    for (i, s) in snapshots.iter().enumerate() {
        if s.g.shape() != (dim, dim) || s.c.shape() != (dim, dim) || s.x.len() != dim {
            return Err(TftError::DimensionMismatch {
                snapshot: i,
                expected: dim,
                got: s.g.rows(),
            });
        }
    }
    let s_grid: Vec<Complex> =
        freqs_hz.iter().map(|&f| Complex::from_im(2.0 * core::f64::consts::PI * f)).collect();

    let n = snapshots.len();
    let workers = threads.max(1).min(n);
    let mut results: Vec<Option<StateSample>> = vec![None; n];
    let chunk = n.div_ceil(workers);
    // Scoped threads: borrow snapshots/b/d without Arc.
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for (w, out_chunk) in results.chunks_mut(chunk).enumerate() {
            let lo = w * chunk;
            let s_grid = &s_grid;
            let handle = scope.spawn(move || -> Result<(), TftError> {
                for (off, slot) in out_chunk.iter_mut().enumerate() {
                    let snap = &snapshots[lo + off];
                    let mut h = Vec::with_capacity(s_grid.len());
                    for &s in s_grid {
                        h.push(
                            transfer_at(&snap.g, &snap.c, b, d, s)
                                .map_err(TftError::from_circuit_err)?,
                        );
                    }
                    // Static gain from the real DC solve.
                    let lu = Lu::factor(&snap.g)?;
                    let xg = lu.solve(b)?;
                    let h0: f64 = d.iter().zip(&xg).map(|(di, xi)| di * xi).sum();
                    *slot = Some(StateSample {
                        t: snap.t,
                        state: snap.u,
                        x_embed: vec![snap.u],
                        y: snap.y,
                        h,
                        h0: Complex::from_re(h0),
                    });
                }
                Ok(())
            });
            handles.push(handle);
        }
        for h in handles {
            h.join().expect("tft worker panicked")?;
        }
        Ok::<(), TftError>(())
    })?;

    let mut samples: Vec<StateSample> = results.into_iter().map(|s| s.expect("filled")).collect();
    // Delay embedding beyond depth 1: append lagged input values taken
    // from the snapshot sequence (trajectory order).
    if embed_depth > 1 {
        let us: Vec<f64> = samples.iter().map(|s| s.state).collect();
        for (i, s) in samples.iter_mut().enumerate() {
            for q in 1..embed_depth {
                let j = i.saturating_sub(q);
                s.x_embed.push(us[j]);
            }
        }
    }
    Ok(TftDataset::new(freqs_hz.to_vec(), samples))
}

impl TftError {
    fn from_circuit_err(e: rvf_circuit::CircuitError) -> Self {
        match e {
            rvf_circuit::CircuitError::Numerics(n) => TftError::Numerics(n),
            other => TftError::Circuit(other),
        }
    }
}

/// Runs the full training flow on a circuit: DC operating point, one
/// training transient with snapshot capture, then the TFT transform.
///
/// Returns the dataset together with the raw transient (reference
/// waveforms for validation).
///
/// # Errors
///
/// Propagates circuit analysis and TFT transform failures.
pub fn extract_from_circuit(
    circuit: &mut Circuit,
    cfg: &TftConfig,
) -> Result<(TftDataset, TranResult), TftError> {
    let op = dc_operating_point(circuit, &DcOptions::default())?;
    let every = (cfg.steps / cfg.n_snapshots).max(1);
    let opts = TranOptions {
        dt: cfg.t_train / cfg.steps as f64,
        t_stop: cfg.t_train,
        snapshot_every: Some(every),
        ..Default::default()
    };
    let tran = transient(circuit, &op, &opts)?;
    let b = circuit.input_column()?;
    let d = circuit.output_row()?;
    let dataset = tft_from_snapshots(
        &tran.snapshots,
        &b,
        &d,
        &cfg.freq_grid(),
        cfg.embed_depth,
        cfg.threads,
    )?;
    Ok((dataset, tran))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvf_circuit::{rc_ladder, Waveform};
    use rvf_numerics::db20;

    #[test]
    fn rc_ladder_tft_matches_analytic_single_section() {
        // One RC section: H(s) = 1/(1 + sRC) regardless of state
        // (linear circuit ⇒ flat trajectory).
        let r = 1.0e3;
        let c = 1.0e-9;
        let mut ckt = rc_ladder(
            1,
            r,
            c,
            Waveform::Sine {
                offset: 0.5,
                amplitude: 0.3,
                freq_hz: 1.0e4,
                phase_rad: 0.0,
                delay: 0.0,
            },
        );
        let cfg = TftConfig {
            f_min_hz: 1.0e3,
            f_max_hz: 1.0e7,
            n_freqs: 30,
            t_train: 1.0e-4,
            steps: 400,
            n_snapshots: 20,
            embed_depth: 1,
            threads: 2,
        };
        let (ds, _tran) = extract_from_circuit(&mut ckt, &cfg).unwrap();
        assert_eq!(ds.n_states(), 21);
        assert_eq!(ds.n_freqs(), 30);
        let rc = r * c;
        for sample in &ds.samples {
            assert!((sample.h0.re - 1.0).abs() < 1e-9, "static gain 1");
            for (f, h) in ds.freqs_hz.iter().zip(&sample.h) {
                let s = Complex::from_im(2.0 * core::f64::consts::PI * f);
                let want = (Complex::ONE + s.scale(rc)).inv();
                assert!((*h - want).abs() < 1e-9, "H mismatch at f={f}: {h:?} vs {want:?}");
            }
        }
        // Linear circuit: the hyperplane is flat along the state axis.
        let first = &ds.samples[0].h;
        let last = &ds.samples[ds.n_states() - 1].h;
        for (a, b) in first.iter().zip(last) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn nonlinear_circuit_has_state_dependent_tft() {
        use rvf_circuit::diode_clipper;
        let mut ckt = diode_clipper(Waveform::Sine {
            offset: 0.0,
            amplitude: 1.5,
            freq_hz: 1.0e5,
            phase_rad: 0.0,
            delay: 0.0,
        });
        let cfg = TftConfig {
            f_min_hz: 1.0e3,
            f_max_hz: 1.0e8,
            n_freqs: 20,
            t_train: 1.0e-5,
            steps: 500,
            n_snapshots: 50,
            embed_depth: 1,
            threads: 3,
        };
        let (ds, _) = extract_from_circuit(&mut ckt, &cfg).unwrap();
        // Small-signal gain at u≈0 (diodes off) is near RL/(R+RL);
        // at |u| large the conducting diode crushes the gain.
        let g_mid = ds.samples[ds.n_states() / 2].h0.re;
        let g_hi = ds.samples.last().unwrap().h0.re;
        assert!(g_mid > 0.7, "mid-state gain {g_mid}");
        assert!(g_hi < 0.2, "clipped gain {g_hi} (state {})", ds.samples.last().unwrap().state);
        // Gain drop in dB for good measure.
        assert!(db20(g_mid / g_hi) > 15.0);
    }

    #[test]
    fn error_paths() {
        let freqs = [1.0e3];
        assert!(matches!(
            tft_from_snapshots(&[], &[1.0], &[1.0], &freqs, 1, 1),
            Err(TftError::NoSnapshots)
        ));
        let snap = JacobianSnapshot {
            t: 0.0,
            u: 0.0,
            y: 0.0,
            x: vec![0.0],
            g: rvf_numerics::Mat::identity(1),
            c: rvf_numerics::Mat::zeros(1, 1),
        };
        assert!(matches!(
            tft_from_snapshots(&[snap.clone()], &[1.0], &[1.0], &[], 1, 1),
            Err(TftError::BadFrequencyGrid)
        ));
        assert!(matches!(
            tft_from_snapshots(&[snap], &[1.0, 0.0], &[1.0, 0.0], &freqs, 1, 1),
            Err(TftError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn embedding_depth_adds_lagged_states() {
        let snapmaker = |t: f64, u: f64| JacobianSnapshot {
            t,
            u,
            y: 0.0,
            x: vec![0.0],
            g: rvf_numerics::Mat::identity(1),
            c: rvf_numerics::Mat::zeros(1, 1),
        };
        let snaps = vec![snapmaker(0.0, 0.1), snapmaker(1.0, 0.2), snapmaker(2.0, 0.3)];
        let ds = tft_from_snapshots(&snaps, &[1.0], &[1.0], &[1.0e3], 2, 1).unwrap();
        // x_embed = (u(t), u(t−Δ)) in trajectory order before sorting.
        let s0 = ds.samples.iter().find(|s| s.state == 0.2).unwrap();
        assert_eq!(s0.x_embed, vec![0.2, 0.1]);
    }
}
