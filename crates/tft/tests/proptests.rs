//! Property-based tests for the TFT layer.

use proptest::prelude::*;
use rvf_numerics::{c, linspace, Complex, Mat};
use rvf_tft::{error_surface, reconstruct_static, Hyperplane, StateSample, TftDataset};

fn sample(state: f64, t: f64, gain: f64, freqs: &[f64]) -> StateSample {
    let h: Vec<Complex> = freqs
        .iter()
        .map(|&f| {
            let s = Complex::from_im(2.0 * core::f64::consts::PI * f);
            Complex::from_re(gain) * (Complex::ONE + s.scale(1e-9)).inv()
        })
        .collect();
    StateSample { t, state, x_embed: vec![state], y: gain * state, h, h0: c(gain, 0.0) }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dataset_always_sorted(states in prop::collection::vec(-2.0..2.0f64, 2..20)) {
        let freqs = vec![1e6, 1e8];
        let samples: Vec<StateSample> = states
            .iter()
            .enumerate()
            .map(|(i, &x)| sample(x, i as f64, 1.0, &freqs))
            .collect();
        let ds = TftDataset::new(freqs, samples);
        let got = ds.states();
        for w in got.windows(2) {
            prop_assert!(w[0] <= w[1], "not sorted: {got:?}");
        }
    }

    #[test]
    fn dynamic_plus_static_reconstructs_full(gain in 0.1..5.0f64, x in -1.0..1.0f64) {
        let freqs = vec![1e5, 1e7, 1e9];
        let ds = TftDataset::new(freqs, vec![sample(x, 0.0, gain, &[1e5, 1e7, 1e9])]);
        let dynamic = ds.dynamic_responses();
        let full = ds.full_responses();
        let h0 = ds.samples[0].h0;
        for (d, f) in dynamic[0].iter().zip(&full[0]) {
            prop_assert!(((*d + h0) - *f).abs() < 1e-12);
        }
    }

    #[test]
    fn thinning_preserves_subset(n in 2usize..30, step in 1usize..6) {
        let freqs = vec![1e6];
        let samples: Vec<StateSample> = (0..n)
            .map(|i| sample(i as f64, i as f64, 1.0, &freqs))
            .collect();
        let ds = TftDataset::new(freqs, samples);
        let thin = ds.thin_states(step);
        prop_assert_eq!(thin.n_states(), n.div_ceil(step));
        // Every thinned state exists in the original.
        let all = ds.states();
        for s in thin.states() {
            prop_assert!(all.contains(&s));
        }
    }

    #[test]
    fn perfect_model_error_surface_is_floor(gain in 0.2..4.0f64) {
        let freqs = vec![1e5, 1e7, 1e9];
        let samples: Vec<StateSample> = (0..8)
            .map(|i| sample(0.1 * i as f64, i as f64, gain, &[1e5, 1e7, 1e9]))
            .collect();
        let ds = TftDataset::new(freqs, samples);
        let es = error_surface(&ds, |_x, s| {
            Complex::from_re(gain) * (Complex::ONE + s.scale(1e-9)).inv()
        });
        prop_assert!(es.rms_complex < 1e-12);
        prop_assert!(es.max_phase_err_deg < 1e-8);
    }

    #[test]
    fn hyperplane_gain_monotone_in_response_gain(g1 in 0.1..1.0f64, factor in 1.1..4.0f64) {
        let freqs = vec![1e5, 1e7];
        let g2 = g1 * factor;
        let ds = TftDataset::new(
            freqs,
            vec![
                sample(0.0, 0.0, g1, &[1e5, 1e7]),
                sample(1.0, 1.0, g2, &[1e5, 1e7]),
            ],
        );
        let hp = Hyperplane::of_dataset(&ds);
        prop_assert!(hp.gain_db[(1, 0)] > hp.gain_db[(0, 0)]);
        // dB difference = 20·log10(factor).
        let diff = hp.gain_db[(1, 0)] - hp.gain_db[(0, 0)];
        prop_assert!((diff - 20.0 * factor.log10()).abs() < 1e-9);
    }

    #[test]
    fn static_reconstruction_inverts_differentiation(a in -2.0..2.0f64, b in -1.0..1.0f64,
                                                     cc in 0.1..2.0f64) {
        // y(u) = a + b·u + c·u²  ⇒ g(u) = b + 2c·u; reconstruct and compare.
        let u = linspace(-1.0, 1.0, 201);
        let g: Vec<f64> = u.iter().map(|&x| b + 2.0 * cc * x).collect();
        let curve = reconstruct_static(&u, &g, 0.0, a);
        for (&ui, &yi) in curve.u.iter().zip(&curve.y).step_by(17) {
            let want = a + b * ui + cc * ui * ui;
            prop_assert!((yi - want).abs() < 1e-3, "at {ui}: {yi} vs {want}");
        }
    }

    #[test]
    fn error_surface_shapes_match(k in 1usize..6, l in 1usize..5) {
        let freqs: Vec<f64> = (0..l).map(|i| 10f64.powi(5 + i as i32)).collect();
        let samples: Vec<StateSample> = (0..k)
            .map(|i| sample(i as f64, i as f64, 1.0, &freqs))
            .collect();
        let ds = TftDataset::new(freqs, samples);
        let es = error_surface(&ds, |_x, _s| Complex::ONE);
        prop_assert_eq!(es.gain_err_db.shape(), (k, l));
        prop_assert_eq!(es.phase_err_deg.shape(), (k, l));
        let _: &Mat = &es.gain_err_db;
    }
}
