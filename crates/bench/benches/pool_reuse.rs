//! Persistent pool vs per-round spawn at realistic relocation-round
//! counts.
//!
//! The recursive fit runs one small parallel region per relocation
//! round, per pole count, per stage — tens to low hundreds of rounds
//! per extraction. Before the pool, each region paid a spawn/join
//! cycle; with [`rvf_numerics::SweepPool`] the whole sequence pays one
//! pool construction and each region becomes an epoch handoff to parked
//! workers. This bench pits the two against each other on the same
//! task mix: `pool_reuse_pooled_r{R}` builds one pool for R rounds,
//! `pool_reuse_spawn_r{R}` builds (spawns/joins) a fresh pool per round
//! — exactly what the pre-pool `run_sweep_with` did per region.

use criterion::{criterion_group, criterion_main, Criterion};
use rvf_numerics::{SweepConfig, SweepPool};

/// Workers per round: fixed at 2 so the dispatch/spawn machinery is
/// actually exercised wherever the bench runs (on a 1-core container
/// `threads: 0` would resolve both paths to the inline loop and
/// measure nothing).
const WORKERS: usize = 2;

/// Tasks per round, sized like a per-response VF stage (the
/// diode-clipper dataset has ~40 responses).
const TASKS: usize = 40;

/// A small deterministic per-task kernel (~µs): an LCG-driven float
/// accumulation that the optimizer cannot fold away, standing in for
/// one response's block assembly + QR compression.
fn task_kernel(i: usize) -> Result<f64, ()> {
    let mut state = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut acc = 0.0f64;
    for _ in 0..400 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        acc += ((state >> 11) as f64 / (1u64 << 53) as f64).sqrt();
    }
    Ok(acc)
}

fn bench_pool_reuse(c: &mut Criterion) {
    for rounds in [8usize, 32, 128] {
        let cfg = SweepConfig::threads(WORKERS);
        c.bench_function(&format!("pool_reuse_pooled_r{rounds:03}"), |b| {
            b.iter(|| {
                // One construction for the whole round sequence — the
                // runtime the fitting layer now uses.
                let pool = SweepPool::new(WORKERS);
                let mut units = vec![(); WORKERS];
                let mut total = 0.0;
                for _ in 0..rounds {
                    let out =
                        pool.run_with(TASKS, &cfg, &mut units, |(), i| task_kernel(i)).unwrap();
                    total += out[TASKS - 1];
                }
                total
            })
        });
        c.bench_function(&format!("pool_reuse_spawn_r{rounds:03}"), |b| {
            b.iter(|| {
                // A fresh pool per round: spawn + join every region,
                // the pre-pool cost model.
                let mut total = 0.0;
                for _ in 0..rounds {
                    let pool = SweepPool::new(WORKERS);
                    let mut units = vec![(); WORKERS];
                    let out =
                        pool.run_with(TASKS, &cfg, &mut units, |(), i| task_kernel(i)).unwrap();
                    total += out[TASKS - 1];
                }
                total
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pool_reuse
}
criterion_main!(benches);
