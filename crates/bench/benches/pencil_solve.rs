//! Real-arithmetic jω kernel vs the general complex Hessenberg solve
//! on a jω grid — the per-frequency-point cost of a TFT sweep after
//! the pencil reduction.
//!
//! `pencil_solve_real_jw_{L}f` runs [`rvf_numerics::HtPencil::solve_reduced_jw`]
//! (split real/imaginary planes, scalar `f64` elimination, conjugate
//! multiplies instead of complex divisions) over an L-point log grid;
//! `pencil_solve_complex_{L}f` runs the reference path
//! ([`rvf_numerics::HtPencil::solve_reduced_complex`]: complex matrix
//! assembly + complex elimination) over the same grid. Both include the
//! projected-RHS setup once, outside the loop, as the sampler does.

use criterion::{criterion_group, criterion_main, Criterion};
use rvf_numerics::{logspace, Complex, HtPencil, Mat};

/// A buffer-sized synthetic MNA pencil (n = 36): diagonally dominant
/// conductance matrix, sparse-ish capacitance diagonal.
fn buffer_pencil() -> (Mat, Mat) {
    let n = 36;
    let g =
        Mat::from_fn(
            n,
            n,
            |i, j| {
                if i == j {
                    2.0e-3
                } else {
                    1.0e-4 * ((i * 31 + j * 17) as f64).sin()
                }
            },
        );
    let c = Mat::from_fn(n, n, |i, j| if i == j { 2.0e-14 } else { 0.0 });
    (g, c)
}

fn bench_pencil_solve(c: &mut Criterion) {
    let (g, cm) = buffer_pencil();
    let p = HtPencil::reduce(&g, &cm).unwrap();
    let n = p.dim();
    let b: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    let bt = p.project_input(&b).unwrap();
    for n_freqs in [30usize, 120] {
        let omegas: Vec<f64> = logspace(3.0, 10.0, n_freqs)
            .into_iter()
            .map(|f| 2.0 * core::f64::consts::PI * f)
            .collect();
        c.bench_function(&format!("pencil_solve_real_jw_{n_freqs}f"), |bch| {
            bch.iter(|| {
                omegas
                    .iter()
                    .map(|&w| p.solve_reduced_jw(w, &bt).unwrap()[n - 1])
                    .fold(Complex::ZERO, |acc, v| acc + v)
            })
        });
        c.bench_function(&format!("pencil_solve_complex_{n_freqs}f"), |bch| {
            bch.iter(|| {
                omegas
                    .iter()
                    .map(|&w| p.solve_reduced_complex(Complex::from_im(w), &bt).unwrap()[n - 1])
                    .fold(Complex::ZERO, |acc, v| acc + v)
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pencil_solve
}
criterion_main!(benches);
