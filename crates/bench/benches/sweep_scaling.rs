//! Naive per-frequency dense LU vs the reduced-pencil fast path on the
//! 5-section RC ladder — the scaling study behind the TFT sampler's
//! `transfer_sweep` crossover. The naive path refactors `G + s·C` at
//! every frequency (`O(L·n³)`); the reduced path pays one
//! Hessenberg–triangular reduction and then back-substitutes
//! (`O(n³ + L·n²)`), so its advantage grows linearly with the sweep
//! length `L`.

use criterion::{criterion_group, criterion_main, Criterion};
use rvf_circuit::{
    dc_operating_point, rc_ladder, transfer_at, transfer_sweep, DcOptions, ReducedTransfer,
    Waveform,
};
use rvf_numerics::{logspace, Complex, Mat};

/// The 5-section RC ladder's MNA pencil and ports at its DC operating
/// point (dim = ladder nodes + source branch).
fn ladder_pencil() -> (Mat, Mat, Vec<f64>, Vec<f64>) {
    let mut ckt = rc_ladder(5, 1.0e3, 1.0e-9, Waveform::Dc(0.5));
    // dc_operating_point finalizes the circuit, so eval is safe here.
    let x0 = dc_operating_point(&mut ckt, &DcOptions::default()).unwrap();
    let ev = ckt.eval(&x0, 0.0, 0.0, true);
    let b = ckt.input_column().unwrap();
    let d = ckt.output_row().unwrap();
    (ev.g.unwrap(), ev.c.unwrap(), b, d)
}

fn s_grid(n_freqs: usize) -> Vec<Complex> {
    logspace(3.0, 8.0, n_freqs)
        .into_iter()
        .map(|f| Complex::from_im(2.0 * core::f64::consts::PI * f))
        .collect()
}

fn bench_sweep_scaling(c: &mut Criterion) {
    let (g, cm, b, d) = ladder_pencil();
    for n_freqs in [10usize, 30, 60, 120] {
        let ss = s_grid(n_freqs);
        c.bench_function(&format!("sweep_naive_lu_{n_freqs}f"), |bch| {
            bch.iter(|| {
                ss.iter()
                    .map(|&s| transfer_at(&g, &cm, &b, &d, s).unwrap())
                    .collect::<Vec<Complex>>()
            })
        });
        c.bench_function(&format!("sweep_reduced_pencil_{n_freqs}f"), |bch| {
            bch.iter(|| {
                // Includes the per-snapshot reduction cost, as in the
                // sampler: reduce once, then evaluate every frequency.
                let rt = ReducedTransfer::new(&g, &cm, &b, &d).unwrap();
                ss.iter().map(|&s| rt.eval(s).unwrap()).collect::<Vec<Complex>>()
            })
        });
    }
}

fn bench_dispatch_heuristic(c: &mut Criterion) {
    // The production entry point with its crossover heuristic, at the
    // paper's sweep length.
    let (g, cm, b, d) = ladder_pencil();
    let ss = s_grid(60);
    c.bench_function("transfer_sweep_dispatch_60f", |bch| {
        bch.iter(|| transfer_sweep(&g, &cm, &b, &d, &ss).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_sweep_scaling, bench_dispatch_heuristic
}
criterion_main!(benches);
