//! Criterion microbenchmarks of the numerical kernels that dominate the
//! extraction (ablation data for DESIGN.md): the eigensolver behind
//! pole relocation, the per-response QR compression, and the complex
//! frequency solves of the TFT transform.

use criterion::{criterion_group, criterion_main, Criterion};
use rvf_numerics::{eigenvalues, jw_grid, logspace, CLu, CMat, Complex, Mat, Qr};
use rvf_vecfit::{fit, VfOptions};

fn bench_eigensolver(c: &mut Criterion) {
    // Diagonal-plus-rank-one in real block form, the relocation matrix
    // shape, at the paper's pole count.
    let n = 12;
    let mut a = Mat::zeros(n, n);
    for i in 0..n / 2 {
        let w = 10f64.powi(i as i32 + 3);
        a[(2 * i, 2 * i)] = -0.01 * w;
        a[(2 * i, 2 * i + 1)] = w;
        a[(2 * i + 1, 2 * i)] = -w;
        a[(2 * i + 1, 2 * i + 1)] = -0.01 * w;
    }
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] -= 1e-2 * 10f64.powi((j / 2) as i32 + 3);
        }
    }
    c.bench_function("eigenvalues_12x12_relocation_matrix", |b| {
        b.iter(|| eigenvalues(&a).unwrap())
    });
}

fn bench_complex_solve(c: &mut Criterion) {
    // One TFT frequency point on a buffer-sized MNA system.
    let n = 36;
    let g =
        Mat::from_fn(
            n,
            n,
            |i, j| {
                if i == j {
                    2.0e-3
                } else {
                    1.0e-4 * ((i * 31 + j * 17) as f64).sin()
                }
            },
        );
    let cc = Mat::from_fn(n, n, |i, j| if i == j { 2.0e-14 } else { 0.0 });
    let s = Complex::from_im(2.0 * core::f64::consts::PI * 1.0e9);
    let b_vec = vec![1.0; n];
    c.bench_function("complex_lu_solve_36x36_tft_point", |b| {
        b.iter(|| {
            let sys = CMat::from_real_pair(&g, s, &cc);
            let lu = CLu::factor(&sys).unwrap();
            lu.solve_real(&b_vec).unwrap()
        })
    });
}

fn bench_qr_compression(c: &mut Criterion) {
    // The per-response block QR of the fast VF formulation:
    // 120 realified rows, 13 columns.
    let m = Mat::from_fn(120, 13, |i, j| ((i * 7 + j * 13) as f64).sin());
    c.bench_function("qr_block_120x13_fast_vf", |b| {
        b.iter(|| {
            let f = Qr::factor(&m);
            f.r()
        })
    });
}

/// Synthetic 4-pole trajectory data: `k_responses` responses whose
/// residues drift with the normalized state `k/(K-1)` — the shape of a
/// TFT dataset after the frequency stage.
fn synth_responses(k_responses: usize, samples: &[Complex]) -> Vec<Vec<Complex>> {
    let poles = [
        Complex::new(-1.0e8, 2.0e9),
        Complex::new(-1.0e8, -2.0e9),
        Complex::new(-5.0e9, 1.5e10),
        Complex::new(-5.0e9, -1.5e10),
    ];
    (0..k_responses)
        .map(|k| {
            let x = k as f64 / (k_responses - 1).max(1) as f64;
            samples
                .iter()
                .map(|&s| {
                    poles
                        .iter()
                        .enumerate()
                        .map(|(i, &a)| {
                            let r = Complex::new(1.0e9 * (1.0 + x), 2.0e8 * x * (i as f64 + 1.0));
                            let r = if a.im < 0.0 { r.conj() } else { r };
                            r * (s - a).inv()
                        })
                        .sum()
                })
                .collect()
        })
        .collect()
}

fn bench_vf_fit(c: &mut Criterion) {
    // A full common-pole VF fit at the experiment's size: 100 responses,
    // 60 frequencies, 6 poles.
    let samples = jw_grid(&logspace(0.0, 10.0, 60));
    let data = synth_responses(100, &samples);
    let opts = VfOptions::frequency(4).with_iterations(5);
    c.bench_function("vector_fit_100responses_60freqs_4poles", |b| {
        b.iter(|| fit(&samples, &data, &opts).unwrap())
    });
}

fn bench_vf_k_scaling(c: &mut Criterion) {
    // Serial vs parallel per-response compression at growing response
    // counts. `threads: 1` pins the serial path; `threads: 0` takes one
    // worker per core (but stays serial below the engine's 8-response
    // crossover, so K = 4 documents the dispatch heuristic). Outputs
    // are bit-identical between the two paths; only wall-clock differs.
    let samples = jw_grid(&logspace(0.0, 10.0, 60));
    for &k_responses in &[4usize, 16, 64, 256] {
        let data = synth_responses(k_responses, &samples);
        let serial = VfOptions::frequency(4).with_iterations(5).with_threads(1);
        let parallel = VfOptions::frequency(4).with_iterations(5).with_threads(0);
        c.bench_function(&format!("vf_k_scaling_k{k_responses:03}_serial"), |b| {
            b.iter(|| fit(&samples, &data, &serial).unwrap())
        });
        c.bench_function(&format!("vf_k_scaling_k{k_responses:03}_parallel"), |b| {
            b.iter(|| fit(&samples, &data, &parallel).unwrap())
        });
    }
}

criterion_group! {
    name = benches;
    // Rows span ~10 µs (eigensolver) to ~27 ms (k=256 fits): cheap
    // enough that quick mode can afford 7 samples, which keeps the
    // MAD interval bench_diff builds from being degenerate on the
    // µs-scale kernel rows.
    config = Criterion::default().sample_size(10).quick_sample_size(7);
    targets = bench_eigensolver, bench_complex_solve, bench_qr_compression, bench_vf_fit,
        bench_vf_k_scaling
}
criterion_main!(benches);
