//! Criterion benchmarks of model *building* (Table I "Build Time"):
//! the RVF fit against the CAFFEINE GP regression on the same TFT data.

use criterion::{criterion_group, criterion_main, Criterion};
use rvf_bench::{buffer_circuit, caffeine_options, paper_rvf_options, paper_tft_config};
use rvf_caffeine::build_caffeine_hammerstein;
use rvf_caffeine::GpOptions;
use rvf_core::{fit_frequency_stage, fit_tft};
use rvf_tft::extract_from_circuit;

fn bench_builds(c: &mut Criterion) {
    // One shared dataset, as in the paper.
    let mut circuit = buffer_circuit();
    let (dataset, _) = extract_from_circuit(&mut circuit, &paper_tft_config()).unwrap();
    let rvf_opts = paper_rvf_options();

    c.bench_function("rvf_model_build_table1", |b| {
        b.iter(|| fit_tft(&dataset, &rvf_opts).unwrap())
    });

    let s_grid = dataset.s_grid();
    let dynamic = dataset.dynamic_responses();
    let freq_stage = fit_frequency_stage(&s_grid, &dynamic, &rvf_opts).unwrap();

    // Trimmed GP budget: the benchmark compares the per-iteration cost
    // shape, the table binary reports the full-budget wall time.
    let mut caff_opts = caffeine_options();
    caff_opts.gp = GpOptions { population: 32, generations: 15, ..caff_opts.gp };
    c.bench_function("caffeine_model_build_short_budget", |b| {
        b.iter(|| build_caffeine_hammerstein(&dataset, &freq_stage.fit.model, &caff_opts))
    });

    c.bench_function("frequency_stage_fit_only", |b| {
        b.iter(|| fit_frequency_stage(&s_grid, &dynamic, &rvf_opts).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_builds
}
criterion_main!(benches);
