//! Criterion benchmarks of the TFT data-generation pipeline (the
//! workload behind Fig. 6): training transient with snapshot capture
//! and the snapshot → frequency-domain transform.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rvf_bench::{buffer_circuit, paper_tft_config};
use rvf_circuit::{dc_operating_point, transient, DcOptions, TranOptions};
use rvf_tft::tft_from_snapshots;

fn bench_training_transient(c: &mut Criterion) {
    // A shortened training run (200 steps) keeps the benchmark tight
    // while exercising the same code path as the full experiment.
    c.bench_function("buffer_training_transient_200steps", |b| {
        b.iter_batched(
            || {
                let mut ckt = buffer_circuit();
                let op = dc_operating_point(&mut ckt, &DcOptions::default()).unwrap();
                (ckt, op)
            },
            |(mut ckt, op)| {
                let opts = TranOptions {
                    dt: 1.0e-5 / 200.0,
                    t_stop: 1.0e-5 / 10.0,
                    snapshot_every: Some(2),
                    ..Default::default()
                };
                transient(&mut ckt, &op, &opts).unwrap()
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_tft_transform(c: &mut Criterion) {
    // Capture once; benchmark only the frequency-domain transform.
    let mut ckt = buffer_circuit();
    let op = dc_operating_point(&mut ckt, &DcOptions::default()).unwrap();
    let opts = TranOptions {
        dt: 1.0e-5 / 400.0,
        t_stop: 1.0e-5 / 10.0,
        snapshot_every: Some(2),
        ..Default::default()
    };
    let tran = transient(&mut ckt, &op, &opts).unwrap();
    let b_col = ckt.input_column().unwrap();
    let d_row = ckt.output_row().unwrap();
    let freqs = paper_tft_config().freq_grid();
    c.bench_function("tft_transform_20snapshots_60freqs", |b| {
        b.iter(|| tft_from_snapshots(&tran.snapshots, &b_col, &d_row, &freqs, 1, 4).unwrap())
    });
}

fn bench_dc_operating_point(c: &mut Criterion) {
    c.bench_function("buffer_dc_operating_point", |b| {
        b.iter_batched(
            buffer_circuit,
            |mut ckt| dc_operating_point(&mut ckt, &DcOptions::default()).unwrap(),
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dc_operating_point, bench_training_transient, bench_tft_transform
}
criterion_main!(benches);
