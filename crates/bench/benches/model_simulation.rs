//! Criterion benchmarks of model *evaluation* (Table I "Speedup" and
//! Fig. 9): the transistor-level transient against the extracted RVF
//! and CAFFEINE models on the same 2.5 GS/s bit-pattern stimulus.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rvf_bench::{
    buffer_circuit, caffeine_options, paper_rvf_options, paper_tft_config, test_pattern,
};
use rvf_caffeine::build_caffeine_hammerstein;
use rvf_circuit::{
    dc_operating_point, high_speed_buffer, transient, BufferParams, DcOptions, TranOptions,
};
use rvf_core::{fit_frequency_stage, fit_tft};
use rvf_tft::extract_from_circuit;

fn bench_simulation(c: &mut Criterion) {
    // Build the models once.
    let mut circuit = buffer_circuit();
    let (dataset, _) = extract_from_circuit(&mut circuit, &paper_tft_config()).unwrap();
    let rvf_opts = paper_rvf_options();
    let rvf = fit_tft(&dataset, &rvf_opts).unwrap();
    let s_grid = dataset.s_grid();
    let dynamic = dataset.dynamic_responses();
    let freq_stage = fit_frequency_stage(&s_grid, &dynamic, &rvf_opts).unwrap();
    let caff = build_caffeine_hammerstein(&dataset, &freq_stage.fit.model, &caffeine_options());

    // The stimulus (shared): 4000 input samples at 2 ps.
    let (wave, dt, t_stop) = test_pattern();
    let inputs: Vec<f64> = {
        let n = (t_stop / dt) as usize;
        (0..=n).map(|i| wave.value(i as f64 * dt)).collect()
    };

    c.bench_function("spice_bit_pattern_transient", |b| {
        b.iter_batched(
            || {
                let mut ckt = high_speed_buffer(&BufferParams::default(), wave.clone());
                let op = dc_operating_point(&mut ckt, &DcOptions::default()).unwrap();
                (ckt, op)
            },
            |(mut ckt, op)| {
                transient(&mut ckt, &op, &TranOptions { dt, t_stop, ..Default::default() }).unwrap()
            },
            BatchSize::LargeInput,
        )
    });

    c.bench_function("rvf_model_bit_pattern", |b| b.iter(|| rvf.model.simulate(dt, &inputs)));

    c.bench_function("caffeine_model_bit_pattern", |b| {
        b.iter(|| caff.simulate(dt, &inputs).unwrap())
    });
}

criterion_group! {
    name = benches;
    // The SPICE transient row is ~40 ms/sample; 5 quick samples keep
    // the CI quick pass cheap while giving bench_diff a usable MAD
    // (3 samples collapse the noise interval to near zero width).
    config = Criterion::default().sample_size(10).quick_sample_size(5);
    targets = bench_simulation
}
criterion_main!(benches);
