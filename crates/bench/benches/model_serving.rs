//! Criterion benchmarks of the compiled batch-serving runtime: the
//! macromodel-deployment scenario behind Table I "Speedup" — one
//! extracted buffer model, many bit-pattern stimuli.
//!
//! Rows:
//!
//! * `serving_reference_single` — the scalar oracle loop
//!   (`HammersteinModel::simulate_reference`);
//! * `serving_compiled_single` — the same stimulus through a
//!   pre-compiled [`rvf_core::CompiledSim`];
//! * `serving_compile_lowering` — the one-off model → tables lowering;
//! * `serving_batch_b{001,016,256}` — batch evaluation of 1/16/256
//!   distinct bit patterns through one compiled model (serial worker:
//!   the win on a 1-core runner is lane vectorization + memoized
//!   drives, not threads);
//! * `serving_sequential_b256` — the same 256 stimuli as 256 separate
//!   single-stimulus calls, the baseline the batch path must beat;
//! * `serving_stream_sustained_c064` / `serving_stream_sustained_c512`
//!   — 64k samples pushed through one `StreamingSession` via the
//!   zero-allocation `feed_into` in 64- / 512-sample chunks: the
//!   sustained-Msamples/s figure of the streaming tier (must hold the
//!   batch path's throughput);
//! * `serving_session_set_s064` — 64 live sessions advanced in lockstep
//!   lane groups through four 256-sample chunk rounds (serial advance:
//!   the 1-core-runner scheduler scenario).
//!
//! Throughput = (stimuli × samples) / time.

use criterion::{criterion_group, criterion_main, Criterion};
use rvf_bench::{buffer_circuit, paper_rvf_options, paper_tft_config, test_pattern};
use rvf_circuit::Waveform;
use rvf_core::fit_tft;
use rvf_tft::extract_from_circuit;

/// One 2.5 GS/s bit pattern, 2 ps sampling. The 20 symbols come from a
/// seeded LCG (not `prbs7`, whose 7-bit LFSR only has 127 phases), so
/// all 256 batch stimuli are genuinely distinct.
fn pattern_stimulus(seed: u64, n_samples: usize, dt: f64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let bits: Vec<bool> = (0..20)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 62) & 1 == 1
        })
        .collect();
    let wave =
        Waveform::BitPattern { v0: 0.5, v1: 1.3, bits, rate_hz: 2.5e9, rise: 60e-12, delay: 0.0 };
    (0..n_samples).map(|i| wave.value(i as f64 * dt)).collect()
}

fn bench_serving(c: &mut Criterion) {
    // One extracted buffer model shared by every row.
    let mut circuit = buffer_circuit();
    let (dataset, _) = extract_from_circuit(&mut circuit, &paper_tft_config()).unwrap();
    let model = fit_tft(&dataset, &paper_rvf_options()).unwrap().model;
    let sim = model.compile();

    // The Fig. 9 validation stimulus for the single-stimulus rows.
    let (wave, dt, t_stop) = test_pattern();
    let inputs: Vec<f64> = {
        let n = (t_stop / dt) as usize;
        (0..=n).map(|i| wave.value(i as f64 * dt)).collect()
    };

    c.bench_function("serving_reference_single", |b| {
        b.iter(|| model.simulate_reference(dt, &inputs))
    });
    c.bench_function("serving_compiled_single", |b| b.iter(|| sim.simulate(dt, &inputs)));
    c.bench_function("serving_compile_lowering", |b| b.iter(|| model.compile()));

    // Batch serving: 256 distinct 1000-sample bit patterns.
    let stimuli: Vec<Vec<f64>> = (0..256).map(|k| pattern_stimulus(k, 1000, dt)).collect();
    let refs: Vec<&[f64]> = stimuli.iter().map(Vec::as_slice).collect();
    for batch in [1usize, 16, 256] {
        let id = format!("serving_batch_b{batch:03}");
        let slice = &refs[..batch];
        c.bench_function(&id, |b| b.iter(|| sim.simulate_batch(dt, slice)));
    }
    c.bench_function("serving_sequential_b256", |b| {
        b.iter(|| refs.iter().map(|s| sim.simulate(dt, s)).collect::<Vec<_>>())
    });

    // Sustained streaming: one long stimulus through a StreamingSession
    // in fixed-size chunks over the allocation-free feed_into path.
    let stream: Vec<f64> = pattern_stimulus(999, 65_536, dt);
    for chunk in [64usize, 512] {
        let id = format!("serving_stream_sustained_c{chunk:03}");
        c.bench_function(&id, |b| {
            b.iter(|| {
                let mut session = sim.session(dt).unwrap();
                let mut out = vec![0.0; chunk];
                let mut acc = 0.0;
                for piece in stream.chunks(chunk) {
                    session.feed_into(piece, &mut out[..piece.len()]).unwrap();
                    acc += out[piece.len() - 1];
                }
                acc
            })
        });
    }

    // Many live sessions advanced in lockstep lane groups: 64 sessions
    // × 4 rounds × 256-sample chunks (65,536 samples per iteration).
    let session_stims: Vec<Vec<f64>> =
        (0..64).map(|k| pattern_stimulus(1000 + k, 1024, dt)).collect();
    c.bench_function("serving_session_set_s064", |b| {
        b.iter(|| {
            let mut set = sim.sessions(dt).unwrap();
            let ids: Vec<_> = (0..64).map(|_| set.open()).collect();
            let mut acc = 0.0;
            for round in 0..4 {
                for (id, u) in ids.iter().zip(&session_stims) {
                    set.push(*id, &u[round * 256..(round + 1) * 256]).unwrap();
                }
                for (_, out) in set.advance().unwrap() {
                    acc += out[out.len() - 1];
                }
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    // 7 quick-mode samples (vs the global default of 3): the committed
    // baselines for this suite need a usable median ± MAD interval.
    config = Criterion::default().sample_size(10).quick_sample_size(7);
    targets = bench_serving
}
criterion_main!(benches);
