//! Serving-tier throughput under injected faults: 1000 simulated
//! clients streaming chunks through one `rvf_serve::Scheduler` while a
//! seeded chaos injector perturbs a fraction of the traffic.
//!
//! Rows (tracked by `bench_diff` against the committed baselines):
//!
//! * `serving_faults_sustained_f000` — clean traffic (0% faults): the
//!   ceiling the faulted rows are measured against;
//! * `serving_faults_sustained_f010` — 1% of submissions faulted;
//! * `serving_faults_sustained_f100` — 10% of submissions faulted;
//! * `serving_faults_chunk_p99_f000` / `_f010` / `_f100` — the ~p99
//!   per-chunk service latency of one round (computed inside the
//!   routine and recorded via `Bencher::iter_custom`), so the *tail*
//!   cost of fault handling is regression-tracked, not just the
//!   sustained median;
//! * `serving_faults_replicated_f010` — the 1% faulted round with a
//!   warm standby attached: the primary journals every committed
//!   mutation into a [`SharedLog`] and a [`Follower`] tails it to a
//!   verified digest inside the timed region, so the delta against
//!   `serving_faults_sustained_f010` is the full cost of pairing
//!   (delta encode + append + follower apply + digest checks).
//!
//! A fault budget of `p` permille is split 40% worker panics (the
//! whole round retries with backoff), 30% NaN/∞ stimulus (rejected at
//! admission, clean resubmit), 20% oversized chunks (shed with
//! `ChunkTooLarge`, clean resubmit), 10% mid-stream closes (session
//! closed and reopened). Every iteration therefore serves the same
//! 64,000 accepted samples regardless of fault rate — the measured
//! delta is pure fault-handling overhead.
//!
//! Before the criterion rows run, one instrumented pass per rate
//! prints sustained Msamples/s and the p99 per-chunk service latency
//! (submit → completion, wall clock) so the tail cost of retries is
//! visible alongside the tracked medians.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use rvf_bench::{buffer_circuit, paper_rvf_options, paper_tft_config};
use rvf_core::fit_tft;
use rvf_serve::{
    chaos::{self, ChaosConfig, ChaosInjector, Fault},
    Event, Follower, ModelRegistry, RequestId, Scheduler, ServeConfig, SessionHandle, SharedLog,
};
use rvf_tft::extract_from_circuit;

const CLIENTS: usize = 1000;
const CHUNK: usize = 64;
const DEADLINE_SLACK: u64 = 10_000;

fn chaos_config(permille: u16) -> ChaosConfig {
    ChaosConfig {
        seed: 0xFA_17_2013,
        worker_panic_permille: permille * 4 / 10,
        bad_stimulus_permille: permille * 3 / 10,
        oversized_chunk_permille: permille / 5,
        close_session_permille: permille / 10,
        // Kill–restore cycles and primary failovers measure the
        // durability/replication layers, not steady traffic; the chaos
        // and replica test suites own those fault classes.
        crash_kill_permille: 0,
        primary_kill_permille: 0,
        primary_kill_max_lag: 0,
    }
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        max_sessions: 2048,
        max_queued_requests: 2048,
        max_queued_samples: 1 << 20,
        max_chunk_samples: CHUNK,
        retry_backoff_base: 1,
        max_retries: 6,
        rebuild_after_panics: 64,
        ..Default::default()
    }
}

struct Harness {
    sched: Scheduler,
    clients: Vec<SessionHandle>,
    inj: ChaosInjector,
    now: u64,
    dt: f64,
    phase: u64,
}

impl Harness {
    fn new(permille: u16, sim: rvf_core::CompiledSim, dt: f64) -> Self {
        let registry = ModelRegistry::build([("buffer".to_string(), sim)]);
        let mut sched = Scheduler::new(registry, serve_config());
        let model = sched.registry().id("buffer").expect("registered");
        let clients =
            (0..CLIENTS).map(|_| sched.open_session(model, dt, 0).expect("open")).collect();
        Self {
            sched,
            clients,
            inj: ChaosInjector::new(chaos_config(permille)),
            now: 0,
            dt,
            phase: 0,
        }
    }

    fn chunk(&mut self) -> Vec<f64> {
        self.phase += 1;
        let p = self.phase as f64;
        (0..CHUNK).map(|i| 0.9 + 0.4 * ((i as f64 + p) * 0.11).sin()).collect()
    }

    /// Submits one chunk per client (applying any drawn fault, then the
    /// clean chunk so the accepted workload is identical across rates)
    /// and returns the submitted request ids.
    fn submit_round(&mut self) -> Vec<RequestId> {
        let model = self.sched.registry().id("buffer").expect("registered");
        let mut ids = Vec::with_capacity(CLIENTS);
        for c in 0..CLIENTS {
            let chunk = self.chunk();
            match self.inj.sample() {
                Some(Fault::WorkerPanic) => chaos::arm_worker_panic(),
                Some(Fault::BadStimulus) => {
                    let mut bad = chunk.clone();
                    self.inj.corrupt(&mut bad);
                    let rejected = self.sched.submit(self.clients[c], &bad, self.now, self.now + 1);
                    assert!(rejected.is_err(), "corrupted chunk must be shed");
                }
                Some(Fault::OversizedChunk) => {
                    let oversized = vec![1.0; CHUNK + 1];
                    let rejected =
                        self.sched.submit(self.clients[c], &oversized, self.now, self.now + 1);
                    assert!(rejected.is_err(), "oversized chunk must be shed");
                }
                Some(Fault::CloseSession) => {
                    self.sched.close_session(self.clients[c]).expect("close");
                    self.clients[c] =
                        self.sched.open_session(model, self.dt, self.now).expect("reopen");
                }
                None | Some(_) => {}
            }
            let id = self
                .sched
                .submit(self.clients[c], &chunk, self.now, self.now + DEADLINE_SLACK)
                .expect("clean submit");
            ids.push(id);
        }
        ids
    }

    /// Ticks until the queue drains, returning served samples and the
    /// completion order of request ids.
    fn drain(&mut self) -> (usize, Vec<RequestId>) {
        let mut samples = 0;
        let mut done = Vec::new();
        for _ in 0..10_000 {
            if self.sched.queued_requests() == 0 {
                break;
            }
            self.now += 1;
            for event in self.sched.tick(self.now) {
                match event {
                    Event::Completed { output, request, .. } => {
                        samples += output.len();
                        done.push(request);
                    }
                    Event::Failed { error, .. } => panic!("request failed: {error}"),
                    _ => {}
                }
            }
        }
        assert_eq!(self.sched.queued_requests(), 0, "scheduler wedged");
        (samples, done)
    }
}

/// Runs `rounds` rounds of 1000 clients with wall clocks around each
/// round and returns `(served samples, elapsed seconds, ~p99 per-chunk
/// service latency)`. A retried chunk spans every tick of its panicked
/// rounds, so the p99 is where fault cost shows up. Every request of a
/// round shares a submit instant (submits are microseconds; service is
/// the millisecond part), so each completion's latency is measured from
/// its round's start.
fn measured_rounds(harness: &mut Harness, rounds: usize) -> (usize, f64, Duration) {
    let mut latencies_ns: Vec<u128> = Vec::with_capacity(rounds * CLIENTS);
    let mut total_samples = 0usize;
    let started = Instant::now();
    for _ in 0..rounds {
        let submitted_at = Instant::now();
        let ids = harness.submit_round();
        let (samples, done) = harness.drain();
        total_samples += samples;
        let round_end = submitted_at.elapsed().as_nanos();
        let per_chunk = round_end / (ids.len().max(1) as u128);
        for _ in &done {
            latencies_ns.push(per_chunk);
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies_ns.sort_unstable();
    let p99 = latencies_ns
        .get(latencies_ns.len().saturating_sub(1).min(latencies_ns.len() * 99 / 100))
        .copied()
        .unwrap_or(0);
    (total_samples, elapsed, Duration::from_nanos(p99 as u64))
}

/// One instrumented pass printing sustained throughput and the ~p99
/// chunk latency (the same statistic the `serving_faults_chunk_p99_*`
/// rows track, here with the throughput context alongside).
fn instrumented_pass(harness: &mut Harness, rounds: usize, label: &str) {
    let (total_samples, elapsed, p99) = measured_rounds(harness, rounds);
    eprintln!(
        "serving_under_faults {label}: {:.2} Msamples/s sustained, ~p99 chunk latency {:.1} µs \
         ({CLIENTS} clients, {rounds} rounds, {total_samples} samples)",
        total_samples as f64 / elapsed / 1.0e6,
        p99.as_nanos() as f64 / 1.0e3,
    );
}

/// Injected worker panics are contained by the pool, but the default
/// panic hook would still print a backtrace per injection — stderr IO
/// that would bill fault *logging*, not fault *handling*, to the
/// faulted rows. Silence exactly the injected payload.
fn install_quiet_poison_hook() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let injected = payload
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected serving worker panic"))
            .or_else(|| {
                payload
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected serving worker panic"))
            })
            .unwrap_or(false);
        if !injected {
            default(info);
        }
    }));
}

fn bench_serving_under_faults(c: &mut Criterion) {
    install_quiet_poison_hook();
    // One extracted buffer model shared by every rate.
    let mut circuit = buffer_circuit();
    let (dataset, _) = extract_from_circuit(&mut circuit, &paper_tft_config()).unwrap();
    let model = fit_tft(&dataset, &paper_rvf_options()).unwrap().model;
    let dt = 2.0e-12;

    for (permille, label) in [(0u16, "f000"), (10, "f010"), (100, "f100")] {
        let mut harness = Harness::new(permille, model.compile(), dt);
        instrumented_pass(&mut harness, 3, label);
        let id = format!("serving_faults_sustained_{label}");
        c.bench_function(&id, |b| {
            b.iter(|| {
                harness.submit_round();
                let (samples, _) = harness.drain();
                assert_eq!(samples, CLIENTS * CHUNK, "every accepted chunk must be served");
                samples
            })
        });
        // Tail-latency row: each recorded "duration" is the ~p99
        // per-chunk service latency over a 3-round pass, measured inside
        // the routine — `iter_custom` records it verbatim, so bench_diff
        // tracks the tail like any other timing.
        let id = format!("serving_faults_chunk_p99_{label}");
        c.bench_function(&id, |b| {
            b.iter_custom(|_iters| {
                let (samples, _, p99) = measured_rounds(&mut harness, 3);
                assert_eq!(samples, 3 * CLIENTS * CHUNK, "every accepted chunk must be served");
                p99
            })
        });
    }

    // Replicated-pair row: the 1% faulted load with a warm standby.
    // The primary journals every committed mutation (a round is ~2k
    // deltas: one admit + one completion per client, plus fault
    // handling) and the follower tails the shared log to a verified
    // digest inside the timed region. Compare against
    // `serving_faults_sustained_f010` for the pairing overhead.
    let mut harness = Harness::new(10, model.compile(), dt);
    let log = SharedLog::new();
    harness.sched.attach_replica(Box::new(log.clone()), 512).expect("attach standby");
    let mut follower = Follower::new(harness.sched.registry().as_ref().clone());
    c.bench_function("serving_faults_replicated_f010", |b| {
        b.iter(|| {
            harness.submit_round();
            let (samples, _) = harness.drain();
            assert_eq!(samples, CLIENTS * CHUNK, "every accepted chunk must be served");
            follower.tail(&log.bytes()).expect("standby applies the round's deltas");
            samples
        })
    });
    // The pair must not have drifted over the whole run: the standby's
    // reconstructed state hashes identically to the primary's.
    let primary = harness.sched.state_digest().expect("primary digest");
    let standby = follower.state_digest().expect("standby digest");
    assert_eq!(primary, standby, "standby diverged from primary after the bench run");
}

criterion_group! {
    name = benches;
    // Small sample counts: each iteration already serves 64k samples
    // across 1000 sessions (plus fault-retry rounds at f010/f100).
    config = Criterion::default().sample_size(10).quick_sample_size(5);
    targets = bench_serving_under_faults
}
criterion_main!(benches);
