//! # rvf-bench
//!
//! Shared experiment configuration and helpers for the benchmark harness
//! that regenerates every table and figure of the DATE 2013 TFT-RVF
//! paper. See `src/bin/` for the per-figure binaries and `benches/` for
//! the Criterion benchmarks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compare;
pub mod experiment;

pub use experiment::{
    buffer_circuit, caffeine_options, paper_rvf_options, paper_tft_config, test_pattern,
    train_waveform, PaperSetup,
};
