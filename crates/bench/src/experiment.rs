//! The canonical experiment setup shared by all figure/table binaries
//! and Criterion benchmarks: the paper's §IV configuration mapped onto
//! the synthetic buffer.

use rvf_caffeine::{CaffeineOptions, GpOptions};
use rvf_circuit::{high_speed_buffer, prbs7, BufferParams, Circuit, Waveform};
use rvf_core::RvfOptions;
use rvf_tft::TftConfig;

/// Bundle of everything the experiments share.
#[derive(Debug, Clone)]
pub struct PaperSetup {
    /// TFT extraction configuration (~100 snapshots, 1 Hz–10 GHz grid).
    pub tft: TftConfig,
    /// RVF options (ε, pole budgets).
    pub rvf: RvfOptions,
    /// CAFFEINE baseline options.
    pub caffeine: CaffeineOptions,
}

impl Default for PaperSetup {
    fn default() -> Self {
        Self { tft: paper_tft_config(), rvf: paper_rvf_options(), caffeine: caffeine_options() }
    }
}

/// The training stimulus: one period of a low-frequency, high-amplitude
/// sine sweeping the 0.4–1.4 V input range (paper §IV). 100 kHz keeps
/// the Jacobian sampling quasi-static against the 3 GHz buffer.
pub fn train_waveform() -> Waveform {
    Waveform::Sine { offset: 0.9, amplitude: 0.5, freq_hz: 1.0e5, phase_rad: 0.0, delay: 0.0 }
}

/// The buffer under test with the training stimulus attached.
pub fn buffer_circuit() -> Circuit {
    high_speed_buffer(&BufferParams::default(), train_waveform())
}

/// TFT configuration: ~100 snapshots over one training period, 60
/// log-spaced frequencies from 1 Hz to 10 GHz.
pub fn paper_tft_config() -> TftConfig {
    TftConfig {
        f_min_hz: 1.0,
        f_max_hz: 1.0e10,
        n_freqs: 60,
        t_train: 1.0e-5,
        steps: 2000,
        n_snapshots: 100,
        embed_depth: 1,
        threads: 4,
    }
}

/// RVF options used by the headline experiment. The paper quotes
/// ε = 10⁻³ on its data scale; our ε is relative to the dynamic-part
/// peak, where 10⁻⁴ reproduces the paper's accuracy (see EXPERIMENTS.md).
pub fn paper_rvf_options() -> RvfOptions {
    RvfOptions { epsilon: 1e-4, max_state_poles: 20, ..Default::default() }
}

/// CAFFEINE baseline options: polynomial (integrable) subset so the
/// time-domain comparison is possible, mirroring the paper's manual
/// simplification of the base functions.
pub fn caffeine_options() -> CaffeineOptions {
    CaffeineOptions {
        gp: GpOptions {
            population: 64,
            generations: 60,
            max_terms: 9,
            max_power: 8,
            ..Default::default()
        },
        integrable_only: true,
    }
}

/// The validation stimulus: 2.5 GS/s PRBS-7 bit pattern with finite
/// rise time (paper Fig. 9). Returns `(waveform, dt, t_stop)`.
pub fn test_pattern() -> (Waveform, f64, f64) {
    let wave = Waveform::BitPattern {
        v0: 0.5,
        v1: 1.3,
        bits: prbs7(0x2f, 20),
        rate_hz: 2.5e9,
        rise: 60e-12,
        delay: 0.0,
    };
    (wave, 2.0e-12, 8.0e-9)
}
