//! Ablation: the training-pump frequency. The TFT premise is
//! *quasi-static* Jacobian sampling — the internal state must track the
//! input so that the snapshots are a single-valued function of the
//! state estimator. Pumping too fast leaves hysteresis (up/down-sweep
//! branches disagree), which becomes an irreducible fitting noise floor.
//! This is why the paper trains with a "low-frequency high-amplitude"
//! sine.
//!
//! ```sh
//! cargo run --release -p rvf-bench --bin ablation_quasistatic
//! ```

use rvf_bench::paper_rvf_options;
use rvf_circuit::{high_speed_buffer, BufferParams, Waveform};
use rvf_core::fit_tft;
use rvf_tft::{error_surface, extract_from_circuit, TftConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{:>12} {:>14} {:>16} {:>14}", "pump [Hz]", "hysteresis", "surface RMS", "freq poles");
    for &f in &[5.0e7, 1.0e7, 2.0e6, 4.0e5, 1.0e5, 2.0e4] {
        let train =
            Waveform::Sine { offset: 0.9, amplitude: 0.5, freq_hz: f, phase_rad: 0.0, delay: 0.0 };
        let mut buffer = high_speed_buffer(&BufferParams::default(), train);
        let cfg = TftConfig { t_train: 1.0 / f, ..TftConfig::default() };
        let (dataset, _) = extract_from_circuit(&mut buffer, &cfg)?;

        // Hysteresis metric: worst disagreement of the static gain
        // between the up- and down-sweep branches at matched states.
        let mut hyst = 0.0_f64;
        let n = dataset.samples.len();
        for i in 0..n {
            for j in (i + 1)..n {
                let a = &dataset.samples[i];
                let b = &dataset.samples[j];
                if (a.state - b.state).abs() < 1e-3 {
                    hyst = hyst.max((a.h0.re - b.h0.re).abs());
                }
            }
        }

        let report = fit_tft(&dataset, &paper_rvf_options())?;
        let es = error_surface(&dataset, |x, s| report.model.transfer(x, s));
        println!(
            "{:>12.1e} {:>14.3e} {:>13.1} dB {:>14}",
            f, hyst, es.rms_complex_db, report.diagnostics.n_freq_poles
        );
    }
    println!();
    println!("reading: the achievable hyperplane accuracy tracks the hysteresis");
    println!("of the sampled trajectories; below ~1 MHz (pump 3000x under the");
    println!("3 GHz bandwidth) the sampling is quasi-static and the fit reaches");
    println!("the paper's accuracy regime.");
    Ok(())
}
