//! Fig. 7 of the paper: the RVF model hyperplane (top) and the RMSE
//! contours of gain and phase against the TFT data (bottom).
//!
//! Paper reference points: maximum gain error ≈ −60 dB; maximum phase
//! error ≤ 150° occurring only at high frequencies where the gain is
//! negligible (< −70 dB).
//!
//! ```sh
//! cargo run --release -p rvf-bench --bin fig7_rvf_fit
//! ```

use rvf_bench::{buffer_circuit, paper_rvf_options, paper_tft_config};
use rvf_core::fit_tft;
use rvf_tft::{error_surface, extract_from_circuit, Hyperplane};

fn print_error_contours(name: &str, states: &[f64], freqs: &[f64], m: &rvf_numerics::Mat) {
    println!("--- {name} error contours ---");
    let srows: Vec<usize> = (0..10).map(|i| i * (states.len() - 1) / 9).collect();
    let fcols: Vec<usize> = (0..10).map(|j| j * (freqs.len() - 1) / 9).collect();
    print!("{:>8} |", "x \\ f");
    for &j in &fcols {
        print!(" {:>9.2e}", freqs[j]);
    }
    println!();
    for &i in &srows {
        print!("{:>8.3} |", states[i]);
        for &j in &fcols {
            print!(" {:>9.1}", m[(i, j)]);
        }
        println!();
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut circuit = buffer_circuit();
    let (dataset, _train) = extract_from_circuit(&mut circuit, &paper_tft_config())?;
    let opts = paper_rvf_options();
    let report = fit_tft(&dataset, &opts)?;
    println!(
        "RVF fit: {} frequency poles, state poles {:?}, static {} (epsilon {:.0e})",
        report.diagnostics.n_freq_poles,
        report.diagnostics.state_pole_counts,
        report.diagnostics.static_pole_count,
        opts.epsilon
    );
    println!("(paper: 12 frequency poles, 10 state poles per residue at epsilon 1e-3)");
    println!();

    // Top of the figure: the model hyperplane.
    let model_hp = Hyperplane::of_model(&dataset, |x, s| report.model.transfer(x, s));
    println!(
        "model hyperplane: gain in [{:.1}, {:.1}] dB over {} states x {} freqs",
        model_hp.gain_db.as_slice().iter().cloned().fold(f64::INFINITY, f64::min),
        model_hp.gain_db.as_slice().iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        model_hp.states.len(),
        model_hp.freqs_hz.len()
    );
    println!();

    // Bottom of the figure: error contours.
    let es = error_surface(&dataset, |x, s| report.model.transfer(x, s));
    print_error_contours("RVF gain [dB]", &es.states, &es.freqs_hz, &es.gain_err_db);
    println!();
    print_error_contours("RVF phase [deg]", &es.states, &es.freqs_hz, &es.phase_err_deg);
    println!();
    println!("summary (paper reference):");
    println!("  max gain error           : {:.1} dB   (paper: about -60 dB)", es.max_gain_err_db);
    println!("  max phase error          : {:.1} deg  (paper: <= 150 deg)", es.max_phase_err_deg);
    println!(
        "  max phase err (gain>-70dB): {:.1} deg  (paper: negligible where gain matters)",
        es.max_phase_err_deg_significant
    );
    println!(
        "  complex RMS over surface : {:.1} dB   (Table I 'TFT RMSE': -62 dB)",
        es.rms_complex_db
    );
    Ok(())
}
