//! Ablation: training-set size. The paper claims "Only a few training
//! points are needed for robust model extraction, as the model is based
//! upon the internal circuit matrix." This binary thins the ~100
//! snapshots and tracks the hyperplane accuracy (evaluated on the FULL
//! dataset, so thin models are scored on states they never saw).
//!
//! ```sh
//! cargo run --release -p rvf-bench --bin ablation_snapshots
//! ```

use rvf_bench::{buffer_circuit, paper_tft_config};
use rvf_core::{fit_tft, RvfOptions};
use rvf_tft::{error_surface, extract_from_circuit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut circuit = buffer_circuit();
    let (dataset, _) = extract_from_circuit(&mut circuit, &paper_tft_config())?;
    println!("{:>6} {:>8} {:>16} {:>22}", "thin", "states", "surface RMS", "state poles");
    for &thin in &[1usize, 2, 4, 8] {
        let train_set = dataset.thin_states(thin);
        // Cap the state-pole budget to what the thinned set supports.
        let max_sp = ((train_set.n_states().saturating_sub(2)) / 2).clamp(2, 20);
        let opts = RvfOptions { epsilon: 1e-4, max_state_poles: max_sp, ..Default::default() };
        let report = fit_tft(&train_set, &opts)?;
        // Score on the full dataset (generalization over the state).
        let es = error_surface(&dataset, |x, s| report.model.transfer(x, s));
        println!(
            "{:>6} {:>8} {:>13.1} dB {:>22}",
            thin,
            train_set.n_states(),
            es.rms_complex_db,
            format!("{:?}", report.diagnostics.state_pole_counts)
        );
    }
    println!();
    println!("reading: accuracy degrades gracefully as the training set thins —");
    println!("the snapshots sample the internal Jacobian, not output waveforms,");
    println!("so each carries dense information (the paper's robustness claim).");
    Ok(())
}
