//! Fig. 6 of the paper: the TFT magnitude and phase hyperplane of the
//! output buffer as a function of state (`x = u(t)`) and frequency.
//!
//! Prints the two surfaces as downsampled tables (state rows × frequency
//! columns) plus the axis ranges, so the plotted shape — a low-pass
//! surface whose gain ridge collapses at the saturated state extremes —
//! can be compared against the paper directly.
//!
//! ```sh
//! cargo run --release -p rvf-bench --bin fig6_tft_hyperplane
//! ```

use rvf_bench::{buffer_circuit, paper_tft_config};
use rvf_tft::{extract_from_circuit, Hyperplane};

fn print_surface(name: &str, states: &[f64], freqs: &[f64], m: &rvf_numerics::Mat, unit: &str) {
    println!("--- {name} ({unit}) ---");
    // Downsample to ~12 state rows and 10 frequency columns.
    let srows: Vec<usize> = (0..12).map(|i| i * (states.len() - 1) / 11).collect();
    let fcols: Vec<usize> = (0..10).map(|j| j * (freqs.len() - 1) / 9).collect();
    print!("{:>8} |", "x \\ f");
    for &j in &fcols {
        print!(" {:>9.2e}", freqs[j]);
    }
    println!();
    for &i in &srows {
        print!("{:>8.3} |", states[i]);
        for &j in &fcols {
            print!(" {:>9.1}", m[(i, j)]);
        }
        println!();
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut circuit = buffer_circuit();
    let (dataset, _train) = extract_from_circuit(&mut circuit, &paper_tft_config())?;
    let hp = Hyperplane::of_dataset(&dataset);

    println!("Fig. 6 — TFT hyperplane of the high-speed buffer");
    println!(
        "{} states in [{:.2}, {:.2}] V, {} frequencies in [{:.0e}, {:.0e}] Hz",
        hp.states.len(),
        hp.states.first().unwrap(),
        hp.states.last().unwrap(),
        hp.freqs_hz.len(),
        hp.freqs_hz.first().unwrap(),
        hp.freqs_hz.last().unwrap()
    );
    println!();
    print_surface("gain", &hp.states, &hp.freqs_hz, &hp.gain_db, "dB");
    println!();
    print_surface("phase", &hp.states, &hp.freqs_hz, &hp.phase_deg, "deg");

    // Shape checks the paper's figure exhibits.
    let k_mid = hp.states.len() / 2;
    let dc_gain_mid = hp.gain_db[(k_mid, 0)];
    let dc_gain_lo = hp.gain_db[(0, 0)];
    let hf_gain_mid = hp.gain_db[(k_mid, hp.freqs_hz.len() - 1)];
    println!();
    println!("shape checks (paper Fig. 6):");
    println!("  mid-state DC gain  : {dc_gain_mid:.1} dB (paper: ~6 dB for gain 2)");
    println!("  saturated DC gain  : {dc_gain_lo:.1} dB (collapses at the state edge)");
    println!("  mid-state 10 GHz   : {hf_gain_mid:.1} dB (low-pass rolloff)");
    println!(
        "  phase at 10 GHz    : {:.0} deg (multi-pole accumulation)",
        hp.phase_deg[(k_mid, hp.freqs_hz.len() - 1)]
    );
    Ok(())
}
