//! Ablation: relaxed vs. classic sigma normalization in the vector
//! fitting engine (Gustavsen 2006 vs. Gustavsen & Semlyen 1999).
//!
//! The relaxed formulation frees the constant of σ(s) under a
//! nontriviality constraint, which removes the bias the fixed σ(∞)=1
//! normalization introduces and speeds up pole convergence on data with
//! a large dynamic range.
//!
//! ```sh
//! cargo run --release -p rvf-bench --bin ablation_relaxed_vf
//! ```

use rvf_bench::{buffer_circuit, paper_tft_config};
use rvf_numerics::Complex;
use rvf_tft::extract_from_circuit;
use rvf_vecfit::{fit, VfOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut circuit = buffer_circuit();
    let (dataset, _) = extract_from_circuit(&mut circuit, &paper_tft_config())?;
    let s_grid = dataset.s_grid();
    let dynamic = dataset.dynamic_responses();
    let peak = dataset
        .samples
        .iter()
        .flat_map(|s| s.h.iter().map(move |&h| (h - s.h0).abs()))
        .fold(0.0_f64, f64::max);

    println!(
        "{:>9} {:>8} {:>12} {:>16} {:>14}",
        "variant", "poles", "iterations", "rel RMS", "displacement"
    );
    for &(relaxed, label) in &[(true, "relaxed"), (false, "classic")] {
        for &p in &[4usize, 6, 8] {
            for &iters in &[3usize, 10] {
                let opts = VfOptions::frequency(p).with_iterations(iters).with_relaxed(relaxed);
                let f = fit(&s_grid, &dynamic, &opts)?;
                println!(
                    "{:>9} {:>8} {:>12} {:>16.3e} {:>14.3e}",
                    label,
                    p,
                    format!("{}/{iters}", f.iterations_run),
                    f.rms_error / peak,
                    f.final_displacement
                );
            }
        }
    }

    // A pathological case for the classic form: a response that is tiny
    // at the normalization region (σ(∞) = 1 biases the fit).
    let tricky: Vec<Vec<Complex>> = vec![s_grid
        .iter()
        .map(|&s| {
            (s - Complex::new(-1.0e3, 0.0)).inv().scale(1.0e3)
                + (s - Complex::new(-1.0e9, 5.0e9)).inv().scale(1.0e3)
                + (s - Complex::new(-1.0e9, -5.0e9)).inv().scale(1.0e3)
        })
        .collect()];
    let tricky_peak = tricky[0].iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    println!();
    println!("low-high split system (classic normalization bias):");
    for &(relaxed, label) in &[(true, "relaxed"), (false, "classic")] {
        let opts = VfOptions::frequency(3).with_iterations(4).with_relaxed(relaxed);
        let f = fit(&s_grid, &tricky, &opts)?;
        println!(
            "  {label}: rel RMS {:.3e} after {} iterations",
            f.rms_error / tricky_peak,
            f.iterations_run
        );
    }
    Ok(())
}
