//! Fig. 9 of the paper: time-domain response of the models vs SPICE for
//! a spectrally rich 2.5 GS/s bit pattern.
//!
//! Prints a decimated waveform table `(t, input, SPICE, RVF, CAFFEINE)`
//! plus the per-model time-domain RMSE; the paper shows both models
//! tracking the transistor-level response with the RVF model slightly
//! ahead.
//!
//! ```sh
//! cargo run --release -p rvf-bench --bin fig9_bit_pattern
//! ```

use rvf_bench::{
    buffer_circuit, caffeine_options, paper_rvf_options, paper_tft_config, test_pattern,
};
use rvf_caffeine::build_caffeine_hammerstein;
use rvf_circuit::{
    dc_operating_point, high_speed_buffer, transient, BufferParams, DcOptions, TranOptions,
};
use rvf_core::{fit_frequency_stage, fit_tft, time_domain_report};
use rvf_tft::extract_from_circuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train both models on the sine TFT data.
    let mut circuit = buffer_circuit();
    let (dataset, _train) = extract_from_circuit(&mut circuit, &paper_tft_config())?;
    let rvf_opts = paper_rvf_options();
    let rvf = fit_tft(&dataset, &rvf_opts)?;
    let s_grid = dataset.s_grid();
    let dynamic = dataset.dynamic_responses();
    let freq_stage = fit_frequency_stage(&s_grid, &dynamic, &rvf_opts)?;
    let caff = build_caffeine_hammerstein(&dataset, &freq_stage.fit.model, &caffeine_options());

    // Reference: transistor-level simulation of the bit pattern.
    let (wave, dt, t_stop) = test_pattern();
    let mut test_ckt = high_speed_buffer(&BufferParams::default(), wave);
    let op = dc_operating_point(&mut test_ckt, &DcOptions::default())?;
    let tran = transient(&mut test_ckt, &op, &TranOptions { dt, t_stop, ..Default::default() })?;

    let y_rvf = rvf.model.simulate(dt, &tran.inputs);
    let y_caff = caff.simulate(dt, &tran.inputs).expect("integrable preset");

    println!("Fig. 9 — response to a 2.5 GS/s PRBS-7 bit pattern");
    println!("{:>10} {:>8} {:>8} {:>8} {:>8}", "t [s]", "u", "SPICE", "RVF", "CAFF");
    let step = tran.times.len() / 40;
    for i in (0..tran.times.len()).step_by(step.max(1)) {
        println!(
            "{:>10.3e} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            tran.times[i], tran.inputs[i], tran.outputs[i], y_rvf[i], y_caff[i]
        );
    }
    let rep_rvf = time_domain_report(&tran.outputs, &y_rvf);
    let rep_caff = time_domain_report(&tran.outputs, &y_caff);
    println!();
    println!("time-domain RMSE (normalized to output swing):");
    println!("  RVF      : {:.4} (paper: 0.0098)", rep_rvf.nrmse);
    println!("  CAFFEINE : {:.4} (paper: 0.0138)", rep_caff.nrmse);
    println!("max abs error: RVF {:.4} V, CAFFEINE {:.4} V", rep_rvf.max_abs, rep_caff.max_abs);
    Ok(())
}
