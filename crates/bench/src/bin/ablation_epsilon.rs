//! Ablation: the error bound ε drives the automatic pole-count
//! selection (paper Algorithm 1). Sweeping ε shows the accuracy floor
//! set by the quasi-static sampling noise and the overfitting regime
//! beyond it.
//!
//! ```sh
//! cargo run --release -p rvf-bench --bin ablation_epsilon
//! ```

use rvf_bench::{buffer_circuit, paper_tft_config};
use rvf_core::{fit_tft, RvfOptions};
use rvf_tft::{error_surface, extract_from_circuit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut circuit = buffer_circuit();
    let (dataset, _) = extract_from_circuit(&mut circuit, &paper_tft_config())?;
    println!(
        "{:>9} {:>6} {:>22} {:>8} {:>14} {:>10}",
        "epsilon", "fpoles", "state poles", "static", "surface RMS", "build [s]"
    );
    for &eps in &[1e-2, 3e-3, 1e-3, 3e-4, 1e-4, 3e-5, 1e-5] {
        let opts = RvfOptions {
            epsilon: eps,
            max_state_poles: 20,
            max_freq_poles: 24,
            ..Default::default()
        };
        let report = fit_tft(&dataset, &opts)?;
        let es = error_surface(&dataset, |x, s| report.model.transfer(x, s));
        println!(
            "{:>9.0e} {:>6} {:>22} {:>8} {:>11.1} dB {:>10.3}",
            eps,
            report.diagnostics.n_freq_poles,
            format!("{:?}", report.diagnostics.state_pole_counts),
            report.diagnostics.static_pole_count,
            es.rms_complex_db,
            report.build_seconds
        );
    }
    println!();
    println!("reading: accuracy saturates around eps=1e-4 (the quasi-static");
    println!("sampling noise floor); tighter bounds grow the pole counts and");
    println!("eventually overfit the hysteresis noise in the trajectories.");
    Ok(())
}
