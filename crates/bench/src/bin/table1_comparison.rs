//! Table I of the paper: RVF vs CAFFEINE on the high-speed buffer.
//!
//! ```text
//! Model | TFT RMSE | Time-Domain RMSE | Build Time | Speedup | Fully Automated
//! RVF   |  -62 dB  |      0.0098      |   2 min    |   7X    |      YES
//! CAFF  |  -22 dB  |      0.0138      |   7 min    |  12X    |      NO
//! ```
//!
//! Absolute numbers shift with the substrate (our simulator, our
//! hardware); the *shape* — RVF far more accurate on the hyperplane,
//! slightly better in time domain, faster to build, fully automated,
//! both models much faster than SPICE with the polynomial CAFFEINE
//! model evaluating fastest — is the reproduction target.
//!
//! ```sh
//! cargo run --release -p rvf-bench --bin table1_comparison
//! ```

use std::time::Instant;

use rvf_bench::{buffer_circuit, test_pattern, PaperSetup};
use rvf_caffeine::{build_caffeine_hammerstein, Integrability};
use rvf_circuit::{dc_operating_point, transient, DcOptions, TranOptions};
use rvf_core::{fit_frequency_stage, fit_tft, time_domain_report};
use rvf_tft::{error_surface, extract_from_circuit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let setup = PaperSetup::default();

    // Shared training data (the paper trains both models on the same
    // TFT dataset).
    println!("training transient + TFT transform…");
    let mut circuit = buffer_circuit();
    let (dataset, _train) = extract_from_circuit(&mut circuit, &setup.tft)?;

    // --- RVF model ---
    println!("building RVF model…");
    let t0 = Instant::now();
    let rvf_report = fit_tft(&dataset, &setup.rvf)?;
    let rvf_build = t0.elapsed().as_secs_f64();
    let rvf_surface = error_surface(&dataset, |x, s| rvf_report.model.transfer(x, s));

    // --- CAFFEINE model: same frequency poles, GP residue regression ---
    println!("building CAFFEINE model…");
    let t0 = Instant::now();
    let s_grid = dataset.s_grid();
    let dynamic = dataset.dynamic_responses();
    let freq_stage = fit_frequency_stage(&s_grid, &dynamic, &setup.rvf)?;
    let caff_model = build_caffeine_hammerstein(&dataset, &freq_stage.fit.model, &setup.caffeine);
    let caff_build = t0.elapsed().as_secs_f64();
    let caff_surface = error_surface(&dataset, |x, s| caff_model.transfer(x, s));

    // --- time-domain validation on the 2.5 GS/s pattern ---
    println!("validating on the 2.5 GS/s bit pattern…");
    let (wave, dt, t_stop) = test_pattern();
    let mut test_ckt = rvf_circuit::high_speed_buffer(&rvf_circuit::BufferParams::default(), wave);
    let op = dc_operating_point(&mut test_ckt, &DcOptions::default())?;
    let t_ref = Instant::now();
    let tran = transient(&mut test_ckt, &op, &TranOptions { dt, t_stop, ..Default::default() })?;
    let spice_seconds = t_ref.elapsed().as_secs_f64();

    let t_m = Instant::now();
    let y_rvf = rvf_report.model.simulate(dt, &tran.inputs);
    let rvf_seconds = t_m.elapsed().as_secs_f64();
    let rvf_time = time_domain_report(&tran.outputs, &y_rvf);

    let t_m = Instant::now();
    let y_caff = caff_model
        .simulate(dt, &tran.inputs)
        .expect("integrable_only preset guarantees closed-form stages");
    let caff_seconds = t_m.elapsed().as_secs_f64();
    let caff_time = time_domain_report(&tran.outputs, &y_caff);

    let rvf_auto = "YES"; // log-form integrals exist by construction
    let caff_auto = match caff_model.integrability() {
        // The polynomial subset is integrable, but only because the
        // basis was *manually* restricted (as the paper did); general
        // CAFFEINE forms are not automatable.
        Integrability::Closed => "NO (manual basis restriction)",
        Integrability::ManualRequired => "NO",
    };

    println!();
    println!("Table I — comparison between the RVF and CAFFEINE model");
    println!("(paper values in parentheses; shape, not absolutes, is the target)");
    println!();
    println!(
        "{:<7} {:>16} {:>18} {:>12} {:>9}  {}",
        "Model", "TFT RMSE [dB]", "TimeDomain RMSE", "Build [s]", "Speedup", "Fully Automated"
    );
    println!(
        "{:<7} {:>16} {:>18} {:>12} {:>9}  {}",
        "RVF",
        format!("{:.1} (-62)", rvf_surface.rms_complex_db),
        format!("{:.4} (0.0098)", rvf_time.nrmse),
        format!("{:.2} (120)", rvf_build),
        format!("{:.1}x (7x)", spice_seconds / rvf_seconds),
        format!("{rvf_auto} (YES)"),
    );
    println!(
        "{:<7} {:>16} {:>18} {:>12} {:>9}  {}",
        "CAFF",
        format!("{:.1} (-22)", caff_surface.rms_complex_db),
        format!("{:.4} (0.0138)", caff_time.nrmse),
        format!("{:.2} (420)", caff_build),
        format!("{:.1}x (12x)", spice_seconds / caff_seconds),
        format!("{caff_auto} (NO)"),
    );
    println!();
    println!("details:");
    println!(
        "  RVF : {} freq poles, state poles {:?}, max gain err {:.1} dB",
        rvf_report.diagnostics.n_freq_poles,
        rvf_report.diagnostics.state_pole_counts,
        rvf_surface.max_gain_err_db
    );
    println!(
        "  CAFF: worst stage rmse {:.3e}, max gain err {:.1} dB",
        caff_model.worst_stage_rmse(),
        caff_surface.max_gain_err_db
    );
    println!(
        "  SPICE transient: {:.3} s for {} steps ({} Newton iters)",
        spice_seconds,
        tran.times.len() - 1,
        tran.newton_iterations
    );
    Ok(())
}
