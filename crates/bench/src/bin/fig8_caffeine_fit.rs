//! Fig. 8 of the paper: RMSE contours of the CAFFEINE model against the
//! TFT data.
//!
//! Paper reference points: maximum gain error ≈ −20 dB and phase errors
//! of 200–300°; the error is larger and *less uniformly distributed*
//! over (state, frequency) than the RVF model's (Fig. 7).
//!
//! ```sh
//! cargo run --release -p rvf-bench --bin fig8_caffeine_fit
//! ```

use rvf_bench::{buffer_circuit, caffeine_options, paper_rvf_options, paper_tft_config};
use rvf_caffeine::build_caffeine_hammerstein;
use rvf_core::{fit_frequency_stage, fit_tft};
use rvf_tft::{error_surface, extract_from_circuit};

fn print_error_contours(name: &str, states: &[f64], freqs: &[f64], m: &rvf_numerics::Mat) {
    println!("--- {name} error contours ---");
    let srows: Vec<usize> = (0..10).map(|i| i * (states.len() - 1) / 9).collect();
    let fcols: Vec<usize> = (0..10).map(|j| j * (freqs.len() - 1) / 9).collect();
    print!("{:>8} |", "x \\ f");
    for &j in &fcols {
        print!(" {:>9.2e}", freqs[j]);
    }
    println!();
    for &i in &srows {
        print!("{:>8.3} |", states[i]);
        for &j in &fcols {
            print!(" {:>9.1}", m[(i, j)]);
        }
        println!();
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut circuit = buffer_circuit();
    let (dataset, _train) = extract_from_circuit(&mut circuit, &paper_tft_config())?;

    // Same frequency poles as the RVF flow (the paper keeps VF pole
    // allocation and swaps only the residue regressor, §IV).
    let rvf_opts = paper_rvf_options();
    let s_grid = dataset.s_grid();
    let dynamic = dataset.dynamic_responses();
    let freq_stage = fit_frequency_stage(&s_grid, &dynamic, &rvf_opts)?;
    println!("frequency poles: {} (shared with the RVF model)", freq_stage.n_poles);

    let caff = build_caffeine_hammerstein(&dataset, &freq_stage.fit.model, &caffeine_options());
    let es = error_surface(&dataset, |x, s| caff.transfer(x, s));
    print_error_contours("CAFFEINE gain [dB]", &es.states, &es.freqs_hz, &es.gain_err_db);
    println!();
    print_error_contours("CAFFEINE phase [deg]", &es.states, &es.freqs_hz, &es.phase_err_deg);
    println!();

    // For the paper's headline comparison, also fit RVF and diff.
    let rvf_report = fit_tft(&dataset, &rvf_opts)?;
    let rvf_es = error_surface(&dataset, |x, s| rvf_report.model.transfer(x, s));
    println!("summary (paper reference):");
    println!("  CAFFEINE max gain error : {:.1} dB  (paper: about -20 dB)", es.max_gain_err_db);
    println!(
        "  CAFFEINE max phase error: {:.1} deg (paper: 200-300 deg wrapped to <=180)",
        es.max_phase_err_deg
    );
    println!("  CAFFEINE surface RMS    : {:.1} dB  (Table I: -22 dB)", es.rms_complex_db);
    println!("  RVF surface RMS         : {:.1} dB  (Table I: -62 dB)", rvf_es.rms_complex_db);
    println!(
        "  accuracy gap            : {:.1} dB in favour of RVF (paper: ~40 dB)",
        es.rms_complex_db - rvf_es.rms_complex_db
    );
    // Error distribution: the paper notes the RVF error is "lower and
    // more equally distributed" — print median and max of the gain
    // error for both models.
    let median = |surface: &rvf_tft::ErrorSurface| {
        let mut v: Vec<f64> = surface.gain_err_db.as_slice().to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
        v[v.len() / 2]
    };
    println!(
        "  gain error median/max   : CAFFEINE {:.1}/{:.1} dB vs RVF {:.1}/{:.1} dB",
        median(&es),
        es.max_gain_err_db,
        median(&rvf_es),
        rvf_es.max_gain_err_db
    );
    Ok(())
}
