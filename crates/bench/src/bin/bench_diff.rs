//! Diffs two `CRITERION_OUT` JSON directories and prints per-bench
//! median deltas — the cross-run comparator behind the CI bench step.
//!
//! ```text
//! cargo run -p rvf-bench --bin bench_diff -- <baseline-dir> <current-dir> [--fail-above <factor>]
//! ```
//!
//! By default the comparison is **warn-only** (exit 0 regardless of
//! deltas): CI timings on shared runners are trend data. Passing
//! `--fail-above 1.5` turns medians more than 1.5× the baseline into a
//! non-zero exit for local gating.

use std::path::PathBuf;
use std::process::ExitCode;

use rvf_bench::compare::diff_dirs;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(baseline), Some(current)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_diff <baseline-dir> <current-dir> [--fail-above <factor>]");
        return ExitCode::from(2);
    };
    let mut fail_above: Option<f64> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--fail-above" => match args.next().as_deref().map(str::parse) {
                Some(Ok(v)) => fail_above = Some(v),
                _ => {
                    eprintln!("--fail-above needs a numeric factor (e.g. 1.5)");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let report = match diff_dirs(&PathBuf::from(&baseline), &PathBuf::from(&current)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_diff: cannot compare {baseline} vs {current}: {e}");
            // In warn-only mode a missing directory is a setup problem,
            // not a perf regression — CI must not block on it. An
            // explicit gate (--fail-above) must not silently pass with
            // zero benches compared, though.
            return if fail_above.is_some() { ExitCode::FAILURE } else { ExitCode::SUCCESS };
        }
    };
    print!("{report}");

    // Surface noteworthy slowdowns as warnings even in warn-only mode
    // (1.5×: generous enough to ride out shared-runner noise).
    let warn_factor = fail_above.unwrap_or(1.5);
    let regressions = report.regressions(warn_factor);
    for d in &regressions {
        println!(
            "::warning::bench {} median {:.1}% over baseline ({:.0} ns -> {:.0} ns)",
            d.id,
            (d.ratio() - 1.0) * 100.0,
            d.baseline_ns,
            d.current_ns
        );
    }
    if fail_above.is_some() && !regressions.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
