//! Diffs two `CRITERION_OUT` JSON directories and prints per-bench
//! median deltas with noise-aware verdicts — the cross-run comparator
//! behind the CI bench step.
//!
//! ```text
//! cargo run -p rvf-bench --bin bench_diff -- <baseline-dir> <current-dir> \
//!     [--fail-above <factor>] [--update-baseline]
//! ```
//!
//! By default the comparison is **warn-only** (exit 0 regardless of
//! deltas): CI timings on shared runners are trend data. Passing
//! `--fail-above 1.5` turns *significant* regressions — median more
//! than 1.5× the baseline **and** outside the overlap of the two
//! `median ± K·MAD` sample intervals — into a non-zero exit for local
//! gating. `--update-baseline` rewrites `<baseline-dir>` from
//! `<current-dir>` after reporting (run it from a trusted machine, then
//! commit the refreshed records).

use std::path::PathBuf;
use std::process::ExitCode;

use rvf_bench::compare::{diff_dirs, update_baseline};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(baseline), Some(current)) = (args.next(), args.next()) else {
        eprintln!(
            "usage: bench_diff <baseline-dir> <current-dir> \
             [--fail-above <factor>] [--update-baseline]"
        );
        return ExitCode::from(2);
    };
    let mut fail_above: Option<f64> = None;
    let mut refresh = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--fail-above" => match args.next().as_deref().map(str::parse) {
                Some(Ok(v)) => fail_above = Some(v),
                _ => {
                    eprintln!("--fail-above needs a numeric factor (e.g. 1.5)");
                    return ExitCode::from(2);
                }
            },
            "--update-baseline" => refresh = true,
            other => {
                eprintln!("unknown flag: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let (baseline, current) = (PathBuf::from(&baseline), PathBuf::from(&current));

    let report = match diff_dirs(&baseline, &current) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "bench_diff: cannot compare {} vs {}: {e}",
                baseline.display(),
                current.display()
            );
            if refresh && fail_above.is_none() {
                // A first-time baseline has nothing to diff against;
                // honour the refresh request — but never under an
                // explicit gate, which must not pass (or accept a
                // baseline) with zero benches compared.
                return match update_baseline(&baseline, &current) {
                    Ok(u) => {
                        println!("baseline initialized: {} records written", u.written.len());
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("bench_diff: baseline update failed: {e}");
                        ExitCode::FAILURE
                    }
                };
            }
            // In warn-only mode a missing directory is a setup problem,
            // not a perf regression — CI must not block on it. An
            // explicit gate (--fail-above) must not silently pass with
            // zero benches compared, though.
            return if fail_above.is_some() { ExitCode::FAILURE } else { ExitCode::SUCCESS };
        }
    };
    print!("{report}");

    // Surface noteworthy slowdowns as warnings even in warn-only mode
    // (1.5×: generous enough to ride out shared-runner noise; the
    // verdict filter already discards MAD-swamped jumps).
    let warn_factor = fail_above.unwrap_or(1.5);
    let regressions = report.regressions(warn_factor);
    for d in &regressions {
        println!(
            "::warning::bench {} median {:.1}% over baseline ({:.0} ns -> {:.0} ns, \
             MAD {:.0}/{:.0} ns)",
            d.id,
            (d.ratio() - 1.0) * 100.0,
            d.baseline_ns,
            d.current_ns,
            d.baseline_mad_ns,
            d.current_mad_ns
        );
    }

    // An explicit gate must not pass — or accept a baseline — having
    // compared nothing (empty or fully-renamed baseline dir), nor with
    // significant regressions outstanding.
    let gated = fail_above.is_some() && (!regressions.is_empty() || report.deltas.is_empty());
    if fail_above.is_some() && report.deltas.is_empty() {
        eprintln!("bench_diff: --fail-above gate compared zero benchmarks");
    }
    if refresh {
        if gated {
            // Never accept a run the gate is about to reject: rewriting
            // first would turn the regression into the new baseline and
            // make a re-run pass vacuously.
            eprintln!(
                "bench_diff: refusing --update-baseline: --fail-above gate not clean \
                 ({} significant regression(s), {} benches compared)",
                regressions.len(),
                report.deltas.len()
            );
        } else {
            match update_baseline(&baseline, &current) {
                Ok(u) => println!(
                    "baseline updated: {} records written, {} removed",
                    u.written.len(),
                    u.removed.len()
                ),
                Err(e) => {
                    eprintln!("bench_diff: baseline update failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if gated {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
