//! Cross-run bench comparison: diffing two `CRITERION_OUT` JSON
//! directories.
//!
//! The vendored criterion shim emits one JSON record per benchmark
//! (`{"id":…,"samples":N,"min_ns":…,"median_ns":…,…}`). This module
//! parses those records without a JSON dependency (the format is
//! shim-controlled) and produces per-bench deltas between a *baseline*
//! directory (committed, or downloaded from a previous run's artifact)
//! and a *current* one. Verdicts are **noise-aware**: each side's raw
//! nanosecond samples give a median ± MAD interval, and only deltas
//! whose intervals do not overlap count as significant — a step toward
//! real criterion's cross-run regression analysis. The `bench_diff`
//! binary wraps it for CI (warn-only: shared-runner timings are trend
//! data, not gates) and can rewrite the committed baseline from a
//! trusted run ([`update_baseline`]).

use std::fmt;
use std::io;
use std::path::Path;

/// Half-width multiplier of the noise interval: `median ± K·MAD`.
/// Three (scaled) deviations is the usual outlier convention; with the
/// quick-mode 3-sample records it degenerates gracefully because the
/// floor below keeps the interval non-empty.
const NOISE_K: f64 = 3.0;

/// Relative noise floor: the interval half-width is never narrower than
/// this fraction of the median, so tiny-MAD (or single-sample) records
/// don't declare 0.1% jitter significant.
const NOISE_FLOOR: f64 = 0.02;

/// One benchmark's summary statistics pulled from a shim JSON record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark id as passed to `bench_function`.
    pub id: String,
    /// Number of timed samples.
    pub samples: u64,
    /// Fastest sample, nanoseconds.
    pub min_ns: f64,
    /// Median sample, nanoseconds.
    pub median_ns: f64,
    /// Raw per-sample timings, nanoseconds (empty for records predating
    /// the `samples_ns` field).
    pub samples_ns: Vec<f64>,
}

impl BenchRecord {
    /// Median absolute deviation of the raw samples about their median
    /// (0 when the raw array is missing).
    pub fn mad_ns(&self) -> f64 {
        mad(&self.samples_ns)
    }
}

/// Median of a sample set (0 for an empty one).
fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

/// Median absolute deviation about the median (0 for empty input).
fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = median(xs);
    let dev: Vec<f64> = xs.iter().map(|&x| (x - m).abs()).collect();
    median(&dev)
}

/// Pulls a numeric field like `"median_ns":123.4` out of a flat JSON
/// record (no nesting in the shim's format except the trailing sample
/// array, which no field name prefixes).
fn field_f64(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let start = json.find(&key)? + key.len();
    let rest = &json[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Pulls the (escaped) string value of `"id"`. Sufficient for the
/// shim's RFC 8259 escaping because bench ids never contain `"` in
/// practice; a record with an escaped quote is skipped, not corrupted.
fn field_id(json: &str) -> Option<String> {
    let key = "\"id\":\"";
    let start = json.find(key)? + key.len();
    let rest = &json[start..];
    let end = rest.find('"')?;
    let id = &rest[..end];
    if id.ends_with('\\') {
        return None;
    }
    Some(id.to_string())
}

/// Pulls a flat numeric array like `"samples_ns":[1,2,3]` out of a shim
/// record; `None` when the field is absent (older records), an empty
/// vector for `[]`.
fn field_array(json: &str, name: &str) -> Option<Vec<f64>> {
    let key = format!("\"{name}\":[");
    let start = json.find(&key)? + key.len();
    let rest = &json[start..];
    let end = rest.find(']')?;
    Some(rest[..end].split(',').filter_map(|s| s.trim().parse().ok()).collect())
}

/// Parses one shim JSON record; `None` for malformed records or
/// zero-sample placeholders.
pub fn parse_record(json: &str) -> Option<BenchRecord> {
    let id = field_id(json)?;
    let samples = field_f64(json, "samples")? as u64;
    if samples == 0 {
        return None;
    }
    Some(BenchRecord {
        id,
        samples,
        min_ns: field_f64(json, "min_ns")?,
        median_ns: field_f64(json, "median_ns")?,
        samples_ns: field_array(json, "samples_ns").unwrap_or_default(),
    })
}

/// Reads every `*.json` record in a `CRITERION_OUT` directory, sorted
/// by bench id.
///
/// # Errors
///
/// Propagates directory-read failures; unreadable or malformed files
/// are skipped (a bench report must never fail on reporting).
pub fn read_dir_records(dir: &Path) -> io::Result<Vec<BenchRecord>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "json") {
            if let Ok(body) = std::fs::read_to_string(&path) {
                if let Some(rec) = parse_record(&body) {
                    out.push(rec);
                }
            }
        }
    }
    out.sort_by(|a, b| a.id.cmp(&b.id));
    Ok(out)
}

/// Noise-aware classification of one benchmark's delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Current is significantly slower: the `median ± K·MAD` intervals
    /// do not overlap and the current median is higher.
    Regressed,
    /// Current is significantly faster.
    Improved,
    /// The intervals overlap — the delta is within run-to-run noise.
    WithinNoise,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Verdict::Regressed => "REGRESSED",
            Verdict::Improved => "improved",
            Verdict::WithinNoise => "~noise",
        })
    }
}

/// One benchmark present in both runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    /// Benchmark id.
    pub id: String,
    /// Baseline median, nanoseconds.
    pub baseline_ns: f64,
    /// Current median, nanoseconds.
    pub current_ns: f64,
    /// Baseline MAD of the raw samples, nanoseconds.
    pub baseline_mad_ns: f64,
    /// Current MAD of the raw samples, nanoseconds.
    pub current_mad_ns: f64,
}

impl BenchDelta {
    /// `current / baseline` median ratio (`> 1` = slower than baseline).
    pub fn ratio(&self) -> f64 {
        if self.baseline_ns > 0.0 {
            self.current_ns / self.baseline_ns
        } else {
            f64::INFINITY
        }
    }

    /// Half-width of one side's noise interval: `K·MAD`, floored at a
    /// small fraction of the median so degenerate sample sets (MAD = 0)
    /// never declare jitter significant.
    fn spread(median_ns: f64, mad_ns: f64) -> f64 {
        (NOISE_K * mad_ns).max(NOISE_FLOOR * median_ns.abs())
    }

    /// Classifies the delta from the raw-sample statistics: significant
    /// only when the two `median ± K·MAD` intervals do not overlap.
    pub fn verdict(&self) -> Verdict {
        let sb = Self::spread(self.baseline_ns, self.baseline_mad_ns);
        let sc = Self::spread(self.current_ns, self.current_mad_ns);
        if self.current_ns - sc > self.baseline_ns + sb {
            Verdict::Regressed
        } else if self.current_ns + sc < self.baseline_ns - sb {
            Verdict::Improved
        } else {
            Verdict::WithinNoise
        }
    }
}

/// The full comparison of two bench-JSON directories.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// Benchmarks present in both directories.
    pub deltas: Vec<BenchDelta>,
    /// Ids only in the baseline (removed or not run).
    pub only_baseline: Vec<String>,
    /// Ids only in the current run (new benches).
    pub only_current: Vec<String>,
}

impl BenchReport {
    /// Benchmarks whose median regressed by more than `factor`
    /// (e.g. `1.5` = 50% slower) **and** whose delta is significant
    /// under the noise-aware verdict (`median ± K·MAD` intervals
    /// disjoint), worst first. A large but noise-swamped median jump —
    /// common on shared CI runners — is not a regression.
    pub fn regressions(&self, factor: f64) -> Vec<&BenchDelta> {
        let mut out: Vec<&BenchDelta> = self
            .deltas
            .iter()
            .filter(|d| d.ratio() > factor && d.verdict() == Verdict::Regressed)
            .collect();
        out.sort_by(|a, b| b.ratio().partial_cmp(&a.ratio()).unwrap_or(core::cmp::Ordering::Equal));
        out
    }
}

/// Compares two `CRITERION_OUT` directories by bench id.
///
/// # Errors
///
/// Propagates directory-read failures from either side.
pub fn diff_dirs(baseline: &Path, current: &Path) -> io::Result<BenchReport> {
    let base = read_dir_records(baseline)?;
    let cur = read_dir_records(current)?;
    let mut report = BenchReport::default();
    let mut cur_by_id: std::collections::BTreeMap<&str, &BenchRecord> =
        cur.iter().map(|r| (r.id.as_str(), r)).collect();
    for b in &base {
        match cur_by_id.remove(b.id.as_str()) {
            Some(c) => report.deltas.push(BenchDelta {
                id: b.id.clone(),
                baseline_ns: b.median_ns,
                current_ns: c.median_ns,
                baseline_mad_ns: b.mad_ns(),
                current_mad_ns: c.mad_ns(),
            }),
            None => report.only_baseline.push(b.id.clone()),
        }
    }
    report.only_current = cur_by_id.into_keys().map(str::to_string).collect();
    Ok(report)
}

/// Outcome of a baseline rewrite: which record files were written and
/// which stale ones were removed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BaselineUpdate {
    /// Record files copied from the trusted run (new or refreshed).
    pub written: Vec<String>,
    /// Stale baseline files removed (their bench no longer exists).
    pub removed: Vec<String>,
}

/// Rewrites a committed baseline directory from a trusted
/// `CRITERION_OUT` run: every parseable record in `current` replaces
/// its baseline counterpart byte-for-byte, and baseline records whose
/// record file vanished from `current` are deleted. Malformed or
/// zero-sample files in `current` are skipped — they neither enter the
/// baseline nor delete the good record they would have replaced (an
/// interrupted bench must not silently drop coverage).
///
/// # Errors
///
/// Propagates directory-read/-write failures; the baseline directory is
/// created if missing.
pub fn update_baseline(baseline: &Path, current: &Path) -> io::Result<BaselineUpdate> {
    std::fs::create_dir_all(baseline)?;
    let mut update = BaselineUpdate::default();
    // Every record *file* present in the current run protects its
    // baseline counterpart from the stale sweep, parseable or not.
    let mut current_names: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for entry in std::fs::read_dir(current)? {
        let path = entry?.path();
        if !path.extension().is_some_and(|e| e == "json") {
            continue;
        }
        let name = path.file_name().expect("json files have names").to_string_lossy().into_owned();
        current_names.insert(name.clone());
        let Ok(body) = std::fs::read_to_string(&path) else { continue };
        if parse_record(&body).is_none() {
            continue;
        }
        std::fs::write(baseline.join(&name), &body)?;
        update.written.push(name);
    }
    for entry in std::fs::read_dir(baseline)? {
        let path = entry?.path();
        if !path.extension().is_some_and(|e| e == "json") {
            continue;
        }
        let name = path.file_name().expect("json files have names").to_string_lossy().into_owned();
        if !current_names.contains(&name) {
            std::fs::remove_file(&path)?;
            update.removed.push(name);
        }
    }
    update.written.sort();
    update.removed.sort();
    Ok(update)
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

impl fmt::Display for BenchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<48} {:>12} {:>12} {:>9} {:>10}",
            "benchmark", "baseline", "current", "delta", "verdict"
        )?;
        for d in &self.deltas {
            let pct = (d.ratio() - 1.0) * 100.0;
            writeln!(
                f,
                "{:<48} {:>12} {:>12} {:>+8.1}% {:>10}",
                d.id,
                fmt_ns(d.baseline_ns),
                fmt_ns(d.current_ns),
                pct,
                d.verdict()
            )?;
        }
        for id in &self.only_baseline {
            writeln!(f, "{id:<48} {:>12} {:>12}", "(baseline)", "missing")?;
        }
        for id in &self.only_current {
            writeln!(f, "{id:<48} {:>12} {:>12}", "missing", "(new)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RECORD: &str = "{\"id\":\"qr_block_120x13_fast_vf\",\"samples\":10,\
        \"min_ns\":23000,\"mean_ns\":24100.5,\"median_ns\":23500,\
        \"stddev_ns\":800,\"max_ns\":27000,\"samples_ns\":[23000,27000]}\n";

    #[test]
    fn parses_shim_record() {
        let r = parse_record(RECORD).unwrap();
        assert_eq!(r.id, "qr_block_120x13_fast_vf");
        assert_eq!(r.samples, 10);
        assert_eq!(r.min_ns, 23000.0);
        assert_eq!(r.median_ns, 23500.0);
        assert_eq!(r.samples_ns, vec![23000.0, 27000.0]);
        // MAD of {23000, 27000}: median 25000, deviations {2000, 2000}.
        assert_eq!(r.mad_ns(), 2000.0);
    }

    #[test]
    fn records_without_raw_samples_degrade_to_zero_mad() {
        let r = parse_record("{\"id\":\"x\",\"samples\":3,\"min_ns\":1,\"median_ns\":2}").unwrap();
        assert!(r.samples_ns.is_empty());
        assert_eq!(r.mad_ns(), 0.0);
    }

    #[test]
    fn rejects_empty_and_malformed_records() {
        assert!(parse_record("{\"id\":\"x\",\"samples\":0}").is_none());
        assert!(parse_record("not json at all").is_none());
        assert!(parse_record("{\"samples\":3,\"median_ns\":1}").is_none());
    }

    fn delta(id: &str, base: f64, cur: f64, mad_b: f64, mad_c: f64) -> BenchDelta {
        BenchDelta {
            id: id.into(),
            baseline_ns: base,
            current_ns: cur,
            baseline_mad_ns: mad_b,
            current_mad_ns: mad_c,
        }
    }

    #[test]
    fn delta_ratio_and_regressions() {
        let report = BenchReport {
            deltas: vec![
                delta("a", 100.0, 100.0, 1.0, 1.0),
                delta("b", 100.0, 250.0, 1.0, 1.0),
                delta("c", 100.0, 160.0, 1.0, 1.0),
            ],
            ..Default::default()
        };
        let regs = report.regressions(1.5);
        assert_eq!(regs.len(), 2);
        assert_eq!(regs[0].id, "b"); // worst first
        assert!((regs[0].ratio() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn verdict_uses_median_mad_interval_overlap() {
        // Tight samples, clear jump: significant both directions.
        assert_eq!(delta("t", 100.0, 160.0, 1.0, 1.0).verdict(), Verdict::Regressed);
        assert_eq!(delta("t", 160.0, 100.0, 1.0, 1.0).verdict(), Verdict::Improved);
        // The same 1.6× jump drowned in noise (MAD 30ns): inconclusive.
        assert_eq!(delta("t", 100.0, 160.0, 30.0, 30.0).verdict(), Verdict::WithinNoise);
        // Equal medians are never significant, whatever the MAD.
        assert_eq!(delta("t", 100.0, 100.0, 0.0, 0.0).verdict(), Verdict::WithinNoise);
        // MAD = 0 falls back to the relative noise floor instead of
        // flagging sub-percent jitter.
        assert_eq!(delta("t", 100.0, 101.0, 0.0, 0.0).verdict(), Verdict::WithinNoise);
        assert_eq!(delta("t", 100.0, 150.0, 0.0, 0.0).verdict(), Verdict::Regressed);
    }

    #[test]
    fn noisy_regressions_are_filtered_from_the_gate() {
        let report = BenchReport {
            deltas: vec![
                delta("noisy", 100.0, 200.0, 40.0, 40.0), // 2× but MAD-swamped
                delta("real", 100.0, 200.0, 2.0, 2.0),    // 2× and significant
            ],
            ..Default::default()
        };
        let regs = report.regressions(1.5);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].id, "real");
    }

    #[test]
    fn diff_dirs_matches_by_id_and_tracks_missing() {
        let tmp = std::env::temp_dir().join(format!("bench-compare-test-{}", std::process::id()));
        let (base, cur) = (tmp.join("base"), tmp.join("cur"));
        std::fs::create_dir_all(&base).unwrap();
        std::fs::create_dir_all(&cur).unwrap();
        let rec = |id: &str, median: f64| {
            format!(
                "{{\"id\":\"{id}\",\"samples\":3,\"min_ns\":1,\"mean_ns\":1,\
                 \"median_ns\":{median},\"stddev_ns\":0,\"max_ns\":2,\"samples_ns\":[1,2]}}"
            )
        };
        std::fs::write(base.join("a.json"), rec("a", 100.0)).unwrap();
        std::fs::write(base.join("gone.json"), rec("gone", 5.0)).unwrap();
        std::fs::write(cur.join("a.json"), rec("a", 150.0)).unwrap();
        std::fs::write(cur.join("new.json"), rec("new", 7.0)).unwrap();
        let report = diff_dirs(&base, &cur).unwrap();
        assert_eq!(report.deltas.len(), 1);
        assert_eq!(report.deltas[0].id, "a");
        assert!((report.deltas[0].ratio() - 1.5).abs() < 1e-12);
        assert_eq!(report.only_baseline, vec!["gone".to_string()]);
        assert_eq!(report.only_current, vec!["new".to_string()]);
        let shown = report.to_string();
        assert!(shown.contains("+50.0%"), "{shown}");
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn update_baseline_rewrites_adds_and_removes() {
        let tmp =
            std::env::temp_dir().join(format!("bench-baseline-update-{}", std::process::id()));
        let (base, cur) = (tmp.join("base"), tmp.join("cur"));
        std::fs::create_dir_all(&base).unwrap();
        std::fs::create_dir_all(&cur).unwrap();
        let rec = |id: &str, median: f64| {
            format!(
                "{{\"id\":\"{id}\",\"samples\":3,\"min_ns\":1,\"mean_ns\":1,\
                 \"median_ns\":{median},\"stddev_ns\":0,\"max_ns\":2,\"samples_ns\":[1,2]}}"
            )
        };
        std::fs::write(base.join("stale.json"), rec("stale", 9.0)).unwrap();
        std::fs::write(base.join("kept.json"), rec("kept", 100.0)).unwrap();
        std::fs::write(base.join("covered.json"), rec("covered", 33.0)).unwrap();
        std::fs::write(base.join("notes.txt"), "not a record").unwrap();
        std::fs::write(cur.join("kept.json"), rec("kept", 50.0)).unwrap();
        std::fs::write(cur.join("fresh.json"), rec("fresh", 7.0)).unwrap();
        std::fs::write(cur.join("broken.json"), "{\"id\":\"broken\",\"samples\":0}").unwrap();
        // An interrupted bench: the current file exists but is a
        // zero-sample placeholder — the committed record must survive.
        std::fs::write(cur.join("covered.json"), "{\"id\":\"covered\",\"samples\":0}").unwrap();

        let update = update_baseline(&base, &cur).unwrap();
        assert_eq!(update.written, vec!["fresh.json".to_string(), "kept.json".to_string()]);
        assert_eq!(update.removed, vec!["stale.json".to_string()]);
        // The refreshed baseline matches the trusted run byte-for-byte…
        let records = read_dir_records(&base).unwrap();
        let ids: Vec<&str> = records.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["covered", "fresh", "kept"]);
        assert_eq!(records[0].median_ns, 33.0, "placeholder must not clobber the old record");
        assert_eq!(records[2].median_ns, 50.0);
        // …zero-sample placeholders never enter it, and non-JSON files
        // are untouched.
        assert!(!base.join("broken.json").exists());
        assert!(base.join("notes.txt").exists());
        // Idempotent: a second pass writes the same set, removes nothing.
        let again = update_baseline(&base, &cur).unwrap();
        assert_eq!(again.written, update.written);
        assert!(again.removed.is_empty());
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
