//! Cross-run bench comparison: diffing two `CRITERION_OUT` JSON
//! directories.
//!
//! The vendored criterion shim emits one JSON record per benchmark
//! (`{"id":…,"samples":N,"min_ns":…,"median_ns":…,…}`). This module
//! parses those records without a JSON dependency (the format is
//! shim-controlled) and produces per-bench deltas between a *baseline*
//! directory (committed, or downloaded from a previous run's artifact)
//! and a *current* one — the first step toward real criterion's
//! cross-run regression analysis. The `bench_diff` binary wraps it for
//! CI, where the comparison is warn-only: shared-runner timings are
//! trend data, not gates.

use std::fmt;
use std::io;
use std::path::Path;

/// One benchmark's summary statistics pulled from a shim JSON record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark id as passed to `bench_function`.
    pub id: String,
    /// Number of timed samples.
    pub samples: u64,
    /// Fastest sample, nanoseconds.
    pub min_ns: f64,
    /// Median sample, nanoseconds.
    pub median_ns: f64,
}

/// Pulls a numeric field like `"median_ns":123.4` out of a flat JSON
/// record (no nesting in the shim's format except the trailing sample
/// array, which no field name prefixes).
fn field_f64(json: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\":");
    let start = json.find(&key)? + key.len();
    let rest = &json[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Pulls the (escaped) string value of `"id"`. Sufficient for the
/// shim's RFC 8259 escaping because bench ids never contain `"` in
/// practice; a record with an escaped quote is skipped, not corrupted.
fn field_id(json: &str) -> Option<String> {
    let key = "\"id\":\"";
    let start = json.find(key)? + key.len();
    let rest = &json[start..];
    let end = rest.find('"')?;
    let id = &rest[..end];
    if id.ends_with('\\') {
        return None;
    }
    Some(id.to_string())
}

/// Parses one shim JSON record; `None` for malformed records or
/// zero-sample placeholders.
pub fn parse_record(json: &str) -> Option<BenchRecord> {
    let id = field_id(json)?;
    let samples = field_f64(json, "samples")? as u64;
    if samples == 0 {
        return None;
    }
    Some(BenchRecord {
        id,
        samples,
        min_ns: field_f64(json, "min_ns")?,
        median_ns: field_f64(json, "median_ns")?,
    })
}

/// Reads every `*.json` record in a `CRITERION_OUT` directory, sorted
/// by bench id.
///
/// # Errors
///
/// Propagates directory-read failures; unreadable or malformed files
/// are skipped (a bench report must never fail on reporting).
pub fn read_dir_records(dir: &Path) -> io::Result<Vec<BenchRecord>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "json") {
            if let Ok(body) = std::fs::read_to_string(&path) {
                if let Some(rec) = parse_record(&body) {
                    out.push(rec);
                }
            }
        }
    }
    out.sort_by(|a, b| a.id.cmp(&b.id));
    Ok(out)
}

/// One benchmark present in both runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    /// Benchmark id.
    pub id: String,
    /// Baseline median, nanoseconds.
    pub baseline_ns: f64,
    /// Current median, nanoseconds.
    pub current_ns: f64,
}

impl BenchDelta {
    /// `current / baseline` median ratio (`> 1` = slower than baseline).
    pub fn ratio(&self) -> f64 {
        if self.baseline_ns > 0.0 {
            self.current_ns / self.baseline_ns
        } else {
            f64::INFINITY
        }
    }
}

/// The full comparison of two bench-JSON directories.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// Benchmarks present in both directories.
    pub deltas: Vec<BenchDelta>,
    /// Ids only in the baseline (removed or not run).
    pub only_baseline: Vec<String>,
    /// Ids only in the current run (new benches).
    pub only_current: Vec<String>,
}

impl BenchReport {
    /// Benchmarks whose median regressed by more than `factor`
    /// (e.g. `1.5` = 50% slower), worst first.
    pub fn regressions(&self, factor: f64) -> Vec<&BenchDelta> {
        let mut out: Vec<&BenchDelta> = self.deltas.iter().filter(|d| d.ratio() > factor).collect();
        out.sort_by(|a, b| b.ratio().partial_cmp(&a.ratio()).unwrap_or(core::cmp::Ordering::Equal));
        out
    }
}

/// Compares two `CRITERION_OUT` directories by bench id.
///
/// # Errors
///
/// Propagates directory-read failures from either side.
pub fn diff_dirs(baseline: &Path, current: &Path) -> io::Result<BenchReport> {
    let base = read_dir_records(baseline)?;
    let cur = read_dir_records(current)?;
    let mut report = BenchReport::default();
    let mut cur_by_id: std::collections::BTreeMap<&str, &BenchRecord> =
        cur.iter().map(|r| (r.id.as_str(), r)).collect();
    for b in &base {
        match cur_by_id.remove(b.id.as_str()) {
            Some(c) => report.deltas.push(BenchDelta {
                id: b.id.clone(),
                baseline_ns: b.median_ns,
                current_ns: c.median_ns,
            }),
            None => report.only_baseline.push(b.id.clone()),
        }
    }
    report.only_current = cur_by_id.into_keys().map(str::to_string).collect();
    Ok(report)
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

impl fmt::Display for BenchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<48} {:>12} {:>12} {:>9}", "benchmark", "baseline", "current", "delta")?;
        for d in &self.deltas {
            let pct = (d.ratio() - 1.0) * 100.0;
            writeln!(
                f,
                "{:<48} {:>12} {:>12} {:>+8.1}%",
                d.id,
                fmt_ns(d.baseline_ns),
                fmt_ns(d.current_ns),
                pct
            )?;
        }
        for id in &self.only_baseline {
            writeln!(f, "{id:<48} {:>12} {:>12}", "(baseline)", "missing")?;
        }
        for id in &self.only_current {
            writeln!(f, "{id:<48} {:>12} {:>12}", "missing", "(new)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RECORD: &str = "{\"id\":\"qr_block_120x13_fast_vf\",\"samples\":10,\
        \"min_ns\":23000,\"mean_ns\":24100.5,\"median_ns\":23500,\
        \"stddev_ns\":800,\"max_ns\":27000,\"samples_ns\":[23000,27000]}\n";

    #[test]
    fn parses_shim_record() {
        let r = parse_record(RECORD).unwrap();
        assert_eq!(r.id, "qr_block_120x13_fast_vf");
        assert_eq!(r.samples, 10);
        assert_eq!(r.min_ns, 23000.0);
        assert_eq!(r.median_ns, 23500.0);
    }

    #[test]
    fn rejects_empty_and_malformed_records() {
        assert!(parse_record("{\"id\":\"x\",\"samples\":0}").is_none());
        assert!(parse_record("not json at all").is_none());
        assert!(parse_record("{\"samples\":3,\"median_ns\":1}").is_none());
    }

    #[test]
    fn delta_ratio_and_regressions() {
        let report = BenchReport {
            deltas: vec![
                BenchDelta { id: "a".into(), baseline_ns: 100.0, current_ns: 100.0 },
                BenchDelta { id: "b".into(), baseline_ns: 100.0, current_ns: 250.0 },
                BenchDelta { id: "c".into(), baseline_ns: 100.0, current_ns: 160.0 },
            ],
            ..Default::default()
        };
        let regs = report.regressions(1.5);
        assert_eq!(regs.len(), 2);
        assert_eq!(regs[0].id, "b"); // worst first
        assert!((regs[0].ratio() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn diff_dirs_matches_by_id_and_tracks_missing() {
        let tmp = std::env::temp_dir().join(format!("bench-compare-test-{}", std::process::id()));
        let (base, cur) = (tmp.join("base"), tmp.join("cur"));
        std::fs::create_dir_all(&base).unwrap();
        std::fs::create_dir_all(&cur).unwrap();
        let rec = |id: &str, median: f64| {
            format!(
                "{{\"id\":\"{id}\",\"samples\":3,\"min_ns\":1,\"mean_ns\":1,\
                 \"median_ns\":{median},\"stddev_ns\":0,\"max_ns\":2,\"samples_ns\":[1,2]}}"
            )
        };
        std::fs::write(base.join("a.json"), rec("a", 100.0)).unwrap();
        std::fs::write(base.join("gone.json"), rec("gone", 5.0)).unwrap();
        std::fs::write(cur.join("a.json"), rec("a", 150.0)).unwrap();
        std::fs::write(cur.join("new.json"), rec("new", 7.0)).unwrap();
        let report = diff_dirs(&base, &cur).unwrap();
        assert_eq!(report.deltas.len(), 1);
        assert_eq!(report.deltas[0].id, "a");
        assert!((report.deltas[0].ratio() - 1.5).abs() < 1e-12);
        assert_eq!(report.only_baseline, vec!["gone".to_string()]);
        assert_eq!(report.only_current, vec!["new".to_string()]);
        let shown = report.to_string();
        assert!(shown.contains("+50.0%"), "{shown}");
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
