//! # rvf-core
//!
//! Reproduction of *Extracting Analytical Nonlinear Models from Analog
//! Circuits by Recursive Vector Fitting of Transfer Function
//! Trajectories* (De Jonghe, Deschrijver, Dhaene, Gielen — DATE 2013).
//!
//! The crate implements the paper's contribution on top of the
//! workspace substrates:
//!
//! 1. **TFT data** (from [`rvf_tft`]) — state-dependent frequency
//!    responses sampled from circuit Jacobians;
//! 2. **RVF** ([`rvf`]) — common-pole vector fitting along the frequency
//!    axis, then *recursive* vector fitting of every state-dependent
//!    residue trajectory in the state variable, with automatic pole
//!    count selection against an error bound `ε`;
//! 3. **Analytic integration** ([`integrated`]) — the log-form
//!    closed-form primitives of the RVF base functions (paper eq. 19)
//!    that make the Hammerstein static stages automatic;
//! 4. **The Hammerstein model** ([`hammerstein`]) — stable-by-
//!    construction parallel structure with exact-exponential simulation;
//! 5. **Export** ([`export`]) — lossless text serialization, Verilog-A
//!    and MATLAB code generation;
//! 6. **Serving** ([`serving`]) — the compiled evaluation runtime behind
//!    [`HammersteinModel::simulate`](hammerstein::HammersteinModel::simulate):
//!    models lowered to flat shared-basis tables, with one-shot, pooled
//!    batch, and streaming/resumable session APIs
//!    ([`SimState`], [`StreamingSession`], [`SessionSet`]).
//!
//! # Examples
//!
//! End-to-end extraction on the paper's buffer test vehicle:
//!
//! ```no_run
//! use rvf_circuit::{high_speed_buffer, BufferParams, Waveform};
//! use rvf_core::{extract_model, RvfOptions};
//! use rvf_tft::TftConfig;
//!
//! # fn main() -> Result<(), rvf_core::RvfError> {
//! let sine = Waveform::Sine {
//!     offset: 0.9, amplitude: 0.5, freq_hz: 5.0e7, phase_rad: 0.0, delay: 0.0,
//! };
//! let mut buffer = high_speed_buffer(&BufferParams::default(), sine);
//! let (report, dataset, _train) =
//!     extract_model(&mut buffer, &TftConfig::default(), &RvfOptions::default())?;
//! println!(
//!     "extracted {} frequency poles, TFT error {:.1e}",
//!     report.diagnostics.n_freq_poles, report.diagnostics.freq_rel_error
//! );
//! let _surface = dataset.s_grid();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod export;
pub mod hammerstein;
pub mod integrated;
pub mod metrics;
pub mod pipeline;
pub mod recursive;
pub mod rvf;
pub mod serving;

pub use error::RvfError;
pub use export::{matlab::to_matlab, text, verilog_a::to_verilog_a};
pub use hammerstein::{build_hammerstein, BuildDiagnostics, DynBlock, HammersteinModel, StateFn};
pub use integrated::{IntegratedStateFn, LogTerm};
pub use metrics::{measure_speedup, time_domain_report, Speedup, TimeDomainReport};
pub use pipeline::{extract_model, fit_tft, ExtractionReport};
pub use recursive::{fit_recursive_2d, Rvf2d};
pub use rvf::{
    fit_frequency_stage, fit_frequency_stage_in, fit_state_stage, fit_state_stage_in, RvfOptions,
    StageFit,
};
pub use serving::{
    CompiledSim, ServingError, SessionChunk, SessionId, SessionSet, SimBuilder, SimState,
    StateCheckpoint, StreamingSession, BATCH_LANES,
};
