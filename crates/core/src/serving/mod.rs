//! Compiled serving runtime for extracted Hammerstein models: one-shot,
//! batched, and streaming evaluation.
//!
//! [`HammersteinModel::simulate`](crate::HammersteinModel::simulate) is
//! the deployment hot path (the paper's Table I "Speedup" is a claim
//! about *evaluation* cost). The runtime lowers a model **once** into
//! flat structure-of-arrays tables ([`SimBuilder`] → [`CompiledSim`],
//! see [`compile`]) and then evaluates stimuli through three entry
//! styles:
//!
//! * **one-shot** — [`CompiledSim::simulate`] /
//!   [`CompiledSim::try_simulate`]: one stimulus in, one output vector
//!   out, sample-for-sample equal to
//!   [`HammersteinModel::simulate_reference`](crate::HammersteinModel::simulate_reference)
//!   under `f64` comparison;
//! * **batched** — [`CompiledSim::simulate_batch`] and the checked
//!   [`CompiledSim::try_simulate_batch`] /
//!   [`CompiledSim::try_simulate_batch_in`]: many stimuli chopped into
//!   lane groups of up to [`BATCH_LANES`] and fanned over the
//!   [`SweepPool`](rvf_numerics::SweepPool) runtime ([`batch`]);
//! * **streaming** — [`SimState`] + [`CompiledSim::simulate_into`]
//!   ([`state`]) carry the per-simulation first-order-hold state across
//!   chunk boundaries, so a stimulus fed in N chunks produces exactly
//!   the bits of the one-shot call; [`StreamingSession`] and the
//!   many-session [`SessionSet`] ([`session`]) build resumable serving
//!   sessions on top.
//!
//! Every kernel expression reproduces the reference loop's operation
//! order, so compiled output equals the reference sample-for-sample
//! (`f64` `==`), batch output is bit-identical to per-stimulus serial
//! calls for every worker count, and chunked session output is
//! bit-identical to one-shot evaluation for every chunk split.
//!
//! The *checked* entry points (`try_*`, [`CompiledSim::simulate_into`],
//! the session types) never panic: invalid steps, foreign states,
//! mis-sized buffers, and mid-batch worker panics all surface as a
//! typed [`ServingError`]. The legacy infallible signatures are kept as
//! documented-panic wrappers over the same core.

pub mod batch;
pub mod compile;
pub mod session;
pub mod state;

pub use compile::{CompiledSim, SimBuilder};
pub use session::{SessionChunk, SessionId, SessionSet, StreamingSession};
pub use state::{SimState, StateCheckpoint};

use core::fmt;

/// Lane width of the batch kernel: stimuli (or live sessions) in one
/// task are advanced in lockstep groups of up to this many, so the
/// per-block state updates (lane-innermost loops over contiguous slots)
/// vectorize across the batch. Per-lane arithmetic never crosses lanes,
/// which is what makes grouped output bit-identical to per-stimulus
/// serial runs.
pub const BATCH_LANES: usize = 8;

/// Errors produced by the checked serving APIs.
///
/// The serving layer's contract is that the *checked* entry points
/// ([`CompiledSim::try_simulate_batch`], [`CompiledSim::simulate_into`],
/// [`StreamingSession`], [`SessionSet`], [`SimBuilder::try_build`])
/// never panic: every data-dependent failure — including a worker panic
/// inside a pooled batch round — comes back as one of these variants.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServingError {
    /// The sample step is not a finite positive number.
    BadDt {
        /// The rejected step.
        dt: f64,
    },
    /// A block (or the static path) references a drive row that was
    /// never registered with the builder.
    BadDrive {
        /// The out-of-range drive row id.
        drive: usize,
        /// Number of registered drive rows.
        n_drives: usize,
    },
    /// [`SimBuilder::set_static_drive`] was never called.
    MissingStaticDrive,
    /// A stimulus chunk contains a non-finite (NaN or ±∞) sample.
    ///
    /// Checked at every state-mutating boundary
    /// ([`CompiledSim::simulate_into`], [`StreamingSession::feed`] /
    /// [`feed_into`](StreamingSession::feed_into),
    /// [`SessionSet::push`], [`CompiledSim::advance_chunks`], the
    /// `try_*` batch entry points) *before* any state is touched: a NaN
    /// sample would otherwise poison the first-order-hold registers and
    /// every later checkpoint silently.
    BadStimulus {
        /// Position of the offending sample within its chunk.
        index: usize,
        /// The rejected sample value.
        value: f64,
    },
    /// An output buffer's length does not match its stimulus chunk.
    OutputMismatch {
        /// Required length (the chunk length).
        expected: usize,
        /// Length of the buffer that was passed.
        got: usize,
    },
    /// A [`SimState`] was created by (or for) a different model shape
    /// than the [`CompiledSim`] it was handed to.
    StateMismatch,
    /// A session id is unknown, or the session was already closed.
    UnknownSession {
        /// The offending id.
        id: usize,
    },
    /// A worker panicked mid-batch. The round is aborted (no partial
    /// results are applied) and the pool stays usable.
    WorkerPanicked {
        /// Slot of the worker whose task panicked.
        worker: usize,
    },
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadDt { dt } => {
                write!(f, "serving: dt must be finite and positive, got {dt}")
            }
            Self::BadDrive { drive, n_drives } => {
                write!(f, "SimBuilder: block drive row {drive} out of range ({n_drives} rows)")
            }
            Self::MissingStaticDrive => write!(f, "SimBuilder: static drive row not set"),
            Self::BadStimulus { index, value } => {
                write!(f, "serving: stimulus sample {index} is not finite ({value})")
            }
            Self::OutputMismatch { expected, got } => {
                write!(f, "serving: output buffer holds {got} samples, chunk needs {expected}")
            }
            Self::StateMismatch => {
                write!(f, "serving: SimState does not match this CompiledSim's shape")
            }
            Self::UnknownSession { id } => {
                write!(f, "serving: unknown or closed session id {id}")
            }
            Self::WorkerPanicked { worker } => {
                write!(f, "serving: batch worker {worker} panicked mid-round")
            }
        }
    }
}

impl std::error::Error for ServingError {}

/// Whether `dt` is usable as a sample step (finite and strictly
/// positive) — the predicate behind [`check_dt`] and the
/// `debug_assert!`s of the legacy infallible signatures.
pub(crate) fn dt_ok(dt: f64) -> bool {
    dt.is_finite() && dt > 0.0
}

/// Validates a sample step once per checked call.
pub(crate) fn check_dt(dt: f64) -> Result<(), ServingError> {
    if dt_ok(dt) {
        Ok(())
    } else {
        Err(ServingError::BadDt { dt })
    }
}

/// Rejects non-finite stimulus samples before any state is mutated —
/// the guard behind [`ServingError::BadStimulus`]. One linear scan per
/// chunk; the kernel itself is branch-free on the value.
pub(crate) fn check_stimulus(chunk: &[f64]) -> Result<(), ServingError> {
    for (index, &value) in chunk.iter().enumerate() {
        if !value.is_finite() {
            return Err(ServingError::BadStimulus { index, value });
        }
    }
    Ok(())
}

/// Test-only poison switch: when armed, the next pooled serving group
/// task panics (exactly one — the flag is consumed atomically). This is
/// the seam the worker-panic regression tests use to drive a genuine
/// mid-batch panic through the checked path; it must never be called
/// outside a dedicated test binary.
#[doc(hidden)]
pub fn poison_next_group() {
    POISON.store(true, core::sync::atomic::Ordering::SeqCst);
}

pub(crate) static POISON: core::sync::atomic::AtomicBool =
    core::sync::atomic::AtomicBool::new(false);

/// Consumes the poison flag; the caller panics if it was armed.
pub(crate) fn trip_poison() {
    if POISON.swap(false, core::sync::atomic::Ordering::SeqCst) {
        panic!("injected serving worker panic (test poison)");
    }
}

/// Shared fixtures for the serving unit tests.
#[cfg(test)]
pub(crate) mod testutil {
    use super::{CompiledSim, SimBuilder};
    use crate::IntegratedStateFn;

    /// One real block `ẏ = a·y + slope·u` behind a zero static path —
    /// the smallest model that exercises the full kernel (drive memo,
    /// DC seed, FOH step, emit).
    pub(crate) fn linear_real_sim(a: f64, slope: f64) -> CompiledSim {
        let mut b = SimBuilder::new();
        let zero = b.drive_poly(&[0.0]);
        b.set_static_drive(zero);
        let f = b.drive_rational(&IntegratedStateFn {
            terms: vec![],
            linear: slope,
            quadratic: 0.0,
            constant: 0.0,
        });
        b.block_real(a, f);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dt_predicate() {
        assert!(dt_ok(1.0e-12));
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(!dt_ok(bad), "{bad}");
            assert!(matches!(check_dt(bad), Err(ServingError::BadDt { .. })), "{bad}");
        }
        assert_eq!(check_dt(2.0e-9), Ok(()));
    }

    #[test]
    fn stimulus_predicate_reports_first_bad_sample() {
        assert_eq!(check_stimulus(&[]), Ok(()));
        assert_eq!(check_stimulus(&[0.0, -1.0e300, 1.0e-300]), Ok(()));
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = check_stimulus(&[1.0, bad, f64::NAN]).unwrap_err();
            assert!(matches!(err, ServingError::BadStimulus { index: 1, .. }), "{bad}: {err:?}");
        }
    }

    #[test]
    fn display_formats() {
        assert!(ServingError::BadDt { dt: f64::NAN }.to_string().contains("finite"));
        assert!(ServingError::BadDrive { drive: 7, n_drives: 2 }
            .to_string()
            .contains("out of range"));
        assert!(ServingError::MissingStaticDrive.to_string().contains("static drive row not set"));
        assert!(ServingError::BadStimulus { index: 3, value: f64::NAN }
            .to_string()
            .contains("not finite"));
        assert!(ServingError::OutputMismatch { expected: 4, got: 3 }.to_string().contains("4"));
        assert!(ServingError::StateMismatch.to_string().contains("SimState"));
        assert!(ServingError::UnknownSession { id: 9 }.to_string().contains("9"));
        assert!(ServingError::WorkerPanicked { worker: 1 }.to_string().contains("panicked"));
    }
}
