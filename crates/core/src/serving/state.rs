//! Checkpointable per-simulation state and the streaming kernel.
//!
//! [`SimState`] extracts the first-order-hold block state and the
//! drive-memo registers out of the kernel loop into a first-class
//! value: create one with [`CompiledSim::new_state`], advance it chunk
//! by chunk with [`CompiledSim::simulate_into`], clone it to
//! checkpoint, and hand the clone back later to resume. Feeding a
//! stimulus in N chunks produces exactly the bits of the one-shot
//! [`CompiledSim::simulate`] call — the kernel's per-sample arithmetic
//! never depends on where a chunk boundary falls.
//!
//! A state is *multi-lane* internally (the batch and session-set paths
//! advance up to [`BATCH_LANES`](super::BATCH_LANES) simulations in
//! lockstep through the same kernel), but the public constructor always
//! hands out a single-lane state; per-lane arithmetic never crosses
//! lanes, so the lane grouping is unobservable in the output bits.

use rvf_numerics::Complex;

use super::compile::{BlockCoef, CompiledSim};
use super::{check_dt, check_stimulus, dt_ok, ServingError};

/// Checkpointable state of one running simulation.
///
/// Holds everything the kernel carries from one sample to the next:
/// the 2-wide first-order-hold state of every block, the previous
/// sample's drive vector, and the bit pattern of the input that built
/// it (the drive-memo register). `Clone` is the checkpoint operation —
/// a cloned state resumed later continues bit-for-bit where the
/// original stood.
///
/// The buffers double as the kernel's scratch space, so a chunk
/// advanced through [`CompiledSim::simulate_into`] performs **no heap
/// allocation** in steady state (the first-order-hold coefficients are
/// cached per `dt` inside the state, in capacity reserved up front).
///
/// # Examples
///
/// ```
/// use rvf_core::{IntegratedStateFn, SimBuilder};
///
/// let mut b = SimBuilder::new();
/// let zero = b.drive_poly(&[0.0]);
/// b.set_static_drive(zero);
/// let f = b.drive_rational(&IntegratedStateFn {
///     terms: vec![],
///     linear: 1.0e9,
///     quadratic: 0.0,
///     constant: 0.0,
/// });
/// b.block_real(-1.0e9, f);
/// let sim = b.build();
///
/// // Stream a stimulus in two chunks; the result is bit-identical to
/// // the one-shot call.
/// let stimulus = [0.0, 0.4, 0.8, 0.8, 0.8, 0.2];
/// let mut state = sim.new_state();
/// let mut out = [0.0; 6];
/// sim.simulate_into(1.0e-10, &stimulus[..3], &mut state, &mut out[..3]).unwrap();
/// let checkpoint = state.clone(); // resumable snapshot
/// sim.simulate_into(1.0e-10, &stimulus[3..], &mut state, &mut out[3..]).unwrap();
/// assert_eq!(out.to_vec(), sim.simulate(1.0e-10, &stimulus));
/// assert_eq!(checkpoint.samples(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SimState {
    /// Concurrent simulations carried by this state (1 for public
    /// states; the batch/session kernels run up to `BATCH_LANES`).
    pub(crate) lanes: usize,
    /// Previous-sample drive values, `[drive][lane]`.
    pub(crate) v0: Vec<f64>,
    /// Current-sample drive values (scratch), `[drive][lane]`.
    pub(crate) v1: Vec<f64>,
    /// Block state, real components, `[block][lane]`.
    pub(crate) sre: Vec<f64>,
    /// Block state, imaginary components, `[block][lane]`.
    pub(crate) sim: Vec<f64>,
    /// Per-lane bit pattern of the last input that rebuilt the drives.
    pub(crate) uprev: Vec<u64>,
    /// Per-lane flag: has this lane absorbed its first sample (which
    /// seeds the blocks at the DC steady state of that input)?
    pub(crate) started: Vec<bool>,
    /// Per-lane log-feature temporaries (one slot per distinct pole).
    lr: Vec<f64>,
    li: Vec<f64>,
    /// Shared power basis `[1, u, …, u^pdeg]` (scratch).
    pw: Vec<f64>,
    /// Per-lane output accumulator of the emit pass (scratch).
    acc: Vec<f64>,
    /// Cached first-order-hold coefficients for `coef_dt`.
    coef: Vec<BlockCoef>,
    /// Bit pattern of the `dt` the cache was computed for.
    coef_dt: u64,
    /// Model shape fingerprint: (drives, blocks, pole features, pdeg).
    shape: [usize; 4],
    /// Samples advanced so far (per lane — lanes advance in lockstep).
    samples: u64,
}

impl SimState {
    /// A fresh state with every buffer sized for `lanes` concurrent
    /// simulations of `sim`, including capacity for the propagator
    /// cache — after this, advancing chunks allocates nothing.
    pub(crate) fn for_lanes(sim: &CompiledSim, lanes: usize) -> Self {
        Self {
            lanes,
            v0: vec![0.0; sim.n_drives * lanes],
            v1: vec![0.0; sim.n_drives * lanes],
            sre: vec![0.0; sim.n_blocks() * lanes],
            sim: vec![0.0; sim.n_blocks() * lanes],
            uprev: vec![0; lanes],
            started: vec![false; lanes],
            lr: vec![0.0; sim.poles.len()],
            li: vec![0.0; sim.poles.len()],
            pw: vec![0.0; sim.pdeg + 1],
            acc: vec![0.0; lanes],
            coef: Vec::with_capacity(sim.n_blocks()),
            coef_dt: u64::MAX,
            shape: shape_of(sim),
            samples: 0,
        }
    }

    /// Re-sizes this state in place for a new lane group of `sim`
    /// (shrinking never releases capacity, so a per-worker scratch
    /// state reused across groups stops allocating once it has seen the
    /// widest group). All lanes come back fresh.
    pub(crate) fn reset_for(&mut self, sim: &CompiledSim, lanes: usize) {
        let resize = |v: &mut Vec<f64>, n: usize| {
            v.clear();
            v.resize(n, 0.0);
        };
        self.lanes = lanes;
        resize(&mut self.v0, sim.n_drives * lanes);
        resize(&mut self.v1, sim.n_drives * lanes);
        resize(&mut self.sre, sim.n_blocks() * lanes);
        resize(&mut self.sim, sim.n_blocks() * lanes);
        resize(&mut self.lr, sim.poles.len());
        resize(&mut self.li, sim.poles.len());
        resize(&mut self.pw, sim.pdeg + 1);
        resize(&mut self.acc, lanes);
        self.uprev.clear();
        self.uprev.resize(lanes, 0);
        self.started.clear();
        self.started.resize(lanes, false);
        self.shape = shape_of(sim);
        self.samples = 0;
    }

    /// Whether this state was sized for `sim`'s table shape. (A
    /// fingerprint check: two models with identical shape are
    /// interchangeable as far as buffer safety goes.)
    pub(crate) fn matches(&self, sim: &CompiledSim) -> bool {
        self.shape == shape_of(sim)
    }

    /// Copies lane 0 of the single-lane state `src` into lane `l`.
    pub(crate) fn load_lane(&mut self, l: usize, src: &SimState) {
        debug_assert_eq!(src.lanes, 1);
        let (lanes, n_drives, n_blocks) = (self.lanes, self.shape[0], self.shape[1]);
        for d in 0..n_drives {
            self.v0[d * lanes + l] = src.v0[d];
        }
        for b in 0..n_blocks {
            self.sre[b * lanes + l] = src.sre[b];
            self.sim[b * lanes + l] = src.sim[b];
        }
        self.uprev[l] = src.uprev[0];
        self.started[l] = src.started[0];
    }

    /// Extracts lane `l` as a fresh single-lane state of `sim`.
    pub(crate) fn extract_lane(&self, sim: &CompiledSim, l: usize) -> SimState {
        let mut out = SimState::for_lanes(sim, 1);
        let (lanes, n_drives, n_blocks) = (self.lanes, self.shape[0], self.shape[1]);
        for d in 0..n_drives {
            out.v0[d] = self.v0[d * lanes + l];
        }
        for b in 0..n_blocks {
            out.sre[b] = self.sre[b * lanes + l];
            out.sim[b] = self.sim[b * lanes + l];
        }
        out.uprev[0] = self.uprev[l];
        out.started[0] = self.started[l];
        out
    }

    /// Re-fills the cached propagators if `dt` changed (bit compare);
    /// the cache vector's capacity was reserved at construction, so
    /// this never allocates.
    pub(crate) fn ensure_coef(&mut self, sim: &CompiledSim, dt: f64) {
        let bits = dt.to_bits();
        if self.coef_dt == bits && self.coef.len() == sim.n_blocks() {
            return;
        }
        self.coef.clear();
        sim.fill_propagators(dt, &mut self.coef);
        self.coef_dt = bits;
    }

    /// Samples this state has absorbed since creation (or the last
    /// [`reset`](SimState::reset)).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Overrides the absorbed-sample counter (used when a lane is
    /// scattered back out of a group advance).
    pub(crate) fn set_samples(&mut self, samples: u64) {
        self.samples = samples;
    }

    /// Whether the state has absorbed at least one sample. A fresh
    /// state seeds every block at the DC steady state of the first
    /// input it sees.
    pub fn is_started(&self) -> bool {
        self.started.iter().all(|&s| s)
    }

    /// Rewinds to the fresh state: the next chunk's first sample
    /// re-seeds the blocks at its DC operating point. Buffers (and the
    /// propagator cache) are kept, so a reset session still allocates
    /// nothing.
    pub fn reset(&mut self) {
        self.started.fill(false);
        self.samples = 0;
    }

    /// Exports this state as a plain-data [`StateCheckpoint`] — the
    /// introspection seam a durability layer serializes. Only
    /// single-lane states (the kind every public constructor hands out)
    /// are exportable; the multi-lane group states are kernel-internal
    /// scratch.
    ///
    /// # Errors
    ///
    /// [`ServingError::StateMismatch`] for a multi-lane internal state.
    pub fn export(&self) -> Result<StateCheckpoint, ServingError> {
        if self.lanes != 1 {
            return Err(ServingError::StateMismatch);
        }
        Ok(StateCheckpoint {
            shape: self.shape.map(|s| s as u64),
            v0: self.v0.clone(),
            sre: self.sre.clone(),
            sim: self.sim.clone(),
            uprev: self.uprev[0],
            started: self.started[0],
            samples: self.samples,
            coef_dt: self.coef_dt,
        })
    }
}

/// Plain-data snapshot of a single-lane [`SimState`]: everything the
/// kernel carries from one sample to the next, as exact bit patterns.
/// Produced by [`SimState::export`], turned back into a live state by
/// [`CompiledSim::import_state`]; a round trip through any byte-exact
/// serialization resumes **bit-identically** — the fields are the
/// complete per-sample carry of the kernel, nothing is approximated.
///
/// Scratch buffers (current-sample drives, log-feature and power-basis
/// temporaries) are deliberately absent: they are overwritten before
/// being read on every sample, so they are not state.
#[derive(Debug, Clone, PartialEq)]
pub struct StateCheckpoint {
    /// Model shape fingerprint `[n_drives, n_blocks, pole features,
    /// pdeg]` — import refuses a mismatching model.
    pub shape: [u64; 4],
    /// Previous-sample drive values (one per drive row).
    pub v0: Vec<f64>,
    /// Block state, real components (one per block).
    pub sre: Vec<f64>,
    /// Block state, imaginary components (one per block).
    pub sim: Vec<f64>,
    /// Bit pattern of the last input that rebuilt the drives (the
    /// drive-memo register).
    pub uprev: u64,
    /// Whether the lane has absorbed its first sample (a fresh lane
    /// seeds the blocks at the DC point of its first input).
    pub started: bool,
    /// Samples absorbed so far.
    pub samples: u64,
    /// Propagator-cache key: bit pattern of the `dt` whose first-order-
    /// hold coefficients were cached (`u64::MAX` = cache empty). Import
    /// re-warms the cache from this key, so the first chunk after a
    /// restore allocates nothing new.
    pub coef_dt: u64,
}

/// The shape fingerprint [`SimState::matches`] compares.
fn shape_of(sim: &CompiledSim) -> [usize; 4] {
    [sim.n_drives, sim.n_blocks(), sim.poles.len(), sim.pdeg]
}

/// Evaluates every drive row at input `u` into lane `l` of `v1`.
///
/// Pass 1 fills the shared log-feature basis (one `ln` per *distinct*
/// pole), pass 2 accumulates the quadratic heads + CSR log terms in the
/// reference operation order, pass 3 runs the power-basis matvec for
/// the polynomial rows.
#[allow(clippy::too_many_arguments)]
fn eval_drives_lane(
    sim: &CompiledSim,
    u: f64,
    l: usize,
    lanes: usize,
    v1: &mut [f64],
    lr: &mut [f64],
    li: &mut [f64],
    pw: &mut [f64],
) {
    for (p, &pole) in sim.poles.iter().enumerate() {
        let z = (Complex::from_re(u) - pole).ln();
        lr[p] = z.re;
        li[p] = z.im;
    }
    for d in 0..sim.n_drives {
        let h = sim.head[d];
        // Matches `constant + linear*u + 0.5*quadratic*u*u` bit for bit
        // (h[2] is the exactly-precomputed 0.5·q).
        let mut acc = h[0] + h[1] * u + h[2] * u * u;
        for t in sim.row_off[d]..sim.row_off[d + 1] {
            let w = sim.term_w[t];
            let p = sim.term_pole[t];
            // Matches `2.0 * (rho * z.ln()).re`.
            acc += 2.0 * (w[0] * lr[p] - w[1] * li[p]);
        }
        v1[d * lanes + l] = acc;
    }
    if !sim.prow.is_empty() {
        let width = sim.pdeg + 1;
        pw[0] = 1.0;
        for j in 1..width {
            pw[j] = pw[j - 1] * u;
        }
        for (r, &d) in sim.prow.iter().enumerate() {
            let row = &sim.pmat[r * width..(r + 1) * width];
            let mut acc = 0.0;
            for j in 0..width {
                acc += row[j] * pw[j];
            }
            v1[d * lanes + l] = acc;
        }
    }
}

/// Emit pass: output = static drive value + Σ block state components,
/// accumulated per block (`y += sre + sim`) in model block order — the
/// reference summation.
fn emit(sim: &CompiledSim, lanes: usize, v1: &[f64], sre: &[f64], simc: &[f64], acc: &mut [f64]) {
    let so = sim.static_row * lanes;
    acc[..lanes].copy_from_slice(&v1[so..so + lanes]);
    for b in 0..sim.n_blocks() {
        let sb = b * lanes;
        for l in 0..lanes {
            acc[l] += sre[sb + l] + simc[sb + l];
        }
    }
}

/// Advances every lane of `state` through one chunk of samples. This is
/// the whole serving kernel: single stimuli and streaming sessions run
/// it with one lane, the batch and session-set paths with up to
/// [`BATCH_LANES`](super::BATCH_LANES); per-lane arithmetic never
/// crosses lanes, so the grouping is unobservable in the output bits.
///
/// `stims` holds one equal-length chunk per lane; `outs[l][t]` receives
/// lane `l`'s output sample `t`. Lanes that have not started yet absorb
/// their first sample as the DC seed (the reference loop's `t = 0`
/// path); started lanes continue with the first-order-hold step against
/// the drive vector and memo register carried in the state, so a chunk
/// boundary is arithmetically invisible.
pub(crate) fn advance_group(
    sim: &CompiledSim,
    dt: f64,
    state: &mut SimState,
    stims: &[&[f64]],
    outs: &mut [&mut [f64]],
) {
    let lanes = state.lanes;
    debug_assert_eq!(stims.len(), lanes);
    let n = stims[0].len();
    if n == 0 {
        return;
    }
    state.ensure_coef(sim, dt);
    state.samples += n as u64;
    let SimState { v0, v1, sre, sim: simc, uprev, started, lr, li, pw, acc, coef, .. } = state;
    let n_blocks = sim.n_blocks();

    let mut t0 = 0;
    if !started.iter().all(|&s| s) {
        // Chunk sample 0 with at least one fresh lane: per-lane branch
        // between the DC seed and the regular step. (After this sample
        // every lane has started, so the uniform loop below takes over.)
        for (l, stim) in stims.iter().enumerate() {
            let u = stim[0];
            let bits = u.to_bits();
            if started[l] && bits == uprev[l] {
                for d in 0..sim.n_drives {
                    v1[d * lanes + l] = v0[d * lanes + l];
                }
            } else {
                eval_drives_lane(sim, u, l, lanes, v1, lr, li, pw);
                uprev[l] = bits;
            }
        }
        for b in 0..n_blocks {
            let c = coef[b];
            let (o1, o2, sb) = (sim.d1[b] * lanes, sim.d2[b] * lanes, b * lanes);
            if sim.pair[b] {
                let lambda = Complex::new(sim.sigma[b], -sim.omega[b]);
                for l in 0..lanes {
                    if started[l] {
                        foh_step(&c, v0, v1, sre, simc, o1, o2, sb, l);
                    } else {
                        // Steady state for the first input (the
                        // circuit's DC operating point).
                        let w = Complex::new(v1[o1 + l], v1[o2 + l]);
                        let z = -(w / lambda);
                        sre[sb + l] = z.re;
                        simc[sb + l] = z.im;
                    }
                }
            } else {
                let a = sim.sigma[b];
                for l in 0..lanes {
                    if started[l] {
                        foh_step(&c, v0, v1, sre, simc, o1, o2, sb, l);
                    } else {
                        let v = v1[o1 + l];
                        sre[sb + l] = -v / a;
                        simc[sb + l] = 0.0;
                    }
                }
            }
        }
        emit(sim, lanes, v1, sre, simc, acc);
        for (l, out) in outs.iter_mut().enumerate() {
            out[0] = acc[l];
        }
        core::mem::swap(v0, v1);
        started.fill(true);
        t0 = 1;
    }

    for t in t0..n {
        // Drive pass, lane-at-a-time: re-evaluate only the lanes whose
        // input actually changed (bit compare — flat bit-pattern
        // stretches skip the transcendentals entirely; exact, since the
        // drives are pure functions of `u`).
        for (l, stim) in stims.iter().enumerate() {
            let u = stim[t];
            let bits = u.to_bits();
            if bits == uprev[l] {
                for d in 0..sim.n_drives {
                    v1[d * lanes + l] = v0[d * lanes + l];
                }
            } else {
                eval_drives_lane(sim, u, l, lanes, v1, lr, li, pw);
                uprev[l] = bits;
            }
        }
        // Block pass, lane-innermost: uniform complex-scalar FOH madds
        // over contiguous slots — no per-block dispatch, and the lane
        // loops vectorize across the batch.
        for b in 0..n_blocks {
            let c = coef[b];
            let (o1, o2, sb) = (sim.d1[b] * lanes, sim.d2[b] * lanes, b * lanes);
            for l in 0..lanes {
                foh_step(&c, v0, v1, sre, simc, o1, o2, sb, l);
            }
        }
        emit(sim, lanes, v1, sre, simc, acc);
        for (l, out) in outs.iter_mut().enumerate() {
            out[t] = acc[l];
        }
        core::mem::swap(v0, v1);
    }
}

/// One first-order-hold update of block slot `sb`, lane `l`:
/// `e·z + g1·w0 + g2·(w1 − w0)`, component-wise in the reference
/// association.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn foh_step(
    c: &BlockCoef,
    v0: &[f64],
    v1: &[f64],
    sre: &mut [f64],
    simc: &mut [f64],
    o1: usize,
    o2: usize,
    sb: usize,
    l: usize,
) {
    let (xr, xi) = (sre[sb + l], simc[sb + l]);
    let (w0r, w0i) = (v0[o1 + l], v0[o2 + l]);
    let (dvr, dvi) = (v1[o1 + l] - w0r, v1[o2 + l] - w0i);
    sre[sb + l] =
        (c.er * xr - c.ei * xi + (c.g1r * w0r - c.g1i * w0i)) + (c.g2r * dvr - c.g2i * dvi);
    simc[sb + l] =
        (c.er * xi + c.ei * xr + (c.g1r * w0i + c.g1i * w0r)) + (c.g2r * dvi + c.g2i * dvr);
}

impl CompiledSim {
    /// A fresh single-simulation [`SimState`] sized for this model,
    /// with all kernel scratch (including the per-`dt` propagator
    /// cache) allocated up front — advancing chunks through
    /// [`simulate_into`](CompiledSim::simulate_into) is then
    /// allocation-free.
    pub fn new_state(&self) -> SimState {
        SimState::for_lanes(self, 1)
    }

    /// The allocation-free streaming kernel: advances `state` through
    /// the chunk `inputs`, writing one output sample per input into
    /// `out`. Feeding a stimulus in N chunks (any split, including
    /// single-sample chunks) produces exactly the bits of the one-shot
    /// [`simulate`](CompiledSim::simulate) call.
    ///
    /// # Errors
    ///
    /// [`ServingError::BadDt`] for a non-finite or non-positive `dt`,
    /// [`ServingError::OutputMismatch`] when `out.len() !=
    /// inputs.len()`, [`ServingError::StateMismatch`] when `state` was
    /// built for a different model shape, and
    /// [`ServingError::BadStimulus`] for a chunk with a NaN or infinite
    /// sample. A rejected call leaves `state` untouched.
    ///
    /// # Examples
    ///
    /// ```
    /// use rvf_core::{IntegratedStateFn, ServingError, SimBuilder};
    ///
    /// let mut b = SimBuilder::new();
    /// let s = b.drive_poly(&[0.0, 1.0]);
    /// b.set_static_drive(s);
    /// b.block_real(-1.0e9, s);
    /// let sim = b.build();
    ///
    /// let mut state = sim.new_state();
    /// let mut out = [0.0; 2];
    /// sim.simulate_into(1e-10, &[0.1, 0.2], &mut state, &mut out).unwrap();
    /// assert!(matches!(
    ///     sim.simulate_into(f64::NAN, &[0.1], &mut state, &mut out[..1]),
    ///     Err(ServingError::BadDt { .. })
    /// ));
    /// ```
    pub fn simulate_into(
        &self,
        dt: f64,
        inputs: &[f64],
        state: &mut SimState,
        out: &mut [f64],
    ) -> Result<(), ServingError> {
        check_dt(dt)?;
        if out.len() != inputs.len() {
            return Err(ServingError::OutputMismatch { expected: inputs.len(), got: out.len() });
        }
        if state.lanes != 1 || !state.matches(self) {
            return Err(ServingError::StateMismatch);
        }
        check_stimulus(inputs)?;
        if inputs.is_empty() {
            return Ok(());
        }
        advance_group(self, dt, state, &[inputs], &mut [out]);
        Ok(())
    }

    /// Simulates one stimulus sampled at fixed `dt` — the compiled
    /// equivalent of
    /// [`HammersteinModel::simulate_reference`](crate::HammersteinModel::simulate_reference),
    /// equal to it sample-for-sample under `f64` comparison.
    ///
    /// A non-finite or non-positive `dt` is a caller bug: it is
    /// `debug_assert!`ed here and produces non-finite output in release
    /// builds. Use [`try_simulate`](CompiledSim::try_simulate) to get a
    /// typed error instead.
    pub fn simulate(&self, dt: f64, inputs: &[f64]) -> Vec<f64> {
        debug_assert!(dt_ok(dt), "CompiledSim::simulate: dt must be finite and positive ({dt})");
        let mut out = vec![0.0; inputs.len()];
        if !inputs.is_empty() {
            let mut state = self.new_state();
            advance_group(self, dt, &mut state, &[inputs], &mut [out.as_mut_slice()]);
        }
        out
    }

    /// Rebuilds a live [`SimState`] from a [`StateCheckpoint`] exported
    /// earlier (possibly in another process). The restored state
    /// continues **bit-identically** where the exported one stood:
    /// every carried register is reloaded by exact bit pattern, scratch
    /// buffers are rebuilt fresh, and the propagator cache is re-warmed
    /// from the checkpoint's `dt` key so the first chunk after a
    /// restore allocates nothing.
    ///
    /// # Errors
    ///
    /// [`ServingError::StateMismatch`] when the checkpoint's shape
    /// fingerprint or vector lengths do not match this model — a
    /// checkpoint is only replayable into the model it was exported
    /// from (or a shape-identical twin, the same rule
    /// [`simulate_into`](CompiledSim::simulate_into) applies to
    /// states).
    pub fn import_state(&self, ckpt: &StateCheckpoint) -> Result<SimState, ServingError> {
        let shape = shape_of(self);
        if ckpt.shape != shape.map(|s| s as u64)
            || ckpt.v0.len() != self.n_drives
            || ckpt.sre.len() != self.n_blocks()
            || ckpt.sim.len() != self.n_blocks()
        {
            return Err(ServingError::StateMismatch);
        }
        let mut state = SimState::for_lanes(self, 1);
        state.v0.copy_from_slice(&ckpt.v0);
        state.sre.copy_from_slice(&ckpt.sre);
        state.sim.copy_from_slice(&ckpt.sim);
        state.uprev[0] = ckpt.uprev;
        state.started[0] = ckpt.started;
        state.samples = ckpt.samples;
        let dt = f64::from_bits(ckpt.coef_dt);
        if ckpt.coef_dt != u64::MAX && dt_ok(dt) {
            state.ensure_coef(self, dt);
        }
        Ok(state)
    }

    /// Checked [`simulate`](CompiledSim::simulate): validates `dt` and
    /// the stimulus once per call and never panics.
    ///
    /// # Errors
    ///
    /// [`ServingError::BadDt`] for a non-finite or non-positive `dt`,
    /// [`ServingError::BadStimulus`] for a NaN or infinite sample.
    pub fn try_simulate(&self, dt: f64, inputs: &[f64]) -> Result<Vec<f64>, ServingError> {
        check_dt(dt)?;
        check_stimulus(inputs)?;
        let mut out = vec![0.0; inputs.len()];
        if !inputs.is_empty() {
            let mut state = self.new_state();
            advance_group(self, dt, &mut state, &[inputs], &mut [out.as_mut_slice()]);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::linear_real_sim;
    use super::*;

    #[test]
    fn real_block_step_response_matches_analytic() {
        // ẏ = a·y + w0·u with a = −w0: unit-DC-gain low-pass.
        let w0 = 1.0e9;
        let sim = linear_real_sim(-w0, w0);
        let dt = 1.0e-11;
        let n = 600;
        let mut u = vec![0.0; n];
        for v in u.iter_mut().skip(1) {
            *v = 1.0;
        }
        let y = sim.simulate(dt, &u);
        let t_end = (n - 1) as f64 * dt;
        let want = 1.0 - (-w0 * (t_end - dt)).exp();
        assert!((y[n - 1] - want).abs() < 2e-3, "{} vs {want}", y[n - 1]);
        assert!(y[0].abs() < 1e-12, "starts in steady state");
    }

    #[test]
    fn memoized_constant_input_stays_in_steady_state() {
        let sim = linear_real_sim(-2.0e9, 3.0);
        let y = sim.simulate(1e-10, &vec![0.75; 200]);
        for v in &y {
            assert_eq!(*v, y[0], "constant input must hold the DC point exactly");
        }
    }

    #[test]
    fn empty_and_zero_length_stimuli() {
        let sim = linear_real_sim(-1.0e9, 1.0);
        assert!(sim.simulate(1e-10, &[]).is_empty());
        assert!(sim.try_simulate(1e-10, &[]).unwrap().is_empty());
        let mut state = sim.new_state();
        sim.simulate_into(1e-10, &[], &mut state, &mut []).unwrap();
        assert_eq!(state.samples(), 0);
        assert!(!state.is_started());
    }

    #[test]
    fn chunked_streaming_is_bit_identical_to_one_shot() {
        let sim = linear_real_sim(-1.5e9, 2.0);
        let u: Vec<f64> = (0..97).map(|i| ((i / 5) as f64 * 0.37).sin()).collect();
        let dt = 2.0e-11;
        let want = sim.simulate(dt, &u);
        // Several chunkings, including length-1 chunks.
        for split in [vec![97], vec![1, 96], vec![10, 1, 1, 30, 55], vec![1; 97]] {
            let mut state = sim.new_state();
            let mut got = vec![0.0; u.len()];
            let mut off = 0;
            for len in split {
                sim.simulate_into(dt, &u[off..off + len], &mut state, &mut got[off..off + len])
                    .unwrap();
                off += len;
            }
            assert_eq!(off, u.len());
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "sample {i}");
            }
            assert_eq!(state.samples(), 97);
            assert!(state.is_started());
        }
    }

    #[test]
    fn checkpoint_resume_continues_bitwise() {
        let sim = linear_real_sim(-2.0e9, 1.3);
        let u: Vec<f64> = (0..60).map(|i| (i as f64 * 0.21).cos()).collect();
        let dt = 5.0e-11;
        let want = sim.simulate(dt, &u);
        let mut state = sim.new_state();
        let mut head = vec![0.0; 25];
        sim.simulate_into(dt, &u[..25], &mut state, &mut head).unwrap();
        // Clone = checkpoint; run the tail twice from the same snapshot.
        let snapshot = state.clone();
        for _ in 0..2 {
            let mut resumed = snapshot.clone();
            let mut tail = vec![0.0; 35];
            sim.simulate_into(dt, &u[25..], &mut resumed, &mut tail).unwrap();
            for (i, (g, w)) in head.iter().chain(&tail).zip(&want).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "sample {i}");
            }
            assert_eq!(resumed.samples(), 60);
        }
    }

    #[test]
    fn reset_rewinds_to_fresh() {
        let sim = linear_real_sim(-1.0e9, 1.0);
        let u = [0.3, 0.6, 0.9];
        let mut state = sim.new_state();
        let mut out = [0.0; 3];
        sim.simulate_into(1e-10, &u, &mut state, &mut out).unwrap();
        let first = out;
        state.reset();
        assert!(!state.is_started());
        assert_eq!(state.samples(), 0);
        sim.simulate_into(1e-10, &u, &mut state, &mut out).unwrap();
        assert_eq!(first, out, "a reset state replays from the DC seed");
    }

    #[test]
    fn dt_validation_on_checked_apis() {
        let sim = linear_real_sim(-1.0e9, 1.0);
        let mut state = sim.new_state();
        let mut out = [0.0; 1];
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(sim.try_simulate(bad, &[1.0]), Err(ServingError::BadDt { .. })),
                "try_simulate({bad})"
            );
            assert!(
                matches!(
                    sim.simulate_into(bad, &[1.0], &mut state, &mut out),
                    Err(ServingError::BadDt { .. })
                ),
                "simulate_into({bad})"
            );
        }
        // A rejected call leaves the state untouched.
        assert_eq!(state.samples(), 0);
    }

    #[test]
    fn simulate_into_rejects_misshapen_arguments() {
        let sim = linear_real_sim(-1.0e9, 1.0);
        let mut state = sim.new_state();
        let mut short = [0.0; 1];
        assert_eq!(
            sim.simulate_into(1e-10, &[1.0, 2.0], &mut state, &mut short),
            Err(ServingError::OutputMismatch { expected: 2, got: 1 })
        );
        // A state from a different model shape is refused.
        let other = linear_real_sim(-1.0e9, 1.0);
        let mut b = SimBuilder::new();
        let s = b.drive_poly(&[0.0, 1.0, 2.0]);
        b.set_static_drive(s);
        b.block_real(-1.0e9, s);
        b.block_real(-2.0e9, s);
        let bigger = b.build();
        let mut foreign = bigger.new_state();
        let mut out = [0.0; 1];
        assert_eq!(
            sim.simulate_into(1e-10, &[1.0], &mut foreign, &mut out),
            Err(ServingError::StateMismatch)
        );
        // Same-shape states interoperate (documented fingerprint check).
        let mut twin = other.new_state();
        sim.simulate_into(1e-10, &[1.0], &mut twin, &mut out).unwrap();
    }

    #[test]
    fn export_import_resumes_bitwise() {
        let sim = linear_real_sim(-1.7e9, 0.9);
        let u: Vec<f64> = (0..48).map(|i| (i as f64 * 0.13).sin()).collect();
        let dt = 3.0e-11;
        let want = sim.simulate(dt, &u);
        let mut state = sim.new_state();
        let mut head = vec![0.0; 20];
        sim.simulate_into(dt, &u[..20], &mut state, &mut head).unwrap();
        let ckpt = state.export().unwrap();
        assert_eq!(ckpt.samples, 20);
        assert!(ckpt.started);
        assert_eq!(ckpt.coef_dt, dt.to_bits(), "cache key travels with the checkpoint");
        // Import into a *recompiled* twin and continue: still the bits
        // of the uninterrupted run.
        let mut resumed = sim.import_state(&ckpt).unwrap();
        let mut tail = vec![0.0; 28];
        sim.simulate_into(dt, &u[20..], &mut resumed, &mut tail).unwrap();
        for (i, (g, w)) in head.iter().chain(&tail).zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "sample {i}");
        }
        // The round trip itself is lossless.
        assert_eq!(sim.import_state(&ckpt).unwrap().export().unwrap(), ckpt);
    }

    #[test]
    fn export_rejects_multi_lane_and_import_rejects_foreign_shapes() {
        let sim = linear_real_sim(-1.0e9, 1.0);
        let grouped = SimState::for_lanes(&sim, 2);
        assert!(matches!(grouped.export(), Err(ServingError::StateMismatch)));

        let ckpt = sim.new_state().export().unwrap();
        assert_eq!(ckpt.coef_dt, u64::MAX, "fresh state has no cached dt");
        let mut b = SimBuilder::new();
        let s = b.drive_poly(&[0.0, 1.0]);
        b.set_static_drive(s);
        b.block_real(-1.0e9, s);
        b.block_real(-2.0e9, s);
        let bigger = b.build();
        assert!(matches!(bigger.import_state(&ckpt), Err(ServingError::StateMismatch)));

        // A checkpoint whose vectors lie about their lengths is refused
        // even if the shape header matches.
        let mut lying = ckpt.clone();
        lying.sre.push(0.0);
        assert!(matches!(sim.import_state(&lying), Err(ServingError::StateMismatch)));
    }

    use super::super::SimBuilder;
}
