//! Resumable serving sessions: one stimulus fed chunk by chunk
//! ([`StreamingSession`]), and many live sessions advanced in lockstep
//! lane groups over a borrowed [`SweepPool`] ([`SessionSet`]).
//!
//! Both are thin lifecycles around [`SimState`]: a session *is* its
//! state plus the `dt` it was opened with (validated once at open, so
//! the per-chunk path has no failure modes beyond buffer shape). The
//! bit-identity contract carries through — a session fed any chunk
//! split produces exactly the one-shot [`CompiledSim::simulate`] bits,
//! and a [`SessionSet`] advance produces exactly the bits each session
//! would produce alone, whatever the lane grouping or worker count.

use rvf_numerics::{SweepConfig, SweepError, SweepPool};

use super::compile::CompiledSim;
use super::state::{advance_group, SimState};
use super::{check_dt, check_stimulus, trip_poison, ServingError, BATCH_LANES};

/// A resumable streaming evaluation of one stimulus.
///
/// Open one with [`CompiledSim::session`], feed input chunks with
/// [`feed`](StreamingSession::feed) (allocating) or
/// [`feed_into`](StreamingSession::feed_into) (zero-allocation in
/// steady state), checkpoint with
/// [`checkpoint`](StreamingSession::checkpoint), and resume a
/// checkpoint later via [`CompiledSim::session_from`]. Chunked output
/// is bit-identical to the one-shot call for every split.
///
/// # Examples
///
/// ```
/// use rvf_core::{IntegratedStateFn, SimBuilder};
///
/// let mut b = SimBuilder::new();
/// let s = b.drive_poly(&[0.0, 1.0]);
/// b.set_static_drive(s);
/// b.block_real(-1.0e9, s);
/// let sim = b.build();
///
/// let stimulus = [0.0, 0.5, 1.0, 1.0, 0.25];
/// let mut session = sim.session(1.0e-10).unwrap();
/// let mut streamed = Vec::new();
/// for chunk in stimulus.chunks(2) {
///     streamed.extend(session.feed(chunk).unwrap());
/// }
/// assert_eq!(streamed, sim.simulate(1.0e-10, &stimulus));
/// assert_eq!(session.samples(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingSession<'a> {
    sim: &'a CompiledSim,
    dt: f64,
    state: SimState,
}

impl<'a> StreamingSession<'a> {
    /// Feeds one chunk and returns its output samples. Allocates the
    /// return vector; use [`feed_into`](StreamingSession::feed_into)
    /// for the allocation-free path.
    ///
    /// # Errors
    ///
    /// [`ServingError::BadStimulus`] when the chunk contains a NaN or
    /// infinite sample; the session state is untouched in that case (a
    /// non-finite sample would otherwise poison the first-order-hold
    /// registers and every later checkpoint).
    pub fn feed(&mut self, chunk: &[f64]) -> Result<Vec<f64>, ServingError> {
        check_stimulus(chunk)?;
        let mut out = vec![0.0; chunk.len()];
        if !chunk.is_empty() {
            advance_group(self.sim, self.dt, &mut self.state, &[chunk], &mut [out.as_mut_slice()]);
        }
        Ok(out)
    }

    /// Feeds one chunk, writing its output samples into `out` — the
    /// zero-allocation steady-state path (`dt` was validated at open,
    /// the propagator cache lives in the state).
    ///
    /// # Errors
    ///
    /// [`ServingError::OutputMismatch`] when `out.len() !=
    /// chunk.len()`, [`ServingError::BadStimulus`] when the chunk
    /// contains a non-finite sample; the session state is untouched in
    /// either case.
    pub fn feed_into(&mut self, chunk: &[f64], out: &mut [f64]) -> Result<(), ServingError> {
        if out.len() != chunk.len() {
            return Err(ServingError::OutputMismatch { expected: chunk.len(), got: out.len() });
        }
        check_stimulus(chunk)?;
        if !chunk.is_empty() {
            advance_group(self.sim, self.dt, &mut self.state, &[chunk], &mut [out]);
        }
        Ok(())
    }

    /// A resumable snapshot of the session's current state — hand it to
    /// [`CompiledSim::session_from`] (or keep feeding this session; the
    /// snapshot is independent).
    pub fn checkpoint(&self) -> SimState {
        self.state.clone()
    }

    /// Consumes the session, returning its state.
    pub fn into_state(self) -> SimState {
        self.state
    }

    /// The session's current state.
    pub fn state(&self) -> &SimState {
        &self.state
    }

    /// Samples fed so far.
    pub fn samples(&self) -> u64 {
        self.state.samples()
    }

    /// The sample step the session was opened with.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Rewinds the session to the fresh state (the next chunk's first
    /// sample re-seeds the blocks at its DC operating point). Keeps all
    /// buffers, so a reset session still allocates nothing.
    pub fn reset(&mut self) {
        self.state.reset();
    }
}

impl CompiledSim {
    /// Opens a [`StreamingSession`] at sample step `dt` (validated once
    /// here — the per-chunk path cannot fail on `dt`).
    ///
    /// # Errors
    ///
    /// [`ServingError::BadDt`] for a non-finite or non-positive `dt`.
    pub fn session(&self, dt: f64) -> Result<StreamingSession<'_>, ServingError> {
        check_dt(dt)?;
        Ok(StreamingSession { sim: self, dt, state: self.new_state() })
    }

    /// Opens a [`StreamingSession`] resuming from a checkpointed
    /// `state` (see [`StreamingSession::checkpoint`]).
    ///
    /// # Errors
    ///
    /// [`ServingError::BadDt`] for an invalid `dt`,
    /// [`ServingError::StateMismatch`] when `state` was built for a
    /// different model shape.
    pub fn session_from(
        &self,
        dt: f64,
        state: SimState,
    ) -> Result<StreamingSession<'_>, ServingError> {
        check_dt(dt)?;
        if state.lanes != 1 || !state.matches(self) {
            return Err(ServingError::StateMismatch);
        }
        Ok(StreamingSession { sim: self, dt, state })
    }
}

/// Handle to one live session inside a [`SessionSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub(crate) usize);

impl SessionId {
    /// The raw slot index (stable for the lifetime of the set).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// One slot of a [`SessionSet`].
#[derive(Debug, Clone)]
struct SessionSlot {
    state: SimState,
    /// Input samples pushed since the last advance.
    pending: Vec<f64>,
    open: bool,
}

/// Many live streaming sessions advanced together.
///
/// A scheduler-shaped serving loop: [`open`](SessionSet::open)
/// sessions, [`push`](SessionSet::push) each one's next input chunk,
/// then [`advance`](SessionSet::advance) (serial) or
/// [`advance_in`](SessionSet::advance_in) (over a borrowed
/// [`SweepPool`]) to evaluate every pending chunk in one step. Sessions
/// whose pending chunks have **equal length** are grouped into lockstep
/// lanes of up to [`BATCH_LANES`] and advanced through the batch
/// kernel, so a heavily loaded set gets the same vectorization and
/// parallelism as [`CompiledSim::simulate_batch`] — while each
/// session's output stays bit-identical to running it alone.
///
/// An advance is transactional: on any error (including a worker panic,
/// surfaced as [`ServingError::WorkerPanicked`]) no session state is
/// updated, every pending chunk is retained, and both the set and the
/// pool remain usable.
///
/// # Examples
///
/// ```
/// use rvf_core::{IntegratedStateFn, SimBuilder};
///
/// let mut b = SimBuilder::new();
/// let s = b.drive_poly(&[0.0, 1.0]);
/// b.set_static_drive(s);
/// b.block_real(-1.0e9, s);
/// let sim = b.build();
///
/// let mut set = sim.sessions(1.0e-10).unwrap();
/// let a = set.open();
/// let c = set.open();
/// set.push(a, &[0.1, 0.2]).unwrap();
/// set.push(c, &[0.9, 0.8]).unwrap();
/// let outputs = set.advance().unwrap();
/// assert_eq!(outputs.len(), 2);
/// assert_eq!(outputs[0].0, a);
/// assert_eq!(outputs[0].1, sim.simulate(1.0e-10, &[0.1, 0.2]));
/// let state = set.close(a).unwrap(); // resumable checkpoint
/// assert_eq!(state.samples(), 2);
/// ```
#[derive(Debug)]
pub struct SessionSet<'a> {
    sim: &'a CompiledSim,
    dt: f64,
    slots: Vec<SessionSlot>,
    /// Group advance scratch for the serial path (lane-group states are
    /// rebuilt per group; capacity persists across advances).
    scratch: SimState,
}

impl<'a> SessionSet<'a> {
    /// Opens a new session and returns its id.
    pub fn open(&mut self) -> SessionId {
        self.slots.push(SessionSlot {
            state: self.sim.new_state(),
            pending: Vec::new(),
            open: true,
        });
        SessionId(self.slots.len() - 1)
    }

    /// Opens a session resuming from a checkpointed `state`.
    ///
    /// # Errors
    ///
    /// [`ServingError::StateMismatch`] when `state` was built for a
    /// different model shape.
    pub fn open_with_state(&mut self, state: SimState) -> Result<SessionId, ServingError> {
        if state.lanes != 1 || !state.matches(self.sim) {
            return Err(ServingError::StateMismatch);
        }
        self.slots.push(SessionSlot { state, pending: Vec::new(), open: true });
        Ok(SessionId(self.slots.len() - 1))
    }

    /// Appends `chunk` to the session's pending input (evaluated at the
    /// next advance).
    ///
    /// # Errors
    ///
    /// [`ServingError::UnknownSession`] for a closed or foreign id,
    /// [`ServingError::BadStimulus`] for a chunk with a non-finite
    /// sample. A rejected push appends nothing — the session's pending
    /// buffer is exactly what it was before the call.
    pub fn push(&mut self, id: SessionId, chunk: &[f64]) -> Result<(), ServingError> {
        check_stimulus(chunk)?;
        let slot = self.slot_mut(id)?;
        slot.pending.extend_from_slice(chunk);
        Ok(())
    }

    /// Closes a session, returning its final state (a checkpoint — it
    /// can seed [`open_with_state`](SessionSet::open_with_state) or
    /// [`CompiledSim::session_from`] later). Pending input that was
    /// never advanced is dropped.
    ///
    /// # Errors
    ///
    /// [`ServingError::UnknownSession`] for a closed or foreign id.
    pub fn close(&mut self, id: SessionId) -> Result<SimState, ServingError> {
        let sim = self.sim;
        let slot = self.slot_mut(id)?;
        slot.open = false;
        slot.pending.clear();
        Ok(core::mem::replace(&mut slot.state, sim.new_state()))
    }

    /// Number of open sessions.
    pub fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.open).count()
    }

    /// Samples absorbed so far by session `id`.
    ///
    /// # Errors
    ///
    /// [`ServingError::UnknownSession`] for a closed or foreign id.
    pub fn samples(&self, id: SessionId) -> Result<u64, ServingError> {
        match self.slots.get(id.0) {
            Some(s) if s.open => Ok(s.state.samples()),
            _ => Err(ServingError::UnknownSession { id: id.0 }),
        }
    }

    /// Advances every session with pending input, serially on the
    /// calling thread. Returns `(id, output)` pairs in id order, one
    /// output sample per pending input sample; pending buffers are
    /// drained.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice (the `Result` keeps the
    /// signature aligned with [`advance_in`](SessionSet::advance_in)).
    pub fn advance(&mut self) -> Result<Vec<(SessionId, Vec<f64>)>, ServingError> {
        let groups = self.lane_groups();
        let mut applied = Vec::with_capacity(groups.len());
        for members in &groups {
            applied.push(group_task(self.sim, self.dt, &self.slots, members, &mut self.scratch));
        }
        Ok(self.apply(applied))
    }

    /// Advances every session with pending input over the borrowed
    /// pool, one lane group per pool task. The caller's thread
    /// participates as worker 0 (the [`SweepPool`] convention).
    ///
    /// # Errors
    ///
    /// [`ServingError::WorkerPanicked`] if a pool worker's task
    /// panicked. The advance is transactional: no session state is
    /// updated, all pending chunks are retained, and the pool remains
    /// usable for the next call.
    pub fn advance_in(
        &mut self,
        pool: &SweepPool,
    ) -> Result<Vec<(SessionId, Vec<f64>)>, ServingError> {
        let groups = self.lane_groups();
        if groups.is_empty() {
            return Ok(Vec::new());
        }
        let workers = pool.workers();
        let mut workspaces: Vec<SimState> =
            (0..workers).map(|_| SimState::for_lanes(self.sim, 0)).collect();
        let (sim, dt, slots) = (self.sim, self.dt, &self.slots);
        let applied = pool
            .run_with(groups.len(), &SweepConfig::threads(workers), &mut workspaces, |ws, g| {
                trip_poison();
                Ok::<_, core::convert::Infallible>(group_task(sim, dt, slots, &groups[g], ws))
            })
            .map_err(|e| match e {
                SweepError::WorkerPanicked { worker } => ServingError::WorkerPanicked { worker },
                SweepError::Task { .. } => unreachable!("group tasks are infallible"),
            })?;
        Ok(self.apply(applied))
    }

    /// Groups the open sessions that have pending input into lockstep
    /// lanes: sorted by (pending length, slot), maximal runs of equal
    /// length chopped to [`BATCH_LANES`]. Equal-length grouping is what
    /// lets lanes advance through one kernel call without padding — and
    /// padding would break bit-identity bookkeeping, not just waste
    /// work.
    fn lane_groups(&self) -> Vec<Vec<usize>> {
        let mut ready: Vec<(usize, usize)> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.open && !s.pending.is_empty())
            .map(|(i, s)| (s.pending.len(), i))
            .collect();
        ready.sort_unstable();
        let mut groups = Vec::new();
        let mut i = 0;
        while i < ready.len() {
            let len = ready[i].0;
            let mut j = i;
            while j < ready.len() && ready[j].0 == len && j - i < BATCH_LANES {
                j += 1;
            }
            groups.push(ready[i..j].iter().map(|&(_, slot)| slot).collect());
            i = j;
        }
        groups
    }

    /// Commits the per-group results: stores the advanced states,
    /// drains the pending buffers, returns `(id, output)` in id order.
    fn apply(
        &mut self,
        applied: Vec<Vec<(usize, Vec<f64>, SimState)>>,
    ) -> Vec<(SessionId, Vec<f64>)> {
        let mut outputs = Vec::new();
        for (slot_idx, out, state) in applied.into_iter().flatten() {
            self.slots[slot_idx].state = state;
            self.slots[slot_idx].pending.clear();
            outputs.push((SessionId(slot_idx), out));
        }
        outputs.sort_unstable_by_key(|(id, _)| id.0);
        outputs
    }

    fn slot_mut(&mut self, id: SessionId) -> Result<&mut SessionSlot, ServingError> {
        match self.slots.get_mut(id.0) {
            Some(s) if s.open => Ok(s),
            _ => Err(ServingError::UnknownSession { id: id.0 }),
        }
    }
}

/// Advances one lane group: loads each member's state into a lane,
/// runs the chunk kernel once across the group, and extracts the
/// advanced per-lane states. Pure with respect to `slots` — commit
/// happens in [`SessionSet::apply`] only after every group succeeded,
/// which is what makes a failed advance transactional.
fn group_task(
    sim: &CompiledSim,
    dt: f64,
    slots: &[SessionSlot],
    members: &[usize],
    ws: &mut SimState,
) -> Vec<(usize, Vec<f64>, SimState)> {
    let lanes = members.len();
    let n = slots[members[0]].pending.len();
    ws.reset_for(sim, lanes);
    for (l, &slot_idx) in members.iter().enumerate() {
        ws.load_lane(l, &slots[slot_idx].state);
    }
    let stims: Vec<&[f64]> = members.iter().map(|&i| slots[i].pending.as_slice()).collect();
    let mut outs: Vec<Vec<f64>> = members.iter().map(|_| vec![0.0; n]).collect();
    {
        let mut out_refs: Vec<&mut [f64]> = outs.iter_mut().map(|o| o.as_mut_slice()).collect();
        advance_group(sim, dt, ws, &stims, &mut out_refs);
    }
    members
        .iter()
        .zip(outs)
        .enumerate()
        .map(|(l, (&slot_idx, out))| {
            let mut state = ws.extract_lane(sim, l);
            state.set_samples(slots[slot_idx].state.samples() + n as u64);
            (slot_idx, out, state)
        })
        .collect()
}

impl CompiledSim {
    /// Opens an empty [`SessionSet`] at sample step `dt` (validated
    /// once here).
    ///
    /// # Errors
    ///
    /// [`ServingError::BadDt`] for a non-finite or non-positive `dt`.
    pub fn sessions(&self, dt: f64) -> Result<SessionSet<'_>, ServingError> {
        check_dt(dt)?;
        Ok(SessionSet { sim: self, dt, slots: Vec::new(), scratch: SimState::for_lanes(self, 0) })
    }
}

/// One session's unit of work for [`CompiledSim::advance_chunks`]: the
/// session's state, its next input chunk, and the buffer its output
/// samples land in. The caller owns all three — this is the seam a
/// scheduler that holds its own session table (rather than borrowing a
/// [`SessionSet`]) uses to drive the batch kernel.
#[derive(Debug)]
pub struct SessionChunk<'a> {
    /// The session's resumable state; advanced in place on success,
    /// untouched on any error.
    pub state: &'a mut SimState,
    /// The input chunk to absorb.
    pub input: &'a [f64],
    /// Receives one output sample per input sample; must have exactly
    /// `input.len()` slots.
    pub output: &'a mut [f64],
}

impl CompiledSim {
    /// Advances many independent sessions through one chunk each, in
    /// lockstep lane groups of up to [`BATCH_LANES`] — over `pool` when
    /// one is given, inline on the calling thread otherwise. Both paths
    /// produce identical bits: each chunk's output equals what
    /// [`simulate_into`](CompiledSim::simulate_into) would produce for
    /// that state alone, whatever the grouping, worker count, or path.
    ///
    /// This is the batching seam for a scheduler that owns its session
    /// table outright (e.g. `rvf-serve`): unlike [`SessionSet`] it
    /// borrows nothing across calls, so the sessions can live in any
    /// slab keyed any way the caller likes.
    ///
    /// The advance is **transactional**: every chunk is validated
    /// before any state is touched, and on any error — including a
    /// worker panic on either path, surfaced as
    /// [`ServingError::WorkerPanicked`] — no state is updated and no
    /// output buffer holds committed samples. Empty chunks are allowed
    /// and absorb nothing.
    ///
    /// # Errors
    ///
    /// [`ServingError::BadDt`], [`ServingError::OutputMismatch`] (a
    /// chunk whose output buffer length differs from its input),
    /// [`ServingError::StateMismatch`] (a state built for a different
    /// model shape, or a multi-lane internal state),
    /// [`ServingError::BadStimulus`] (a non-finite input sample), and
    /// [`ServingError::WorkerPanicked`].
    pub fn advance_chunks(
        &self,
        dt: f64,
        chunks: &mut [SessionChunk<'_>],
        pool: Option<&SweepPool>,
    ) -> Result<(), ServingError> {
        check_dt(dt)?;
        for c in chunks.iter() {
            if c.output.len() != c.input.len() {
                return Err(ServingError::OutputMismatch {
                    expected: c.input.len(),
                    got: c.output.len(),
                });
            }
            if c.state.lanes != 1 || !c.state.matches(self) {
                return Err(ServingError::StateMismatch);
            }
            check_stimulus(c.input)?;
        }
        // Same grouping discipline as [`SessionSet::lane_groups`]:
        // equal-length runs (sorted by length, then index) chopped to
        // BATCH_LANES, so lanes advance without padding.
        let mut ready: Vec<(usize, usize)> = chunks
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.input.is_empty())
            .map(|(i, c)| (c.input.len(), i))
            .collect();
        ready.sort_unstable();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut i = 0;
        while i < ready.len() {
            let len = ready[i].0;
            let mut j = i;
            while j < ready.len() && ready[j].0 == len && j - i < BATCH_LANES {
                j += 1;
            }
            groups.push(ready[i..j].iter().map(|&(_, k)| k).collect());
            i = j;
        }
        if groups.is_empty() {
            return Ok(());
        }
        let shared: &[SessionChunk<'_>] = chunks;
        let task = |ws: &mut SimState, g: usize| {
            trip_poison();
            let members: &[usize] = &groups[g];
            let lanes = members.len();
            let n = shared[members[0]].input.len();
            ws.reset_for(self, lanes);
            for (l, &k) in members.iter().enumerate() {
                ws.load_lane(l, shared[k].state);
            }
            let stims: Vec<&[f64]> = members.iter().map(|&k| shared[k].input).collect();
            let mut outs: Vec<Vec<f64>> = members.iter().map(|_| vec![0.0; n]).collect();
            {
                let mut out_refs: Vec<&mut [f64]> =
                    outs.iter_mut().map(|o| o.as_mut_slice()).collect();
                advance_group(self, dt, ws, &stims, &mut out_refs);
            }
            let advanced: Vec<(usize, Vec<f64>, SimState)> = members
                .iter()
                .zip(outs)
                .enumerate()
                .map(|(l, (&k, out))| {
                    let mut state = ws.extract_lane(self, l);
                    state.set_samples(shared[k].state.samples() + n as u64);
                    (k, out, state)
                })
                .collect();
            Ok::<_, core::convert::Infallible>(advanced)
        };
        let applied = match pool {
            Some(pool) => {
                let workers = pool.workers();
                let mut workspaces: Vec<SimState> =
                    (0..workers).map(|_| SimState::for_lanes(self, 0)).collect();
                pool.run_with(groups.len(), &SweepConfig::threads(workers), &mut workspaces, task)
            }
            None => {
                // Serial path with the same containment semantics: a
                // panicked group surfaces as WorkerPanicked, not an
                // unwinding panic, and nothing is committed.
                let mut workspaces = [SimState::for_lanes(self, 0)];
                rvf_numerics::run_sweep_with(
                    groups.len(),
                    &SweepConfig::threads(1),
                    &mut workspaces,
                    task,
                )
            }
        }
        .map_err(|e| match e {
            SweepError::WorkerPanicked { worker } => ServingError::WorkerPanicked { worker },
            SweepError::Task { .. } => unreachable!("chunk group tasks are infallible"),
        })?;
        // Commit only after every group succeeded.
        for (k, out, state) in applied.into_iter().flatten() {
            chunks[k].output.copy_from_slice(&out);
            *chunks[k].state = state;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::linear_real_sim;
    use super::*;

    fn stim(seed: u64, n: usize) -> Vec<f64> {
        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // Held stretches exercise the memo path.
                if x % 5 == 0 {
                    0.5
                } else {
                    (x % 1000) as f64 / 1000.0
                }
            })
            .collect()
    }

    #[test]
    fn session_open_errors() {
        let sim = linear_real_sim(-1.0e9, 1.0);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(sim.session(bad), Err(ServingError::BadDt { .. })), "{bad}");
            assert!(matches!(sim.sessions(bad), Err(ServingError::BadDt { .. })), "{bad}");
        }
        let mut b = crate::SimBuilder::new();
        let s = b.drive_poly(&[0.0, 1.0, 1.0]);
        b.set_static_drive(s);
        b.block_real(-1.0e9, s);
        b.block_real(-2.0e9, s);
        let other = b.build();
        assert!(matches!(
            sim.session_from(1e-10, other.new_state()),
            Err(ServingError::StateMismatch)
        ));
    }

    #[test]
    fn chunked_session_matches_one_shot() {
        let sim = linear_real_sim(-1.2e9, 1.7);
        let u = stim(7, 120);
        let dt = 3.0e-11;
        let want = sim.simulate(dt, &u);
        let mut session = sim.session(dt).unwrap();
        let mut got = Vec::new();
        for chunk in u.chunks(7) {
            got.extend(session.feed(chunk).unwrap());
        }
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn feed_into_checks_output_shape() {
        let sim = linear_real_sim(-1.0e9, 1.0);
        let mut session = sim.session(1e-10).unwrap();
        let mut out = [0.0; 2];
        assert_eq!(
            session.feed_into(&[1.0, 2.0, 3.0], &mut out),
            Err(ServingError::OutputMismatch { expected: 3, got: 2 })
        );
        assert_eq!(session.samples(), 0, "failed feed leaves the session untouched");
        session.feed_into(&[1.0, 2.0], &mut out).unwrap();
        assert_eq!(session.samples(), 2);
    }

    #[test]
    fn checkpoint_roundtrips_through_session_from() {
        let sim = linear_real_sim(-2.0e9, 0.9);
        let u = stim(3, 64);
        let dt = 1.0e-10;
        let want = sim.simulate(dt, &u);
        let mut first = sim.session(dt).unwrap();
        let head = first.feed(&u[..20]).unwrap();
        let snapshot = first.checkpoint();
        drop(first);
        let mut resumed = sim.session_from(dt, snapshot).unwrap();
        let tail = resumed.feed(&u[20..]).unwrap();
        for (g, w) in head.iter().chain(&tail).zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn session_set_matches_individual_sessions() {
        let sim = linear_real_sim(-1.5e9, 1.1);
        let dt = 2.0e-11;
        // 11 sessions with three distinct chunk lengths → mixed lane
        // groups, several advances.
        let mut set = sim.sessions(dt).unwrap();
        let specs: Vec<(SessionId, Vec<f64>)> =
            (0..11).map(|i| (set.open(), stim(100 + i as u64, 40 + 13 * (i % 3)))).collect();
        let mut streamed: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
        for round in 0..4 {
            for (i, (id, u)) in specs.iter().enumerate() {
                let chunk_len = 5 + (i + round) % 7;
                let fed = streamed[i].len();
                let end = (fed + chunk_len).min(u.len());
                if fed < end {
                    set.push(*id, &u[fed..end]).unwrap();
                }
            }
            for (id, out) in set.advance().unwrap() {
                let i = specs.iter().position(|(s, _)| *s == id).unwrap();
                streamed[i].extend(out);
            }
        }
        // Drain the rest in one final advance.
        for (i, (id, u)) in specs.iter().enumerate() {
            let fed = streamed[i].len();
            if fed < u.len() {
                set.push(*id, &u[fed..]).unwrap();
            }
        }
        for (id, out) in set.advance().unwrap() {
            let i = specs.iter().position(|(s, _)| *s == id).unwrap();
            streamed[i].extend(out);
        }
        for (i, (id, u)) in specs.iter().enumerate() {
            let want = sim.simulate(dt, u);
            assert_eq!(streamed[i].len(), want.len(), "session {i}");
            for (g, w) in streamed[i].iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits(), "session {i}");
            }
            assert_eq!(set.samples(*id).unwrap(), u.len() as u64);
        }
    }

    #[test]
    fn session_set_lifecycle_errors() {
        let sim = linear_real_sim(-1.0e9, 1.0);
        let mut set = sim.sessions(1e-10).unwrap();
        let id = set.open();
        assert_eq!(set.live(), 1);
        set.push(id, &[0.5; 4]).unwrap();
        set.advance().unwrap();
        let state = set.close(id).unwrap();
        assert_eq!(state.samples(), 4);
        assert_eq!(set.live(), 0);
        // Closed and foreign ids are typed errors.
        assert_eq!(set.push(id, &[1.0]), Err(ServingError::UnknownSession { id: 0 }));
        assert_eq!(set.close(id).unwrap_err(), ServingError::UnknownSession { id: 0 });
        assert_eq!(set.samples(SessionId(9)).unwrap_err(), ServingError::UnknownSession { id: 9 });
        // The checkpoint reopens and continues.
        let id2 = set.open_with_state(state).unwrap();
        assert_eq!(set.samples(id2).unwrap(), 4);
        // Advance with nothing pending is a no-op.
        assert!(set.advance().unwrap().is_empty());
    }

    #[test]
    fn bad_stimulus_rejected_without_committing_state() {
        let sim = linear_real_sim(-1.3e9, 1.2);
        let dt = 2.0e-11;
        let clean = stim(42, 30);
        // NaN/∞ in first, middle, and last chunk positions, across every
        // state-mutating boundary. The failed call must leave the
        // session exactly where it stood: the follow-up clean run stays
        // bit-identical to a session that never saw the bad chunk.
        for bad_value in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            for bad_pos in [0usize, 4, 9] {
                let mut bad = vec![0.5; 10];
                bad[bad_pos] = bad_value;

                let mut session = sim.session(dt).unwrap();
                let head = session.feed(&clean[..10]).unwrap();
                let err = session.feed(&bad).unwrap_err();
                assert!(
                    matches!(err, ServingError::BadStimulus { index, .. } if index == bad_pos),
                    "{bad_value} at {bad_pos}: {err:?}"
                );
                assert_eq!(session.samples(), 10, "rejected feed commits nothing");
                let mut out = vec![0.0; 10];
                assert!(matches!(
                    session.feed_into(&bad, &mut out),
                    Err(ServingError::BadStimulus { .. })
                ));
                assert_eq!(session.samples(), 10);
                let tail = session.feed(&clean[10..]).unwrap();

                let mut reference = sim.session(dt).unwrap();
                let want = reference.feed(&clean).unwrap();
                for (g, w) in head.iter().chain(&tail).zip(&want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "{bad_value} at {bad_pos}");
                }

                // simulate_into boundary: state untouched on rejection.
                let mut state = sim.new_state();
                let mut buf = vec![0.0; 10];
                assert!(matches!(
                    sim.simulate_into(dt, &bad, &mut state, &mut buf),
                    Err(ServingError::BadStimulus { .. })
                ));
                assert_eq!(state.samples(), 0);
                assert!(!state.is_started());

                // try_simulate boundary.
                assert!(matches!(
                    sim.try_simulate(dt, &bad),
                    Err(ServingError::BadStimulus { .. })
                ));

                // SessionSet::push boundary: nothing is appended.
                let mut set = sim.sessions(dt).unwrap();
                let id = set.open();
                set.push(id, &clean[..5]).unwrap();
                assert!(matches!(set.push(id, &bad), Err(ServingError::BadStimulus { .. })));
                let outputs = set.advance().unwrap();
                assert_eq!(outputs[0].1.len(), 5, "rejected push left pending untouched");
            }
        }
    }

    #[test]
    fn advance_chunks_matches_simulate_into_on_both_paths() {
        let sim = linear_real_sim(-1.4e9, 0.8);
        let dt = 3.0e-11;
        // 11 sessions, three distinct chunk lengths, one empty chunk.
        let stims: Vec<Vec<f64>> = (0..11)
            .map(|i| stim(900 + i as u64, if i == 7 { 0 } else { 20 + 9 * (i % 3) }))
            .collect();
        let want: Vec<Vec<f64>> = stims.iter().map(|u| sim.simulate(dt, u)).collect();
        let pool = SweepPool::new(3);
        for pooled in [false, true] {
            let mut states: Vec<SimState> = (0..11).map(|_| sim.new_state()).collect();
            let mut outs: Vec<Vec<f64>> = stims.iter().map(|u| vec![0.0; u.len()]).collect();
            {
                let mut chunks: Vec<SessionChunk<'_>> = states
                    .iter_mut()
                    .zip(stims.iter())
                    .zip(outs.iter_mut())
                    .map(|((state, u), out)| SessionChunk {
                        state,
                        input: u.as_slice(),
                        output: out.as_mut_slice(),
                    })
                    .collect();
                sim.advance_chunks(dt, &mut chunks, pooled.then_some(&pool)).unwrap();
            }
            for (i, (got, w)) in outs.iter().zip(&want).enumerate() {
                assert_eq!(got.len(), w.len(), "session {i} pooled={pooled}");
                for (g, w) in got.iter().zip(w) {
                    assert_eq!(g.to_bits(), w.to_bits(), "session {i} pooled={pooled}");
                }
                assert_eq!(states[i].samples(), stims[i].len() as u64);
            }
        }
    }

    #[test]
    fn advance_chunks_validates_before_any_commit() {
        let sim = linear_real_sim(-1.0e9, 1.0);
        let dt = 1.0e-10;
        let good = [0.1, 0.2, 0.3];
        let bad = [0.1, f64::NAN, 0.3];
        let mut s0 = sim.new_state();
        let mut s1 = sim.new_state();
        let mut o0 = [0.0; 3];
        let mut o1 = [0.0; 3];
        let err = sim
            .advance_chunks(
                dt,
                &mut [
                    SessionChunk { state: &mut s0, input: &good, output: &mut o0 },
                    SessionChunk { state: &mut s1, input: &bad, output: &mut o1 },
                ],
                None,
            )
            .unwrap_err();
        assert!(matches!(err, ServingError::BadStimulus { index: 1, .. }), "{err:?}");
        assert_eq!(s0.samples(), 0, "sibling chunk not committed either");
        assert_eq!(s1.samples(), 0);
        assert_eq!(o0, [0.0; 3]);

        let mut short = [0.0; 2];
        assert_eq!(
            sim.advance_chunks(
                dt,
                &mut [SessionChunk { state: &mut s0, input: &good, output: &mut short }],
                None,
            ),
            Err(ServingError::OutputMismatch { expected: 3, got: 2 })
        );
        assert!(matches!(sim.advance_chunks(dt, &mut [], Some(&SweepPool::new(2))), Ok(())));
        assert!(matches!(
            sim.advance_chunks(f64::NAN, &mut [], None),
            Err(ServingError::BadDt { .. })
        ));
    }

    #[test]
    fn session_set_pooled_matches_serial() {
        let sim = linear_real_sim(-1.1e9, 1.4);
        let dt = 4.0e-11;
        for threads in [1usize, 2, 4, 0] {
            let pool = SweepPool::new(threads);
            let mut set = sim.sessions(dt).unwrap();
            let ids: Vec<SessionId> = (0..10).map(|_| set.open()).collect();
            let stims: Vec<Vec<f64>> =
                (0..10).map(|i| stim(500 + i as u64, 30 + 10 * (i % 2))).collect();
            for (id, u) in ids.iter().zip(&stims) {
                set.push(*id, u).unwrap();
            }
            let outputs = set.advance_in(&pool).unwrap();
            assert_eq!(outputs.len(), 10);
            for ((id, out), u) in outputs.iter().zip(&stims) {
                let want = sim.simulate(dt, u);
                assert_eq!(out.len(), want.len());
                for (g, w) in out.iter().zip(&want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "threads {threads} id {id:?}");
                }
            }
        }
    }
}
