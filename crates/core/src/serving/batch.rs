//! Pooled batch evaluation: many stimuli fanned over lane groups.
//!
//! Stimuli are chopped into maximal runs of consecutive equal-length
//! inputs (at most [`BATCH_LANES`] wide) and each group advances
//! through the multi-lane chunk kernel in lockstep; groups fan over the
//! [`SweepPool`] runtime. Output is **bit-identical** to calling
//! [`CompiledSim::simulate`] per stimulus, for every thread count —
//! per-lane arithmetic never crosses lanes.
//!
//! The checked entry points ([`CompiledSim::try_simulate_batch`],
//! [`CompiledSim::try_simulate_batch_in`]) surface a mid-batch worker
//! panic as [`ServingError::WorkerPanicked`] and leave the pool usable;
//! the legacy signatures wrap the same core and keep their documented
//! panic.

use rvf_numerics::{resolve_threads, SweepConfig, SweepError, SweepPool};

use super::compile::CompiledSim;
use super::state::{advance_group, SimState};
use super::{check_dt, check_stimulus, dt_ok, trip_poison, ServingError, BATCH_LANES};

/// Splits stimuli into maximal runs of consecutive equal-length inputs,
/// chopped to [`BATCH_LANES`]. Deterministic and order-preserving, so
/// the flattened group outputs are already in stimulus order.
pub(crate) fn lane_groups(stimuli: &[&[f64]]) -> Vec<core::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut start = 0;
    while start < stimuli.len() {
        let len = stimuli[start].len();
        let mut end = start + 1;
        while end < stimuli.len() && end - start < BATCH_LANES && stimuli[end].len() == len {
            end += 1;
        }
        out.push(start..end);
        start = end;
    }
    out
}

/// Advances one lane group of equal-length stimuli from the fresh state
/// through the chunk kernel. `ws` is a reusable per-worker workspace —
/// re-shaped per group, so once it has seen the widest group it stops
/// allocating.
fn run_batch_group(
    sim: &CompiledSim,
    dt: f64,
    stims: &[&[f64]],
    ws: &mut SimState,
) -> Vec<Vec<f64>> {
    let mut outs: Vec<Vec<f64>> = stims.iter().map(|s| vec![0.0; s.len()]).collect();
    if stims[0].is_empty() {
        return outs;
    }
    ws.reset_for(sim, stims.len());
    let mut out_refs: Vec<&mut [f64]> = outs.iter_mut().map(|o| o.as_mut_slice()).collect();
    advance_group(sim, dt, ws, stims, &mut out_refs);
    outs
}

impl CompiledSim {
    /// The checked batch core behind both the owned-pool signatures:
    /// serial when one worker is enough, otherwise an owned pool.
    fn batch_core(&self, dt: f64, stimuli: &[&[f64]]) -> Result<Vec<Vec<f64>>, ServingError> {
        let groups = lane_groups(stimuli);
        let workers = resolve_threads(self.threads).min(groups.len().max(1));
        if workers <= 1 {
            let mut scratch = SimState::for_lanes(self, 0);
            let mut out = Vec::with_capacity(stimuli.len());
            for g in &groups {
                out.extend(run_batch_group(self, dt, &stimuli[g.clone()], &mut scratch));
            }
            return Ok(out);
        }
        let pool = SweepPool::new(workers);
        self.batch_core_in(&pool, dt, stimuli)
    }

    /// The checked batch core on a borrowed pool: lane groups run as one
    /// round on the already-parked workers.
    fn batch_core_in(
        &self,
        pool: &SweepPool,
        dt: f64,
        stimuli: &[&[f64]],
    ) -> Result<Vec<Vec<f64>>, ServingError> {
        let groups = lane_groups(stimuli);
        let mut scratch: Vec<SimState> =
            (0..pool.workers()).map(|_| SimState::for_lanes(self, 0)).collect();
        let per_group = pool
            .run_with(groups.len(), &SweepConfig::threads(pool.workers()), &mut scratch, |ws, g| {
                trip_poison();
                Ok::<_, core::convert::Infallible>(run_batch_group(
                    self,
                    dt,
                    &stimuli[groups[g].clone()],
                    ws,
                ))
            })
            .map_err(|e| match e {
                SweepError::WorkerPanicked { worker } => ServingError::WorkerPanicked { worker },
                SweepError::Task { .. } => unreachable!("batch group tasks are infallible"),
            })?;
        let mut out = Vec::with_capacity(stimuli.len());
        for g in per_group {
            out.extend(g);
        }
        Ok(out)
    }

    /// Checked [`simulate_batch`](CompiledSim::simulate_batch): validates
    /// `dt` once per call and surfaces every failure — including a
    /// worker panic mid-batch — as a typed error instead of panicking.
    /// On error no partial output escapes and any pool used internally
    /// is torn down cleanly.
    ///
    /// # Errors
    ///
    /// [`ServingError::BadDt`] for a non-finite or non-positive `dt`,
    /// [`ServingError::BadStimulus`] for a stimulus with a NaN or
    /// infinite sample (checked up front — nothing runs),
    /// [`ServingError::WorkerPanicked`] if a worker's task panicked.
    pub fn try_simulate_batch(
        &self,
        dt: f64,
        stimuli: &[&[f64]],
    ) -> Result<Vec<Vec<f64>>, ServingError> {
        check_dt(dt)?;
        for s in stimuli {
            check_stimulus(s)?;
        }
        self.batch_core(dt, stimuli)
    }

    /// Checked [`simulate_batch_in`](CompiledSim::simulate_batch_in):
    /// like [`try_simulate_batch`](CompiledSim::try_simulate_batch) but
    /// on a borrowed [`SweepPool`]. After an
    /// [`Err(ServingError::WorkerPanicked)`](ServingError::WorkerPanicked)
    /// the pool remains usable — the panic is contained to the failed
    /// round (the [`SweepPool`] containment contract).
    ///
    /// # Errors
    ///
    /// [`ServingError::BadDt`] for a non-finite or non-positive `dt`,
    /// [`ServingError::BadStimulus`] for a stimulus with a non-finite
    /// sample, [`ServingError::WorkerPanicked`] if a pool worker's task
    /// panicked.
    pub fn try_simulate_batch_in(
        &self,
        pool: &SweepPool,
        dt: f64,
        stimuli: &[&[f64]],
    ) -> Result<Vec<Vec<f64>>, ServingError> {
        check_dt(dt)?;
        for s in stimuli {
            check_stimulus(s)?;
        }
        self.batch_core_in(pool, dt, stimuli)
    }

    /// Pushes many stimuli through the model, fanning lane groups of up
    /// to [`BATCH_LANES`] consecutive equal-length stimuli over the
    /// configured worker count ([`with_threads`](CompiledSim::with_threads);
    /// `1` = serial default). Outputs come back in stimulus order and
    /// are **bit-identical** to calling
    /// [`simulate`](CompiledSim::simulate) per stimulus, for every
    /// thread count.
    ///
    /// This is the legacy infallible signature — a documented-panic
    /// wrapper over [`try_simulate_batch`](CompiledSim::try_simulate_batch).
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked mid-batch (the kernel itself has no
    /// panicking paths for finite or non-finite input data). A
    /// non-finite or non-positive `dt` is a caller bug: it is
    /// `debug_assert!`ed and produces non-finite output in release
    /// builds.
    pub fn simulate_batch(&self, dt: f64, stimuli: &[&[f64]]) -> Vec<Vec<f64>> {
        debug_assert!(
            dt_ok(dt),
            "CompiledSim::simulate_batch: dt must be finite and positive ({dt})"
        );
        self.batch_core(dt, stimuli).unwrap_or_else(|e| panic!("serving batch worker failed: {e}"))
    }

    /// [`simulate_batch`](CompiledSim::simulate_batch) on a borrowed
    /// [`SweepPool`] (the PR-4 `_in` convention): lane groups run as one
    /// round on the pool's already-parked workers, so a serving process
    /// pays the spawn cost once, not per batch. The effective worker
    /// count is the pool capacity clamped to the group count; output is
    /// bit-identical to the serial path regardless.
    ///
    /// This is the legacy infallible signature — a documented-panic
    /// wrapper over
    /// [`try_simulate_batch_in`](CompiledSim::try_simulate_batch_in).
    ///
    /// # Panics
    ///
    /// Panics if a pool worker panicked mid-batch.
    pub fn simulate_batch_in(
        &self,
        pool: &SweepPool,
        dt: f64,
        stimuli: &[&[f64]],
    ) -> Vec<Vec<f64>> {
        debug_assert!(
            dt_ok(dt),
            "CompiledSim::simulate_batch_in: dt must be finite and positive ({dt})"
        );
        self.batch_core_in(pool, dt, stimuli)
            .unwrap_or_else(|e| panic!("serving batch worker failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::linear_real_sim;
    use super::*;

    #[test]
    fn batch_equals_serial_on_mixed_lengths() {
        let sim = linear_real_sim(-1.5e9, 2.0);
        let stims: Vec<Vec<f64>> = (0..11)
            .map(|k| (0..(5 + 13 * k % 29)).map(|i| ((i * (k + 1)) as f64 * 0.37).sin()).collect())
            .collect();
        let refs: Vec<&[f64]> = stims.iter().map(Vec::as_slice).collect();
        let serial: Vec<Vec<f64>> = refs.iter().map(|s| sim.simulate(2.0e-11, s)).collect();
        for threads in [1, 2, 4, 0] {
            let got = sim.clone().with_threads(threads).simulate_batch(2.0e-11, &refs);
            for (k, (a, b)) in got.iter().zip(&serial).enumerate() {
                assert_eq!(a.len(), b.len(), "stimulus {k}, threads {threads}");
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "stimulus {k}, threads {threads}");
                }
            }
        }
    }

    #[test]
    fn batch_on_borrowed_pool_matches_owned() {
        let sim = linear_real_sim(-1.0e9, 1.0);
        let stims: Vec<Vec<f64>> = (0..20).map(|k| vec![0.1 * k as f64; 40]).collect();
        let refs: Vec<&[f64]> = stims.iter().map(Vec::as_slice).collect();
        let owned = sim.simulate_batch(1e-10, &refs);
        let pool = SweepPool::new(3);
        let borrowed = sim.simulate_batch_in(&pool, 1e-10, &refs);
        assert_eq!(owned, borrowed);
        assert!(pool.sweeps() >= 1);
        // The checked signatures produce the same output.
        assert_eq!(sim.try_simulate_batch(1e-10, &refs).unwrap(), owned);
        assert_eq!(sim.try_simulate_batch_in(&pool, 1e-10, &refs).unwrap(), owned);
    }

    #[test]
    fn batch_handles_zero_length_stimuli() {
        let sim = linear_real_sim(-1.0e9, 1.0);
        assert!(sim.simulate_batch(1e-10, &[]).is_empty());
        let out = sim.simulate_batch(1e-10, &[&[][..], &[1.0, 2.0][..]]);
        assert!(out[0].is_empty());
        assert_eq!(out[1].len(), 2);
    }

    #[test]
    fn lane_groups_chop_by_length_and_width() {
        let a = vec![0.0; 3];
        let b = vec![0.0; 4];
        let stims: Vec<&[f64]> =
            (0..10).map(|i| if i < 9 { a.as_slice() } else { b.as_slice() }).collect();
        let groups = lane_groups(&stims);
        assert_eq!(groups, vec![0..8, 8..9, 9..10]);
    }

    #[test]
    fn try_batch_validates_dt() {
        let sim = linear_real_sim(-1.0e9, 1.0);
        let pool = SweepPool::new(2);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(sim.try_simulate_batch(bad, &[&[1.0]]), Err(ServingError::BadDt { .. })),
                "{bad}"
            );
            assert!(
                matches!(
                    sim.try_simulate_batch_in(&pool, bad, &[&[1.0]]),
                    Err(ServingError::BadDt { .. })
                ),
                "{bad}"
            );
        }
    }

    #[test]
    fn try_batch_rejects_non_finite_stimuli_up_front() {
        let sim = linear_real_sim(-1.0e9, 1.0);
        let pool = SweepPool::new(2);
        let bad = [0.5, f64::NAN];
        assert!(matches!(
            sim.try_simulate_batch(1e-10, &[&[1.0, 2.0], &bad]),
            Err(ServingError::BadStimulus { index: 1, .. })
        ));
        assert!(matches!(
            sim.try_simulate_batch_in(&pool, 1e-10, &[&bad]),
            Err(ServingError::BadStimulus { index: 1, .. })
        ));
    }
}
