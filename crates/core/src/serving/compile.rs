//! Model lowering: [`SimBuilder`] → [`CompiledSim`] flat serving
//! tables.
//!
//! [`CompiledSim`] lowers a model **once** into structure-of-arrays
//! form:
//!
//! * the static nonlinearities become rows of one coefficient matrix
//!   over a *shared feature basis* evaluated once per sample — the
//!   power basis `[1, u, u², …]` for polynomial stages (the CAFFEINE
//!   primitives) plus, for the RVF log-form primitives, the pair
//!   `(Re ln(u − x̃), Im ln(u − x̃))` per **distinct** pole. Pole
//!   sequences are deduplicated by bit pattern, so the two responses of
//!   a pair block price their transcendentals once instead of twice;
//! * every LTI block becomes one uniform 2-wide state slot with
//!   contiguous first-order-hold coefficients (a real pole is a pair
//!   with zero imaginary parts — the extra multiplies are by ±0.0 and
//!   exact), so the inner loop has **no enum dispatch per block per
//!   sample**.
//!
//! Compilation is cheap (no transcendentals — the first-order-hold
//! coefficients are computed per `dt` at simulation time and cached in
//! each [`SimState`](super::SimState)), but callers serving many
//! requests should still compile once and reuse the instance.

use std::collections::HashMap;

use rvf_numerics::{Complex, FohPair, FohScalar};

use super::ServingError;
use crate::integrated::IntegratedStateFn;

/// A static-stage drive registered with [`SimBuilder`].
#[derive(Debug, Clone)]
enum DriveSpec {
    /// RVF log-form primitive: quadratic head + logarithmic terms.
    Rational { c: [f64; 3], terms: Vec<(Complex, Complex)> },
    /// Polynomial primitive by ascending coefficients (CAFFEINE path).
    Poly { coeffs: Vec<f64> },
}

/// An LTI block registered with [`SimBuilder`].
#[derive(Debug, Clone, Copy)]
enum BlockSpec {
    Real { a: f64, drive: usize },
    Pair { sigma: f64, omega: f64, d1: usize, d2: usize },
}

/// Builds a [`CompiledSim`] from drives (static-stage primitives) and
/// LTI blocks.
///
/// This is the lowering entry point shared by the RVF model
/// ([`HammersteinModel::compile`](crate::HammersteinModel::compile))
/// and the CAFFEINE baseline (`rvf-caffeine`): register every stage
/// primitive as a *drive row*, point the blocks at their rows, mark the
/// static path, and [`try_build`](SimBuilder::try_build) (or
/// [`build`](SimBuilder::build) for infallible internal callers).
#[derive(Debug, Clone, Default)]
pub struct SimBuilder {
    drives: Vec<DriveSpec>,
    blocks: Vec<BlockSpec>,
    static_drive: Option<usize>,
}

impl SimBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the analytic primitive of an RVF state fit as a drive
    /// row and returns its row id. The row evaluates exactly like
    /// [`IntegratedStateFn::eval`].
    pub fn drive_rational(&mut self, primitive: &IntegratedStateFn) -> usize {
        // 0.5·q is exact (power-of-two scaling), so precomputing it
        // preserves the reference expression `… + 0.5*q*u*u` bit for bit.
        self.drives.push(DriveSpec::Rational {
            c: [primitive.constant, primitive.linear, 0.5 * primitive.quadratic],
            terms: primitive.terms.iter().map(|t| (t.pole, t.rho)).collect(),
        });
        self.drives.len() - 1
    }

    /// Registers a polynomial drive row `Σ cⱼ·uʲ` (ascending
    /// coefficients) and returns its row id. Rows of this family are
    /// packed into one matrix over the shared power basis
    /// `[1, u, u², …]`, so all of them together cost one matvec per
    /// sample.
    pub fn drive_poly(&mut self, coeffs: &[f64]) -> usize {
        self.drives.push(DriveSpec::Poly { coeffs: coeffs.to_vec() });
        self.drives.len() - 1
    }

    /// Marks `row` as the static path: its value is added directly to
    /// every output sample.
    pub fn set_static_drive(&mut self, row: usize) {
        self.static_drive = Some(row);
    }

    /// Adds a first-order block `ẏ = a·y + f(u)` fed by drive `drive`.
    pub fn block_real(&mut self, a: f64, drive: usize) {
        self.blocks.push(BlockSpec::Real { a, drive });
    }

    /// Adds a second-order block for the pole pair `σ ± jω` fed by the
    /// input-shifted component drives `(d1, d2)`.
    pub fn block_pair(&mut self, sigma: f64, omega: f64, d1: usize, d2: usize) {
        self.blocks.push(BlockSpec::Pair { sigma, omega, d1, d2 });
    }

    /// Lowers the registered drives and blocks into the packed runtime
    /// tables, rejecting malformed wiring with a typed error instead of
    /// a panic.
    ///
    /// # Errors
    ///
    /// [`ServingError::MissingStaticDrive`] if no static drive was set,
    /// [`ServingError::BadDrive`] if the static path or a block
    /// references an unregistered drive row.
    pub fn try_build(mut self) -> Result<CompiledSim, ServingError> {
        let static_row = self.static_drive.ok_or(ServingError::MissingStaticDrive)?;
        let n_user = self.drives.len();
        let check = |d: usize| {
            if d < n_user {
                Ok(())
            } else {
                Err(ServingError::BadDrive { drive: d, n_drives: n_user })
            }
        };
        check(static_row)?;
        for b in &self.blocks {
            match *b {
                BlockSpec::Real { drive, .. } => check(drive)?,
                BlockSpec::Pair { d1, d2, .. } => {
                    check(d1)?;
                    check(d2)?;
                }
            }
        }
        // Real blocks need a second (identically zero) drive component
        // so every block is a uniform 2-wide slot; one synthetic all-zero
        // row serves them all.
        let needs_zero = self.blocks.iter().any(|b| matches!(b, BlockSpec::Real { .. }));
        let zero_row = if needs_zero {
            self.drives.push(DriveSpec::Rational { c: [0.0; 3], terms: Vec::new() });
            self.drives.len() - 1
        } else {
            usize::MAX
        };

        let n_drives = self.drives.len();
        let mut head = vec![[0.0f64; 3]; n_drives];
        let mut row_off = Vec::with_capacity(n_drives + 1);
        let mut term_w: Vec<[f64; 2]> = Vec::new();
        let mut term_pole: Vec<usize> = Vec::new();
        let mut poles: Vec<Complex> = Vec::new();
        // Pole-sequence dedup: rows whose pole sequences agree bit for
        // bit (the two responses of a pair block — they come from one
        // stage fit) share one run of feature slots, so the ln per pole
        // is paid once per sample however many rows consume it.
        let mut runs: HashMap<Vec<(u64, u64)>, usize> = HashMap::new();
        let mut prow: Vec<usize> = Vec::new();
        let mut pcoeffs: Vec<Vec<f64>> = Vec::new();
        row_off.push(0);
        for (d, spec) in self.drives.iter().enumerate() {
            match spec {
                DriveSpec::Rational { c, terms } => {
                    head[d] = *c;
                    if !terms.is_empty() {
                        let sig: Vec<(u64, u64)> =
                            terms.iter().map(|(p, _)| (p.re.to_bits(), p.im.to_bits())).collect();
                        let start = *runs.entry(sig).or_insert_with(|| {
                            let s = poles.len();
                            poles.extend(terms.iter().map(|(p, _)| *p));
                            s
                        });
                        for (i, (_, rho)) in terms.iter().enumerate() {
                            term_w.push([rho.re, rho.im]);
                            term_pole.push(start + i);
                        }
                    }
                }
                DriveSpec::Poly { coeffs } => {
                    prow.push(d);
                    pcoeffs.push(coeffs.clone());
                }
            }
            row_off.push(term_w.len());
        }
        let pdeg = pcoeffs.iter().map(|c| c.len().saturating_sub(1)).max().unwrap_or(0);
        let mut pmat = vec![0.0f64; prow.len() * (pdeg + 1)];
        for (r, coeffs) in pcoeffs.iter().enumerate() {
            pmat[r * (pdeg + 1)..r * (pdeg + 1) + coeffs.len()].copy_from_slice(coeffs);
        }

        let n_blocks = self.blocks.len();
        let mut pair = Vec::with_capacity(n_blocks);
        let mut sigma = Vec::with_capacity(n_blocks);
        let mut omega = Vec::with_capacity(n_blocks);
        let mut d1 = Vec::with_capacity(n_blocks);
        let mut d2 = Vec::with_capacity(n_blocks);
        for b in &self.blocks {
            match *b {
                BlockSpec::Real { a, drive } => {
                    pair.push(false);
                    sigma.push(a);
                    omega.push(0.0);
                    d1.push(drive);
                    d2.push(zero_row);
                }
                BlockSpec::Pair { sigma: s, omega: w, d1: a, d2: bb } => {
                    pair.push(true);
                    sigma.push(s);
                    omega.push(w);
                    d1.push(a);
                    d2.push(bb);
                }
            }
        }

        Ok(CompiledSim {
            threads: 1,
            static_row,
            n_drives,
            head,
            row_off,
            term_w,
            term_pole,
            poles,
            prow,
            pmat,
            pdeg,
            pair,
            sigma,
            omega,
            d1,
            d2,
        })
    }

    /// [`try_build`](SimBuilder::try_build) for infallible internal
    /// callers (the model lowerings construct their wiring themselves,
    /// so a failure is a construction bug, not a data-dependent
    /// condition).
    ///
    /// # Panics
    ///
    /// Panics if no static drive was set or a drive row reference is
    /// out of range.
    pub fn build(self) -> CompiledSim {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Per-block first-order-hold coefficients in the uniform 2-wide
/// representation (real blocks carry exact zeros in the imaginary
/// parts), laid out contiguously for the batch kernel.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockCoef {
    pub(crate) er: f64,
    pub(crate) ei: f64,
    pub(crate) g1r: f64,
    pub(crate) g1i: f64,
    pub(crate) g2r: f64,
    pub(crate) g2i: f64,
}

/// A Hammerstein model lowered into flat serving tables.
///
/// Build one with [`HammersteinModel::compile`](crate::HammersteinModel::compile)
/// (or [`SimBuilder`] directly), then evaluate stimuli with
/// [`simulate`](CompiledSim::simulate) /
/// [`simulate_batch`](CompiledSim::simulate_batch), or stream chunks
/// through a [`SimState`](super::SimState) /
/// [`StreamingSession`](super::StreamingSession).
#[derive(Debug, Clone)]
pub struct CompiledSim {
    /// Worker threads for [`simulate_batch`](CompiledSim::simulate_batch)
    /// (`1` = serial, `0` = one per core).
    pub(crate) threads: usize,
    pub(crate) static_row: usize,
    pub(crate) n_drives: usize,
    /// `[c0, c1, 0.5·q]` quadratic heads, one row per drive.
    pub(crate) head: Vec<[f64; 3]>,
    /// CSR offsets into `term_w`/`term_pole`, length `n_drives + 1`.
    pub(crate) row_off: Vec<usize>,
    /// `(Re ρ, Im ρ)` per log term.
    pub(crate) term_w: Vec<[f64; 2]>,
    /// Distinct-pole feature index per log term.
    pub(crate) term_pole: Vec<usize>,
    /// Deduplicated pole table (the shared log-feature basis).
    pub(crate) poles: Vec<Complex>,
    /// Drive rows evaluated by the power-basis matvec.
    pub(crate) prow: Vec<usize>,
    /// Power-basis coefficient matrix, `prow.len() × (pdeg + 1)`.
    pub(crate) pmat: Vec<f64>,
    pub(crate) pdeg: usize,
    /// Block kind (pair vs real) — used only when preparing the FOH
    /// coefficients for a `dt`, never in the per-sample loop.
    pub(crate) pair: Vec<bool>,
    pub(crate) sigma: Vec<f64>,
    pub(crate) omega: Vec<f64>,
    /// Drive row feeding each block's first/second state component.
    pub(crate) d1: Vec<usize>,
    pub(crate) d2: Vec<usize>,
}

impl CompiledSim {
    /// Sets the worker-thread request of
    /// [`simulate_batch`](CompiledSim::simulate_batch) (`1` = serial —
    /// the default, `0` = one worker per core), following the
    /// `VfOptions::threads` convention.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configured batch worker request.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of drive rows (static stages, including the synthetic
    /// zero row real blocks share).
    pub fn n_drives(&self) -> usize {
        self.n_drives
    }

    /// Number of LTI blocks.
    pub fn n_blocks(&self) -> usize {
        self.pair.len()
    }

    /// Number of *distinct* poles in the shared log-feature basis —
    /// after dedup, so a pair block's two responses count their common
    /// poles once.
    pub fn n_pole_features(&self) -> usize {
        self.poles.len()
    }

    /// A 64-bit fingerprint of the lowered serving tables (FNV-1a over
    /// every table's exact bit pattern, excluding the runtime-only
    /// thread request). Two compilations of the same model produce the
    /// same fingerprint; any table difference — even an `f64` differing
    /// only in its last bit — produces a different one with
    /// overwhelming probability.
    ///
    /// This is the identity check of the durability layer: a serialized
    /// scheduler snapshot records the fingerprint of every registry
    /// model, and restore refuses a registry whose models do not match
    /// bit for bit (restored streams could otherwise silently diverge).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_usize(self.static_row);
        h.write_usize(self.n_drives);
        for row in &self.head {
            for &v in row {
                h.write_u64(v.to_bits());
            }
        }
        for &v in &self.row_off {
            h.write_usize(v);
        }
        for w in &self.term_w {
            h.write_u64(w[0].to_bits());
            h.write_u64(w[1].to_bits());
        }
        for &p in &self.term_pole {
            h.write_usize(p);
        }
        for p in &self.poles {
            h.write_u64(p.re.to_bits());
            h.write_u64(p.im.to_bits());
        }
        for &d in &self.prow {
            h.write_usize(d);
        }
        for &v in &self.pmat {
            h.write_u64(v.to_bits());
        }
        h.write_usize(self.pdeg);
        for &p in &self.pair {
            h.write_u64(p as u64);
        }
        for &v in &self.sigma {
            h.write_u64(v.to_bits());
        }
        for &v in &self.omega {
            h.write_u64(v.to_bits());
        }
        for &d in &self.d1 {
            h.write_usize(d);
        }
        for &d in &self.d2 {
            h.write_usize(d);
        }
        h.finish()
    }

    /// Appends the first-order-hold coefficients of every block for
    /// step `dt` to `out`, computed with the exact per-kind propagators
    /// of the reference loop. The caller owns the buffer, so a state
    /// that caches it re-fills in place without allocating.
    pub(crate) fn fill_propagators(&self, dt: f64, out: &mut Vec<BlockCoef>) {
        out.extend((0..self.n_blocks()).map(|b| {
            if self.pair[b] {
                let p = FohPair::new(self.sigma[b], self.omega[b], dt);
                BlockCoef {
                    er: p.e.re,
                    ei: p.e.im,
                    g1r: p.g1.re,
                    g1i: p.g1.im,
                    g2r: p.g2.re,
                    g2i: p.g2.im,
                }
            } else {
                let p = FohScalar::new(self.sigma[b], dt);
                BlockCoef { er: p.e, ei: 0.0, g1r: p.g1, g1i: 0.0, g2r: p.g2, g2i: 0.0 }
            }
        }));
    }
}

/// Minimal FNV-1a/64 used by [`CompiledSim::fingerprint`]. Each field
/// is hashed byte by byte in a fixed order, so the fingerprint is
/// stable across platforms (inputs are reduced to explicit widths
/// before hashing — no `usize`-width dependence on the wire).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogTerm;

    #[test]
    fn pair_pole_dedup_shares_features_between_components() {
        let pole = Complex::new(0.3, 0.8);
        let t1 = IntegratedStateFn {
            terms: vec![LogTerm { pole, rho: Complex::new(1.0, -0.5) }],
            linear: 0.1,
            quadratic: 0.0,
            constant: 0.0,
        };
        let t2 = IntegratedStateFn {
            terms: vec![LogTerm { pole, rho: Complex::new(-0.25, 0.4) }],
            linear: 0.2,
            quadratic: 0.0,
            constant: 0.0,
        };
        let mut b = SimBuilder::new();
        let s = b.drive_poly(&[0.0]);
        b.set_static_drive(s);
        let d1 = b.drive_rational(&t1);
        let d2 = b.drive_rational(&t2);
        b.block_pair(-1.0e9, 4.0e9, d1, d2);
        let sim = b.build();
        // Identical pole sequences collapse to ONE feature slot.
        assert_eq!(sim.n_pole_features(), 1);
        assert_eq!(sim.n_drives(), 3);
    }

    #[test]
    fn distinct_pole_sequences_are_not_merged() {
        let term = |re: f64| IntegratedStateFn {
            terms: vec![LogTerm { pole: Complex::new(re, 0.5), rho: Complex::new(1.0, 0.0) }],
            linear: 0.0,
            quadratic: 0.0,
            constant: 0.0,
        };
        let mut b = SimBuilder::new();
        let d1 = b.drive_rational(&term(0.1));
        let d2 = b.drive_rational(&term(0.2));
        b.set_static_drive(d1);
        b.block_pair(-1.0e9, 2.0e9, d1, d2);
        assert_eq!(b.build().n_pole_features(), 2);
    }

    #[test]
    #[should_panic(expected = "static drive row not set")]
    fn builder_requires_static_row() {
        let _ = SimBuilder::new().build();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_dangling_drive_reference() {
        let mut b = SimBuilder::new();
        let s = b.drive_poly(&[0.0]);
        b.set_static_drive(s);
        b.block_real(-1.0, 7);
        let _ = b.build();
    }

    #[test]
    fn try_build_reports_typed_errors() {
        assert_eq!(SimBuilder::new().try_build().unwrap_err(), ServingError::MissingStaticDrive);

        // A block pointing at an unregistered row.
        let mut b = SimBuilder::new();
        let s = b.drive_poly(&[0.0]);
        b.set_static_drive(s);
        b.block_real(-1.0, 7);
        assert_eq!(b.try_build().unwrap_err(), ServingError::BadDrive { drive: 7, n_drives: 1 });

        // A pair block's second component out of range.
        let mut b = SimBuilder::new();
        let s = b.drive_poly(&[0.0]);
        b.set_static_drive(s);
        b.block_pair(-1.0, 2.0, s, 5);
        assert_eq!(b.try_build().unwrap_err(), ServingError::BadDrive { drive: 5, n_drives: 1 });

        // A dangling static row.
        let mut b = SimBuilder::new();
        let _ = b.drive_poly(&[0.0]);
        b.set_static_drive(3);
        assert_eq!(b.try_build().unwrap_err(), ServingError::BadDrive { drive: 3, n_drives: 1 });

        // And a well-formed builder succeeds.
        let mut b = SimBuilder::new();
        let s = b.drive_poly(&[0.0, 1.0]);
        b.set_static_drive(s);
        b.block_real(-1.0e9, s);
        assert!(b.try_build().is_ok());
    }

    #[test]
    fn fingerprint_is_stable_and_table_sensitive() {
        let build = |a: f64, slope: f64| {
            let mut b = SimBuilder::new();
            let s = b.drive_poly(&[0.0, slope]);
            b.set_static_drive(s);
            b.block_real(a, s);
            b.build()
        };
        // Recompiling the same model reproduces the fingerprint exactly.
        assert_eq!(build(-1.0e9, 1.0).fingerprint(), build(-1.0e9, 1.0).fingerprint());
        // The runtime-only thread request is excluded.
        assert_eq!(
            build(-1.0e9, 1.0).with_threads(4).fingerprint(),
            build(-1.0e9, 1.0).fingerprint()
        );
        // A last-bit table difference changes it.
        let a = -1.0e9_f64;
        let nudged = f64::from_bits(a.to_bits() ^ 1);
        assert_ne!(build(a, 1.0).fingerprint(), build(nudged, 1.0).fingerprint());
        assert_ne!(build(a, 1.0).fingerprint(), build(a, 2.0).fingerprint());
    }

    #[test]
    fn poly_drive_rows_share_the_power_basis() {
        // Static path y_s(u) = 1 + u²; one real block driven by u³.
        let mut b = SimBuilder::new();
        let s = b.drive_poly(&[1.0, 0.0, 1.0]);
        b.set_static_drive(s);
        let f = b.drive_poly(&[0.0, 0.0, 0.0, 1.0]);
        b.block_real(-1.0e12, f);
        let sim = b.build();
        assert_eq!(sim.pdeg, 3);
        // With a pole this fast the block output is ≈ −f(u)/a at every
        // sample; check the static path + near-static block algebra.
        let y = sim.simulate(1e-9, &[0.5; 50]);
        let want = (1.0 + 0.25) + (0.125 / 1.0e12);
        assert!((y[0] - want).abs() < 1e-12, "{} vs {want}", y[0]);
    }
}
