//! The Recursive Vector Fitting driver (paper Algorithm 1).
//!
//! Stage 1 fits the frequency axis of the TFT data with common poles,
//! incrementing the pole count by two until the error bound `ε` is met.
//! Stage 2 recursively fits every state-dependent quantity (the residue
//! trajectories and the static conductance) as partial fractions in the
//! state variable, again growing the pole count until `ε` is met.

use rvf_numerics::{Complex, SweepPool};
use rvf_vecfit::{auto_workers, fit_with_initial_in, PoleSet, RationalModel, VfFit, VfOptions};

use crate::error::RvfError;

/// Options for the RVF extraction (paper: `ε = 10⁻³`, yielding 12
/// frequency poles and 10 state poles per residue on the buffer).
#[derive(Debug, Clone)]
pub struct RvfOptions {
    /// Relative error bound `ε` for both fitting stages.
    pub epsilon: f64,
    /// Starting number of frequency poles.
    pub start_freq_poles: usize,
    /// Maximum number of frequency poles.
    pub max_freq_poles: usize,
    /// Starting number of state poles (rounded up to pairs).
    pub start_state_poles: usize,
    /// Maximum number of state poles per residue function.
    pub max_state_poles: usize,
    /// Relocation iterations for the frequency fits.
    pub freq_vf_iterations: usize,
    /// Relocation iterations for the state fits.
    pub state_vf_iterations: usize,
    /// Abort instead of accepting the best effort when the pole budget
    /// is exhausted before `ε` is met.
    pub strict: bool,
    /// Warm-start each pole-count increment from the previous fit's
    /// relocated poles (augmented to the new count) instead of
    /// re-seeding from the generic spread — already-settled poles need
    /// few further relocation rounds, so the growth loop performs
    /// strictly fewer total rounds on well-behaved data.
    pub warm_start: bool,
    /// Worker threads for the per-response stages of every vector fit
    /// (see [`rvf_vecfit::VfOptions::threads`]): `0` = one per core
    /// above the engine's response-count crossover, `1` = serial. The
    /// fit results are bit-identical for every setting.
    pub threads: usize,
    /// Per-fit relocation convergence threshold (see
    /// [`rvf_vecfit::VfOptions::stop_displacement`]): once a round's
    /// maximum relative pole displacement drops below it, that fit
    /// stops iterating. The default `1e-10` effectively always runs the
    /// full iteration budget; warm-started growth benefits from a
    /// looser value (e.g. `1e-4`).
    pub vf_stop_displacement: f64,
}

impl Default for RvfOptions {
    fn default() -> Self {
        Self {
            epsilon: 1e-3,
            start_freq_poles: 4,
            max_freq_poles: 24,
            start_state_poles: 4,
            max_state_poles: 16,
            freq_vf_iterations: 10,
            state_vf_iterations: 10,
            strict: false,
            warm_start: true,
            threads: 0,
            vf_stop_displacement: 1e-10,
        }
    }
}

/// Outcome of one auto-incremented fitting stage.
#[derive(Debug, Clone)]
pub struct StageFit {
    /// The fitted model.
    pub fit: VfFit,
    /// Relative RMS error achieved (RMS / peak magnitude of the data).
    pub rel_error: f64,
    /// Number of poles used.
    pub n_poles: usize,
    /// Total pole-relocation rounds performed across *all* pole counts
    /// the stage tried — the work metric the warm start cuts.
    pub relocation_rounds: usize,
}

/// Fits the frequency axis: common stable poles across all state
/// snapshots, pole count grown by 2 until `ε` is reached (paper
/// Algorithm 1, lines 14–17).
///
/// # Errors
///
/// Returns [`RvfError::ToleranceNotReached`] in strict mode when the
/// pole budget is exhausted; otherwise returns the best fit found.
pub fn fit_frequency_stage(
    s_grid: &[Complex],
    responses: &[Vec<Complex>],
    opts: &RvfOptions,
) -> Result<StageFit, RvfError> {
    // One pool for the whole growth loop: every relocation round of
    // every pole count is a round on these workers, not a spawn.
    let pool = SweepPool::new(auto_workers(opts.threads, responses.len()));
    fit_frequency_stage_in(&pool, s_grid, responses, opts)
}

/// [`fit_frequency_stage`] running on a caller-owned [`SweepPool`], so
/// several stages of one extraction share a single worker runtime.
///
/// # Errors
///
/// See [`fit_frequency_stage`].
pub fn fit_frequency_stage_in(
    pool: &SweepPool,
    s_grid: &[Complex],
    responses: &[Vec<Complex>],
    opts: &RvfOptions,
) -> Result<StageFit, RvfError> {
    let peak =
        responses.iter().flat_map(|r| r.iter()).fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-300);
    let mut best: Option<StageFit> = None;
    let mut warm: Option<PoleSet> = None;
    let mut relocation_rounds = 0;
    let mut p = opts.start_freq_poles.max(2);
    while p <= opts.max_freq_poles {
        let vf_opts = VfOptions::frequency(p)
            .with_iterations(opts.freq_vf_iterations)
            .with_threads(opts.threads)
            .with_stop_displacement(opts.vf_stop_displacement);
        let fit = fit_with_initial_in(pool, s_grid, responses, &vf_opts, warm.as_ref())?;
        relocation_rounds += fit.iterations_run;
        if opts.warm_start {
            warm = Some(fit.model.poles().clone());
        }
        let rel = fit.rms_error / peak;
        let candidate = StageFit { fit, rel_error: rel, n_poles: p, relocation_rounds };
        let better = best.as_ref().map_or(true, |b| rel < b.rel_error);
        if better {
            best = Some(candidate);
        }
        if rel <= opts.epsilon {
            break;
        }
        p += 2;
    }
    let mut best = best.expect("at least one fit attempted");
    best.relocation_rounds = relocation_rounds;
    if opts.strict && best.rel_error > opts.epsilon {
        return Err(RvfError::ToleranceNotReached {
            stage: "frequency",
            achieved: best.rel_error,
            epsilon: opts.epsilon,
            max_poles: opts.max_freq_poles,
        });
    }
    Ok(best)
}

/// Fits one or more real-valued state trajectories with *common*
/// conjugate-pair poles in the state variable, growing the pole count
/// until `ε·scale` is reached (paper Algorithm 1, lines 18–25).
///
/// `scale` normalizes the error target: residue components are compared
/// against the overall residue magnitude, not their own peak, so
/// near-zero components don't demand absurd accuracy.
///
/// # Errors
///
/// Returns [`RvfError::ToleranceNotReached`] in strict mode when the
/// pole budget is exhausted, and propagates fitting failures.
pub fn fit_state_stage(
    states: &[f64],
    trajectories: &[Vec<f64>],
    scale: f64,
    opts: &RvfOptions,
) -> Result<StageFit, RvfError> {
    let pool = SweepPool::new(auto_workers(opts.threads, trajectories.len()));
    fit_state_stage_in(&pool, states, trajectories, scale, opts)
}

/// [`fit_state_stage`] running on a caller-owned [`SweepPool`]; the
/// Hammerstein builder threads one pool through its whole sequence of
/// per-block stages this way.
///
/// # Errors
///
/// See [`fit_state_stage`].
pub fn fit_state_stage_in(
    pool: &SweepPool,
    states: &[f64],
    trajectories: &[Vec<f64>],
    scale: f64,
    opts: &RvfOptions,
) -> Result<StageFit, RvfError> {
    let xs: Vec<Complex> = states.iter().map(|&x| Complex::from_re(x)).collect();
    let data: Vec<Vec<Complex>> =
        trajectories.iter().map(|t| t.iter().map(|&v| Complex::from_re(v)).collect()).collect();
    let scale = scale.max(1e-300);
    let mut best: Option<StageFit> = None;
    let mut warm: Option<PoleSet> = None;
    let mut relocation_rounds = 0;
    let mut p = opts.start_state_poles.max(2);
    while p <= opts.max_state_poles {
        // Cap the pole count to what the sample count supports:
        // real-axis rows are single equations, so L ≥ 2P + 2 is needed.
        if states.len() < 2 * p + 2 {
            break;
        }
        let vf_opts = VfOptions::state(p)
            .with_iterations(opts.state_vf_iterations)
            .with_threads(opts.threads)
            .with_stop_displacement(opts.vf_stop_displacement);
        let fit = fit_with_initial_in(pool, &xs, &data, &vf_opts, warm.as_ref())?;
        relocation_rounds += fit.iterations_run;
        if opts.warm_start {
            warm = Some(fit.model.poles().clone());
        }
        let rel = fit.rms_error / scale;
        let candidate = StageFit { fit, rel_error: rel, n_poles: p, relocation_rounds };
        let better = best.as_ref().map_or(true, |b| rel < b.rel_error);
        if better {
            best = Some(candidate);
        }
        if rel <= opts.epsilon {
            break;
        }
        p += 2;
    }
    let mut best = best.ok_or(RvfError::TooFewStates {
        got: states.len(),
        needed: 2 * opts.start_state_poles.max(2) + 2,
    })?;
    best.relocation_rounds = relocation_rounds;
    if opts.strict && best.rel_error > opts.epsilon {
        return Err(RvfError::ToleranceNotReached {
            stage: "state",
            achieved: best.rel_error,
            epsilon: opts.epsilon,
            max_poles: opts.max_state_poles,
        });
    }
    Ok(best)
}

/// Extracts a single response from a multi-response model (helper for
/// building per-block state functions).
pub fn single_response(model: &RationalModel, k: usize) -> RationalModel {
    RationalModel::new(model.poles().clone(), vec![model.terms()[k].clone()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvf_numerics::{c, jw_grid, linspace, logspace};

    #[test]
    fn frequency_stage_grows_until_tolerance() {
        // A 6-pole synthetic system: starting at 4 poles the stage must
        // step up to ≥6 to pass ε.
        let poles = [
            c(-1.0e3, 0.0),
            c(-1.0e4, 8.0e4),
            c(-1.0e4, -8.0e4),
            c(-3.0e5, 0.0),
            c(-2.0e5, 3.0e6),
            c(-2.0e5, -3.0e6),
        ];
        let residues = [
            c(5.0e2, 0.0),
            c(2.0e3, 1.0e3),
            c(2.0e3, -1.0e3),
            c(1.0e5, 0.0),
            c(4.0e4, -2.0e5),
            c(4.0e4, 2.0e5),
        ];
        let s_grid = jw_grid(&logspace(2.0, 7.5, 120));
        let data: Vec<Vec<Complex>> = vec![s_grid
            .iter()
            .map(|&s| poles.iter().zip(&residues).map(|(&a, &r)| r * (s - a).inv()).sum())
            .collect()];
        let opts = RvfOptions { epsilon: 1e-6, start_freq_poles: 4, ..Default::default() };
        let stage = fit_frequency_stage(&s_grid, &data, &opts).unwrap();
        assert!(stage.n_poles >= 6, "stopped at {} poles", stage.n_poles);
        assert!(stage.rel_error <= 1e-6, "rel err {}", stage.rel_error);
    }

    #[test]
    fn strict_mode_reports_failure() {
        // A sharp resonance cannot be matched with 2 poles max.
        let s_grid = jw_grid(&linspace(1.0, 100.0, 80));
        let data: Vec<Vec<Complex>> = vec![s_grid
            .iter()
            .map(|&s| {
                (s - c(-0.1, 30.0)).inv()
                    + (s - c(-0.1, -30.0)).inv()
                    + (s - c(-0.2, 70.0)).inv()
                    + (s - c(-0.2, -70.0)).inv()
            })
            .collect()];
        let opts = RvfOptions {
            epsilon: 1e-9,
            start_freq_poles: 2,
            max_freq_poles: 2,
            strict: true,
            ..Default::default()
        };
        let err = fit_frequency_stage(&s_grid, &data, &opts).unwrap_err();
        assert!(matches!(err, RvfError::ToleranceNotReached { stage: "frequency", .. }));
    }

    #[test]
    fn state_stage_fits_multiple_components_with_common_poles() {
        let states = linspace(0.4, 1.4, 101);
        let t1: Vec<f64> =
            states.iter().map(|&x| 1.0 / (1.0 + 16.0 * (x - 0.9) * (x - 0.9))).collect();
        let t2: Vec<f64> =
            states.iter().map(|&x| (x - 0.9) / (1.0 + 16.0 * (x - 0.9) * (x - 0.9))).collect();
        let scale = 1.0;
        let opts = RvfOptions { epsilon: 1e-4, ..Default::default() };
        let stage = fit_state_stage(&states, &[t1.clone(), t2], scale, &opts).unwrap();
        assert!(stage.rel_error <= 1e-4, "rel err {}", stage.rel_error);
        assert_eq!(stage.fit.model.n_responses(), 2);
        // Check reconstruction of component 1.
        for (x, want) in states.iter().zip(&t1) {
            let got = stage.fit.model.eval(0, Complex::from_re(*x)).re;
            assert!((got - want).abs() < 5e-4, "at {x}: {got} vs {want}");
        }
    }

    #[test]
    fn state_stage_scale_relaxes_small_components() {
        // A tiny trajectory relative to scale converges immediately.
        let states = linspace(0.0, 1.0, 40);
        let tiny: Vec<f64> = states.iter().map(|&x| 1e-9 * x).collect();
        let opts = RvfOptions { epsilon: 1e-3, ..Default::default() };
        let stage = fit_state_stage(&states, &[tiny], 1.0, &opts).unwrap();
        assert!(stage.rel_error <= 1e-3);
        assert_eq!(stage.n_poles, 4, "no pole growth needed");
    }

    #[test]
    fn state_stage_too_few_states() {
        let states = [0.0, 0.5, 1.0];
        let data = vec![vec![1.0, 2.0, 3.0]];
        let opts = RvfOptions { start_state_poles: 4, ..Default::default() };
        let err = fit_state_stage(&states, &data, 1.0, &opts).unwrap_err();
        assert!(matches!(err, RvfError::TooFewStates { .. }));
    }

    #[test]
    fn single_response_extraction() {
        use rvf_vecfit::{PoleSet, Residues, ResponseTerms};
        let model = RationalModel::new(
            PoleSet::from_reals(&[-1.0]),
            vec![
                ResponseTerms { residues: Residues(vec![c(1.0, 0.0)]), d: 0.5, e: 0.0 },
                ResponseTerms { residues: Residues(vec![c(2.0, 0.0)]), d: -0.5, e: 0.0 },
            ],
        );
        let second = single_response(&model, 1);
        assert_eq!(second.n_responses(), 1);
        assert_eq!(second.terms()[0].d, -0.5);
    }
}
