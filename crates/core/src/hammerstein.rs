//! The parallel Hammerstein model (paper §II, eq. 7 and Fig. 2) and its
//! construction from TFT data.
//!
//! Each frequency pole (pair) owns a static nonlinear input stage
//! `f̂_p(x) = ∫ r̂_p(x) dx` feeding a first/second-order LTI block; a
//! memoryless static path (from the `H(0)` trajectory) completes the
//! model:
//!
//! ```text
//! y(t) = y_s(u(t)) + Σ_p D̂_p·ŷ_p(t),    ŷ̇_p = Â_p ŷ_p + f̂_p(u(t))
//! ```
//!
//! Stability is structural: every `Â_p` comes from the stability-flipped
//! frequency fit, and the simulator advances each block with its exact
//! first-order-hold flow.

use rvf_numerics::{Complex, FohPair, FohScalar};
use rvf_tft::TftDataset;
use rvf_vecfit::{PoleEntry, RationalModel};

use crate::error::RvfError;
use crate::integrated::IntegratedStateFn;
use crate::rvf::{fit_state_stage_in, single_response, RvfOptions, StageFit};

/// A fitted state-dependent function together with its analytic
/// primitive.
#[derive(Debug, Clone, PartialEq)]
pub struct StateFn {
    /// The rational fit `r(u)` (single response, real axis).
    pub rational: RationalModel,
    /// The closed-form primitive `∫ r du` (anchored).
    pub primitive: IntegratedStateFn,
}

impl StateFn {
    /// Builds from response `k` of a state-axis fit, with the primitive
    /// anchored to `primitive(u0) = anchor`.
    pub fn from_fit(model: &RationalModel, k: usize, u0: f64, anchor: f64) -> Self {
        let rational = single_response(model, k);
        let primitive = IntegratedStateFn::from_state_fit(&rational, 0).anchored(u0, anchor);
        Self { rational, primitive }
    }

    /// The fitted function value `r(u)`.
    pub fn value(&self, u: f64) -> f64 {
        self.rational.eval(0, Complex::from_re(u)).re
    }

    /// The anchored primitive `∫ r du`.
    pub fn integral(&self, u: f64) -> f64 {
        self.primitive.eval(u)
    }
}

/// One dynamic branch of the parallel Hammerstein structure.
#[derive(Debug, Clone, PartialEq)]
pub enum DynBlock {
    /// First-order block for a real frequency pole `a`:
    /// `ẏ = a·y + f(u)`, output weight 1 (input-shifted form, eq. 13).
    Real {
        /// The pole.
        a: f64,
        /// The integrated input nonlinearity.
        f: StateFn,
    },
    /// Second-order real block for a complex pair `σ ± jω` with the
    /// input-shifted residue components (eq. 14): inputs
    /// `(f₁(u), f₂(u))`, output `y₁ + y₂`.
    Pair {
        /// Real part of the pole.
        sigma: f64,
        /// Imaginary part of the pole (positive member).
        omega: f64,
        /// First input-shifted component `Re r + Im r`.
        f1: StateFn,
        /// Second input-shifted component `Re r − Im r`.
        f2: StateFn,
    },
}

impl DynBlock {
    /// State dimension (1 or 2).
    pub fn dim(&self) -> usize {
        match self {
            DynBlock::Real { .. } => 1,
            DynBlock::Pair { .. } => 2,
        }
    }

    /// The complex residue value `r(u)` reconstructed from the
    /// input-shifted components (inverse of paper eq. 14).
    pub fn residue_at(&self, u: f64) -> Complex {
        match self {
            DynBlock::Real { f, .. } => Complex::from_re(f.value(u)),
            DynBlock::Pair { f1, f2, .. } => {
                let c1 = f1.value(u);
                let c2 = f2.value(u);
                Complex::new(0.5 * (c1 + c2), 0.5 * (c1 - c2))
            }
        }
    }

    /// Transfer contribution at `(u, s)`.
    pub fn transfer(&self, u: f64, s: Complex) -> Complex {
        match self {
            DynBlock::Real { a, .. } => self.residue_at(u) * (s - Complex::from_re(*a)).inv(),
            DynBlock::Pair { sigma, omega, .. } => {
                let a = Complex::new(*sigma, *omega);
                let r = self.residue_at(u);
                r * (s - a).inv() + r.conj() * (s - a.conj()).inv()
            }
        }
    }
}

/// Diagnostics of a model build.
#[derive(Debug, Clone, Default)]
pub struct BuildDiagnostics {
    /// Relative RMS error of the frequency-axis fit.
    pub freq_rel_error: f64,
    /// Number of frequency poles (the paper reports 12 on the buffer).
    pub n_freq_poles: usize,
    /// State pole counts per dynamic block (paper: ~10 each).
    pub state_pole_counts: Vec<usize>,
    /// Relative RMS errors of the per-block state fits.
    pub state_rel_errors: Vec<f64>,
    /// State pole count of the static path.
    pub static_pole_count: usize,
    /// Relative RMS error of the static-path fit.
    pub static_rel_error: f64,
}

/// The extracted analytical model.
#[derive(Debug, Clone, PartialEq)]
pub struct HammersteinModel {
    /// Static path: `value(u)` is the fitted DC conductance `g(u)`,
    /// `integral(u)` the static transfer curve `y_s(u)` anchored at the
    /// DC solution.
    pub static_path: StateFn,
    /// Parallel dynamic blocks.
    pub blocks: Vec<DynBlock>,
    /// DC anchor input (trajectory value at `t = 0`).
    pub u0: f64,
    /// DC anchor output.
    pub y0: f64,
}

impl HammersteinModel {
    /// Total LTI state dimension.
    pub fn n_states(&self) -> usize {
        self.blocks.iter().map(DynBlock::dim).sum()
    }

    /// Number of frequency poles.
    pub fn n_poles(&self) -> usize {
        self.n_states()
    }

    /// The model's TFT `T(x, s)` for hyperplane comparison (Fig. 7):
    /// fitted static gain plus the dynamic pole-residue part.
    pub fn transfer(&self, x: f64, s: Complex) -> Complex {
        let mut acc = Complex::from_re(self.static_path.value(x));
        for b in &self.blocks {
            acc += b.transfer(x, s);
        }
        acc
    }

    /// The static (DC) transfer curve `y_s(u)`.
    pub fn static_output(&self, u: f64) -> f64 {
        self.static_path.integral(u)
    }

    /// Lowers the model into the flat serving tables of
    /// [`CompiledSim`](crate::CompiledSim): call once, then evaluate
    /// many stimuli through [`CompiledSim::simulate`](crate::CompiledSim::simulate)
    /// / [`CompiledSim::simulate_batch`](crate::CompiledSim::simulate_batch).
    pub fn compile(&self) -> crate::CompiledSim {
        let mut b = crate::SimBuilder::new();
        let s = b.drive_rational(&self.static_path.primitive);
        b.set_static_drive(s);
        for block in &self.blocks {
            match block {
                DynBlock::Real { a, f } => {
                    let d = b.drive_rational(&f.primitive);
                    b.block_real(*a, d);
                }
                DynBlock::Pair { sigma, omega, f1, f2 } => {
                    let d1 = b.drive_rational(&f1.primitive);
                    let d2 = b.drive_rational(&f2.primitive);
                    b.block_pair(*sigma, *omega, d1, d2);
                }
            }
        }
        b.build()
    }

    /// Simulates the model for inputs sampled at fixed `dt`, returning
    /// the output at every sample (paper eq. 7, exact-exponential
    /// stepping).
    ///
    /// The LTI blocks start in steady state for the first input value,
    /// matching the circuit starting from its DC operating point.
    ///
    /// This routes through the compiled serving runtime
    /// ([`compile`](HammersteinModel::compile) + one-lane kernel) and is
    /// equal to [`simulate_reference`](HammersteinModel::simulate_reference)
    /// sample-for-sample under `f64` comparison; callers evaluating many
    /// stimuli should compile once and reuse the
    /// [`CompiledSim`](crate::CompiledSim).
    pub fn simulate(&self, dt: f64, inputs: &[f64]) -> Vec<f64> {
        self.compile().simulate(dt, inputs)
    }

    /// The scalar reference simulation loop — per-block enum dispatch,
    /// per-response log-term passes — kept as the readable
    /// specification and the oracle the compiled runtime is pinned
    /// against.
    pub fn simulate_reference(&self, dt: f64, inputs: &[f64]) -> Vec<f64> {
        if inputs.is_empty() {
            return Vec::new();
        }
        enum BlockState {
            Real { prop: FohScalar, x: f64, v_prev: f64 },
            Pair { prop: FohPair, z: Complex, v_prev: [f64; 2] },
        }
        let mut states: Vec<BlockState> = self
            .blocks
            .iter()
            .map(|b| match b {
                DynBlock::Real { a, f } => {
                    let v = f.integral(inputs[0]);
                    BlockState::Real { prop: FohScalar::new(*a, dt), x: -v / a, v_prev: v }
                }
                DynBlock::Pair { sigma, omega, f1, f2 } => {
                    let v = [f1.integral(inputs[0]), f2.integral(inputs[0])];
                    // ż = λz + w with λ = σ − jω (complex representation).
                    let lambda = Complex::new(*sigma, -*omega);
                    let w = Complex::new(v[0], v[1]);
                    BlockState::Pair {
                        prop: FohPair::new(*sigma, *omega, dt),
                        z: -(w / lambda),
                        v_prev: v,
                    }
                }
            })
            .collect();

        let mut out = Vec::with_capacity(inputs.len());
        let emit = |states: &[BlockState], u: f64, this: &Self| -> f64 {
            let mut y = this.static_path.integral(u);
            for s in states {
                match s {
                    BlockState::Real { x, .. } => y += x,
                    BlockState::Pair { z, .. } => y += z.re + z.im,
                }
            }
            y
        };
        out.push(emit(&states, inputs[0], self));
        for win in inputs.windows(2) {
            let u1 = win[1];
            for (bs, block) in states.iter_mut().zip(&self.blocks) {
                match (bs, block) {
                    (BlockState::Real { prop, x, v_prev, .. }, DynBlock::Real { f, .. }) => {
                        let v1 = f.integral(u1);
                        *x = prop.step(*x, *v_prev, v1);
                        *v_prev = v1;
                    }
                    (BlockState::Pair { prop, z, v_prev, .. }, DynBlock::Pair { f1, f2, .. }) => {
                        let v1 = [f1.integral(u1), f2.integral(u1)];
                        let next = prop.step([z.re, z.im], *v_prev, v1);
                        *z = Complex::new(next[0], next[1]);
                        *v_prev = v1;
                    }
                    _ => unreachable!("state/block kinds always match"),
                }
            }
            out.push(emit(&states, u1, self));
        }
        out
    }
}

/// Builds a Hammerstein model from a TFT dataset (the full RVF
/// modeling chain of paper Fig. 3).
///
/// # Errors
///
/// Propagates fitting failures; in strict mode also tolerance misses.
pub fn build_hammerstein(
    dataset: &TftDataset,
    freq_stage: &StageFit,
    opts: &RvfOptions,
) -> Result<(HammersteinModel, BuildDiagnostics), RvfError> {
    let states = dataset.states();
    // DC anchor: the trajectory point at the earliest time.
    let (u0, y0) = dataset
        .samples
        .iter()
        .min_by(|a, b| a.t.partial_cmp(&b.t).unwrap_or(core::cmp::Ordering::Equal))
        .map(|s| (s.state, s.y))
        .unwrap_or((0.0, 0.0));

    let freq_model = &freq_stage.fit.model;
    // Per-block error scales. A residue error δr on pole a perturbs the
    // transfer function by up to δr·max_l 1/|s_l − a|, so each residue
    // trajectory must be fitted to an *absolute* tolerance of
    // ε·peak(H)·min_l|s_l − a| — otherwise low-frequency poles (small
    // |a|, small residues) silently amplify their fitting error by
    // orders of magnitude.
    let s_grid = dataset.s_grid();
    let peak_dyn = dataset
        .samples
        .iter()
        .flat_map(|s| s.h.iter().map(move |&h| (h - s.h0).abs()))
        .fold(0.0_f64, f64::max)
        .max(1e-300);
    let block_scale = |poles: &[Complex]| -> f64 {
        let min_dist = s_grid
            .iter()
            .map(|&s| poles.iter().map(move |&a| (s - a).abs()).fold(f64::INFINITY, f64::min))
            .fold(f64::INFINITY, f64::min);
        peak_dyn * min_dist.max(1e-300)
    };
    let mut diagnostics = BuildDiagnostics {
        freq_rel_error: freq_stage.rel_error,
        n_freq_poles: freq_stage.n_poles,
        ..Default::default()
    };

    // One worker pool shared by every per-block state stage (each fits
    // 1–2 trajectories, so the pool stays within the stage's effective
    // worker count) instead of a runtime per stage call.
    let pool = rvf_numerics::SweepPool::new(rvf_vecfit::auto_workers(opts.threads, 2));
    let mut blocks = Vec::with_capacity(freq_model.poles().n_entries());
    for (p, entry) in freq_model.poles().entries().iter().enumerate() {
        let traj = freq_model.residue_trajectory(p);
        match entry {
            PoleEntry::Real(a) => {
                let comp: Vec<f64> = traj.iter().map(|r| r.re).collect();
                let scale = block_scale(&[Complex::from_re(*a)]);
                let stage = fit_state_stage_in(&pool, &states, &[comp], scale, opts)?;
                diagnostics.state_pole_counts.push(stage.n_poles);
                diagnostics.state_rel_errors.push(stage.rel_error);
                let f = StateFn::from_fit(&stage.fit.model, 0, u0, 0.0);
                blocks.push(DynBlock::Real { a: *a, f });
            }
            PoleEntry::Pair(a) => {
                // Input-shifted components (paper eq. 14).
                let c1: Vec<f64> = traj.iter().map(|r| r.re + r.im).collect();
                let c2: Vec<f64> = traj.iter().map(|r| r.re - r.im).collect();
                let scale = block_scale(&[*a, a.conj()]);
                let stage = fit_state_stage_in(&pool, &states, &[c1, c2], scale, opts)?;
                diagnostics.state_pole_counts.push(stage.n_poles);
                diagnostics.state_rel_errors.push(stage.rel_error);
                let f1 = StateFn::from_fit(&stage.fit.model, 0, u0, 0.0);
                let f2 = StateFn::from_fit(&stage.fit.model, 1, u0, 0.0);
                blocks.push(DynBlock::Pair { sigma: a.re, omega: a.im, f1, f2 });
            }
        }
    }

    // Static path: fit the DC-gain trajectory and integrate, anchored at
    // the DC solution (u0, y0).
    let g_traj = dataset.static_gains();
    let g_scale = g_traj.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    let static_stage = fit_state_stage_in(&pool, &states, &[g_traj], g_scale.max(1e-300), opts)?;
    diagnostics.static_pole_count = static_stage.n_poles;
    diagnostics.static_rel_error = static_stage.rel_error;
    let static_path = StateFn::from_fit(&static_stage.fit.model, 0, u0, y0);

    Ok((HammersteinModel { static_path, blocks, u0, y0 }, diagnostics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvf_numerics::{c, linspace};
    use rvf_vecfit::{fit_single, VfOptions};

    fn state_fn_for(g: impl Fn(f64) -> f64, u0: f64, anchor: f64) -> StateFn {
        let xs: Vec<Complex> = linspace(0.0, 2.0, 81).into_iter().map(Complex::from_re).collect();
        let data: Vec<Complex> = xs.iter().map(|x| Complex::from_re(g(x.re))).collect();
        let fit = fit_single(&xs, &data, &VfOptions::state(8).with_iterations(10)).unwrap();
        StateFn::from_fit(&fit.model, 0, u0, anchor)
    }

    #[test]
    fn statefn_value_and_integral_consistent() {
        let f = state_fn_for(|x| 1.0 / (1.0 + x * x), 0.0, 0.0);
        // d/du integral = value.
        for &u in &[0.2, 0.8, 1.5] {
            let h = 1e-6;
            let fd = (f.integral(u + h) - f.integral(u - h)) / (2.0 * h);
            assert!((fd - f.value(u)).abs() < 1e-6);
        }
        assert!(f.integral(0.0).abs() < 1e-12, "anchored at 0");
        // ∫₀¹ 1/(1+x²) = π/4.
        assert!((f.integral(1.0) - core::f64::consts::FRAC_PI_4).abs() < 1e-3);
    }

    #[test]
    fn pair_block_residue_reconstruction() {
        // f1 = Re+Im, f2 = Re−Im must invert exactly.
        let f1 = state_fn_for(|x| 1.0 + x, 0.0, 0.0);
        let f2 = state_fn_for(|x| 1.0 - x, 0.0, 0.0);
        let b = DynBlock::Pair { sigma: -1.0, omega: 5.0, f1, f2 };
        let r = b.residue_at(0.5);
        // Re = ((1.5)+(0.5))/2 = 1.0, Im = ((1.5)−(0.5))/2 = 0.5.
        assert!((r - c(1.0, 0.5)).abs() < 1e-3, "{r:?}");
    }

    #[test]
    fn pair_transfer_is_hermitian() {
        let f1 = state_fn_for(|x| 0.3 * x, 0.0, 0.0);
        let f2 = state_fn_for(|x| 0.1 + 0.2 * x, 0.0, 0.0);
        let b = DynBlock::Pair { sigma: -2.0, omega: 10.0, f1, f2 };
        let s = c(0.0, 3.0);
        let h = b.transfer(0.7, s);
        let hc = b.transfer(0.7, s.conj());
        assert!((h.conj() - hc).abs() < 1e-12);
    }

    #[test]
    fn linear_model_simulation_matches_analytic_step_response() {
        // Single real pole a = −w0 with f(u) = w0·u (linear): this is a
        // first-order low-pass with unit DC gain; static path zero.
        let w0 = 1.0e9;
        let f = state_fn_for(move |_x| w0, 0.0, 0.0); // r(u) = w0 ⇒ f(u) = w0·u
        let zero = state_fn_for(|_x| 0.0, 0.0, 0.0);
        let model = HammersteinModel {
            static_path: zero,
            blocks: vec![DynBlock::Real { a: -w0, f }],
            u0: 0.0,
            y0: 0.0,
        };
        // Step input 0 → 1 at the second sample.
        let dt = 1.0e-11;
        let n = 600;
        let mut u = vec![0.0; n];
        for v in u.iter_mut().skip(1) {
            *v = 1.0;
        }
        let y = model.simulate(dt, &u);
        // y(t) ≈ 1 − e^{−w0 (t−dt)} after the (FOH-ramped) step.
        let t_end = (n - 1) as f64 * dt;
        let want = 1.0 - (-w0 * (t_end - dt)).exp();
        let got = *y.last().unwrap();
        assert!((got - want).abs() < 2e-3, "{got} vs {want}");
        // Starts in steady state: y[0] = 0.
        assert!(y[0].abs() < 1e-12);
    }

    #[test]
    fn simulation_starts_in_steady_state_for_pairs() {
        let f1 = state_fn_for(|x| 1.0 + 0.5 * x, 0.0, 0.0);
        let f2 = state_fn_for(|x| 0.5 - 0.5 * x, 0.0, 0.0);
        let zero = state_fn_for(|_x| 0.0, 0.0, 0.0);
        let model = HammersteinModel {
            static_path: zero,
            blocks: vec![DynBlock::Pair { sigma: -1.0e9, omega: 4.0e9, f1, f2 }],
            u0: 1.0,
            y0: 0.0,
        };
        // Constant input: output must stay constant from the start.
        let u = vec![1.0; 200];
        let y = model.simulate(1e-11, &u);
        let y0 = y[0];
        for v in &y {
            assert!((v - y0).abs() < 1e-9 * y0.abs().max(1.0), "drift: {v} vs {y0}");
        }
    }

    #[test]
    fn empty_input_simulation() {
        let zero = state_fn_for(|_x| 0.0, 0.0, 0.0);
        let model = HammersteinModel { static_path: zero, blocks: Vec::new(), u0: 0.0, y0: 0.0 };
        assert!(model.simulate(1e-12, &[]).is_empty());
    }
}
