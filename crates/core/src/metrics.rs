//! Evaluation metrics for Table I: time-domain accuracy and speedup.

use std::time::Instant;

/// Time-domain comparison between a reference waveform (transistor-level
/// simulation) and a model output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeDomainReport {
    /// Absolute RMS error.
    pub rmse: f64,
    /// RMS error normalized by the reference peak-to-peak swing — the
    /// paper's Table I "Time Domain RMSE" convention (≈ 0.0098 for RVF).
    pub nrmse: f64,
    /// RMS error in dB relative to the swing.
    pub nrmse_db: f64,
    /// Worst-case absolute error.
    pub max_abs: f64,
}

/// Computes the time-domain error report.
///
/// # Panics
///
/// Panics if the waveform lengths differ.
pub fn time_domain_report(reference: &[f64], model: &[f64]) -> TimeDomainReport {
    let rmse = rvf_numerics::rmse(reference, model);
    let nrmse = rvf_numerics::nrmse(reference, model);
    TimeDomainReport {
        rmse,
        nrmse,
        nrmse_db: rvf_numerics::db20(nrmse.max(1e-30)),
        max_abs: rvf_numerics::max_abs_err(reference, model),
    }
}

/// Wall-clock speedup measurement: reference (SPICE) versus model
/// evaluation of the same stimulus (Table I "Speedup").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Speedup {
    /// Seconds for the transistor-level reference.
    pub reference_seconds: f64,
    /// Seconds for the model evaluation.
    pub model_seconds: f64,
    /// `reference_seconds / model_seconds`.
    pub factor: f64,
}

/// Times two closures and reports the speedup of the second relative to
/// the first. Each closure runs `repeat` times; the minimum time is used
/// (robust against scheduler noise).
pub fn measure_speedup(
    mut reference: impl FnMut(),
    mut model: impl FnMut(),
    repeat: usize,
) -> Speedup {
    let repeat = repeat.max(1);
    let time_of = |f: &mut dyn FnMut()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..repeat {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    let reference_seconds = time_of(&mut reference);
    let model_seconds = time_of(&mut model);
    Speedup {
        reference_seconds,
        model_seconds,
        factor: reference_seconds / model_seconds.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_values() {
        let r = [0.0, 1.0, 0.0, 1.0];
        let m = [0.1, 1.1, 0.1, 1.1];
        let rep = time_domain_report(&r, &m);
        assert!((rep.rmse - 0.1).abs() < 1e-12);
        assert!((rep.nrmse - 0.1).abs() < 1e-12);
        assert!((rep.nrmse_db + 20.0).abs() < 1e-9);
        assert!((rep.max_abs - 0.1).abs() < 1e-12);
    }

    #[test]
    fn speedup_measures_work_ratio() {
        // Busy loops with a 10:1 work ratio (coarse check: factor > 2).
        let s = measure_speedup(
            || {
                let mut acc = 0.0_f64;
                for i in 0..200_000 {
                    acc += (i as f64).sqrt();
                }
                std::hint::black_box(acc);
            },
            || {
                let mut acc = 0.0_f64;
                for i in 0..20_000 {
                    acc += (i as f64).sqrt();
                }
                std::hint::black_box(acc);
            },
            3,
        );
        assert!(s.factor > 2.0, "factor {}", s.factor);
        assert!(s.reference_seconds > 0.0 && s.model_seconds > 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn length_mismatch_panics() {
        let _ = time_domain_report(&[1.0], &[1.0, 2.0]);
    }
}
