//! MATLAB code generation.
//!
//! Emits the model as a single `.m` file defining the state-space
//! right-hand side and output function, ready for `ode45`/`ode23t` —
//! mirroring the paper's flow where "the resulting system of nonlinear
//! differential equations can be simulated inside Matlab".

use core::fmt::Write as _;

use crate::hammerstein::{DynBlock, HammersteinModel, StateFn};

/// Generates a MATLAB function file implementing the model.
///
/// The generated file defines `<name>()` returning a struct with
/// `rhs(t, y, u)` and `output(y, u)` function handles plus the state
/// dimension `n`.
pub fn to_matlab(model: &HammersteinModel, name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "function model = {name}()");
    let _ = writeln!(s, "% Auto-generated RVF Hammerstein model ({} states).", model.n_states());
    let _ = writeln!(s, "% y' = A*y + f(u),  out = y_static(u) + sum(y).");
    let _ = writeln!(s, "model.n = {};", model.n_states());
    let _ = writeln!(s, "model.u0 = {:.17e};", model.u0);
    let _ = writeln!(s, "model.y0 = {:.17e};", model.y0);
    let _ = writeln!(s, "model.rhs = @rhs_{name};");
    let _ = writeln!(s, "model.output = @output_{name};");
    let _ = writeln!(s, "end");
    let _ = writeln!(s);
    let _ = writeln!(s, "function dy = rhs_{name}(~, y, u)");
    let _ = writeln!(s, "dy = zeros({}, 1);", model.n_states());
    let mut row = 1usize; // MATLAB is 1-based
    for b in &model.blocks {
        match b {
            DynBlock::Real { a, f } => {
                let _ = writeln!(s, "dy({row}) = ({a:.17e})*y({row}) + {};", integral_expr(f, "u"));
                row += 1;
            }
            DynBlock::Pair { sigma, omega, f1, f2 } => {
                let (r1, r2) = (row, row + 1);
                let _ = writeln!(
                    s,
                    "dy({r1}) = ({sigma:.17e})*y({r1}) + ({omega:.17e})*y({r2}) + {};",
                    integral_expr(f1, "u")
                );
                let _ = writeln!(
                    s,
                    "dy({r2}) = -({omega:.17e})*y({r1}) + ({sigma:.17e})*y({r2}) + {};",
                    integral_expr(f2, "u")
                );
                row += 2;
            }
        }
    }
    let _ = writeln!(s, "end");
    let _ = writeln!(s);
    let _ = writeln!(s, "function out = output_{name}(y, u)");
    let _ = writeln!(s, "out = {} + sum(y);", integral_expr(&model.static_path, "u"));
    let _ = writeln!(s, "end");
    s
}

/// The analytic primitive as a MATLAB expression (`log`, `atan2`).
fn integral_expr(f: &StateFn, var: &str) -> String {
    let p = &f.primitive;
    let mut out = format!("({:.17e})", p.constant);
    if p.linear != 0.0 {
        let _ = write!(out, " + ({:.17e})*{var}", p.linear);
    }
    if p.quadratic != 0.0 {
        let _ = write!(out, " + ({:.17e})*{var}.^2*0.5", p.quadratic);
    }
    for t in &p.terms {
        let (a, b) = (t.pole.re, t.pole.im);
        let (c, d) = (t.rho.re, t.rho.im);
        let _ = write!(out, " + ({c:.17e})*log(({var}-({a:.17e})).^2 + ({b:.17e})^2)");
        let _ = write!(out, " - (2.0*({d:.17e}))*atan2(-({b:.17e}), {var}-({a:.17e}))");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrated::{IntegratedStateFn, LogTerm};
    use rvf_numerics::c;
    use rvf_vecfit::{PoleEntry, PoleSet, RationalModel, Residues, ResponseTerms};

    fn toy_statefn() -> StateFn {
        let pole = c(0.9, 0.3);
        let rho = c(0.5, -0.2);
        StateFn {
            rational: RationalModel::new(
                PoleSet::new(vec![PoleEntry::Pair(pole)]),
                vec![ResponseTerms { residues: Residues(vec![rho]), d: 0.1, e: 0.0 }],
            ),
            primitive: IntegratedStateFn {
                terms: vec![LogTerm { pole, rho }],
                linear: 0.1,
                quadratic: 0.0,
                constant: -0.05,
            },
        }
    }

    #[test]
    fn function_structure() {
        let model = HammersteinModel {
            static_path: toy_statefn(),
            blocks: vec![
                DynBlock::Pair {
                    sigma: -1.0e9,
                    omega: 5.0e9,
                    f1: toy_statefn(),
                    f2: toy_statefn(),
                },
                DynBlock::Real { a: -2.0e9, f: toy_statefn() },
            ],
            u0: 0.9,
            y0: 0.5,
        };
        let m = to_matlab(&model, "buffer_rvf");
        assert!(m.contains("function model = buffer_rvf()"));
        assert!(m.contains("model.n = 3;"));
        assert!(m.contains("dy = zeros(3, 1);"));
        assert!(m.contains("dy(1) ="));
        assert!(m.contains("dy(2) ="));
        assert!(m.contains("dy(3) ="));
        assert!(m.contains("out ="));
        // One log term per state function referenced in rhs/output.
        assert_eq!(m.matches("log(").count(), 4);
    }
}
