//! Model export: portable representations of the extracted equations.
//!
//! The paper's closing claim is that the RVF model "can be exported to
//! almost any mathematical software package or behavioral description
//! language" (the authors emit VHDL-AMS from Matlab). This module
//! provides three concrete targets:
//!
//! * [`text`] — a lossless, versioned plain-text serialization with a
//!   parser (round-trips through [`text::encode`]/[`text::decode`]);
//! * [`verilog_a`] — a Verilog-A behavioral module (the open analog HDL
//!   closest to the paper's VHDL-AMS target);
//! * [`matlab`] — a MATLAB function implementing the model equations for
//!   `ode45`-style integration.

pub mod matlab;
pub mod text;
pub mod verilog_a;
