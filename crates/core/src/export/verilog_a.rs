//! Verilog-A behavioral code generation.
//!
//! Emits the extracted Hammerstein model as a self-contained Verilog-A
//! module: the static path and the nonlinear input stages become analog
//! expressions built from `ln()` (the closed-form RVF integrals), and
//! each LTI block becomes an internal node with a `ddt()` contribution —
//! the analog-HDL equivalent of the paper's VHDL-AMS export.

use core::fmt::Write as _;

use crate::hammerstein::{DynBlock, HammersteinModel, StateFn};

/// Generates a Verilog-A module implementing the model.
///
/// The module has two electrical ports, `in` and `out`; `out` is driven
/// through a 1 Ω behavioral source so the module is directly usable as a
/// drop-in behavioral replacement of the extracted block.
pub fn to_verilog_a(model: &HammersteinModel, module_name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "// Auto-generated RVF Hammerstein behavioral model.");
    let _ = writeln!(
        s,
        "// {} dynamic blocks, {} LTI states, anchored at u0={:.6e}.",
        model.blocks.len(),
        model.n_states(),
        model.u0
    );
    let _ = writeln!(s, "`include \"disciplines.vams\"");
    let _ = writeln!(s);
    let _ = writeln!(s, "module {module_name}(p_in, p_out);");
    let _ = writeln!(s, "  inout p_in, p_out;");
    let _ = writeln!(s, "  electrical p_in, p_out;");
    for (i, b) in model.blocks.iter().enumerate() {
        match b {
            DynBlock::Real { .. } => {
                let _ = writeln!(s, "  electrical x{i}_1;");
            }
            DynBlock::Pair { .. } => {
                let _ = writeln!(s, "  electrical x{i}_1, x{i}_2;");
            }
        }
    }
    let _ = writeln!(s, "  real u, y_static;");
    for (i, b) in model.blocks.iter().enumerate() {
        match b {
            DynBlock::Real { .. } => {
                let _ = writeln!(s, "  real v{i}_1;");
            }
            DynBlock::Pair { .. } => {
                let _ = writeln!(s, "  real v{i}_1, v{i}_2;");
            }
        }
    }
    let _ = writeln!(s);
    let _ = writeln!(s, "  analog begin");
    let _ = writeln!(s, "    u = V(p_in);");
    let _ = writeln!(s, "    y_static = {};", integral_expr(&model.static_path, "u"));
    for (i, b) in model.blocks.iter().enumerate() {
        match b {
            DynBlock::Real { a, f } => {
                let _ = writeln!(s, "    v{i}_1 = {};", integral_expr(f, "u"));
                let _ = writeln!(s, "    // block {i}: real pole a = {a:.9e}");
                let _ =
                    writeln!(s, "    I(x{i}_1) <+ ddt(V(x{i}_1)) - ({a:.17e})*V(x{i}_1) - v{i}_1;");
            }
            DynBlock::Pair { sigma, omega, f1, f2 } => {
                let _ = writeln!(s, "    v{i}_1 = {};", integral_expr(f1, "u"));
                let _ = writeln!(s, "    v{i}_2 = {};", integral_expr(f2, "u"));
                let _ = writeln!(
                    s,
                    "    // block {i}: pole pair sigma = {sigma:.9e}, omega = {omega:.9e}"
                );
                let _ = writeln!(
                    s,
                    "    I(x{i}_1) <+ ddt(V(x{i}_1)) - ({sigma:.17e})*V(x{i}_1) - ({omega:.17e})*V(x{i}_2) - v{i}_1;"
                );
                let _ = writeln!(
                    s,
                    "    I(x{i}_2) <+ ddt(V(x{i}_2)) + ({omega:.17e})*V(x{i}_1) - ({sigma:.17e})*V(x{i}_2) - v{i}_2;"
                );
            }
        }
    }
    let mut sum = String::from("y_static");
    for (i, b) in model.blocks.iter().enumerate() {
        match b {
            DynBlock::Real { .. } => {
                let _ = write!(sum, " + V(x{i}_1)");
            }
            DynBlock::Pair { .. } => {
                let _ = write!(sum, " + V(x{i}_1) + V(x{i}_2)");
            }
        }
    }
    let _ = writeln!(s, "    V(p_out) <+ {sum};");
    let _ = writeln!(s, "  end");
    let _ = writeln!(s, "endmodule");
    s
}

/// The analytic primitive as a Verilog-A expression in variable `var`:
/// `2·Re{ρ·ln(u−x̃)}` expanded to real arithmetic with `ln` and `atan2`.
fn integral_expr(f: &StateFn, var: &str) -> String {
    let p = &f.primitive;
    let mut out = format!("({:.17e})", p.constant);
    if p.linear != 0.0 {
        let _ = write!(out, " + ({:.17e})*{var}", p.linear);
    }
    if p.quadratic != 0.0 {
        let _ = write!(out, " + ({:.17e})*{var}*{var}*0.5", p.quadratic);
    }
    for t in &p.terms {
        // 2·Re{ρ ln(u − x̃)} with x̃ = a+jb, ρ = c+jd:
        //   = 2c·ln(|u−x̃|) − 2d·arg(u−x̃)
        //   = c·ln((u−a)² + b²) − 2d·atan2(−b, u−a)
        let (a, b) = (t.pole.re, t.pole.im);
        let (c, d) = (t.rho.re, t.rho.im);
        let _ = write!(
            out,
            " + ({c:.17e})*ln(({var}-({a:.17e}))*({var}-({a:.17e})) + ({b:.17e})*({b:.17e}))"
        );
        let _ = write!(out, " - (2.0*({d:.17e}))*atan2(-({b:.17e}), {var}-({a:.17e}))");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrated::{IntegratedStateFn, LogTerm};
    use rvf_numerics::c;
    use rvf_vecfit::{PoleEntry, PoleSet, RationalModel, Residues, ResponseTerms};

    fn toy_statefn() -> StateFn {
        let pole = c(0.9, 0.3);
        let rho = c(0.5, -0.2);
        StateFn {
            rational: RationalModel::new(
                PoleSet::new(vec![PoleEntry::Pair(pole)]),
                vec![ResponseTerms { residues: Residues(vec![rho]), d: 0.1, e: 0.0 }],
            ),
            primitive: IntegratedStateFn {
                terms: vec![LogTerm { pole, rho }],
                linear: 0.1,
                quadratic: 0.0,
                constant: -0.05,
            },
        }
    }

    fn toy_model() -> HammersteinModel {
        HammersteinModel {
            static_path: toy_statefn(),
            blocks: vec![
                DynBlock::Real { a: -3.0e9, f: toy_statefn() },
                DynBlock::Pair {
                    sigma: -1.0e9,
                    omega: 5.0e9,
                    f1: toy_statefn(),
                    f2: toy_statefn(),
                },
            ],
            u0: 0.9,
            y0: 0.5,
        }
    }

    #[test]
    fn module_structure() {
        let v = to_verilog_a(&toy_model(), "buffer_rvf");
        assert!(v.contains("module buffer_rvf(p_in, p_out);"));
        assert!(v.contains("endmodule"));
        assert!(v.contains("analog begin"));
        assert!(v.contains("`include \"disciplines.vams\""));
        // 3 LTI states → 3 internal node declarations and 3 ddt terms.
        assert_eq!(v.matches("ddt(").count(), 3);
        assert!(v.contains("electrical x0_1;"));
        assert!(v.contains("electrical x1_1, x1_2;"));
        // Output sums all states plus the static path.
        assert!(v.contains("V(p_out) <+ y_static + V(x0_1) + V(x1_1) + V(x1_2);"));
    }

    #[test]
    fn log_terms_emitted_per_pair() {
        let v = to_verilog_a(&toy_model(), "m");
        // 4 state functions × 1 pair each → 4 ln() and 4 atan2().
        assert_eq!(v.matches("ln(").count(), 4);
        assert_eq!(v.matches("atan2(").count(), 4);
    }

    #[test]
    fn integral_expr_matches_rust_evaluation() {
        // Evaluate the generated expression manually at a point and
        // compare against IntegratedStateFn::eval.
        let f = toy_statefn();
        let u = 1.3_f64;
        let p = &f.primitive;
        let mut want = p.constant + p.linear * u;
        for t in &p.terms {
            let (a, b) = (t.pole.re, t.pole.im);
            let (c, d) = (t.rho.re, t.rho.im);
            want += c * ((u - a) * (u - a) + b * b).ln() - 2.0 * d * (-b).atan2(u - a);
        }
        assert!(
            (want - p.eval(u)).abs() < 1e-12,
            "emitted formula disagrees: {want} vs {}",
            p.eval(u)
        );
    }
}
