//! Lossless plain-text serialization of [`HammersteinModel`].
//!
//! The format is line-oriented and versioned:
//!
//! ```text
//! rvf-hammerstein v1
//! anchor <u0> <y0>
//! static <d> <e> <const> <n_pairs>
//! pair <pole_re> <pole_im> <rho_re> <rho_im>
//! …
//! blocks <n>
//! real <a>
//! fn <d> <e> <const> <n_pairs>
//! pair …
//! pair_block <sigma> <omega>
//! fn …        (component 1)
//! fn …        (component 2)
//! end
//! ```

use rvf_numerics::Complex;
use rvf_vecfit::{PoleEntry, PoleSet, RationalModel, Residues, ResponseTerms};

use crate::error::RvfError;
use crate::hammerstein::{DynBlock, HammersteinModel, StateFn};
use crate::integrated::{IntegratedStateFn, LogTerm};

/// Serializes a model to the versioned text format.
pub fn encode(model: &HammersteinModel) -> String {
    let mut out = String::new();
    out.push_str("rvf-hammerstein v1\n");
    out.push_str(&format!("anchor {:.17e} {:.17e}\n", model.u0, model.y0));
    out.push_str("static ");
    encode_statefn(&mut out, &model.static_path);
    out.push_str(&format!("blocks {}\n", model.blocks.len()));
    for b in &model.blocks {
        match b {
            DynBlock::Real { a, f } => {
                out.push_str(&format!("real {a:.17e}\n"));
                out.push_str("fn ");
                encode_statefn(&mut out, f);
            }
            DynBlock::Pair { sigma, omega, f1, f2 } => {
                out.push_str(&format!("pair_block {sigma:.17e} {omega:.17e}\n"));
                out.push_str("fn ");
                encode_statefn(&mut out, f1);
                out.push_str("fn ");
                encode_statefn(&mut out, f2);
            }
        }
    }
    out.push_str("end\n");
    out
}

fn encode_statefn(out: &mut String, f: &StateFn) {
    let t = &f.rational.terms()[0];
    out.push_str(&format!(
        "{:.17e} {:.17e} {:.17e} {}\n",
        t.d,
        t.e,
        f.primitive.constant,
        f.primitive.terms.len()
    ));
    for term in &f.primitive.terms {
        out.push_str(&format!(
            "pair {:.17e} {:.17e} {:.17e} {:.17e}\n",
            term.pole.re, term.pole.im, term.rho.re, term.rho.im
        ));
    }
}

struct Lines<'a> {
    iter: core::iter::Enumerate<core::str::Lines<'a>>,
}

impl<'a> Lines<'a> {
    fn next(&mut self) -> Result<(usize, &'a str), RvfError> {
        for (i, raw) in self.iter.by_ref() {
            let line = raw.trim();
            if !line.is_empty() {
                return Ok((i + 1, line));
            }
        }
        Err(RvfError::Decode { line: 0, message: "unexpected end of input".into() })
    }
}

fn parse_f64(line: usize, tok: Option<&str>) -> Result<f64, RvfError> {
    tok.and_then(|t| t.parse::<f64>().ok())
        .ok_or(RvfError::Decode { line, message: "expected a number".into() })
}

fn decode_statefn(
    lines: &mut Lines<'_>,
    first: &str,
    first_line: usize,
) -> Result<StateFn, RvfError> {
    let mut it = first.split_whitespace();
    let d = parse_f64(first_line, it.next())?;
    let e = parse_f64(first_line, it.next())?;
    let constant = parse_f64(first_line, it.next())?;
    let n: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or(RvfError::Decode { line: first_line, message: "expected a pair count".into() })?;
    let mut terms = Vec::with_capacity(n);
    let mut entries = Vec::with_capacity(n);
    let mut residues = Vec::with_capacity(n);
    for _ in 0..n {
        let (ln, line) = lines.next()?;
        let mut it = line.split_whitespace();
        if it.next() != Some("pair") {
            return Err(RvfError::Decode { line: ln, message: "expected 'pair'".into() });
        }
        let pre = parse_f64(ln, it.next())?;
        let pim = parse_f64(ln, it.next())?;
        let rre = parse_f64(ln, it.next())?;
        let rim = parse_f64(ln, it.next())?;
        let pole = Complex::new(pre, pim);
        let rho = Complex::new(rre, rim);
        terms.push(LogTerm { pole, rho });
        entries.push(PoleEntry::Pair(pole));
        residues.push(rho);
    }
    let rational = RationalModel::new(
        PoleSet::new(entries),
        vec![ResponseTerms { residues: Residues(residues), d, e }],
    );
    let primitive = IntegratedStateFn { terms, linear: d, quadratic: e, constant };
    Ok(StateFn { rational, primitive })
}

/// Parses a model from the text format produced by [`encode`].
///
/// # Errors
///
/// Returns [`RvfError::Decode`] with the offending line for malformed
/// input.
pub fn decode(text: &str) -> Result<HammersteinModel, RvfError> {
    let mut lines = Lines { iter: text.lines().enumerate() };
    let (ln, header) = lines.next()?;
    if header != "rvf-hammerstein v1" {
        return Err(RvfError::Decode { line: ln, message: format!("bad header '{header}'") });
    }
    let (ln, anchor) = lines.next()?;
    let mut it = anchor.split_whitespace();
    if it.next() != Some("anchor") {
        return Err(RvfError::Decode { line: ln, message: "expected 'anchor'".into() });
    }
    let u0 = parse_f64(ln, it.next())?;
    let y0 = parse_f64(ln, it.next())?;

    let (ln, stat) = lines.next()?;
    let rest = stat
        .strip_prefix("static ")
        .ok_or(RvfError::Decode { line: ln, message: "expected 'static'".into() })?;
    let static_path = decode_statefn(&mut lines, rest, ln)?;

    let (ln, blk) = lines.next()?;
    let n_blocks: usize = blk
        .strip_prefix("blocks ")
        .and_then(|t| t.trim().parse().ok())
        .ok_or(RvfError::Decode { line: ln, message: "expected 'blocks <n>'".into() })?;
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let (ln, head) = lines.next()?;
        let mut it = head.split_whitespace();
        match it.next() {
            Some("real") => {
                let a = parse_f64(ln, it.next())?;
                let (fl, fline) = lines.next()?;
                let rest = fline
                    .strip_prefix("fn ")
                    .ok_or(RvfError::Decode { line: fl, message: "expected 'fn'".into() })?;
                let f = decode_statefn(&mut lines, rest, fl)?;
                blocks.push(DynBlock::Real { a, f });
            }
            Some("pair_block") => {
                let sigma = parse_f64(ln, it.next())?;
                let omega = parse_f64(ln, it.next())?;
                let mut fns = Vec::with_capacity(2);
                for _ in 0..2 {
                    let (fl, fline) = lines.next()?;
                    let rest = fline
                        .strip_prefix("fn ")
                        .ok_or(RvfError::Decode { line: fl, message: "expected 'fn'".into() })?;
                    fns.push(decode_statefn(&mut lines, rest, fl)?);
                }
                let f2 = fns.pop().expect("two fns");
                let f1 = fns.pop().expect("two fns");
                blocks.push(DynBlock::Pair { sigma, omega, f1, f2 });
            }
            other => {
                return Err(RvfError::Decode {
                    line: ln,
                    message: format!("unknown block kind {other:?}"),
                })
            }
        }
    }
    let (ln, end) = lines.next()?;
    if end != "end" {
        return Err(RvfError::Decode { line: ln, message: "expected 'end'".into() });
    }
    Ok(HammersteinModel { static_path, blocks, u0, y0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvf_numerics::c;

    fn toy_statefn(seed: f64) -> StateFn {
        let pole = c(0.5 + seed, 0.25);
        let rho = c(1.0 - seed, 0.5 * seed);
        let rational = RationalModel::new(
            PoleSet::new(vec![PoleEntry::Pair(pole)]),
            vec![ResponseTerms { residues: Residues(vec![rho]), d: 0.3 * seed, e: 0.0 }],
        );
        let primitive = IntegratedStateFn {
            terms: vec![LogTerm { pole, rho }],
            linear: 0.3 * seed,
            quadratic: 0.0,
            constant: seed,
        };
        StateFn { rational, primitive }
    }

    fn toy_model() -> HammersteinModel {
        HammersteinModel {
            static_path: toy_statefn(0.1),
            blocks: vec![
                DynBlock::Real { a: -2.0e9, f: toy_statefn(0.2) },
                DynBlock::Pair {
                    sigma: -1.0e9,
                    omega: 6.0e9,
                    f1: toy_statefn(0.3),
                    f2: toy_statefn(0.4),
                },
            ],
            u0: 0.9,
            y0: 0.72,
        }
    }

    #[test]
    fn round_trip_exact() {
        let m = toy_model();
        let text = encode(&m);
        let back = decode(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn round_trip_preserves_behaviour() {
        let m = toy_model();
        let back = decode(&encode(&m)).unwrap();
        for &u in &[0.4, 0.9, 1.4] {
            assert_eq!(m.static_output(u), back.static_output(u));
            let s = c(0.0, 1.0e9);
            assert_eq!(m.transfer(u, s), back.transfer(u, s));
        }
    }

    #[test]
    fn decode_errors_are_located() {
        assert!(matches!(decode("wrong header\n"), Err(RvfError::Decode { line: 1, .. })));
        let mut text = encode(&toy_model());
        text = text.replace("blocks 2", "blocks two");
        assert!(matches!(decode(&text), Err(RvfError::Decode { .. })));
        // Truncation.
        let text = encode(&toy_model());
        let cut = &text[..text.len() / 2];
        assert!(decode(cut).is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        let text = encode(&toy_model());
        let padded: String = text.lines().map(|l| format!("  {l}  \n\n")).collect();
        assert_eq!(decode(&padded).unwrap(), toy_model());
    }
}
