//! The multivariate RVF recursion (paper §III-B, eq. 16).
//!
//! For a state estimator with `q > 1` dimensions the residue functions
//! depend on several variables. RVF handles them *recursively*: fit the
//! last variable with a common-pole partial fraction expansion, which
//! turns each sample hyperplane row into a small set of coefficient
//! trajectories over the remaining variables; then recurse.
//!
//! ```text
//! r(x₁, x₂) = Σ_{p₁} r_{p₁}(x₁) / basis_{p₁}(x₂)
//! r_{p₁}(x₁) = Σ_{p₂} ρ_{p₁p₂} / basis_{p₂}(x₁)       (recursion, eq. 16)
//! ```
//!
//! The buffer experiment of the paper (and our pipeline) uses `q = 1`;
//! this module provides the general two-level recursion on gridded data,
//! exercising exactly the nesting Algorithm 1 describes (lines 18–25)
//! and the product-form closed integral of eq. 18.

use rvf_numerics::{Complex, SweepPool};
use rvf_vecfit::{auto_workers, fit_with_initial_in, PoleSet, RationalModel, VfOptions};

use crate::error::RvfError;
use crate::integrated::IntegratedStateFn;
use crate::rvf::{single_response, RvfOptions};

/// A recursively fitted bivariate function `f(x₁, x₂)`: common poles in
/// `x₂`, with every `x₂`-basis coefficient itself a rational function of
/// `x₁` (with common poles across coefficients).
#[derive(Debug, Clone, PartialEq)]
pub struct Rvf2d {
    /// Pole set of the outer (last) variable `x₂`.
    pub x2_poles: PoleSet,
    /// Whether the outer fit carried a constant column.
    pub x2_has_const: bool,
    /// Inner fits: one single-response rational model of `x₁` per outer
    /// basis coefficient (flat basis order of `x2_poles`, then the
    /// constant column when present).
    pub coefficient_fits: Vec<RationalModel>,
}

impl Rvf2d {
    /// Evaluates `f(x₁, x₂)`.
    pub fn eval(&self, x1: f64, x2: f64) -> f64 {
        // Reconstruct the x₂ basis row.
        let mut row = Vec::new();
        rvf_vecfit::basis_row(&self.x2_poles, Complex::from_re(x2), &mut row);
        if self.x2_has_const {
            row.push(Complex::ONE);
        }
        let mut acc = 0.0;
        for (phi, fit) in row.iter().zip(&self.coefficient_fits) {
            let coeff = fit.eval(0, Complex::from_re(x1)).re;
            acc += coeff * phi.re;
        }
        acc
    }

    /// Evaluates the closed-form partial integral `∫ f(x₁, x₂) dx₁`
    /// (the paper's eq. 18: the innermost variable integrates through
    /// the logs while the outer basis factors multiply through).
    pub fn integral_x1(&self, x1: f64, x2: f64) -> f64 {
        let mut row = Vec::new();
        rvf_vecfit::basis_row(&self.x2_poles, Complex::from_re(x2), &mut row);
        if self.x2_has_const {
            row.push(Complex::ONE);
        }
        let mut acc = 0.0;
        for (phi, fit) in row.iter().zip(&self.coefficient_fits) {
            let prim = IntegratedStateFn::from_state_fit(fit, 0);
            acc += prim.eval(x1) * phi.re;
        }
        acc
    }

    /// Total pole counts `(x₂ poles, max x₁ poles)`.
    pub fn pole_counts(&self) -> (usize, usize) {
        let inner = self.coefficient_fits.iter().map(|f| f.poles().n_poles()).max().unwrap_or(0);
        (self.x2_poles.n_poles(), inner)
    }
}

/// Fits `f(x₁, x₂)` sampled on the grid `x1_grid × x2_grid`
/// (`values[i][j] = f(x1_grid[i], x2_grid[j])`) by the two-level RVF
/// recursion with `n2`/`n1` poles in the outer/inner variable.
///
/// # Errors
///
/// Propagates vector fitting failures from either level.
///
/// # Panics
///
/// Panics if the value grid shape disagrees with the axis grids.
pub fn fit_recursive_2d(
    x1_grid: &[f64],
    x2_grid: &[f64],
    values: &[Vec<f64>],
    opts: &RvfOptions,
) -> Result<Rvf2d, RvfError> {
    assert_eq!(values.len(), x1_grid.len(), "row count mismatch");
    for row in values {
        assert_eq!(row.len(), x2_grid.len(), "column count mismatch");
    }
    // Level 1: common poles along x₂ across all x₁ rows. One worker
    // pool serves both recursion levels; its capacity covers whichever
    // level carries more responses — the x₁ rows here, or the inner
    // stage's up to max_state_poles + 1 coefficient trajectories — so
    // neither level loses parallelism to the other's sizing (each
    // round's worker count still resolves from its own response count).
    let x2_samples: Vec<Complex> = x2_grid.iter().map(|&v| Complex::from_re(v)).collect();
    let data: Vec<Vec<Complex>> =
        values.iter().map(|row| row.iter().map(|&v| Complex::from_re(v)).collect()).collect();
    let pool = SweepPool::new(auto_workers(opts.threads, data.len().max(opts.max_state_poles + 1)));
    let vf2 = VfOptions::state(opts.start_state_poles.max(2))
        .with_iterations(opts.state_vf_iterations)
        .with_threads(opts.threads)
        .with_stop_displacement(opts.vf_stop_displacement);
    // Grow the outer pole count until the bound is met (Algorithm 1),
    // warm-starting each increment from the previous relocated poles.
    let peak =
        values.iter().flat_map(|r| r.iter()).fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-300);
    let mut best: Option<(rvf_vecfit::VfFit, usize)> = None;
    let mut warm: Option<PoleSet> = None;
    let mut p = opts.start_state_poles.max(2);
    while p <= opts.max_state_poles {
        if x2_grid.len() < 2 * p + 2 {
            break;
        }
        let mut o = vf2.clone();
        o.n_poles = p;
        let f = fit_with_initial_in(&pool, &x2_samples, &data, &o, warm.as_ref())?;
        if opts.warm_start {
            warm = Some(f.model.poles().clone());
        }
        let better = best.as_ref().map_or(true, |(b, _)| f.rms_error < b.rms_error);
        let done = f.rms_error / peak <= opts.epsilon;
        if better {
            best = Some((f, p));
        }
        if done {
            break;
        }
        p += 2;
    }
    let (outer, _) = best.ok_or(RvfError::TooFewStates {
        got: x2_grid.len(),
        needed: 2 * opts.start_state_poles.max(2) + 2,
    })?;

    // Level 2 (the recursion): each outer basis coefficient is a
    // trajectory over x₁ — fit them with common x₁ poles.
    let n_basis = outer.model.poles().n_basis();
    let has_const = true; // VfOptions::state always carries the constant column
    let mut trajectories: Vec<Vec<f64>> = vec![Vec::with_capacity(x1_grid.len()); n_basis + 1];
    for terms in outer.model.terms() {
        let flat = terms.residues.to_flat(outer.model.poles());
        for (b, &v) in flat.iter().enumerate() {
            trajectories[b].push(v);
        }
        trajectories[n_basis].push(terms.d);
    }
    let scale =
        trajectories.iter().flat_map(|t| t.iter()).fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-300);
    let inner_stage = crate::rvf::fit_state_stage_in(&pool, x1_grid, &trajectories, scale, opts)?;
    let coefficient_fits: Vec<RationalModel> =
        (0..trajectories.len()).map(|k| single_response(&inner_stage.fit.model, k)).collect();
    Ok(Rvf2d { x2_poles: outer.model.poles().clone(), x2_has_const: has_const, coefficient_fits })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvf_numerics::linspace;

    fn grid_values(x1: &[f64], x2: &[f64], f: impl Fn(f64, f64) -> f64) -> Vec<Vec<f64>> {
        x1.iter().map(|&a| x2.iter().map(|&b| f(a, b)).collect()).collect()
    }

    #[test]
    fn separable_surface() {
        // f(x1, x2) = g(x1)·h(x2), both smooth bumps.
        let x1 = linspace(-1.0, 1.0, 41);
        let x2 = linspace(0.0, 2.0, 41);
        let f = |a: f64, b: f64| (1.0 / (1.0 + 4.0 * a * a)) * (1.0 + 0.5 * (b - 1.0).tanh());
        let values = grid_values(&x1, &x2, f);
        let opts = RvfOptions { epsilon: 1e-5, max_state_poles: 14, ..Default::default() };
        let model = fit_recursive_2d(&x1, &x2, &values, &opts).unwrap();
        let mut worst = 0.0_f64;
        for &a in x1.iter().step_by(5) {
            for &b in x2.iter().step_by(5) {
                worst = worst.max((model.eval(a, b) - f(a, b)).abs());
            }
        }
        assert!(worst < 1e-3, "worst 2d error {worst}");
    }

    #[test]
    fn non_separable_surface() {
        // A rotated saddle-ish smooth surface — cannot factor.
        let x1 = linspace(-1.0, 1.0, 45);
        let x2 = linspace(-1.0, 1.0, 45);
        let f = |a: f64, b: f64| 1.0 / (1.0 + (a + 0.6 * b) * (a + 0.6 * b) + 0.5 * b * b);
        let values = grid_values(&x1, &x2, f);
        let opts = RvfOptions { epsilon: 1e-4, max_state_poles: 16, ..Default::default() };
        let model = fit_recursive_2d(&x1, &x2, &values, &opts).unwrap();
        let mut rms = 0.0;
        let mut n = 0;
        for &a in x1.iter() {
            for &b in x2.iter() {
                let e = model.eval(a, b) - f(a, b);
                rms += e * e;
                n += 1;
            }
        }
        let rms = (rms / n as f64).sqrt();
        assert!(rms < 5e-3, "2d rms {rms}");
    }

    #[test]
    fn partial_integral_matches_quadrature() {
        let x1 = linspace(0.0, 1.0, 41);
        let x2 = linspace(0.0, 1.0, 41);
        let f = |a: f64, b: f64| (1.0 + a) / (1.0 + 2.0 * (b - 0.5) * (b - 0.5));
        let values = grid_values(&x1, &x2, f);
        let opts = RvfOptions { epsilon: 1e-6, max_state_poles: 12, ..Default::default() };
        let model = fit_recursive_2d(&x1, &x2, &values, &opts).unwrap();
        // ∫₀¹ f dx₁ at fixed x₂: trapezoid reference on the true f.
        for &b in &[0.1, 0.5, 0.9] {
            let n = 4000;
            let h = 1.0 / n as f64;
            let numeric: f64 =
                (0..n).map(|i| 0.5 * h * (f(i as f64 * h, b) + f((i + 1) as f64 * h, b))).sum();
            let analytic = model.integral_x1(1.0, b) - model.integral_x1(0.0, b);
            assert!((analytic - numeric).abs() < 2e-3, "at x2={b}: {analytic} vs {numeric}");
        }
    }

    #[test]
    fn pole_counts_reported() {
        let x1 = linspace(0.0, 1.0, 30);
        let x2 = linspace(0.0, 1.0, 30);
        let values = grid_values(&x1, &x2, |a, b| a + b);
        let opts = RvfOptions { epsilon: 1e-3, ..Default::default() };
        let model = fit_recursive_2d(&x1, &x2, &values, &opts).unwrap();
        let (p2, p1) = model.pole_counts();
        assert!(p2 >= 2 && p1 >= 2);
    }
}
