//! Error type for model extraction.

use core::fmt;

use rvf_circuit::CircuitError;
use rvf_numerics::NumericsError;
use rvf_tft::TftError;
use rvf_vecfit::VecfitError;

use crate::serving::ServingError;

/// Errors produced by the RVF extraction pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RvfError {
    /// The error target was not reached within the pole budget.
    ToleranceNotReached {
        /// Which stage failed (`"frequency"` or `"state"`).
        stage: &'static str,
        /// Relative RMS error achieved.
        achieved: f64,
        /// Requested tolerance.
        epsilon: f64,
        /// Pole budget that was exhausted.
        max_poles: usize,
    },
    /// The dataset has too few state points for the recursion.
    TooFewStates {
        /// States available.
        got: usize,
        /// Minimum required.
        needed: usize,
    },
    /// A model text serialization could not be parsed.
    Decode {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        message: String,
    },
    /// Frequency- or state-axis vector fitting failed.
    Vecfit(VecfitError),
    /// TFT extraction failed.
    Tft(TftError),
    /// Circuit simulation failed.
    Circuit(CircuitError),
    /// Numerical kernel failure.
    Numerics(NumericsError),
    /// The compiled serving runtime rejected a request.
    Serving(ServingError),
}

impl fmt::Display for RvfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ToleranceNotReached { stage, achieved, epsilon, max_poles } => write!(
                f,
                "{stage} fit reached {achieved:.3e} (target {epsilon:.3e}) with {max_poles} poles"
            ),
            Self::TooFewStates { got, needed } => {
                write!(f, "dataset has {got} state points, need at least {needed}")
            }
            Self::Decode { line, message } => {
                write!(f, "model decode error at line {line}: {message}")
            }
            Self::Vecfit(e) => write!(f, "vector fitting failed: {e}"),
            Self::Tft(e) => write!(f, "tft extraction failed: {e}"),
            Self::Circuit(e) => write!(f, "circuit analysis failed: {e}"),
            Self::Numerics(e) => write!(f, "numerical kernel failed: {e}"),
            Self::Serving(e) => write!(f, "serving runtime failed: {e}"),
        }
    }
}

impl std::error::Error for RvfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Vecfit(e) => Some(e),
            Self::Tft(e) => Some(e),
            Self::Circuit(e) => Some(e),
            Self::Numerics(e) => Some(e),
            Self::Serving(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VecfitError> for RvfError {
    fn from(e: VecfitError) -> Self {
        Self::Vecfit(e)
    }
}

impl From<TftError> for RvfError {
    fn from(e: TftError) -> Self {
        Self::Tft(e)
    }
}

impl From<CircuitError> for RvfError {
    fn from(e: CircuitError) -> Self {
        Self::Circuit(e)
    }
}

impl From<NumericsError> for RvfError {
    fn from(e: NumericsError) -> Self {
        Self::Numerics(e)
    }
}

impl From<ServingError> for RvfError {
    fn from(e: ServingError) -> Self {
        Self::Serving(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_chaining() {
        use std::error::Error;
        let e = RvfError::ToleranceNotReached {
            stage: "frequency",
            achieved: 1e-2,
            epsilon: 1e-3,
            max_poles: 24,
        };
        assert!(e.to_string().contains("frequency"));
        let e = RvfError::from(VecfitError::EmptyData);
        assert!(e.source().is_some());
        let e = RvfError::from(ServingError::BadDt { dt: 0.0 });
        assert!(e.to_string().contains("serving"));
        assert!(e.source().is_some());
    }
}
