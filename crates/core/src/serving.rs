//! Compiled batch-serving runtime for extracted Hammerstein models.
//!
//! [`HammersteinModel::simulate`](crate::HammersteinModel::simulate) is
//! the deployment hot path (the paper's Table I "Speedup" is a claim
//! about *evaluation* cost), but the reference loop pays per sample ×
//! per block: an enum match to find each block's kind, and — much worse
//! — an independent log-term pass for every response of every block,
//! even though the two responses of a pair block share one fitted pole
//! set and the input value `u` is the same everywhere.
//!
//! [`CompiledSim`] lowers a model **once** into flat structure-of-arrays
//! tables:
//!
//! * the static nonlinearities become rows of one coefficient matrix
//!   over a *shared feature basis* evaluated once per sample — the
//!   power basis `[1, u, u², …]` for polynomial stages (the CAFFEINE
//!   primitives) plus, for the RVF log-form primitives, the pair
//!   `(Re ln(u − x̃), Im ln(u − x̃))` per **distinct** pole. Pole
//!   sequences are deduplicated by bit pattern, so the two responses of
//!   a pair block price their transcendentals once instead of twice;
//! * every LTI block becomes one uniform 2-wide state slot with
//!   contiguous first-order-hold coefficients (a real pole is a pair
//!   with zero imaginary parts — the extra multiplies are by ±0.0 and
//!   exact), so the inner loop has **no enum dispatch per block per
//!   sample**;
//! * consecutive equal inputs (`u.to_bits()` unchanged — the flat
//!   stretches of a bit pattern) reuse the previous drive vector
//!   instead of re-evaluating the basis, which is exact because the
//!   drives are pure functions of `u`.
//!
//! Every arithmetic expression in the kernel reproduces the reference
//! loop's operation order, so the compiled single-stimulus output is
//! equal sample-for-sample under `f64` comparison (`==`; signed zeros
//! may differ in sign) — the reference loop stays available as
//! [`HammersteinModel::simulate_reference`](crate::HammersteinModel::simulate_reference)
//! and is the test oracle.
//!
//! [`CompiledSim::simulate_batch`] fans many stimuli over the
//! persistent [`SweepPool`] runtime (one task per lane group, borrowed
//! pools via [`CompiledSim::simulate_batch_in`]), and orders the
//! per-block state updates lane-innermost so they vectorize across the
//! batch. Batch output is bit-identical to per-stimulus serial calls
//! for every worker count.
//!
//! # Examples
//!
//! ```
//! use rvf_core::{CompiledSim, SimBuilder};
//! use rvf_numerics::c;
//! use rvf_core::{IntegratedStateFn, LogTerm};
//!
//! // One real pole driven by f(u) = u (linear drive), zero static path.
//! let mut b = SimBuilder::new();
//! let zero = b.drive_poly(&[0.0]);
//! b.set_static_drive(zero);
//! let f = b.drive_rational(&IntegratedStateFn {
//!     terms: vec![],
//!     linear: 1.0e9,
//!     quadratic: 0.0,
//!     constant: 0.0,
//! });
//! b.block_real(-1.0e9, f);
//! let sim: CompiledSim = b.build();
//! let y = sim.simulate(1.0e-10, &[0.0, 1.0, 1.0, 1.0]);
//! assert_eq!(y.len(), 4);
//! assert!(y[0].abs() < 1e-15); // starts in steady state
//! ```

use std::collections::HashMap;

use rvf_numerics::{Complex, FohPair, FohScalar, SweepConfig, SweepPool};

use crate::integrated::IntegratedStateFn;

/// Lane width of the batch kernel: stimuli in one task are advanced in
/// lockstep groups of up to this many, so the per-block state updates
/// (lane-innermost loops over contiguous slots) vectorize across the
/// batch. Per-lane arithmetic never crosses lanes, which is what makes
/// batch output bit-identical to per-stimulus serial runs.
pub const BATCH_LANES: usize = 8;

/// A static-stage drive registered with [`SimBuilder`].
#[derive(Debug, Clone)]
enum DriveSpec {
    /// RVF log-form primitive: quadratic head + logarithmic terms.
    Rational { c: [f64; 3], terms: Vec<(Complex, Complex)> },
    /// Polynomial primitive by ascending coefficients (CAFFEINE path).
    Poly { coeffs: Vec<f64> },
}

/// An LTI block registered with [`SimBuilder`].
#[derive(Debug, Clone, Copy)]
enum BlockSpec {
    Real { a: f64, drive: usize },
    Pair { sigma: f64, omega: f64, d1: usize, d2: usize },
}

/// Builds a [`CompiledSim`] from drives (static-stage primitives) and
/// LTI blocks.
///
/// This is the lowering entry point shared by the RVF model
/// ([`HammersteinModel::compile`](crate::HammersteinModel::compile))
/// and the CAFFEINE baseline (`rvf-caffeine`): register every stage
/// primitive as a *drive row*, point the blocks at their rows, mark the
/// static path, and [`build`](SimBuilder::build).
#[derive(Debug, Clone, Default)]
pub struct SimBuilder {
    drives: Vec<DriveSpec>,
    blocks: Vec<BlockSpec>,
    static_drive: Option<usize>,
}

impl SimBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the analytic primitive of an RVF state fit as a drive
    /// row and returns its row id. The row evaluates exactly like
    /// [`IntegratedStateFn::eval`].
    pub fn drive_rational(&mut self, primitive: &IntegratedStateFn) -> usize {
        // 0.5·q is exact (power-of-two scaling), so precomputing it
        // preserves the reference expression `… + 0.5*q*u*u` bit for bit.
        self.drives.push(DriveSpec::Rational {
            c: [primitive.constant, primitive.linear, 0.5 * primitive.quadratic],
            terms: primitive.terms.iter().map(|t| (t.pole, t.rho)).collect(),
        });
        self.drives.len() - 1
    }

    /// Registers a polynomial drive row `Σ cⱼ·uʲ` (ascending
    /// coefficients) and returns its row id. Rows of this family are
    /// packed into one matrix over the shared power basis
    /// `[1, u, u², …]`, so all of them together cost one matvec per
    /// sample.
    pub fn drive_poly(&mut self, coeffs: &[f64]) -> usize {
        self.drives.push(DriveSpec::Poly { coeffs: coeffs.to_vec() });
        self.drives.len() - 1
    }

    /// Marks `row` as the static path: its value is added directly to
    /// every output sample.
    pub fn set_static_drive(&mut self, row: usize) {
        self.static_drive = Some(row);
    }

    /// Adds a first-order block `ẏ = a·y + f(u)` fed by drive `drive`.
    pub fn block_real(&mut self, a: f64, drive: usize) {
        self.blocks.push(BlockSpec::Real { a, drive });
    }

    /// Adds a second-order block for the pole pair `σ ± jω` fed by the
    /// input-shifted component drives `(d1, d2)`.
    pub fn block_pair(&mut self, sigma: f64, omega: f64, d1: usize, d2: usize) {
        self.blocks.push(BlockSpec::Pair { sigma, omega, d1, d2 });
    }

    /// Lowers the registered drives and blocks into the packed runtime
    /// tables.
    ///
    /// # Panics
    ///
    /// Panics if no static drive was set or a block references an
    /// out-of-range drive row — both are construction bugs of the
    /// caller, not data-dependent conditions.
    pub fn build(mut self) -> CompiledSim {
        let static_row = self.static_drive.expect("SimBuilder: static drive row not set");
        assert!(static_row < self.drives.len(), "SimBuilder: static drive row out of range");
        let n_user = self.drives.len();
        let check = |d: usize| {
            assert!(d < n_user, "SimBuilder: block drive row {d} out of range ({n_user} rows)")
        };
        // Real blocks need a second (identically zero) drive component
        // so every block is a uniform 2-wide slot; one synthetic all-zero
        // row serves them all.
        let needs_zero = self.blocks.iter().any(|b| matches!(b, BlockSpec::Real { .. }));
        let zero_row = if needs_zero {
            self.drives.push(DriveSpec::Rational { c: [0.0; 3], terms: Vec::new() });
            self.drives.len() - 1
        } else {
            usize::MAX
        };

        let n_drives = self.drives.len();
        let mut head = vec![[0.0f64; 3]; n_drives];
        let mut row_off = Vec::with_capacity(n_drives + 1);
        let mut term_w: Vec<[f64; 2]> = Vec::new();
        let mut term_pole: Vec<usize> = Vec::new();
        let mut poles: Vec<Complex> = Vec::new();
        // Pole-sequence dedup: rows whose pole sequences agree bit for
        // bit (the two responses of a pair block — they come from one
        // stage fit) share one run of feature slots, so the ln per pole
        // is paid once per sample however many rows consume it.
        let mut runs: HashMap<Vec<(u64, u64)>, usize> = HashMap::new();
        let mut prow: Vec<usize> = Vec::new();
        let mut pcoeffs: Vec<Vec<f64>> = Vec::new();
        row_off.push(0);
        for (d, spec) in self.drives.iter().enumerate() {
            match spec {
                DriveSpec::Rational { c, terms } => {
                    head[d] = *c;
                    if !terms.is_empty() {
                        let sig: Vec<(u64, u64)> =
                            terms.iter().map(|(p, _)| (p.re.to_bits(), p.im.to_bits())).collect();
                        let start = *runs.entry(sig).or_insert_with(|| {
                            let s = poles.len();
                            poles.extend(terms.iter().map(|(p, _)| *p));
                            s
                        });
                        for (i, (_, rho)) in terms.iter().enumerate() {
                            term_w.push([rho.re, rho.im]);
                            term_pole.push(start + i);
                        }
                    }
                }
                DriveSpec::Poly { coeffs } => {
                    prow.push(d);
                    pcoeffs.push(coeffs.clone());
                }
            }
            row_off.push(term_w.len());
        }
        let pdeg = pcoeffs.iter().map(|c| c.len().saturating_sub(1)).max().unwrap_or(0);
        let mut pmat = vec![0.0f64; prow.len() * (pdeg + 1)];
        for (r, coeffs) in pcoeffs.iter().enumerate() {
            pmat[r * (pdeg + 1)..r * (pdeg + 1) + coeffs.len()].copy_from_slice(coeffs);
        }

        let n_blocks = self.blocks.len();
        let mut pair = Vec::with_capacity(n_blocks);
        let mut sigma = Vec::with_capacity(n_blocks);
        let mut omega = Vec::with_capacity(n_blocks);
        let mut d1 = Vec::with_capacity(n_blocks);
        let mut d2 = Vec::with_capacity(n_blocks);
        for b in &self.blocks {
            match *b {
                BlockSpec::Real { a, drive } => {
                    check(drive);
                    pair.push(false);
                    sigma.push(a);
                    omega.push(0.0);
                    d1.push(drive);
                    d2.push(zero_row);
                }
                BlockSpec::Pair { sigma: s, omega: w, d1: a, d2: bb } => {
                    check(a);
                    check(bb);
                    pair.push(true);
                    sigma.push(s);
                    omega.push(w);
                    d1.push(a);
                    d2.push(bb);
                }
            }
        }

        CompiledSim {
            threads: 1,
            static_row,
            n_drives,
            head,
            row_off,
            term_w,
            term_pole,
            poles,
            prow,
            pmat,
            pdeg,
            pair,
            sigma,
            omega,
            d1,
            d2,
        }
    }
}

/// Per-block first-order-hold coefficients in the uniform 2-wide
/// representation (real blocks carry exact zeros in the imaginary
/// parts), laid out contiguously for the batch kernel.
#[derive(Debug, Clone, Copy)]
struct BlockCoef {
    er: f64,
    ei: f64,
    g1r: f64,
    g1i: f64,
    g2r: f64,
    g2i: f64,
}

/// A Hammerstein model lowered into flat serving tables.
///
/// Build one with [`HammersteinModel::compile`](crate::HammersteinModel::compile)
/// (or [`SimBuilder`] directly), then evaluate stimuli with
/// [`simulate`](CompiledSim::simulate) /
/// [`simulate_batch`](CompiledSim::simulate_batch). Compilation is
/// cheap (no transcendentals — the first-order-hold coefficients are
/// computed per `dt` at simulation time), but callers serving many
/// requests should still compile once and reuse the instance.
#[derive(Debug, Clone)]
pub struct CompiledSim {
    /// Worker threads for [`simulate_batch`](CompiledSim::simulate_batch)
    /// (`1` = serial, `0` = one per core).
    threads: usize,
    static_row: usize,
    n_drives: usize,
    /// `[c0, c1, 0.5·q]` quadratic heads, one row per drive.
    head: Vec<[f64; 3]>,
    /// CSR offsets into `term_w`/`term_pole`, length `n_drives + 1`.
    row_off: Vec<usize>,
    /// `(Re ρ, Im ρ)` per log term.
    term_w: Vec<[f64; 2]>,
    /// Distinct-pole feature index per log term.
    term_pole: Vec<usize>,
    /// Deduplicated pole table (the shared log-feature basis).
    poles: Vec<Complex>,
    /// Drive rows evaluated by the power-basis matvec.
    prow: Vec<usize>,
    /// Power-basis coefficient matrix, `prow.len() × (pdeg + 1)`.
    pmat: Vec<f64>,
    pdeg: usize,
    /// Block kind (pair vs real) — used only when preparing the FOH
    /// coefficients for a `dt`, never in the per-sample loop.
    pair: Vec<bool>,
    sigma: Vec<f64>,
    omega: Vec<f64>,
    /// Drive row feeding each block's first/second state component.
    d1: Vec<usize>,
    d2: Vec<usize>,
}

/// Reusable per-worker buffers of the serving kernel. One instance per
/// pool worker keeps the batch path allocation-free across lane groups
/// (apart from the output vectors themselves).
#[derive(Debug, Clone, Default)]
pub struct SimScratch {
    /// Previous-sample drive values, `[drive][lane]`.
    v0: Vec<f64>,
    /// Current-sample drive values, `[drive][lane]`.
    v1: Vec<f64>,
    /// Block state, real components, `[block][lane]`.
    sre: Vec<f64>,
    /// Block state, imaginary components, `[block][lane]`.
    sim: Vec<f64>,
    /// Per-lane log-feature temporaries (one slot per distinct pole).
    lr: Vec<f64>,
    li: Vec<f64>,
    /// Per-lane shared power basis `[1, u, …, u^pdeg]`.
    pw: Vec<f64>,
    /// Per-lane bit pattern of the last input that rebuilt the drives.
    uprev: Vec<u64>,
    /// Per-lane output accumulator of the emit pass.
    acc: Vec<f64>,
}

impl SimScratch {
    /// Sizes every buffer for `lanes` concurrent stimuli of `sim`.
    fn reset(&mut self, sim: &CompiledSim, lanes: usize) {
        let resize = |v: &mut Vec<f64>, n: usize| {
            v.clear();
            v.resize(n, 0.0);
        };
        resize(&mut self.v0, sim.n_drives * lanes);
        resize(&mut self.v1, sim.n_drives * lanes);
        resize(&mut self.sre, sim.n_blocks() * lanes);
        resize(&mut self.sim, sim.n_blocks() * lanes);
        resize(&mut self.lr, sim.poles.len());
        resize(&mut self.li, sim.poles.len());
        resize(&mut self.pw, sim.pdeg + 1);
        resize(&mut self.acc, lanes);
        self.uprev.clear();
        self.uprev.resize(lanes, 0);
    }
}

/// Evaluates every drive row at input `u` into lane `l` of `v1`.
///
/// Pass 1 fills the shared log-feature basis (one `ln` per *distinct*
/// pole), pass 2 accumulates the quadratic heads + CSR log terms in the
/// reference operation order, pass 3 runs the power-basis matvec for
/// the polynomial rows.
fn eval_drives_lane(
    sim: &CompiledSim,
    u: f64,
    l: usize,
    lanes: usize,
    v1: &mut [f64],
    lr: &mut [f64],
    li: &mut [f64],
    pw: &mut [f64],
) {
    for (p, &pole) in sim.poles.iter().enumerate() {
        let z = (Complex::from_re(u) - pole).ln();
        lr[p] = z.re;
        li[p] = z.im;
    }
    for d in 0..sim.n_drives {
        let h = sim.head[d];
        // Matches `constant + linear*u + 0.5*quadratic*u*u` bit for bit
        // (h[2] is the exactly-precomputed 0.5·q).
        let mut acc = h[0] + h[1] * u + h[2] * u * u;
        for t in sim.row_off[d]..sim.row_off[d + 1] {
            let w = sim.term_w[t];
            let p = sim.term_pole[t];
            // Matches `2.0 * (rho * z.ln()).re`.
            acc += 2.0 * (w[0] * lr[p] - w[1] * li[p]);
        }
        v1[d * lanes + l] = acc;
    }
    if !sim.prow.is_empty() {
        let width = sim.pdeg + 1;
        pw[0] = 1.0;
        for j in 1..width {
            pw[j] = pw[j - 1] * u;
        }
        for (r, &d) in sim.prow.iter().enumerate() {
            let row = &sim.pmat[r * width..(r + 1) * width];
            let mut acc = 0.0;
            for j in 0..width {
                acc += row[j] * pw[j];
            }
            v1[d * lanes + l] = acc;
        }
    }
}

impl CompiledSim {
    /// Sets the worker-thread request of
    /// [`simulate_batch`](CompiledSim::simulate_batch) (`1` = serial —
    /// the default, `0` = one worker per core), following the
    /// `VfOptions::threads` convention.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configured batch worker request.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of drive rows (static stages, including the synthetic
    /// zero row real blocks share).
    pub fn n_drives(&self) -> usize {
        self.n_drives
    }

    /// Number of LTI blocks.
    pub fn n_blocks(&self) -> usize {
        self.pair.len()
    }

    /// Number of *distinct* poles in the shared log-feature basis —
    /// after dedup, so a pair block's two responses count their common
    /// poles once.
    pub fn n_pole_features(&self) -> usize {
        self.poles.len()
    }

    /// First-order-hold coefficients of every block for step `dt`,
    /// computed with the exact per-kind propagators of the reference
    /// loop.
    fn propagators(&self, dt: f64) -> Vec<BlockCoef> {
        (0..self.n_blocks())
            .map(|b| {
                if self.pair[b] {
                    let p = FohPair::new(self.sigma[b], self.omega[b], dt);
                    BlockCoef {
                        er: p.e.re,
                        ei: p.e.im,
                        g1r: p.g1.re,
                        g1i: p.g1.im,
                        g2r: p.g2.re,
                        g2i: p.g2.im,
                    }
                } else {
                    let p = FohScalar::new(self.sigma[b], dt);
                    BlockCoef { er: p.e, ei: 0.0, g1r: p.g1, g1i: 0.0, g2r: p.g2, g2i: 0.0 }
                }
            })
            .collect()
    }

    /// Advances one lane group of equal-length stimuli through the
    /// compiled tables. This is the whole serving kernel: single
    /// stimuli run it with one lane, the batch path with up to
    /// [`BATCH_LANES`]; per-lane arithmetic never crosses lanes, so the
    /// grouping is unobservable in the output bits.
    fn run_group(
        &self,
        coef: &[BlockCoef],
        stims: &[&[f64]],
        scratch: &mut SimScratch,
    ) -> Vec<Vec<f64>> {
        let lanes = stims.len();
        let n = stims[0].len();
        let mut outs: Vec<Vec<f64>> = stims.iter().map(|s| Vec::with_capacity(s.len())).collect();
        if n == 0 {
            return outs;
        }
        scratch.reset(self, lanes);
        let SimScratch { v0, v1, sre, sim, lr, li, pw, uprev, acc } = scratch;
        let n_blocks = self.n_blocks();

        // t = 0: build the drives, start every block in steady state
        // for its first input (the circuit's DC operating point).
        for (l, stim) in stims.iter().enumerate() {
            let u = stim[0];
            eval_drives_lane(self, u, l, lanes, v1, lr, li, pw);
            uprev[l] = u.to_bits();
        }
        for b in 0..n_blocks {
            let (o1, o2, sb) = (self.d1[b] * lanes, self.d2[b] * lanes, b * lanes);
            if self.pair[b] {
                let lambda = Complex::new(self.sigma[b], -self.omega[b]);
                for l in 0..lanes {
                    let w = Complex::new(v1[o1 + l], v1[o2 + l]);
                    let z = -(w / lambda);
                    sre[sb + l] = z.re;
                    sim[sb + l] = z.im;
                }
            } else {
                let a = self.sigma[b];
                for l in 0..lanes {
                    let v = v1[o1 + l];
                    sre[sb + l] = -v / a;
                    sim[sb + l] = 0.0;
                }
            }
        }
        emit(self, lanes, v1, sre, sim, acc);
        for (l, out) in outs.iter_mut().enumerate() {
            out.push(acc[l]);
        }
        core::mem::swap(v0, v1);

        for t in 1..n {
            // Drive pass, lane-at-a-time: re-evaluate only the lanes
            // whose input actually changed (bit compare — flat
            // bit-pattern stretches skip the transcendentals entirely;
            // exact, since the drives are pure functions of `u`).
            for (l, stim) in stims.iter().enumerate() {
                let u = stim[t];
                let bits = u.to_bits();
                if bits == uprev[l] {
                    for d in 0..self.n_drives {
                        v1[d * lanes + l] = v0[d * lanes + l];
                    }
                } else {
                    eval_drives_lane(self, u, l, lanes, v1, lr, li, pw);
                    uprev[l] = bits;
                }
            }
            // Block pass, lane-innermost: uniform complex-scalar FOH
            // madds over contiguous slots — no per-block dispatch, and
            // the lane loops vectorize across the batch.
            for b in 0..n_blocks {
                let c = coef[b];
                let (o1, o2, sb) = (self.d1[b] * lanes, self.d2[b] * lanes, b * lanes);
                for l in 0..lanes {
                    let (xr, xi) = (sre[sb + l], sim[sb + l]);
                    let (w0r, w0i) = (v0[o1 + l], v0[o2 + l]);
                    let (dvr, dvi) = (v1[o1 + l] - w0r, v1[o2 + l] - w0i);
                    // e·z + g1·w0 + g2·(w1 − w0), component-wise in the
                    // reference association.
                    sre[sb + l] = (c.er * xr - c.ei * xi + (c.g1r * w0r - c.g1i * w0i))
                        + (c.g2r * dvr - c.g2i * dvi);
                    sim[sb + l] = (c.er * xi + c.ei * xr + (c.g1r * w0i + c.g1i * w0r))
                        + (c.g2r * dvi + c.g2i * dvr);
                }
            }
            emit(self, lanes, v1, sre, sim, acc);
            for (l, out) in outs.iter_mut().enumerate() {
                out.push(acc[l]);
            }
            core::mem::swap(v0, v1);
        }
        outs
    }

    /// Simulates one stimulus sampled at fixed `dt` — the compiled
    /// equivalent of
    /// [`HammersteinModel::simulate_reference`](crate::HammersteinModel::simulate_reference),
    /// equal to it sample-for-sample under `f64` comparison.
    pub fn simulate(&self, dt: f64, inputs: &[f64]) -> Vec<f64> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let coef = self.propagators(dt);
        let mut scratch = SimScratch::default();
        self.run_group(&coef, &[inputs], &mut scratch).pop().expect("one lane in, one lane out")
    }

    /// Pushes many stimuli through the model, fanning lane groups of up
    /// to [`BATCH_LANES`] consecutive equal-length stimuli over the
    /// configured worker count ([`with_threads`](CompiledSim::with_threads);
    /// `1` = serial default). Outputs come back in stimulus order and
    /// are **bit-identical** to calling
    /// [`simulate`](CompiledSim::simulate) per stimulus, for every
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked mid-batch (the kernel itself has no
    /// panicking paths for finite or non-finite input data).
    pub fn simulate_batch(&self, dt: f64, stimuli: &[&[f64]]) -> Vec<Vec<f64>> {
        let groups = lane_groups(stimuli);
        let workers = rvf_numerics::resolve_threads(self.threads).min(groups.len().max(1));
        if workers <= 1 {
            let coef = self.propagators(dt);
            let mut scratch = SimScratch::default();
            let mut out = Vec::with_capacity(stimuli.len());
            for g in &groups {
                out.extend(self.run_group(&coef, &stimuli[g.clone()], &mut scratch));
            }
            return out;
        }
        let pool = SweepPool::new(workers);
        self.simulate_batch_in(&pool, dt, stimuli)
    }

    /// [`simulate_batch`](CompiledSim::simulate_batch) on a borrowed
    /// [`SweepPool`] (the PR-4 `_in` convention): lane groups run as one
    /// round on the pool's already-parked workers, so a serving process
    /// pays the spawn cost once, not per batch. The effective worker
    /// count is the pool capacity clamped to the group count; output is
    /// bit-identical to the serial path regardless.
    ///
    /// # Panics
    ///
    /// Panics if a pool worker panicked mid-batch.
    pub fn simulate_batch_in(
        &self,
        pool: &SweepPool,
        dt: f64,
        stimuli: &[&[f64]],
    ) -> Vec<Vec<f64>> {
        let groups = lane_groups(stimuli);
        let coef = self.propagators(dt);
        let mut scratch: Vec<SimScratch> = vec![SimScratch::default(); pool.workers()];
        let per_group = pool
            .run_with(groups.len(), &SweepConfig::threads(pool.workers()), &mut scratch, |ws, g| {
                Ok::<_, core::convert::Infallible>(self.run_group(
                    &coef,
                    &stimuli[groups[g].clone()],
                    ws,
                ))
            })
            .unwrap_or_else(|e| panic!("serving batch worker failed: {e}"));
        let mut out = Vec::with_capacity(stimuli.len());
        for g in per_group {
            out.extend(g);
        }
        out
    }
}

/// Emit pass: output = static drive value + Σ block state components,
/// accumulated per block (`y += sre + sim`) in model block order — the
/// reference summation.
fn emit(sim: &CompiledSim, lanes: usize, v1: &[f64], sre: &[f64], simc: &[f64], acc: &mut [f64]) {
    let so = sim.static_row * lanes;
    acc[..lanes].copy_from_slice(&v1[so..so + lanes]);
    for b in 0..sim.n_blocks() {
        let sb = b * lanes;
        for l in 0..lanes {
            acc[l] += sre[sb + l] + simc[sb + l];
        }
    }
}

/// Splits stimuli into maximal runs of consecutive equal-length inputs,
/// chopped to [`BATCH_LANES`]. Deterministic and order-preserving, so
/// the flattened group outputs are already in stimulus order.
fn lane_groups(stimuli: &[&[f64]]) -> Vec<core::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut start = 0;
    while start < stimuli.len() {
        let len = stimuli[start].len();
        let mut end = start + 1;
        while end < stimuli.len() && end - start < BATCH_LANES && stimuli[end].len() == len {
            end += 1;
        }
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_real_sim(a: f64, slope: f64) -> CompiledSim {
        let mut b = SimBuilder::new();
        let zero = b.drive_poly(&[0.0]);
        b.set_static_drive(zero);
        let f = b.drive_rational(&IntegratedStateFn {
            terms: vec![],
            linear: slope,
            quadratic: 0.0,
            constant: 0.0,
        });
        b.block_real(a, f);
        b.build()
    }

    #[test]
    fn real_block_step_response_matches_analytic() {
        // ẏ = a·y + w0·u with a = −w0: unit-DC-gain low-pass.
        let w0 = 1.0e9;
        let sim = linear_real_sim(-w0, w0);
        let dt = 1.0e-11;
        let n = 600;
        let mut u = vec![0.0; n];
        for v in u.iter_mut().skip(1) {
            *v = 1.0;
        }
        let y = sim.simulate(dt, &u);
        let t_end = (n - 1) as f64 * dt;
        let want = 1.0 - (-w0 * (t_end - dt)).exp();
        assert!((y[n - 1] - want).abs() < 2e-3, "{} vs {want}", y[n - 1]);
        assert!(y[0].abs() < 1e-12, "starts in steady state");
    }

    #[test]
    fn memoized_constant_input_stays_in_steady_state() {
        let sim = linear_real_sim(-2.0e9, 3.0);
        let y = sim.simulate(1e-10, &vec![0.75; 200]);
        for v in &y {
            assert_eq!(*v, y[0], "constant input must hold the DC point exactly");
        }
    }

    #[test]
    fn pair_pole_dedup_shares_features_between_components() {
        let pole = Complex::new(0.3, 0.8);
        let t1 = IntegratedStateFn {
            terms: vec![crate::LogTerm { pole, rho: Complex::new(1.0, -0.5) }],
            linear: 0.1,
            quadratic: 0.0,
            constant: 0.0,
        };
        let t2 = IntegratedStateFn {
            terms: vec![crate::LogTerm { pole, rho: Complex::new(-0.25, 0.4) }],
            linear: 0.2,
            quadratic: 0.0,
            constant: 0.0,
        };
        let mut b = SimBuilder::new();
        let s = b.drive_poly(&[0.0]);
        b.set_static_drive(s);
        let d1 = b.drive_rational(&t1);
        let d2 = b.drive_rational(&t2);
        b.block_pair(-1.0e9, 4.0e9, d1, d2);
        let sim = b.build();
        // Identical pole sequences collapse to ONE feature slot.
        assert_eq!(sim.n_pole_features(), 1);
        assert_eq!(sim.n_drives(), 3);
    }

    #[test]
    fn distinct_pole_sequences_are_not_merged() {
        let term = |re: f64| IntegratedStateFn {
            terms: vec![crate::LogTerm {
                pole: Complex::new(re, 0.5),
                rho: Complex::new(1.0, 0.0),
            }],
            linear: 0.0,
            quadratic: 0.0,
            constant: 0.0,
        };
        let mut b = SimBuilder::new();
        let d1 = b.drive_rational(&term(0.1));
        let d2 = b.drive_rational(&term(0.2));
        b.set_static_drive(d1);
        b.block_pair(-1.0e9, 2.0e9, d1, d2);
        assert_eq!(b.build().n_pole_features(), 2);
    }

    #[test]
    fn batch_equals_serial_on_mixed_lengths() {
        let sim = linear_real_sim(-1.5e9, 2.0);
        let stims: Vec<Vec<f64>> = (0..11)
            .map(|k| (0..(5 + 13 * k % 29)).map(|i| ((i * (k + 1)) as f64 * 0.37).sin()).collect())
            .collect();
        let refs: Vec<&[f64]> = stims.iter().map(Vec::as_slice).collect();
        let serial: Vec<Vec<f64>> = refs.iter().map(|s| sim.simulate(2.0e-11, s)).collect();
        for threads in [1, 2, 4, 0] {
            let got = sim.clone().with_threads(threads).simulate_batch(2.0e-11, &refs);
            for (k, (a, b)) in got.iter().zip(&serial).enumerate() {
                assert_eq!(a.len(), b.len(), "stimulus {k}, threads {threads}");
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "stimulus {k}, threads {threads}");
                }
            }
        }
    }

    #[test]
    fn batch_on_borrowed_pool_matches_owned() {
        let sim = linear_real_sim(-1.0e9, 1.0);
        let stims: Vec<Vec<f64>> = (0..20).map(|k| vec![0.1 * k as f64; 40]).collect();
        let refs: Vec<&[f64]> = stims.iter().map(Vec::as_slice).collect();
        let owned = sim.simulate_batch(1e-10, &refs);
        let pool = SweepPool::new(3);
        let borrowed = sim.simulate_batch_in(&pool, 1e-10, &refs);
        assert_eq!(owned, borrowed);
        assert!(pool.sweeps() >= 1);
    }

    #[test]
    fn empty_and_zero_length_stimuli() {
        let sim = linear_real_sim(-1.0e9, 1.0);
        assert!(sim.simulate(1e-10, &[]).is_empty());
        assert!(sim.simulate_batch(1e-10, &[]).is_empty());
        let out = sim.simulate_batch(1e-10, &[&[][..], &[1.0, 2.0][..]]);
        assert!(out[0].is_empty());
        assert_eq!(out[1].len(), 2);
    }

    #[test]
    fn lane_groups_chop_by_length_and_width() {
        let a = vec![0.0; 3];
        let b = vec![0.0; 4];
        let stims: Vec<&[f64]> =
            (0..10).map(|i| if i < 9 { a.as_slice() } else { b.as_slice() }).collect();
        let groups = lane_groups(&stims);
        assert_eq!(groups, vec![0..8, 8..9, 9..10]);
    }

    #[test]
    #[should_panic(expected = "static drive row not set")]
    fn builder_requires_static_row() {
        let _ = SimBuilder::new().build();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_dangling_drive_reference() {
        let mut b = SimBuilder::new();
        let s = b.drive_poly(&[0.0]);
        b.set_static_drive(s);
        b.block_real(-1.0, 7);
        let _ = b.build();
    }

    #[test]
    fn poly_drive_rows_share_the_power_basis() {
        // Static path y_s(u) = 1 + u²; one real block driven by u³.
        let mut b = SimBuilder::new();
        let s = b.drive_poly(&[1.0, 0.0, 1.0]);
        b.set_static_drive(s);
        let f = b.drive_poly(&[0.0, 0.0, 0.0, 1.0]);
        b.block_real(-1.0e12, f);
        let sim = b.build();
        assert_eq!(sim.pdeg, 3);
        // With a pole this fast the block output is ≈ −f(u)/a at every
        // sample; check the static path + near-static block algebra.
        let y = sim.simulate(1e-9, &[0.5; 50]);
        let want = (1.0 + 0.25) + (0.125 / 1.0e12);
        assert!((y[0] - want).abs() < 1e-12, "{} vs {want}", y[0]);
    }
}
