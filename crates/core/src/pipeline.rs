//! The end-to-end extraction pipeline: netlist → TFT → RVF →
//! analytical Hammerstein model (paper Fig. 1).

use std::time::Instant;

use rvf_circuit::{Circuit, TranResult};
use rvf_tft::{extract_from_circuit, TftConfig, TftDataset};

use crate::error::RvfError;
use crate::hammerstein::{build_hammerstein, BuildDiagnostics, HammersteinModel};
use crate::rvf::{fit_frequency_stage, RvfOptions};

/// The result of an extraction: the model plus everything needed to
/// reproduce the paper's evaluation.
#[derive(Debug, Clone)]
pub struct ExtractionReport {
    /// The extracted analytical model.
    pub model: HammersteinModel,
    /// Fit diagnostics (pole counts, per-stage errors).
    pub diagnostics: BuildDiagnostics,
    /// Wall-clock model build time in seconds (Table I "Build Time"),
    /// excluding the training simulation.
    pub build_seconds: f64,
}

/// Fits a Hammerstein model to an existing TFT dataset.
///
/// # Errors
///
/// Propagates fitting failures (and tolerance misses in strict mode).
pub fn fit_tft(dataset: &TftDataset, opts: &RvfOptions) -> Result<ExtractionReport, RvfError> {
    let start = Instant::now();
    let s_grid = dataset.s_grid();
    let dynamic = dataset.dynamic_responses();
    let freq_stage = fit_frequency_stage(&s_grid, &dynamic, opts)?;
    let (model, diagnostics) = build_hammerstein(dataset, &freq_stage, opts)?;
    Ok(ExtractionReport { model, diagnostics, build_seconds: start.elapsed().as_secs_f64() })
}

/// Full flow from a circuit: DC + training transient + TFT transform +
/// RVF fit. Returns the report with the dataset and raw training
/// transient for validation plots.
///
/// # Errors
///
/// Propagates circuit, TFT and fitting failures.
pub fn extract_model(
    circuit: &mut Circuit,
    tft_cfg: &TftConfig,
    opts: &RvfOptions,
) -> Result<(ExtractionReport, TftDataset, TranResult), RvfError> {
    let (dataset, tran) = extract_from_circuit(circuit, tft_cfg)?;
    let report = fit_tft(&dataset, opts)?;
    Ok((report, dataset, tran))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvf_circuit::{rc_ladder, Waveform};
    use rvf_numerics::Complex;

    #[test]
    fn linear_rc_extraction_reproduces_transfer() {
        // One-section RC: H(s) = 1/(1+sRC) — the extracted model must
        // match it across the grid and at every state.
        let r = 1.0e3;
        let c = 1.0e-9;
        let mut ckt = rc_ladder(
            1,
            r,
            c,
            Waveform::Sine {
                offset: 0.5,
                amplitude: 0.4,
                freq_hz: 1.0e4,
                phase_rad: 0.0,
                delay: 0.0,
            },
        );
        let cfg = TftConfig {
            f_min_hz: 1.0e3,
            f_max_hz: 1.0e7,
            n_freqs: 40,
            t_train: 1.0e-4,
            steps: 600,
            n_snapshots: 60,
            embed_depth: 1,
            threads: 2,
        };
        let opts = RvfOptions { epsilon: 1e-4, ..Default::default() };
        let (report, dataset, _tran) = extract_model(&mut ckt, &cfg, &opts).unwrap();
        assert!(report.diagnostics.freq_rel_error <= 1e-4);
        let rc = r * c;
        for sample in dataset.samples.iter().step_by(7) {
            for (f, _h) in dataset.freqs_hz.iter().zip(&sample.h).step_by(5) {
                let s = Complex::from_im(2.0 * core::f64::consts::PI * f);
                let want = (Complex::ONE + s.scale(rc)).inv();
                let got = report.model.transfer(sample.state, s);
                assert!(
                    (got - want).abs() < 5e-3,
                    "at x={}, f={f:.2e}: {got:?} vs {want:?}",
                    sample.state
                );
            }
        }
        // Static path reproduces y = u (unity DC gain RC).
        for &u in &[0.2, 0.5, 0.8] {
            assert!((report.model.static_output(u) - u).abs() < 5e-3);
        }
        assert!(report.build_seconds >= 0.0);
    }

    #[test]
    fn rc_model_time_domain_tracks_circuit() {
        use rvf_circuit::{dc_operating_point, transient, DcOptions, TranOptions};
        let r = 1.0e3;
        let c = 1.0e-9;
        let train = Waveform::Sine {
            offset: 0.5,
            amplitude: 0.4,
            freq_hz: 1.0e4,
            phase_rad: 0.0,
            delay: 0.0,
        };
        let mut ckt = rc_ladder(1, r, c, train);
        let cfg = TftConfig {
            f_min_hz: 1.0e3,
            f_max_hz: 1.0e7,
            n_freqs: 40,
            t_train: 1.0e-4,
            steps: 600,
            n_snapshots: 60,
            embed_depth: 1,
            threads: 2,
        };
        let opts = RvfOptions { epsilon: 1e-4, ..Default::default() };
        let (report, ..) = extract_model(&mut ckt, &cfg, &opts).unwrap();

        // Validate on a different waveform: a 100 kHz square-ish pulse.
        let test = Waveform::Pulse {
            v0: 0.2,
            v1: 0.8,
            delay: 1.0e-6,
            rise: 1.0e-7,
            fall: 1.0e-7,
            width: 4.0e-6,
            period: 1.0e-5,
        };
        let mut ckt2 = rc_ladder(1, r, c, test.clone());
        let op = dc_operating_point(&mut ckt2, &DcOptions::default()).unwrap();
        let dt = 2.0e-8;
        let t_stop = 3.0e-5;
        let tran =
            transient(&mut ckt2, &op, &TranOptions { dt, t_stop, ..Default::default() }).unwrap();
        let y_model = report.model.simulate(dt, &tran.inputs);
        let err = rvf_numerics::nrmse(&tran.outputs, &y_model);
        assert!(err < 0.02, "time-domain nrmse {err}");
    }
}
