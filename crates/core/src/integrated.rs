//! Closed-form indefinite integrals of the RVF state base functions
//! (paper eqs. 18–19).
//!
//! A fitted residue function is a partial-fraction expansion in the real
//! state variable `u` with conjugate-pair poles:
//!
//! ```text
//! r(u) = Σ_i [ ρ_i/(u − x̃_i) + ρ_i*/(u − x̃_i*) ] + d (+ e·u)
//! ```
//!
//! Its primitive is available analytically:
//!
//! ```text
//! ∫ r du = Σ_i 2·Re{ ρ_i · ln(u − x̃_i) } + d·u + e·u²/2 + C
//! ```
//!
//! For real `u` and `Im(x̃_i) > 0`, the argument `u − x̃_i` stays in the
//! open lower half-plane, so the principal branch of `ln` is smooth on
//! the whole axis — this is why the paper restricts the state poles to
//! complex pairs ("zero-phase base functions"): the integral *exists in
//! closed form and is computed once*, unlike CAFFEINE's free-form bases.

use rvf_numerics::Complex;
use rvf_vecfit::{PoleEntry, RationalModel};

/// One logarithmic term `2·Re{ρ·ln(u − x̃)}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogTerm {
    /// Pole location in the state plane (`Im > 0`).
    pub pole: Complex,
    /// Complex residue.
    pub rho: Complex,
}

/// The analytic primitive of a fitted state function.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IntegratedStateFn {
    /// Logarithmic terms (one per conjugate pole pair).
    pub terms: Vec<LogTerm>,
    /// Coefficient of `u` (from the constant term of the rational fit).
    pub linear: f64,
    /// Coefficient of `u²/2` (from a linear term, normally absent).
    pub quadratic: f64,
    /// Integration constant (fixed from the DC solution, paper §III-B).
    pub constant: f64,
}

impl IntegratedStateFn {
    /// Integrates response `k` of a real-axis [`RationalModel`] fit.
    ///
    /// # Panics
    ///
    /// Panics if the model contains a *real* pole (state fits keep poles
    /// in conjugate pairs; a real pole would put a singularity on the
    /// axis and has no smooth primitive there).
    pub fn from_state_fit(model: &RationalModel, k: usize) -> Self {
        let terms: Vec<LogTerm> = model
            .poles()
            .entries()
            .iter()
            .zip(&model.terms()[k].residues.0)
            .map(|(e, r)| match e {
                PoleEntry::Pair(a) => LogTerm { pole: *a, rho: *r },
                PoleEntry::Real(a) => {
                    panic!("state fit must not contain the real pole {a}")
                }
            })
            .collect();
        Self { terms, linear: model.terms()[k].d, quadratic: model.terms()[k].e, constant: 0.0 }
    }

    /// Evaluates the primitive at `u`.
    pub fn eval(&self, u: f64) -> f64 {
        let mut acc = self.constant + self.linear * u + 0.5 * self.quadratic * u * u;
        for t in &self.terms {
            let z = Complex::from_re(u) - t.pole;
            acc += 2.0 * (t.rho * z.ln()).re;
        }
        acc
    }

    /// Evaluates the derivative (the original rational function) — used
    /// to verify the integral against the fitted residues.
    pub fn derivative(&self, u: f64) -> f64 {
        let mut acc = self.linear + self.quadratic * u;
        for t in &self.terms {
            let z = (Complex::from_re(u) - t.pole).inv();
            acc += 2.0 * (t.rho * z).re;
        }
        acc
    }

    /// Shifts the constant so that `eval(u0) == value` (anchoring on the
    /// DC solution).
    #[must_use]
    pub fn anchored(mut self, u0: f64, value: f64) -> Self {
        self.constant = 0.0;
        let at = self.eval(u0);
        self.constant = value - at;
        self
    }

    /// Number of logarithmic terms (state pole pairs).
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvf_numerics::{c, linspace};
    use rvf_vecfit::{fit_single, VfOptions};

    #[test]
    fn derivative_matches_finite_difference_of_eval() {
        let f = IntegratedStateFn {
            terms: vec![
                LogTerm { pole: c(0.5, 0.2), rho: c(1.0, -0.5) },
                LogTerm { pole: c(-0.3, 0.8), rho: c(-0.25, 0.1) },
            ],
            linear: 0.7,
            quadratic: 0.0,
            constant: 2.0,
        };
        for &u in &[-1.0, -0.2, 0.0, 0.4, 0.9, 1.5] {
            let h = 1e-6;
            let fd = (f.eval(u + h) - f.eval(u - h)) / (2.0 * h);
            assert!((f.derivative(u) - fd).abs() < 1e-7, "at {u}: {} vs {fd}", f.derivative(u));
        }
    }

    #[test]
    fn smooth_across_the_whole_axis() {
        // No branch-cut jumps for Im(pole) > 0: sample densely and check
        // continuity.
        let f = IntegratedStateFn {
            terms: vec![LogTerm { pole: c(0.0, 0.05), rho: c(2.0, 1.0) }],
            linear: 0.0,
            quadratic: 0.0,
            constant: 0.0,
        };
        let xs = linspace(-2.0, 2.0, 4001);
        for w in xs.windows(2) {
            let dy = (f.eval(w[1]) - f.eval(w[0])).abs();
            assert!(dy < 0.2, "jump at {}: {dy}", w[0]);
        }
    }

    #[test]
    fn anchoring() {
        let f = IntegratedStateFn {
            terms: vec![LogTerm { pole: c(0.5, 0.3), rho: c(1.0, 0.0) }],
            linear: 1.0,
            quadratic: 0.0,
            constant: 0.0,
        }
        .anchored(0.9, 5.0);
        assert!((f.eval(0.9) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn round_trip_fit_integrate_differentiate() {
        // Fit a smooth function with state VF, integrate analytically,
        // and check that the primitive's derivative reproduces the fit.
        let xs: Vec<Complex> = linspace(0.4, 1.4, 101).into_iter().map(Complex::from_re).collect();
        let g = |x: f64| 2.0 / (1.0 + 9.0 * (x - 0.9) * (x - 0.9));
        let data: Vec<Complex> = xs.iter().map(|x| Complex::from_re(g(x.re))).collect();
        let fit = fit_single(&xs, &data, &VfOptions::state(8).with_iterations(12)).unwrap();
        let prim = IntegratedStateFn::from_state_fit(&fit.model, 0);
        for &x in &[0.45, 0.7, 0.9, 1.1, 1.35] {
            let h = 1e-6;
            let fd = (prim.eval(x + h) - prim.eval(x - h)) / (2.0 * h);
            let fitted = fit.model.eval(0, Complex::from_re(x)).re;
            assert!((fd - fitted).abs() < 1e-6, "at {x}: {fd} vs {fitted}");
        }
        // And the integral over [0.4, 1.4] matches numeric quadrature.
        let numeric: f64 = {
            let n = 20_000;
            let h = 1.0 / n as f64;
            (0..n)
                .map(|i| {
                    let a = 0.4 + i as f64 * h;
                    0.5 * h * (g(a) + g(a + h))
                })
                .sum()
        };
        let analytic = prim.eval(1.4) - prim.eval(0.4);
        assert!((analytic - numeric).abs() < 2e-4, "integral {analytic} vs {numeric}");
    }

    #[test]
    #[should_panic(expected = "real pole")]
    fn real_pole_rejected() {
        use rvf_vecfit::{PoleSet, RationalModel, Residues, ResponseTerms};
        let model = RationalModel::new(
            PoleSet::from_reals(&[-1.0]),
            vec![ResponseTerms { residues: Residues(vec![c(1.0, 0.0)]), d: 0.0, e: 0.0 }],
        );
        let _ = IntegratedStateFn::from_state_fit(&model, 0);
    }
}
