//! Property-based tests for the extraction core: analytic-integral
//! invariants, export robustness, and model stability.

use proptest::prelude::*;
use rvf_core::{text, DynBlock, HammersteinModel, IntegratedStateFn, LogTerm, StateFn};
use rvf_numerics::{c, Complex};
use rvf_vecfit::{PoleEntry, PoleSet, RationalModel, Residues, ResponseTerms};

fn statefn(pole: Complex, rho: Complex, d: f64, constant: f64) -> StateFn {
    let pole = Complex::new(pole.re, pole.im.abs().max(1e-3));
    StateFn {
        rational: RationalModel::new(
            PoleSet::new(vec![PoleEntry::Pair(pole)]),
            vec![ResponseTerms { residues: Residues(vec![rho]), d, e: 0.0 }],
        ),
        primitive: IntegratedStateFn {
            terms: vec![LogTerm { pole, rho }],
            linear: d,
            quadratic: 0.0,
            constant,
        },
    }
}

fn arb_statefn() -> impl Strategy<Value = StateFn> {
    (-2.0..2.0f64, 0.01..2.0f64, -3.0..3.0f64, -3.0..3.0f64, -2.0..2.0f64, -5.0..5.0f64)
        .prop_map(|(pre, pim, rre, rim, d, k)| statefn(c(pre, pim), c(rre, rim), d, k))
}

/// A state function with several log terms and an optional quadratic
/// tail — wider coverage than [`arb_statefn`] for the serving-runtime
/// equivalence tests (randomized pole counts and polynomial degrees).
fn arb_statefn_multi() -> impl Strategy<Value = StateFn> {
    (
        prop::collection::vec((-2.0..2.0f64, 0.01..2.0f64, -3.0..3.0f64, -3.0..3.0f64), 0..4),
        -2.0..2.0f64,
        -0.5..0.5f64,
        -5.0..5.0f64,
    )
        .prop_map(|(terms, d, e, k)| {
            let terms: Vec<LogTerm> = terms
                .into_iter()
                .map(|(pre, pim, rre, rim)| LogTerm {
                    pole: c(pre, pim.max(1e-3)),
                    rho: c(rre, rim),
                })
                .collect();
            let pole_entries: Vec<rvf_vecfit::PoleEntry> =
                terms.iter().map(|t| PoleEntry::Pair(t.pole)).collect();
            let residues = Residues(terms.iter().map(|t| t.rho).collect());
            StateFn {
                rational: RationalModel::new(
                    PoleSet::new(pole_entries),
                    vec![ResponseTerms { residues, d, e }],
                ),
                primitive: IntegratedStateFn { terms, linear: d, quadratic: e, constant: k },
            }
        })
}

/// Mixed real/pair block structures for the serving runtime.
fn arb_serving_model() -> impl Strategy<Value = HammersteinModel> {
    (
        arb_statefn_multi(),
        prop::collection::vec(
            (
                0usize..2,
                arb_statefn_multi(),
                arb_statefn_multi(),
                -5.0e9..-1.0e6f64,
                1.0e6..5.0e9f64,
            ),
            0..4,
        ),
        -1.0..1.0f64,
        -2.0..2.0f64,
    )
        .prop_map(|(static_path, blocks, u0, y0)| HammersteinModel {
            static_path,
            blocks: blocks
                .into_iter()
                .map(|(is_pair, f1, f2, sigma, omega)| {
                    if is_pair == 1 {
                        DynBlock::Pair { sigma, omega, f1, f2 }
                    } else {
                        DynBlock::Real { a: sigma, f: f1 }
                    }
                })
                .collect(),
            u0,
            y0,
        })
}

/// A stimulus with bit-pattern-like held stretches so the memoized
/// drive path of the compiled kernel is exercised alongside the
/// recompute path.
fn arb_stimulus() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((-2.5..2.5f64, 1usize..6), 0..24)
        .prop_map(|segs| segs.into_iter().flat_map(|(v, hold)| vec![v; hold]).collect())
}

fn arb_model() -> impl Strategy<Value = HammersteinModel> {
    (
        arb_statefn(),
        prop::collection::vec(
            (arb_statefn(), arb_statefn(), -5.0e9..-1.0e6f64, 1.0e6..5.0e9f64),
            0..3,
        ),
        -1.0..1.0f64,
        -2.0..2.0f64,
    )
        .prop_map(|(static_path, pairs, u0, y0)| HammersteinModel {
            static_path,
            blocks: pairs
                .into_iter()
                .map(|(f1, f2, sigma, omega)| DynBlock::Pair { sigma, omega, f1, f2 })
                .collect(),
            u0,
            y0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn integral_derivative_identity(f in arb_statefn(), u in -3.0..3.0f64) {
        // d/du ∫r = r for any pole/residue configuration with Im > 0.
        let h = 1e-6;
        let fd = (f.integral(u + h) - f.integral(u - h)) / (2.0 * h);
        let v = f.value(u);
        prop_assert!((fd - v).abs() < 1e-5 * v.abs().max(1.0), "fd {fd} vs {v}");
    }

    #[test]
    fn integral_is_smooth_everywhere(f in arb_statefn()) {
        // No branch-cut jumps on a dense sweep.
        let mut prev = f.integral(-4.0);
        let mut x = -4.0;
        while x < 4.0 {
            x += 0.002;
            let cur = f.integral(x);
            prop_assert!((cur - prev).abs() < 1.0, "jump at {x}");
            prev = cur;
        }
    }

    #[test]
    fn text_round_trip_any_model(m in arb_model()) {
        let back = text::decode(&text::encode(&m)).unwrap();
        prop_assert_eq!(&back, &m);
        // Behavioural identity too.
        for i in 0..5 {
            let u = -1.0 + 0.5 * i as f64;
            prop_assert_eq!(m.static_output(u), back.static_output(u));
        }
    }

    #[test]
    fn decode_never_panics_on_mutations(m in arb_model(), cut in 0usize..400, flip in 0usize..400) {
        // Corrupted serializations must produce Err, never panic.
        let mut s = text::encode(&m);
        if cut < s.len() {
            s.truncate(cut);
        }
        let _ = text::decode(&s);
        let mut s2 = text::encode(&m).into_bytes();
        if !s2.is_empty() {
            let idx = flip % s2.len();
            s2[idx] = s2[idx].wrapping_add(13);
            if let Ok(mutated) = String::from_utf8(s2) {
                let _ = text::decode(&mutated);
            }
        }
    }

    #[test]
    fn simulation_stays_finite_for_stable_models(m in arb_model(),
                                                 amp in 0.1..10.0f64) {
        // Stable poles + arbitrary bounded stimulus → bounded output.
        let inputs: Vec<f64> = (0..300)
            .map(|i| amp * ((i as f64) * 0.3).sin())
            .collect();
        let y = m.simulate(1e-10, &inputs);
        prop_assert!(y.iter().all(|v| v.is_finite()), "non-finite output");
    }

    #[test]
    fn compiled_simulate_matches_reference(m in arb_serving_model(),
                                           inputs in arb_stimulus(),
                                           dt_exp in -11.0..-9.0f64) {
        // The compiled serving kernel reproduces the reference loop's
        // operation order: outputs agree sample-for-sample under `f64`
        // comparison (far inside the 1e-12 relative pin).
        let dt = 10.0f64.powf(dt_exp);
        let want = m.simulate_reference(dt, &inputs);
        let got = m.compile().simulate(dt, &inputs);
        prop_assert_eq!(got.len(), want.len());
        let peak = want.iter().fold(0.0f64, |p, v| p.max(v.abs())).max(1.0);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert!(g == w || (g - w).abs() <= 1e-12 * peak,
                         "sample {i}: {g} vs {w}");
        }
    }

    #[test]
    fn batch_bit_identical_to_serial_for_every_thread_count(
        m in arb_serving_model(),
        stims in prop::collection::vec(arb_stimulus(), 1..12),
        thread_pick in 0usize..4,
    ) {
        let threads = [1usize, 2, 4, 0][thread_pick];
        let refs: Vec<&[f64]> = stims.iter().map(Vec::as_slice).collect();
        let sim = m.compile();
        let serial: Vec<Vec<f64>> = refs.iter().map(|s| sim.simulate(1e-10, s)).collect();
        let batch = sim.clone().with_threads(threads).simulate_batch(1e-10, &refs);
        prop_assert_eq!(batch.len(), serial.len());
        for (k, (a, b)) in batch.iter().zip(&serial).enumerate() {
            prop_assert_eq!(a.len(), b.len(), "stimulus {}", k);
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "stimulus {}", k);
            }
        }
    }

    #[test]
    fn chunked_sessions_bit_identical_to_one_shot(
        m in arb_serving_model(),
        inputs in arb_stimulus(),
        cuts in prop::collection::vec(0usize..128, 0..8),
        dt_exp in -11.0..-9.0f64,
    ) {
        // A StreamingSession fed any chunk split — including length-1
        // chunks and boundaries landing inside a memoized bit-equal
        // hold (arb_stimulus emits held stretches) — reproduces the
        // one-shot bits exactly.
        let dt = 10.0f64.powf(dt_exp);
        let sim = m.compile();
        let want = sim.simulate(dt, &inputs);
        // Random cut positions → random chunk boundaries (duplicates
        // collapse; a cut at 0/len degenerates to an empty chunk,
        // which must also be a no-op).
        let mut bounds: Vec<usize> = cuts.into_iter().map(|c| c % (inputs.len() + 1)).collect();
        bounds.push(0);
        bounds.push(inputs.len());
        bounds.sort_unstable();
        let mut session = sim.session(dt).unwrap();
        let mut got = Vec::with_capacity(inputs.len());
        for w in bounds.windows(2) {
            got.extend(session.feed(&inputs[w[0]..w[1]]).unwrap());
        }
        prop_assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(g.to_bits(), w.to_bits(), "sample {}", i);
        }
        prop_assert_eq!(session.samples(), inputs.len() as u64);
    }

    #[test]
    fn session_set_bit_identical_to_solo(
        m in arb_serving_model(),
        stims in prop::collection::vec(arb_stimulus(), 1..10),
        dt_exp in -11.0..-9.0f64,
    ) {
        // Advancing many sessions in lockstep lane groups (grouped by
        // remaining chunk length) reproduces each session's solo bits.
        let dt = 10.0f64.powf(dt_exp);
        let sim = m.compile();
        let mut set = sim.sessions(dt).unwrap();
        let ids: Vec<_> = stims.iter().map(|_| set.open()).collect();
        let mut streamed: Vec<Vec<f64>> = vec![Vec::new(); stims.len()];
        let mut round = 0usize;
        loop {
            let mut any = false;
            for (i, id) in ids.iter().enumerate() {
                let fed = streamed[i].len();
                let end = (fed + 3 + (i + round) % 5).min(stims[i].len());
                if fed < end {
                    set.push(*id, &stims[i][fed..end]).unwrap();
                    any = true;
                }
            }
            if !any {
                break;
            }
            for (id, out) in set.advance().unwrap() {
                streamed[id.index()].extend(out);
            }
            round += 1;
        }
        for (i, (got, u)) in streamed.iter().zip(&stims).enumerate() {
            let want = sim.simulate(dt, u);
            prop_assert_eq!(got.len(), want.len(), "session {}", i);
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.to_bits(), w.to_bits(), "session {}", i);
            }
        }
    }

    #[test]
    fn transfer_hermitian_symmetry(m in arb_model(), w in 1.0..1e10f64, x in -2.0..2.0f64) {
        let s = Complex::from_im(w);
        let a = m.transfer(x, s);
        let b = m.transfer(x, s.conj());
        prop_assert!((a.conj() - b).abs() < 1e-9 * a.abs().max(1.0));
    }

    #[test]
    fn verilog_and_matlab_generation_never_panics(m in arb_model()) {
        let v = rvf_core::to_verilog_a(&m, "m1");
        prop_assert!(v.contains("endmodule"));
        let mat = rvf_core::to_matlab(&m, "m1");
        prop_assert!(mat.contains("function"));
    }
}
