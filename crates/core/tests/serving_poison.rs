//! Regression test for the serving worker-panic path: a panic inside a
//! pooled batch/advance round must surface as
//! `Err(ServingError::WorkerPanicked)` from the checked APIs — not
//! propagate — and the pool must stay usable for the next round.
//!
//! Lives in its own test binary: the poison switch
//! (`poison_next_group`) is process-global, so every test here
//! serializes through [`lock`] to keep armed windows from racing.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;
use rvf_core::serving::{poison_next_group, SessionChunk};
use rvf_core::{CompiledSim, IntegratedStateFn, ServingError, SimBuilder, SimState};
use rvf_numerics::{pool_constructions, SweepPool};

static POISON_GUARD: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    POISON_GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

fn nonlinear_sim() -> CompiledSim {
    let mut b = SimBuilder::new();
    let zero = b.drive_poly(&[0.0]);
    b.set_static_drive(zero);
    let f = b.drive_rational(&IntegratedStateFn {
        terms: vec![],
        linear: 1.5,
        quadratic: 0.2,
        constant: 0.0,
    });
    b.block_real(-1.0e9, f);
    b.build()
}

#[test]
fn worker_panic_surfaces_as_typed_error_and_pool_survives() {
    let _g = lock();
    let mut b = SimBuilder::new();
    let zero = b.drive_poly(&[0.0]);
    b.set_static_drive(zero);
    let f = b.drive_rational(&IntegratedStateFn {
        terms: vec![],
        linear: 1.5,
        quadratic: 0.0,
        constant: 0.0,
    });
    b.block_real(-1.0e9, f);
    let sim = b.build();

    let dt = 1.0e-10;
    let stims: Vec<Vec<f64>> = (0..12).map(|k| vec![0.05 * k as f64; 64]).collect();
    let refs: Vec<&[f64]> = stims.iter().map(Vec::as_slice).collect();
    let want = sim.try_simulate_batch(dt, &refs).unwrap();

    let pool = SweepPool::new(2);

    // --- batch path ---
    poison_next_group();
    let err = sim.try_simulate_batch_in(&pool, dt, &refs).unwrap_err();
    assert!(matches!(err, ServingError::WorkerPanicked { .. }), "got {err:?}");
    // The panic was contained to that round: the same pool serves the
    // retry, and the output is the full, correct batch.
    let retry = sim.try_simulate_batch_in(&pool, dt, &refs).unwrap();
    assert_eq!(retry, want);

    // --- session-set path ---
    let mut set = sim.sessions(dt).unwrap();
    let ids: Vec<_> = (0..12).map(|_| set.open()).collect();
    for (id, u) in ids.iter().zip(&refs) {
        set.push(*id, u).unwrap();
    }
    poison_next_group();
    let err = set.advance_in(&pool).unwrap_err();
    assert!(matches!(err, ServingError::WorkerPanicked { .. }), "got {err:?}");
    // Transactional: nothing was applied — every session still has its
    // full pending chunk and zero absorbed samples.
    for id in &ids {
        assert_eq!(set.samples(*id).unwrap(), 0);
    }
    // Retrying on the same pool succeeds and matches the solo bits.
    let outputs = set.advance_in(&pool).unwrap();
    assert_eq!(outputs.len(), 12);
    for ((id, out), w) in outputs.iter().zip(&want) {
        assert_eq!(out, w, "session {id:?}");
    }
    for (id, u) in ids.iter().zip(&refs) {
        assert_eq!(set.samples(*id).unwrap(), u.len() as u64);
    }

    // The legacy infallible wrapper still panics (documented behaviour).
    poison_next_group();
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.simulate_batch_in(&pool, dt, &refs)
    }));
    assert!(panicked.is_err(), "legacy wrapper keeps its documented panic");
    // And the pool *still* survives.
    assert_eq!(sim.try_simulate_batch_in(&pool, dt, &refs).unwrap(), want);
}

/// The `advance_chunks` seam under poison, pooled and serial: a
/// panicked round commits nothing, the retry on the same pool (or the
/// same serial path) matches the one-shot simulation bit for bit, and
/// `contained_panics` counts what the pool absorbed.
#[test]
fn advance_chunks_contains_panics_on_both_paths() {
    let _g = lock();
    let sim = nonlinear_sim();
    let dt = 1.0e-10;
    let stims: Vec<Vec<f64>> = (0..5).map(|k| vec![0.07 * (k + 1) as f64; 24]).collect();
    let want: Vec<Vec<f64>> = stims.iter().map(|u| sim.simulate(dt, u)).collect();
    let pool = SweepPool::new(2);

    for pool_arg in [Some(&pool), None] {
        let mut states: Vec<SimState> =
            (0..5).map(|_| sim.session(dt).unwrap().into_state()).collect();
        let mut outs: Vec<Vec<f64>> = stims.iter().map(|u| vec![0.0; u.len()]).collect();
        let panics_before = pool.contained_panics();

        poison_next_group();
        let mut chunks: Vec<SessionChunk<'_>> = states
            .iter_mut()
            .zip(&stims)
            .zip(outs.iter_mut())
            .map(|((state, u), out)| SessionChunk { state, input: u, output: out })
            .collect();
        let err = sim.advance_chunks(dt, &mut chunks, pool_arg).unwrap_err();
        assert!(matches!(err, ServingError::WorkerPanicked { .. }), "got {err:?}");
        drop(chunks);
        // Transactional: no state advanced.
        for state in &states {
            assert_eq!(state.samples(), 0, "panicked round committed state");
        }
        if pool_arg.is_some() {
            assert_eq!(pool.contained_panics(), panics_before + 1);
        }

        // The retry on the very same path matches the one-shot bits.
        let mut chunks: Vec<SessionChunk<'_>> = states
            .iter_mut()
            .zip(&stims)
            .zip(outs.iter_mut())
            .map(|((state, u), out)| SessionChunk { state, input: u, output: out })
            .collect();
        sim.advance_chunks(dt, &mut chunks, pool_arg).unwrap();
        drop(chunks);
        for ((out, w), state) in outs.iter().zip(&want).zip(&states) {
            assert_eq!(out, w);
            assert_eq!(state.samples(), 24);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Loop-until-dry chaos: keep hammering one pool with randomly
    /// poisoned session-set rounds until three consecutive rounds stay
    /// clean (with at least eight injected panics along the way). The
    /// pool must absorb every panic without a single hidden rebuild
    /// (`pool_constructions()` stays flat) and the surviving clean
    /// rounds must stay bit-identical to the reference batch.
    #[test]
    fn repeated_poison_rounds_until_dry_keep_pool_and_bits(seed in 1u64..(1u64 << 32)) {
        let _g = lock();
        let sim = nonlinear_sim();
        let dt = 1.0e-10;
        let stims: Vec<Vec<f64>> = (0..12).map(|k| vec![0.05 * k as f64; 32]).collect();
        let refs: Vec<&[f64]> = stims.iter().map(Vec::as_slice).collect();
        let want = sim.try_simulate_batch(dt, &refs).unwrap();

        let pool = SweepPool::new(2);
        let constructions_before = pool_constructions();
        let mut x = seed;
        let mut injected = 0u32;
        let mut dry_streak = 0u32;
        let mut rounds = 0u32;
        while (dry_streak < 3 || injected < 8) && rounds < 200 {
            rounds += 1;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let poisoned = injected < 8 && x % 2 == 0;
            let mut set = sim.sessions(dt).unwrap();
            let ids: Vec<_> = (0..12).map(|_| set.open()).collect();
            for (id, u) in ids.iter().zip(&refs) {
                set.push(*id, u).unwrap();
            }
            if poisoned {
                injected += 1;
                dry_streak = 0;
                poison_next_group();
                let err = set.advance_in(&pool).unwrap_err();
                let is_panic = matches!(err, ServingError::WorkerPanicked { .. });
                prop_assert!(is_panic, "expected WorkerPanicked, got {:?}", err);
                // Nothing committed; an immediate retry on the same
                // pool recovers the full round.
                for id in &ids {
                    prop_assert_eq!(set.samples(*id).unwrap(), 0);
                }
            } else {
                dry_streak += 1;
            }
            let outputs = set.advance_in(&pool).unwrap();
            for ((_, out), w) in outputs.iter().zip(&want) {
                for (a, b) in out.iter().zip(w) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
        prop_assert!(injected >= 8, "storm never got its panic quota ({injected})");
        prop_assert!(dry_streak >= 3, "storm never went dry (rounds {rounds})");
        prop_assert_eq!(
            pool_constructions(),
            constructions_before,
            "panic containment must not rebuild pools behind the caller's back"
        );
        prop_assert_eq!(pool.contained_panics(), injected as u64);
    }
}
