//! Regression test for the serving worker-panic path: a panic inside a
//! pooled batch/advance round must surface as
//! `Err(ServingError::WorkerPanicked)` from the checked APIs — not
//! propagate — and the pool must stay usable for the next round.
//!
//! Lives in its own test binary with a single `#[test]`: the poison
//! switch (`poison_next_group`) is process-global, so the armed window
//! must not race other serving tests.

use rvf_core::serving::poison_next_group;
use rvf_core::{IntegratedStateFn, ServingError, SimBuilder};
use rvf_numerics::SweepPool;

#[test]
fn worker_panic_surfaces_as_typed_error_and_pool_survives() {
    let mut b = SimBuilder::new();
    let zero = b.drive_poly(&[0.0]);
    b.set_static_drive(zero);
    let f = b.drive_rational(&IntegratedStateFn {
        terms: vec![],
        linear: 1.5,
        quadratic: 0.0,
        constant: 0.0,
    });
    b.block_real(-1.0e9, f);
    let sim = b.build();

    let dt = 1.0e-10;
    let stims: Vec<Vec<f64>> = (0..12).map(|k| vec![0.05 * k as f64; 64]).collect();
    let refs: Vec<&[f64]> = stims.iter().map(Vec::as_slice).collect();
    let want = sim.try_simulate_batch(dt, &refs).unwrap();

    let pool = SweepPool::new(2);

    // --- batch path ---
    poison_next_group();
    let err = sim.try_simulate_batch_in(&pool, dt, &refs).unwrap_err();
    assert!(matches!(err, ServingError::WorkerPanicked { .. }), "got {err:?}");
    // The panic was contained to that round: the same pool serves the
    // retry, and the output is the full, correct batch.
    let retry = sim.try_simulate_batch_in(&pool, dt, &refs).unwrap();
    assert_eq!(retry, want);

    // --- session-set path ---
    let mut set = sim.sessions(dt).unwrap();
    let ids: Vec<_> = (0..12).map(|_| set.open()).collect();
    for (id, u) in ids.iter().zip(&refs) {
        set.push(*id, u).unwrap();
    }
    poison_next_group();
    let err = set.advance_in(&pool).unwrap_err();
    assert!(matches!(err, ServingError::WorkerPanicked { .. }), "got {err:?}");
    // Transactional: nothing was applied — every session still has its
    // full pending chunk and zero absorbed samples.
    for id in &ids {
        assert_eq!(set.samples(*id).unwrap(), 0);
    }
    // Retrying on the same pool succeeds and matches the solo bits.
    let outputs = set.advance_in(&pool).unwrap();
    assert_eq!(outputs.len(), 12);
    for ((id, out), w) in outputs.iter().zip(&want) {
        assert_eq!(out, w, "session {id:?}");
    }
    for (id, u) in ids.iter().zip(&refs) {
        assert_eq!(set.samples(*id).unwrap(), u.len() as u64);
    }

    // The legacy infallible wrapper still panics (documented behaviour).
    poison_next_group();
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.simulate_batch_in(&pool, dt, &refs)
    }));
    assert!(panicked.is_err(), "legacy wrapper keeps its documented panic");
    // And the pool *still* survives.
    assert_eq!(sim.try_simulate_batch_in(&pool, dt, &refs).unwrap(), want);
}
