//! Pins the zero-allocation contract of the streaming serving path:
//! after the first chunk (which may fill the per-`dt` propagator cache
//! inside the state), `simulate_into` / `feed_into` perform **no heap
//! allocation per chunk**.
//!
//! Lives in its own test binary because it installs a counting global
//! allocator — the count is process-wide, so the measured region must
//! not race other tests (this file has exactly one `#[test]`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rvf_core::{IntegratedStateFn, LogTerm, SimBuilder};
use rvf_numerics::Complex;

/// System allocator wrapper that counts allocation calls.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

#[test]
fn simulate_into_allocates_nothing_per_chunk_in_steady_state() {
    // A model with all three drive families: log-form terms (pair
    // block), a real block, and polynomial rows — every kernel path is
    // on the measured region.
    let mut b = SimBuilder::new();
    let s = b.drive_poly(&[0.1, 1.0, 0.2]);
    b.set_static_drive(s);
    let pole = Complex::new(-0.4, 1.1);
    let f1 = b.drive_rational(&IntegratedStateFn {
        terms: vec![LogTerm { pole, rho: Complex::new(0.8, -0.3) }],
        linear: 0.5,
        quadratic: 0.1,
        constant: 0.0,
    });
    let f2 = b.drive_rational(&IntegratedStateFn {
        terms: vec![LogTerm { pole, rho: Complex::new(-0.2, 0.6) }],
        linear: 0.2,
        quadratic: 0.0,
        constant: 0.1,
    });
    b.block_pair(-1.0e9, 3.0e9, f1, f2);
    let fr = b.drive_poly(&[0.0, 0.7]);
    b.block_real(-2.0e9, fr);
    let sim = b.build();

    let dt = 1.0e-10;
    let chunk: Vec<f64> = (0..256).map(|i| ((i / 3) as f64 * 0.17).sin()).collect();
    let mut out = vec![0.0; chunk.len()];

    let mut state = sim.new_state();
    // Warm-up chunk: fills the propagator cache (in capacity reserved
    // by new_state, but the cache fill itself may touch the allocator
    // through Vec bookkeeping on some profiles — the contract is about
    // steady state).
    sim.simulate_into(dt, &chunk, &mut state, &mut out).unwrap();

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..50 {
        sim.simulate_into(dt, &chunk, &mut state, &mut out).unwrap();
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "steady-state simulate_into must not allocate");

    // The StreamingSession::feed_into path inherits the contract.
    let mut session = sim.session(dt).unwrap();
    session.feed_into(&chunk, &mut out).unwrap();
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..50 {
        session.feed_into(&chunk, &mut out).unwrap();
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "steady-state feed_into must not allocate");
}
