//! Deterministic chaos suite for the serving tier.
//!
//! Every test here drives a [`Scheduler`] through seeded injected
//! faults (worker panics, NaN/∞ stimulus, oversized chunks, mid-stream
//! closes, whole-process kill–restores) and asserts the tier's
//! robustness contract:
//!
//! 1. no panic escapes the public API,
//! 2. a rejected or failed request commits no session state,
//! 3. a pre-fault checkpoint replays **bit-identically** (`f64` `==`)
//!    after recovery,
//! 4. the registry and scheduler keep serving new admissions after
//!    every injected failure,
//! 5. backpressure is load shedding, not deadlock,
//! 6. the degraded serial path produces the same bits as the pooled
//!    path.
//!
//! The worker-panic seam ([`chaos::arm_worker_panic`]) is a one-shot
//! process-global flag consumed by the next batch round, so every test
//! in this binary serializes through [`lock`] — two concurrently
//! ticking schedulers would race for an armed poison.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;
use rvf_core::{CompiledSim, ServingError, SimBuilder};
use rvf_serve::{
    chaos::{self, ChaosConfig, ChaosInjector, Fault},
    Event, ModelRegistry, Scheduler, ServeConfig, ServeError, SessionHandle,
};

static POISON_GUARD: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    POISON_GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

/// A nonlinear Hammerstein-shaped model: polynomial drives into one
/// real and one complex-pair block plus a static path.
fn model(k: f64) -> CompiledSim {
    let mut b = SimBuilder::new();
    let stat = b.drive_poly(&[0.0, 0.8, 0.05 * k]);
    let d1 = b.drive_poly(&[0.0, 1.0, 0.1]);
    let d2 = b.drive_poly(&[0.1, -0.4]);
    b.set_static_drive(stat);
    b.block_real(-1.0e9 * k, d1);
    b.block_pair(-0.5e9, 2.0e9, d1, d2);
    b.build()
}

fn registry() -> ModelRegistry {
    ModelRegistry::build([("a".to_string(), model(1.0)), ("b".to_string(), model(1.7))])
}

const DT: f64 = 1.0e-10;

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: bit mismatch at sample {i}: {g} vs {w}");
    }
}

/// Ticks until the queue drains (bounded), folding completions into
/// `outputs` keyed by session; any `Failed` event is fatal here.
fn drain(sched: &mut Scheduler, now: &mut u64, outputs: &mut BTreeMap<SessionHandle, Vec<f64>>) {
    for _ in 0..64 {
        if sched.queued_requests() == 0 {
            break;
        }
        *now += 1;
        for event in sched.tick(*now) {
            match event {
                Event::Completed { session, output, .. } => {
                    outputs.entry(session).or_default().extend(output)
                }
                Event::Failed { error, request, .. } => {
                    panic!("request {request:?} failed under drain: {error}")
                }
                other => panic!("unexpected event under drain: {other:?}"),
            }
        }
    }
    assert_eq!(sched.queued_requests(), 0, "scheduler wedged: queue did not drain");
    assert_eq!(sched.queued_samples(), 0, "queued-sample accounting leaked");
}

struct Client {
    session: SessionHandle,
    model: &'static str,
    accepted: Vec<f64>,
}

/// One full chaos storm at a given seed: three concurrent clients over
/// two models, ~48 operations with every fault class live at 12% each
/// — including whole-process kill–restore through the durability layer.
fn storm(seed: u64) {
    let cfg = ServeConfig {
        max_chunk_samples: 16,
        max_queued_requests: 64,
        retry_backoff_base: 1,
        max_retries: 4,
        rebuild_after_panics: 1,
        degrade_after_rebuilds: 2,
        ..Default::default()
    };
    let mut sched = Scheduler::new(registry(), cfg);
    let mut inj = ChaosInjector::new(ChaosConfig::uniform(seed, 120));
    let mut now = 0u64;
    let mut outputs: BTreeMap<SessionHandle, Vec<f64>> = BTreeMap::new();
    let mut clients: Vec<Client> = Vec::new();

    let open = |sched: &mut Scheduler, inj: &mut ChaosInjector, now: u64| {
        let name = if inj.pick(2) == 0 { "a" } else { "b" };
        let id = sched.registry().id(name).expect("registered");
        let session = sched.open_session(id, DT, now).expect("open session");
        Client { session, model: name, accepted: Vec::new() }
    };
    for _ in 0..3 {
        let c = open(&mut sched, &mut inj, now);
        clients.push(c);
    }

    for _ in 0..48 {
        let who = inj.pick(clients.len());
        let n = 1 + inj.pick(12);
        let mut chunk: Vec<f64> =
            (0..n).map(|_| (inj.pick(2001) as f64 - 1000.0) / 1000.0).collect();
        let before = sched.samples(clients[who].session).expect("live session");

        match inj.sample() {
            Some(Fault::WorkerPanic) => {
                // Checkpoint *before* the fault; the panicked round must
                // retry to completion and the checkpoint must replay to
                // the same bits afterwards (invariant 3).
                let cp = sched.checkpoint(clients[who].session).expect("checkpoint");
                chaos::arm_worker_panic();
                sched
                    .submit(clients[who].session, &chunk, now, now + 200)
                    .expect("submit under armed panic");
                drain(&mut sched, &mut now, &mut outputs);
                clients[who].accepted.extend(&chunk);

                let model_id = sched.registry().id(clients[who].model).expect("registered");
                let replay = sched
                    .open_session_from(model_id, DT, cp, now)
                    .expect("reopen from pre-fault checkpoint");
                sched.submit(replay, &chunk, now, now + 200).expect("replay submit");
                drain(&mut sched, &mut now, &mut outputs);
                let replayed = outputs.remove(&replay).expect("replay output");
                let original = &outputs[&clients[who].session];
                assert_bits_eq(
                    &replayed,
                    &original[original.len() - chunk.len()..],
                    "pre-fault checkpoint replay",
                );
                sched.close_session(replay).expect("close replay session");
            }
            Some(Fault::BadStimulus) => {
                let idx = inj.corrupt(&mut chunk).expect("non-empty chunk");
                match sched.submit(clients[who].session, &chunk, now, now + 200) {
                    Err(ServeError::Serving(ServingError::BadStimulus { index, .. })) => {
                        assert!(index <= idx, "first non-finite sample wins")
                    }
                    other => panic!("corrupted chunk admitted: {other:?}"),
                }
                // Rejected work commits nothing (invariant 2).
                assert_eq!(sched.samples(clients[who].session).expect("live"), before);
                assert_eq!(sched.queued_requests(), 0);
            }
            Some(Fault::OversizedChunk) => {
                let oversized = vec![0.25; 17];
                assert!(matches!(
                    sched.submit(clients[who].session, &oversized, now, now + 200),
                    Err(ServeError::ChunkTooLarge { len: 17, limit: 16 })
                ));
                assert_eq!(sched.samples(clients[who].session).expect("live"), before);
            }
            Some(Fault::CloseSession) => {
                let gone = clients.swap_remove(who);
                let state = sched.close_session(gone.session).expect("close");
                assert_eq!(state.samples(), gone.accepted.len() as u64);
                let sim = sched
                    .registry()
                    .get(sched.registry().id(gone.model).expect("registered"))
                    .expect("model")
                    .clone();
                assert_bits_eq(
                    outputs.remove(&gone.session).as_deref().unwrap_or(&[]),
                    &sim.simulate(DT, &gone.accepted),
                    "closed session history",
                );
                // The tier keeps admitting after the fault (invariant 4).
                let c = open(&mut sched, &mut inj, now);
                clients.push(c);
            }
            Some(Fault::CrashKill) => {
                // Power-cut at a random point: snapshot, then a submit
                // whose response is lost with the process, then restore
                // from the snapshot bytes and resubmit the lost chunk.
                let snap = sched.snapshot().expect("snapshot");
                sched
                    .submit(clients[who].session, &chunk, now, now + 200)
                    .expect("submit before kill");
                now += 1;
                let _lost_with_the_process = sched.tick(now);
                drop(sched);
                sched = Scheduler::restore(&snap, &registry()).expect("restore");
                assert_eq!(
                    sched.snapshot().expect("re-snapshot"),
                    snap,
                    "restore ∘ snapshot must be the identity on the wire image"
                );
                assert_eq!(
                    sched.samples(clients[who].session).expect("restored session"),
                    before,
                    "the restored session sits exactly at the pre-crash sample"
                );
                sched
                    .submit(clients[who].session, &chunk, now, now + 200)
                    .expect("resubmit after restore");
                drain(&mut sched, &mut now, &mut outputs);
                clients[who].accepted.extend(&chunk);
            }
            None | Some(_) => {
                sched.submit(clients[who].session, &chunk, now, now + 200).expect("clean submit");
                drain(&mut sched, &mut now, &mut outputs);
                clients[who].accepted.extend(&chunk);
            }
        }
        now += 1;
    }

    // Final audit: every surviving session's streamed output equals a
    // one-shot simulation of everything it accepted, bit for bit —
    // through every panic, retry, pool rebuild, and degradation the
    // storm produced.
    for client in clients {
        assert_eq!(sched.samples(client.session).expect("live"), client.accepted.len() as u64);
        let sim = sched
            .registry()
            .get(sched.registry().id(client.model).expect("registered"))
            .expect("model")
            .clone();
        assert_bits_eq(
            outputs.get(&client.session).map(Vec::as_slice).unwrap_or(&[]),
            &sim.simulate(DT, &client.accepted),
            "surviving session history",
        );
        sched.close_session(client.session).expect("final close");
    }
    assert_eq!(sched.live_sessions(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Invariants 1–4 under a randomized fault storm (seeded, so every
    /// failure reproduces exactly).
    #[test]
    fn chaos_storm_preserves_all_invariants(seed in 1u64..(1u64 << 48)) {
        let _g = lock();
        storm(seed);
    }
}

/// Pinned-seed storms so CI failures name a reproducible case even if
/// the proptest shim's seeding changes.
#[test]
fn chaos_storm_pinned_seeds() {
    let _g = lock();
    for seed in [0xDA7E_2013, 0x5EED_0001, 0xB16_B00B5] {
        storm(seed);
    }
}

/// Invariant 5: a saturated admission queue sheds new load with
/// `Overloaded` immediately while every admitted request completes
/// within its deadline. Nothing blocks, nothing deadlocks.
#[test]
fn backpressure_sheds_load_and_serves_admitted() {
    let _g = lock();
    let cfg = ServeConfig { max_queued_requests: 4, ..Default::default() };
    let mut sched = Scheduler::new(registry(), cfg);
    let model = sched.registry().id("a").expect("registered");
    let sessions: Vec<_> =
        (0..4).map(|_| sched.open_session(model, DT, 0).expect("open")).collect();
    let deadline = 10;
    let admitted: Vec<_> = sessions
        .iter()
        .map(|&s| sched.submit(s, &[0.1, 0.2, 0.3], 0, deadline).expect("admit"))
        .collect();
    // The queue is full: further submits shed immediately, with state.
    for &s in &sessions {
        match sched.submit(s, &[0.9], 0, deadline) {
            Err(ServeError::Overloaded { queued_requests: 4, queued_samples: 12 }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }
    // One tick inside the deadline serves all four admitted requests.
    let events = sched.tick(1);
    assert_eq!(events.len(), 4);
    let mut done = Vec::new();
    for event in events {
        match event {
            Event::Completed { request, .. } => done.push(request),
            other => panic!("admitted request did not complete: {other:?}"),
        }
    }
    done.sort();
    let mut want = admitted.clone();
    want.sort();
    assert_eq!(done, want);
    assert_eq!(sched.queued_requests(), 0);
    // Shedding left the scheduler fully usable.
    sched.submit(sessions[0], &[0.4], 2, 20).expect("post-shed admit");
    assert!(matches!(sched.tick(3)[0], Event::Completed { .. }));
}

/// Invariant 6 plus the rebuild→degrade ladder: repeated panicked
/// rounds first rebuild the pool, then degrade to the serial path, and
/// the session's total output stays bit-identical to a clean one-shot
/// simulation across both transitions.
#[test]
fn rebuild_then_degrade_keeps_bits_identical() {
    let _g = lock();
    let cfg = ServeConfig {
        retry_backoff_base: 1,
        max_retries: 5,
        rebuild_after_panics: 1,
        degrade_after_rebuilds: 1,
        ..Default::default()
    };
    let mut sched = Scheduler::new(registry(), cfg);
    let model = sched.registry().id("b").expect("registered");
    let session = sched.open_session(model, DT, 0).expect("open");
    let sim = sched.registry().get(model).expect("model").clone();
    let u: Vec<f64> = (0..60).map(|i| (i as f64 * 0.21).cos() * 0.8).collect();
    let mut now = 0u64;
    let mut outputs = BTreeMap::new();
    for (round, chunk) in u.chunks(10).enumerate() {
        if round < 2 {
            // Rounds 0 and 1 panic: the first costs a rebuild, the
            // second exhausts the rebuild budget and degrades.
            chaos::arm_worker_panic();
        }
        sched.submit(session, chunk, now, now + 100).expect("submit");
        drain(&mut sched, &mut now, &mut outputs);
        now += 1;
    }
    assert_eq!(sched.pool_rebuilds(), 1, "one rebuild before degradation");
    assert!(sched.is_degraded(), "second strike degrades to serial");
    assert_bits_eq(&outputs[&session], &sim.simulate(DT, &u), "pooled→degraded stream");
    // Degraded mode still contains panics and still retries.
    chaos::arm_worker_panic();
    sched.submit(session, &[0.5; 5], now, now + 100).expect("submit degraded");
    drain(&mut sched, &mut now, &mut outputs);
    assert_eq!(sched.samples(session).expect("live"), 65);
}

/// A request that keeps landing in panicked rounds fails typed after
/// its retry budget — and its session state is exactly where it was.
#[test]
fn retries_exhausted_is_typed_and_commits_nothing() {
    let _g = lock();
    let cfg = ServeConfig {
        retry_backoff_base: 1,
        max_retries: 0,
        rebuild_after_panics: 10,
        ..Default::default()
    };
    let mut sched = Scheduler::new(registry(), cfg);
    let model = sched.registry().id("a").expect("registered");
    let session = sched.open_session(model, DT, 0).expect("open");
    let sim = sched.registry().get(model).expect("model").clone();
    // A clean prefix establishes non-trivial state.
    let prefix = [0.2, -0.4, 0.6, 0.1];
    sched.submit(session, &prefix, 0, 50).expect("prefix");
    let mut now = 0u64;
    let mut outputs = BTreeMap::new();
    drain(&mut sched, &mut now, &mut outputs);

    chaos::arm_worker_panic();
    let doomed = sched.submit(session, &[0.3; 6], now, now + 50).expect("doomed submit");
    now += 1;
    let events = sched.tick(now);
    assert_eq!(events.len(), 1);
    match &events[0] {
        Event::Failed {
            request, error: ServeError::RetriesExhausted { attempts: 1, .. }, ..
        } => assert_eq!(*request, doomed),
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert_eq!(sched.samples(session).expect("live"), 4, "failed round committed nothing");
    assert_eq!(sched.queued_requests(), 0);

    // The session continues from the pre-fault state, bit-identically.
    let tail = [0.7, -0.2];
    sched.submit(session, &tail, now, now + 50).expect("post-fault submit");
    drain(&mut sched, &mut now, &mut outputs);
    let mut all = prefix.to_vec();
    all.extend(tail);
    assert_bits_eq(&outputs[&session], &sim.simulate(DT, &all), "post-RetriesExhausted stream");
}

/// Per-session FIFO survives retry backoff: while chunk N sits in
/// backoff after a panicked round, chunk N+1 of the same session must
/// wait with it — never be served first. (Regression: pick_eligible
/// used to skip a backed-off request without blocking its session,
/// serving chunk N+1 before chunk N and corrupting the stream.)
#[test]
fn retry_backoff_never_reorders_chunks_within_a_session() {
    let _g = lock();
    let cfg = ServeConfig {
        retry_backoff_base: 4,
        max_retries: 4,
        rebuild_after_panics: 10,
        ..Default::default()
    };
    let mut sched = Scheduler::new(registry(), cfg);
    let model = sched.registry().id("a").expect("registered");
    let session = sched.open_session(model, DT, 0).expect("open");
    let sim = sched.registry().get(model).expect("model").clone();
    let (c0, c1) = ([0.3, -0.1, 0.7, 0.2], [0.5, 0.4, -0.6, 0.9]);
    let r0 = sched.submit(session, &c0, 0, 100).expect("submit r0");
    let r1 = sched.submit(session, &c1, 0, 100).expect("submit r1");
    chaos::arm_worker_panic();
    assert!(sched.tick(1).is_empty(), "panicked round completes nothing");
    // r0 is in backoff until tick 1 + (4 << 0) = 5. Until then the
    // whole session must wait — r1 may not jump ahead.
    let mut completions = Vec::new();
    let mut output = Vec::new();
    for now in 2..=8 {
        for event in sched.tick(now) {
            match event {
                Event::Completed { request, output: out, .. } => {
                    completions.push((now, request));
                    output.extend(out);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }
    assert_eq!(
        completions.iter().map(|&(_, r)| r).collect::<Vec<_>>(),
        vec![r0, r1],
        "chunks must complete in submission order"
    );
    assert!(completions[0].0 >= 5, "r0 served no earlier than its backoff expiry");
    let mut u = c0.to_vec();
    u.extend(c1);
    assert_bits_eq(&output, &sim.simulate(DT, &u), "stream across retry backoff");
    assert_eq!(sched.samples(session).expect("live"), 8);
}

/// When a request exhausts its retries, the session's later queued
/// chunks are cancelled (`PredecessorFailed`) instead of being served
/// across the gap, and the session stays usable at the last completed
/// sample.
#[test]
fn retries_exhausted_cancels_later_chunks_of_same_session() {
    let _g = lock();
    let cfg = ServeConfig {
        retry_backoff_base: 1,
        max_retries: 0,
        rebuild_after_panics: 10,
        ..Default::default()
    };
    let mut sched = Scheduler::new(registry(), cfg);
    let model = sched.registry().id("a").expect("registered");
    let session = sched.open_session(model, DT, 0).expect("open");
    let sim = sched.registry().get(model).expect("model").clone();
    let prefix = [0.2, -0.4, 0.6];
    sched.submit(session, &prefix, 0, 50).expect("prefix");
    let mut now = 0u64;
    let mut outputs = BTreeMap::new();
    drain(&mut sched, &mut now, &mut outputs);

    chaos::arm_worker_panic();
    let doomed = sched.submit(session, &[0.3; 4], now, now + 50).expect("doomed");
    let tail_request = sched.submit(session, &[0.8; 4], now, now + 50).expect("tail");
    now += 1;
    let events = sched.tick(now);
    assert_eq!(events.len(), 2);
    assert!(matches!(
        &events[0],
        Event::Failed { request, error: ServeError::RetriesExhausted { .. }, .. }
            if *request == doomed
    ));
    assert!(matches!(
        &events[1],
        Event::Failed { request, error: ServeError::PredecessorFailed { failed }, .. }
            if *request == tail_request && *failed == doomed
    ));
    assert_eq!(sched.samples(session).expect("live"), 3, "nothing served across the gap");
    assert_eq!(sched.queued_requests(), 0);
    assert_eq!(sched.queued_samples(), 0);

    // The stream resumes contiguously from the failure point.
    let tail = [0.7, -0.2];
    sched.submit(session, &tail, now, now + 50).expect("resubmit");
    drain(&mut sched, &mut now, &mut outputs);
    let mut all = prefix.to_vec();
    all.extend(tail);
    assert_bits_eq(&outputs[&session], &sim.simulate(DT, &all), "post-cancel stream");
}

/// The degraded serial path and the pooled path produce identical bits
/// for identical submissions (invariant 6, direct A/B form).
#[test]
fn degraded_serial_output_matches_pooled_bit_for_bit() {
    let _g = lock();
    let pooled_cfg = ServeConfig::default();
    // Degrade immediately: zero tolerated rebuilds, one panic trips it.
    let serial_cfg = ServeConfig {
        retry_backoff_base: 1,
        max_retries: 3,
        rebuild_after_panics: 1,
        degrade_after_rebuilds: 0,
        ..Default::default()
    };
    let mut pooled = Scheduler::new(registry(), pooled_cfg);
    let mut serial = Scheduler::new(registry(), serial_cfg);
    let u: Vec<f64> = (0..40).map(|i| (i as f64 * 0.37).sin()).collect();

    let mut results = Vec::new();
    for (sched, degrade_first) in [(&mut pooled, false), (&mut serial, true)] {
        let model = sched.registry().id("a").expect("registered");
        let session = sched.open_session(model, DT, 0).expect("open");
        let mut now = 0u64;
        let mut outputs = BTreeMap::new();
        if degrade_first {
            chaos::arm_worker_panic();
        }
        for chunk in u.chunks(9) {
            sched.submit(session, chunk, now, now + 100).expect("submit");
            drain(sched, &mut now, &mut outputs);
            now += 1;
        }
        results.push(outputs.remove(&session).expect("stream output"));
    }
    assert!(serial.is_degraded() && !pooled.is_degraded());
    assert_bits_eq(&results[1], &results[0], "serial vs pooled");
}

/// One kill–restore pass: the same two-session workload is run twice —
/// uninterrupted, and killed at a seeded random round with admitted
/// work still queued, restored from the snapshot bytes, and drained.
/// Both runs must produce bit-identical per-session streams, and a
/// restore against a mismatched registry must fail typed, committing
/// nothing.
fn kill_restore_at_seed(seed: u64) {
    let cfg = ServeConfig { max_chunk_samples: 16, ..Default::default() };
    let mut inj = ChaosInjector::new(ChaosConfig { seed, ..ChaosConfig::default() });

    // Seeded workload: 8 rounds, each submitting one chunk per session.
    let rounds: Vec<Vec<Vec<f64>>> = (0..8)
        .map(|_| {
            (0..2)
                .map(|_| {
                    let n = 1 + inj.pick(12);
                    (0..n).map(|_| (inj.pick(2001) as f64 - 1000.0) / 1000.0).collect()
                })
                .collect()
        })
        .collect();
    let kill_round = inj.pick(rounds.len() - 1);

    let run = |kill_at: Option<usize>| -> Vec<Vec<f64>> {
        let mut sched = Scheduler::new(registry(), cfg.clone());
        let ids = ["a", "b"].map(|name| sched.registry().id(name).expect("registered"));
        let sessions = ids.map(|id| sched.open_session(id, DT, 0).expect("open"));
        let mut now = 1u64;
        let mut outputs: BTreeMap<SessionHandle, Vec<f64>> = BTreeMap::new();
        let mut round = 0;
        while round < rounds.len() {
            if kill_at == Some(round) {
                // Admit this round's and the next round's chunks, then
                // kill with all of them still queued: the snapshot must
                // carry the non-empty admission queue across the crash.
                for r in [round, round + 1] {
                    for (s, chunk) in sessions.iter().zip(&rounds[r]) {
                        sched.submit(*s, chunk, now, now + 200).expect("submit before kill");
                    }
                }
                let snap = sched.snapshot().expect("snapshot");
                drop(sched);

                // A mismatched registry is refused typed; the snapshot
                // bytes are untouched and restore against the right
                // registry still works (nothing was committed).
                let wrong = ModelRegistry::build([
                    ("a".to_string(), model(1.0)),
                    ("b".to_string(), model(9.9)),
                ]);
                assert!(matches!(
                    Scheduler::restore(&snap, &wrong),
                    Err(ServeError::RegistryMismatch { index: 1, .. })
                ));

                sched = Scheduler::restore(&snap, &registry()).expect("restore");
                assert_eq!(sched.queued_requests(), 4, "queued work survives the crash");
                drain(&mut sched, &mut now, &mut outputs);
                round += 2;
            } else {
                for (s, chunk) in sessions.iter().zip(&rounds[round]) {
                    sched.submit(*s, chunk, now, now + 200).expect("submit");
                }
                drain(&mut sched, &mut now, &mut outputs);
                round += 1;
            }
            now += 1;
        }
        sessions.iter().map(|s| outputs.remove(s).expect("session produced output")).collect()
    };

    let uninterrupted = run(None);
    let killed = run(Some(kill_round));
    for (i, (k, u)) in killed.iter().zip(&uninterrupted).enumerate() {
        assert_bits_eq(k, u, &format!("session {i}: killed+restored vs uninterrupted"));
    }
}

/// The kill–restore chaos class in its strongest form: scheduler killed
/// at a seeded random round with a non-empty admission queue, restored
/// from snapshot bytes, remaining work replayed — streams bit-identical
/// to never having crashed (pinned seeds, release-mode CI).
#[test]
fn kill_restore_replays_bit_identically() {
    let _g = lock();
    for seed in [0x0C1A_0515, 0xFEED_5EED, 0xDA7E_2013] {
        kill_restore_at_seed(seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized kill–restore: any seed must replay bit-identically.
    #[test]
    fn kill_restore_bit_identity_holds_for_random_seeds(seed in 1u64..(1u64 << 48)) {
        let _g = lock();
        kill_restore_at_seed(seed);
    }
}

/// Killing a *degraded* scheduler must not quietly un-degrade it: the
/// restored scheduler keeps `rebuilds`, stays on the serial path, serves
/// the queued work that crossed the crash, and still contains panics
/// and retries afterwards — all bit-identical to one clean simulation.
#[test]
fn kill_restore_while_degraded_preserves_ladder_position() {
    let _g = lock();
    let cfg = ServeConfig {
        retry_backoff_base: 1,
        max_retries: 5,
        rebuild_after_panics: 1,
        degrade_after_rebuilds: 1,
        ..Default::default()
    };
    let mut sched = Scheduler::new(registry(), cfg);
    let model = sched.registry().id("b").expect("registered");
    let session = sched.open_session(model, DT, 0).expect("open");
    let sim = sched.registry().get(model).expect("model").clone();
    let u: Vec<f64> = (0..50).map(|i| (i as f64 * 0.17).sin() * 0.9).collect();
    let mut now = 0u64;
    let mut outputs = BTreeMap::new();
    // Two panicked rounds walk the ladder to its last rung.
    for chunk in u[..20].chunks(10) {
        chaos::arm_worker_panic();
        sched.submit(session, chunk, now, now + 100).expect("submit");
        drain(&mut sched, &mut now, &mut outputs);
        now += 1;
    }
    assert_eq!(sched.pool_rebuilds(), 1);
    assert!(sched.is_degraded());

    // Kill the degraded scheduler with a chunk still queued.
    sched.submit(session, &u[20..30], now, now + 100).expect("submit before kill");
    let snap = sched.snapshot().expect("snapshot while degraded");
    drop(sched);
    let mut sched = Scheduler::restore(&snap, &registry()).expect("restore");
    assert_eq!(sched.pool_rebuilds(), 1, "rebuild count survives the crash");
    assert!(sched.is_degraded(), "a degraded scheduler restores degraded, not pooled");
    assert_eq!(sched.queued_requests(), 1, "queued work survives the crash");
    drain(&mut sched, &mut now, &mut outputs);

    // Still on the last rung: a post-restore panic is contained and
    // retried on the serial path, never escalated into a pool respawn.
    chaos::arm_worker_panic();
    sched.submit(session, &u[30..40], now, now + 100).expect("submit degraded");
    drain(&mut sched, &mut now, &mut outputs);
    assert!(sched.is_degraded() && sched.pool_rebuilds() == 1);
    sched.submit(session, &u[40..], now, now + 100).expect("submit");
    drain(&mut sched, &mut now, &mut outputs);
    assert_bits_eq(&outputs[&session], &sim.simulate(DT, &u), "degraded kill–restore stream");
}

/// Killing a scheduler *mid-rebuild-threshold* — panics absorbed but
/// below `rebuild_after_panics` — restores with a fresh pool whose
/// absorbed-panic count starts over (the count lives in the pool that
/// died, and `pool_panic_base` restores to zero with it), while the
/// rebuild count persists. The ladder must then keep escalating:
/// rebuild on a full fresh-pool threshold, degrade past the budget.
#[test]
fn kill_restore_mid_rebuild_restarts_panic_count_but_keeps_escalating() {
    let _g = lock();
    let cfg = ServeConfig {
        retry_backoff_base: 1,
        max_retries: 5,
        rebuild_after_panics: 2,
        degrade_after_rebuilds: 1,
        ..Default::default()
    };
    let mut sched = Scheduler::new(registry(), cfg);
    let model = sched.registry().id("a").expect("registered");
    let session = sched.open_session(model, DT, 0).expect("open");
    let sim = sched.registry().get(model).expect("model").clone();
    let u: Vec<f64> = (0..60).map(|i| (i as f64 * 0.29).cos() * 0.7).collect();
    let mut now = 0u64;
    let mut outputs = BTreeMap::new();

    // One absorbed panic: below the threshold of two, no rebuild yet.
    chaos::arm_worker_panic();
    sched.submit(session, &u[..10], now, now + 100).expect("submit");
    drain(&mut sched, &mut now, &mut outputs);
    assert_eq!(sched.pool_rebuilds(), 0);
    assert!(!sched.is_degraded());

    let snap = sched.snapshot().expect("snapshot mid-threshold");
    drop(sched);
    let mut sched = Scheduler::restore(&snap, &registry()).expect("restore");
    assert_eq!(sched.pool_rebuilds(), 0);
    assert!(!sched.is_degraded());

    // The half-spent threshold died with the old pool: the next panic
    // is strike one against the fresh pool, not strike two.
    chaos::arm_worker_panic();
    sched.submit(session, &u[10..20], now, now + 100).expect("submit");
    drain(&mut sched, &mut now, &mut outputs);
    assert_eq!(sched.pool_rebuilds(), 0, "a fresh pool restarts the panic count");

    // Strike two on the fresh pool completes the threshold: rebuild.
    chaos::arm_worker_panic();
    sched.submit(session, &u[20..30], now, now + 100).expect("submit");
    drain(&mut sched, &mut now, &mut outputs);
    assert_eq!(sched.pool_rebuilds(), 1, "the ladder keeps escalating after restore");
    assert!(!sched.is_degraded());

    // Two more strikes exhaust the rebuild budget: degrade.
    for chunk in u[30..50].chunks(10) {
        chaos::arm_worker_panic();
        sched.submit(session, chunk, now, now + 100).expect("submit");
        drain(&mut sched, &mut now, &mut outputs);
    }
    assert_eq!(sched.pool_rebuilds(), 1);
    assert!(sched.is_degraded(), "past the budget the restored scheduler still degrades");

    sched.submit(session, &u[50..], now, now + 100).expect("submit");
    drain(&mut sched, &mut now, &mut outputs);
    assert_bits_eq(&outputs[&session], &sim.simulate(DT, &u), "mid-rebuild kill–restore stream");
}
