//! Decode-fuzz suite for the durability wire format.
//!
//! Pins the decoder's *totality* contract: any byte string — truncated
//! at every boundary, bit-flipped, or crafted with lying length/count
//! fields behind a **valid** checksum — produces a typed
//! [`WireError`], never a panic and never an allocation the input's
//! own length cannot justify. Round-trip properties pin the other
//! direction: `decode(encode(x)) == x` bit-exactly for random records,
//! random kernel checkpoints, and full scheduler snapshots.

use bytes::{BufMut, Bytes, BytesMut};
use proptest::prelude::*;
use rvf_core::{CompiledSim, SimBuilder, StateCheckpoint};
use rvf_serve::wire::{
    checksum64, decode_stream, DeltaOp, DeltaRecord, DigestRecord, ResponseChunk,
    SchedulerSnapshot, SnapshotModel, SnapshotRequest, SnapshotSession, SnapshotSlot,
    StimulusChunk, StreamEnd, WireError, WireRecord, HEADER_LEN, KIND_CHECKPOINT, KIND_DELTA,
    KIND_SNAPSHOT, KIND_STIMULUS, MAGIC, WIRE_VERSION,
};
use rvf_serve::{ModelRegistry, Scheduler, ServeConfig};

/// Seeded xorshift64* for mutation positions (independent of the
/// proptest shim's own RNG so mutation counts are explicit).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn model() -> CompiledSim {
    let mut b = SimBuilder::new();
    let stat = b.drive_poly(&[0.0, 0.8, 0.02]);
    let d = b.drive_poly(&[0.0, 1.0, 0.1]);
    b.set_static_drive(stat);
    b.block_real(-1.0e9, d);
    b.block_pair(-0.5e9, 2.0e9, d, stat);
    b.build()
}

/// A realistic checkpoint: an actual mid-stream kernel state.
fn live_checkpoint() -> StateCheckpoint {
    let sim = model();
    let mut state = sim.new_state();
    let u: Vec<f64> = (0..13).map(|i| (i as f64 * 0.31).sin()).collect();
    let mut out = vec![0.0; u.len()];
    sim.simulate_into(1.0e-10, &u, &mut state, &mut out).expect("stream");
    state.export().expect("export")
}

/// A realistic snapshot: an actual scheduler with served and queued
/// work.
fn live_snapshot_bytes() -> Bytes {
    let registry = ModelRegistry::build([("m".to_string(), model())]);
    let mut sched = Scheduler::new(registry, ServeConfig::default());
    let id = sched.registry().id("m").expect("registered");
    let s0 = sched.open_session(id, 1.0e-10, 0).expect("open");
    let s1 = sched.open_session(id, 2.0e-10, 0).expect("open");
    sched.submit(s0, &[0.1, 0.2, 0.3], 0, 100).expect("submit");
    sched.tick(1);
    sched.submit(s0, &[0.4; 5], 2, 100).expect("submit");
    sched.submit(s1, &[-0.2; 2], 2, 100).expect("submit");
    sched.close_session(s1).expect("close");
    sched.snapshot().expect("snapshot")
}

/// One valid encoded exemplar of every record kind.
fn exemplars() -> Vec<(&'static str, Bytes)> {
    vec![
        (
            "stimulus",
            WireRecord::Stimulus(StimulusChunk {
                session: 0x0000_0003_0000_0001,
                request: 41,
                deadline: 99,
                samples: vec![0.25, -0.5, 1.0e-12, -0.0],
            })
            .encode(),
        ),
        (
            "response",
            WireRecord::Response(ResponseChunk {
                session: 7,
                request: 8,
                samples: vec![3.25, f64::MIN_POSITIVE],
            })
            .encode(),
        ),
        ("checkpoint", WireRecord::Checkpoint(live_checkpoint()).encode()),
        ("snapshot", live_snapshot_bytes()),
        (
            "delta-open",
            WireRecord::Delta(DeltaRecord {
                seq: 1,
                op: DeltaOp::SessionOpened {
                    session: 0x0000_0002_0000_0000,
                    model: 0,
                    dt_bits: 1.0e-10f64.to_bits(),
                    last_activity: 12,
                    state: live_checkpoint(),
                },
            })
            .encode(),
        ),
        (
            "delta-admit",
            WireRecord::Delta(DeltaRecord {
                seq: 2,
                op: DeltaOp::Admitted {
                    request: 7,
                    session: 0x0000_0002_0000_0000,
                    deadline: 200,
                    not_before: 13,
                    input: vec![0.5, -0.25, 1.0e-9, -0.0],
                },
            })
            .encode(),
        ),
        (
            "digest",
            WireRecord::Digest(DigestRecord { seq: 2, digest: 0xDEAD_BEEF_0BAD_F00D }).encode(),
        ),
    ]
}

/// Frames an arbitrary payload with a *valid* checksum — the tool for
/// crafting records whose only lie is an inner length/count field.
fn frame_raw(kind: u8, version: u16, payload: &[u8]) -> Bytes {
    let mut b = BytesMut::with_capacity(HEADER_LEN + payload.len() + 8);
    b.put_u32_le(MAGIC);
    b.put_u16_le(version);
    b.put_u8(kind);
    b.put_u8(0);
    b.put_u64_le(payload.len() as u64);
    b.put_slice(payload);
    let body = b.freeze();
    let sum = checksum64(body.as_ref());
    let mut full = BytesMut::with_capacity(body.len() + 8);
    full.put_slice(body.as_ref());
    full.put_u64_le(sum);
    full.freeze()
}

#[test]
fn truncation_at_every_boundary_is_typed() {
    for (what, bytes) in exemplars() {
        let raw = bytes.as_ref();
        for len in 0..raw.len() {
            let cut = Bytes::from(raw[..len].to_vec());
            match WireRecord::decode(&cut) {
                Err(_) => {}
                Ok(_) => panic!("{what}: {len}-byte prefix of a {}-byte record decoded", raw.len()),
            }
        }
        assert!(WireRecord::decode(&bytes).is_ok(), "{what}: the untruncated record decodes");
    }
}

#[test]
fn wrong_magic_version_and_kind_are_typed() {
    for (what, bytes) in exemplars() {
        let raw = bytes.as_ref();
        let mut m = raw.to_vec();
        m[0] = m[0].wrapping_add(1);
        assert!(
            matches!(WireRecord::decode(&Bytes::from(m)), Err(WireError::BadMagic { .. })),
            "{what}"
        );
        let mut v = raw.to_vec();
        v[4] = 0x7F;
        assert!(
            matches!(
                WireRecord::decode(&Bytes::from(v)),
                Err(WireError::UnsupportedVersion { .. })
            ),
            "{what}"
        );
        let mut k = raw.to_vec();
        k[6] = 0;
        assert!(
            matches!(
                WireRecord::decode(&Bytes::from(k)),
                Err(WireError::UnknownRecord { kind: 0 })
            ),
            "{what}"
        );
        // A future version is rejected even with a recomputed checksum:
        // version gates before payload parsing.
        let plen = raw.len() - HEADER_LEN - 8;
        let future = frame_raw(raw[6], WIRE_VERSION + 1, &raw[HEADER_LEN..HEADER_LEN + plen]);
        assert!(
            matches!(WireRecord::decode(&future), Err(WireError::UnsupportedVersion { .. })),
            "{what}"
        );
    }
}

#[test]
fn lying_count_fields_with_valid_checksums_cannot_oom() {
    // For every record kind, a payload whose first count/length field
    // claims ~4 billion elements behind a perfectly valid checksum.
    // `BadCount` must fire before any allocation is sized from it.
    let mut stim = BytesMut::new();
    stim.put_u64_le(1);
    stim.put_u64_le(2);
    stim.put_u64_le(3);
    stim.put_u32_le(u32::MAX);
    let mut resp = BytesMut::new();
    resp.put_u64_le(1);
    resp.put_u64_le(2);
    resp.put_u32_le(u32::MAX);
    let mut ckpt = BytesMut::new();
    for _ in 0..4 {
        ckpt.put_u64_le(1);
    }
    ckpt.put_u64_le(0);
    ckpt.put_u8(1);
    ckpt.put_u64_le(0);
    ckpt.put_u64_le(u64::MAX);
    ckpt.put_u32_le(u32::MAX); // v0 count lies
    let mut snap = BytesMut::new();
    for _ in 0..6 {
        snap.put_u64_le(1); // cfg u64 fields
    }
    snap.put_u32_le(1); // max_retries
    snap.put_u64_le(1);
    snap.put_u64_le(1);
    snap.put_u64_le(1);
    snap.put_u64_le(0); // next_request
    snap.put_u64_le(0); // rebuilds
    snap.put_u8(0); // degraded
    snap.put_u32_le(u32::MAX); // model count lies
    let mut delta = BytesMut::new();
    delta.put_u64_le(3); // seq
    delta.put_u8(2); // OP_ADMIT
    for _ in 0..4 {
        delta.put_u64_le(1); // request, session, deadline, not_before
    }
    delta.put_u32_le(u32::MAX); // admitted sample count lies
    for (kind, payload) in [
        (KIND_STIMULUS, stim),
        (rvf_serve::wire::KIND_RESPONSE, resp),
        (KIND_CHECKPOINT, ckpt),
        (KIND_SNAPSHOT, snap),
        (KIND_DELTA, delta),
    ] {
        let bytes = frame_raw(kind, WIRE_VERSION, payload.freeze().as_ref());
        assert!(
            matches!(WireRecord::decode(&bytes), Err(WireError::BadCount { .. })),
            "kind {kind}: lying count must be rejected before allocation"
        );
    }
}

#[test]
fn lying_payload_length_is_typed() {
    for (what, bytes) in exemplars() {
        let raw = bytes.as_ref();
        let plen = raw.len() - HEADER_LEN - 8;
        let payload = &raw[HEADER_LEN..HEADER_LEN + plen];
        // Declared length one past the actual payload: the trailer
        // bytes get absorbed into the "payload" and the buffer comes up
        // short.
        let mut b = BytesMut::new();
        b.put_u32_le(MAGIC);
        b.put_u16_le(WIRE_VERSION);
        b.put_u8(raw[6]);
        b.put_u8(0);
        b.put_u64_le(plen as u64 + 1);
        b.put_slice(payload);
        let body = b.freeze();
        let sum = checksum64(body.as_ref());
        let mut full = BytesMut::new();
        full.put_slice(body.as_ref());
        full.put_u64_le(sum);
        assert!(
            matches!(WireRecord::decode(&full.freeze()), Err(WireError::Truncated { .. })),
            "{what}: inflated payload_len"
        );
        // Declared length one short: the spare byte trails the record.
        if plen > 0 {
            let mut b = BytesMut::new();
            b.put_u32_le(MAGIC);
            b.put_u16_le(WIRE_VERSION);
            b.put_u8(raw[6]);
            b.put_u8(0);
            b.put_u64_le(plen as u64 - 1);
            b.put_slice(payload);
            let body = b.freeze();
            let sum = checksum64(body.as_ref());
            let mut full = BytesMut::new();
            full.put_slice(body.as_ref());
            full.put_u64_le(sum);
            assert!(
                matches!(WireRecord::decode(&full.freeze()), Err(WireError::TrailingBytes { .. })),
                "{what}: deflated payload_len"
            );
        }
    }
}

/// Concatenated bytes of every exemplar, in order — a replication-log
/// shaped buffer for the stream-decoding fuzz.
fn exemplar_stream() -> (Vec<Bytes>, Bytes) {
    let records: Vec<Bytes> = exemplars().into_iter().map(|(_, b)| b).collect();
    let mut buf = Vec::new();
    for r in &records {
        buf.extend_from_slice(r.as_ref());
    }
    (records, Bytes::from(buf))
}

/// `decode_stream` over every exemplar back to back: each record comes
/// out bit-identical to its framing, the iterator ends clean, and the
/// consumed offset is the full buffer.
#[test]
fn stream_decodes_every_kind_to_a_clean_end() {
    let (records, buf) = exemplar_stream();
    let total = buf.len();
    let mut stream = decode_stream(buf);
    for (i, want) in records.iter().enumerate() {
        let got = stream.next().expect("record present").expect("record decodes");
        assert_eq!(got.encode(), *want, "record {i} did not survive the stream");
    }
    assert!(stream.next().is_none());
    assert!(matches!(stream.end(), Some(StreamEnd::Clean)));
    assert_eq!(stream.consumed(), total);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cut a multi-record stream at *any* byte: every whole record
    /// before the cut decodes, and the end state is `Clean` exactly at
    /// record boundaries and `Partial` (with the boundary as the resume
    /// offset) everywhere else — never a hard error, because a
    /// truncated tail is a log caught mid-append, not corruption.
    #[test]
    fn stream_cut_anywhere_distinguishes_clean_from_partial(seed in 1u64..(1u64 << 48)) {
        let (records, buf) = exemplar_stream();
        let mut rng = Rng::new(seed);
        let cut = rng.below(buf.len() + 1);
        let mut boundary = 0usize;
        let mut whole = 0usize;
        for r in &records {
            if boundary + r.len() > cut {
                break;
            }
            boundary += r.len();
            whole += 1;
        }
        let mut stream = decode_stream(Bytes::from(buf.as_ref()[..cut].to_vec()));
        for i in 0..whole {
            let got = stream.next().expect("record present");
            prop_assert!(got.is_ok(), "whole record {i} failed under cut {cut}");
        }
        prop_assert!(stream.next().is_none());
        prop_assert_eq!(stream.consumed(), boundary);
        match stream.end() {
            Some(StreamEnd::Clean) => prop_assert_eq!(cut, boundary, "Clean off a boundary"),
            Some(StreamEnd::Partial { offset, .. }) => {
                prop_assert!(cut != boundary, "Partial at a boundary");
                prop_assert_eq!(offset, boundary, "resume offset must be the last boundary");
            }
            None => prop_assert!(false, "stream not finished"),
        }
    }

    /// Bit-flip a multi-record stream anywhere: iteration terminates
    /// with some clean prefix of records followed by either a typed
    /// error, a partial tail, or — if the flips landed in the tail
    /// record's payload without breaking its checksum — a clean end.
    /// Never a panic, never an unbounded loop.
    #[test]
    fn stream_bit_flips_terminate_typed(seed in 1u64..(1u64 << 48)) {
        let (records, buf) = exemplar_stream();
        let mut rng = Rng::new(seed);
        let mut mutant = buf.as_ref().to_vec();
        for _ in 0..1 + rng.below(4) {
            let bit = rng.below(mutant.len() * 8);
            mutant[bit / 8] ^= 1 << (bit % 8);
        }
        let mut stream = decode_stream(Bytes::from(mutant));
        let mut yielded = 0usize;
        let mut erred = false;
        for item in stream.by_ref() {
            match item {
                Ok(_) => yielded += 1,
                Err(_) => {
                    erred = true;
                    break;
                }
            }
        }
        prop_assert!(yielded <= records.len(), "stream invented records");
        if !erred {
            prop_assert!(stream.end().is_some(), "stream neither erred nor finished");
        }
    }

    /// ≥ 512 random bit-flip mutations per record type (64 cases × 8
    /// mutations): every mutant decodes to a typed error — or, when the
    /// flips happen to cancel, to the original record. Never a panic.
    #[test]
    fn random_bit_flips_decode_typed(seed in 1u64..(1u64 << 48)) {
        let mut rng = Rng::new(seed);
        for (what, bytes) in exemplars() {
            let raw = bytes.as_ref();
            for _ in 0..8 {
                let mut mutant = raw.to_vec();
                for _ in 0..1 + rng.below(4) {
                    let bit = rng.below(mutant.len() * 8);
                    mutant[bit / 8] ^= 1 << (bit % 8);
                }
                let unchanged = mutant == raw;
                match WireRecord::decode(&Bytes::from(mutant)) {
                    Err(_) => {}
                    Ok(_) => prop_assert!(
                        unchanged,
                        "{what}: a mutated record decoded successfully"
                    ),
                }
            }
        }
    }

    /// Random truncations and random trailing garbage on top of the
    /// exhaustive boundary sweep: still typed.
    #[test]
    fn random_reframings_decode_typed(seed in 1u64..(1u64 << 48)) {
        let mut rng = Rng::new(seed);
        for (_what, bytes) in exemplars() {
            let raw = bytes.as_ref();
            let cut = rng.below(raw.len());
            prop_assert!(WireRecord::decode(&Bytes::from(raw[..cut].to_vec())).is_err());
            let mut long = raw.to_vec();
            long.extend(std::iter::repeat(0xA5).take(1 + rng.below(9)));
            let got = WireRecord::decode(&Bytes::from(long));
            let trailing = matches!(got, Err(WireError::TrailingBytes { .. }));
            prop_assert!(trailing, "expected TrailingBytes, got {:?}", got);
        }
    }

    /// Pure-noise buffers decode typed.
    #[test]
    fn random_garbage_decodes_typed(seed in 1u64..(1u64 << 48)) {
        let mut rng = Rng::new(seed);
        let len = rng.below(200);
        let noise: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        prop_assert!(WireRecord::decode(&Bytes::from(noise)).is_err());
    }

    /// Round trip on random stimulus/response records, including NaN
    /// and ±∞ payload samples: the wire layer carries raw bit patterns,
    /// so re-encoding the decoded record reproduces the exact bytes.
    #[test]
    fn random_chunks_round_trip_bit_exact(seed in 1u64..(1u64 << 48)) {
        let mut rng = Rng::new(seed);
        let mut samples: Vec<f64> = (0..rng.below(24))
            .map(|_| f64::from_bits(rng.next()))
            .collect();
        samples.push(f64::NAN);
        samples.push(f64::NEG_INFINITY);
        let records = [
            WireRecord::Stimulus(StimulusChunk {
                session: rng.next(),
                request: rng.next(),
                deadline: rng.next(),
                samples: samples.clone(),
            }),
            WireRecord::Response(ResponseChunk {
                session: rng.next(),
                request: rng.next(),
                samples,
            }),
        ];
        for record in records {
            let encoded = record.encode();
            let decoded = WireRecord::decode(&encoded);
            prop_assert!(decoded.is_ok());
            if let Ok(back) = decoded {
                prop_assert_eq!(back.encode(), encoded);
            }
        }
    }

    /// Round trip on random (even shape-inconsistent) checkpoints and
    /// hand-built snapshots: `decode(encode(x)) == x`. Semantic
    /// validation is `import_state`/`restore`'s job, not the wire's.
    #[test]
    fn random_checkpoints_and_snapshots_round_trip(seed in 1u64..(1u64 << 48)) {
        let mut rng = Rng::new(seed);
        let ckpt = StateCheckpoint {
            shape: [rng.below(5) as u64, rng.below(5) as u64, rng.next() % 4, rng.next() % 3],
            v0: (0..rng.below(6)).map(|_| f64::from_bits(rng.next())).collect(),
            sre: (0..rng.below(6)).map(|_| f64::from_bits(rng.next())).collect(),
            sim: (0..rng.below(6)).map(|_| f64::from_bits(rng.next())).collect(),
            uprev: rng.next(),
            started: rng.next() % 2 == 0,
            samples: rng.next(),
            coef_dt: rng.next(),
        };
        let snap = SchedulerSnapshot {
            cfg: ServeConfig {
                max_sessions: rng.below(1 << 20),
                idle_timeout: rng.next(),
                ..ServeConfig::default()
            },
            next_request: rng.next(),
            rebuilds: rng.next() % 8,
            degraded: rng.next() % 2 == 0,
            models: vec![SnapshotModel { name: "αβγ-model".to_string(), fingerprint: rng.next() }],
            slots: vec![
                SnapshotSlot { generation: rng.next() as u32, session: None },
                SnapshotSlot {
                    generation: rng.next() as u32,
                    session: Some(SnapshotSession {
                        model: 0,
                        dt_bits: rng.next(),
                        last_activity: rng.next(),
                        state: ckpt.clone(),
                    }),
                },
            ],
            free: vec![0],
            queue: vec![SnapshotRequest {
                id: rng.next(),
                session: rng.next(),
                deadline: rng.next(),
                attempts: rng.next() as u32,
                not_before: rng.next(),
                input: (0..rng.below(8)).map(|_| f64::from_bits(rng.next())).collect(),
            }],
        };
        for record in [WireRecord::Checkpoint(ckpt), WireRecord::Snapshot(snap)] {
            let encoded = record.encode();
            let decoded = WireRecord::decode(&encoded);
            prop_assert!(decoded.is_ok());
            if let Ok(back) = decoded {
                prop_assert_eq!(back.encode(), encoded);
            }
        }
    }

    /// End to end on random models and states: a kernel state shipped
    /// through the wire (export → encode → decode → import) continues
    /// bit-identically to the state that never left the process.
    #[test]
    fn checkpoints_of_random_models_resume_bitwise(
        a in -3.0e9..-0.2e9f64,
        gain in 0.2..2.0f64,
        cut in 1usize..40,
    ) {
        let mut b = SimBuilder::new();
        let s = b.drive_poly(&[0.0, gain, 0.05]);
        b.set_static_drive(s);
        b.block_real(a, s);
        let sim = b.build();
        let dt = 1.0e-10;
        let u: Vec<f64> = (0..40).map(|i| (i as f64 * 0.23).sin()).collect();
        let want = sim.simulate(dt, &u);
        let mut state = sim.new_state();
        let mut head = vec![0.0; cut];
        sim.simulate_into(dt, &u[..cut], &mut state, &mut head).expect("head");
        let bytes = WireRecord::Checkpoint(state.export().expect("export")).encode();
        let Ok(WireRecord::Checkpoint(ckpt)) = WireRecord::decode(&bytes) else {
            panic!("checkpoint failed to round trip");
        };
        let mut resumed = sim.import_state(&ckpt).expect("import");
        let mut tail = vec![0.0; 40 - cut];
        sim.simulate_into(dt, &u[cut..], &mut resumed, &mut tail).expect("tail");
        for (i, (g, w)) in head.iter().chain(&tail).zip(&want).enumerate() {
            prop_assert_eq!(g.to_bits(), w.to_bits(), "sample {}", i);
        }
    }
}
