//! Warm-standby replication suite: deterministic primary-kill failover.
//!
//! Every test drives a replicated pair — a primary [`Scheduler`]
//! journaling deltas into an in-memory log, a [`Follower`] tailing it —
//! and asserts the replication contract:
//!
//! 1. the follower's reconstructed state digest equals the primary's at
//!    every quiescent point (byte equality of canonical state),
//! 2. killing the primary with the follower 0..n deltas behind,
//!    promoting, and resubmitting unacknowledged chunks yields client
//!    streams `f64`-bit-identical to an uninterrupted run — duplicate
//!    completions included,
//! 3. a follower that cannot prove byte-identity — retuned models,
//!    corrupted deltas, permuted or gapped sequences — refuses with a
//!    typed [`ReplicaError`] and commits nothing,
//! 4. the rebuild→degrade ladder (retries, pool rebuilds, degradation)
//!    replicates exactly and survives promotion.
//!
//! The worker-panic seam is process-global and one-shot, so every test
//! serializes through [`lock`], as in the chaos suite.

use std::sync::{Arc, Mutex, MutexGuard};

use bytes::Bytes;
use proptest::prelude::*;
use rvf_core::{CompiledSim, SimBuilder};
use rvf_serve::{
    chaos::{self, ChaosConfig, ChaosInjector, Fault},
    replica::{Follower, ReplicaError, ReplicationSink},
    wire::{DeltaOp, DeltaRecord, WireRecord},
    Event, ModelRegistry, Scheduler, ServeConfig, ServeError, SessionHandle,
};

static POISON_GUARD: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    POISON_GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

/// Same nonlinear Hammerstein-shaped model family as the chaos suite.
fn model(k: f64) -> CompiledSim {
    let mut b = SimBuilder::new();
    let stat = b.drive_poly(&[0.0, 0.8, 0.05 * k]);
    let d1 = b.drive_poly(&[0.0, 1.0, 0.1]);
    let d2 = b.drive_poly(&[0.1, -0.4]);
    b.set_static_drive(stat);
    b.block_real(-1.0e9 * k, d1);
    b.block_pair(-0.5e9, 2.0e9, d1, d2);
    b.build()
}

fn registry() -> ModelRegistry {
    ModelRegistry::build([("a".to_string(), model(1.0)), ("b".to_string(), model(1.7))])
}

const DT: f64 = 1.0e-10;

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: bit mismatch at sample {i}: {g} vs {w}");
    }
}

/// A record-granular replication sink: keeps each framed record
/// separate so tests can truncate the log at exact delta boundaries
/// (simulating a follower that died `lag` deltas behind the tip) or
/// splice in corrupted records.
#[derive(Debug, Clone, Default)]
struct RecordLog(Arc<Mutex<Vec<Bytes>>>);

impl ReplicationSink for RecordLog {
    fn append(&mut self, record: Bytes) {
        self.0.lock().unwrap().push(record);
    }
}

impl RecordLog {
    fn records(&self) -> Vec<Bytes> {
        self.0.lock().unwrap().clone()
    }

    fn all_bytes(&self) -> Bytes {
        concat(&self.records())
    }

    /// The log as a lagging follower saw it: everything up to (but not
    /// including) the `lag`-th delta from the tip. `lag == 0` is the
    /// full log; digests past the cut die with the deltas they cover.
    fn lagged_bytes(&self, lag: usize) -> Bytes {
        let records = self.records();
        let delta_at: Vec<usize> = records
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(WireRecord::decode(r), Ok(WireRecord::Delta(_))))
            .map(|(i, _)| i)
            .collect();
        let lag = lag.min(delta_at.len());
        let cut = if lag == 0 { records.len() } else { delta_at[delta_at.len() - lag] };
        concat(&records[..cut])
    }
}

fn concat(records: &[Bytes]) -> Bytes {
    let mut buf = Vec::new();
    for record in records {
        buf.extend_from_slice(record.as_ref());
    }
    Bytes::from(buf)
}

/// One client of the replicated tier. `stream` is the authoritative
/// client-side record of every output sample, indexed by stream
/// offset; `pos` is where the next completion's output lands. After a
/// failover `pos` rewinds to the promoted scheduler's sample count, so
/// re-served chunks are verified **bit-for-bit** against what the dead
/// primary already delivered instead of blindly appended.
struct Client {
    session: SessionHandle,
    model: &'static str,
    chunks: Vec<Vec<f64>>,
    stream: Vec<f64>,
    pos: usize,
}

fn fold(clients: &mut [Client], session: SessionHandle, output: &[f64]) {
    let c = clients
        .iter_mut()
        .find(|c| c.session == session)
        .expect("completion for an unknown session");
    for (i, &v) in output.iter().enumerate() {
        let at = c.pos + i;
        if at < c.stream.len() {
            assert_eq!(
                v.to_bits(),
                c.stream[at].to_bits(),
                "re-served chunk diverged from the dead primary's output at sample {at}"
            );
        } else {
            assert_eq!(at, c.stream.len(), "completion left a gap in the stream");
            c.stream.push(v);
        }
    }
    c.pos += output.len();
}

/// Ticks until the queue drains, folding completions into the clients'
/// streams; any `Failed` event is fatal here.
fn drain_into(sched: &mut Scheduler, now: &mut u64, clients: &mut [Client]) {
    for _ in 0..64 {
        if sched.queued_requests() == 0 {
            break;
        }
        *now += 1;
        for event in sched.tick(*now) {
            match event {
                Event::Completed { session, output, .. } => fold(clients, session, &output),
                Event::Failed { error, request, .. } => {
                    panic!("request {request:?} failed under drain: {error}")
                }
                other => panic!("unexpected event under drain: {other:?}"),
            }
        }
    }
    assert_eq!(sched.queued_requests(), 0, "scheduler wedged: queue did not drain");
}

/// Kills `primary` with the follower `lag` deltas behind the log tip,
/// promotes a fresh follower from the surviving prefix, drains whatever
/// the promoted scheduler still has queued (re-serving anything whose
/// completion delta died with the primary), and resubmits every
/// accepted chunk past the promoted scheduler's sample count. Sessions
/// whose very `SessionOpened` delta was lost are reopened and replayed
/// from sample zero.
fn failover(
    primary: Scheduler,
    log: &RecordLog,
    lag: usize,
    clients: &mut Vec<Client>,
    now: &mut u64,
) -> Scheduler {
    let surviving = log.lagged_bytes(lag);
    let mut follower = Follower::new(registry());
    follower.tail(&surviving).expect("follower tails the surviving log prefix");
    let follower_digest = follower.state_digest().expect("follower digest");
    drop(primary); // the kill: everything not yet replicated is gone
    let mut sched = follower.promote().expect("promote the warm standby");
    assert_eq!(
        sched.state_digest().expect("promoted digest"),
        follower_digest,
        "promotion must preserve canonical state byte-for-byte"
    );

    for c in clients.iter_mut() {
        match sched.samples(c.session) {
            Ok(n) => c.pos = n as usize,
            Err(_) => {
                // The open delta died with the primary: start the
                // session over and replay its whole history.
                let id = sched.registry().id(c.model).expect("registered");
                c.session = sched.open_session(id, DT, *now).expect("reopen lost session");
                c.pos = 0;
            }
        }
    }
    // Serve whatever admissions survived in the replicated queue first…
    drain_into(&mut sched, now, clients);
    // …then resubmit the chunks whose admissions died with the primary.
    for c in clients.iter() {
        let have = sched.samples(c.session).expect("live session") as usize;
        let mut cum = 0usize;
        let mut on_boundary = have == 0;
        for chunk in &c.chunks {
            if cum >= have {
                sched.submit(c.session, chunk, *now, *now + 200).expect("resubmit lost chunk");
            }
            cum += chunk.len();
            on_boundary |= cum == have;
        }
        assert!(on_boundary, "promoted sample count must sit on a chunk boundary");
    }
    drain_into(&mut sched, now, clients);
    sched
}

/// The same workload served by a never-killed scheduler: the reference
/// streams every failover run must reproduce bit-for-bit.
fn uninterrupted_run(rounds: &[Vec<Vec<f64>>]) -> Vec<Vec<f64>> {
    let cfg = ServeConfig { max_chunk_samples: 16, ..Default::default() };
    let mut sched = Scheduler::new(registry(), cfg);
    let mut clients: Vec<Client> = ["a", "b"]
        .iter()
        .map(|name| {
            let id = sched.registry().id(name).expect("registered");
            Client {
                session: sched.open_session(id, DT, 0).expect("open"),
                model: name,
                chunks: Vec::new(),
                stream: Vec::new(),
                pos: 0,
            }
        })
        .collect();
    let mut now = 1u64;
    for round in rounds {
        for (c, chunk) in clients.iter_mut().zip(round) {
            sched.submit(c.session, chunk, now, now + 200).expect("submit");
            c.chunks.push(chunk.clone());
        }
        drain_into(&mut sched, &mut now, &mut clients);
        now += 1;
    }
    clients.into_iter().map(|c| c.stream).collect()
}

/// One pinned failover pass at follower lag `lag`: eight two-session
/// rounds; between rounds 4 and 5 the primary dies with round 4 served
/// (responses delivered, completion deltas at the log tip) and round 5
/// admitted but unserved. The lag cut therefore spans completion *and*
/// admission deltas, exercising both duplicate re-serving and true
/// resubmission.
fn failover_at_lag(lag: usize) {
    let mut inj = ChaosInjector::new(ChaosConfig { seed: 0xFA11_07E4, ..ChaosConfig::default() });
    let rounds: Vec<Vec<Vec<f64>>> = (0..8)
        .map(|_| {
            (0..2)
                .map(|_| {
                    let n = 1 + inj.pick(12);
                    (0..n).map(|_| (inj.pick(2001) as f64 - 1000.0) / 1000.0).collect()
                })
                .collect()
        })
        .collect();
    let reference = uninterrupted_run(&rounds);

    let cfg = ServeConfig { max_chunk_samples: 16, ..Default::default() };
    let log = RecordLog::default();
    let mut sched = Scheduler::new(registry(), cfg);
    sched.attach_replica(Box::new(log.clone()), 1).expect("attach");
    let mut clients: Vec<Client> = ["a", "b"]
        .iter()
        .map(|name| {
            let id = sched.registry().id(name).expect("registered");
            Client {
                session: sched.open_session(id, DT, 0).expect("open"),
                model: name,
                chunks: Vec::new(),
                stream: Vec::new(),
                pos: 0,
            }
        })
        .collect();
    let mut now = 1u64;
    for round in &rounds[..4] {
        for (c, chunk) in clients.iter_mut().zip(round) {
            sched.submit(c.session, chunk, now, now + 200).expect("submit");
            c.chunks.push(chunk.clone());
        }
        drain_into(&mut sched, &mut now, &mut clients);
        now += 1;
    }
    // Round 4 is admitted and served (the clients hold its outputs)…
    for (c, chunk) in clients.iter_mut().zip(&rounds[4]) {
        sched.submit(c.session, chunk, now, now + 200).expect("submit");
        c.chunks.push(chunk.clone());
    }
    now += 1;
    for event in sched.tick(now) {
        match event {
            Event::Completed { session, output, .. } => fold(&mut clients, session, &output),
            other => panic!("unexpected event before the kill: {other:?}"),
        }
    }
    // …round 5 is admitted but unserved — and the primary dies.
    for (c, chunk) in clients.iter_mut().zip(&rounds[5]) {
        sched.submit(c.session, chunk, now, now + 200).expect("submit");
        c.chunks.push(chunk.clone());
    }
    let mut sched = failover(sched, &log, lag, &mut clients, &mut now);

    for round in &rounds[6..] {
        for (c, chunk) in clients.iter_mut().zip(round) {
            sched.submit(c.session, chunk, now, now + 200).expect("submit");
            c.chunks.push(chunk.clone());
        }
        drain_into(&mut sched, &mut now, &mut clients);
        now += 1;
    }

    for (i, c) in clients.iter().enumerate() {
        let total: usize = c.chunks.iter().map(Vec::len).sum();
        assert_eq!(
            sched.samples(c.session).expect("live") as usize,
            total,
            "lag {lag}, session {i}: promoted tier lost samples"
        );
        assert_bits_eq(
            &c.stream,
            &reference[i],
            &format!("lag {lag}, session {i}: failover stream vs uninterrupted run"),
        );
    }
}

/// The acceptance pin: primary killed with the follower lagging
/// k ∈ {0, 1, 4} deltas — every client's completed output stream is
/// `f64`-bit-identical to the uninterrupted run.
#[test]
fn failover_streams_bit_identical_at_lag_0_1_4() {
    let _g = lock();
    for lag in [0, 1, 4] {
        failover_at_lag(lag);
    }
}

/// A follower holding retuned model tables refuses at the earliest
/// possible point — the baseline — with the typed registry mismatch,
/// and stays refusing at promotion.
#[test]
fn retuned_model_refuses_baseline_and_promotion() {
    let _g = lock();
    let log = RecordLog::default();
    let mut primary = Scheduler::new(registry(), ServeConfig::default());
    primary.attach_replica(Box::new(log.clone()), 1).expect("attach");
    let id = primary.registry().id("a").expect("registered");
    let session = primary.open_session(id, DT, 0).expect("open");
    primary.submit(session, &[0.1, 0.2], 0, 100).expect("submit");
    primary.tick(1);

    let retuned =
        ModelRegistry::build([("a".to_string(), model(1.0)), ("b".to_string(), model(9.9))]);
    let mut follower = Follower::new(retuned);
    let err = follower.tail(&log.all_bytes()).expect_err("retuned tables must refuse");
    assert!(
        matches!(err, ReplicaError::Serve(ServeError::RegistryMismatch { index: 1, .. })),
        "expected a typed registry mismatch, got {err}"
    );
    assert!(!follower.has_baseline(), "a refused baseline commits nothing");
    assert!(matches!(
        follower.promote(),
        Err(ReplicaError::Serve(ServeError::RegistryMismatch { .. }))
    ));
}

/// A corrupted delta whose frame still checksums (a lying primary, not
/// a torn write) is caught by the next digest: the follower reports
/// `Diverged` with both digests and refuses promotion.
#[test]
fn corrupted_delta_is_caught_by_the_next_digest() {
    let _g = lock();
    let log = RecordLog::default();
    let mut primary = Scheduler::new(registry(), ServeConfig::default());
    primary.attach_replica(Box::new(log.clone()), 1).expect("attach");
    let id = primary.registry().id("a").expect("registered");
    let session = primary.open_session(id, DT, 0).expect("open");
    primary.submit(session, &[0.25, 0.5], 0, 100).expect("submit");
    primary.tick(1);

    let mut records = log.records();
    let target = records
        .iter()
        .position(|r| {
            matches!(
                WireRecord::decode(r),
                Ok(WireRecord::Delta(DeltaRecord { op: DeltaOp::Admitted { .. }, .. }))
            )
        })
        .expect("an admission was journaled");
    let Ok(WireRecord::Delta(DeltaRecord {
        seq,
        op: DeltaOp::Admitted { request, session, deadline, not_before, mut input },
    })) = WireRecord::decode(&records[target])
    else {
        unreachable!("target was just matched as an Admitted delta");
    };
    input[0] = -input[0];
    records[target] = WireRecord::Delta(DeltaRecord {
        seq,
        op: DeltaOp::Admitted { request, session, deadline, not_before, input },
    })
    .encode();

    let mut follower = Follower::new(registry());
    let err = follower.tail(&concat(&records)).expect_err("corrupted delta accepted");
    assert!(matches!(err, ReplicaError::Diverged { .. }), "expected digest divergence, got {err}");
    assert!(matches!(follower.promote(), Err(ReplicaError::Diverged { .. })));
}

/// The panic→retry→rebuild→degrade ladder replicates delta-for-delta:
/// the follower's digest matches the primary after every drained round,
/// and a follower promoted *from a degraded primary's log* keeps the
/// rebuild count, the degraded flag, and bit-identical serving.
#[test]
fn ladder_deltas_keep_follower_in_lockstep_and_survive_promotion() {
    let _g = lock();
    let cfg = ServeConfig {
        retry_backoff_base: 1,
        max_retries: 5,
        rebuild_after_panics: 1,
        degrade_after_rebuilds: 1,
        ..Default::default()
    };
    let log = RecordLog::default();
    let mut sched = Scheduler::new(registry(), cfg);
    sched.attach_replica(Box::new(log.clone()), 1).expect("attach");
    let id = sched.registry().id("b").expect("registered");
    let session = sched.open_session(id, DT, 0).expect("open");
    let sim = sched.registry().get(id).expect("model").clone();
    let u: Vec<f64> = (0..60).map(|i| (i as f64 * 0.21).cos() * 0.8).collect();
    let mut clients =
        vec![Client { session, model: "b", chunks: Vec::new(), stream: Vec::new(), pos: 0 }];
    let mut verifier = Follower::new(registry());
    let mut now = 0u64;
    for (round, chunk) in u.chunks(10).enumerate() {
        if round < 2 {
            // Round 0 costs the rebuild, round 1 exhausts the budget
            // and degrades — every rung journaled as it happens.
            chaos::arm_worker_panic();
        }
        sched.submit(session, chunk, now, now + 100).expect("submit");
        clients[0].chunks.push(chunk.to_vec());
        drain_into(&mut sched, &mut now, &mut clients);
        verifier.tail(&log.all_bytes()).expect("verifier tails");
        assert_eq!(
            verifier.state_digest().expect("follower digest"),
            sched.state_digest().expect("primary digest"),
            "follower out of lockstep after round {round}"
        );
        now += 1;
    }
    assert_eq!(sched.pool_rebuilds(), 1);
    assert!(sched.is_degraded());
    assert_bits_eq(&clients[0].stream, &sim.simulate(DT, &u), "stream across the ladder");

    drop(sched); // kill the degraded primary
    let mut promoted = verifier.promote().expect("promote from a degraded primary's log");
    assert_eq!(promoted.pool_rebuilds(), 1, "rebuild count survives promotion");
    assert!(promoted.is_degraded(), "degradation survives promotion");
    // The promoted degraded tier still serves, continuing bit-exactly.
    let tail = [0.5; 5];
    promoted.submit(session, &tail, now, now + 100).expect("submit to promoted");
    clients[0].chunks.push(tail.to_vec());
    drain_into(&mut promoted, &mut now, &mut clients);
    let mut all = u.clone();
    all.extend(tail);
    assert_bits_eq(&clients[0].stream, &sim.simulate(DT, &all), "post-promotion stream");
}

/// Terminal failures replicate too: a request that exhausts retries
/// fails on the primary (cancelling its session's queue), and the
/// follower — applying only `RequestFailed` deltas — lands on the same
/// bytes and promotes into a scheduler sitting exactly at the pre-fault
/// sample.
#[test]
fn terminal_failure_deltas_replicate_cancelled_queues() {
    let _g = lock();
    let cfg = ServeConfig {
        retry_backoff_base: 1,
        max_retries: 0,
        rebuild_after_panics: 10,
        ..Default::default()
    };
    let log = RecordLog::default();
    let mut sched = Scheduler::new(registry(), cfg);
    sched.attach_replica(Box::new(log.clone()), 1).expect("attach");
    let id = sched.registry().id("a").expect("registered");
    let session = sched.open_session(id, DT, 0).expect("open");
    let sim = sched.registry().get(id).expect("model").clone();
    let prefix = [0.2, -0.4, 0.6];
    let mut clients = vec![Client {
        session,
        model: "a",
        chunks: vec![prefix.to_vec()],
        stream: Vec::new(),
        pos: 0,
    }];
    sched.submit(session, &prefix, 0, 50).expect("prefix");
    let mut now = 0u64;
    drain_into(&mut sched, &mut now, &mut clients);

    chaos::arm_worker_panic();
    sched.submit(session, &[0.3; 4], now, now + 50).expect("doomed");
    sched.submit(session, &[0.8; 4], now, now + 50).expect("cancelled tail");
    now += 1;
    let events = sched.tick(now);
    assert_eq!(events.len(), 2, "RetriesExhausted plus PredecessorFailed");
    assert!(events.iter().all(|e| matches!(e, Event::Failed { .. })));

    let mut follower = Follower::new(registry());
    follower.tail(&log.all_bytes()).expect("tail");
    assert_eq!(
        follower.state_digest().expect("follower digest"),
        sched.state_digest().expect("primary digest"),
        "failure deltas must keep the follower in lockstep"
    );
    drop(sched);
    let mut promoted = follower.promote().expect("promote");
    assert_eq!(promoted.samples(session).expect("live"), 3, "failed rounds committed nothing");
    // The stream resumes contiguously on the promoted tier.
    let tail = [0.7, -0.2];
    promoted.submit(session, &tail, now, now + 50).expect("resume");
    clients[0].chunks.push(tail.to_vec());
    drain_into(&mut promoted, &mut now, &mut clients);
    let mut all = prefix.to_vec();
    all.extend(tail);
    assert_bits_eq(&clients[0].stream, &sim.simulate(DT, &all), "post-failure stream");
}

/// A short replicated workload whose log ends in a digest (cadence 1),
/// used as tamper fodder by the proptests below.
fn canonical_log() -> Vec<Bytes> {
    let cfg = ServeConfig { max_chunk_samples: 16, ..Default::default() };
    let log = RecordLog::default();
    let mut sched = Scheduler::new(registry(), cfg);
    sched.attach_replica(Box::new(log.clone()), 1).expect("attach");
    let ids = ["a", "b"].map(|name| sched.registry().id(name).expect("registered"));
    let sessions = ids.map(|id| sched.open_session(id, DT, 0).expect("open"));
    let mut now = 1u64;
    for round in 0..3u64 {
        for (i, s) in sessions.iter().enumerate() {
            let v = 0.1 + 0.2 * (round as f64) + 0.05 * (i as f64);
            sched.submit(*s, &[v, -v, v * 0.5], now, now + 100).expect("submit");
        }
        now += 1;
        for event in sched.tick(now) {
            assert!(matches!(event, Event::Completed { .. }));
        }
    }
    sched.close_session(sessions[1]).expect("close");
    let records = log.records();
    assert!(
        matches!(
            WireRecord::decode(records.last().expect("non-empty log")),
            Ok(WireRecord::Digest(_))
        ),
        "cadence-1 log must end with a digest, or a dropped tail delta would go unnoticed"
    );
    records
}

fn delta_positions(records: &[Bytes]) -> Vec<usize> {
    records
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(WireRecord::decode(r), Ok(WireRecord::Delta(_))))
        .map(|(i, _)| i)
        .collect()
}

/// Feeds the tampered log to a fresh follower and asserts the typed
/// refusal: the clean prefix (exactly `prefix_deltas` deltas) applies,
/// nothing after it commits, and promotion is refused with the same
/// stored error.
fn assert_refused(records: &[Bytes], prefix_deltas: u64, want_gap: bool) {
    let mut follower = Follower::new(registry());
    let err = follower.tail(&concat(records)).expect_err("tampered log accepted");
    match (&err, want_gap) {
        (ReplicaError::SequenceGap { .. }, true) => {}
        (ReplicaError::Diverged { .. }, false) => {}
        _ => panic!("wrong refusal for tampered log: {err}"),
    }
    assert_eq!(follower.applied_seq(), prefix_deltas, "only the clean prefix may commit");
    match follower.promote() {
        Err(stored) => assert_eq!(stored, err, "promotion must return the stored poison error"),
        Ok(_) => panic!("poisoned follower promoted"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any permutation or gap in the delta sequence — and any content
    /// tamper that survives framing — is refused typed
    /// (`SequenceGap`/`Diverged`), commits nothing past the clean
    /// prefix, and blocks promotion.
    #[test]
    fn tampered_delta_logs_always_refuse_and_commit_nothing(
        pick_a in 0usize..4096,
        pick_b in 0usize..4096,
        mode in 0u8..3,
    ) {
        let _g = lock();
        let mut records = canonical_log();
        let deltas = delta_positions(&records);
        prop_assume!(deltas.len() >= 2);
        match mode {
            0 => {
                // Gap: drop one delta; the next delta or digest exposes it.
                let k = pick_a % deltas.len();
                records.remove(deltas[k]);
                assert_refused(&records, k as u64, true);
            }
            1 => {
                // Permutation: swap two deltas; the earlier position now
                // carries a future sequence number.
                let i = pick_a % deltas.len();
                let j = pick_b % deltas.len();
                prop_assume!(i != j);
                let (lo, hi) = (i.min(j), i.max(j));
                records.swap(deltas[lo], deltas[hi]);
                assert_refused(&records, lo as u64, true);
            }
            _ => {
                // Content tamper: flip one admitted sample's sign. The
                // frame still checksums; the digest right after the
                // admission catches the byte divergence.
                let admits: Vec<usize> = records
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| matches!(
                        WireRecord::decode(r),
                        Ok(WireRecord::Delta(DeltaRecord { op: DeltaOp::Admitted { .. }, .. }))
                    ))
                    .map(|(i, _)| i)
                    .collect();
                let target = admits[pick_a % admits.len()];
                let Ok(WireRecord::Delta(DeltaRecord {
                    seq,
                    op: DeltaOp::Admitted { request, session, deadline, not_before, mut input },
                })) = WireRecord::decode(&records[target])
                else {
                    unreachable!("target was just matched as an Admitted delta");
                };
                input[0] = -input[0];
                records[target] = WireRecord::Delta(DeltaRecord {
                    seq,
                    op: DeltaOp::Admitted { request, session, deadline, not_before, input },
                })
                .encode();
                // The tampered delta itself applies (it is structurally
                // valid); the digest refuses one record later.
                assert_refused(&records, seq, false);
            }
        }
    }

    /// Randomized replicated storms: clean traffic interleaved with
    /// primary kills at random lags must keep every client stream
    /// bit-identical to a clean one-shot simulation.
    #[test]
    fn replicated_storm_survives_random_seeds(seed in 1u64..(1u64 << 48)) {
        let _g = lock();
        replicated_storm(seed);
    }
}

/// A replicated pair under storm traffic with `PrimaryKillLagged` live:
/// every operation ends with a verifying follower tailing the full log
/// and matching the primary's digest; each kill promotes from a lagged
/// prefix, re-serves and resubmits, then re-attaches a fresh log for
/// the next kill. The final audit checks every stream against a clean
/// one-shot simulation, bit for bit.
fn replicated_storm(seed: u64) {
    let cfg = ServeConfig { max_chunk_samples: 16, max_queued_requests: 64, ..Default::default() };
    let chaos_cfg = ChaosConfig { seed, ..ChaosConfig::default() }.with_primary_kill(220, 4);
    let mut inj = ChaosInjector::new(chaos_cfg);
    let mut log = RecordLog::default();
    let mut sched = Scheduler::new(registry(), cfg);
    sched.attach_replica(Box::new(log.clone()), 2).expect("attach");
    let mut verifier = Follower::new(registry());
    let mut now = 1u64;
    let mut clients: Vec<Client> = Vec::new();
    for _ in 0..2 {
        let name = if inj.pick(2) == 0 { "a" } else { "b" };
        let id = sched.registry().id(name).expect("registered");
        clients.push(Client {
            session: sched.open_session(id, DT, now).expect("open"),
            model: name,
            chunks: Vec::new(),
            stream: Vec::new(),
            pos: 0,
        });
    }

    for _ in 0..32 {
        let who = inj.pick(clients.len());
        let n = 1 + inj.pick(12);
        let chunk: Vec<f64> = (0..n).map(|_| (inj.pick(2001) as f64 - 1000.0) / 1000.0).collect();
        match inj.sample() {
            Some(Fault::PrimaryKillLagged { lag }) => {
                // Die with work in flight: this chunk admitted, served
                // once (its completion delta sits at the log tip), so
                // small lags lose completions and larger ones lose the
                // admission too.
                sched.submit(clients[who].session, &chunk, now, now + 200).expect("submit");
                clients[who].chunks.push(chunk);
                now += 1;
                for event in sched.tick(now) {
                    match event {
                        Event::Completed { session, output, .. } => {
                            fold(&mut clients, session, &output)
                        }
                        other => panic!("unexpected event before a kill: {other:?}"),
                    }
                }
                sched = failover(sched, &log, lag as usize, &mut clients, &mut now);
                log = RecordLog::default();
                sched.attach_replica(Box::new(log.clone()), 2).expect("re-attach");
                verifier = Follower::new(registry());
            }
            _ => {
                sched.submit(clients[who].session, &chunk, now, now + 200).expect("submit");
                clients[who].chunks.push(chunk);
                drain_into(&mut sched, &mut now, &mut clients);
            }
        }
        verifier.tail(&log.all_bytes()).expect("verifier tails");
        assert_eq!(
            verifier.state_digest().expect("follower digest"),
            sched.state_digest().expect("primary digest"),
            "verifying follower out of lockstep (seed {seed:#x})"
        );
        now += 1;
    }

    for client in clients {
        let accepted: Vec<f64> = client.chunks.iter().flatten().copied().collect();
        assert_eq!(
            sched.samples(client.session).expect("live") as usize,
            accepted.len(),
            "promoted tier lost samples (seed {seed:#x})"
        );
        let sim = sched
            .registry()
            .get(sched.registry().id(client.model).expect("registered"))
            .expect("model")
            .clone();
        assert_bits_eq(
            &client.stream,
            &sim.simulate(DT, &accepted),
            &format!("storm stream, seed {seed:#x}"),
        );
        sched.close_session(client.session).expect("final close");
    }
    assert_eq!(sched.live_sessions(), 0);
}

/// Pinned replicated storms so CI failures name a reproducible case.
#[test]
fn replicated_storm_pinned_seeds() {
    let _g = lock();
    for seed in [0xD15_7EAD, 0x5EED_0010, 0xFA11_BACC] {
        replicated_storm(seed);
    }
}
