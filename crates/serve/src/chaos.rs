//! Deterministic, seeded fault injection for the serving tier.
//!
//! The chaos harness is a *test seam*, compiled unconditionally so the
//! bench suite can drive faulted load in release mode. It produces
//! faults from a seeded xorshift generator — same seed, same fault
//! sequence, every run, every machine — which is what lets the chaos
//! proptests assert **bit-identical** recovery (`f64` `==`, not
//! tolerances) after every injected failure.
//!
//! Five fault classes mirror the failure modes the scheduler must
//! absorb:
//!
//! * [`Fault::WorkerPanic`] — the next batch round panics inside a
//!   worker ([`arm_worker_panic`] arms the one-shot poison seam of the
//!   serving runtime).
//! * [`Fault::BadStimulus`] — a NaN/∞ sample is written into the chunk
//!   ([`ChaosInjector::corrupt`]), exercising admission-time rejection.
//! * [`Fault::OversizedChunk`] — the chunk is inflated past the
//!   configured cap, exercising `ChunkTooLarge` shedding.
//! * [`Fault::CloseSession`] — the client disappears mid-stream,
//!   exercising queue purging and slot reuse.
//! * [`Fault::CrashKill`] — the whole scheduler process dies (the
//!   harness drops it, losing responses in flight) and is rebuilt from
//!   its last [`snapshot`](crate::Scheduler::snapshot), exercising the
//!   durability layer's restore-then-replay bit-identity guarantee.
//! * [`Fault::PrimaryKillLagged`] — the primary of a replicated pair
//!   dies with the standby `lag` deltas behind the tip of the
//!   replication log; the harness promotes the
//!   [`Follower`](crate::replica::Follower) from the truncated log,
//!   resubmits unacknowledged work, and asserts the client-visible
//!   streams stay bit-identical to an uninterrupted run.

/// One injected fault, drawn by [`ChaosInjector::sample`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// Panic a worker during the next batch round.
    WorkerPanic,
    /// Corrupt a stimulus sample to NaN or ±∞ before submitting.
    BadStimulus,
    /// Inflate the chunk past the per-request sample cap.
    OversizedChunk,
    /// Close the session mid-stream, abandoning its queued work.
    CloseSession,
    /// Kill the scheduler (process crash) and restore it from its last
    /// snapshot, resubmitting whatever was in flight.
    CrashKill,
    /// Kill the primary of a replicated pair with the follower `lag`
    /// deltas behind the log tip, then promote the follower and
    /// resubmit unacknowledged work.
    PrimaryKillLagged {
        /// How many committed deltas the follower is missing when the
        /// primary dies (0 = fully caught up).
        lag: u32,
    },
}

/// Fault rates in permille (0–1000), checked in declaration order; the
/// first one that fires wins for that draw.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed of the deterministic generator.
    pub seed: u64,
    /// Permille chance of [`Fault::WorkerPanic`] per draw.
    pub worker_panic_permille: u16,
    /// Permille chance of [`Fault::BadStimulus`] per draw.
    pub bad_stimulus_permille: u16,
    /// Permille chance of [`Fault::OversizedChunk`] per draw.
    pub oversized_chunk_permille: u16,
    /// Permille chance of [`Fault::CloseSession`] per draw.
    pub close_session_permille: u16,
    /// Permille chance of [`Fault::CrashKill`] per draw.
    pub crash_kill_permille: u16,
    /// Permille chance of [`Fault::PrimaryKillLagged`] per draw.
    pub primary_kill_permille: u16,
    /// Upper bound (inclusive) on the follower lag drawn for each
    /// [`Fault::PrimaryKillLagged`].
    pub primary_kill_max_lag: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed_f17e,
            worker_panic_permille: 0,
            bad_stimulus_permille: 0,
            oversized_chunk_permille: 0,
            close_session_permille: 0,
            crash_kill_permille: 0,
            primary_kill_permille: 0,
            primary_kill_max_lag: 0,
        }
    }
}

impl ChaosConfig {
    /// A config injecting every single-process fault class at
    /// `permille` each. [`Fault::PrimaryKillLagged`] stays off — it
    /// only makes sense for harnesses driving a replicated pair; opt
    /// in with [`with_primary_kill`](Self::with_primary_kill).
    pub fn uniform(seed: u64, permille: u16) -> Self {
        Self {
            seed,
            worker_panic_permille: permille,
            bad_stimulus_permille: permille,
            oversized_chunk_permille: permille,
            close_session_permille: permille,
            crash_kill_permille: permille,
            primary_kill_permille: 0,
            primary_kill_max_lag: 0,
        }
    }

    /// Enables [`Fault::PrimaryKillLagged`] at `permille` per draw with
    /// follower lags drawn uniformly from `0..=max_lag`.
    pub fn with_primary_kill(mut self, permille: u16, max_lag: u32) -> Self {
        self.primary_kill_permille = permille;
        self.primary_kill_max_lag = max_lag;
        self
    }
}

/// Deterministic fault source (xorshift64*). Two injectors built from
/// the same [`ChaosConfig`] produce identical fault sequences.
#[derive(Debug, Clone)]
pub struct ChaosInjector {
    x: u64,
    cfg: ChaosConfig,
}

impl ChaosInjector {
    /// Builds an injector from `cfg` (the zero seed is remapped so the
    /// generator never sticks).
    pub fn new(cfg: ChaosConfig) -> Self {
        Self { x: if cfg.seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { cfg.seed }, cfg }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.x;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.x = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn roll(&mut self, permille: u16) -> bool {
        permille > 0 && self.next() % 1000 < permille as u64
    }

    /// Draws at most one fault for the next operation, in the fixed
    /// order panic → stimulus → oversize → close → crash → primary
    /// kill.
    pub fn sample(&mut self) -> Option<Fault> {
        if self.roll(self.cfg.worker_panic_permille) {
            Some(Fault::WorkerPanic)
        } else if self.roll(self.cfg.bad_stimulus_permille) {
            Some(Fault::BadStimulus)
        } else if self.roll(self.cfg.oversized_chunk_permille) {
            Some(Fault::OversizedChunk)
        } else if self.roll(self.cfg.close_session_permille) {
            Some(Fault::CloseSession)
        } else if self.roll(self.cfg.crash_kill_permille) {
            Some(Fault::CrashKill)
        } else if self.roll(self.cfg.primary_kill_permille) {
            let lag = self.pick(self.cfg.primary_kill_max_lag as usize + 1) as u32;
            Some(Fault::PrimaryKillLagged { lag })
        } else {
            None
        }
    }

    /// A deterministic index in `0..n` (`0` when `n == 0`).
    pub fn pick(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next() % n as u64) as usize
        }
    }

    /// Overwrites one sample of `chunk` with NaN, `+∞`, or `-∞`,
    /// returning the corrupted index (`None` for an empty chunk).
    pub fn corrupt(&mut self, chunk: &mut [f64]) -> Option<usize> {
        if chunk.is_empty() {
            return None;
        }
        let index = self.pick(chunk.len());
        chunk[index] = match self.next() % 3 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        Some(index)
    }
}

/// Arms the serving runtime's one-shot poison seam: the next batch
/// group to execute (pooled or serial) panics inside its worker. The
/// flag is process-global and consumed by exactly one group, so tests
/// injecting panics must serialize their use of this seam.
pub fn arm_worker_panic() {
    rvf_core::serving::poison_next_group();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let cfg = ChaosConfig::uniform(42, 250);
        let mut a = ChaosInjector::new(cfg);
        let mut b = ChaosInjector::new(cfg);
        let sa: Vec<_> = (0..256).map(|_| a.sample()).collect();
        let sb: Vec<_> = (0..256).map(|_| b.sample()).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().any(|f| f.is_some()), "25% per class must fire in 256 draws");
        assert!(sa.iter().any(|f| f.is_none()));
    }

    #[test]
    fn primary_kill_is_opt_in_and_bounds_its_lag() {
        // uniform() keeps the replicated-pair fault off.
        let mut inj = ChaosInjector::new(ChaosConfig::uniform(11, 400));
        assert!((0..512)
            .filter_map(|_| inj.sample())
            .all(|f| !matches!(f, Fault::PrimaryKillLagged { .. })));
        // with_primary_kill draws lags in 0..=max_lag, hitting both ends.
        let cfg = ChaosConfig::default().with_primary_kill(1000, 4);
        let mut inj = ChaosInjector::new(ChaosConfig { seed: 3, ..cfg });
        let lags: Vec<u32> = (0..256)
            .filter_map(|_| match inj.sample() {
                Some(Fault::PrimaryKillLagged { lag }) => Some(lag),
                _ => None,
            })
            .collect();
        assert_eq!(lags.len(), 256, "permille 1000 fires every draw");
        assert!(lags.iter().all(|&lag| lag <= 4));
        assert!(lags.contains(&0) && lags.contains(&4));
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let mut inj = ChaosInjector::new(ChaosConfig::default());
        assert!((0..1000).all(|_| inj.sample().is_none()));
    }

    #[test]
    fn corrupt_places_one_non_finite_sample() {
        let mut inj = ChaosInjector::new(ChaosConfig::uniform(7, 0));
        let mut chunk = vec![0.5; 32];
        let idx = inj.corrupt(&mut chunk).unwrap();
        assert!(!chunk[idx].is_finite());
        assert_eq!(chunk.iter().filter(|v| !v.is_finite()).count(), 1);
        assert_eq!(inj.corrupt(&mut []), None);
        assert_eq!(inj.pick(0), 0);
        assert!(inj.pick(5) < 5);
    }
}
