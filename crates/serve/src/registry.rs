//! Immutable multi-model registry.
//!
//! Models are compiled once ([`CompiledSim`]) and shared immutably —
//! every session of every scheduler holds the same `Arc`, so serving a
//! model to a million sessions costs one compilation and zero copies.
//! Immutability is also a robustness property: no fault anywhere in the
//! serving tier can corrupt a registered model, so recovery never needs
//! to re-validate them.

use std::sync::Arc;

use rvf_core::CompiledSim;

use crate::error::ServeError;

/// Stable handle to a model in a [`ModelRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModelId(pub(crate) usize);

impl ModelId {
    /// The raw registry index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// An immutable set of named, compiled, `Arc`-shared models.
///
/// Built once with [`ModelRegistry::build`]; afterwards the registry
/// only hands out shared references. There is deliberately no way to
/// mutate or remove a registered model — swap in a new registry to
/// deploy new models.
///
/// # Examples
///
/// ```
/// use rvf_core::SimBuilder;
/// use rvf_serve::ModelRegistry;
///
/// let mut b = SimBuilder::new();
/// let s = b.drive_poly(&[0.0, 1.0]);
/// b.set_static_drive(s);
/// b.block_real(-1.0e9, s);
/// let registry = ModelRegistry::build([("lowpass".to_string(), b.build())]);
/// let id = registry.id("lowpass").unwrap();
/// assert!(registry.get(id).is_ok());
/// assert_eq!(registry.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    names: Vec<String>,
    models: Vec<Arc<CompiledSim>>,
}

impl ModelRegistry {
    /// Builds a registry from `(name, compiled model)` pairs. Later
    /// duplicates of a name shadow earlier ones in
    /// [`id`](ModelRegistry::id) lookups but keep their own slot.
    pub fn build(entries: impl IntoIterator<Item = (String, CompiledSim)>) -> Self {
        let mut names = Vec::new();
        let mut models = Vec::new();
        for (name, sim) in entries {
            names.push(name);
            models.push(Arc::new(sim));
        }
        Self { names, models }
    }

    /// Looks a model up by name (last registration wins).
    pub fn id(&self, name: &str) -> Option<ModelId> {
        self.names.iter().rposition(|n| n == name).map(ModelId)
    }

    /// The shared compiled model behind `id`.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for an id that is not in this
    /// registry.
    pub fn get(&self, id: ModelId) -> Result<&Arc<CompiledSim>, ServeError> {
        self.models.get(id.0).ok_or(ServeError::UnknownModel { id: id.0 })
    }

    /// The name a model was registered under.
    pub fn name(&self, id: ModelId) -> Option<&str> {
        self.names.get(id.0).map(String::as_str)
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Iterates `(id, name)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ModelId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (ModelId(i), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvf_core::SimBuilder;

    fn tiny_model(a: f64) -> CompiledSim {
        let mut b = SimBuilder::new();
        let s = b.drive_poly(&[0.0, 1.0]);
        b.set_static_drive(s);
        b.block_real(a, s);
        b.build()
    }

    #[test]
    fn lookup_get_and_shadowing() {
        let reg = ModelRegistry::build([
            ("a".to_string(), tiny_model(-1.0e9)),
            ("b".to_string(), tiny_model(-2.0e9)),
            ("a".to_string(), tiny_model(-3.0e9)),
        ]);
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
        assert_eq!(reg.id("a"), Some(ModelId(2)), "last registration wins");
        assert_eq!(reg.id("b"), Some(ModelId(1)));
        assert_eq!(reg.id("missing"), None);
        assert!(reg.get(ModelId(1)).is_ok());
        assert_eq!(reg.get(ModelId(9)).unwrap_err(), ServeError::UnknownModel { id: 9 });
        assert_eq!(reg.name(ModelId(0)), Some("a"));
        assert_eq!(reg.iter().count(), 3);
        // Shared, not copied: two lookups alias the same compiled model.
        let x = Arc::clone(reg.get(ModelId(0)).unwrap());
        assert!(Arc::ptr_eq(&x, reg.get(ModelId(0)).unwrap()));
    }

    #[test]
    fn empty_registry() {
        let reg = ModelRegistry::build([]);
        assert!(reg.is_empty());
        assert_eq!(reg.id("x"), None);
        assert!(matches!(reg.get(ModelId(0)), Err(ServeError::UnknownModel { id: 0 })));
    }
}
