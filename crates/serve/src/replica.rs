//! Warm-standby replication: delta log, follower, and failover.
//!
//! A primary [`Scheduler`] with an attached [`ReplicationSink`]
//! journals every committed mutation as a sequence-numbered
//! [`WireRecord::Delta`] — session opened, chunk admitted / completed /
//! failed / retried, session closed, pool rebuilt, degraded — each
//! carrying the post-state of any mutated session. Every `digest_every`
//! deltas it also appends a [`WireRecord::Digest`]: FNV-1a over its
//! encoded canonical state.
//!
//! A [`Follower`] consumes that log — record by record via
//! [`apply`](Follower::apply), or byte-stream style via
//! [`tail`](Follower::tail) on top of
//! [`decode_stream`] — and maintains its
//! own copy of the primary's canonical state
//! ([`SchedulerSnapshot`], plain data: no pool, no threads). The
//! replication contract is strict by construction:
//!
//! * **Strict sequencing** — deltas must arrive with consecutive
//!   sequence numbers; anything else is
//!   [`ReplicaError::SequenceGap`] and the follower poisons itself
//!   (every later call returns the stored error, nothing is committed).
//! * **Digest verification** — each digest is recomputed over the
//!   follower's own reconstructed state; a mismatch is
//!   [`ReplicaError::Diverged`]. Because the digest covers the encoded
//!   snapshot, digest equality is *byte* equality of canonical state.
//! * **Structural validation** — every delta is checked against the
//!   reconstruction before anything mutates
//!   ([`ReplicaError::BadDelta`] commits nothing).
//!
//! [`promote`](Follower::promote) turns the reconstruction into a live
//! [`Scheduler`] by encoding it and running it through
//! [`Scheduler::restore`] — so *promote ∘ apply\** is literally
//! *restore-of-snapshot*, and inherits restore's registry fingerprint
//! check: a follower holding retuned tables refuses promotion with a
//! typed [`ServeError::RegistryMismatch`].
//!
//! # Example
//!
//! ```
//! use rvf_core::SimBuilder;
//! use rvf_serve::replica::{Follower, SharedLog};
//! use rvf_serve::{ModelRegistry, Scheduler, ServeConfig};
//!
//! let mut b = SimBuilder::new();
//! let s = b.drive_poly(&[0.0, 1.0]);
//! b.set_static_drive(s);
//! b.block_real(-1.0e9, s);
//! let registry = ModelRegistry::build([("m".to_string(), b.build())]);
//! let model = registry.id("m").unwrap();
//!
//! // Primary journals to a shared in-memory log.
//! let log = SharedLog::new();
//! let mut primary = Scheduler::new(registry.clone(), ServeConfig::default());
//! primary.attach_replica(Box::new(log.clone()), 1).unwrap();
//! let session = primary.open_session(model, 1.0e-10, 0).unwrap();
//! primary.submit(session, &[0.1, 0.2], 0, 100).unwrap();
//! primary.tick(1);
//!
//! // The follower tails the log and proves itself byte-identical.
//! let mut follower = Follower::new(registry);
//! follower.tail(&log.bytes()).unwrap();
//! assert_eq!(follower.state_digest().unwrap(), primary.state_digest().unwrap());
//!
//! // Primary dies; the follower takes over with identical state.
//! drop(primary);
//! let promoted = follower.promote().unwrap();
//! assert_eq!(promoted.samples(session).unwrap(), 2);
//! ```

use core::fmt;
use std::sync::{Arc, Mutex};

use bytes::Bytes;

use crate::error::ServeError;
use crate::registry::{ModelId, ModelRegistry};
use crate::scheduler::{Scheduler, SessionHandle};
use crate::wire::{
    checksum64, decode_stream, DeltaOp, SchedulerSnapshot, SnapshotRequest, SnapshotSession,
    SnapshotSlot, WireError, WireRecord,
};

/// Where a journaling primary appends its replication records. Each
/// `append` receives one fully framed, checksummed wire record
/// (baseline snapshot, delta, or digest) in log order.
///
/// `append` is infallible by contract: a sink that can lose or defer
/// writes must buffer internally — the serving path never blocks on
/// replication.
pub trait ReplicationSink: Send {
    /// Appends one framed wire record to the log.
    fn append(&mut self, record: Bytes);
}

/// The simplest sink: an in-memory vector of framed records. Useful in
/// tests that want record-granular access to the log.
impl ReplicationSink for Vec<Bytes> {
    fn append(&mut self, record: Bytes) {
        self.push(record);
    }
}

/// A clonable, shared, in-memory replication log: the primary appends
/// through one clone while followers [`tail`](Follower::tail) the
/// concatenated bytes through another — the in-process stand-in for a
/// replicated log service or a shared append-only file.
#[derive(Debug, Clone, Default)]
pub struct SharedLog {
    inner: Arc<Mutex<Vec<u8>>>,
}

impl SharedLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<u8>> {
        match self.inner.lock() {
            Ok(guard) => guard,
            // A panic while appending cannot leave a torn record: the
            // buffer only ever grows by whole `append`s.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// A copy of the log's current bytes.
    pub fn bytes(&self) -> Bytes {
        Bytes::from(self.lock().clone())
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

impl ReplicationSink for SharedLog {
    fn append(&mut self, record: Bytes) {
        self.lock().extend_from_slice(record.as_ref());
    }
}

/// Typed replication failure. Any error **poisons** the follower: it
/// commits nothing for the failing record, and every later call
/// (including [`promote`](Follower::promote)) returns the stored
/// error — a diverged standby must never be promoted.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReplicaError {
    /// A delta or digest arrived out of sequence — the follower missed
    /// records (or saw them twice) and its reconstruction can no longer
    /// be trusted.
    SequenceGap {
        /// The sequence number the follower required.
        expected: u64,
        /// The sequence number the record carried.
        found: u64,
    },
    /// A digest did not match the follower's reconstructed state: the
    /// follower and the primary disagree byte-for-byte.
    Diverged {
        /// The sequence the digest covers.
        seq: u64,
        /// The digest the primary journaled.
        expected: u64,
        /// The digest the follower computed over its own state.
        computed: u64,
    },
    /// A delta is structurally inconsistent with the reconstruction
    /// (an unknown request id, a dead session, a slot that is not the
    /// top of the free stack, …). Nothing was committed.
    BadDelta {
        /// Sequence number of the offending delta.
        seq: u64,
        /// Which consistency check failed.
        what: &'static str,
    },
    /// A delta or digest arrived before the baseline snapshot.
    NoBaseline,
    /// The log itself failed to decode (truncated mid-frame corruption,
    /// bad checksum, …).
    Wire(WireError),
    /// A serving-layer failure — most prominently the typed
    /// [`ServeError::RegistryMismatch`] when the follower's registry
    /// does not carry the primary's models (retuned tables refuse both
    /// the baseline and promotion).
    Serve(ServeError),
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SequenceGap { expected, found } => {
                write!(f, "replica: sequence gap (expected {expected}, found {found})")
            }
            Self::Diverged { seq, expected, computed } => write!(
                f,
                "replica: diverged at seq {seq} (primary digest {expected:#018x}, \
                 follower digest {computed:#018x})"
            ),
            Self::BadDelta { seq, what } => {
                write!(f, "replica: inconsistent delta at seq {seq}: {what}")
            }
            Self::NoBaseline => {
                write!(f, "replica: record arrived before the baseline snapshot")
            }
            Self::Wire(e) => write!(f, "replica: {e}"),
            Self::Serve(e) => write!(f, "replica: {e}"),
        }
    }
}

impl std::error::Error for ReplicaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Wire(e) => Some(e),
            Self::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ReplicaError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

impl From<ServeError> for ReplicaError {
    fn from(e: ServeError) -> Self {
        Self::Serve(e)
    }
}

/// A warm standby: applies a primary's replication log against its own
/// registry and holds a canonical-state reconstruction that is — and
/// continuously *proves* itself — byte-identical to the primary's
/// snapshot at the last applied sequence. See the [module
/// docs](self) for the contract.
pub struct Follower {
    registry: ModelRegistry,
    state: Option<SchedulerSnapshot>,
    seq: u64,
    offset: usize,
    failed: Option<ReplicaError>,
}

impl Follower {
    /// A follower serving `registry`, which must carry the primary's
    /// models at the same indices (checked by name *and* compiled-table
    /// fingerprint when the baseline arrives).
    pub fn new(registry: ModelRegistry) -> Self {
        Self { registry, state: None, seq: 0, offset: 0, failed: None }
    }

    /// Sequence number of the last applied delta (0 before any).
    pub fn applied_seq(&self) -> u64 {
        self.seq
    }

    /// Whether the baseline snapshot has been applied.
    pub fn has_baseline(&self) -> bool {
        self.state.is_some()
    }

    /// The stored poison error, if the follower has failed.
    pub fn error(&self) -> Option<&ReplicaError> {
        self.failed.as_ref()
    }

    /// Bytes of the tailed log consumed so far (resume offset for
    /// [`tail`](Follower::tail)).
    pub fn consumed(&self) -> usize {
        self.offset
    }

    /// FNV-1a/64 over the follower's encoded reconstruction — directly
    /// comparable to [`Scheduler::state_digest`] and to the digests the
    /// primary journals.
    ///
    /// # Errors
    ///
    /// The stored poison error, or [`ReplicaError::NoBaseline`] before
    /// the baseline snapshot arrived.
    pub fn state_digest(&self) -> Result<u64, ReplicaError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        match &self.state {
            Some(snap) => Ok(digest_of(snap)),
            None => Err(ReplicaError::NoBaseline),
        }
    }

    /// Applies one replication record: the baseline snapshot, a
    /// sequence-checked delta, or a digest to verify against.
    ///
    /// # Errors
    ///
    /// Any [`ReplicaError`]; on error nothing is committed and the
    /// follower is poisoned (every later call returns the same error).
    pub fn apply(&mut self, record: WireRecord) -> Result<(), ReplicaError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        match self.apply_inner(record) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.failed = Some(e.clone());
                Err(e)
            }
        }
    }

    fn apply_inner(&mut self, record: WireRecord) -> Result<(), ReplicaError> {
        match record {
            WireRecord::Snapshot(snap) => {
                if self.state.is_some() {
                    return Err(ReplicaError::BadDelta {
                        seq: self.seq,
                        what: "a second baseline snapshot arrived mid-log",
                    });
                }
                // Fail fast on a mismatched registry: the baseline is
                // the earliest point retuned tables can be detected.
                for (i, m) in snap.models.iter().enumerate() {
                    let id = ModelId(i);
                    let ok = self.registry.name(id) == Some(m.name.as_str())
                        && matches!(
                            self.registry.get(id),
                            Ok(sim) if sim.fingerprint() == m.fingerprint
                        );
                    if !ok {
                        return Err(ReplicaError::Serve(ServeError::RegistryMismatch {
                            index: i,
                            name: m.name.clone(),
                            fingerprint: m.fingerprint,
                        }));
                    }
                }
                self.state = Some(snap);
                self.seq = 0;
                Ok(())
            }
            WireRecord::Delta(delta) => {
                let Some(snap) = self.state.as_mut() else {
                    return Err(ReplicaError::NoBaseline);
                };
                let expected = self.seq + 1;
                if delta.seq != expected {
                    return Err(ReplicaError::SequenceGap { expected, found: delta.seq });
                }
                apply_op(snap, delta.op)
                    .map_err(|what| ReplicaError::BadDelta { seq: delta.seq, what })?;
                self.seq = delta.seq;
                Ok(())
            }
            WireRecord::Digest(digest) => {
                let Some(snap) = self.state.as_ref() else {
                    return Err(ReplicaError::NoBaseline);
                };
                if digest.seq != self.seq {
                    return Err(ReplicaError::SequenceGap {
                        expected: self.seq,
                        found: digest.seq,
                    });
                }
                let computed = digest_of(snap);
                if computed != digest.digest {
                    return Err(ReplicaError::Diverged {
                        seq: digest.seq,
                        expected: digest.digest,
                        computed,
                    });
                }
                Ok(())
            }
            WireRecord::Stimulus(_) | WireRecord::Response(_) | WireRecord::Checkpoint(_) => {
                Err(ReplicaError::BadDelta {
                    seq: self.seq,
                    what: "record kind does not belong in a replication log",
                })
            }
        }
    }

    /// Tails a replication log: applies every complete record past the
    /// follower's resume offset, leaving a trailing partial record (a
    /// log caught mid-append) for the next call. Returns the number of
    /// records applied.
    ///
    /// `log` must be the *whole* log from its first byte — the follower
    /// tracks its own offset, so repeatedly passing
    /// [`SharedLog::bytes`] tails incrementally.
    ///
    /// # Errors
    ///
    /// Any [`ReplicaError`]; the offending record and everything after
    /// it are not consumed, and the follower is poisoned.
    pub fn tail(&mut self, log: &Bytes) -> Result<usize, ReplicaError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        if log.len() < self.offset {
            let e = ReplicaError::BadDelta {
                seq: self.seq,
                what: "the replication log shrank below the consumed offset",
            };
            self.failed = Some(e.clone());
            return Err(e);
        }
        let mut stream = decode_stream(log.slice(self.offset..log.len()));
        let mut applied = 0usize;
        loop {
            let before = stream.consumed();
            match stream.next() {
                None => break,
                Some(Ok(record)) => {
                    self.apply(record)?;
                    self.offset += stream.consumed() - before;
                    applied += 1;
                }
                Some(Err(e)) => {
                    let e = ReplicaError::Wire(e);
                    self.failed = Some(e.clone());
                    return Err(e);
                }
            }
        }
        Ok(applied)
    }

    /// Promotes the reconstruction into a live [`Scheduler`] equal to
    /// the primary at the last applied sequence: the follower's state
    /// is encoded and run through [`Scheduler::restore`], so promotion
    /// is *exactly* restore-of-snapshot — including restore's registry
    /// fingerprint verification and structural validation. The promoted
    /// scheduler has no replication sink attached; attach one to chain
    /// standbys.
    ///
    /// # Errors
    ///
    /// The stored poison error, [`ReplicaError::NoBaseline`], or a
    /// wrapped [`ServeError`] from restore.
    pub fn promote(mut self) -> Result<Scheduler, ReplicaError> {
        if let Some(e) = self.failed.take() {
            return Err(e);
        }
        let Some(snap) = self.state.take() else {
            return Err(ReplicaError::NoBaseline);
        };
        let bytes = WireRecord::Snapshot(snap).encode();
        Scheduler::restore(&bytes, &self.registry).map_err(ReplicaError::Serve)
    }
}

/// FNV-1a/64 over the encoded snapshot record — the digest both sides
/// compute.
fn digest_of(snap: &SchedulerSnapshot) -> u64 {
    checksum64(WireRecord::Snapshot(snap.clone()).encode().as_ref())
}

fn live_session_mut<'a>(
    snap: &'a mut SchedulerSnapshot,
    handle: SessionHandle,
) -> Option<&'a mut SnapshotSession> {
    let slot = snap.slots.get_mut(handle.index())?;
    if slot.generation != handle.generation() {
        return None;
    }
    slot.session.as_mut()
}

/// Applies one delta op to the reconstruction. Every check runs before
/// any mutation, so a failing op commits nothing.
fn apply_op(snap: &mut SchedulerSnapshot, op: DeltaOp) -> Result<(), &'static str> {
    match op {
        DeltaOp::SessionOpened { session, model, dt_bits, last_activity, state } => {
            let handle = SessionHandle::from_raw(session);
            let (index, generation) = (handle.index(), handle.generation());
            if (model as usize) >= snap.models.len() {
                return Err("opened session names a model outside the registry");
            }
            let dt = f64::from_bits(dt_bits);
            if !(dt.is_finite() && dt > 0.0) {
                return Err("opened session carries a non-positive dt");
            }
            let sess = SnapshotSession { model, dt_bits, last_activity, state };
            if index == snap.slots.len() {
                // Fresh slot appended to the slab.
                if generation != 0 {
                    return Err("an appended slot must start at generation 0");
                }
                snap.slots.push(SnapshotSlot { generation: 0, session: Some(sess) });
            } else {
                // Slot reuse pops the top of the free stack — exactly
                // mirroring the primary's allocator.
                if snap.free.last().copied() != Some(index as u32) {
                    return Err("the opened slot is not the top of the free stack");
                }
                let Some(slot) = snap.slots.get_mut(index) else {
                    return Err("the opened slot is outside the slab");
                };
                if slot.generation != generation {
                    return Err("the opened slot's generation does not match the handle");
                }
                if slot.session.is_some() {
                    return Err("the opened slot already holds a session");
                }
                slot.session = Some(sess);
                snap.free.pop();
            }
            Ok(())
        }
        DeltaOp::Admitted { request, session, deadline, not_before, input } => {
            if request != snap.next_request {
                return Err("the admitted request id is not the next request id");
            }
            if input.iter().any(|v| !v.is_finite()) {
                return Err("an admitted stimulus holds a non-finite sample");
            }
            let handle = SessionHandle::from_raw(session);
            let Some(sess) = live_session_mut(snap, handle) else {
                return Err("admission names a dead session");
            };
            sess.last_activity = not_before;
            snap.queue.push(SnapshotRequest {
                id: request,
                session,
                deadline,
                attempts: 0,
                not_before,
                input,
            });
            snap.next_request += 1;
            Ok(())
        }
        DeltaOp::ChunkCompleted { request, session, last_activity, state } => {
            let Some(pos) = snap.queue.iter().position(|r| r.id == request) else {
                return Err("completion names a request that is not queued");
            };
            if snap.queue[pos].session != session {
                return Err("completion names the wrong session for its request");
            }
            let handle = SessionHandle::from_raw(session);
            let Some(sess) = live_session_mut(snap, handle) else {
                return Err("completion names a dead session");
            };
            sess.state = state;
            sess.last_activity = last_activity;
            snap.queue.remove(pos);
            Ok(())
        }
        DeltaOp::RequestFailed { request } => {
            let Some(pos) = snap.queue.iter().position(|r| r.id == request) else {
                return Err("failure names a request that is not queued");
            };
            snap.queue.remove(pos);
            Ok(())
        }
        DeltaOp::SessionClosed { session } => {
            let handle = SessionHandle::from_raw(session);
            let index = handle.index();
            let alive = snap.slots.get(index).is_some_and(|slot| {
                slot.generation == handle.generation() && slot.session.is_some()
            });
            if !alive {
                return Err("close names a dead session");
            }
            snap.queue.retain(|r| r.session != session);
            let slot = &mut snap.slots[index];
            slot.session = None;
            slot.generation = slot.generation.wrapping_add(1);
            snap.free.push(index as u32);
            Ok(())
        }
        DeltaOp::RequestRetried { request, attempts, not_before } => {
            let Some(pos) = snap.queue.iter().position(|r| r.id == request) else {
                return Err("retry names a request that is not queued");
            };
            let mut r = snap.queue.remove(pos);
            r.attempts = attempts;
            r.not_before = not_before;
            snap.queue.insert(0, r);
            Ok(())
        }
        DeltaOp::PoolRebuilt => {
            snap.rebuilds += 1;
            Ok(())
        }
        DeltaOp::Degraded => {
            snap.degraded = true;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ServeConfig;
    use crate::wire::DeltaRecord;
    use rvf_core::SimBuilder;

    fn registry() -> ModelRegistry {
        let mut b = SimBuilder::new();
        let s = b.drive_poly(&[0.0, 1.0]);
        b.set_static_drive(s);
        b.block_real(-1.0e9, s);
        ModelRegistry::build([("m".to_string(), b.build())])
    }

    fn replicated_pair() -> (Scheduler, SharedLog, Follower) {
        let log = SharedLog::new();
        let mut primary = Scheduler::new(registry(), ServeConfig::default());
        primary.attach_replica(Box::new(log.clone()), 1).expect("attach");
        (primary, log, Follower::new(registry()))
    }

    #[test]
    fn shared_log_accumulates_appends() {
        let log = SharedLog::new();
        assert!(log.is_empty());
        let mut writer = log.clone();
        writer.append(Bytes::from(vec![1, 2, 3]));
        writer.append(Bytes::from(vec![4]));
        assert_eq!(log.len(), 4);
        assert_eq!(log.bytes().as_ref(), &[1, 2, 3, 4]);
    }

    #[test]
    fn follower_tracks_primary_digest_every_step() {
        let (mut primary, log, mut follower) = replicated_pair();
        let model = primary.registry().id("m").expect("model");
        let session = primary.open_session(model, 1e-10, 0).expect("open");
        primary.submit(session, &[0.1, 0.2, 0.3], 0, 100).expect("submit");
        primary.tick(1);
        primary.submit(session, &[0.4], 2, 100).expect("submit");
        primary.close_session(session).expect("close");
        follower.tail(&log.bytes()).expect("tail applies cleanly");
        assert!(follower.has_baseline());
        assert_eq!(follower.applied_seq(), primary.replication_seq());
        assert_eq!(
            follower.state_digest().expect("digest"),
            primary.state_digest().expect("digest")
        );
    }

    #[test]
    fn sequence_gap_poisons_and_commits_nothing() {
        let (mut primary, log, mut follower) = replicated_pair();
        let model = primary.registry().id("m").expect("model");
        primary.open_session(model, 1e-10, 0).expect("open");
        follower.tail(&log.bytes()).expect("tail");
        let seq_before = follower.applied_seq();
        let digest_before = follower.state_digest().expect("digest");
        // A delta from the future: gap.
        let bogus =
            WireRecord::Delta(DeltaRecord { seq: seq_before + 5, op: DeltaOp::PoolRebuilt });
        assert!(matches!(
            follower.apply(bogus),
            Err(ReplicaError::SequenceGap { found, .. }) if found == seq_before + 5
        ));
        // Poisoned: same error again, state untouched, promote refused.
        assert!(matches!(follower.error(), Some(ReplicaError::SequenceGap { .. })));
        assert_eq!(follower.applied_seq(), seq_before);
        assert!(matches!(follower.tail(&log.bytes()), Err(ReplicaError::SequenceGap { .. })));
        assert!(matches!(follower.promote(), Err(ReplicaError::SequenceGap { .. })));
        let _ = digest_before;
    }

    #[test]
    fn records_before_baseline_are_refused() {
        let mut follower = Follower::new(registry());
        let delta = WireRecord::Delta(DeltaRecord { seq: 1, op: DeltaOp::PoolRebuilt });
        assert!(matches!(follower.apply(delta), Err(ReplicaError::NoBaseline)));
        assert!(matches!(Follower::new(registry()).promote(), Err(ReplicaError::NoBaseline)));
    }

    #[test]
    fn error_display_and_source_round_trip() {
        use std::error::Error;
        let gap = ReplicaError::SequenceGap { expected: 4, found: 9 };
        assert!(gap.to_string().contains("expected 4"));
        assert!(gap.to_string().contains("found 9"));
        assert!(gap.source().is_none());
        let div = ReplicaError::Diverged { seq: 7, expected: 1, computed: 2 };
        assert!(div.to_string().contains("seq 7"));
        assert!(div.source().is_none());
        let bad = ReplicaError::BadDelta { seq: 3, what: "close names a dead session" };
        assert!(bad.to_string().contains("seq 3"));
        assert!(bad.to_string().contains("dead session"));
        assert!(ReplicaError::NoBaseline.to_string().contains("baseline"));
        let wire = ReplicaError::from(WireError::BadMagic { found: 0 });
        assert!(wire.to_string().contains("magic"));
        assert!(wire.source().is_some(), "wire errors keep their source");
        let serve = ReplicaError::from(ServeError::UnknownModel { id: 3 });
        assert!(serve.to_string().contains("model"));
        assert!(serve.source().is_some(), "serve errors keep their source");
        assert_eq!(gap.clone(), gap);
    }
}
