//! Versioned, checksummed binary wire format for the durability layer.
//!
//! Everything the serving tier needs to persist or ship crosses this
//! module as one of six record types, each framed identically:
//!
//! ```text
//! ┌──────────────────────── 16-byte header ────────────────────────┐
//! │ magic "RVFW" : u32 LE │ version : u16 │ kind : u8 │ rsvd : u8  │
//! │ payload_len  : u64 LE                                          │
//! ├──────────────────────── payload ───────────────────────────────┤
//! │ kind-specific fields, little-endian, `f64`s as raw bit patterns│
//! ├──────────────────────── trailer ───────────────────────────────┤
//! │ checksum : u64 LE — FNV-1a over header + payload               │
//! └────────────────────────────────────────────────────────────────┘
//! ```
//!
//! * [`StimulusChunk`] (kind 1) — one submitted stimulus chunk.
//! * [`ResponseChunk`] (kind 2) — one completed output chunk.
//! * [`StateCheckpoint`] (kind 3) — a per-session kernel checkpoint
//!   (re-exported from `rvf_core`; FOH registers, drive-memo bits,
//!   started flag, propagator-cache key, shape fingerprint).
//! * [`SchedulerSnapshot`] (kind 4) — the whole scheduler: registry
//!   model fingerprints, generation-tagged session slab, admission
//!   queue, retry/backoff and deadline state on the injected `u64`
//!   clock.
//! * [`DeltaRecord`] (kind 5) — one sequence-numbered committed
//!   scheduler mutation in the replication log, carrying the post-state
//!   of any mutated session.
//! * [`DigestRecord`] (kind 6) — a periodic FNV-1a digest of the
//!   primary's canonical state (its encoded snapshot), letting a
//!   follower prove its reconstruction byte-identical.
//!
//! `f64`s travel as raw IEEE-754 bit patterns, so an encode → decode
//! round trip is **bit-exact** — the property the tier's
//! restore-then-replay guarantee is built on.
//!
//! # Totality
//!
//! [`WireRecord::decode`] is *total*: any byte string produces either a
//! record or a typed [`WireError`] — never a panic, and never an
//! allocation larger than the input itself (every length and count
//! field is validated against [`Buf::remaining`] before a vector is
//! sized). The decode-fuzz suite pins this by mutating valid records
//! with truncations, bit flips, and lying length fields.
//!
//! Decode validates strictly in this order: truncated header →
//! [`WireError::BadMagic`] → [`WireError::UnsupportedVersion`] →
//! [`WireError::UnknownRecord`] → truncated payload/trailer →
//! [`WireError::TrailingBytes`] → [`WireError::BadChecksum`] → payload
//! parse errors. The wire layer checks *wire-level* sanity only;
//! semantic validation of decoded values (model fingerprints, shape
//! compatibility, live-session references) belongs to
//! [`Scheduler::restore`](crate::Scheduler::restore) and
//! [`CompiledSim::import_state`](rvf_core::CompiledSim::import_state).

use core::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut, TryGetError};
use rvf_core::StateCheckpoint;

use crate::scheduler::ServeConfig;

/// Wire magic: the bytes `RVFW`, read as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"RVFW");

/// Current wire-format version. Decoders reject every other value with
/// [`WireError::UnsupportedVersion`]; bumping this is how incompatible
/// layout changes are made loud instead of silent.
pub const WIRE_VERSION: u16 = 1;

/// Record kind of a [`StimulusChunk`].
pub const KIND_STIMULUS: u8 = 1;
/// Record kind of a [`ResponseChunk`].
pub const KIND_RESPONSE: u8 = 2;
/// Record kind of a [`StateCheckpoint`].
pub const KIND_CHECKPOINT: u8 = 3;
/// Record kind of a [`SchedulerSnapshot`].
pub const KIND_SNAPSHOT: u8 = 4;
/// Record kind of a [`DeltaRecord`].
pub const KIND_DELTA: u8 = 5;
/// Record kind of a [`DigestRecord`].
pub const KIND_DIGEST: u8 = 6;

/// Bytes of the fixed record header (magic, version, kind, reserved,
/// payload length).
pub const HEADER_LEN: usize = 16;

/// FNV-1a/64 over `bytes` — the record checksum. Exposed so tests can
/// craft adversarial records whose checksums are *valid* (a lying
/// length field must be caught by count validation, not saved by the
/// checksum), and so external tooling can verify records it relays.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Typed decode failure. Every way a byte string can fail to be a
/// record maps to exactly one of these — the decoder never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The first four bytes are not the `RVFW` magic.
    BadMagic {
        /// The magic actually read (little-endian).
        found: u32,
    },
    /// The version field names a format this decoder does not speak.
    UnsupportedVersion {
        /// The version actually read.
        found: u16,
    },
    /// The kind byte names no known record type.
    UnknownRecord {
        /// The kind actually read.
        kind: u8,
    },
    /// The buffer ends before the structure it promises. Also produced
    /// by every in-payload read that runs past the payload's end.
    Truncated {
        /// Bytes the structure needed.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// The trailer checksum does not match the header + payload bytes.
    BadChecksum {
        /// Checksum recomputed from the received bytes.
        expected: u64,
        /// Checksum carried in the trailer.
        found: u64,
    },
    /// The buffer continues past the end of the framed record.
    TrailingBytes {
        /// Bytes left over after the trailer.
        extra: u64,
    },
    /// A count field promises more elements than the remaining payload
    /// could possibly hold — rejected *before* any allocation, so a
    /// lying count cannot OOM the decoder.
    BadCount {
        /// Which count field lied.
        what: &'static str,
        /// The count it claimed.
        count: u64,
        /// Payload bytes actually remaining.
        available: u64,
    },
    /// A field holds a value that cannot be represented (a flag byte
    /// that is neither 0 nor 1, a non-UTF-8 model name, a size field
    /// exceeding this platform's `usize`, a payload shorter than its
    /// declared length).
    Malformed {
        /// What was malformed.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic { found } => write!(f, "wire: bad magic {found:#010x}"),
            Self::UnsupportedVersion { found } => {
                write!(f, "wire: unsupported format version {found}")
            }
            Self::UnknownRecord { kind } => write!(f, "wire: unknown record kind {kind}"),
            Self::Truncated { needed, available } => {
                write!(f, "wire: truncated record ({needed} bytes needed, {available} available)")
            }
            Self::BadChecksum { expected, found } => {
                write!(
                    f,
                    "wire: checksum mismatch (computed {expected:#018x}, stored {found:#018x})"
                )
            }
            Self::TrailingBytes { extra } => {
                write!(f, "wire: {extra} bytes trailing after the record")
            }
            Self::BadCount { what, count, available } => write!(
                f,
                "wire: {what} count {count} exceeds the {available} remaining payload bytes"
            ),
            Self::Malformed { what } => write!(f, "wire: malformed record: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<TryGetError> for WireError {
    fn from(e: TryGetError) -> Self {
        Self::Truncated { needed: e.requested as u64, available: e.available as u64 }
    }
}

/// One submitted stimulus chunk in transit (kind 1).
#[derive(Debug, Clone, PartialEq)]
pub struct StimulusChunk {
    /// Raw session handle the chunk belongs to.
    pub session: u64,
    /// Raw request id assigned at admission.
    pub request: u64,
    /// Absolute-tick deadline the chunk was submitted with.
    pub deadline: u64,
    /// The stimulus samples.
    pub samples: Vec<f64>,
}

/// One completed output chunk in transit (kind 2).
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseChunk {
    /// Raw session handle the chunk belongs to.
    pub session: u64,
    /// Raw request id the output answers.
    pub request: u64,
    /// The output samples, one per input sample, bit-exact.
    pub samples: Vec<f64>,
}

/// One registry entry as captured in a [`SchedulerSnapshot`]: the name
/// a model was registered under and its table fingerprint.
/// [`Scheduler::restore`](crate::Scheduler::restore) refuses a registry
/// whose same-index entry differs in either.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotModel {
    /// Registered model name.
    pub name: String,
    /// [`CompiledSim::fingerprint`](rvf_core::CompiledSim::fingerprint)
    /// of the compiled tables.
    pub fingerprint: u64,
}

/// One live session inside a [`SnapshotSlot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotSession {
    /// Registry index of the session's model.
    pub model: u32,
    /// Bit pattern of the session's sample step.
    pub dt_bits: u64,
    /// Tick of the session's last activity (idle-expiry clock).
    pub last_activity: u64,
    /// The session's kernel state.
    pub state: StateCheckpoint,
}

/// One slot of the generation-tagged session slab.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotSlot {
    /// Slot generation — restored exactly so pre-snapshot
    /// [`SessionHandle`](crate::SessionHandle)s stay valid (and stale
    /// ones stay invalid) across a restore.
    pub generation: u32,
    /// The live session, or `None` for a free slot.
    pub session: Option<SnapshotSession>,
}

/// One admitted request waiting in the queue, FIFO position preserved.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotRequest {
    /// Raw request id.
    pub id: u64,
    /// Raw handle of the session the chunk belongs to.
    pub session: u64,
    /// Absolute-tick deadline.
    pub deadline: u64,
    /// Panicked-round attempts so far (retry accounting).
    pub attempts: u32,
    /// Earliest tick the request may be served (retry backoff).
    pub not_before: u64,
    /// The stimulus samples.
    pub input: Vec<f64>,
}

/// The whole scheduler as plain data (kind 4): configuration, registry
/// fingerprints, session slab, free list, admission queue, and
/// counters. Produced by [`Scheduler::snapshot`](crate::Scheduler::snapshot),
/// consumed by [`Scheduler::restore`](crate::Scheduler::restore);
/// everything is on the injected `u64` clock, so a snapshot is
/// deterministic and two snapshots of identical schedulers are
/// byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerSnapshot {
    /// Scheduler limits and tuning knobs.
    pub cfg: ServeConfig,
    /// Next request id to assign (restored exactly so ids never
    /// collide across a crash).
    pub next_request: u64,
    /// Pool rebuilds performed so far (degradation ladder position).
    pub rebuilds: u64,
    /// Whether the scheduler had degraded to the serial path.
    pub degraded: bool,
    /// Registry entries the snapshot was taken against, in index order.
    pub models: Vec<SnapshotModel>,
    /// The session slab, in slot order.
    pub slots: Vec<SnapshotSlot>,
    /// Free-slot stack, in pop order — restored exactly so session
    /// handles assigned after a restore match an uninterrupted run.
    pub free: Vec<u32>,
    /// The admission queue, front first.
    pub queue: Vec<SnapshotRequest>,
}

/// One committed scheduler mutation, as journaled to a replication
/// log. The op set mirrors the scheduler's commit points exactly: a
/// follower that applies ops in sequence order reconstructs the
/// primary's canonical state ([`SchedulerSnapshot`]) byte for byte.
///
/// Transient queue motion (a request picked for a batch that completes
/// in the same tick) is deliberately *not* journaled: deltas describe
/// committed state transitions only, so the log between any two
/// [`DigestRecord`]s is a pure function of the scheduler's observable
/// state.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeltaOp {
    /// A session was opened (op 1): a slab slot was appended or popped
    /// off the free stack, carrying the session's initial kernel state.
    SessionOpened {
        /// Raw handle of the new session (slot index + generation).
        session: u64,
        /// Registry index of the session's model.
        model: u32,
        /// Bit pattern of the session's sample step.
        dt_bits: u64,
        /// Admission tick (initial idle-expiry clock).
        last_activity: u64,
        /// The session's kernel state at open.
        state: StateCheckpoint,
    },
    /// A chunk was admitted to the queue tail (op 2). `attempts` is
    /// implicitly zero; the admission tick doubles as the session's new
    /// `last_activity`.
    Admitted {
        /// Raw request id — must equal the follower's `next_request`.
        request: u64,
        /// Raw handle of the session the chunk belongs to.
        session: u64,
        /// Absolute-tick deadline.
        deadline: u64,
        /// Admission tick (also the earliest serving tick).
        not_before: u64,
        /// The stimulus samples.
        input: Vec<f64>,
    },
    /// A chunk completed (op 3): the request left the queue and the
    /// session's kernel state advanced to `state`.
    ChunkCompleted {
        /// Raw id of the completed request.
        request: u64,
        /// Raw handle of the session it belonged to.
        session: u64,
        /// Completion tick (idle-expiry clock touch).
        last_activity: u64,
        /// The session's kernel state after the chunk.
        state: StateCheckpoint,
    },
    /// A request failed terminally (op 4) — deadline, exhausted
    /// retries, serving error, or predecessor-failed cascade — and left
    /// the queue.
    RequestFailed {
        /// Raw id of the failed request.
        request: u64,
    },
    /// A session closed (op 5) — explicit close or idle expiry: queued
    /// work purged, slot generation bumped, slot pushed on the free
    /// stack.
    SessionClosed {
        /// Raw handle of the closed session.
        session: u64,
    },
    /// A panicked request was requeued at the queue *front* (op 6) with
    /// updated retry accounting. Emitted in the primary's push order,
    /// so applying "remove by id, push front" per op reproduces the
    /// exact queue order.
    RequestRetried {
        /// Raw id of the retried request.
        request: u64,
        /// Panicked-round attempts so far.
        attempts: u32,
        /// Earliest tick the retry may be served (backoff).
        not_before: u64,
    },
    /// The worker pool was torn down and rebuilt (op 7) — one rung up
    /// the degradation ladder.
    PoolRebuilt,
    /// The scheduler degraded to the serial path (op 8) — terminal rung
    /// of the ladder.
    Degraded,
}

/// One sequence-numbered entry of the replication log (kind 5).
/// Sequences start at 1 after the baseline snapshot and increment by
/// exactly one per committed mutation; a follower refuses any other
/// progression.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRecord {
    /// Position in the log, starting at 1 after the baseline.
    pub seq: u64,
    /// The committed mutation.
    pub op: DeltaOp,
}

/// A periodic digest of the primary's canonical state (kind 6):
/// [`checksum64`] over the primary's encoded [`SchedulerSnapshot`]
/// record as of sequence `seq`. A follower recomputes the same digest
/// from its reconstructed state; any mismatch is divergence, detected
/// at the digest rather than at promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestRecord {
    /// The last delta sequence the digest covers.
    pub seq: u64,
    /// FNV-1a/64 over the primary's encoded snapshot record.
    pub digest: u64,
}

/// A decoded wire record of any kind.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRecord {
    /// A stimulus chunk (kind 1).
    Stimulus(StimulusChunk),
    /// A response chunk (kind 2).
    Response(ResponseChunk),
    /// A session kernel checkpoint (kind 3).
    Checkpoint(StateCheckpoint),
    /// A full scheduler snapshot (kind 4).
    Snapshot(SchedulerSnapshot),
    /// A replication-log delta (kind 5).
    Delta(DeltaRecord),
    /// A replication-log state digest (kind 6).
    Digest(DigestRecord),
}

impl WireRecord {
    /// The record's kind byte.
    pub fn kind(&self) -> u8 {
        match self {
            Self::Stimulus(_) => KIND_STIMULUS,
            Self::Response(_) => KIND_RESPONSE,
            Self::Checkpoint(_) => KIND_CHECKPOINT,
            Self::Snapshot(_) => KIND_SNAPSHOT,
            Self::Delta(_) => KIND_DELTA,
            Self::Digest(_) => KIND_DIGEST,
        }
    }

    /// Encodes the record into a framed, checksummed byte string.
    /// Encoding is infallible: every field of every record type is
    /// representable, and the 64-bit length field cannot overflow an
    /// in-memory buffer.
    pub fn encode(&self) -> Bytes {
        let mut p = BytesMut::new();
        match self {
            Self::Stimulus(c) => {
                p.put_u64_le(c.session);
                p.put_u64_le(c.request);
                p.put_u64_le(c.deadline);
                put_f64_vec(&mut p, &c.samples);
            }
            Self::Response(c) => {
                p.put_u64_le(c.session);
                p.put_u64_le(c.request);
                put_f64_vec(&mut p, &c.samples);
            }
            Self::Checkpoint(c) => put_checkpoint(&mut p, c),
            Self::Snapshot(s) => put_snapshot(&mut p, s),
            Self::Delta(d) => put_delta(&mut p, d),
            Self::Digest(d) => {
                p.put_u64_le(d.seq);
                p.put_u64_le(d.digest);
            }
        }
        frame(self.kind(), p.freeze())
    }

    /// Decodes one framed record, validating magic, version, kind,
    /// framing lengths, and checksum before touching the payload. See
    /// the module docs for the exact validation order.
    ///
    /// # Errors
    ///
    /// A [`WireError`] naming the first check that failed; on any error
    /// nothing is allocated beyond what the input's own length can
    /// justify.
    pub fn decode(bytes: &Bytes) -> Result<Self, WireError> {
        Self::decode_at(bytes, true).map(|(record, _)| record)
    }

    /// Decodes the record at the *front* of `bytes`, returning it with
    /// the number of bytes it occupied. With `exact` set, bytes past
    /// the record's own frame are [`WireError::TrailingBytes`] (the
    /// [`decode`](Self::decode) contract); without it, they are left
    /// for the caller — the [`decode_stream`] contract.
    fn decode_at(bytes: &Bytes, exact: bool) -> Result<(Self, usize), WireError> {
        let total = bytes.remaining();
        let mut cur = bytes.clone();
        let magic = cur.try_get_u32_le()?;
        if magic != MAGIC {
            return Err(WireError::BadMagic { found: magic });
        }
        let version = cur.try_get_u16_le()?;
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion { found: version });
        }
        let kind = cur.try_get_u8()?;
        if !(KIND_STIMULUS..=KIND_DIGEST).contains(&kind) {
            return Err(WireError::UnknownRecord { kind });
        }
        if cur.try_get_u8()? != 0 {
            return Err(WireError::Malformed { what: "nonzero reserved header byte" });
        }
        let payload_len = cur.try_get_u64_le()?;
        let needed = payload_len.saturating_add(HEADER_LEN as u64 + 8);
        if (total as u64) < needed {
            return Err(WireError::Truncated { needed, available: total as u64 });
        }
        if exact && (total as u64) > needed {
            return Err(WireError::TrailingBytes { extra: total as u64 - needed });
        }
        // total >= needed, so the payload length fits in usize.
        let plen = payload_len as usize;
        let expected = checksum64(bytes.slice(0..HEADER_LEN + plen).as_ref());
        let mut trailer = bytes.slice(HEADER_LEN + plen..HEADER_LEN + plen + 8);
        let found = trailer.try_get_u64_le()?;
        if found != expected {
            return Err(WireError::BadChecksum { expected, found });
        }
        let mut p = bytes.slice(HEADER_LEN..HEADER_LEN + plen);
        let record = match kind {
            KIND_STIMULUS => Self::Stimulus(StimulusChunk {
                session: p.try_get_u64_le()?,
                request: p.try_get_u64_le()?,
                deadline: p.try_get_u64_le()?,
                samples: get_f64_vec(&mut p, "stimulus samples")?,
            }),
            KIND_RESPONSE => Self::Response(ResponseChunk {
                session: p.try_get_u64_le()?,
                request: p.try_get_u64_le()?,
                samples: get_f64_vec(&mut p, "response samples")?,
            }),
            KIND_CHECKPOINT => Self::Checkpoint(get_checkpoint(&mut p)?),
            KIND_SNAPSHOT => Self::Snapshot(get_snapshot(&mut p)?),
            KIND_DELTA => Self::Delta(get_delta(&mut p)?),
            _ => {
                Self::Digest(DigestRecord { seq: p.try_get_u64_le()?, digest: p.try_get_u64_le()? })
            }
        };
        if p.remaining() != 0 {
            return Err(WireError::Malformed { what: "payload longer than its record contents" });
        }
        Ok((record, needed as usize))
    }
}

/// How a [`RecordStream`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEnd {
    /// The buffer ended exactly on a record boundary.
    Clean,
    /// The buffer ends inside a record whose visible prefix is valid —
    /// the shape of a log caught mid-append. A tailer keeps the
    /// `offset` bytes it consumed and retries once more bytes arrive.
    Partial {
        /// Byte offset of the partial record's first byte.
        offset: usize,
        /// Bytes the partial record promises in total (0 when even the
        /// header's length field is not yet visible).
        needed: u64,
        /// Bytes actually available from `offset`.
        available: u64,
    },
}

/// Streaming decoder over concatenated framed records — the shape of a
/// replication log. Yields each complete record in order; see
/// [`decode_stream`].
#[derive(Debug)]
pub struct RecordStream {
    buf: Bytes,
    offset: usize,
    state: StreamState,
}

#[derive(Debug)]
enum StreamState {
    Running,
    Ended(StreamEnd),
    Failed,
}

impl RecordStream {
    /// Bytes consumed so far — the offset of the first byte *not* part
    /// of a fully decoded record. Stable across a trailing partial
    /// record, so a tailer resumes from here.
    pub fn consumed(&self) -> usize {
        self.offset
    }

    /// How the stream ended: `None` while records remain or after a
    /// hard decode error, `Some` once iteration returned `None`
    /// normally — [`StreamEnd::Clean`] on an exact record boundary,
    /// [`StreamEnd::Partial`] when the buffer ends inside a record
    /// still being appended.
    pub fn end(&self) -> Option<StreamEnd> {
        match self.state {
            StreamState::Ended(end) => Some(end),
            _ => None,
        }
    }
}

impl Iterator for RecordStream {
    type Item = Result<WireRecord, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        if !matches!(self.state, StreamState::Running) {
            return None;
        }
        let rest = self.buf.slice(self.offset..self.buf.len());
        let len = rest.len();
        if len == 0 {
            self.state = StreamState::Ended(StreamEnd::Clean);
            return None;
        }
        // Validate whatever header prefix is visible: a partial record
        // is only "partial" while every byte seen so far is consistent
        // with a record under construction — anything else is a hard
        // error, not a wait-for-more-bytes condition.
        let r = rest.as_ref();
        if len >= 4 {
            let magic = u32::from_le_bytes([r[0], r[1], r[2], r[3]]);
            if magic != MAGIC {
                self.state = StreamState::Failed;
                return Some(Err(WireError::BadMagic { found: magic }));
            }
        }
        if len >= 6 {
            let version = u16::from_le_bytes([r[4], r[5]]);
            if version != WIRE_VERSION {
                self.state = StreamState::Failed;
                return Some(Err(WireError::UnsupportedVersion { found: version }));
            }
        }
        if len >= 7 && !(KIND_STIMULUS..=KIND_DIGEST).contains(&r[6]) {
            self.state = StreamState::Failed;
            return Some(Err(WireError::UnknownRecord { kind: r[6] }));
        }
        if len >= 8 && r[7] != 0 {
            self.state = StreamState::Failed;
            return Some(Err(WireError::Malformed { what: "nonzero reserved header byte" }));
        }
        if len < HEADER_LEN {
            self.state = StreamState::Ended(StreamEnd::Partial {
                offset: self.offset,
                needed: 0,
                available: len as u64,
            });
            return None;
        }
        let payload_len =
            u64::from_le_bytes([r[8], r[9], r[10], r[11], r[12], r[13], r[14], r[15]]);
        let needed = payload_len.saturating_add(HEADER_LEN as u64 + 8);
        if (len as u64) < needed {
            self.state = StreamState::Ended(StreamEnd::Partial {
                offset: self.offset,
                needed,
                available: len as u64,
            });
            return None;
        }
        match WireRecord::decode_at(&rest, false) {
            Ok((record, used)) => {
                self.offset += used;
                Some(Ok(record))
            }
            Err(e) => {
                self.state = StreamState::Failed;
                Some(Err(e))
            }
        }
    }
}

/// Iterates the concatenated framed records at the front of `buf`,
/// distinguishing a **clean end** (buffer exhausted exactly on a
/// record boundary) from a **trailing partial record** (buffer ends
/// inside a record whose visible prefix is valid — a log caught
/// mid-append). Any other malformation is a hard, typed error and
/// fuses the iterator.
///
/// After iteration, [`RecordStream::end`] reports which end state was
/// reached and [`RecordStream::consumed`] the resume offset — together
/// they are the log-tailing contract used by
/// [`Follower::tail`](crate::replica::Follower::tail).
pub fn decode_stream(buf: Bytes) -> RecordStream {
    RecordStream { buf, offset: 0, state: StreamState::Running }
}

/// Frames a finished payload: header + payload + FNV-1a trailer.
fn frame(kind: u8, payload: Bytes) -> Bytes {
    let mut body = BytesMut::with_capacity(HEADER_LEN + payload.len() + 8);
    body.put_u32_le(MAGIC);
    body.put_u16_le(WIRE_VERSION);
    body.put_u8(kind);
    body.put_u8(0);
    body.put_u64_le(payload.len() as u64);
    body.put_slice(payload.as_ref());
    let body = body.freeze();
    let sum = checksum64(body.as_ref());
    let mut full = BytesMut::with_capacity(body.len() + 8);
    full.put_slice(body.as_ref());
    full.put_u64_le(sum);
    full.freeze()
}

/// Rejects a count field that promises more elements (of at least
/// `min_elem` bytes each) than the remaining payload holds — *before*
/// the caller allocates for it.
fn check_count(
    count: usize,
    min_elem: usize,
    available: usize,
    what: &'static str,
) -> Result<(), WireError> {
    match count.checked_mul(min_elem) {
        Some(need) if need <= available => Ok(()),
        _ => Err(WireError::BadCount { what, count: count as u64, available: available as u64 }),
    }
}

fn put_f64_vec(b: &mut BytesMut, v: &[f64]) {
    b.put_u32_le(v.len() as u32);
    for &x in v {
        b.put_f64_le(x);
    }
}

fn get_f64_vec(cur: &mut Bytes, what: &'static str) -> Result<Vec<f64>, WireError> {
    let count = cur.try_get_u32_le()? as usize;
    check_count(count, 8, cur.remaining(), what)?;
    let mut v = Vec::with_capacity(count);
    for _ in 0..count {
        v.push(cur.try_get_f64_le()?);
    }
    Ok(v)
}

fn put_string(b: &mut BytesMut, s: &str) {
    b.put_u32_le(s.len() as u32);
    b.put_slice(s.as_bytes());
}

fn get_string(cur: &mut Bytes, what: &'static str) -> Result<String, WireError> {
    let len = cur.try_get_u32_le()? as usize;
    check_count(len, 1, cur.remaining(), what)?;
    let mut raw = vec![0u8; len];
    cur.try_copy_to_slice(&mut raw)?;
    String::from_utf8(raw).map_err(|_| WireError::Malformed { what: "non-UTF-8 string" })
}

fn get_bool(cur: &mut Bytes, what: &'static str) -> Result<bool, WireError> {
    match cur.try_get_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError::Malformed { what }),
    }
}

fn get_usize(cur: &mut Bytes, what: &'static str) -> Result<usize, WireError> {
    usize::try_from(cur.try_get_u64_le()?).map_err(|_| WireError::Malformed { what })
}

fn put_checkpoint(b: &mut BytesMut, c: &StateCheckpoint) {
    for s in c.shape {
        b.put_u64_le(s);
    }
    b.put_u64_le(c.uprev);
    b.put_u8(c.started as u8);
    b.put_u64_le(c.samples);
    b.put_u64_le(c.coef_dt);
    put_f64_vec(b, &c.v0);
    put_f64_vec(b, &c.sre);
    put_f64_vec(b, &c.sim);
}

fn get_checkpoint(cur: &mut Bytes) -> Result<StateCheckpoint, WireError> {
    let mut shape = [0u64; 4];
    for s in &mut shape {
        *s = cur.try_get_u64_le()?;
    }
    let uprev = cur.try_get_u64_le()?;
    let started = get_bool(cur, "checkpoint started flag must be 0 or 1")?;
    let samples = cur.try_get_u64_le()?;
    let coef_dt = cur.try_get_u64_le()?;
    let v0 = get_f64_vec(cur, "checkpoint drive vector")?;
    let sre = get_f64_vec(cur, "checkpoint block state (re)")?;
    let sim = get_f64_vec(cur, "checkpoint block state (im)")?;
    Ok(StateCheckpoint { shape, v0, sre, sim, uprev, started, samples, coef_dt })
}

fn put_snapshot(b: &mut BytesMut, s: &SchedulerSnapshot) {
    let cfg = &s.cfg;
    b.put_u64_le(cfg.max_sessions as u64);
    b.put_u64_le(cfg.max_queued_requests as u64);
    b.put_u64_le(cfg.max_queued_samples as u64);
    b.put_u64_le(cfg.max_chunk_samples as u64);
    b.put_u64_le(cfg.idle_timeout);
    b.put_u64_le(cfg.retry_backoff_base);
    b.put_u32_le(cfg.max_retries);
    b.put_u64_le(cfg.rebuild_after_panics);
    b.put_u64_le(cfg.degrade_after_rebuilds);
    b.put_u64_le(cfg.workers as u64);
    b.put_u64_le(s.next_request);
    b.put_u64_le(s.rebuilds);
    b.put_u8(s.degraded as u8);
    b.put_u32_le(s.models.len() as u32);
    for m in &s.models {
        b.put_u64_le(m.fingerprint);
        put_string(b, &m.name);
    }
    b.put_u32_le(s.slots.len() as u32);
    for slot in &s.slots {
        b.put_u32_le(slot.generation);
        match &slot.session {
            None => b.put_u8(0),
            Some(sess) => {
                b.put_u8(1);
                b.put_u32_le(sess.model);
                b.put_u64_le(sess.dt_bits);
                b.put_u64_le(sess.last_activity);
                put_checkpoint(b, &sess.state);
            }
        }
    }
    b.put_u32_le(s.free.len() as u32);
    for &i in &s.free {
        b.put_u32_le(i);
    }
    b.put_u32_le(s.queue.len() as u32);
    for r in &s.queue {
        b.put_u64_le(r.id);
        b.put_u64_le(r.session);
        b.put_u64_le(r.deadline);
        b.put_u32_le(r.attempts);
        b.put_u64_le(r.not_before);
        put_f64_vec(b, &r.input);
    }
}

fn get_snapshot(cur: &mut Bytes) -> Result<SchedulerSnapshot, WireError> {
    let cfg = ServeConfig {
        max_sessions: get_usize(cur, "max_sessions exceeds platform usize")?,
        max_queued_requests: get_usize(cur, "max_queued_requests exceeds platform usize")?,
        max_queued_samples: get_usize(cur, "max_queued_samples exceeds platform usize")?,
        max_chunk_samples: get_usize(cur, "max_chunk_samples exceeds platform usize")?,
        idle_timeout: cur.try_get_u64_le()?,
        retry_backoff_base: cur.try_get_u64_le()?,
        max_retries: cur.try_get_u32_le()?,
        rebuild_after_panics: cur.try_get_u64_le()?,
        degrade_after_rebuilds: cur.try_get_u64_le()?,
        workers: get_usize(cur, "workers exceeds platform usize")?,
    };
    let next_request = cur.try_get_u64_le()?;
    let rebuilds = cur.try_get_u64_le()?;
    let degraded = get_bool(cur, "degraded flag must be 0 or 1")?;

    let n_models = cur.try_get_u32_le()? as usize;
    // Minimum per model: fingerprint (8) + name length (4).
    check_count(n_models, 12, cur.remaining(), "registry models")?;
    let mut models = Vec::with_capacity(n_models);
    for _ in 0..n_models {
        let fingerprint = cur.try_get_u64_le()?;
        let name = get_string(cur, "model name")?;
        models.push(SnapshotModel { name, fingerprint });
    }

    let n_slots = cur.try_get_u32_le()? as usize;
    // Minimum per slot: generation (4) + session flag (1).
    check_count(n_slots, 5, cur.remaining(), "session slots")?;
    let mut slots = Vec::with_capacity(n_slots);
    for _ in 0..n_slots {
        let generation = cur.try_get_u32_le()?;
        let session = if get_bool(cur, "session flag must be 0 or 1")? {
            Some(SnapshotSession {
                model: cur.try_get_u32_le()?,
                dt_bits: cur.try_get_u64_le()?,
                last_activity: cur.try_get_u64_le()?,
                state: get_checkpoint(cur)?,
            })
        } else {
            None
        };
        slots.push(SnapshotSlot { generation, session });
    }

    let n_free = cur.try_get_u32_le()? as usize;
    check_count(n_free, 4, cur.remaining(), "free slots")?;
    let mut free = Vec::with_capacity(n_free);
    for _ in 0..n_free {
        free.push(cur.try_get_u32_le()?);
    }

    let n_queue = cur.try_get_u32_le()? as usize;
    // Minimum per request: id + session + deadline + not_before (8×4),
    // attempts (4), sample count (4).
    check_count(n_queue, 40, cur.remaining(), "queued requests")?;
    let mut queue = Vec::with_capacity(n_queue);
    for _ in 0..n_queue {
        queue.push(SnapshotRequest {
            id: cur.try_get_u64_le()?,
            session: cur.try_get_u64_le()?,
            deadline: cur.try_get_u64_le()?,
            attempts: cur.try_get_u32_le()?,
            not_before: cur.try_get_u64_le()?,
            input: get_f64_vec(cur, "queued request samples")?,
        });
    }

    Ok(SchedulerSnapshot { cfg, next_request, rebuilds, degraded, models, slots, free, queue })
}

const OP_OPEN: u8 = 1;
const OP_ADMIT: u8 = 2;
const OP_COMPLETE: u8 = 3;
const OP_FAIL: u8 = 4;
const OP_CLOSE: u8 = 5;
const OP_RETRY: u8 = 6;
const OP_REBUILD: u8 = 7;
const OP_DEGRADE: u8 = 8;

fn put_delta(b: &mut BytesMut, d: &DeltaRecord) {
    b.put_u64_le(d.seq);
    match &d.op {
        DeltaOp::SessionOpened { session, model, dt_bits, last_activity, state } => {
            b.put_u8(OP_OPEN);
            b.put_u64_le(*session);
            b.put_u32_le(*model);
            b.put_u64_le(*dt_bits);
            b.put_u64_le(*last_activity);
            put_checkpoint(b, state);
        }
        DeltaOp::Admitted { request, session, deadline, not_before, input } => {
            b.put_u8(OP_ADMIT);
            b.put_u64_le(*request);
            b.put_u64_le(*session);
            b.put_u64_le(*deadline);
            b.put_u64_le(*not_before);
            put_f64_vec(b, input);
        }
        DeltaOp::ChunkCompleted { request, session, last_activity, state } => {
            b.put_u8(OP_COMPLETE);
            b.put_u64_le(*request);
            b.put_u64_le(*session);
            b.put_u64_le(*last_activity);
            put_checkpoint(b, state);
        }
        DeltaOp::RequestFailed { request } => {
            b.put_u8(OP_FAIL);
            b.put_u64_le(*request);
        }
        DeltaOp::SessionClosed { session } => {
            b.put_u8(OP_CLOSE);
            b.put_u64_le(*session);
        }
        DeltaOp::RequestRetried { request, attempts, not_before } => {
            b.put_u8(OP_RETRY);
            b.put_u64_le(*request);
            b.put_u32_le(*attempts);
            b.put_u64_le(*not_before);
        }
        DeltaOp::PoolRebuilt => b.put_u8(OP_REBUILD),
        DeltaOp::Degraded => b.put_u8(OP_DEGRADE),
    }
}

fn get_delta(cur: &mut Bytes) -> Result<DeltaRecord, WireError> {
    let seq = cur.try_get_u64_le()?;
    let op = match cur.try_get_u8()? {
        OP_OPEN => DeltaOp::SessionOpened {
            session: cur.try_get_u64_le()?,
            model: cur.try_get_u32_le()?,
            dt_bits: cur.try_get_u64_le()?,
            last_activity: cur.try_get_u64_le()?,
            state: get_checkpoint(cur)?,
        },
        OP_ADMIT => DeltaOp::Admitted {
            request: cur.try_get_u64_le()?,
            session: cur.try_get_u64_le()?,
            deadline: cur.try_get_u64_le()?,
            not_before: cur.try_get_u64_le()?,
            input: get_f64_vec(cur, "admitted request samples")?,
        },
        OP_COMPLETE => DeltaOp::ChunkCompleted {
            request: cur.try_get_u64_le()?,
            session: cur.try_get_u64_le()?,
            last_activity: cur.try_get_u64_le()?,
            state: get_checkpoint(cur)?,
        },
        OP_FAIL => DeltaOp::RequestFailed { request: cur.try_get_u64_le()? },
        OP_CLOSE => DeltaOp::SessionClosed { session: cur.try_get_u64_le()? },
        OP_RETRY => DeltaOp::RequestRetried {
            request: cur.try_get_u64_le()?,
            attempts: cur.try_get_u32_le()?,
            not_before: cur.try_get_u64_le()?,
        },
        OP_REBUILD => DeltaOp::PoolRebuilt,
        OP_DEGRADE => DeltaOp::Degraded,
        _ => return Err(WireError::Malformed { what: "unknown delta op" }),
    };
    Ok(DeltaRecord { seq, op })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkpoint() -> StateCheckpoint {
        StateCheckpoint {
            shape: [2, 1, 1, 0],
            v0: vec![0.25, -1.5],
            sre: vec![3.0e-3],
            sim: vec![-0.0],
            uprev: 0.25f64.to_bits(),
            started: true,
            samples: 17,
            coef_dt: 1.0e-10f64.to_bits(),
        }
    }

    fn snapshot() -> SchedulerSnapshot {
        SchedulerSnapshot {
            cfg: ServeConfig { max_retries: 5, workers: 2, ..Default::default() },
            next_request: 42,
            rebuilds: 1,
            degraded: false,
            models: vec![
                SnapshotModel { name: "lowpass".into(), fingerprint: 0xDEAD_BEEF },
                SnapshotModel { name: "".into(), fingerprint: 7 },
            ],
            slots: vec![
                SnapshotSlot {
                    generation: 3,
                    session: Some(SnapshotSession {
                        model: 1,
                        dt_bits: 1.0e-10f64.to_bits(),
                        last_activity: 40,
                        state: checkpoint(),
                    }),
                },
                SnapshotSlot { generation: 1, session: None },
            ],
            free: vec![1],
            queue: vec![SnapshotRequest {
                id: 41,
                session: (3u64 << 32) | 0,
                deadline: 99,
                attempts: 2,
                not_before: 44,
                input: vec![0.1, 0.2, 0.3],
            }],
        }
    }

    fn deltas() -> Vec<WireRecord> {
        let ops = vec![
            DeltaOp::SessionOpened {
                session: (2u64 << 32) | 1,
                model: 1,
                dt_bits: 1.0e-10f64.to_bits(),
                last_activity: 7,
                state: checkpoint(),
            },
            DeltaOp::Admitted {
                request: 42,
                session: (2u64 << 32) | 1,
                deadline: 99,
                not_before: 7,
                input: vec![0.5, -0.0, 3.0e-200],
            },
            DeltaOp::ChunkCompleted {
                request: 42,
                session: (2u64 << 32) | 1,
                last_activity: 9,
                state: checkpoint(),
            },
            DeltaOp::RequestFailed { request: 43 },
            DeltaOp::SessionClosed { session: (2u64 << 32) | 1 },
            DeltaOp::RequestRetried { request: 44, attempts: 2, not_before: 21 },
            DeltaOp::PoolRebuilt,
            DeltaOp::Degraded,
        ];
        ops.into_iter()
            .enumerate()
            .map(|(i, op)| WireRecord::Delta(DeltaRecord { seq: i as u64 + 1, op }))
            .collect()
    }

    #[test]
    fn all_records_round_trip_bit_exact() {
        let mut records = vec![
            WireRecord::Stimulus(StimulusChunk {
                session: 9,
                request: 1,
                deadline: 100,
                samples: vec![0.0, -0.0, 1.5e-300, f64::MIN_POSITIVE],
            }),
            WireRecord::Response(ResponseChunk { session: 9, request: 1, samples: vec![] }),
            WireRecord::Checkpoint(checkpoint()),
            WireRecord::Snapshot(snapshot()),
            WireRecord::Digest(DigestRecord { seq: 17, digest: 0xFEED_5EED_F00D_D00D }),
        ];
        records.extend(deltas());
        for record in records {
            let bytes = record.encode();
            let back = WireRecord::decode(&bytes).expect("round trip decodes");
            assert_eq!(back, record);
            assert_eq!(back.kind(), record.kind());
            // -0.0 vs 0.0 travel as distinct bit patterns.
            if let (WireRecord::Stimulus(a), WireRecord::Stimulus(b)) = (&back, &record) {
                for (x, y) in a.samples.iter().zip(&b.samples) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn header_validation_order() {
        let good = WireRecord::Response(ResponseChunk { session: 1, request: 2, samples: vec![] })
            .encode();
        let raw = good.as_ref().to_vec();

        // Too short for even the magic.
        assert!(matches!(
            WireRecord::decode(&Bytes::from(vec![0x52, 0x56])),
            Err(WireError::Truncated { .. })
        ));
        // Bad magic wins over everything after it.
        let mut bad = raw.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(WireRecord::decode(&Bytes::from(bad)), Err(WireError::BadMagic { .. })));
        // Wrong version (checksum not consulted yet).
        let mut bad = raw.clone();
        bad[4] = 0xFF;
        assert!(matches!(
            WireRecord::decode(&Bytes::from(bad)),
            Err(WireError::UnsupportedVersion { found: 0xFF })
        ));
        // Unknown kind.
        let mut bad = raw.clone();
        bad[6] = 200;
        assert!(matches!(
            WireRecord::decode(&Bytes::from(bad)),
            Err(WireError::UnknownRecord { kind: 200 })
        ));
        // Nonzero reserved byte.
        let mut bad = raw.clone();
        bad[7] = 1;
        assert!(matches!(WireRecord::decode(&Bytes::from(bad)), Err(WireError::Malformed { .. })));
        // Truncated trailer.
        let cut = Bytes::from(raw[..raw.len() - 3].to_vec());
        assert!(matches!(WireRecord::decode(&cut), Err(WireError::Truncated { .. })));
        // Trailing garbage.
        let mut long = raw.clone();
        long.push(0);
        assert!(matches!(
            WireRecord::decode(&Bytes::from(long)),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
        // Flipped payload bit -> checksum mismatch.
        let mut bad = raw.clone();
        bad[HEADER_LEN] ^= 0x10;
        assert!(matches!(
            WireRecord::decode(&Bytes::from(bad)),
            Err(WireError::BadChecksum { .. })
        ));
        // The original still decodes.
        assert!(WireRecord::decode(&good).is_ok());
    }

    #[test]
    fn lying_count_field_is_rejected_before_allocation() {
        // A response chunk claiming u32::MAX samples in a tiny payload,
        // with a *valid* checksum: the count check must catch it.
        let mut p = BytesMut::new();
        p.put_u64_le(1);
        p.put_u64_le(2);
        p.put_u32_le(u32::MAX);
        let bytes = frame(KIND_RESPONSE, p.freeze());
        assert!(matches!(
            WireRecord::decode(&bytes),
            Err(WireError::BadCount { what: "response samples", .. })
        ));
    }

    #[test]
    fn payload_longer_than_contents_is_rejected() {
        // Valid response payload plus 4 spare zero bytes inside the
        // declared payload length (checksum valid): decode must notice
        // the leftovers.
        let mut p = BytesMut::new();
        p.put_u64_le(1);
        p.put_u64_le(2);
        p.put_u32_le(0);
        p.put_u32_le(0);
        let bytes = frame(KIND_RESPONSE, p.freeze());
        assert!(matches!(WireRecord::decode(&bytes), Err(WireError::Malformed { .. })));
    }

    #[test]
    fn error_display_is_informative() {
        for (e, needle) in [
            (WireError::BadMagic { found: 1 }, "magic"),
            (WireError::UnsupportedVersion { found: 9 }, "version 9"),
            (WireError::UnknownRecord { kind: 77 }, "kind 77"),
            (WireError::Truncated { needed: 24, available: 3 }, "24"),
            (WireError::BadChecksum { expected: 1, found: 2 }, "checksum"),
            (WireError::TrailingBytes { extra: 5 }, "5 bytes trailing"),
            (WireError::BadCount { what: "x", count: 9, available: 1 }, "count 9"),
            (WireError::Malformed { what: "nope" }, "nope"),
        ] {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn checksum_is_fnv1a() {
        // Pinned reference values of FNV-1a/64.
        assert_eq!(checksum64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn unknown_delta_op_is_malformed() {
        let mut p = BytesMut::new();
        p.put_u64_le(1);
        p.put_u8(99);
        let bytes = frame(KIND_DELTA, p.freeze());
        assert!(matches!(
            WireRecord::decode(&bytes),
            Err(WireError::Malformed { what: "unknown delta op" })
        ));
    }

    #[test]
    fn stream_decodes_concatenated_records_to_a_clean_end() {
        let records = deltas();
        let mut log = BytesMut::new();
        for r in &records {
            log.put_slice(r.encode().as_ref());
        }
        let log = log.freeze();
        let total = log.len();
        let mut stream = decode_stream(log);
        let mut back = Vec::new();
        for item in &mut stream {
            back.push(item.expect("stream record decodes"));
        }
        assert_eq!(back, records);
        assert_eq!(stream.end(), Some(StreamEnd::Clean));
        assert_eq!(stream.consumed(), total);
    }

    #[test]
    fn stream_reports_trailing_partial_record_and_resume_offset() {
        let a = WireRecord::Digest(DigestRecord { seq: 1, digest: 2 }).encode();
        let b = WireRecord::Digest(DigestRecord { seq: 2, digest: 3 }).encode();
        // Cut the second record at every interior boundary, including a
        // sub-header cut.
        for cut in 1..b.len() {
            let mut log = BytesMut::new();
            log.put_slice(a.as_ref());
            log.put_slice(&b.as_ref()[..cut]);
            let mut stream = decode_stream(log.freeze());
            let first = stream.next().expect("first record present").expect("first decodes");
            assert_eq!(first, WireRecord::decode(&a).expect("a decodes"));
            assert!(stream.next().is_none());
            match stream.end() {
                Some(StreamEnd::Partial { offset, available, .. }) => {
                    assert_eq!(offset, a.len());
                    assert_eq!(available, cut as u64);
                }
                other => panic!("expected partial end at cut {cut}, got {other:?}"),
            }
            assert_eq!(stream.consumed(), a.len());
        }
    }

    #[test]
    fn stream_treats_garbage_as_hard_error_not_partial() {
        let a = WireRecord::Digest(DigestRecord { seq: 1, digest: 2 }).encode();
        // Bad magic right after a full record: hard error, fused.
        let mut log = BytesMut::new();
        log.put_slice(a.as_ref());
        log.put_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
        let mut stream = decode_stream(log.freeze());
        assert!(stream.next().expect("first record").is_ok());
        assert!(matches!(stream.next(), Some(Err(WireError::BadMagic { .. }))));
        assert!(stream.next().is_none());
        assert_eq!(stream.end(), None);
        assert_eq!(stream.consumed(), a.len());
    }
}
