//! Fault-tolerant model-serving tier over the compiled serving runtime.
//!
//! `rvf-serve` turns the single-process serving primitives of
//! [`rvf_core::serving`] into a service-shaped tier built for partial
//! failure:
//!
//! * [`ModelRegistry`] — an immutable set of named, `Arc`-shared
//!   [`CompiledSim`](rvf_core::CompiledSim)s; compile once, serve from
//!   every session without copies, and no fault can corrupt a model.
//! * [`Scheduler`] — admission control (bounded queues with typed
//!   [`ServeError::Overloaded`] load shedding), per-request deadlines
//!   and per-session idle timeouts on a deterministic injected clock,
//!   lane-group batching over one shared
//!   [`SweepPool`](rvf_numerics::SweepPool), retry with exponential
//!   backoff on contained worker panics, pool rebuild past a panic
//!   threshold, and graceful degradation to a bit-identical serial path
//!   past a rebuild budget.
//! * [`replica`] — warm-standby replication: the scheduler journals
//!   every committed mutation as sequence-numbered deltas (with
//!   periodic state digests) through a pluggable
//!   [`ReplicationSink`]; a
//!   [`Follower`] tails the log, proves itself
//!   byte-identical via the digests, and promotes into a live
//!   scheduler after primary death — with bit-identical client
//!   streams.
//! * [`chaos`] — a deterministic, seeded fault-injection seam (worker
//!   panics, NaN/∞ stimulus, oversized chunks, mid-stream closes) that
//!   the proptest suite uses to prove the robustness contract: no
//!   public API panics, rejected work commits no state, pre-fault
//!   checkpoints replay bit-identically after recovery, and the tier
//!   keeps serving new admissions after every injected failure.
//!
//! # Example
//!
//! ```
//! use rvf_core::SimBuilder;
//! use rvf_serve::{Event, ModelRegistry, Scheduler, ServeConfig, ServeError};
//!
//! // Compile a model and register it.
//! let mut b = SimBuilder::new();
//! let s = b.drive_poly(&[0.0, 1.0]);
//! b.set_static_drive(s);
//! b.block_real(-1.0e9, s);
//! let registry = ModelRegistry::build([("lowpass".to_string(), b.build())]);
//! let model = registry.id("lowpass").unwrap();
//!
//! // Serve it with a small admission queue.
//! let cfg = ServeConfig { max_queued_requests: 1, ..Default::default() };
//! let mut sched = Scheduler::new(registry, cfg);
//! let session = sched.open_session(model, 1.0e-10, 0).unwrap();
//!
//! // First submit is admitted; the second is shed with a typed error.
//! sched.submit(session, &[0.1, 0.2], 0, 100).unwrap();
//! assert!(matches!(
//!     sched.submit(session, &[0.3], 0, 100),
//!     Err(ServeError::Overloaded { .. })
//! ));
//!
//! // One tick serves the admitted chunk.
//! let events = sched.tick(1);
//! assert!(matches!(events[0], Event::Completed { .. }));
//! ```

#![warn(missing_docs)]

pub mod chaos;
mod error;
mod registry;
pub mod replica;
mod scheduler;
pub mod wire;

pub use error::ServeError;
pub use registry::{ModelId, ModelRegistry};
pub use replica::{Follower, ReplicaError, ReplicationSink, SharedLog};
pub use scheduler::{Event, RequestId, Scheduler, ServeConfig, SessionHandle};
pub use wire::{WireError, WireRecord};
