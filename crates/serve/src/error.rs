//! Error taxonomy of the serving tier.

use core::fmt;

use rvf_core::ServingError;

use crate::scheduler::RequestId;
use crate::wire::WireError;

/// Errors produced by the serving tier's admission and scheduling
/// layer.
///
/// The tier's contract is that **no public API panics**: every failure
/// — a full admission queue, an expired deadline, a worker panic that
/// exhausted its retries — surfaces as one of these variants, and a
/// rejected request never commits session state.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The admission queue is full (by request count or by total queued
    /// samples). This is load shedding, not failure: the caller should
    /// back off and resubmit; already-admitted work is unaffected.
    Overloaded {
        /// Requests currently queued.
        queued_requests: usize,
        /// Samples currently queued across all requests.
        queued_samples: usize,
    },
    /// The request's deadline passed before it was served. The request
    /// was dropped without touching its session's state.
    DeadlineExceeded {
        /// The deadline the request was submitted with (ticks).
        deadline: u64,
        /// The tick at which expiry was detected.
        now: u64,
    },
    /// The model id is not in the registry.
    UnknownModel {
        /// The offending raw id.
        id: usize,
    },
    /// The session handle is unknown, closed, or stale (its slot was
    /// reused by a later generation).
    UnknownSession {
        /// The offending raw handle.
        id: u64,
    },
    /// Opening another session would exceed the configured limit.
    SessionLimit {
        /// Sessions currently live.
        live: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The submitted chunk exceeds the configured per-request sample
    /// cap (oversized chunks would let one client monopolize a batch
    /// round).
    ChunkTooLarge {
        /// The submitted chunk length.
        len: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The request kept landing in panicked batch rounds and ran out of
    /// retry budget. Its session state is untouched (every failed round
    /// was transactional) and stays usable.
    RetriesExhausted {
        /// Attempts performed (initial try included).
        attempts: u32,
        /// Worker slot of the last panic.
        worker: usize,
    },
    /// An earlier request of the same session failed terminally, so
    /// serving this one would advance the session across a gap in its
    /// stimulus stream. The request was dropped without touching any
    /// state; the session itself stays usable and sits exactly at the
    /// last *completed* sample — resubmit from the failed chunk onward.
    PredecessorFailed {
        /// The earlier request whose failure cancelled this one.
        failed: RequestId,
    },
    /// A typed failure from the underlying serving runtime (bad
    /// stimulus, shape mismatch, …).
    Serving(ServingError),
    /// A snapshot was offered to [`Scheduler::restore`](crate::Scheduler::restore)
    /// against a registry whose same-index model differs (by name or by
    /// compiled-table fingerprint) from the one the snapshot was taken
    /// against. Restoring would silently serve every session of that
    /// model against different tables, so nothing is committed.
    RegistryMismatch {
        /// Registry index that disagreed.
        index: usize,
        /// Model name recorded in the snapshot.
        name: String,
        /// Table fingerprint recorded in the snapshot.
        fingerprint: u64,
    },
    /// Snapshot bytes decoded as a valid wire record but describe an
    /// inconsistent scheduler (a queued request naming a dead session, a
    /// free-list entry naming a live slot, …). Restore commits nothing.
    SnapshotInvalid {
        /// Which consistency check failed.
        what: &'static str,
    },
    /// A wire-level encode/decode failure (bad magic, version,
    /// checksum, truncation, lying length fields).
    Wire(WireError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded { queued_requests, queued_samples } => write!(
                f,
                "serve: admission queue full ({queued_requests} requests, {queued_samples} samples queued)"
            ),
            Self::DeadlineExceeded { deadline, now } => {
                write!(f, "serve: deadline {deadline} passed (now {now})")
            }
            Self::UnknownModel { id } => write!(f, "serve: unknown model id {id}"),
            Self::UnknownSession { id } => {
                write!(f, "serve: unknown, closed, or stale session handle {id}")
            }
            Self::SessionLimit { live, limit } => {
                write!(f, "serve: session limit reached ({live} live, limit {limit})")
            }
            Self::ChunkTooLarge { len, limit } => {
                write!(f, "serve: chunk of {len} samples exceeds the {limit}-sample cap")
            }
            Self::RetriesExhausted { attempts, worker } => write!(
                f,
                "serve: request failed {attempts} times on panicked rounds (last worker {worker})"
            ),
            Self::PredecessorFailed { failed } => write!(
                f,
                "serve: cancelled — earlier request {} of the same session failed; \
                 resubmit from the last completed sample",
                failed.0
            ),
            Self::Serving(e) => write!(f, "serve: {e}"),
            Self::RegistryMismatch { index, name, fingerprint } => write!(
                f,
                "serve: restore refused — registry slot {index} does not match snapshot \
                 model {name:?} (fingerprint {fingerprint:#018x})"
            ),
            Self::SnapshotInvalid { what } => {
                write!(f, "serve: restore refused — inconsistent snapshot: {what}")
            }
            Self::Wire(e) => write!(f, "serve: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Serving(e) => Some(e),
            Self::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServingError> for ServeError {
    fn from(e: ServingError) -> Self {
        Self::Serving(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        assert!(ServeError::Overloaded { queued_requests: 3, queued_samples: 99 }
            .to_string()
            .contains("queue full"));
        assert!(ServeError::DeadlineExceeded { deadline: 5, now: 9 }.to_string().contains("5"));
        assert!(ServeError::UnknownModel { id: 7 }.to_string().contains("7"));
        assert!(ServeError::UnknownSession { id: 1 }.to_string().contains("session"));
        assert!(ServeError::SessionLimit { live: 4, limit: 4 }.to_string().contains("limit"));
        assert!(ServeError::ChunkTooLarge { len: 10, limit: 4 }.to_string().contains("cap"));
        assert!(ServeError::RetriesExhausted { attempts: 4, worker: 1 }
            .to_string()
            .contains("panicked"));
        assert!(ServeError::PredecessorFailed { failed: RequestId(9) }
            .to_string()
            .contains("earlier request 9"));
        let e = ServeError::from(ServingError::StateMismatch);
        assert!(e.source().is_some());
        assert_eq!(e, ServeError::Serving(ServingError::StateMismatch));
        let m = ServeError::RegistryMismatch {
            index: 2,
            name: "buffer".to_string(),
            fingerprint: 0xABCD,
        };
        assert!(m.to_string().contains("slot 2"));
        assert!(m.to_string().contains("\"buffer\""));
        assert!(ServeError::SnapshotInvalid { what: "free list names a live slot" }
            .to_string()
            .contains("free list"));
        let w = ServeError::from(WireError::BadMagic { found: 0 });
        assert!(w.source().is_some(), "wire errors keep their source");
        assert!(w.to_string().contains("magic"));
    }
}
