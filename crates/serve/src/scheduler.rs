//! Admission-controlled batching scheduler with deadlines, retry, and
//! graceful degradation.
//!
//! The [`Scheduler`] is the service loop's core: clients open sessions
//! against registry models, [`submit`](Scheduler::submit) stimulus
//! chunks with a deadline, and the serving loop calls
//! [`tick`](Scheduler::tick) to coalesce eligible requests into
//! `BATCH_LANES` lane groups over one shared
//! [`SweepPool`](rvf_numerics::SweepPool).
//!
//! Time is an injected `u64` tick counter: every API that needs time
//! takes `now` explicitly, so schedulers are fully deterministic under
//! test — no wall clock anywhere. A production loop passes a monotonic
//! millisecond counter; the chaos harness passes whatever it likes.
//!
//! Robustness contract:
//!
//! * **Bounded admission** — the queue caps both request count and
//!   total queued samples; past either cap a submit is rejected with
//!   [`ServeError::Overloaded`] *immediately* (load shedding, never
//!   blocking), while admitted work keeps flowing.
//! * **Transactional advances** — batch rounds go through
//!   [`CompiledSim::advance_chunks`], which commits nothing on any
//!   failure; a rejected or failed request leaves its session's state
//!   bit-for-bit where it was.
//! * **Retry with backoff** — a request caught in a panicked round is
//!   requeued with exponentially growing `not_before` ticks, up to a
//!   retry budget ([`ServeError::RetriesExhausted`] after that). While
//!   the retry sits in backoff its whole session waits with it: later
//!   chunks of the same session are never served ahead of an earlier
//!   one (strict per-session FIFO).
//! * **No silent stream gaps** — when a request fails terminally
//!   (deadline, exhausted retries, a serving error), the session's
//!   remaining queued requests are cancelled with
//!   [`ServeError::PredecessorFailed`] instead of being served across
//!   the gap. The session state stays at the last completed sample and
//!   the session remains usable — resubmit from the failed chunk.
//! * **Pool rebuild and degradation** — contained worker panics are
//!   counted per pool ([`SweepPool::contained_panics`]); past a
//!   threshold the pool is torn down and rebuilt, and past a rebuild
//!   budget the scheduler degrades to a serial single-lane path whose
//!   output is bit-identical to the pooled path.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use bytes::Bytes;
use rvf_core::serving::SessionChunk;
use rvf_core::{ServingError, SimState};
use rvf_numerics::SweepPool;

use crate::error::ServeError;
use crate::registry::{ModelId, ModelRegistry};
use crate::replica::ReplicationSink;
use crate::wire::{
    checksum64, DeltaOp, DeltaRecord, DigestRecord, SchedulerSnapshot, SnapshotModel,
    SnapshotRequest, SnapshotSession, SnapshotSlot, WireRecord,
};

/// Replication bookkeeping: the attached sink, the delta sequence
/// counter, and the digest cadence. Digests are *deferred*: a journaled
/// mutation marks one due, and it is emitted at the next point where
/// the scheduler's canonical state is snapshot-consistent (end of
/// `tick`, or immediately for out-of-tick mutations).
struct Replication {
    sink: Box<dyn ReplicationSink>,
    seq: u64,
    digest_every: u64,
    since_digest: u64,
    digest_due: bool,
}

/// Stable handle to a live session. Handles are generation-tagged: a
/// handle to a closed session stays invalid forever, even if its slot
/// is reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionHandle(u64);

impl SessionHandle {
    fn new(index: usize, generation: u32) -> Self {
        Self(((generation as u64) << 32) | index as u64)
    }

    pub(crate) fn index(self) -> usize {
        (self.0 & 0xffff_ffff) as usize
    }

    pub(crate) fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    pub(crate) fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw handle value (diagnostics only).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Stable id of one submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// Scheduler tuning knobs. Every limit is a robustness boundary — the
/// defaults are deliberately small enough that tests exercise them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum live sessions ([`ServeError::SessionLimit`] past it).
    pub max_sessions: usize,
    /// Maximum queued requests ([`ServeError::Overloaded`] past it).
    pub max_queued_requests: usize,
    /// Maximum total queued samples ([`ServeError::Overloaded`]).
    pub max_queued_samples: usize,
    /// Maximum samples per request ([`ServeError::ChunkTooLarge`]).
    pub max_chunk_samples: usize,
    /// Ticks of inactivity after which an idle session (no queued work)
    /// is closed and surfaced as [`Event::SessionExpired`] with its
    /// checkpoint. `0` disables idle expiry.
    pub idle_timeout: u64,
    /// Base of the retry backoff: attempt `k` (1-based) of a panicked
    /// request becomes eligible again `retry_backoff_base << (k-1)`
    /// ticks after the failure.
    pub retry_backoff_base: u64,
    /// Retry budget per request (initial attempt not counted): after
    /// this many *re*-tries land in panicked rounds the request fails
    /// with [`ServeError::RetriesExhausted`].
    pub max_retries: u32,
    /// Contained worker panics a pool may absorb before it is torn down
    /// and rebuilt.
    pub rebuild_after_panics: u64,
    /// Pool rebuilds tolerated before the scheduler degrades to the
    /// serial single-lane path (bit-identical output, no pool).
    pub degrade_after_rebuilds: u64,
    /// Worker threads of the shared pool (`0` = one per core).
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_sessions: 1024,
            max_queued_requests: 256,
            max_queued_samples: 1 << 20,
            max_chunk_samples: 1 << 16,
            idle_timeout: 0,
            retry_backoff_base: 1,
            max_retries: 3,
            rebuild_after_panics: 2,
            degrade_after_rebuilds: 2,
            workers: 0,
        }
    }
}

/// One completion surfaced by [`Scheduler::tick`].
#[derive(Debug)]
#[non_exhaustive]
pub enum Event {
    /// A request was served; `output` holds one sample per input
    /// sample, bit-identical to feeding the chunk through a lone
    /// [`StreamingSession`](rvf_core::StreamingSession).
    Completed {
        /// The served request.
        request: RequestId,
        /// Its session.
        session: SessionHandle,
        /// The output samples.
        output: Vec<f64>,
    },
    /// A request failed; its session's state was not touched.
    Failed {
        /// The failed request.
        request: RequestId,
        /// Its session.
        session: SessionHandle,
        /// Why it failed.
        error: ServeError,
    },
    /// An idle session hit its timeout and was closed; `checkpoint`
    /// resumes it later via [`Scheduler::open_session_from`].
    SessionExpired {
        /// The expired session.
        session: SessionHandle,
        /// Its final state.
        checkpoint: SimState,
    },
}

struct Session {
    model: ModelId,
    dt: f64,
    /// `Some` between ticks; taken while the state rides a batch round.
    state: Option<SimState>,
    last_activity: u64,
    /// Requests of this session currently queued.
    queued: usize,
}

struct Slot {
    generation: u32,
    session: Option<Session>,
}

struct Request {
    id: RequestId,
    session: SessionHandle,
    input: Vec<f64>,
    deadline: u64,
    attempts: u32,
    not_before: u64,
}

/// The admission/batching scheduler. See the module docs for the
/// robustness contract.
///
/// # Examples
///
/// ```
/// use rvf_core::SimBuilder;
/// use rvf_serve::{Event, ModelRegistry, Scheduler, ServeConfig};
///
/// let mut b = SimBuilder::new();
/// let s = b.drive_poly(&[0.0, 1.0]);
/// b.set_static_drive(s);
/// b.block_real(-1.0e9, s);
/// let registry = ModelRegistry::build([("m".to_string(), b.build())]);
/// let model = registry.id("m").unwrap();
///
/// let mut sched = Scheduler::new(registry, ServeConfig::default());
/// let session = sched.open_session(model, 1.0e-10, 0).unwrap();
/// sched.submit(session, &[0.1, 0.2, 0.3], 0, 100).unwrap();
/// let events = sched.tick(1);
/// assert!(matches!(events[0], Event::Completed { .. }));
/// ```
pub struct Scheduler {
    registry: Arc<ModelRegistry>,
    cfg: ServeConfig,
    slots: Vec<Slot>,
    free: Vec<usize>,
    live: usize,
    queue: VecDeque<Request>,
    queued_samples: usize,
    next_request: u64,
    pool: Option<SweepPool>,
    pool_panic_base: u64,
    rebuilds: u64,
    replica: Option<Replication>,
}

impl Scheduler {
    /// Builds a scheduler over `registry` with the given limits. The
    /// shared pool is spawned here, once.
    pub fn new(registry: ModelRegistry, cfg: ServeConfig) -> Self {
        let pool = SweepPool::new(cfg.workers);
        Self {
            registry: Arc::new(registry),
            cfg,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            queue: VecDeque::new(),
            queued_samples: 0,
            next_request: 0,
            pool: Some(pool),
            pool_panic_base: 0,
            rebuilds: 0,
            replica: None,
        }
    }

    /// The shared model registry.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Live session count.
    pub fn live_sessions(&self) -> usize {
        self.live
    }

    /// Requests currently queued.
    pub fn queued_requests(&self) -> usize {
        self.queue.len()
    }

    /// Samples currently queued across all requests.
    pub fn queued_samples(&self) -> usize {
        self.queued_samples
    }

    /// Whether the scheduler has degraded to the serial single-lane
    /// path (output stays bit-identical; throughput drops).
    pub fn is_degraded(&self) -> bool {
        self.pool.is_none()
    }

    /// Pool rebuilds performed so far.
    pub fn pool_rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Attaches a replication sink, turning this scheduler into a
    /// journaling **primary**: a baseline [`WireRecord::Snapshot`] is
    /// appended immediately, then every committed mutation is appended
    /// as a sequence-numbered [`WireRecord::Delta`], and every
    /// `digest_every` deltas (clamped to at least 1) a
    /// [`WireRecord::Digest`] of the canonical state lets a follower
    /// prove its reconstruction byte-identical. Re-attaching replaces
    /// the previous sink and restarts the log with a fresh baseline and
    /// sequence 1.
    ///
    /// # Errors
    ///
    /// [`ServeError::SnapshotInvalid`] if the baseline snapshot cannot
    /// be taken (unreachable through the public API); on error no sink
    /// is attached.
    pub fn attach_replica(
        &mut self,
        sink: Box<dyn ReplicationSink>,
        digest_every: u64,
    ) -> Result<(), ServeError> {
        let baseline = self.snapshot()?;
        let mut rep = Replication {
            sink,
            seq: 0,
            digest_every: digest_every.max(1),
            since_digest: 0,
            digest_due: false,
        };
        rep.sink.append(baseline);
        self.replica = Some(rep);
        Ok(())
    }

    /// Detaches the replication sink, returning it; the scheduler stops
    /// journaling. `None` if no sink was attached.
    pub fn detach_replica(&mut self) -> Option<Box<dyn ReplicationSink>> {
        self.replica.take().map(|rep| rep.sink)
    }

    /// Sequence number of the last journaled delta (0 before the first,
    /// or when no sink is attached).
    pub fn replication_seq(&self) -> u64 {
        self.replica.as_ref().map_or(0, |rep| rep.seq)
    }

    /// FNV-1a/64 over the scheduler's encoded canonical state — the
    /// value a [`WireRecord::Digest`] carries. Two schedulers with
    /// equal digests have byte-identical snapshots.
    ///
    /// # Errors
    ///
    /// [`ServeError::SnapshotInvalid`] if a session's state is riding a
    /// batch round (unreachable through the public API).
    pub fn state_digest(&self) -> Result<u64, ServeError> {
        Ok(checksum64(self.snapshot()?.as_ref()))
    }

    /// Appends one committed mutation to the replication log, if a sink
    /// is attached. Infallible by design: the sink's `append` cannot
    /// fail, so journaling never blocks or poisons the serving path.
    fn journal(&mut self, op: DeltaOp) {
        let Some(rep) = self.replica.as_mut() else {
            return;
        };
        rep.seq += 1;
        let record = WireRecord::Delta(DeltaRecord { seq: rep.seq, op }).encode();
        rep.sink.append(record);
        rep.since_digest += 1;
        if rep.since_digest >= rep.digest_every {
            rep.since_digest = 0;
            rep.digest_due = true;
        }
    }

    /// Emits a due digest. Only called at snapshot-consistent points
    /// (never mid-batch, when session states are riding the round).
    fn flush_digest(&mut self) {
        if !self.replica.as_ref().is_some_and(|rep| rep.digest_due) {
            return;
        }
        let Ok(digest) = self.state_digest() else {
            // Unreachable: flush points are snapshot-consistent. Leave
            // the digest due; a follower just verifies one cadence
            // later.
            return;
        };
        if let Some(rep) = self.replica.as_mut() {
            rep.digest_due = false;
            let record = WireRecord::Digest(DigestRecord { seq: rep.seq, digest }).encode();
            rep.sink.append(record);
        }
    }

    /// Opens a session on `model` with a fresh state.
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionLimit`], [`ServeError::UnknownModel`], or a
    /// wrapped [`ServingError::BadDt`].
    pub fn open_session(
        &mut self,
        model: ModelId,
        dt: f64,
        now: u64,
    ) -> Result<SessionHandle, ServeError> {
        let sim = Arc::clone(self.registry.get(model)?);
        let state = sim.session(dt)?.into_state();
        self.install(model, dt, state, now)
    }

    /// Opens a session resuming from a checkpointed `state` (see
    /// [`Scheduler::checkpoint`] / [`Event::SessionExpired`]).
    ///
    /// # Errors
    ///
    /// Like [`open_session`](Scheduler::open_session), plus a wrapped
    /// [`ServingError::StateMismatch`] when the checkpoint belongs to a
    /// different model shape.
    pub fn open_session_from(
        &mut self,
        model: ModelId,
        dt: f64,
        state: SimState,
        now: u64,
    ) -> Result<SessionHandle, ServeError> {
        let sim = Arc::clone(self.registry.get(model)?);
        let state = sim.session_from(dt, state)?.into_state();
        self.install(model, dt, state, now)
    }

    fn install(
        &mut self,
        model: ModelId,
        dt: f64,
        state: SimState,
        now: u64,
    ) -> Result<SessionHandle, ServeError> {
        if self.live >= self.cfg.max_sessions {
            return Err(ServeError::SessionLimit { live: self.live, limit: self.cfg.max_sessions });
        }
        // Journaling checkpoint, taken before the state moves into the
        // slab so a failed export commits nothing.
        let checkpoint = match &self.replica {
            Some(_) => Some(state.export()?),
            None => None,
        };
        let session = Session { model, dt, state: Some(state), last_activity: now, queued: 0 };
        let index = match self.free.pop() {
            Some(i) => {
                self.slots[i].session = Some(session);
                i
            }
            None => {
                self.slots.push(Slot { generation: 0, session: Some(session) });
                self.slots.len() - 1
            }
        };
        self.live += 1;
        let handle = SessionHandle::new(index, self.slots[index].generation);
        if let Some(state) = checkpoint {
            self.journal(DeltaOp::SessionOpened {
                session: handle.raw(),
                model: model.index() as u32,
                dt_bits: dt.to_bits(),
                last_activity: now,
                state,
            });
            self.flush_digest();
        }
        Ok(handle)
    }

    fn resolve(&self, handle: SessionHandle) -> Result<usize, ServeError> {
        let err = ServeError::UnknownSession { id: handle.raw() };
        let index = handle.index();
        match self.slots.get(index) {
            Some(slot) if slot.generation == handle.generation() && slot.session.is_some() => {
                Ok(index)
            }
            _ => Err(err),
        }
    }

    /// A resumable snapshot of the session's current state.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for a closed or stale handle.
    pub fn checkpoint(&self, handle: SessionHandle) -> Result<SimState, ServeError> {
        let index = self.resolve(handle)?;
        match self.slots[index].session.as_ref().and_then(|s| s.state.as_ref()) {
            Some(state) => Ok(state.clone()),
            None => Err(ServeError::UnknownSession { id: handle.raw() }),
        }
    }

    /// Samples the session has absorbed so far.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for a closed or stale handle.
    pub fn samples(&self, handle: SessionHandle) -> Result<u64, ServeError> {
        let index = self.resolve(handle)?;
        match self.slots[index].session.as_ref().and_then(|s| s.state.as_ref()) {
            Some(state) => Ok(state.samples()),
            None => Err(ServeError::UnknownSession { id: handle.raw() }),
        }
    }

    /// Closes a session, returning its final state. Queued requests of
    /// the session are dropped without being served (and without
    /// touching any state — they were never applied).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for a closed or stale handle.
    pub fn close_session(&mut self, handle: SessionHandle) -> Result<SimState, ServeError> {
        let index = self.resolve(handle)?;
        let Some(session) = self.slots[index].session.take() else {
            return Err(ServeError::UnknownSession { id: handle.raw() });
        };
        let Some(state) = session.state else {
            return Err(ServeError::UnknownSession { id: handle.raw() });
        };
        // Purge the closed session's queued work.
        let mut dropped_samples = 0;
        self.queue.retain(|r| {
            if r.session == handle {
                dropped_samples += r.input.len();
                false
            } else {
                true
            }
        });
        self.queued_samples -= dropped_samples;
        self.slots[index].generation = self.slots[index].generation.wrapping_add(1);
        self.free.push(index);
        self.live -= 1;
        self.journal(DeltaOp::SessionClosed { session: handle.raw() });
        self.flush_digest();
        Ok(state)
    }

    /// Submits one stimulus chunk for the session, to be served by a
    /// later [`tick`](Scheduler::tick) no later than `deadline`
    /// (absolute ticks). Admission control happens here, synchronously:
    /// a rejected submit queues nothing and touches no state.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`], [`ServeError::ChunkTooLarge`], a
    /// wrapped [`ServingError::BadStimulus`] for NaN/∞ samples, or
    /// [`ServeError::Overloaded`] when either queue bound is hit.
    pub fn submit(
        &mut self,
        handle: SessionHandle,
        chunk: &[f64],
        now: u64,
        deadline: u64,
    ) -> Result<RequestId, ServeError> {
        let index = self.resolve(handle)?;
        if chunk.len() > self.cfg.max_chunk_samples {
            return Err(ServeError::ChunkTooLarge {
                len: chunk.len(),
                limit: self.cfg.max_chunk_samples,
            });
        }
        // Malformed stimulus is an admission failure, not a batch-time
        // surprise: reject before anything is queued.
        for (i, &v) in chunk.iter().enumerate() {
            if !v.is_finite() {
                return Err(ServeError::Serving(ServingError::BadStimulus { index: i, value: v }));
            }
        }
        if self.queue.len() >= self.cfg.max_queued_requests
            || self.queued_samples + chunk.len() > self.cfg.max_queued_samples
        {
            return Err(ServeError::Overloaded {
                queued_requests: self.queue.len(),
                queued_samples: self.queued_samples,
            });
        }
        let id = RequestId(self.next_request);
        self.next_request += 1;
        self.queue.push_back(Request {
            id,
            session: handle,
            input: chunk.to_vec(),
            deadline,
            attempts: 0,
            not_before: now,
        });
        self.queued_samples += chunk.len();
        if let Some(session) = self.slots[index].session.as_mut() {
            session.queued += 1;
            session.last_activity = now;
        }
        if self.replica.is_some() {
            self.journal(DeltaOp::Admitted {
                request: id.0,
                session: handle.raw(),
                deadline,
                not_before: now,
                input: chunk.to_vec(),
            });
            self.flush_digest();
        }
        Ok(id)
    }

    /// Serializes the whole scheduler — configuration, registry model
    /// fingerprints, generation-tagged session slab, free list,
    /// admission queue, retry/backoff state, and counters — into one
    /// checksummed [`wire`](crate::wire) record. Everything lives on
    /// the injected `u64` clock, so the snapshot is deterministic:
    /// identical schedulers produce byte-identical snapshots, and
    /// [`restore`](Scheduler::restore) + replay of the remaining work
    /// is `f64`-bit-identical to never having crashed.
    ///
    /// # Errors
    ///
    /// [`ServeError::SnapshotInvalid`] if a session's state is
    /// currently riding a batch round (unreachable through the public
    /// API — [`tick`](Scheduler::tick) always puts states back before
    /// returning).
    pub fn snapshot(&self) -> Result<Bytes, ServeError> {
        let mut models = Vec::with_capacity(self.registry.len());
        for (id, name) in self.registry.iter() {
            let sim = self.registry.get(id)?;
            models.push(SnapshotModel { name: name.to_string(), fingerprint: sim.fingerprint() });
        }
        let mut slots = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let session = match &slot.session {
                None => None,
                Some(s) => {
                    let state = s.state.as_ref().ok_or(ServeError::SnapshotInvalid {
                        what: "a session's state is riding a batch round",
                    })?;
                    Some(SnapshotSession {
                        model: s.model.index() as u32,
                        dt_bits: s.dt.to_bits(),
                        last_activity: s.last_activity,
                        state: state.export()?,
                    })
                }
            };
            slots.push(SnapshotSlot { generation: slot.generation, session });
        }
        let snap = SchedulerSnapshot {
            cfg: self.cfg.clone(),
            next_request: self.next_request,
            rebuilds: self.rebuilds,
            degraded: self.pool.is_none(),
            models,
            slots,
            free: self.free.iter().map(|&i| i as u32).collect(),
            queue: self
                .queue
                .iter()
                .map(|r| SnapshotRequest {
                    id: r.id.0,
                    session: r.session.raw(),
                    deadline: r.deadline,
                    attempts: r.attempts,
                    not_before: r.not_before,
                    input: r.input.clone(),
                })
                .collect(),
        };
        Ok(WireRecord::Snapshot(snap).encode())
    }

    /// Rebuilds a scheduler from [`snapshot`](Scheduler::snapshot)
    /// bytes against `registry`, which must carry — at the same indices
    /// — the same models (by name *and* compiled-table fingerprint) the
    /// snapshot was taken against; extra models appended past the
    /// snapshot's are allowed. Session handles, request ids, queue
    /// order, retry/backoff state, and every session's kernel state are
    /// restored exactly, so resubmitting the in-flight work and ticking
    /// on produces `f64`-bit-identical streams to an uninterrupted run.
    ///
    /// Restore is a constructor: on any error **nothing is committed**
    /// (there is no scheduler to corrupt). A degraded scheduler is
    /// restored degraded; otherwise a fresh pool is spawned.
    ///
    /// # Errors
    ///
    /// [`ServeError::Wire`] when the bytes are not a valid wire record,
    /// [`ServeError::RegistryMismatch`] when a registry entry differs
    /// from the snapshot's, [`ServeError::SnapshotInvalid`] when the
    /// decoded snapshot is internally inconsistent, and a wrapped
    /// [`ServingError`] when a session checkpoint does not fit its
    /// model.
    pub fn restore(bytes: &Bytes, registry: &ModelRegistry) -> Result<Self, ServeError> {
        let WireRecord::Snapshot(snap) = WireRecord::decode(bytes)? else {
            return Err(ServeError::SnapshotInvalid {
                what: "the record is not a scheduler snapshot",
            });
        };
        for (i, m) in snap.models.iter().enumerate() {
            let id = ModelId(i);
            let matches = registry.name(id) == Some(m.name.as_str())
                && matches!(registry.get(id), Ok(sim) if sim.fingerprint() == m.fingerprint);
            if !matches {
                return Err(ServeError::RegistryMismatch {
                    index: i,
                    name: m.name.clone(),
                    fingerprint: m.fingerprint,
                });
            }
        }
        let mut slots = Vec::with_capacity(snap.slots.len());
        let mut live = 0;
        for s in &snap.slots {
            let session = match &s.session {
                None => None,
                Some(sess) => {
                    let model = ModelId(sess.model as usize);
                    if sess.model as usize >= snap.models.len() {
                        return Err(ServeError::SnapshotInvalid {
                            what: "a session references a model outside the snapshot registry",
                        });
                    }
                    let sim = registry.get(model)?;
                    let dt = f64::from_bits(sess.dt_bits);
                    if !(dt.is_finite() && dt > 0.0) {
                        return Err(ServeError::SnapshotInvalid {
                            what: "a session's dt is not a positive finite number",
                        });
                    }
                    let state = sim.import_state(&sess.state)?;
                    live += 1;
                    Some(Session {
                        model,
                        dt,
                        state: Some(state),
                        last_activity: sess.last_activity,
                        queued: 0,
                    })
                }
            };
            slots.push(Slot { generation: s.generation, session });
        }
        let mut free = Vec::with_capacity(snap.free.len());
        let mut in_free = vec![false; slots.len()];
        for &i in &snap.free {
            let i = i as usize;
            if i >= slots.len() || slots[i].session.is_some() || in_free[i] {
                return Err(ServeError::SnapshotInvalid {
                    what: "a free-list entry does not name a distinct empty slot",
                });
            }
            in_free[i] = true;
            free.push(i);
        }
        if free.len() + live != slots.len() {
            return Err(ServeError::SnapshotInvalid {
                what: "the free list does not cover every empty slot",
            });
        }
        let mut queue = VecDeque::with_capacity(snap.queue.len());
        let mut queued_samples = 0usize;
        for r in &snap.queue {
            let handle = SessionHandle(r.session);
            let index = handle.index();
            let alive = slots.get(index).is_some_and(|slot| {
                slot.generation == handle.generation() && slot.session.is_some()
            });
            if !alive {
                return Err(ServeError::SnapshotInvalid {
                    what: "a queued request references a dead session",
                });
            }
            if r.id >= snap.next_request {
                return Err(ServeError::SnapshotInvalid {
                    what: "a queued request id is newer than the id counter",
                });
            }
            if r.input.iter().any(|v| !v.is_finite()) {
                return Err(ServeError::SnapshotInvalid {
                    what: "a queued stimulus holds a non-finite sample",
                });
            }
            queued_samples += r.input.len();
            if let Some(session) = slots[index].session.as_mut() {
                session.queued += 1;
            }
            queue.push_back(Request {
                id: RequestId(r.id),
                session: handle,
                input: r.input.clone(),
                deadline: r.deadline,
                attempts: r.attempts,
                not_before: r.not_before,
            });
        }
        let pool = if snap.degraded { None } else { Some(SweepPool::new(snap.cfg.workers)) };
        Ok(Self {
            registry: Arc::new(registry.clone()),
            cfg: snap.cfg,
            slots,
            free,
            live,
            queue,
            queued_samples,
            next_request: snap.next_request,
            pool,
            pool_panic_base: 0,
            rebuilds: snap.rebuilds,
            replica: None,
        })
    }

    /// Runs one scheduling round at tick `now`: expires idle sessions
    /// and overdue requests, coalesces the first eligible request of
    /// each session into per-model lane-group batches, advances them
    /// (pooled, or serial when degraded — identical bits either way),
    /// and returns every completion produced. Call repeatedly to drain;
    /// a tick with nothing eligible returns an empty vector.
    pub fn tick(&mut self, now: u64) -> Vec<Event> {
        let mut events = Vec::new();
        self.expire_idle(now, &mut events);
        self.expire_deadlines(now, &mut events);
        let picked = self.pick_eligible(now);
        if !picked.is_empty() {
            self.run_batches(picked, now, &mut events);
        }
        self.flush_digest();
        events
    }

    fn expire_idle(&mut self, now: u64, events: &mut Vec<Event>) {
        if self.cfg.idle_timeout == 0 {
            return;
        }
        let mut expired = Vec::new();
        for (index, slot) in self.slots.iter().enumerate() {
            if let Some(session) = &slot.session {
                if session.queued == 0
                    && now.saturating_sub(session.last_activity) >= self.cfg.idle_timeout
                {
                    expired.push(SessionHandle::new(index, slot.generation));
                }
            }
        }
        for handle in expired {
            if let Ok(checkpoint) = self.close_session(handle) {
                events.push(Event::SessionExpired { session: handle, checkpoint });
            }
        }
    }

    fn expire_deadlines(&mut self, now: u64, events: &mut Vec<Event>) {
        // One pass in FIFO order. A session whose request expires loses
        // its later queued requests too ([`ServeError::PredecessorFailed`]):
        // serving them would advance the session across a gap in its
        // stimulus stream.
        let mut failed: HashMap<SessionHandle, RequestId> = HashMap::new();
        let mut kept = VecDeque::with_capacity(self.queue.len());
        while let Some(request) = self.queue.pop_front() {
            let error = if let Some(&head) = failed.get(&request.session) {
                ServeError::PredecessorFailed { failed: head }
            } else if now > request.deadline {
                failed.insert(request.session, request.id);
                ServeError::DeadlineExceeded { deadline: request.deadline, now }
            } else {
                kept.push_back(request);
                continue;
            };
            self.queued_samples -= request.input.len();
            self.note_dequeued(request.session);
            self.journal(DeltaOp::RequestFailed { request: request.id.0 });
            events.push(Event::Failed { request: request.id, session: request.session, error });
        }
        self.queue = kept;
    }

    fn note_dequeued(&mut self, handle: SessionHandle) {
        if let Ok(index) = self.resolve(handle) {
            if let Some(session) = self.slots[index].session.as_mut() {
                session.queued = session.queued.saturating_sub(1);
            }
        }
    }

    /// Removes from the queue the first eligible request of each
    /// distinct session (FIFO order otherwise preserved): sessions
    /// advance at most one chunk per tick, which is what makes
    /// per-session output ordering trivial.
    ///
    /// A session is blocked for the whole tick the moment one of its
    /// requests is *kept* — whether because the session already
    /// contributed this tick or because its FIFO-head request is parked
    /// in retry backoff (`not_before > now`). Skipping past a
    /// backed-off head would serve chunk N+1 before chunk N and
    /// silently corrupt the session's output stream.
    fn pick_eligible(&mut self, now: u64) -> Vec<Request> {
        let mut picked = Vec::new();
        let mut blocked: HashSet<SessionHandle> = HashSet::new();
        let mut kept = VecDeque::with_capacity(self.queue.len());
        while let Some(request) = self.queue.pop_front() {
            if request.not_before <= now && !blocked.contains(&request.session) {
                blocked.insert(request.session);
                picked.push(request);
            } else {
                blocked.insert(request.session);
                kept.push_back(request);
            }
        }
        self.queue = kept;
        picked
    }

    fn run_batches(&mut self, picked: Vec<Request>, now: u64, events: &mut Vec<Event>) {
        // Group picked requests by (model, dt bits) in first-seen order
        // — a batch round advances one model at one sample step.
        let mut groups: Vec<((usize, u64), Vec<Request>)> = Vec::new();
        for request in picked {
            let Ok(index) = self.resolve(request.session) else {
                // Session vanished (cannot happen through the public
                // API — close purges the queue — but stay typed).
                self.queued_samples -= request.input.len();
                self.journal(DeltaOp::RequestFailed { request: request.id.0 });
                events.push(Event::Failed {
                    request: request.id,
                    session: request.session,
                    error: ServeError::UnknownSession { id: request.session.raw() },
                });
                continue;
            };
            let Some(session) = self.slots[index].session.as_ref() else {
                continue;
            };
            let key = (session.model.index(), session.dt.to_bits());
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(request),
                None => groups.push((key, vec![request])),
            }
        }
        for ((model, dt_bits), members) in groups {
            self.run_model_batch(ModelId(model), f64::from_bits(dt_bits), members, now, events);
        }
    }

    fn run_model_batch(
        &mut self,
        model: ModelId,
        dt: f64,
        members: Vec<Request>,
        now: u64,
        events: &mut Vec<Event>,
    ) {
        let Ok(sim) = self.registry.get(model).map(Arc::clone) else {
            for request in members {
                self.queued_samples -= request.input.len();
                self.note_dequeued(request.session);
                self.journal(DeltaOp::RequestFailed { request: request.id.0 });
                events.push(Event::Failed {
                    request: request.id,
                    session: request.session,
                    error: ServeError::UnknownModel { id: model.index() },
                });
            }
            return;
        };
        // Move each member's state out of its slot for the round; every
        // path below puts it back (advanced on success, untouched on
        // failure — advance_chunks is transactional).
        let mut states: Vec<SimState> = Vec::with_capacity(members.len());
        let mut outputs: Vec<Vec<f64>> = Vec::with_capacity(members.len());
        let mut live_members: Vec<Request> = Vec::with_capacity(members.len());
        for request in members {
            let taken = match self.resolve(request.session) {
                Ok(index) => {
                    self.slots[index].session.as_mut().and_then(|session| session.state.take())
                }
                Err(_) => None,
            };
            match taken {
                Some(state) => {
                    states.push(state);
                    outputs.push(vec![0.0; request.input.len()]);
                    live_members.push(request);
                }
                None => {
                    self.queued_samples -= request.input.len();
                    self.journal(DeltaOp::RequestFailed { request: request.id.0 });
                    events.push(Event::Failed {
                        request: request.id,
                        session: request.session,
                        error: ServeError::UnknownSession { id: request.session.raw() },
                    });
                }
            }
        }
        let outcome = {
            let mut chunks: Vec<SessionChunk<'_>> = states
                .iter_mut()
                .zip(live_members.iter())
                .zip(outputs.iter_mut())
                .map(|((state, request), output)| SessionChunk {
                    state,
                    input: request.input.as_slice(),
                    output: output.as_mut_slice(),
                })
                .collect();
            sim.advance_chunks(dt, &mut chunks, self.pool.as_ref())
        };
        match outcome {
            Ok(()) => {
                for ((request, state), output) in live_members.into_iter().zip(states).zip(outputs)
                {
                    // Post-state checkpoint for the journal, exported
                    // before the state returns to its slot.
                    let checkpoint = match &self.replica {
                        Some(_) => state.export().ok(),
                        None => None,
                    };
                    self.put_back(request.session, state, Some(now));
                    self.queued_samples -= request.input.len();
                    self.note_dequeued(request.session);
                    if let Some(state) = checkpoint {
                        self.journal(DeltaOp::ChunkCompleted {
                            request: request.id.0,
                            session: request.session.raw(),
                            last_activity: now,
                            state,
                        });
                    }
                    events.push(Event::Completed {
                        request: request.id,
                        session: request.session,
                        output,
                    });
                }
            }
            Err(ServingError::WorkerPanicked { worker }) => {
                // Nothing was committed; restore states, then retry or
                // give up per request.
                let mut requeue = Vec::new();
                for (mut request, state) in live_members.into_iter().zip(states) {
                    self.put_back(request.session, state, None);
                    request.attempts += 1;
                    if request.attempts > self.cfg.max_retries {
                        self.queued_samples -= request.input.len();
                        self.note_dequeued(request.session);
                        self.journal(DeltaOp::RequestFailed { request: request.id.0 });
                        events.push(Event::Failed {
                            request: request.id,
                            session: request.session,
                            error: ServeError::RetriesExhausted {
                                attempts: request.attempts,
                                worker,
                            },
                        });
                        self.cancel_session_queue(request.session, request.id, events);
                    } else {
                        let shift = (request.attempts - 1).min(16);
                        request.not_before =
                            now.saturating_add(self.cfg.retry_backoff_base << shift);
                        requeue.push(request);
                    }
                }
                // Retries go back to the *front*, preserving their FIFO
                // priority over younger requests. Journaled in push
                // order, so a follower applying "remove by id, push
                // front" per delta reproduces the exact queue order.
                for request in requeue.into_iter().rev() {
                    self.journal(DeltaOp::RequestRetried {
                        request: request.id.0,
                        attempts: request.attempts,
                        not_before: request.not_before,
                    });
                    self.queue.push_front(request);
                }
                self.check_pool_health();
            }
            Err(error) => {
                // Validation failures cannot normally reach this point
                // (submit re-checks everything advance_chunks checks),
                // but stay typed and transactional regardless.
                for (request, state) in live_members.into_iter().zip(states) {
                    self.put_back(request.session, state, None);
                    self.queued_samples -= request.input.len();
                    self.note_dequeued(request.session);
                    self.journal(DeltaOp::RequestFailed { request: request.id.0 });
                    events.push(Event::Failed {
                        request: request.id,
                        session: request.session,
                        error: ServeError::Serving(error.clone()),
                    });
                    self.cancel_session_queue(request.session, request.id, events);
                }
            }
        }
    }

    /// Fails every still-queued request of `handle` with
    /// [`ServeError::PredecessorFailed`] after request `failed` of the
    /// same session failed terminally. Serving them would advance the
    /// session across a gap in its stimulus stream; the session's state
    /// itself is untouched (it sits at the last completed sample), so
    /// the client resubmits from the failed chunk onward.
    fn cancel_session_queue(
        &mut self,
        handle: SessionHandle,
        failed: RequestId,
        events: &mut Vec<Event>,
    ) {
        let mut kept = VecDeque::with_capacity(self.queue.len());
        while let Some(request) = self.queue.pop_front() {
            if request.session == handle {
                self.queued_samples -= request.input.len();
                self.note_dequeued(handle);
                self.journal(DeltaOp::RequestFailed { request: request.id.0 });
                events.push(Event::Failed {
                    request: request.id,
                    session: handle,
                    error: ServeError::PredecessorFailed { failed },
                });
            } else {
                kept.push_back(request);
            }
        }
        self.queue = kept;
    }

    fn put_back(&mut self, handle: SessionHandle, state: SimState, touch: Option<u64>) {
        if let Ok(index) = self.resolve(handle) {
            if let Some(session) = self.slots[index].session.as_mut() {
                session.state = Some(state);
                if let Some(now) = touch {
                    session.last_activity = now;
                }
            }
        }
    }

    /// Thresholds [`SweepPool::contained_panics`]: past
    /// `rebuild_after_panics` the pool is torn down and respawned; past
    /// `degrade_after_rebuilds` rebuilds the scheduler gives up on
    /// pooling and serves serially (bit-identical, just slower).
    fn check_pool_health(&mut self) {
        let absorbed = match &self.pool {
            Some(pool) => pool.contained_panics().saturating_sub(self.pool_panic_base),
            None => return,
        };
        if absorbed < self.cfg.rebuild_after_panics {
            return;
        }
        if self.rebuilds >= self.cfg.degrade_after_rebuilds {
            self.pool = None;
            self.journal(DeltaOp::Degraded);
        } else {
            self.rebuilds += 1;
            self.pool = Some(SweepPool::new(self.cfg.workers));
            self.pool_panic_base = 0;
            self.journal(DeltaOp::PoolRebuilt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvf_core::{CompiledSim, SimBuilder};

    fn tiny_model(a: f64) -> CompiledSim {
        let mut b = SimBuilder::new();
        let s = b.drive_poly(&[0.0, 1.0]);
        b.set_static_drive(s);
        b.block_real(a, s);
        b.build()
    }

    fn one_model_scheduler(cfg: ServeConfig) -> (Scheduler, ModelId) {
        let registry = ModelRegistry::build([("m".to_string(), tiny_model(-1.0e9))]);
        let sched = Scheduler::new(registry, cfg);
        let model = sched.registry().id("m").unwrap_or(ModelId(0));
        (sched, model)
    }

    #[test]
    fn serves_chunks_bit_identical_to_lone_session() {
        let (mut sched, model) = one_model_scheduler(ServeConfig::default());
        let dt = 1.0e-10;
        let session = sched.open_session(model, dt, 0).unwrap();
        let u: Vec<f64> = (0..50).map(|i| (i as f64 * 0.13).sin()).collect();
        let sim = Arc::clone(sched.registry().get(model).unwrap());
        let want = sim.simulate(dt, &u);
        let mut got = Vec::new();
        let mut now = 0;
        for chunk in u.chunks(7) {
            sched.submit(session, chunk, now, now + 10).unwrap();
            now += 1;
            for event in sched.tick(now) {
                match event {
                    Event::Completed { output, .. } => got.extend(output),
                    other => panic!("unexpected event {other:?}"),
                }
            }
        }
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
        assert_eq!(sched.samples(session).unwrap(), 50);
    }

    #[test]
    fn admission_control_rejects_typed() {
        let cfg = ServeConfig {
            max_sessions: 2,
            max_queued_requests: 2,
            max_queued_samples: 100,
            max_chunk_samples: 8,
            ..Default::default()
        };
        let (mut sched, model) = one_model_scheduler(cfg);
        let a = sched.open_session(model, 1e-10, 0).unwrap();
        let _b = sched.open_session(model, 1e-10, 0).unwrap();
        assert!(matches!(
            sched.open_session(model, 1e-10, 0),
            Err(ServeError::SessionLimit { live: 2, limit: 2 })
        ));
        assert!(matches!(
            sched.submit(a, &[0.0; 9], 0, 10),
            Err(ServeError::ChunkTooLarge { len: 9, limit: 8 })
        ));
        assert!(matches!(
            sched.submit(a, &[0.1, f64::NAN], 0, 10),
            Err(ServeError::Serving(ServingError::BadStimulus { index: 1, .. }))
        ));
        sched.submit(a, &[0.1; 4], 0, 10).unwrap();
        sched.submit(a, &[0.2; 4], 0, 10).unwrap();
        assert!(matches!(
            sched.submit(a, &[0.3; 4], 0, 10),
            Err(ServeError::Overloaded { queued_requests: 2, .. })
        ));
        // Rejections queued nothing and committed nothing.
        assert_eq!(sched.queued_requests(), 2);
        assert_eq!(sched.queued_samples(), 8);
        assert_eq!(sched.samples(a).unwrap(), 0);
        // Bad dt and unknown model are typed too.
        assert!(matches!(
            sched.open_session(model, f64::NAN, 0),
            Err(ServeError::Serving(ServingError::BadDt { .. }))
        ));
        assert!(matches!(
            sched.open_session(ModelId(7), 1e-10, 0),
            Err(ServeError::UnknownModel { id: 7 })
        ));
    }

    #[test]
    fn deadlines_expire_without_touching_state() {
        let (mut sched, model) = one_model_scheduler(ServeConfig::default());
        let session = sched.open_session(model, 1e-10, 0).unwrap();
        let r = sched.submit(session, &[0.5; 4], 0, 3).unwrap();
        // Tick past the deadline without serving.
        let events = sched.tick(4);
        assert_eq!(events.len(), 1);
        assert!(matches!(
            &events[0],
            Event::Failed { request, error: ServeError::DeadlineExceeded { deadline: 3, now: 4 }, .. }
                if *request == r
        ));
        assert_eq!(sched.samples(session).unwrap(), 0, "expired request committed nothing");
        assert_eq!(sched.queued_requests(), 0);
        assert_eq!(sched.queued_samples(), 0);
        // The session still serves.
        sched.submit(session, &[0.5; 4], 5, 10).unwrap();
        assert!(matches!(sched.tick(6)[0], Event::Completed { .. }));
    }

    #[test]
    fn deadline_failure_cancels_later_chunks_of_same_session() {
        let (mut sched, model) = one_model_scheduler(ServeConfig::default());
        let dt = 1e-10;
        let victim = sched.open_session(model, dt, 0).unwrap();
        let bystander = sched.open_session(model, dt, 0).unwrap();
        // victim's first chunk expires; its second is still in deadline
        // but must be cancelled rather than served across the gap.
        let r0 = sched.submit(victim, &[0.1; 3], 0, 3).unwrap();
        let r1 = sched.submit(victim, &[0.2; 3], 0, 100).unwrap();
        let r2 = sched.submit(bystander, &[0.3; 3], 0, 100).unwrap();
        let events = sched.tick(4);
        assert_eq!(events.len(), 3);
        assert!(matches!(
            &events[0],
            Event::Failed { request, error: ServeError::DeadlineExceeded { .. }, .. }
                if *request == r0
        ));
        assert!(matches!(
            &events[1],
            Event::Failed { request, error: ServeError::PredecessorFailed { failed }, .. }
                if *request == r1 && *failed == r0
        ));
        assert!(matches!(&events[2], Event::Completed { request, .. } if *request == r2));
        assert_eq!(sched.samples(victim).unwrap(), 0, "no chunk was served across the gap");
        assert_eq!(sched.queued_requests(), 0);
        assert_eq!(sched.queued_samples(), 0);
        // The session sits at the last completed sample; resubmitting
        // the whole stream from there serves bit-identically.
        let sim = Arc::clone(sched.registry().get(model).unwrap());
        let u: Vec<f64> = (0..6).map(|i| 0.1 * (i + 1) as f64).collect();
        let mut got = Vec::new();
        let mut now = 5;
        for chunk in u.chunks(3) {
            sched.submit(victim, chunk, now, now + 10).unwrap();
            now += 1;
            for event in sched.tick(now) {
                match event {
                    Event::Completed { output, .. } => got.extend(output),
                    other => panic!("unexpected event {other:?}"),
                }
            }
        }
        let want = sim.simulate(dt, &u);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn idle_sessions_expire_with_checkpoint() {
        let cfg = ServeConfig { idle_timeout: 10, ..Default::default() };
        let (mut sched, model) = one_model_scheduler(cfg);
        let session = sched.open_session(model, 1e-10, 0).unwrap();
        sched.submit(session, &[0.5; 4], 0, 5).unwrap();
        assert!(matches!(sched.tick(1)[0], Event::Completed { .. }));
        // Nothing queued, clock runs past the idle window.
        let events = sched.tick(11);
        assert_eq!(events.len(), 1);
        let Event::SessionExpired { session: expired, checkpoint } = &events[0] else {
            panic!("want SessionExpired, got {:?}", events[0]);
        };
        assert_eq!(*expired, session);
        assert_eq!(checkpoint.samples(), 4);
        assert_eq!(sched.live_sessions(), 0);
        assert!(matches!(
            sched.submit(session, &[1.0], 12, 20),
            Err(ServeError::UnknownSession { .. })
        ));
        // The checkpoint reopens and continues where it stood.
        let resumed = sched.open_session_from(model, 1e-10, checkpoint.clone(), 12).unwrap();
        assert_eq!(sched.samples(resumed).unwrap(), 4);
    }

    #[test]
    fn stale_handles_stay_invalid_after_slot_reuse() {
        let (mut sched, model) = one_model_scheduler(ServeConfig::default());
        let first = sched.open_session(model, 1e-10, 0).unwrap();
        sched.close_session(first).unwrap();
        let second = sched.open_session(model, 1e-10, 0).unwrap();
        assert_eq!(first.index(), second.index(), "slot is reused");
        assert_ne!(first, second);
        assert!(matches!(sched.checkpoint(first), Err(ServeError::UnknownSession { .. })));
        assert!(sched.checkpoint(second).is_ok());
    }

    #[test]
    fn close_purges_queued_work() {
        let (mut sched, model) = one_model_scheduler(ServeConfig::default());
        let a = sched.open_session(model, 1e-10, 0).unwrap();
        let b = sched.open_session(model, 1e-10, 0).unwrap();
        sched.submit(a, &[0.1; 4], 0, 10).unwrap();
        sched.submit(a, &[0.2; 4], 0, 10).unwrap();
        sched.submit(b, &[0.3; 4], 0, 10).unwrap();
        sched.close_session(a).unwrap();
        assert_eq!(sched.queued_requests(), 1);
        assert_eq!(sched.queued_samples(), 4);
        let events = sched.tick(1);
        assert_eq!(events.len(), 1, "only b's request is served");
        assert!(matches!(&events[0], Event::Completed { session, .. } if *session == b));
    }

    #[test]
    fn one_chunk_per_session_per_tick_keeps_fifo_order() {
        let (mut sched, model) = one_model_scheduler(ServeConfig::default());
        let session = sched.open_session(model, 1e-10, 0).unwrap();
        let r0 = sched.submit(session, &[0.1; 3], 0, 100).unwrap();
        let r1 = sched.submit(session, &[0.2; 3], 0, 100).unwrap();
        let first = sched.tick(1);
        assert_eq!(first.len(), 1);
        assert!(matches!(&first[0], Event::Completed { request, .. } if *request == r0));
        let second = sched.tick(2);
        assert!(matches!(&second[0], Event::Completed { request, .. } if *request == r1));
    }

    #[test]
    fn snapshot_restore_resumes_bit_identical_with_queue_and_handles() {
        let (mut sched, model) = one_model_scheduler(ServeConfig::default());
        let dt = 1e-10;
        let sim = Arc::clone(sched.registry().get(model).unwrap());
        let u: Vec<f64> = (0..40).map(|i| (i as f64 * 0.17).sin()).collect();
        let want = sim.simulate(dt, &u);

        // Serve the first half, leave the second half queued, then cut
        // power (drop the scheduler) with work in flight.
        let session = sched.open_session(model, dt, 0).unwrap();
        let mut got_head = Vec::new();
        for chunk in u[..20].chunks(5) {
            sched.submit(session, chunk, 1, 100).unwrap();
            for event in sched.tick(2) {
                match event {
                    Event::Completed { output, .. } => got_head.extend(output),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        sched.submit(session, &u[20..30], 3, 100).unwrap();
        sched.submit(session, &u[30..], 3, 100).unwrap();
        let bytes = sched.snapshot().unwrap();
        drop(sched);

        // Restore against a *recompiled* registry (same tables, new
        // allocation) and drain the queued work.
        let registry = ModelRegistry::build([("m".to_string(), tiny_model(-1.0e9))]);
        let mut restored = Scheduler::restore(&bytes, &registry).unwrap();
        assert_eq!(restored.live_sessions(), 1);
        assert_eq!(restored.queued_requests(), 2);
        assert_eq!(restored.queued_samples(), 20);
        assert_eq!(restored.samples(session).unwrap(), 20, "old handles survive the restore");
        let mut got_tail = Vec::new();
        for now in 4..8 {
            for event in restored.tick(now) {
                match event {
                    Event::Completed { output, .. } => got_tail.extend(output),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert_eq!(got_head.len() + got_tail.len(), want.len());
        for (i, (g, w)) in got_head.iter().chain(&got_tail).zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "sample {i}");
        }
        // Request ids keep counting past the snapshot's — no collisions.
        let r = restored.submit(session, &[0.5], 9, 100).unwrap();
        assert!(r.0 >= 6);
    }

    #[test]
    fn snapshot_is_deterministic_and_restore_is_lossless() {
        let cfg = ServeConfig { idle_timeout: 50, ..Default::default() };
        let (mut sched, model) = one_model_scheduler(cfg);
        let a = sched.open_session(model, 1e-10, 0).unwrap();
        let b = sched.open_session(model, 2e-10, 0).unwrap();
        sched.submit(a, &[0.1; 4], 0, 30).unwrap();
        sched.tick(1);
        sched.close_session(b).unwrap();
        sched.submit(a, &[0.2; 4], 2, 30).unwrap();
        let bytes = sched.snapshot().unwrap();
        assert_eq!(bytes, sched.snapshot().unwrap(), "snapshotting is read-only + deterministic");
        // restore ∘ snapshot is the identity on the wire image.
        let restored = Scheduler::restore(&bytes, sched.registry()).unwrap();
        assert_eq!(restored.snapshot().unwrap(), bytes);
        assert_eq!(restored.live_sessions(), 1);
        assert_eq!(restored.pool_rebuilds(), 0);
        assert!(!restored.is_degraded());
        // The closed session's slot stays closed: its stale handle is
        // refused by the restored scheduler too.
        assert!(matches!(restored.checkpoint(b), Err(ServeError::UnknownSession { .. })));
    }

    #[test]
    fn restore_rejects_mismatched_registry_and_garbage_typed() {
        let (mut sched, model) = one_model_scheduler(ServeConfig::default());
        let session = sched.open_session(model, 1e-10, 0).unwrap();
        sched.submit(session, &[0.4; 3], 0, 50).unwrap();
        let bytes = sched.snapshot().unwrap();

        // Same name, different compiled tables -> fingerprint mismatch.
        let retuned = ModelRegistry::build([("m".to_string(), tiny_model(-3.0e9))]);
        assert!(matches!(
            Scheduler::restore(&bytes, &retuned),
            Err(ServeError::RegistryMismatch { index: 0, .. })
        ));
        // Same tables, different name.
        let renamed = ModelRegistry::build([("other".to_string(), tiny_model(-1.0e9))]);
        assert!(matches!(
            Scheduler::restore(&bytes, &renamed),
            Err(ServeError::RegistryMismatch { index: 0, .. })
        ));
        // Empty registry.
        assert!(matches!(
            Scheduler::restore(&bytes, &ModelRegistry::build([])),
            Err(ServeError::RegistryMismatch { index: 0, .. })
        ));
        // Garbage bytes fail at the wire layer, typed.
        assert!(matches!(
            Scheduler::restore(&bytes::Bytes::from(vec![0u8; 40]), sched.registry()),
            Err(ServeError::Wire(_))
        ));
        // A non-snapshot record is refused.
        let wrong = WireRecord::Response(crate::wire::ResponseChunk {
            session: 0,
            request: 0,
            samples: vec![],
        })
        .encode();
        assert!(matches!(
            Scheduler::restore(&wrong, sched.registry()),
            Err(ServeError::SnapshotInvalid { .. })
        ));
        // A registry with extra models appended past the snapshot's is
        // accepted — the snapshot's prefix is what must match.
        let superset = ModelRegistry::build([
            ("m".to_string(), tiny_model(-1.0e9)),
            ("extra".to_string(), tiny_model(-2.0e9)),
        ]);
        assert!(Scheduler::restore(&bytes, &superset).is_ok());
    }

    #[test]
    fn mixed_dt_sessions_of_one_model_batch_separately_and_correctly() {
        let (mut sched, model) = one_model_scheduler(ServeConfig::default());
        let sim = Arc::clone(sched.registry().get(model).unwrap());
        let fast = sched.open_session(model, 1e-10, 0).unwrap();
        let slow = sched.open_session(model, 2e-10, 0).unwrap();
        let u = [0.3, 0.7, 0.4];
        sched.submit(fast, &u, 0, 10).unwrap();
        sched.submit(slow, &u, 0, 10).unwrap();
        let events = sched.tick(1);
        assert_eq!(events.len(), 2);
        for event in events {
            let Event::Completed { session, output, .. } = event else {
                panic!("unexpected {event:?}");
            };
            let dt = if session == fast { 1e-10 } else { 2e-10 };
            let want = sim.simulate(dt, &u);
            for (g, w) in output.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits());
            }
        }
    }
}
