//! The vector fitting driver.
//!
//! Implements relaxed vector fitting (Gustavsen 2006) with the fast
//! per-response QR compression of Deschrijver, Mrozowski, Dhaene &
//! De Zutter (2008) — the paper's reference \[9\] — generalized over the
//! sample axis so the same engine fits frequency responses (`s = jω`)
//! and residue trajectories over the real state variable.
//!
//! One relocation round:
//!
//! 1. For every response `k`, assemble the block
//!    `[ W_k·Φ_loc  |  −W_k·H_k·Φ_σ ]` (plus RHS for classic VF), where
//!    `Φ_loc` carries the per-response unknowns (residues, optional `d`,
//!    `e`) and `Φ_σ` the shared sigma unknowns.
//! 2. QR-factor each block and keep only the `R₂₂` rows — the influence
//!    of response `k` on the shared unknowns after eliminating its local
//!    ones.
//! 3. Stack all `R₂₂` blocks (plus the relaxation row), solve a small
//!    least-squares system for the sigma coefficients.
//! 4. New poles are the zeros of `σ`: eigenvalues of `A − b·c̃ᵀ/d̃` in
//!    real block form, post-processed per axis (stability flipping on the
//!    frequency axis, conjugate-pair enforcement on the state axis).

use rvf_numerics::{eigenvalues, lstsq_ridge, Complex, Mat, NumericsError, Qr};

use crate::basis::{basis_matrix, Residues};
use crate::error::VecfitError;
use crate::model::{RationalModel, ResponseTerms};
use crate::options::{Axis, VfOptions, Weighting};
use crate::poles::{PoleEntry, PoleSet};

/// Result of a vector fitting run.
#[derive(Debug, Clone)]
pub struct VfFit {
    /// The fitted common-pole rational model.
    pub model: RationalModel,
    /// Absolute RMS error over all responses and samples.
    pub rms_error: f64,
    /// Pole-relocation rounds actually performed.
    pub iterations_run: usize,
    /// Relative pole displacement in the final round (convergence
    /// indicator; small values mean the poles have settled).
    pub final_displacement: f64,
}

/// Fits `K` responses sampled on a common grid with common poles.
///
/// `samples` are the `L` sample points (on `jω` for
/// [`Axis::Imaginary`], real values for [`Axis::Real`]); `data[k]` is the
/// `k`-th response evaluated on that grid.
///
/// # Errors
///
/// Returns a [`VecfitError`] for empty/mismatched/non-finite data, a
/// degenerate grid, too few samples for the requested pole count, or a
/// numerical kernel failure.
///
/// # Examples
///
/// ```
/// use rvf_numerics::{c, Complex};
/// use rvf_vecfit::{fit_single, VfOptions};
///
/// # fn main() -> Result<(), rvf_vecfit::VecfitError> {
/// // Synthesize H(s) = 3/(s+2) on the jω axis and recover it.
/// let samples: Vec<Complex> = (1..=60)
///     .map(|i| c(0.0, 0.2 * i as f64))
///     .collect();
/// let data: Vec<Complex> = samples
///     .iter()
///     .map(|&s| (s + 2.0).inv() * 3.0)
///     .collect();
/// let fit = fit_single(&samples, &data, &VfOptions::frequency(2))?;
/// assert!(fit.rms_error < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn fit(
    samples: &[Complex],
    data: &[Vec<Complex>],
    opts: &VfOptions,
) -> Result<VfFit, VecfitError> {
    validate(samples, data, opts)?;
    let weights = compute_weights(data, opts);
    let (lo, hi) = sample_range(samples, opts.axis)?;
    let min_imag_abs = match opts.axis {
        Axis::Real => (opts.real_axis_min_imag * (hi - lo)).max(1e-12),
        Axis::Imaginary => 0.0,
    };
    let clamp = match opts.axis {
        Axis::Real => Some((lo, hi)),
        Axis::Imaginary => None,
    };
    let mut poles = PoleSet::initial_for(opts, lo, hi);
    let mut displacement = f64::INFINITY;
    let mut iterations_run = 0;
    for _ in 0..opts.iterations {
        let new_poles = relocate_once(samples, data, &weights, &poles, opts, min_imag_abs, clamp)?;
        displacement = new_poles.displacement(&poles);
        poles = new_poles;
        iterations_run += 1;
        if displacement < 1e-10 {
            break;
        }
    }
    let model = identify_residues(samples, data, &weights, poles, opts)?;
    let rms_error = model_rms(&model, samples, data);
    Ok(VfFit { model, rms_error, iterations_run, final_displacement: displacement })
}

/// Convenience wrapper for a single response.
///
/// # Errors
///
/// See [`fit`].
pub fn fit_single(
    samples: &[Complex],
    data: &[Complex],
    opts: &VfOptions,
) -> Result<VfFit, VecfitError> {
    fit(samples, &[data.to_vec()], opts)
}

fn validate(
    samples: &[Complex],
    data: &[Vec<Complex>],
    opts: &VfOptions,
) -> Result<(), VecfitError> {
    if samples.is_empty() || data.is_empty() {
        return Err(VecfitError::EmptyData);
    }
    let l = samples.len();
    for (k, row) in data.iter().enumerate() {
        if row.len() != l {
            return Err(VecfitError::LengthMismatch { response: k, expected: l, got: row.len() });
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(VecfitError::NonFinite);
        }
    }
    if samples.iter().any(|v| !v.is_finite()) {
        return Err(VecfitError::NonFinite);
    }
    let n_loc = opts.n_poles + usize::from(opts.include_const) + usize::from(opts.include_linear);
    let n_sig = opts.n_poles + usize::from(opts.relaxed);
    let rows_per_sample = match opts.axis {
        Axis::Imaginary => 2,
        Axis::Real => 1,
    };
    let needed = (n_loc + n_sig).div_ceil(rows_per_sample);
    if l < needed {
        return Err(VecfitError::TooFewSamples { needed, got: l });
    }
    Ok(())
}

fn compute_weights(data: &[Vec<Complex>], opts: &VfOptions) -> Vec<Vec<f64>> {
    let peak = data.iter().flat_map(|row| row.iter()).fold(0.0_f64, |m, v| m.max(v.abs()));
    let floor = (peak * 1e-12).max(f64::MIN_POSITIVE);
    data.iter()
        .map(|row| {
            row.iter()
                .map(|v| match opts.weighting {
                    Weighting::Uniform => 1.0,
                    Weighting::InverseMagnitude => 1.0 / v.abs().max(floor),
                    Weighting::InverseSqrtMagnitude => 1.0 / v.abs().max(floor).sqrt(),
                })
                .collect()
        })
        .collect()
}

fn sample_range(samples: &[Complex], axis: Axis) -> Result<(f64, f64), VecfitError> {
    match axis {
        Axis::Imaginary => {
            let mut lo = f64::INFINITY;
            let mut hi: f64 = 0.0;
            for s in samples {
                let w = s.im.abs();
                if w > 0.0 {
                    lo = lo.min(w);
                    hi = hi.max(w);
                }
            }
            if hi == 0.0 || !lo.is_finite() {
                return Err(VecfitError::DegenerateGrid);
            }
            if lo == hi {
                // Single frequency: spread the starting poles a decade around it.
                return Ok((hi / 3.0, hi * 3.0));
            }
            Ok((lo, hi))
        }
        Axis::Real => {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for s in samples {
                lo = lo.min(s.re);
                hi = hi.max(s.re);
            }
            if !(hi > lo) {
                return Err(VecfitError::DegenerateGrid);
            }
            Ok((lo, hi))
        }
    }
}

/// Augmented local basis: partial fractions plus optional `1` and `s`
/// columns.
fn local_columns(poles: &PoleSet, samples: &[Complex], opts: &VfOptions) -> Vec<Vec<Complex>> {
    let mut rows = basis_matrix(poles, samples);
    for (row, &s) in rows.iter_mut().zip(samples) {
        if opts.include_const {
            row.push(Complex::ONE);
        }
        if opts.include_linear {
            row.push(s);
        }
    }
    rows
}

/// Sigma basis: partial fractions plus (relaxed) the free constant.
fn sigma_columns(poles: &PoleSet, samples: &[Complex], opts: &VfOptions) -> Vec<Vec<Complex>> {
    let mut rows = basis_matrix(poles, samples);
    if opts.relaxed {
        for row in rows.iter_mut() {
            row.push(Complex::ONE);
        }
    }
    rows
}

/// Converts complex equations into real ones. On the imaginary axis each
/// complex equation yields a (Re, Im) row pair; on the real axis the data
/// and basis are real so only the real part is kept.
fn realify_rows(
    axis: Axis,
    row: &[Complex],
    rhs: Complex,
    out_m: &mut Vec<f64>,
    out_b: &mut Vec<f64>,
) {
    match axis {
        Axis::Imaginary => {
            out_m.extend(row.iter().map(|v| v.re));
            out_b.push(rhs.re);
            out_m.extend(row.iter().map(|v| v.im));
            out_b.push(rhs.im);
        }
        Axis::Real => {
            out_m.extend(row.iter().map(|v| v.re));
            out_b.push(rhs.re);
        }
    }
}

/// Least squares with a ridge fallback: over-parameterized fits (more
/// poles than the data supports) produce nearly dependent basis columns;
/// a tiny ridge picks the minimum-norm-flavoured solution instead of
/// failing, which is the behaviour vector fitting needs when the pole
/// count exceeds the underlying system order.
fn solve_lstsq_robust(m: &Mat, rhs: &[f64]) -> Result<Vec<f64>, NumericsError> {
    match Qr::factor(m).solve_lstsq(rhs) {
        Ok(x) => Ok(x),
        Err(NumericsError::RankDeficient { .. }) => {
            // Floor the ridge absolutely: an all-zero block (e.g. fitting
            // an identically zero trajectory) must still yield the
            // minimum-norm solution 0 instead of a singular system.
            let scale = (1e-10 * m.norm_fro()).max(1e-120);
            lstsq_ridge(m, rhs, scale * scale)
        }
        Err(e) => Err(e),
    }
}

/// Scales each column of `m` to unit 2-norm (skipping zero columns);
/// returns the scale factors applied (divide solutions by them).
fn equilibrate_columns(m: &mut Mat) -> Vec<f64> {
    let (rows, cols) = m.shape();
    let mut norms = vec![0.0_f64; cols];
    for i in 0..rows {
        for (j, nj) in norms.iter_mut().enumerate() {
            let v = m[(i, j)];
            *nj += v * v;
        }
    }
    for n in &mut norms {
        *n = n.sqrt();
        if *n == 0.0 {
            *n = 1.0;
        }
    }
    for i in 0..rows {
        for j in 0..cols {
            m[(i, j)] /= norms[j];
        }
    }
    norms
}

/// One sigma-identification + pole-relocation round.
fn relocate_once(
    samples: &[Complex],
    data: &[Vec<Complex>],
    weights: &[Vec<f64>],
    poles: &PoleSet,
    opts: &VfOptions,
    min_imag_abs: f64,
    clamp: Option<(f64, f64)>,
) -> Result<PoleSet, VecfitError> {
    let l = samples.len();
    let k_count = data.len();
    let n_basis = poles.n_basis();
    let n_loc = n_basis + usize::from(opts.include_const) + usize::from(opts.include_linear);
    let n_sig = n_basis + usize::from(opts.relaxed);
    let n_cols = n_loc + n_sig;

    let loc = local_columns(poles, samples, opts);
    let sig = sigma_columns(poles, samples, opts);

    // Global scaling of the sigma columns must be shared across k blocks;
    // accumulate their norms first.
    let mut sig_norms = vec![0.0_f64; n_sig];
    for k in 0..k_count {
        for li in 0..l {
            let w = weights[k][li];
            let h = data[k][li];
            for (j, nj) in sig_norms.iter_mut().enumerate() {
                let v = sig[li][j] * h * w;
                *nj += v.norm_sqr();
            }
        }
    }
    for n in &mut sig_norms {
        *n = n.sqrt();
        if *n == 0.0 {
            *n = 1.0;
        }
    }

    // Per-response QR compression.
    let rows_per_sample = match opts.axis {
        Axis::Imaginary => 2,
        Axis::Real => 1,
    };
    let block_rows = rows_per_sample * l;
    let kept = block_rows.min(n_cols).saturating_sub(n_loc);
    let mut stacked = Mat::zeros(k_count * kept + usize::from(opts.relaxed), n_sig);
    let mut stacked_rhs = vec![0.0; k_count * kept + usize::from(opts.relaxed)];

    let mut mdata: Vec<f64> = Vec::with_capacity(block_rows * n_cols);
    let mut bdata: Vec<f64> = Vec::with_capacity(block_rows);
    let mut crow: Vec<Complex> = Vec::with_capacity(n_cols);
    for k in 0..k_count {
        mdata.clear();
        bdata.clear();
        for li in 0..l {
            let w = weights[k][li];
            let h = data[k][li];
            crow.clear();
            for v in &loc[li] {
                crow.push(v.scale(w));
            }
            for (j, v) in sig[li].iter().enumerate() {
                crow.push(*v * h * (-w / sig_norms[j]));
            }
            let rhs = if opts.relaxed {
                Complex::ZERO
            } else {
                // Classic VF: σ = 1 + Σ c̃φ moves H·1 to the RHS.
                h.scale(w)
            };
            realify_rows(opts.axis, &crow, rhs, &mut mdata, &mut bdata);
        }
        let mut block = Mat::from_vec(block_rows, n_cols, mdata.clone());
        // Equilibrate the local columns only (sigma columns already share
        // the global scaling; rescaling them per-block would break the
        // stacking).
        let mut loc_norms = vec![0.0_f64; n_loc];
        for i in 0..block_rows {
            for (j, nj) in loc_norms.iter_mut().enumerate() {
                let v = block[(i, j)];
                *nj += v * v;
            }
        }
        for n in &mut loc_norms {
            *n = n.sqrt().max(f64::MIN_POSITIVE);
        }
        for i in 0..block_rows {
            for j in 0..n_loc {
                block[(i, j)] /= loc_norms[j];
            }
        }
        let f = Qr::factor(&block);
        let r = f.r();
        let y = f.qt_mul(&bdata);
        for (ri, row_out) in (n_loc..n_loc + kept).enumerate() {
            for j in 0..n_sig {
                stacked[(k * kept + ri, j)] = r[(row_out, n_loc + j)];
            }
            stacked_rhs[k * kept + ri] = y[row_out];
        }
    }

    // Relaxation constraint: Σ_l Re{σ(s_l)} = L, scaled to the data norm.
    if opts.relaxed {
        let mut scale = 0.0;
        for k in 0..k_count {
            for li in 0..l {
                scale += (data[k][li] * weights[k][li]).norm_sqr();
            }
        }
        let scale = scale.sqrt() / (k_count as f64 * l as f64);
        let row = k_count * kept;
        for j in 0..n_sig {
            let mut acc = 0.0;
            for si in sig.iter() {
                acc += si[j].re;
            }
            stacked[(row, j)] = scale * acc / sig_norms[j];
        }
        stacked_rhs[row] = scale * l as f64;
    }

    let sol = solve_lstsq_robust(&stacked, &stacked_rhs)?;
    // Undo the global sigma scaling.
    let mut c_sigma: Vec<f64> = sol.iter().zip(&sig_norms).map(|(v, n)| v / n).collect();
    let d_sigma = if opts.relaxed {
        let d = c_sigma.pop().expect("relaxed sigma has a constant column");
        // Guard against a vanishing sigma constant (Gustavsen's TOLlow).
        if d.abs() < 1e-8 {
            if d < 0.0 {
                -1e-8
            } else {
                1e-8
            }
        } else {
            d
        }
    } else {
        1.0
    };

    // Zeros of sigma: eigenvalues of A − b·c̃ᵀ/d̃ in real block form.
    let mut a = Mat::zeros(n_basis, n_basis);
    let mut i = 0;
    for e in poles.entries() {
        match e {
            PoleEntry::Real(p) => {
                a[(i, i)] = *p;
                for j in 0..n_basis {
                    a[(i, j)] -= c_sigma[j] / d_sigma;
                }
                i += 1;
            }
            PoleEntry::Pair(p) => {
                a[(i, i)] = p.re;
                a[(i, i + 1)] = p.im;
                a[(i + 1, i)] = -p.im;
                a[(i + 1, i + 1)] = p.re;
                for j in 0..n_basis {
                    // b = [2, 0]ᵀ for the pair block.
                    a[(i, j)] -= 2.0 * c_sigma[j] / d_sigma;
                }
                i += 2;
            }
        }
    }
    let eigs = eigenvalues(&a)?;
    Ok(PoleSet::from_eigenvalues(&eigs, opts.axis, opts.enforce_stability, min_imag_abs, clamp))
}

/// Final residue identification with the poles fixed.
fn identify_residues(
    samples: &[Complex],
    data: &[Vec<Complex>],
    weights: &[Vec<f64>],
    poles: PoleSet,
    opts: &VfOptions,
) -> Result<RationalModel, VecfitError> {
    let l = samples.len();
    let n_basis = poles.n_basis();
    let n_loc = n_basis + usize::from(opts.include_const) + usize::from(opts.include_linear);
    let loc = local_columns(&poles, samples, opts);
    let rows_per_sample = match opts.axis {
        Axis::Imaginary => 2,
        Axis::Real => 1,
    };
    let block_rows = rows_per_sample * l;

    let mut terms = Vec::with_capacity(data.len());
    let mut mdata: Vec<f64> = Vec::with_capacity(block_rows * n_loc);
    let mut bdata: Vec<f64> = Vec::with_capacity(block_rows);
    let mut crow: Vec<Complex> = Vec::with_capacity(n_loc);
    for (k, row_k) in data.iter().enumerate() {
        mdata.clear();
        bdata.clear();
        for li in 0..l {
            let w = weights[k][li];
            crow.clear();
            for v in &loc[li] {
                crow.push(v.scale(w));
            }
            realify_rows(opts.axis, &crow, row_k[li].scale(w), &mut mdata, &mut bdata);
        }
        let mut m = Mat::from_vec(block_rows, n_loc, mdata.clone());
        let norms = equilibrate_columns(&mut m);
        let sol = solve_lstsq_robust(&m, &bdata)?;
        let flat: Vec<f64> = sol.iter().zip(&norms).map(|(v, n)| v / n).collect();
        let residues = Residues::from_flat(&poles, &flat[..n_basis]);
        let mut idx = n_basis;
        let d = if opts.include_const {
            let v = flat[idx];
            idx += 1;
            v
        } else {
            0.0
        };
        let e = if opts.include_linear { flat[idx] } else { 0.0 };
        terms.push(ResponseTerms { residues, d, e });
    }
    Ok(RationalModel::new(poles, terms))
}

/// Absolute RMS error of a model against the training data.
pub fn model_rms(model: &RationalModel, samples: &[Complex], data: &[Vec<Complex>]) -> f64 {
    let mut acc = 0.0;
    let mut n = 0usize;
    for (k, row) in data.iter().enumerate() {
        for (s, h) in samples.iter().zip(row) {
            acc += (model.eval(k, *s) - *h).norm_sqr();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (acc / n as f64).sqrt()
    }
}
