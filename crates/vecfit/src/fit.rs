//! The vector fitting driver.
//!
//! Implements relaxed vector fitting (Gustavsen 2006) with the fast
//! per-response QR compression of Deschrijver, Mrozowski, Dhaene &
//! De Zutter (2008) — the paper's reference \[9\] — generalized over the
//! sample axis so the same engine fits frequency responses (`s = jω`)
//! and residue trajectories over the real state variable.
//!
//! One relocation round:
//!
//! 1. For every response `k`, assemble the block
//!    `[ W_k·Φ_loc  |  −W_k·H_k·Φ_σ ]` (plus RHS for classic VF), where
//!    `Φ_loc` carries the per-response unknowns (residues, optional `d`,
//!    `e`) and `Φ_σ` the shared sigma unknowns.
//! 2. QR-factor each block and keep only the `R₂₂` rows — the influence
//!    of response `k` on the shared unknowns after eliminating its local
//!    ones.
//! 3. Stack all `R₂₂` blocks (plus the relaxation row), solve a small
//!    least-squares system for the sigma coefficients.
//! 4. New poles are the zeros of `σ`: eigenvalues of `A − b·c̃ᵀ/d̃` in
//!    real block form, post-processed per axis (stability flipping on the
//!    frequency axis, conjugate-pair enforcement on the state axis).
//!
//! Steps 1–2 are independent per response, so they fan out over the
//! work-stealing sweep runtime of `rvf-numerics` when
//! [`VfOptions::threads`] asks for workers: every parallel region of a
//! fit — each relocation round and the final residue identification —
//! is one [`SweepPool::run_with`] *round* on a single persistent pool
//! that lives for the whole fit (or is borrowed from the caller via
//! [`fit_in`] / [`fit_with_initial_in`], so a pole-growth loop pays one
//! pool for its entire sequence of fits). Each worker owns a
//! `BlockScratch` of reusable buffers (block, RHS, complex row, QR
//! scalars) held in a `FitScratch` that lives for the whole fit, so
//! the steady-state relocation round performs no per-response heap
//! allocation — and, with the pool, no thread spawn either. Every
//! response writes its `R₂₂` rows to a fixed row range of the stacked
//! system (`k·kept .. (k+1)·kept`), which makes the parallel result
//! **bit-identical** to the serial one regardless of worker count or
//! claim order.

use rvf_numerics::{
    eigenvalues, factor_with_rhs_in_place, lstsq_ridge, resolve_threads, Complex, Mat,
    NumericsError, SweepConfig, SweepError, SweepPool, AUTO_PARALLEL_CROSSOVER,
};

use crate::basis::{basis_row, Residues};
use crate::error::VecfitError;
use crate::model::{RationalModel, ResponseTerms};
use crate::options::{Axis, VfOptions, Weighting};
use crate::poles::{PoleEntry, PoleSet};

/// Result of a vector fitting run.
#[derive(Debug, Clone)]
pub struct VfFit {
    /// The fitted common-pole rational model.
    pub model: RationalModel,
    /// Absolute RMS error over all responses and samples.
    pub rms_error: f64,
    /// Pole-relocation rounds actually performed.
    pub iterations_run: usize,
    /// Relative pole displacement in the final round (convergence
    /// indicator; small values mean the poles have settled).
    pub final_displacement: f64,
}

/// Fits `K` responses sampled on a common grid with common poles.
///
/// `samples` are the `L` sample points (on `jω` for
/// [`Axis::Imaginary`], real values for [`Axis::Real`]); `data[k]` is the
/// `k`-th response evaluated on that grid.
///
/// # Errors
///
/// Returns a [`VecfitError`] for empty/mismatched/non-finite data, a
/// degenerate grid, too few samples for the requested pole count, or a
/// numerical kernel failure.
///
/// # Examples
///
/// ```
/// use rvf_numerics::{c, Complex};
/// use rvf_vecfit::{fit_single, VfOptions};
///
/// # fn main() -> Result<(), rvf_vecfit::VecfitError> {
/// // Synthesize H(s) = 3/(s+2) on the jω axis and recover it.
/// let samples: Vec<Complex> = (1..=60)
///     .map(|i| c(0.0, 0.2 * i as f64))
///     .collect();
/// let data: Vec<Complex> = samples
///     .iter()
///     .map(|&s| (s + 2.0).inv() * 3.0)
///     .collect();
/// let fit = fit_single(&samples, &data, &VfOptions::frequency(2))?;
/// assert!(fit.rms_error < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn fit(
    samples: &[Complex],
    data: &[Vec<Complex>],
    opts: &VfOptions,
) -> Result<VfFit, VecfitError> {
    fit_with_initial(samples, data, opts, None)
}

/// [`fit`] warm-started from an explicit initial pole set.
///
/// This is the primitive behind the RVF pole-growth loop (paper
/// Algorithm 1): instead of re-seeding the relocation from the generic
/// spread at every pole count, the caller passes the *relocated* poles
/// of the previous (smaller) fit and the engine augments them to
/// [`VfOptions::n_poles`] via [`PoleSet::grown_to`] — already-settled
/// poles then need few (often zero) further relocation rounds. An
/// initial set with *more* than `opts.n_poles` poles is used as-is.
///
/// `fit_with_initial(samples, data, opts, None)` is exactly [`fit`].
///
/// Warm starting is an optimization, not a semantic change: if a
/// warm-started run trips a numerical kernel failure (a warm pole set
/// can seed a relocation eigenproblem the solver refuses), the fit
/// transparently restarts from the cold initial spread — i.e. it
/// degrades to [`fit`] instead of failing.
///
/// # Errors
///
/// See [`fit`].
pub fn fit_with_initial(
    samples: &[Complex],
    data: &[Vec<Complex>],
    opts: &VfOptions,
    initial: Option<&PoleSet>,
) -> Result<VfFit, VecfitError> {
    let pool = SweepPool::new(auto_workers(opts.threads, data.len()));
    fit_with_initial_in(&pool, samples, data, opts, initial)
}

/// [`fit`] running its parallel regions on a caller-owned [`SweepPool`].
///
/// The pool is borrowed, not consumed: callers that fit repeatedly —
/// the RVF pole-growth loops fit once per pole count, each fit running
/// one sweep round per relocation iteration — construct one pool and
/// thread it through every fit, collapsing the per-fit spawn/join cost
/// to a single pool construction for the whole sequence. The effective
/// worker count of each round is still governed by
/// [`VfOptions::threads`] (clamped to the pool capacity and the
/// response count), and the result is bit-identical to [`fit`] for
/// every pool size.
///
/// # Errors
///
/// See [`fit`].
pub fn fit_in(
    pool: &SweepPool,
    samples: &[Complex],
    data: &[Vec<Complex>],
    opts: &VfOptions,
) -> Result<VfFit, VecfitError> {
    fit_with_initial_in(pool, samples, data, opts, None)
}

/// [`fit_with_initial`] running on a caller-owned [`SweepPool`]
/// (see [`fit_in`]).
///
/// # Errors
///
/// See [`fit`].
pub fn fit_with_initial_in(
    pool: &SweepPool,
    samples: &[Complex],
    data: &[Vec<Complex>],
    opts: &VfOptions,
    initial: Option<&PoleSet>,
) -> Result<VfFit, VecfitError> {
    match fit_inner(pool, samples, data, opts, initial) {
        Err(VecfitError::Numerics(_)) if initial.is_some() => {
            fit_inner(pool, samples, data, opts, None)
        }
        other => other,
    }
}

fn fit_inner(
    pool: &SweepPool,
    samples: &[Complex],
    data: &[Vec<Complex>],
    opts: &VfOptions,
    initial: Option<&PoleSet>,
) -> Result<VfFit, VecfitError> {
    validate(samples, data, opts, opts.n_poles)?;
    let weights = compute_weights(data, opts);
    let (lo, hi) = sample_range(samples, opts.axis)?;
    let min_imag_abs = match opts.axis {
        Axis::Real => (opts.real_axis_min_imag * (hi - lo)).max(1e-12),
        Axis::Imaginary => 0.0,
    };
    let clamp = match opts.axis {
        Axis::Real => Some((lo, hi)),
        Axis::Imaginary => None,
    };
    let mut poles = match initial {
        Some(p) => p.grown_to(opts.n_poles, opts, lo, hi),
        None => PoleSet::initial_for(opts, lo, hi),
    };
    // The grown set can exceed the requested count (odd growth rounds up
    // to a pair on the real axis; an oversized initial set is kept
    // as-is), so the sample budget must be re-checked against the basis
    // size the fit will actually use.
    if poles.n_poles() > opts.n_poles {
        validate(samples, data, opts, poles.n_poles())?;
    }
    let mut scratch = FitScratch::new(auto_workers(opts.threads, data.len()).min(pool.workers()));
    let mut displacement = f64::INFINITY;
    let mut iterations_run = 0;
    for _ in 0..opts.iterations {
        let new_poles = relocate_once(
            pool,
            samples,
            data,
            &weights,
            &poles,
            opts,
            min_imag_abs,
            clamp,
            &mut scratch,
        )?;
        displacement = new_poles.displacement(&poles);
        poles = new_poles;
        iterations_run += 1;
        if displacement < opts.stop_displacement {
            break;
        }
    }
    let model = identify_residues(pool, samples, data, &weights, poles, opts, &mut scratch)?;
    let rms_error = model_rms(&model, samples, data);
    Ok(VfFit { model, rms_error, iterations_run, final_displacement: displacement })
}

/// Convenience wrapper for a single response.
///
/// # Errors
///
/// See [`fit`].
pub fn fit_single(
    samples: &[Complex],
    data: &[Complex],
    opts: &VfOptions,
) -> Result<VfFit, VecfitError> {
    fit(samples, &[data.to_vec()], opts)
}

/// Resolves the per-response worker count for `threads` over `k_count`
/// responses (see [`VfOptions::threads`]): an auto request (`0`) stays
/// serial below [`AUTO_PARALLEL_CROSSOVER`] responses — the measured
/// break-even of the per-response block stages (`vf_k_scaling` benches)
/// — and resolves to one worker per core above it; explicit counts are
/// clamped to the response count.
///
/// Public so stage drivers (the RVF pole-growth loops) can size a
/// [`SweepPool`] once for a whole sequence of fits over the same data.
pub fn auto_workers(threads: usize, k_count: usize) -> usize {
    let resolved = match threads {
        0 if k_count < AUTO_PARALLEL_CROSSOVER => 1,
        t => resolve_threads(t),
    };
    resolved.clamp(1, k_count.max(1))
}

/// Per-worker scratch for the per-response block stages. All buffers
/// retain their capacity across responses and relocation rounds.
#[derive(Default)]
struct BlockScratch {
    /// Realified block entries (row-major). Donated to a [`Mat`] for the
    /// in-place factorization and reclaimed afterwards — zero-copy in
    /// both directions.
    mdata: Vec<f64>,
    /// Realified right-hand side; overwritten with `Qᵀ·b` by the fused
    /// factorization.
    bdata: Vec<f64>,
    /// Complex row staging buffer.
    crow: Vec<Complex>,
    /// Householder scalars of the block factorization.
    tau: Vec<f64>,
    /// Column norms for the local-column equilibration.
    loc_norms: Vec<f64>,
}

/// Buffers shared by all rounds of one fit: basis tables, the stacked
/// sigma system, and the per-worker block scratch pool. Allocated once
/// per [`fit`] call; the relocation loop reuses everything.
struct FitScratch {
    loc: Vec<Vec<Complex>>,
    sig: Vec<Vec<Complex>>,
    sig_norms: Vec<f64>,
    stacked: Mat,
    stacked_rhs: Vec<f64>,
    /// Per-worker block scratch; its length is the fit's effective
    /// worker count (threads resolved against the response count and
    /// the sweep pool's capacity).
    block_pool: Vec<BlockScratch>,
}

impl FitScratch {
    fn new(workers: usize) -> Self {
        let mut block_pool = Vec::with_capacity(workers);
        block_pool.resize_with(workers, BlockScratch::default);
        Self {
            loc: Vec::new(),
            sig: Vec::new(),
            sig_norms: Vec::new(),
            stacked: Mat::default(),
            stacked_rhs: Vec::new(),
            block_pool,
        }
    }
}

/// Raw view of the stacked system for the compression workers.
///
/// SAFETY invariant: task `k` writes only rows `k·kept ..(k+1)·kept`
/// (disjoint across tasks, each claimed exactly once by the executor),
/// and the executor joins every worker before the buffers are read
/// again — so no two threads ever touch the same element and no read
/// races a write.
struct StackedWriter {
    mat: *mut f64,
    rhs: *mut f64,
    n_sig: usize,
}

// SAFETY: see the type-level invariant above.
unsafe impl Sync for StackedWriter {}

impl StackedWriter {
    /// Writes `stacked[(row, j)] = v`.
    ///
    /// # Safety
    ///
    /// `row` must lie in the calling task's exclusive row range.
    unsafe fn write(&self, row: usize, j: usize, v: f64) {
        *self.mat.add(row * self.n_sig + j) = v;
    }

    /// Writes `stacked_rhs[row] = v` under the same contract as
    /// [`StackedWriter::write`].
    unsafe fn write_rhs(&self, row: usize, v: f64) {
        *self.rhs.add(row) = v;
    }
}

/// Flattens a sweep failure: task errors carry their [`VecfitError`]
/// through; a contained worker panic is a programmer error and is
/// re-raised as a panic, keeping the crate's panic discipline identical
/// to the serial path.
fn unwrap_sweep(e: SweepError<VecfitError>) -> VecfitError {
    match e {
        SweepError::Task { error, .. } => error,
        SweepError::WorkerPanicked { worker } => panic!("vector-fit worker {worker} panicked"),
    }
}

/// Claim batch for `k_count` small uniform per-response tasks: aim for
/// a few batches per worker so queue traffic shrinks without starving
/// the stealing.
fn response_batch(k_count: usize, workers: usize) -> usize {
    (k_count / (workers.max(1) * 4)).max(1)
}

fn validate(
    samples: &[Complex],
    data: &[Vec<Complex>],
    opts: &VfOptions,
    n_poles: usize,
) -> Result<(), VecfitError> {
    if samples.is_empty() || data.is_empty() {
        return Err(VecfitError::EmptyData);
    }
    let l = samples.len();
    for (k, row) in data.iter().enumerate() {
        if row.len() != l {
            return Err(VecfitError::LengthMismatch { response: k, expected: l, got: row.len() });
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(VecfitError::NonFinite);
        }
    }
    if samples.iter().any(|v| !v.is_finite()) {
        return Err(VecfitError::NonFinite);
    }
    let n_loc = n_poles + usize::from(opts.include_const) + usize::from(opts.include_linear);
    let n_sig = n_poles + usize::from(opts.relaxed);
    let rows_per_sample = match opts.axis {
        Axis::Imaginary => 2,
        Axis::Real => 1,
    };
    let needed = (n_loc + n_sig).div_ceil(rows_per_sample);
    if l < needed {
        return Err(VecfitError::TooFewSamples { needed, got: l });
    }
    Ok(())
}

fn compute_weights(data: &[Vec<Complex>], opts: &VfOptions) -> Vec<Vec<f64>> {
    let peak = data.iter().flat_map(|row| row.iter()).fold(0.0_f64, |m, v| m.max(v.abs()));
    let floor = (peak * 1e-12).max(f64::MIN_POSITIVE);
    data.iter()
        .map(|row| {
            row.iter()
                .map(|v| match opts.weighting {
                    Weighting::Uniform => 1.0,
                    Weighting::InverseMagnitude => 1.0 / v.abs().max(floor),
                    Weighting::InverseSqrtMagnitude => 1.0 / v.abs().max(floor).sqrt(),
                })
                .collect()
        })
        .collect()
}

fn sample_range(samples: &[Complex], axis: Axis) -> Result<(f64, f64), VecfitError> {
    match axis {
        Axis::Imaginary => {
            let mut lo = f64::INFINITY;
            let mut hi: f64 = 0.0;
            for s in samples {
                let w = s.im.abs();
                if w > 0.0 {
                    lo = lo.min(w);
                    hi = hi.max(w);
                }
            }
            if hi == 0.0 || !lo.is_finite() {
                return Err(VecfitError::DegenerateGrid);
            }
            if lo == hi {
                // Single frequency: spread the starting poles a decade around it.
                return Ok((hi / 3.0, hi * 3.0));
            }
            Ok((lo, hi))
        }
        Axis::Real => {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for s in samples {
                lo = lo.min(s.re);
                hi = hi.max(s.re);
            }
            if !(hi > lo) {
                return Err(VecfitError::DegenerateGrid);
            }
            Ok((lo, hi))
        }
    }
}

/// Refills `out` with the augmented local basis: partial fractions plus
/// optional `1` and `s` columns. Row vectors are reused across rounds.
fn fill_local_columns(
    poles: &PoleSet,
    samples: &[Complex],
    opts: &VfOptions,
    out: &mut Vec<Vec<Complex>>,
) {
    out.resize_with(samples.len(), Vec::new);
    for (row, &s) in out.iter_mut().zip(samples) {
        basis_row(poles, s, row);
        if opts.include_const {
            row.push(Complex::ONE);
        }
        if opts.include_linear {
            row.push(s);
        }
    }
}

/// Refills `out` with the sigma basis: partial fractions plus (relaxed)
/// the free constant.
fn fill_sigma_columns(
    poles: &PoleSet,
    samples: &[Complex],
    opts: &VfOptions,
    out: &mut Vec<Vec<Complex>>,
) {
    out.resize_with(samples.len(), Vec::new);
    for (row, &s) in out.iter_mut().zip(samples) {
        basis_row(poles, s, row);
        if opts.relaxed {
            row.push(Complex::ONE);
        }
    }
}

/// Converts complex equations into real ones. On the imaginary axis each
/// complex equation yields a (Re, Im) row pair; on the real axis the data
/// and basis are real so only the real part is kept.
fn realify_rows(
    axis: Axis,
    row: &[Complex],
    rhs: Complex,
    out_m: &mut Vec<f64>,
    out_b: &mut Vec<f64>,
) {
    match axis {
        Axis::Imaginary => {
            out_m.extend(row.iter().map(|v| v.re));
            out_b.push(rhs.re);
            out_m.extend(row.iter().map(|v| v.im));
            out_b.push(rhs.im);
        }
        Axis::Real => {
            out_m.extend(row.iter().map(|v| v.re));
            out_b.push(rhs.re);
        }
    }
}

/// Least squares with a ridge fallback: over-parameterized fits (more
/// poles than the data supports) produce nearly dependent basis columns;
/// a tiny ridge picks the minimum-norm-flavoured solution instead of
/// failing, which is the behaviour vector fitting needs when the pole
/// count exceeds the underlying system order.
fn solve_lstsq_robust(m: &Mat, rhs: &[f64]) -> Result<Vec<f64>, NumericsError> {
    match rvf_numerics::Qr::factor(m).solve_lstsq(rhs) {
        Ok(x) => Ok(x),
        Err(NumericsError::RankDeficient { .. }) => {
            // Floor the ridge absolutely: an all-zero block (e.g. fitting
            // an identically zero trajectory) must still yield the
            // minimum-norm solution 0 instead of a singular system.
            let scale = (1e-10 * m.norm_fro()).max(1e-120);
            lstsq_ridge(m, rhs, scale * scale)
        }
        Err(e) => Err(e),
    }
}

/// Scales each column of `m` to unit 2-norm (skipping zero columns);
/// returns the scale factors applied (divide solutions by them).
fn equilibrate_columns(m: &mut Mat) -> Vec<f64> {
    let (rows, cols) = m.shape();
    let mut norms = vec![0.0_f64; cols];
    for i in 0..rows {
        for (j, nj) in norms.iter_mut().enumerate() {
            let v = m[(i, j)];
            *nj += v * v;
        }
    }
    for n in &mut norms {
        *n = n.sqrt();
        if *n == 0.0 {
            *n = 1.0;
        }
    }
    for i in 0..rows {
        for j in 0..cols {
            m[(i, j)] /= norms[j];
        }
    }
    norms
}

/// One sigma-identification + pole-relocation round: one sweep round on
/// the borrowed pool, no thread spawn.
#[allow(clippy::too_many_arguments)]
fn relocate_once(
    sweep_pool: &SweepPool,
    samples: &[Complex],
    data: &[Vec<Complex>],
    weights: &[Vec<f64>],
    poles: &PoleSet,
    opts: &VfOptions,
    min_imag_abs: f64,
    clamp: Option<(f64, f64)>,
    scratch: &mut FitScratch,
) -> Result<PoleSet, VecfitError> {
    let l = samples.len();
    let k_count = data.len();
    let n_basis = poles.n_basis();
    let n_loc = n_basis + usize::from(opts.include_const) + usize::from(opts.include_linear);
    let n_sig = n_basis + usize::from(opts.relaxed);
    let n_cols = n_loc + n_sig;

    let FitScratch { loc, sig, sig_norms, stacked, stacked_rhs, block_pool } = scratch;
    fill_local_columns(poles, samples, opts, loc);
    fill_sigma_columns(poles, samples, opts, sig);
    let (loc, sig) = (&*loc, &*sig);

    // Global scaling of the sigma columns must be shared across k blocks;
    // accumulate their norms first.
    sig_norms.clear();
    sig_norms.resize(n_sig, 0.0);
    for k in 0..k_count {
        for li in 0..l {
            let w = weights[k][li];
            let h = data[k][li];
            for (j, nj) in sig_norms.iter_mut().enumerate() {
                let v = sig[li][j] * h * w;
                *nj += v.norm_sqr();
            }
        }
    }
    for n in sig_norms.iter_mut() {
        *n = n.sqrt();
        if *n == 0.0 {
            *n = 1.0;
        }
    }
    let sig_norms = &*sig_norms;

    // Per-response QR compression, fanned out over the work-stealing
    // executor. Response k owns rows k·kept..(k+1)·kept of the stacked
    // system, so the stacking order is fixed by k and the result is
    // bit-identical to the serial loop (which is the same closure run
    // on the inline one-worker path).
    let rows_per_sample = match opts.axis {
        Axis::Imaginary => 2,
        Axis::Real => 1,
    };
    let block_rows = rows_per_sample * l;
    let kept = block_rows.min(n_cols).saturating_sub(n_loc);
    let total_rows = k_count * kept + usize::from(opts.relaxed);
    if stacked.shape() != (total_rows, n_sig) {
        *stacked = Mat::zeros(total_rows, n_sig);
    }
    stacked_rhs.clear();
    stacked_rhs.resize(total_rows, 0.0);

    let writer = StackedWriter {
        mat: stacked.as_mut_slice().as_mut_ptr(),
        rhs: stacked_rhs.as_mut_ptr(),
        n_sig,
    };
    let workers = block_pool.len();
    let cfg = SweepConfig::threads(workers).with_batch(response_batch(k_count, workers));
    sweep_pool
        .run_with(k_count, &cfg, &mut block_pool[..], |ws: &mut BlockScratch, k| {
            ws.mdata.clear();
            ws.bdata.clear();
            for li in 0..l {
                let w = weights[k][li];
                let h = data[k][li];
                ws.crow.clear();
                for v in &loc[li] {
                    ws.crow.push(v.scale(w));
                }
                for (j, v) in sig[li].iter().enumerate() {
                    ws.crow.push(*v * h * (-w / sig_norms[j]));
                }
                let rhs = if opts.relaxed {
                    Complex::ZERO
                } else {
                    // Classic VF: σ = 1 + Σ c̃φ moves H·1 to the RHS.
                    h.scale(w)
                };
                realify_rows(opts.axis, &ws.crow, rhs, &mut ws.mdata, &mut ws.bdata);
            }
            // Equilibrate the local columns only (sigma columns already share
            // the global scaling; rescaling them per-block would break the
            // stacking).
            ws.loc_norms.clear();
            ws.loc_norms.resize(n_loc, 0.0);
            for i in 0..block_rows {
                let row = &ws.mdata[i * n_cols..i * n_cols + n_loc];
                for (nj, v) in ws.loc_norms.iter_mut().zip(row) {
                    *nj += v * v;
                }
            }
            for n in &mut ws.loc_norms {
                *n = n.sqrt().max(f64::MIN_POSITIVE);
            }
            for i in 0..block_rows {
                for (j, nj) in ws.loc_norms.iter().enumerate() {
                    ws.mdata[i * n_cols + j] /= nj;
                }
            }
            // Fused in-place QR: reflectors hit the RHS during the
            // factorization (no qt_mul pass), the block buffer is donated to
            // the Mat and reclaimed (no clone), and only the R₂₂ rows are
            // read out (no full R copy).
            let mut block = Mat::from_vec(block_rows, n_cols, core::mem::take(&mut ws.mdata));
            factor_with_rhs_in_place(&mut block, &mut ws.tau, &mut ws.bdata);
            for (ri, row_out) in (n_loc..n_loc + kept).enumerate() {
                let dest = k * kept + ri;
                for j in 0..n_sig {
                    let col = n_loc + j;
                    // R is upper triangular; below-diagonal entries of the
                    // packed factor hold reflectors, not R.
                    let v = if col >= row_out { block[(row_out, col)] } else { 0.0 };
                    // SAFETY: response k owns this row range exclusively.
                    unsafe { writer.write(dest, j, v) };
                }
                // SAFETY: as above.
                unsafe { writer.write_rhs(dest, ws.bdata[row_out]) };
            }
            ws.mdata = block.into_vec();
            Ok::<(), VecfitError>(())
        })
        .map_err(unwrap_sweep)?;

    // Relaxation constraint: Σ_l Re{σ(s_l)} = L, scaled to the data norm.
    if opts.relaxed {
        let mut scale = 0.0;
        for k in 0..k_count {
            for li in 0..l {
                scale += (data[k][li] * weights[k][li]).norm_sqr();
            }
        }
        let scale = scale.sqrt() / (k_count as f64 * l as f64);
        let row = k_count * kept;
        for j in 0..n_sig {
            let mut acc = 0.0;
            for si in sig.iter() {
                acc += si[j].re;
            }
            stacked[(row, j)] = scale * acc / sig_norms[j];
        }
        stacked_rhs[row] = scale * l as f64;
    }

    let sol = solve_lstsq_robust(stacked, stacked_rhs)?;
    // Undo the global sigma scaling.
    let mut c_sigma: Vec<f64> = sol.iter().zip(sig_norms).map(|(v, n)| v / n).collect();
    let d_sigma = if opts.relaxed {
        let d = c_sigma.pop().expect("relaxed sigma has a constant column");
        // Guard against a vanishing sigma constant (Gustavsen's TOLlow).
        if d.abs() < 1e-8 {
            if d < 0.0 {
                -1e-8
            } else {
                1e-8
            }
        } else {
            d
        }
    } else {
        1.0
    };

    // Zeros of sigma: eigenvalues of A − b·c̃ᵀ/d̃ in real block form.
    let mut a = Mat::zeros(n_basis, n_basis);
    let mut i = 0;
    for e in poles.entries() {
        match e {
            PoleEntry::Real(p) => {
                a[(i, i)] = *p;
                for j in 0..n_basis {
                    a[(i, j)] -= c_sigma[j] / d_sigma;
                }
                i += 1;
            }
            PoleEntry::Pair(p) => {
                a[(i, i)] = p.re;
                a[(i, i + 1)] = p.im;
                a[(i + 1, i)] = -p.im;
                a[(i + 1, i + 1)] = p.re;
                for j in 0..n_basis {
                    // b = [2, 0]ᵀ for the pair block.
                    a[(i, j)] -= 2.0 * c_sigma[j] / d_sigma;
                }
                i += 2;
            }
        }
    }
    let eigs = eigenvalues(&a)?;
    Ok(PoleSet::from_eigenvalues(&eigs, opts.axis, opts.enforce_stability, min_imag_abs, clamp))
}

/// Final residue identification with the poles fixed, one independent
/// least-squares solve per response fanned out as one round on the
/// borrowed pool.
fn identify_residues(
    sweep_pool: &SweepPool,
    samples: &[Complex],
    data: &[Vec<Complex>],
    weights: &[Vec<f64>],
    poles: PoleSet,
    opts: &VfOptions,
    scratch: &mut FitScratch,
) -> Result<RationalModel, VecfitError> {
    let l = samples.len();
    let n_basis = poles.n_basis();
    let n_loc = n_basis + usize::from(opts.include_const) + usize::from(opts.include_linear);
    let FitScratch { loc, block_pool, .. } = scratch;
    fill_local_columns(&poles, samples, opts, loc);
    let loc = &*loc;
    let rows_per_sample = match opts.axis {
        Axis::Imaginary => 2,
        Axis::Real => 1,
    };
    let block_rows = rows_per_sample * l;

    let k_count = data.len();
    let workers = block_pool.len();
    let cfg = SweepConfig::threads(workers).with_batch(response_batch(k_count, workers));
    let poles_ref = &poles;
    let terms: Vec<ResponseTerms> = sweep_pool
        .run_with(k_count, &cfg, &mut block_pool[..], |ws: &mut BlockScratch, k| {
            ws.mdata.clear();
            ws.bdata.clear();
            for li in 0..l {
                let w = weights[k][li];
                ws.crow.clear();
                for v in &loc[li] {
                    ws.crow.push(v.scale(w));
                }
                realify_rows(
                    opts.axis,
                    &ws.crow,
                    data[k][li].scale(w),
                    &mut ws.mdata,
                    &mut ws.bdata,
                );
            }
            // Build the Mat in place from the scratch buffer (zero-copy
            // donate/reclaim) — no per-response clone, serial or not.
            let mut m = Mat::from_vec(block_rows, n_loc, core::mem::take(&mut ws.mdata));
            let norms = equilibrate_columns(&mut m);
            let sol = solve_lstsq_robust(&m, &ws.bdata);
            ws.mdata = m.into_vec();
            let sol = sol?;
            let flat: Vec<f64> = sol.iter().zip(&norms).map(|(v, n)| v / n).collect();
            let residues = Residues::from_flat(poles_ref, &flat[..n_basis]);
            let mut idx = n_basis;
            let d = if opts.include_const {
                let v = flat[idx];
                idx += 1;
                v
            } else {
                0.0
            };
            let e = if opts.include_linear { flat[idx] } else { 0.0 };
            Ok::<ResponseTerms, VecfitError>(ResponseTerms { residues, d, e })
        })
        .map_err(unwrap_sweep)?;
    Ok(RationalModel::new(poles, terms))
}

/// Absolute RMS error of a model against the training data.
pub fn model_rms(model: &RationalModel, samples: &[Complex], data: &[Vec<Complex>]) -> f64 {
    let mut acc = 0.0;
    let mut n = 0usize;
    for (k, row) in data.iter().enumerate() {
        for (s, h) in samples.iter().zip(row) {
            acc += (model.eval(k, *s) - *h).norm_sqr();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (acc / n as f64).sqrt()
    }
}
