//! # rvf-vecfit
//!
//! Vector fitting for the TFT-RVF reproduction: rational approximation of
//! many responses with *common poles* and response-dependent residues.
//!
//! The engine implements:
//!
//! * relaxed vector fitting (Gustavsen 2006) with the fast per-response
//!   QR compression of Deschrijver et al. 2008 (the paper's ref. \[9\]);
//! * pole relocation by the zeros-of-sigma eigenproblem with stability
//!   flipping on the frequency axis ("stable by construction");
//! * the same machinery on the *real axis* for the recursive
//!   state-dimension fits of the RVF algorithm, where poles are kept in
//!   complex conjugate pairs off the axis (the paper's zero-phase base
//!   functions);
//! * block-diagonal state-space realizations, including the
//!   *input-shifted* Hammerstein-compatible form of paper eqs. (12)–(14).
//!
//! # Threading
//!
//! The per-response stages of a fit — block assembly + QR compression in
//! every relocation round, and the final residue identification — are
//! independent across responses and fan out over the work-stealing
//! sweep runtime of `rvf-numerics` when [`VfOptions::threads`] asks for
//! workers (`0` = one per core, `1` = serial, the default). Every
//! parallel region of a fit is a *round* on one persistent
//! [`rvf_numerics::SweepPool`] — constructed once per [`fit()`] call, or
//! borrowed from the caller via [`fit_in`] / [`fit_with_initial_in`] so
//! a pole-growth loop shares a single pool across all of its fits and
//! never pays a per-round (or even per-fit) thread spawn. The result is
//! **bit-identical** for every thread count and pool size: each
//! response's compressed `R₂₂` block lands in a fixed row range of the
//! stacked sigma system, so neither the worker count nor the claim
//! order can reach the arithmetic. Warm starts across pole counts go
//! through [`fit_with_initial`].
//!
//! # Examples
//!
//! Recover a known rational function from samples on the jω axis:
//!
//! ```
//! use rvf_numerics::{c, Complex};
//! use rvf_vecfit::{fit_single, VfOptions};
//!
//! # fn main() -> Result<(), rvf_vecfit::VecfitError> {
//! let truth = |s: Complex| {
//!     (s + 1.0).inv() * 2.0 + (s - c(-3.0, 40.0)).inv() * c(1.0, 0.5)
//!         + (s - c(-3.0, -40.0)).inv() * c(1.0, -0.5)
//! };
//! let samples: Vec<Complex> = (1..=100).map(|i| c(0.0, i as f64)).collect();
//! let data: Vec<Complex> = samples.iter().map(|&s| truth(s)).collect();
//! let fit = fit_single(&samples, &data, &VfOptions::frequency(3))?;
//! assert!(fit.rms_error < 1e-6);
//! assert!(fit.model.poles().is_stable());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod basis;
pub mod error;
pub mod fit;
pub mod model;
pub mod options;
pub mod poles;
pub mod realization;

pub use basis::{basis_matrix, basis_row, Residues};
pub use error::VecfitError;
pub use fit::{
    auto_workers, fit, fit_in, fit_single, fit_with_initial, fit_with_initial_in, model_rms, VfFit,
};
pub use model::{RationalModel, ResponseTerms};
pub use options::{Axis, PoleSpread, VfOptions, Weighting};
pub use poles::{PoleEntry, PoleSet};
pub use realization::{realize, Block, Form, Realization};
