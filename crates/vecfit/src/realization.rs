//! State-space realizations of fitted pole-residue models.
//!
//! Two minimal forms from the paper:
//!
//! * **Classic** (eqs. 9–10): output-side residues,
//!   `H(s) = R̃·(sI − Ã)⁻¹·B̃ + Ẽ` with `B̃ = 1` (real pole) or `[2, 0]ᵀ`
//!   (pair block).
//! * **Input-shifted** (eqs. 12–14): residues moved in front of the LTI
//!   kernel, `T(s) = D̂·(sI − Â)⁻¹·R̂`, the form compatible with the
//!   parallel Hammerstein structure — the state-dependent residue enters
//!   as the *input* of each filter block, so replacing `R̂` with a static
//!   nonlinear function `f̂(x)` yields the time-domain model of eq. (7).

use rvf_numerics::Complex;

use crate::basis::Residues;
use crate::poles::{PoleEntry, PoleSet};

/// One minimal subsystem of a realization.
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// First-order block for a real pole.
    First {
        /// The pole `a`.
        a: f64,
        /// Input weight (classic: 1; shifted: the residue).
        b: f64,
        /// Output weight (classic: the residue; shifted: 1).
        c: f64,
    },
    /// Second-order real block for a complex pair, with
    /// `A = [[σ, ω], [−ω, σ]]`.
    Second {
        /// Real part of the pole.
        sigma: f64,
        /// Imaginary part of the pole (positive member).
        omega: f64,
        /// Input 2-vector.
        b: [f64; 2],
        /// Output 2-row.
        c: [f64; 2],
    },
}

impl Block {
    /// Transfer function of the block at `s` (without feed-through).
    pub fn eval(&self, s: Complex) -> Complex {
        match self {
            Block::First { a, b, c } => (s - *a).inv().scale(b * c),
            Block::Second { sigma, omega, b, c } => {
                // (sI − A)⁻¹ for the rotation-scaled block.
                let d = (s - *sigma) * (s - *sigma) + Complex::from_re(omega * omega);
                let dinv = d.inv();
                // c · adj(sI−A) · b with adj = [[s−σ, ω], [−ω, s−σ]].
                let top = (s - *sigma) * b[0] + Complex::from_re(omega * b[1]);
                let bot = Complex::from_re(-omega * b[0]) + (s - *sigma) * b[1];
                (top * c[0] + bot * c[1]) * dinv
            }
        }
    }

    /// State dimension of the block (1 or 2).
    pub fn dim(&self) -> usize {
        match self {
            Block::First { .. } => 1,
            Block::Second { .. } => 2,
        }
    }
}

/// Which residue placement a realization uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Form {
    /// Residues at the output (paper eqs. 9–10).
    Classic,
    /// Residues shifted to the input (paper eqs. 12–14), Hammerstein
    /// compatible.
    InputShifted,
}

/// A block-diagonal state-space realization of one response of a fitted
/// model.
///
/// # Examples
///
/// ```
/// use rvf_numerics::c;
/// use rvf_vecfit::{realize, Form, PoleSet, Residues};
///
/// let poles = PoleSet::from_pairs(&[c(-1.0, 5.0)]);
/// let residues = Residues(vec![c(2.0, 0.3)]);
/// let classic = realize(&poles, &residues, 0.0, Form::Classic);
/// let shifted = realize(&poles, &residues, 0.0, Form::InputShifted);
/// let s = c(0.0, 3.0);
/// assert!((classic.eval(s) - shifted.eval(s)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Realization {
    /// The parallel blocks.
    pub blocks: Vec<Block>,
    /// Direct feed-through term.
    pub d: f64,
    /// The form used to build the blocks.
    pub form: Form,
}

impl Realization {
    /// Total state dimension.
    pub fn dim(&self) -> usize {
        self.blocks.iter().map(Block::dim).sum()
    }

    /// Transfer function at `s` (sum of parallel blocks plus feed-through).
    pub fn eval(&self, s: Complex) -> Complex {
        self.blocks.iter().map(|b| b.eval(s)).fold(Complex::from_re(self.d), |acc, v| acc + v)
    }
}

/// Builds a block-diagonal realization of `Σ_p r_p/(s − a_p) + d`.
///
/// For [`Form::InputShifted`] with a complex pair, the paper's eq. (14)
/// applies: `R̂ = [Re r + Im r, Re r − Im r]ᵀ`, `D̂ = [1, 1]`.
pub fn realize(poles: &PoleSet, residues: &Residues, d: f64, form: Form) -> Realization {
    let mut blocks = Vec::with_capacity(poles.n_entries());
    for (e, r) in poles.entries().iter().zip(&residues.0) {
        match (e, form) {
            (PoleEntry::Real(a), Form::Classic) => {
                blocks.push(Block::First { a: *a, b: 1.0, c: r.re });
            }
            (PoleEntry::Real(a), Form::InputShifted) => {
                blocks.push(Block::First { a: *a, b: r.re, c: 1.0 });
            }
            (PoleEntry::Pair(a), Form::Classic) => {
                blocks.push(Block::Second {
                    sigma: a.re,
                    omega: a.im,
                    b: [2.0, 0.0],
                    c: [r.re, r.im],
                });
            }
            (PoleEntry::Pair(a), Form::InputShifted) => {
                blocks.push(Block::Second {
                    sigma: a.re,
                    omega: a.im,
                    b: [r.re + r.im, r.re - r.im],
                    c: [1.0, 1.0],
                });
            }
        }
    }
    Realization { blocks, d, form }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvf_numerics::c;

    fn sample_points() -> Vec<Complex> {
        (1..=7).map(|i| c(0.0, 0.9 * i as f64)).collect()
    }

    #[test]
    fn classic_real_pole_matches_partial_fraction() {
        let poles = PoleSet::from_reals(&[-2.0]);
        let res = Residues(vec![c(3.0, 0.0)]);
        let r = realize(&poles, &res, 0.5, Form::Classic);
        for s in sample_points() {
            let want = (s + 2.0).inv().scale(3.0) + 0.5;
            assert!((r.eval(s) - want).abs() < 1e-13);
        }
    }

    #[test]
    fn classic_pair_matches_partial_fraction() {
        let a = c(-1.0, 4.0);
        let rr = c(2.0, -0.7);
        let poles = PoleSet::from_pairs(&[a]);
        let res = Residues(vec![rr]);
        let real = realize(&poles, &res, 0.0, Form::Classic);
        for s in sample_points() {
            let want = rr * (s - a).inv() + rr.conj() * (s - a.conj()).inv();
            assert!((real.eval(s) - want).abs() < 1e-12, "at {s:?}");
        }
    }

    #[test]
    fn input_shift_equivalence_paper_eq_14() {
        // The input-shifted realization must produce the identical
        // transfer function — the paper's compatibility requirement for
        // the Hammerstein structure.
        let poles = PoleSet::new(vec![
            PoleEntry::Real(-0.5),
            PoleEntry::Pair(c(-2.0, 7.0)),
            PoleEntry::Pair(c(-0.1, 0.8)),
        ]);
        let res = Residues(vec![c(1.2, 0.0), c(-0.4, 2.2), c(0.9, -0.3)]);
        let classic = realize(&poles, &res, 0.25, Form::Classic);
        let shifted = realize(&poles, &res, 0.25, Form::InputShifted);
        for s in sample_points() {
            assert!((classic.eval(s) - shifted.eval(s)).abs() < 1e-12, "forms disagree at {s:?}");
        }
    }

    #[test]
    fn realization_matches_residue_eval() {
        let poles = PoleSet::new(vec![PoleEntry::Pair(c(-3.0, 10.0)), PoleEntry::Real(-1.0)]);
        let res = Residues(vec![c(0.5, 1.5), c(-2.0, 0.0)]);
        let r = realize(&poles, &res, 0.0, Form::Classic);
        for s in sample_points() {
            assert!((r.eval(s) - res.eval(&poles, s)).abs() < 1e-12);
        }
    }

    #[test]
    fn dims() {
        let poles = PoleSet::new(vec![PoleEntry::Real(-1.0), PoleEntry::Pair(c(-1.0, 1.0))]);
        let res = Residues(vec![c(1.0, 0.0), c(1.0, 1.0)]);
        let r = realize(&poles, &res, 0.0, Form::Classic);
        assert_eq!(r.dim(), 3);
        assert_eq!(r.blocks.len(), 2);
    }
}
