//! Error type for the vector fitting engine.

use core::fmt;

use rvf_numerics::NumericsError;

/// Errors produced by the vector fitting driver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VecfitError {
    /// No responses or no sample points were provided.
    EmptyData,
    /// A response row has a different length than the sample grid.
    LengthMismatch {
        /// Index of the offending response.
        response: usize,
        /// Expected length (the sample count).
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// Not enough sample points to determine the requested unknowns.
    TooFewSamples {
        /// Minimum number of sample points required.
        needed: usize,
        /// Number provided.
        got: usize,
    },
    /// Input data contains NaN or infinities.
    NonFinite,
    /// The sample grid degenerates (e.g. all frequencies zero).
    DegenerateGrid,
    /// An underlying linear-algebra kernel failed.
    Numerics(NumericsError),
}

impl fmt::Display for VecfitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyData => write!(f, "no data to fit"),
            Self::LengthMismatch { response, expected, got } => {
                write!(f, "response {response} has {got} samples, expected {expected}")
            }
            Self::TooFewSamples { needed, got } => {
                write!(f, "need at least {needed} sample points, got {got}")
            }
            Self::NonFinite => write!(f, "input data contains non-finite values"),
            Self::DegenerateGrid => write!(f, "sample grid is degenerate"),
            Self::Numerics(e) => write!(f, "numerical kernel failed: {e}"),
        }
    }
}

impl std::error::Error for VecfitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericsError> for VecfitError {
    fn from(e: NumericsError) -> Self {
        Self::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(VecfitError::EmptyData.to_string().contains("no data"));
        let e = VecfitError::LengthMismatch { response: 2, expected: 10, got: 7 };
        assert!(e.to_string().contains('2') && e.to_string().contains("10"));
    }

    #[test]
    fn from_numerics_preserves_source() {
        use std::error::Error;
        let e = VecfitError::from(NumericsError::Singular { pivot: 0 });
        assert!(e.source().is_some());
    }
}
