//! Configuration for the vector fitting engine.

/// Which axis the sample points live on.
///
/// Frequency responses are sampled on the imaginary axis (`s = jω`);
/// the recursive state-dimension fits of the RVF algorithm run on the
/// *real* axis (`ξ = x`, the state estimator value). The two axes differ
/// in their symmetry and stability conventions:
///
/// * `Imaginary`: data carries Hermitian symmetry, poles must be stable
///   (left half-plane) for a causal model, basis rows are complex and are
///   split into real/imaginary equations.
/// * `Real`: data is real-valued, basis functions must stay real and
///   nonsingular on the sampled interval, which requires *complex-pair*
///   poles kept off the real axis (the paper's "complex pairs whose real
///   parts have opposite sign" in the `ju` plane — conjugate pairs in the
///   `x` plane). No stability flipping applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Axis {
    /// Fit along `s = jω` (frequency responses).
    #[default]
    Imaginary,
    /// Fit along a real variable (residue trajectories over the state).
    Real,
}

/// Row weighting applied to the least-squares systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Weighting {
    /// All samples weighted equally.
    #[default]
    Uniform,
    /// Weight `1/|H|`: relative error fit, emphasizes low-magnitude
    /// regions (useful when the dynamic part spans many decades).
    InverseMagnitude,
    /// Weight `1/√|H|`: compromise between absolute and relative.
    InverseSqrtMagnitude,
}

/// Distribution of the starting poles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoleSpread {
    /// Logarithmically spaced imaginary parts (frequency fitting over
    /// several decades).
    #[default]
    Logarithmic,
    /// Linearly spaced (state-axis fitting over a bounded interval).
    Linear,
}

/// Options controlling a vector fitting run.
///
/// # Examples
///
/// ```
/// use rvf_vecfit::{Axis, VfOptions};
///
/// let opts = VfOptions::frequency(12).with_iterations(8);
/// assert_eq!(opts.n_poles, 12);
/// assert_eq!(opts.axis, Axis::Imaginary);
/// ```
#[derive(Debug, Clone)]
pub struct VfOptions {
    /// Number of poles `P` (counting each member of a complex pair).
    pub n_poles: usize,
    /// Number of pole-relocation iterations.
    pub iterations: usize,
    /// Sample axis (see [`Axis`]).
    pub axis: Axis,
    /// Flip right-half-plane poles into the left half-plane after each
    /// relocation (paper: "guaranteed stable by construction").
    pub enforce_stability: bool,
    /// Use the relaxed nontriviality constraint of Gustavsen (2006)
    /// instead of fixing `σ(∞) = 1`.
    pub relaxed: bool,
    /// Include a constant term `d` in the fitted model.
    pub include_const: bool,
    /// Include a linear term `s·e` in the fitted model.
    pub include_linear: bool,
    /// Least-squares row weighting.
    pub weighting: Weighting,
    /// Starting pole distribution.
    pub spread: PoleSpread,
    /// Real-axis fits only: lower bound on `|Im(pole)|` as a fraction of
    /// the sampled interval length, keeping the log base functions smooth
    /// on the interval.
    pub real_axis_min_imag: f64,
    /// Ratio `|Re|/|Im|` of the starting complex poles (Gustavsen's
    /// classic 1/100 recipe).
    pub initial_damping: f64,
    /// Worker threads for the per-response stages (block assembly + QR
    /// compression in relocation, residue identification).
    ///
    /// `1` (the default) runs serially on the calling thread. `0` uses
    /// one worker per available core, but stays serial below a small
    /// response count where spawn overhead dominates. Any other value
    /// is used as-is (clamped to the response count). The fit result is
    /// bit-identical for every setting: responses are independent
    /// blocks written to fixed row ranges of the stacked system.
    pub threads: usize,
    /// Relocation stops early once the maximum relative pole
    /// displacement of a round falls below this threshold (the poles
    /// have settled). The default `1e-10` is effectively "run all
    /// iterations"; warm-started growth loops use a looser value so
    /// converged fits stop paying for rounds that no longer move.
    pub stop_displacement: f64,
}

impl VfOptions {
    /// Preset for frequency-response fitting with `n_poles` stable poles.
    pub fn frequency(n_poles: usize) -> Self {
        Self {
            n_poles,
            iterations: 10,
            axis: Axis::Imaginary,
            enforce_stability: true,
            relaxed: true,
            include_const: false,
            include_linear: false,
            weighting: Weighting::Uniform,
            spread: PoleSpread::Logarithmic,
            real_axis_min_imag: 0.05,
            initial_damping: 0.01,
            threads: 1,
            stop_displacement: 1e-10,
        }
    }

    /// Preset for real-axis (state-dimension) fitting with `n_poles`
    /// poles arranged in complex pairs. `n_poles` is rounded up to even.
    pub fn state(n_poles: usize) -> Self {
        Self {
            n_poles: n_poles + n_poles % 2,
            iterations: 10,
            axis: Axis::Real,
            enforce_stability: false,
            relaxed: true,
            include_const: true,
            include_linear: false,
            weighting: Weighting::Uniform,
            spread: PoleSpread::Linear,
            real_axis_min_imag: 0.05,
            initial_damping: 0.01,
            threads: 1,
            stop_displacement: 1e-10,
        }
    }

    /// Sets the worker-thread count (see [`VfOptions::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the relocation convergence threshold
    /// (see [`VfOptions::stop_displacement`]).
    pub fn with_stop_displacement(mut self, tol: f64) -> Self {
        self.stop_displacement = tol;
        self
    }

    /// Sets the iteration count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the weighting scheme.
    pub fn with_weighting(mut self, weighting: Weighting) -> Self {
        self.weighting = weighting;
        self
    }

    /// Enables or disables the constant term.
    pub fn with_const(mut self, include: bool) -> Self {
        self.include_const = include;
        self
    }

    /// Enables or disables the linear (`s·e`) term.
    pub fn with_linear(mut self, include: bool) -> Self {
        self.include_linear = include;
        self
    }

    /// Switches between relaxed and classic sigma normalization.
    pub fn with_relaxed(mut self, relaxed: bool) -> Self {
        self.relaxed = relaxed;
        self
    }
}

impl Default for VfOptions {
    fn default() -> Self {
        Self::frequency(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_preset() {
        let o = VfOptions::frequency(10);
        assert!(o.enforce_stability);
        assert!(o.relaxed);
        assert_eq!(o.axis, Axis::Imaginary);
    }

    #[test]
    fn state_preset_rounds_to_even() {
        let o = VfOptions::state(9);
        assert_eq!(o.n_poles, 10);
        assert!(!o.enforce_stability);
        assert_eq!(o.axis, Axis::Real);
        assert!(o.include_const);
    }

    #[test]
    fn builder_methods_chain() {
        let o = VfOptions::frequency(4)
            .with_iterations(3)
            .with_const(true)
            .with_linear(true)
            .with_relaxed(false)
            .with_weighting(Weighting::InverseMagnitude);
        assert_eq!(o.iterations, 3);
        assert!(o.include_const && o.include_linear && !o.relaxed);
        assert_eq!(o.weighting, Weighting::InverseMagnitude);
    }
}
