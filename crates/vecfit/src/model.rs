//! Fitted rational models: common poles, per-response residues.

use rvf_numerics::Complex;

use crate::basis::Residues;
use crate::poles::PoleSet;

/// The residues and polynomial terms of one response sharing the common
/// pole set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResponseTerms {
    /// Structured residues (one complex value per pole entry).
    pub residues: Residues,
    /// Constant term `d` (zero when not fitted).
    pub d: f64,
    /// Linear term `e` in `s·e` (zero when not fitted).
    pub e: f64,
}

/// A set of rational functions with *common poles* and per-response
/// residues — the output of a (vector) fit:
///
/// ```text
/// H_k(s) ≈ Σ_p r_{k,p}/(s − a_p) + d_k + s·e_k
/// ```
///
/// For the TFT pipeline, `k` indexes the state-space snapshots, so the
/// residue trajectories `r_p(x(k))` of the paper are the columns of this
/// model.
///
/// # Examples
///
/// ```
/// use rvf_numerics::c;
/// use rvf_vecfit::{PoleSet, RationalModel, ResponseTerms, Residues};
///
/// let poles = PoleSet::from_reals(&[-1.0]);
/// let terms = ResponseTerms {
///     residues: Residues(vec![c(2.0, 0.0)]),
///     d: 0.0,
///     e: 0.0,
/// };
/// let model = RationalModel::new(poles, vec![terms]);
/// // H(0) = 2/(0 - (-1)) = 2.
/// assert!((model.eval(0, c(0.0, 0.0)).re - 2.0).abs() < 1e-14);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RationalModel {
    poles: PoleSet,
    terms: Vec<ResponseTerms>,
}

impl RationalModel {
    /// Assembles a model from a pole set and per-response terms.
    pub fn new(poles: PoleSet, terms: Vec<ResponseTerms>) -> Self {
        Self { poles, terms }
    }

    /// The shared pole set.
    pub fn poles(&self) -> &PoleSet {
        &self.poles
    }

    /// Per-response terms.
    pub fn terms(&self) -> &[ResponseTerms] {
        &self.terms
    }

    /// Number of responses sharing the poles.
    pub fn n_responses(&self) -> usize {
        self.terms.len()
    }

    /// Number of poles (pairs counted twice).
    pub fn n_poles(&self) -> usize {
        self.poles.n_poles()
    }

    /// Evaluates response `k` at the (complex) point `s`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn eval(&self, k: usize, s: Complex) -> Complex {
        let t = &self.terms[k];
        t.residues.eval(&self.poles, s) + Complex::from_re(t.d) + s * t.e
    }

    /// Evaluates response `k` on a grid of points.
    pub fn eval_grid(&self, k: usize, samples: &[Complex]) -> Vec<Complex> {
        samples.iter().map(|&s| self.eval(k, s)).collect()
    }

    /// The residue trajectory of pole entry `p` across all responses —
    /// the state-dependent residue samples `r_p(x(k))` that the RVF
    /// recursion fits next.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn residue_trajectory(&self, p: usize) -> Vec<Complex> {
        assert!(p < self.poles.n_entries(), "pole entry out of range");
        self.terms.iter().map(|t| t.residues.0[p]).collect()
    }

    /// The constant-term trajectory `d(x(k))` across responses.
    pub fn const_trajectory(&self) -> Vec<f64> {
        self.terms.iter().map(|t| t.d).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvf_numerics::c;

    fn two_response_model() -> RationalModel {
        let poles = PoleSet::from_pairs(&[c(-1.0, 3.0)]);
        let t0 = ResponseTerms { residues: Residues(vec![c(1.0, 0.5)]), d: 0.1, e: 0.0 };
        let t1 = ResponseTerms { residues: Residues(vec![c(2.0, -0.5)]), d: -0.1, e: 0.0 };
        RationalModel::new(poles, vec![t0, t1])
    }

    #[test]
    fn eval_includes_d_and_e() {
        let poles = PoleSet::from_reals(&[-1.0]);
        let t = ResponseTerms { residues: Residues(vec![c(0.0, 0.0)]), d: 3.0, e: 2.0 };
        let m = RationalModel::new(poles, vec![t]);
        let s = c(0.0, 5.0);
        let v = m.eval(0, s);
        assert!((v - (c(3.0, 0.0) + s * 2.0)).abs() < 1e-14);
    }

    #[test]
    fn hermitian_symmetry_on_imag_axis() {
        let m = two_response_model();
        let s = c(0.0, 2.0);
        let a = m.eval(0, s);
        let b = m.eval(0, s.conj());
        assert!((a.conj() - b).abs() < 1e-14, "model must satisfy H(s*) = H(s)*");
    }

    #[test]
    fn residue_trajectory_collects_over_responses() {
        let m = two_response_model();
        let tr = m.residue_trajectory(0);
        assert_eq!(tr, vec![c(1.0, 0.5), c(2.0, -0.5)]);
        assert_eq!(m.const_trajectory(), vec![0.1, -0.1]);
    }

    #[test]
    fn grid_eval_matches_pointwise() {
        let m = two_response_model();
        let grid = [c(0.0, 1.0), c(0.0, 2.0)];
        let g = m.eval_grid(1, &grid);
        assert_eq!(g[0], m.eval(1, grid[0]));
        assert_eq!(g[1], m.eval(1, grid[1]));
    }
}
