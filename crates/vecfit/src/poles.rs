//! Pole sets: structured storage of real poles and complex conjugate
//! pairs, starting-pole heuristics and relocation post-processing.

use rvf_numerics::{linspace, logspace, Complex};

use crate::options::{Axis, PoleSpread, VfOptions};

/// A single pole entry: either a real pole or a complex conjugate pair
/// (stored as the member with positive imaginary part).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PoleEntry {
    /// A real pole `a`.
    Real(f64),
    /// A conjugate pair `a, a*` stored with `Im(a) > 0`.
    Pair(Complex),
}

impl PoleEntry {
    /// Number of basis columns this entry contributes (1 or 2).
    pub fn basis_width(&self) -> usize {
        match self {
            PoleEntry::Real(_) => 1,
            PoleEntry::Pair(_) => 2,
        }
    }

    /// The pole value(s) as complex numbers.
    pub fn values(&self) -> Vec<Complex> {
        match self {
            PoleEntry::Real(a) => vec![Complex::from_re(*a)],
            PoleEntry::Pair(a) => vec![*a, a.conj()],
        }
    }
}

/// An ordered collection of pole entries shared by all responses of a fit.
///
/// # Examples
///
/// ```
/// use rvf_vecfit::PoleSet;
///
/// let poles = PoleSet::initial_imag_axis(6, 1.0e3, 1.0e9, 0.01, true);
/// assert_eq!(poles.n_poles(), 6);
/// assert!(poles.is_stable());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PoleSet {
    entries: Vec<PoleEntry>,
}

impl PoleSet {
    /// Creates a pole set from explicit entries.
    pub fn new(entries: Vec<PoleEntry>) -> Self {
        Self { entries }
    }

    /// Creates a pole set of real poles.
    pub fn from_reals(poles: &[f64]) -> Self {
        Self { entries: poles.iter().map(|&a| PoleEntry::Real(a)).collect() }
    }

    /// Creates a pole set of conjugate pairs from their upper-half members.
    pub fn from_pairs(poles: &[Complex]) -> Self {
        Self {
            entries: poles
                .iter()
                .map(|&a| PoleEntry::Pair(Complex::new(a.re, a.im.abs())))
                .collect(),
        }
    }

    /// The entries.
    pub fn entries(&self) -> &[PoleEntry] {
        &self.entries
    }

    /// Total pole count (pairs count twice).
    pub fn n_poles(&self) -> usize {
        self.entries.iter().map(|e| e.basis_width()).sum()
    }

    /// Number of basis columns (same as [`Self::n_poles`]).
    pub fn n_basis(&self) -> usize {
        self.n_poles()
    }

    /// Number of entries (pairs count once).
    pub fn n_entries(&self) -> usize {
        self.entries.len()
    }

    /// All poles expanded to complex values (pairs give both members).
    pub fn to_complex(&self) -> Vec<Complex> {
        self.entries.iter().flat_map(|e| e.values()).collect()
    }

    /// `true` if every pole has a strictly negative real part.
    pub fn is_stable(&self) -> bool {
        self.entries.iter().all(|e| match e {
            PoleEntry::Real(a) => *a < 0.0,
            PoleEntry::Pair(a) => a.re < 0.0,
        })
    }

    /// Classic starting poles for frequency fitting: complex pairs with
    /// imaginary parts spread over `[w_min, w_max]` (rad/s) and real
    /// parts `-damping·ω`.
    pub fn initial_imag_axis(
        n_poles: usize,
        w_min: f64,
        w_max: f64,
        damping: f64,
        log_spread: bool,
    ) -> Self {
        assert!(n_poles > 0, "need at least one pole");
        assert!(w_min > 0.0 && w_max > w_min, "need 0 < w_min < w_max");
        let n_pairs = n_poles / 2;
        let n_real = n_poles % 2;
        let mut entries = Vec::with_capacity(n_pairs + n_real);
        if n_real == 1 {
            entries.push(PoleEntry::Real(-w_min));
        }
        if n_pairs > 0 {
            let ws = if log_spread {
                logspace(w_min.log10(), w_max.log10(), n_pairs)
            } else {
                linspace(w_min, w_max, n_pairs)
            };
            for w in ws {
                entries.push(PoleEntry::Pair(Complex::new(-damping * w, w)));
            }
        }
        Self { entries }
    }

    /// Starting poles for real-axis (state) fitting: conjugate pairs with
    /// real parts spread across the sampled interval `[x_min, x_max]` and
    /// imaginary parts a fixed fraction of the interval length.
    pub fn initial_real_axis(n_poles: usize, x_min: f64, x_max: f64, imag_frac: f64) -> Self {
        assert!(n_poles >= 2, "real-axis fitting needs at least one pair");
        assert!(x_max > x_min, "need a nonempty interval");
        let n_pairs = n_poles.div_ceil(2);
        let span = x_max - x_min;
        let height = (imag_frac * span).max(1e-12);
        let centers = if n_pairs == 1 {
            vec![0.5 * (x_min + x_max)]
        } else {
            linspace(x_min, x_max, n_pairs)
        };
        Self {
            entries: centers
                .into_iter()
                .map(|c| PoleEntry::Pair(Complex::new(c, height)))
                .collect(),
        }
    }

    /// Builds starting poles from fit options and the sample range.
    ///
    /// For the imaginary axis `lo`/`hi` are angular frequencies of the
    /// sample grid; for the real axis they are the state interval bounds.
    pub fn initial_for(opts: &VfOptions, lo: f64, hi: f64) -> Self {
        match opts.axis {
            Axis::Imaginary => Self::initial_imag_axis(
                opts.n_poles,
                lo.max(1e-30),
                hi,
                opts.initial_damping,
                matches!(opts.spread, PoleSpread::Logarithmic),
            ),
            Axis::Real => Self::initial_real_axis(opts.n_poles, lo, hi, opts.real_axis_min_imag),
        }
    }

    /// Returns this pole set augmented with freshly spread entries until
    /// it carries at least `n_poles` poles — the warm-start primitive of
    /// the RVF pole-growth loop (`p += 2` in paper Algorithm 1).
    ///
    /// The existing (already relocated) entries are kept verbatim; the
    /// missing poles are added as pairs at *interior* positions of the
    /// sampled range `[lo, hi]` (angular frequencies on the imaginary
    /// axis, state bounds on the real axis), where they are unlikely to
    /// collide with either the edge-seeded initial spread or the
    /// relocated poles. If `self` already has `n_poles` or more, it is
    /// returned unchanged.
    pub fn grown_to(&self, n_poles: usize, opts: &VfOptions, lo: f64, hi: f64) -> Self {
        let mut entries = self.entries.clone();
        let have = self.n_poles();
        if have >= n_poles {
            return Self { entries };
        }
        let missing = n_poles - have;
        match opts.axis {
            Axis::Imaginary => {
                let n_pairs = missing / 2;
                if missing % 2 == 1 {
                    entries.push(PoleEntry::Real(-lo.max(1e-30)));
                }
                let lo = lo.max(1e-30);
                for i in 1..=n_pairs {
                    let t = i as f64 / (n_pairs + 1) as f64;
                    let w = match opts.spread {
                        PoleSpread::Logarithmic => lo * (hi / lo).powf(t),
                        PoleSpread::Linear => lo + t * (hi - lo),
                    };
                    entries.push(PoleEntry::Pair(Complex::new(-opts.initial_damping * w, w)));
                }
            }
            Axis::Real => {
                let span = hi - lo;
                let height = (opts.real_axis_min_imag * span).max(1e-12);
                let n_pairs = missing.div_ceil(2);
                for i in 1..=n_pairs {
                    let t = i as f64 / (n_pairs + 1) as f64;
                    entries.push(PoleEntry::Pair(Complex::new(lo + t * span, height)));
                }
            }
        }
        Self { entries }
    }

    /// Rebuilds a structured pole set from raw eigenvalues after a
    /// relocation step.
    ///
    /// * `Axis::Imaginary`: eigenvalues with `|Im|` below `pair_tol·|λ|`
    ///   become real poles; if `enforce_stability`, right-half-plane
    ///   poles are flipped (`Re → −Re`), the paper's stability guarantee.
    /// * `Axis::Real`: every pole must be a complex pair off the real
    ///   axis; real eigenvalues are paired up and given an imaginary part
    ///   of at least `min_imag` so the log base functions stay smooth on
    ///   the sampled interval. When `clamp = Some((lo, hi))`, poles are
    ///   confined to the neighbourhood of the sampled interval: runaway
    ///   relocations (poles orders of magnitude outside the data range)
    ///   leave the fitted *values* intact through cancellation but
    ///   destroy the precision of the logarithmic primitives, so they
    ///   are pulled back in.
    pub fn from_eigenvalues(
        eigs: &[Complex],
        axis: Axis,
        enforce_stability: bool,
        min_imag: f64,
        clamp: Option<(f64, f64)>,
    ) -> Self {
        match axis {
            Axis::Imaginary => {
                let mut entries = Vec::new();
                let mut used = vec![false; eigs.len()];
                for i in 0..eigs.len() {
                    if used[i] {
                        continue;
                    }
                    let mut a = eigs[i];
                    let scale = a.abs().max(1e-30);
                    if a.im.abs() <= 1e-9 * scale {
                        let mut re = a.re;
                        if enforce_stability && re > 0.0 {
                            re = -re;
                        }
                        if enforce_stability && re == 0.0 {
                            re = -1e-12 * scale.max(1.0);
                        }
                        entries.push(PoleEntry::Real(re));
                        used[i] = true;
                    } else {
                        // Find the conjugate partner (closest to a*).
                        let mut best = None;
                        let mut best_d = f64::INFINITY;
                        for (j, ej) in eigs.iter().enumerate().skip(i + 1) {
                            if used[j] {
                                continue;
                            }
                            let d = (*ej - a.conj()).abs();
                            if d < best_d {
                                best_d = d;
                                best = Some(j);
                            }
                        }
                        if let Some(j) = best {
                            used[j] = true;
                        }
                        used[i] = true;
                        if enforce_stability && a.re > 0.0 {
                            a = Complex::new(-a.re, a.im);
                        }
                        entries.push(PoleEntry::Pair(Complex::new(a.re, a.im.abs())));
                    }
                }
                Self { entries }
            }
            Axis::Real => {
                // Keep only one member per conjugate pair; collect strays.
                let mut pairs: Vec<Complex> = Vec::new();
                let mut reals: Vec<f64> = Vec::new();
                let mut used = vec![false; eigs.len()];
                for i in 0..eigs.len() {
                    if used[i] {
                        continue;
                    }
                    let a = eigs[i];
                    let scale = a.abs().max(1e-30);
                    if a.im.abs() <= 1e-9 * scale {
                        reals.push(a.re);
                        used[i] = true;
                    } else {
                        let mut best = None;
                        let mut best_d = f64::INFINITY;
                        for (j, ej) in eigs.iter().enumerate().skip(i + 1) {
                            if used[j] {
                                continue;
                            }
                            let d = (*ej - a.conj()).abs();
                            if d < best_d {
                                best_d = d;
                                best = Some(j);
                            }
                        }
                        if let Some(j) = best {
                            used[j] = true;
                        }
                        used[i] = true;
                        pairs.push(Complex::new(a.re, a.im.abs().max(min_imag)));
                    }
                }
                // Pair up leftover real eigenvalues two at a time.
                reals.sort_by(|x, y| x.partial_cmp(y).unwrap());
                let mut it = reals.chunks_exact(2);
                for ch in &mut it {
                    let center = 0.5 * (ch[0] + ch[1]);
                    let half = (0.5 * (ch[1] - ch[0])).abs().max(min_imag);
                    pairs.push(Complex::new(center, half));
                }
                if let [last] = it.remainder() {
                    pairs.push(Complex::new(*last, min_imag));
                }
                if let Some((lo, hi)) = clamp {
                    let range = (hi - lo).max(1e-300);
                    for p in &mut pairs {
                        let re = p.re.clamp(lo - 0.5 * range, hi + 0.5 * range);
                        let im = p.im.clamp(min_imag, 2.0 * range);
                        *p = Complex::new(re, im);
                    }
                }
                Self { entries: pairs.into_iter().map(PoleEntry::Pair).collect() }
            }
        }
    }

    /// Maximum relative displacement between two pole sets of identical
    /// structure — the convergence monitor of the relocation loop.
    /// Returns `f64::INFINITY` when structures differ.
    pub fn displacement(&self, other: &PoleSet) -> f64 {
        let a = self.to_complex();
        let b = other.to_complex();
        if a.len() != b.len() {
            return f64::INFINITY;
        }
        let mut worst = 0.0_f64;
        // Greedy nearest matching (pole order may permute between rounds).
        let mut used = vec![false; b.len()];
        for pa in &a {
            let mut best = f64::INFINITY;
            let mut bj = 0;
            for (j, pb) in b.iter().enumerate() {
                if used[j] {
                    continue;
                }
                let d = (*pa - *pb).abs();
                if d < best {
                    best = d;
                    bj = j;
                }
            }
            used[bj] = true;
            worst = worst.max(best / pa.abs().max(1.0));
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvf_numerics::c;

    #[test]
    fn initial_imag_axis_structure() {
        let p = PoleSet::initial_imag_axis(7, 1.0, 1e6, 0.01, true);
        assert_eq!(p.n_poles(), 7);
        assert_eq!(p.n_entries(), 4); // 1 real + 3 pairs
        assert!(p.is_stable());
        // Imaginary parts cover the requested range.
        let vals = p.to_complex();
        let max_im = vals.iter().fold(0.0_f64, |m, v| m.max(v.im));
        assert!((max_im - 1e6).abs() < 1e-6);
    }

    #[test]
    fn initial_real_axis_pairs_only() {
        let p = PoleSet::initial_real_axis(10, 0.4, 1.4, 0.05);
        assert_eq!(p.n_poles(), 10);
        for e in p.entries() {
            match e {
                PoleEntry::Pair(a) => {
                    assert!(a.im >= 0.05 * 1.0 - 1e-12);
                    assert!((0.4..=1.4).contains(&a.re));
                }
                PoleEntry::Real(_) => panic!("real pole on real axis"),
            }
        }
    }

    #[test]
    fn from_eigenvalues_flips_unstable() {
        let eigs = [c(2.0, 5.0), c(2.0, -5.0), c(3.0, 0.0)];
        let p = PoleSet::from_eigenvalues(&eigs, Axis::Imaginary, true, 0.0, None);
        assert!(p.is_stable());
        assert_eq!(p.n_poles(), 3);
    }

    #[test]
    fn from_eigenvalues_keeps_stable_without_flip() {
        let eigs = [c(2.0, 5.0), c(2.0, -5.0)];
        let p = PoleSet::from_eigenvalues(&eigs, Axis::Imaginary, false, 0.0, None);
        assert!(!p.is_stable());
        assert_eq!(p.to_complex()[0].re, 2.0);
    }

    #[test]
    fn real_axis_pairing_of_real_eigenvalues() {
        let eigs = [c(1.0, 0.0), c(2.0, 0.0), c(0.5, 0.3), c(0.5, -0.3)];
        let p = PoleSet::from_eigenvalues(&eigs, Axis::Real, false, 0.05, None);
        // All entries must be pairs with |Im| >= 0.05.
        for e in p.entries() {
            match e {
                PoleEntry::Pair(a) => assert!(a.im >= 0.05),
                PoleEntry::Real(_) => panic!("real pole survived"),
            }
        }
        assert_eq!(p.n_poles(), 4);
    }

    #[test]
    fn real_axis_odd_leftover() {
        let eigs = [c(1.0, 0.0)];
        let p = PoleSet::from_eigenvalues(&eigs, Axis::Real, false, 0.1, None);
        assert_eq!(p.n_entries(), 1);
        match p.entries()[0] {
            PoleEntry::Pair(a) => {
                assert_eq!(a.re, 1.0);
                assert_eq!(a.im, 0.1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn grown_to_keeps_existing_and_adds_pairs() {
        let opts = crate::options::VfOptions::frequency(6);
        let p = PoleSet::initial_imag_axis(4, 1.0, 1e6, 0.01, true);
        let g = p.grown_to(6, &opts, 1.0, 1e6);
        assert_eq!(g.n_poles(), 6);
        // Original entries survive verbatim at the front.
        assert_eq!(&g.entries()[..p.n_entries()], p.entries());
        // The new pair sits strictly inside the range.
        match g.entries().last().unwrap() {
            PoleEntry::Pair(a) => assert!(a.im > 1.0 && a.im < 1e6),
            PoleEntry::Real(_) => panic!("expected a pair"),
        }
        // Already big enough: unchanged.
        assert_eq!(p.grown_to(3, &opts, 1.0, 1e6), p);
    }

    #[test]
    fn grown_to_real_axis_adds_interior_pairs() {
        let opts = crate::options::VfOptions::state(4);
        let p = PoleSet::initial_real_axis(4, 0.0, 2.0, 0.05);
        let g = p.grown_to(6, &opts, 0.0, 2.0);
        assert_eq!(g.n_poles(), 6);
        match g.entries().last().unwrap() {
            PoleEntry::Pair(a) => {
                assert!(a.re > 0.0 && a.re < 2.0);
                assert!(a.im >= 0.05 * 2.0 - 1e-12);
            }
            PoleEntry::Real(_) => panic!("real pole on real axis"),
        }
    }

    #[test]
    fn displacement_zero_for_identical() {
        let p = PoleSet::initial_imag_axis(6, 1.0, 1e3, 0.01, true);
        assert_eq!(p.displacement(&p), 0.0);
        let q = PoleSet::initial_imag_axis(4, 1.0, 1e3, 0.01, true);
        assert!(p.displacement(&q).is_infinite());
    }

    #[test]
    fn to_complex_expands_pairs() {
        let p = PoleSet::from_pairs(&[c(-1.0, 2.0)]);
        let v = p.to_complex();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], c(-1.0, 2.0));
        assert_eq!(v[1], c(-1.0, -2.0));
    }
}
