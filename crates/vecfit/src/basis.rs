//! Partial-fraction basis evaluation.
//!
//! For a pole set the basis columns are
//!
//! * real pole `a`:      `φ(s) = 1/(s − a)`
//! * pair `(a, a*)`:     `φ₁(s) = 1/(s − a) + 1/(s − a*)`
//!                       `φ₂(s) = j/(s − a) − j/(s − a*)`
//!
//! The pair combination keeps the fitted function real for data with the
//! appropriate symmetry on *both* axes: Hermitian data on `s = jω` and
//! real data on real `x` (where `φ₁ = 2·Re{1/(x−a)}` and
//! `φ₂ = −2·Im{1/(x−a)}` are real-valued functions of `x`).

use rvf_numerics::Complex;

use crate::poles::{PoleEntry, PoleSet};

/// Writes the basis row at sample point `s` into `out` (resized to the
/// basis width).
pub fn basis_row(poles: &PoleSet, s: Complex, out: &mut Vec<Complex>) {
    out.clear();
    for e in poles.entries() {
        match e {
            PoleEntry::Real(a) => {
                out.push((s - Complex::from_re(*a)).inv());
            }
            PoleEntry::Pair(a) => {
                let g1 = (s - *a).inv();
                let g2 = (s - a.conj()).inv();
                out.push(g1 + g2);
                out.push((g1 - g2) * Complex::I);
            }
        }
    }
}

/// Dense basis matrix: `L × n_basis` rows of [`basis_row`].
pub fn basis_matrix(poles: &PoleSet, samples: &[Complex]) -> Vec<Vec<Complex>> {
    let mut rows = Vec::with_capacity(samples.len());
    let mut row = Vec::new();
    for &s in samples {
        basis_row(poles, s, &mut row);
        rows.push(row.clone());
    }
    rows
}

/// Structured residues aligned with the entries of a [`PoleSet`]: one
/// complex number per entry (`Real` entries have zero imaginary part;
/// `Pair` entries store `c₁ + j·c₂` in terms of the basis coefficients).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Residues(pub Vec<Complex>);

impl Residues {
    /// Converts the flat least-squares coefficient vector (one value per
    /// basis column) into structured residues.
    pub fn from_flat(poles: &PoleSet, flat: &[f64]) -> Self {
        let mut out = Vec::with_capacity(poles.n_entries());
        let mut i = 0;
        for e in poles.entries() {
            match e {
                PoleEntry::Real(_) => {
                    out.push(Complex::from_re(flat[i]));
                    i += 1;
                }
                PoleEntry::Pair(_) => {
                    out.push(Complex::new(flat[i], flat[i + 1]));
                    i += 2;
                }
            }
        }
        Self(out)
    }

    /// Flattens structured residues back into basis coefficients.
    pub fn to_flat(&self, poles: &PoleSet) -> Vec<f64> {
        let mut out = Vec::with_capacity(poles.n_basis());
        for (e, r) in poles.entries().iter().zip(&self.0) {
            match e {
                PoleEntry::Real(_) => out.push(r.re),
                PoleEntry::Pair(_) => {
                    out.push(r.re);
                    out.push(r.im);
                }
            }
        }
        out
    }

    /// Evaluates the partial-fraction sum `Σ` at `s`.
    ///
    /// For pairs the contribution is `r/(s−a) + r*/(s−a*)` with
    /// `r = c₁ + j·c₂`, exactly the combination realized by the basis
    /// columns.
    pub fn eval(&self, poles: &PoleSet, s: Complex) -> Complex {
        let mut acc = Complex::ZERO;
        for (e, r) in poles.entries().iter().zip(&self.0) {
            match e {
                PoleEntry::Real(a) => {
                    acc += *r * (s - Complex::from_re(*a)).inv();
                }
                PoleEntry::Pair(a) => {
                    acc += *r * (s - *a).inv() + r.conj() * (s - a.conj()).inv();
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvf_numerics::c;

    #[test]
    fn real_pole_basis() {
        let p = PoleSet::from_reals(&[-2.0]);
        let mut row = Vec::new();
        basis_row(&p, c(0.0, 1.0), &mut row);
        assert_eq!(row.len(), 1);
        // 1/(j + 2)
        let want = c(0.0, 1.0) + c(2.0, 0.0);
        assert!((row[0] - want.inv()).abs() < 1e-15);
    }

    #[test]
    fn pair_basis_is_real_on_real_axis() {
        let p = PoleSet::from_pairs(&[c(0.5, 0.3)]);
        let mut row = Vec::new();
        for &x in &[0.0, 0.4, 1.0, 2.0] {
            basis_row(&p, Complex::from_re(x), &mut row);
            assert_eq!(row.len(), 2);
            assert!(row[0].im.abs() < 1e-14, "phi1 not real at x={x}");
            assert!(row[1].im.abs() < 1e-14, "phi2 not real at x={x}");
        }
    }

    #[test]
    fn pair_basis_hermitian_on_imag_axis() {
        let p = PoleSet::from_pairs(&[c(-1.0, 5.0)]);
        let mut row_p = Vec::new();
        let mut row_m = Vec::new();
        basis_row(&p, c(0.0, 2.0), &mut row_p);
        basis_row(&p, c(0.0, -2.0), &mut row_m);
        // φ(s*) = φ(s)* for the combined pair basis.
        for (a, b) in row_p.iter().zip(&row_m) {
            assert!((a.conj() - *b).abs() < 1e-14);
        }
    }

    #[test]
    fn residue_round_trip() {
        let p = PoleSet::new(vec![
            PoleEntry::Real(-1.0),
            PoleEntry::Pair(c(-2.0, 3.0)),
            PoleEntry::Real(-4.0),
        ]);
        let flat = vec![1.5, 0.25, -0.75, 2.0];
        let r = Residues::from_flat(&p, &flat);
        assert_eq!(r.to_flat(&p), flat);
        assert_eq!(r.0[1], c(0.25, -0.75));
    }

    #[test]
    fn eval_matches_basis_linear_combination() {
        let p = PoleSet::new(vec![PoleEntry::Real(-1.0), PoleEntry::Pair(c(-2.0, 3.0))]);
        let flat = vec![0.7, -0.4, 1.1];
        let r = Residues::from_flat(&p, &flat);
        let s = c(0.0, 1.7);
        let mut row = Vec::new();
        basis_row(&p, s, &mut row);
        let via_basis: Complex = row.iter().zip(&flat).map(|(phi, &w)| *phi * w).sum();
        assert!((r.eval(&p, s) - via_basis).abs() < 1e-13);
    }

    #[test]
    fn basis_matrix_shape() {
        let p = PoleSet::initial_imag_axis(4, 1.0, 100.0, 0.01, true);
        let samples: Vec<Complex> = (1..=5).map(|i| c(0.0, i as f64)).collect();
        let m = basis_matrix(&p, &samples);
        assert_eq!(m.len(), 5);
        assert!(m.iter().all(|r| r.len() == 4));
    }
}
