//! Recovery tests: vector fitting must reconstruct synthetic rational
//! functions with known poles to near machine precision, on both axes.

use rvf_numerics::{c, jw_grid, linspace, logspace, sort_eigenvalues, Complex};
use rvf_vecfit::{fit, fit_single, VfOptions, Weighting};

/// Partial-fraction evaluation helper for building synthetic data.
fn pf(poles: &[Complex], residues: &[Complex], d: f64, s: Complex) -> Complex {
    poles
        .iter()
        .zip(residues)
        .map(|(&a, &r)| r * (s - a).inv())
        .fold(Complex::from_re(d), |acc, v| acc + v)
}

#[test]
fn recovers_three_pole_siso_frequency_response() {
    // Stable system: one real pole, one complex pair.
    let poles = [c(-5.0, 0.0), c(-2.0, 30.0), c(-2.0, -30.0)];
    let residues = [c(4.0, 0.0), c(1.0, 2.0), c(1.0, -2.0)];
    let samples = jw_grid(&logspace(-1.0, 2.5, 120));
    let data: Vec<Complex> = samples.iter().map(|&s| pf(&poles, &residues, 0.0, s)).collect();

    let fit = fit_single(&samples, &data, &VfOptions::frequency(3)).unwrap();
    assert!(fit.rms_error < 1e-9, "rms {}", fit.rms_error);
    assert!(fit.model.poles().is_stable());

    let mut got = fit.model.poles().to_complex();
    let mut want = poles.to_vec();
    sort_eigenvalues(&mut got);
    sort_eigenvalues(&mut want);
    for (g, w) in got.iter().zip(&want) {
        assert!((*g - *w).abs() < 1e-6 * w.abs(), "pole {g:?} vs {w:?}");
    }
}

#[test]
fn recovers_poles_across_decades() {
    // Poles spread over five decades, like an analog macromodel.
    let poles =
        [c(-1.0e3, 0.0), c(-5.0e4, 3.0e5), c(-5.0e4, -3.0e5), c(-2.0e6, 4.0e7), c(-2.0e6, -4.0e7)];
    let residues =
        [c(2.0e3, 0.0), c(1.0e4, -3.0e4), c(1.0e4, 3.0e4), c(5.0e5, 1.0e6), c(5.0e5, -1.0e6)];
    let samples = jw_grid(&logspace(1.0, 8.5, 200));
    let data: Vec<Complex> = samples.iter().map(|&s| pf(&poles, &residues, 0.0, s)).collect();

    let fit = fit_single(&samples, &data, &VfOptions::frequency(5).with_iterations(15)).unwrap();
    let scale = data.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    assert!(fit.rms_error < 1e-8 * scale, "rms {} scale {}", fit.rms_error, scale);
}

#[test]
fn recovers_constant_and_linear_terms() {
    let poles = [c(-10.0, 0.0)];
    let residues = [c(5.0, 0.0)];
    let samples = jw_grid(&linspace(0.1, 20.0, 80));
    let data: Vec<Complex> =
        samples.iter().map(|&s| pf(&poles, &residues, 2.5, s) + s * 0.125).collect();
    let opts = VfOptions::frequency(1).with_const(true).with_linear(true);
    let fit = fit_single(&samples, &data, &opts).unwrap();
    assert!(fit.rms_error < 1e-9, "rms {}", fit.rms_error);
    let t = &fit.model.terms()[0];
    assert!((t.d - 2.5).abs() < 1e-7, "d = {}", t.d);
    assert!((t.e - 0.125).abs() < 1e-9, "e = {}", t.e);
}

#[test]
fn common_pole_fit_with_parameterized_residues() {
    // K responses sharing poles with smoothly varying residues — the
    // exact structure of TFT data (state-dependent residues, fixed poles).
    let poles = [c(-3.0, 25.0), c(-3.0, -25.0), c(-8.0, 0.0)];
    let samples = jw_grid(&logspace(-0.5, 2.0, 90));
    let k_count = 24;
    let mut data = Vec::new();
    for k in 0..k_count {
        let x = k as f64 / (k_count - 1) as f64; // "state" in [0, 1]
        let residues =
            [c(1.0 + x * x, 0.5 * x), c(1.0 + x * x, -0.5 * x), c(2.0 * (1.0 - 0.3 * x), 0.0)];
        data.push(samples.iter().map(|&s| pf(&poles, &residues, 0.0, s)).collect());
    }
    let fit = fit(&samples, &data, &VfOptions::frequency(3).with_iterations(12)).unwrap();
    assert!(fit.rms_error < 1e-8, "rms {}", fit.rms_error);
    assert_eq!(fit.model.n_responses(), k_count);

    // The recovered residue trajectory of the real pole must follow
    // 2·(1 − 0.3x).
    let poles_got = fit.model.poles().to_complex();
    // Find which entry is the real pole.
    let real_entry = fit
        .model
        .poles()
        .entries()
        .iter()
        .position(|e| matches!(e, rvf_vecfit::PoleEntry::Real(_)))
        .expect("real pole present");
    let traj = fit.model.residue_trajectory(real_entry);
    for (k, r) in traj.iter().enumerate() {
        let x = k as f64 / (k_count - 1) as f64;
        let want = 2.0 * (1.0 - 0.3 * x);
        assert!((r.re - want).abs() < 1e-6, "trajectory at {x}: {} vs {want}", r.re);
        assert!(r.im.abs() < 1e-6);
    }
    let _ = poles_got;
}

#[test]
fn real_axis_fit_of_smooth_nonlinearity() {
    // Fit a real function of a real variable with conjugate-pair poles —
    // the state-dimension step of the RVF recursion. Target: a saturating
    // conductance shape (derivative of tanh).
    let xs: Vec<Complex> = linspace(0.4, 1.4, 101).into_iter().map(Complex::from_re).collect();
    let g = |x: f64| 1.0 - (2.0 * (x - 0.9)).tanh().powi(2); // sech²
    let data: Vec<Complex> = xs.iter().map(|s| Complex::from_re(g(s.re))).collect();

    let opts = VfOptions::state(8).with_iterations(15);
    let fit = fit_single(&xs, &data, &opts).unwrap();
    assert!(fit.rms_error < 1e-6, "rms {}", fit.rms_error);

    // All poles must be complex pairs, off the real axis.
    for e in fit.model.poles().entries() {
        match e {
            rvf_vecfit::PoleEntry::Pair(a) => {
                assert!(a.im > 0.0, "pair pole on the real axis: {a:?}");
            }
            rvf_vecfit::PoleEntry::Real(_) => panic!("real pole in a real-axis fit"),
        }
    }
    // The fitted function must be real-valued on the axis.
    for &x in &xs {
        let v = fit.model.eval(0, x);
        assert!(v.im.abs() < 1e-9, "fit not real at {x:?}: {v:?}");
    }
}

#[test]
fn real_axis_fit_multiple_trajectories() {
    // Several residue trajectories fitted with common state poles.
    let xs: Vec<Complex> = linspace(-1.0, 1.0, 81).into_iter().map(Complex::from_re).collect();
    let fns: [Box<dyn Fn(f64) -> f64>; 3] = [
        Box::new(|x: f64| 1.0 / (1.0 + 4.0 * x * x)),
        Box::new(|x: f64| x / (1.0 + 4.0 * x * x)),
        Box::new(|x: f64| (0.7 * x).sin()),
    ];
    let data: Vec<Vec<Complex>> =
        fns.iter().map(|f| xs.iter().map(|s| Complex::from_re(f(s.re))).collect()).collect();
    let fit = fit(&xs, &data, &VfOptions::state(10).with_iterations(12)).unwrap();
    assert!(fit.rms_error < 1e-5, "rms {}", fit.rms_error);
}

#[test]
fn inverse_magnitude_weighting_improves_low_gain_fit() {
    // A response spanning 80 dB: relative weighting should reduce the
    // relative error at the low-magnitude end.
    let poles = [c(-1.0e2, 0.0), c(-1.0e5, 1.0e6), c(-1.0e5, -1.0e6)];
    let residues = [c(1.0e2, 0.0), c(1.0, 1.0), c(1.0, -1.0)];
    let samples = jw_grid(&logspace(0.0, 7.0, 150));
    let data: Vec<Complex> = samples.iter().map(|&s| pf(&poles, &residues, 0.0, s)).collect();

    let uni = fit_single(&samples, &data, &VfOptions::frequency(3)).unwrap();
    let inv = fit_single(
        &samples,
        &data,
        &VfOptions::frequency(3).with_weighting(Weighting::InverseMagnitude),
    )
    .unwrap();

    // Relative error at the highest frequency (smallest magnitude).
    let s_hi = *samples.last().unwrap();
    let h_true = *data.last().unwrap();
    let rel = |m: &rvf_vecfit::RationalModel| (m.eval(0, s_hi) - h_true).abs() / h_true.abs();
    assert!(
        rel(&inv.model) <= rel(&uni.model) * 10.0,
        "weighted fit unexpectedly catastrophic: {} vs {}",
        rel(&inv.model),
        rel(&uni.model)
    );
    assert!(rel(&inv.model) < 1e-4);
}

#[test]
fn classic_unrelaxed_variant_also_converges() {
    let poles = [c(-4.0, 18.0), c(-4.0, -18.0)];
    let residues = [c(2.0, 1.0), c(2.0, -1.0)];
    let samples = jw_grid(&linspace(0.5, 40.0, 70));
    let data: Vec<Complex> = samples.iter().map(|&s| pf(&poles, &residues, 0.0, s)).collect();
    let fit = fit_single(
        &samples,
        &data,
        &VfOptions::frequency(2).with_relaxed(false).with_iterations(15),
    )
    .unwrap();
    assert!(fit.rms_error < 1e-9, "rms {}", fit.rms_error);
}

#[test]
fn stability_enforced_even_for_unstable_data() {
    // Data generated by an *unstable* pole: the fit must still return
    // stable poles (the model trades accuracy for stability).
    let poles = [c(2.0, 10.0), c(2.0, -10.0)];
    let residues = [c(1.0, 0.0), c(1.0, 0.0)];
    let samples = jw_grid(&linspace(0.5, 30.0, 60));
    let data: Vec<Complex> = samples.iter().map(|&s| pf(&poles, &residues, 0.0, s)).collect();
    let fit = fit_single(&samples, &data, &VfOptions::frequency(4)).unwrap();
    assert!(fit.model.poles().is_stable());
}

#[test]
fn error_paths() {
    use rvf_vecfit::VecfitError;
    let samples = jw_grid(&linspace(1.0, 10.0, 10));
    // Empty.
    assert!(matches!(fit(&samples, &[], &VfOptions::frequency(2)), Err(VecfitError::EmptyData)));
    // Length mismatch.
    assert!(matches!(
        fit(&samples, &[vec![Complex::ZERO; 5]], &VfOptions::frequency(2)),
        Err(VecfitError::LengthMismatch { .. })
    ));
    // Too few samples for many poles.
    assert!(matches!(
        fit(&samples, &[vec![Complex::ONE; 10]], &VfOptions::frequency(18)),
        Err(VecfitError::TooFewSamples { .. })
    ));
    // Non-finite data.
    let mut bad = vec![Complex::ONE; 10];
    bad[3] = c(f64::NAN, 0.0);
    assert!(matches!(fit(&samples, &[bad], &VfOptions::frequency(2)), Err(VecfitError::NonFinite)));
    // Degenerate grid (all DC) on the imaginary axis.
    let dc = vec![Complex::ZERO; 10];
    assert!(matches!(
        fit(&dc, &[vec![Complex::ONE; 10]], &VfOptions::frequency(2)),
        Err(VecfitError::DegenerateGrid)
    ));
}

#[test]
fn overfit_pole_count_remains_accurate() {
    // More poles than the true order: extra poles should be benign.
    let poles = [c(-2.0, 0.0)];
    let residues = [c(1.0, 0.0)];
    let samples = jw_grid(&logspace(-1.0, 1.5, 60));
    let data: Vec<Complex> = samples.iter().map(|&s| pf(&poles, &residues, 0.0, s)).collect();
    let fit = fit_single(&samples, &data, &VfOptions::frequency(6)).unwrap();
    assert!(fit.rms_error < 1e-7, "rms {}", fit.rms_error);
    assert!(fit.model.poles().is_stable());
}

#[test]
fn state_poles_are_clamped_to_the_interval() {
    // Low-order data (a line) tempts the relocation into sending poles
    // to huge magnitudes; the clamp must keep them near the interval so
    // downstream logarithmic primitives stay well conditioned.
    let xs: Vec<rvf_numerics::Complex> =
        linspace(0.0, 1.0, 41).into_iter().map(rvf_numerics::Complex::from_re).collect();
    let data: Vec<rvf_numerics::Complex> =
        xs.iter().map(|x| rvf_numerics::Complex::from_re(1.0 + x.re)).collect();
    let fit = fit_single(&xs, &data, &VfOptions::state(4).with_iterations(10)).unwrap();
    // Clamping trades a little accuracy for primitive conditioning;
    // 1e-3 relative on unit-scale data is ample for a line.
    assert!(fit.rms_error < 1e-3, "rms {}", fit.rms_error);
    for p in fit.model.poles().to_complex() {
        assert!(p.re >= -0.5 - 1e-9 && p.re <= 1.5 + 1e-9, "pole escaped the interval: {p:?}");
        assert!(p.im.abs() <= 2.0 + 1e-9, "pole too far off axis: {p:?}");
    }
}

#[test]
fn displacement_decreases_with_iterations() {
    // Convergence diagnostics: more relocation rounds → settled poles.
    let poles = [c(-2.0, 15.0), c(-2.0, -15.0), c(-7.0, 40.0), c(-7.0, -40.0)];
    let residues = [c(1.0, 1.0), c(1.0, -1.0), c(2.0, 0.5), c(2.0, -0.5)];
    let samples = jw_grid(&logspace(0.0, 2.0, 80));
    let data: Vec<rvf_numerics::Complex> =
        samples.iter().map(|&s| pf(&poles, &residues, 0.0, s)).collect();
    let short = fit_single(&samples, &data, &VfOptions::frequency(4).with_iterations(2)).unwrap();
    let long = fit_single(&samples, &data, &VfOptions::frequency(4).with_iterations(12)).unwrap();
    assert!(
        long.final_displacement <= short.final_displacement.max(1e-12),
        "no convergence: {} vs {}",
        long.final_displacement,
        short.final_displacement
    );
    assert!(long.rms_error <= short.rms_error * 1.5 + 1e-12);
}
