//! Property-based tests: vector fitting recovers randomly generated
//! stable systems, and its invariants hold for arbitrary valid inputs.

use proptest::prelude::*;
use rvf_numerics::{c, jw_grid, linspace, logspace, Complex};
use rvf_vecfit::{fit_single, realize, Form, PoleSet, Residues, VfOptions};

fn pf(poles: &[Complex], residues: &[Complex], s: Complex) -> Complex {
    poles.iter().zip(residues).map(|(&a, &r)| r * (s - a).inv()).sum()
}

/// Strategy: a random stable system of one real pole and one complex
/// pair with bounded residues.
fn stable_system() -> impl Strategy<Value = (Vec<Complex>, Vec<Complex>)> {
    (
        0.5..50.0f64, // real pole magnitude
        0.1..20.0f64, // pair damping
        5.0..80.0f64, // pair frequency
        -5.0..5.0f64, // real residue
        -3.0..3.0f64, // pair residue re
        -3.0..3.0f64, // pair residue im
    )
        .prop_map(|(pr, sg, om, r0, rr, ri)| {
            let poles = vec![c(-pr, 0.0), c(-sg, om), c(-sg, -om)];
            let residues = vec![c(r0, 0.0), c(rr, ri), c(rr, -ri)];
            (poles, residues)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn recovers_random_stable_systems((poles, residues) in stable_system()) {
        // Avoid residues that vanish (unidentifiable poles).
        prop_assume!(residues[0].abs() > 0.05 && residues[1].abs() > 0.05);
        let samples = jw_grid(&logspace(-1.0, 2.2, 100));
        let data: Vec<Complex> = samples.iter().map(|&s| pf(&poles, &residues, s)).collect();
        let scale = data.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        prop_assume!(scale > 1e-3);
        let fit = fit_single(&samples, &data, &VfOptions::frequency(3).with_iterations(12)).unwrap();
        prop_assert!(fit.rms_error < 1e-6 * scale.max(1.0),
            "rms {} for poles {poles:?}", fit.rms_error);
        prop_assert!(fit.model.poles().is_stable());
    }

    #[test]
    fn fitted_model_is_hermitian(seed in 0u64..1000) {
        // Any fitted model must satisfy H(s*) = H(s)* by construction.
        let poles = vec![c(-1.0 - (seed % 7) as f64, 10.0), c(-1.0 - (seed % 7) as f64, -10.0)];
        let residues = vec![c(1.0, 0.3), c(1.0, -0.3)];
        let samples = jw_grid(&linspace(0.5, 30.0, 60));
        let data: Vec<Complex> = samples.iter().map(|&s| pf(&poles, &residues, s)).collect();
        let fit = fit_single(&samples, &data, &VfOptions::frequency(2)).unwrap();
        let s = c(0.0, 3.7 + (seed % 13) as f64);
        let a = fit.model.eval(0, s);
        let b = fit.model.eval(0, s.conj());
        prop_assert!((a.conj() - b).abs() < 1e-10 * a.abs().max(1.0));
    }

    #[test]
    fn realization_forms_agree(re in -4.0..-0.1f64, im in 0.5..20.0f64,
                               rr in -3.0..3.0f64, ri in -3.0..3.0f64,
                               pr in -5.0..-0.1f64, rp in -3.0..3.0f64) {
        // Classic and input-shifted realizations are the same transfer
        // function for arbitrary poles/residues (paper eq. 14).
        let poles = PoleSet::new(vec![
            rvf_vecfit::PoleEntry::Pair(c(re, im)),
            rvf_vecfit::PoleEntry::Real(pr),
        ]);
        let res = Residues(vec![c(rr, ri), c(rp, 0.0)]);
        let classic = realize(&poles, &res, 0.0, Form::Classic);
        let shifted = realize(&poles, &res, 0.0, Form::InputShifted);
        for i in 1..6 {
            let s = c(0.0, i as f64 * 1.7);
            prop_assert!((classic.eval(s) - shifted.eval(s)).abs() < 1e-10);
        }
    }

    #[test]
    fn real_axis_fit_stays_real(width in 0.2..3.0f64, shift in -0.5..0.5f64) {
        // Random bump function on the real axis; fitted model must be
        // real-valued on the axis and pole-free on it.
        let xs: Vec<Complex> = linspace(-1.0, 1.0, 61).into_iter().map(Complex::from_re).collect();
        let data: Vec<Complex> = xs
            .iter()
            .map(|x| Complex::from_re(1.0 / (1.0 + width * (x.re - shift).powi(2))))
            .collect();
        let fit = fit_single(&xs, &data, &VfOptions::state(6).with_iterations(10)).unwrap();
        for &x in &xs {
            let v = fit.model.eval(0, x);
            prop_assert!(v.im.abs() < 1e-8, "imaginary leak {v:?}");
            prop_assert!(v.is_finite());
        }
        for p in fit.model.poles().to_complex() {
            prop_assert!(p.im.abs() > 1e-9, "pole on the real axis: {p:?}");
        }
    }

    #[test]
    fn rms_error_is_measured_not_invented(extra_poles in 1usize..4) {
        // The reported rms must match an independent recomputation.
        let poles = vec![c(-2.0, 15.0), c(-2.0, -15.0)];
        let residues = vec![c(1.0, 1.0), c(1.0, -1.0)];
        let samples = jw_grid(&linspace(1.0, 40.0, 50));
        let data: Vec<Complex> = samples.iter().map(|&s| pf(&poles, &residues, s)).collect();
        let fit = fit_single(&samples, &data, &VfOptions::frequency(2 + extra_poles)).unwrap();
        let mut acc = 0.0;
        for (s, h) in samples.iter().zip(&data) {
            acc += (fit.model.eval(0, *s) - *h).norm_sqr();
        }
        let rms = (acc / samples.len() as f64).sqrt();
        prop_assert!((rms - fit.rms_error).abs() <= 1e-12 * rms.max(1e-30) + 1e-300);
    }
}
