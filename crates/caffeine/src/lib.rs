//! # rvf-caffeine
//!
//! A miniature reimplementation of CAFFEINE (McConaghy & Gielen,
//! *Template-free symbolic performance modeling of analog circuits via
//! canonical-form functions and genetic programming*, TCAD 2009) — the
//! baseline the DATE 2013 paper compares Recursive Vector Fitting
//! against (Fig. 8 and Table I).
//!
//! The crate provides:
//!
//! * canonical-form expressions (weighted sums of products of powers and
//!   guarded unary operators) with linear weights solved by least
//!   squares ([`expr`], [`gp`]);
//! * a bi-objective (error, complexity) GP engine ([`gp::evolve`]);
//! * an **integrability analyzer** ([`expr::Integrability`]): only the
//!   polynomial subset has closed-form antiderivatives, which is exactly
//!   the automation gap the paper reports for CAFFEINE ("the indefinite
//!   integral … needs to be computed manually, if it can be computed
//!   altogether");
//! * the CAFFEINE Hammerstein baseline ([`model`]): VF frequency poles +
//!   GP residue regression, with simulation available only for
//!   integrable stages.
//!
//! # Examples
//!
//! Evolve a canonical-form fit of a quadratic:
//!
//! ```
//! use rvf_caffeine::{evolve, GpOptions};
//! use rvf_numerics::linspace;
//!
//! let xs = linspace(-1.0, 1.0, 40);
//! let ys: Vec<f64> = xs.iter().map(|&x| 1.0 + 2.0 * x * x).collect();
//! let best = evolve(&xs, &ys, &GpOptions { generations: 15, ..Default::default() });
//! assert!(best.rmse < 1e-8);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod expr;
pub mod gp;
pub mod model;

pub use expr::{BasisTerm, CanonicalForm, Factor, Integrability, UnaryOp};
pub use gp::{evolve, GpOptions, Individual};
pub use model::{
    build_caffeine_hammerstein, CafBlock, CaffeineHammerstein, CaffeineOptions, CaffeineStage,
};
