//! The genetic-programming engine evolving canonical-form structures.
//!
//! Bi-objective (error, complexity) evolution in the CAFFEINE style:
//! structure by variation operators, weights always by linear least
//! squares, selection by Pareto-aware tournament with a complexity
//! pressure knob.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rvf_numerics::{lstsq_ridge, Mat};

use crate::expr::{BasisTerm, CanonicalForm, Factor, UnaryOp};

/// GP configuration.
#[derive(Debug, Clone)]
pub struct GpOptions {
    /// Population size.
    pub population: usize,
    /// Generations to evolve.
    pub generations: usize,
    /// Maximum number of basis terms per individual.
    pub max_terms: usize,
    /// Allow unary operator factors (disable to force the analytically
    /// integrable polynomial subset).
    pub allow_operators: bool,
    /// Maximum power of plain `x^p` factors.
    pub max_power: u32,
    /// Complexity pressure: fitness = rmse · (1 + pressure·complexity).
    pub complexity_pressure: f64,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

impl Default for GpOptions {
    fn default() -> Self {
        Self {
            population: 64,
            generations: 60,
            max_terms: 6,
            allow_operators: true,
            max_power: 4,
            complexity_pressure: 1e-3,
            seed: 0xCAFF_E14E,
        }
    }
}

/// An evolved individual with its fitted weights and scores.
#[derive(Debug, Clone)]
pub struct Individual {
    /// The model.
    pub form: CanonicalForm,
    /// Root-mean-square error on the training data.
    pub rmse: f64,
    /// Structural complexity.
    pub complexity: usize,
}

impl Individual {
    /// Pressure-adjusted fitness. The floor keeps complexity pressure
    /// meaningful once the error reaches numerical noise: without it,
    /// two exact fits of different sizes would be ranked by round-off.
    fn scalar_fitness(&self, pressure: f64, floor: f64) -> f64 {
        self.rmse.max(floor) * (1.0 + pressure * self.complexity as f64)
    }
}

/// Evolves a canonical-form model for samples `(x, y)`.
///
/// Returns the best individual found (lowest pressure-adjusted error).
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths or are empty.
pub fn evolve(xs: &[f64], ys: &[f64], opts: &GpOptions) -> Individual {
    assert_eq!(xs.len(), ys.len(), "sample lengths differ");
    assert!(!xs.is_empty(), "need samples");
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let data_rms = (ys.iter().map(|v| v * v).sum::<f64>() / ys.len() as f64).sqrt();
    let floor = (1e-12 * data_rms).max(1e-300);
    let mut population: Vec<Individual> = (0..opts.population)
        .map(|_| {
            let form = random_form(&mut rng, opts, xs);
            score(form, xs, ys)
        })
        .collect();
    // Seed the population with the pure polynomial ladder — CAFFEINE
    // initializes with simple canonical templates.
    for deg in 0..=opts.max_power.min(3) {
        let mut terms = vec![BasisTerm::constant()];
        for p in 1..=deg {
            terms.push(BasisTerm::power(p));
        }
        population.push(score(CanonicalForm { terms, weights: Vec::new() }, xs, ys));
    }

    for _gen in 0..opts.generations {
        let mut offspring = Vec::with_capacity(opts.population);
        while offspring.len() < opts.population {
            let a = tournament(&population, &mut rng, opts.complexity_pressure, floor);
            let child_form = if rng.gen_bool(0.35) {
                let b = tournament(&population, &mut rng, opts.complexity_pressure, floor);
                crossover(&population[a].form, &population[b].form, &mut rng, opts)
            } else {
                mutate(&population[a].form, &mut rng, opts, xs)
            };
            offspring.push(score(child_form, xs, ys));
        }
        population.extend(offspring);
        // Environmental selection: keep the best by adjusted fitness,
        // always preserving the best-by-rmse and best-by-complexity
        // extremes (a tiny elitist Pareto front).
        population.sort_by(|p, q| {
            p.scalar_fitness(opts.complexity_pressure, floor)
                .partial_cmp(&q.scalar_fitness(opts.complexity_pressure, floor))
                .unwrap_or(core::cmp::Ordering::Equal)
        });
        let best_rmse = population
            .iter()
            .enumerate()
            .min_by(|(_, p), (_, q)| {
                p.rmse.partial_cmp(&q.rmse).unwrap_or(core::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        if best_rmse >= opts.population {
            let keep = population[best_rmse].clone();
            population[opts.population - 1] = keep;
        }
        population.truncate(opts.population.max(1));
    }
    population
        .into_iter()
        .min_by(|p, q| {
            p.scalar_fitness(opts.complexity_pressure, floor)
                .partial_cmp(&q.scalar_fitness(opts.complexity_pressure, floor))
                .unwrap_or(core::cmp::Ordering::Equal)
        })
        .expect("nonempty population")
}

/// Solves the linear weights by (ridge-stabilized) least squares and
/// scores the individual.
fn score(mut form: CanonicalForm, xs: &[f64], ys: &[f64]) -> Individual {
    if form.terms.is_empty() {
        form.terms.push(BasisTerm::constant());
    }
    let rows = xs.len();
    let cols = form.terms.len();
    let mut design = Mat::zeros(rows, cols);
    for (i, &x) in xs.iter().enumerate() {
        for (j, t) in form.terms.iter().enumerate() {
            let v = t.eval(x);
            design[(i, j)] = if v.is_finite() { v } else { 1e30 };
        }
    }
    let scale = design.norm_fro().max(1.0);
    let weights = lstsq_ridge(&design, ys, (1e-9 * scale) * (1e-9 * scale))
        .unwrap_or_else(|_| vec![0.0; cols]);
    form.weights = weights;
    let mut err = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let d = form.eval(x) - y;
        err += d * d;
    }
    let rmse = (err / rows as f64).sqrt();
    let rmse = if rmse.is_finite() { rmse } else { f64::INFINITY };
    let complexity = form.complexity();
    Individual { form, rmse, complexity }
}

fn tournament(pop: &[Individual], rng: &mut StdRng, pressure: f64, floor: f64) -> usize {
    let a = rng.gen_range(0..pop.len());
    let b = rng.gen_range(0..pop.len());
    if pop[a].scalar_fitness(pressure, floor) <= pop[b].scalar_fitness(pressure, floor) {
        a
    } else {
        b
    }
}

fn random_inner_poly(rng: &mut StdRng, x_scale: f64) -> [f64; 3] {
    [
        rng.gen_range(-2.0..2.0),
        rng.gen_range(-2.0..2.0) / x_scale.max(1e-12),
        if rng.gen_bool(0.5) {
            rng.gen_range(-2.0..2.0) / (x_scale * x_scale).max(1e-12)
        } else {
            0.0
        },
    ]
}

fn random_term(rng: &mut StdRng, opts: &GpOptions, x_scale: f64) -> BasisTerm {
    let mut factors = Vec::new();
    if rng.gen_bool(0.8) {
        factors.push(Factor::Power(rng.gen_range(1..=opts.max_power)));
    }
    if opts.allow_operators && rng.gen_bool(0.5) {
        let op = UnaryOp::ALL[rng.gen_range(0..UnaryOp::ALL.len())];
        factors.push(Factor::Op(op, random_inner_poly(rng, x_scale)));
    }
    BasisTerm { factors }
}

fn random_form(rng: &mut StdRng, opts: &GpOptions, xs: &[f64]) -> CanonicalForm {
    let x_scale = xs.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    let n = rng.gen_range(1..=opts.max_terms.min(4));
    let mut terms = vec![BasisTerm::constant()];
    for _ in 0..n {
        terms.push(random_term(rng, opts, x_scale));
    }
    CanonicalForm { terms, weights: Vec::new() }
}

fn mutate(parent: &CanonicalForm, rng: &mut StdRng, opts: &GpOptions, xs: &[f64]) -> CanonicalForm {
    let x_scale = xs.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    let mut terms = parent.terms.clone();
    match rng.gen_range(0..4) {
        0 if terms.len() < opts.max_terms => {
            terms.push(random_term(rng, opts, x_scale));
        }
        1 if terms.len() > 1 => {
            let i = rng.gen_range(1..terms.len());
            terms.remove(i);
        }
        2 => {
            // Perturb one factor of one term.
            let i = rng.gen_range(0..terms.len());
            if let Some(f) = terms[i].factors.first_mut() {
                match f {
                    Factor::Power(p) => {
                        *p = (*p + rng.gen_range(0..=2u32)).clamp(1, opts.max_power);
                    }
                    Factor::Op(_, c) => {
                        let j = rng.gen_range(0..3usize);
                        c[j] += rng.gen_range(-0.3..0.3) * (1.0 + c[j].abs());
                    }
                }
            } else {
                terms[i] = random_term(rng, opts, x_scale);
            }
        }
        _ => {
            let i = rng.gen_range(0..terms.len());
            terms[i] = random_term(rng, opts, x_scale);
        }
    }
    CanonicalForm { terms, weights: Vec::new() }
}

fn crossover(
    a: &CanonicalForm,
    b: &CanonicalForm,
    rng: &mut StdRng,
    opts: &GpOptions,
) -> CanonicalForm {
    let mut terms = Vec::new();
    for t in &a.terms {
        if rng.gen_bool(0.5) {
            terms.push(t.clone());
        }
    }
    for t in &b.terms {
        if rng.gen_bool(0.5) && terms.len() < opts.max_terms {
            terms.push(t.clone());
        }
    }
    if terms.is_empty() {
        terms.push(BasisTerm::constant());
    }
    CanonicalForm { terms, weights: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvf_numerics::linspace;

    #[test]
    fn recovers_quadratic_exactly() {
        let xs = linspace(-1.0, 1.0, 60);
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 - 3.0 * x + 0.5 * x * x).collect();
        let opts = GpOptions { generations: 25, population: 40, ..Default::default() };
        let best = evolve(&xs, &ys, &opts);
        assert!(best.rmse < 1e-10, "rmse {}", best.rmse);
    }

    #[test]
    fn fits_saturating_curve_reasonably() {
        let xs = linspace(0.4, 1.4, 80);
        let ys: Vec<f64> = xs.iter().map(|&x| (3.0 * (x - 0.9)).tanh()).collect();
        let best = evolve(&xs, &ys, &GpOptions::default());
        let span = 2.0;
        assert!(best.rmse / span < 0.05, "rel rmse {}", best.rmse / span);
    }

    #[test]
    fn polynomial_only_mode_stays_integrable() {
        use crate::expr::Integrability;
        let xs = linspace(-1.0, 1.0, 50);
        let ys: Vec<f64> = xs.iter().map(|&x| x.sin()).collect();
        let opts = GpOptions { allow_operators: false, generations: 20, ..Default::default() };
        let best = evolve(&xs, &ys, &opts);
        assert_eq!(best.form.integrability(), Integrability::Closed);
        assert!(best.form.antiderivative().is_some());
        assert!(best.rmse < 0.05, "rmse {}", best.rmse);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let xs = linspace(0.0, 1.0, 30);
        let ys: Vec<f64> = xs.iter().map(|&x| x * x).collect();
        let opts = GpOptions { generations: 10, population: 20, seed: 7, ..Default::default() };
        let a = evolve(&xs, &ys, &opts);
        let b = evolve(&xs, &ys, &opts);
        assert_eq!(a.form, b.form);
        assert_eq!(a.rmse, b.rmse);
    }

    #[test]
    fn complexity_pressure_prefers_simpler_models() {
        let xs = linspace(-1.0, 1.0, 60);
        let ys: Vec<f64> = xs.iter().map(|&x| 1.0 + x).collect();
        let heavy = GpOptions { complexity_pressure: 1.0, generations: 25, ..Default::default() };
        let best = evolve(&xs, &ys, &heavy);
        // A line fits exactly; pressure should keep the model tiny.
        assert!(best.complexity <= 6, "complexity {}", best.complexity);
        assert!(best.rmse < 1e-8);
    }
}
