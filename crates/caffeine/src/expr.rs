//! CAFFEINE canonical-form expressions (McConaghy & Gielen 2009 — the
//! paper’s reference \[7\], reimplemented in miniature).
//!
//! A model is a *generalized linear* combination of basis terms
//!
//! ```text
//! f(x) = w₀ + Σ_i w_i · B_i(x)
//! ```
//!
//! where each basis term is a product of factors: integer powers of `x`
//! and unary operators applied to low-degree inner polynomials. The GP
//! engine evolves only the term *structure*; the weights `w_i` are
//! always solved by linear least squares — CAFFEINE's defining trick.

use rvf_numerics::Poly;

/// Unary operators available to the canonical form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `log₁₀(|arg| + ε)` — CAFFEINE's workhorse for smooth saturation.
    Log10Abs,
    /// `exp(clamp(arg))`.
    Exp,
    /// `1 / (arg)` guarded away from zero.
    Inv,
    /// `√|arg|`.
    SqrtAbs,
    /// `tanh(arg)`.
    Tanh,
}

impl UnaryOp {
    /// Applies the operator (guarded against singular arguments).
    pub fn apply(self, v: f64) -> f64 {
        match self {
            UnaryOp::Log10Abs => (v.abs() + 1e-30).log10(),
            UnaryOp::Exp => v.clamp(-40.0, 40.0).exp(),
            UnaryOp::Inv => {
                let d = if v.abs() < 1e-9 { 1e-9 * v.signum_or_one() } else { v };
                1.0 / d
            }
            UnaryOp::SqrtAbs => v.abs().sqrt(),
            UnaryOp::Tanh => v.tanh(),
        }
    }

    /// All operators (for random choice).
    pub const ALL: [UnaryOp; 5] =
        [UnaryOp::Log10Abs, UnaryOp::Exp, UnaryOp::Inv, UnaryOp::SqrtAbs, UnaryOp::Tanh];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            UnaryOp::Log10Abs => "log10",
            UnaryOp::Exp => "exp",
            UnaryOp::Inv => "inv",
            UnaryOp::SqrtAbs => "sqrt",
            UnaryOp::Tanh => "tanh",
        }
    }
}

trait SignumOrOne {
    fn signum_or_one(self) -> f64;
}
impl SignumOrOne for f64 {
    fn signum_or_one(self) -> f64 {
        if self == 0.0 {
            1.0
        } else {
            self.signum()
        }
    }
}

/// One multiplicative factor of a basis term.
#[derive(Debug, Clone, PartialEq)]
pub enum Factor {
    /// `x^p` with `p ≥ 1` (the constant is the term weight itself).
    Power(u32),
    /// `op(c₀ + c₁·x + c₂·x²)`.
    Op(UnaryOp, [f64; 3]),
}

impl Factor {
    /// Evaluates the factor at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        match self {
            Factor::Power(p) => x.powi(*p as i32),
            Factor::Op(op, c) => op.apply(c[0] + c[1] * x + c[2] * x * x),
        }
    }

    /// Structural complexity cost (CAFFEINE penalizes operators more
    /// than raw powers).
    pub fn complexity(&self) -> usize {
        match self {
            Factor::Power(p) => *p as usize,
            Factor::Op(_, _) => 4,
        }
    }

    /// `true` for plain powers (the analytically integrable subset).
    pub fn is_polynomial(&self) -> bool {
        matches!(self, Factor::Power(_))
    }
}

/// A product of factors; the empty product is the constant term `1`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BasisTerm {
    /// The factors.
    pub factors: Vec<Factor>,
}

impl BasisTerm {
    /// The constant term.
    pub fn constant() -> Self {
        Self { factors: Vec::new() }
    }

    /// A plain power term `x^p`.
    pub fn power(p: u32) -> Self {
        Self { factors: vec![Factor::Power(p)] }
    }

    /// Evaluates the product at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.factors.iter().map(|f| f.eval(x)).product()
    }

    /// Structural complexity.
    pub fn complexity(&self) -> usize {
        1 + self.factors.iter().map(Factor::complexity).sum::<usize>()
    }

    /// `true` if the term is a pure polynomial in `x`.
    pub fn is_polynomial(&self) -> bool {
        self.factors.iter().all(Factor::is_polynomial)
    }

    /// Total power when polynomial.
    pub fn total_power(&self) -> Option<u32> {
        if !self.is_polynomial() {
            return None;
        }
        Some(
            self.factors
                .iter()
                .map(|f| match f {
                    Factor::Power(p) => *p,
                    Factor::Op(..) => 0,
                })
                .sum(),
        )
    }

    /// Human-readable form.
    pub fn to_string_repr(&self) -> String {
        if self.factors.is_empty() {
            return "1".to_string();
        }
        self.factors
            .iter()
            .map(|f| match f {
                Factor::Power(1) => "x".to_string(),
                Factor::Power(p) => format!("x^{p}"),
                Factor::Op(op, c) => {
                    format!("{}({:.3e} + {:.3e}*x + {:.3e}*x^2)", op.name(), c[0], c[1], c[2])
                }
            })
            .collect::<Vec<_>>()
            .join("*")
    }
}

/// A complete canonical-form model: weighted sum of terms.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CanonicalForm {
    /// Basis terms (the first is conventionally the constant).
    pub terms: Vec<BasisTerm>,
    /// Linear weights, one per term (solved by least squares).
    pub weights: Vec<f64>,
}

/// Whether a canonical form has a closed-form antiderivative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Integrability {
    /// Pure polynomial: integrates in closed form — the automation path.
    Closed,
    /// Contains operator factors: "the indefinite integral … needs to be
    /// computed manually, if it can be computed altogether" (paper §IV).
    ManualRequired,
}

impl CanonicalForm {
    /// Evaluates the model at `x`.
    ///
    /// # Panics
    ///
    /// Panics if weights and terms disagree in length.
    pub fn eval(&self, x: f64) -> f64 {
        assert_eq!(self.terms.len(), self.weights.len(), "weights not solved");
        self.terms.iter().zip(&self.weights).map(|(t, w)| w * t.eval(x)).sum()
    }

    /// Total structural complexity.
    pub fn complexity(&self) -> usize {
        self.terms.iter().map(BasisTerm::complexity).sum()
    }

    /// Integrability classification.
    pub fn integrability(&self) -> Integrability {
        if self.terms.iter().all(BasisTerm::is_polynomial) {
            Integrability::Closed
        } else {
            Integrability::ManualRequired
        }
    }

    /// Closed-form antiderivative for polynomial models (`None` when
    /// operator terms are present — the paper's automation gap).
    pub fn antiderivative(&self) -> Option<Poly> {
        if self.integrability() != Integrability::Closed {
            return None;
        }
        let max_pow =
            self.terms.iter().map(|t| t.total_power().expect("polynomial")).max().unwrap_or(0)
                as usize;
        let mut coeffs = vec![0.0; max_pow + 1];
        for (t, w) in self.terms.iter().zip(&self.weights) {
            let p = t.total_power().expect("polynomial") as usize;
            coeffs[p] += w;
        }
        Some(Poly::new(coeffs).antideriv(0.0))
    }

    /// Human-readable expression.
    pub fn to_string_repr(&self) -> String {
        if self.terms.is_empty() {
            return "0".to_string();
        }
        self.terms
            .iter()
            .zip(&self.weights)
            .map(|(t, w)| format!("({w:.4e})*{}", t.to_string_repr()))
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_are_guarded() {
        assert!(UnaryOp::Log10Abs.apply(0.0).is_finite());
        assert!(UnaryOp::Exp.apply(1e6).is_finite());
        assert!(UnaryOp::Inv.apply(0.0).is_finite());
        assert!(UnaryOp::SqrtAbs.apply(-4.0) == 2.0);
        assert!((UnaryOp::Tanh.apply(1e3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn term_eval_product() {
        let t = BasisTerm {
            factors: vec![Factor::Power(2), Factor::Op(UnaryOp::Tanh, [0.0, 1.0, 0.0])],
        };
        let x = 0.7;
        assert!((t.eval(x) - x * x * x.tanh()).abs() < 1e-15);
        assert!(!t.is_polynomial());
        assert_eq!(t.total_power(), None);
    }

    #[test]
    fn polynomial_detection_and_power() {
        let t = BasisTerm { factors: vec![Factor::Power(2), Factor::Power(1)] };
        assert!(t.is_polynomial());
        assert_eq!(t.total_power(), Some(3));
        assert_eq!(BasisTerm::constant().total_power(), Some(0));
    }

    #[test]
    fn canonical_eval_and_integrability() {
        // f(x) = 2 + 3x².
        let cf = CanonicalForm {
            terms: vec![BasisTerm::constant(), BasisTerm::power(2)],
            weights: vec![2.0, 3.0],
        };
        assert!((cf.eval(2.0) - 14.0).abs() < 1e-15);
        assert_eq!(cf.integrability(), Integrability::Closed);
        let prim = cf.antiderivative().unwrap();
        // ∫(2 + 3x²) = 2x + x³.
        assert!((prim.eval(2.0) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn operator_blocks_integration() {
        let cf = CanonicalForm {
            terms: vec![BasisTerm { factors: vec![Factor::Op(UnaryOp::Exp, [0.0, 1.0, 0.0])] }],
            weights: vec![1.0],
        };
        assert_eq!(cf.integrability(), Integrability::ManualRequired);
        assert!(cf.antiderivative().is_none());
    }

    #[test]
    fn complexity_counts_ops_heavier() {
        let poly = BasisTerm::power(3);
        let op = BasisTerm { factors: vec![Factor::Op(UnaryOp::Inv, [1.0, 0.0, 0.0])] };
        assert!(op.complexity() > poly.complexity() - 2);
        assert_eq!(poly.complexity(), 4);
        assert_eq!(op.complexity(), 5);
    }

    #[test]
    fn string_repr_is_readable() {
        let cf = CanonicalForm { terms: vec![BasisTerm::power(1)], weights: vec![2.5] };
        let s = cf.to_string_repr();
        assert!(s.contains("x") && s.contains("2.5"));
    }
}
