//! The CAFFEINE-based Hammerstein baseline (paper §IV, Fig. 8 and the
//! CAFF row of Table I).
//!
//! Same parallel Hammerstein topology as the RVF model — common
//! frequency poles from vector fitting — but every state-dependent
//! function (residue trajectories, static conductance) is regressed by
//! canonical-form genetic programming instead of recursive vector
//! fitting. Closed-form integration of the stages exists only for the
//! polynomial subset; general canonical forms require manual integration
//! (the paper's "Fully Automated: NO").

use rvf_numerics::{Complex, FohPair, FohScalar, Poly};
use rvf_tft::TftDataset;
use rvf_vecfit::{PoleEntry, RationalModel};

use crate::expr::{CanonicalForm, Integrability};
use crate::gp::{evolve, GpOptions};

/// Options for building the baseline model.
#[derive(Debug, Clone, Default)]
pub struct CaffeineOptions {
    /// GP engine configuration.
    pub gp: GpOptions,
    /// Force the polynomial (integrable) subset so the model can be
    /// simulated automatically — the paper does this manually.
    pub integrable_only: bool,
}

/// One GP-regressed state stage with an optional closed-form primitive.
#[derive(Debug, Clone, PartialEq)]
pub struct CaffeineStage {
    /// The canonical-form fit of the stage function.
    pub form: CanonicalForm,
    /// Closed-form primitive (polynomial models only), anchored.
    pub primitive: Option<Poly>,
    /// RMS error of the GP fit on the training trajectory.
    pub fit_rmse: f64,
}

impl CaffeineStage {
    /// Fits a stage to trajectory samples and anchors its primitive
    /// (when one exists) at `primitive(u0) = anchor`.
    ///
    /// Trajectories are normalized to unit RMS before evolution (residue
    /// magnitudes scale with the pole frequency — up to ~1e12 — which
    /// would otherwise swamp the GP's structural constants) and the
    /// weights are rescaled afterwards.
    pub fn fit(xs: &[f64], ys: &[f64], gp: &GpOptions, u0: f64, anchor: f64) -> Self {
        let scale =
            (ys.iter().map(|v| v * v).sum::<f64>() / ys.len().max(1) as f64).sqrt().max(1e-300);
        let normalized: Vec<f64> = ys.iter().map(|v| v / scale).collect();
        let mut best = evolve(xs, &normalized, gp);
        for w in &mut best.form.weights {
            *w *= scale;
        }
        let fit_rmse = best.rmse * scale;
        let primitive = best.form.antiderivative().map(|p| {
            let shift = anchor - p.eval(u0);
            let mut coeffs = p.coeffs().to_vec();
            coeffs[0] += shift;
            Poly::new(coeffs)
        });
        Self { form: best.form, primitive, fit_rmse }
    }

    /// The stage function value.
    pub fn value(&self, u: f64) -> f64 {
        self.form.eval(u)
    }

    /// The anchored primitive, when available.
    pub fn integral(&self, u: f64) -> Option<f64> {
        self.primitive.as_ref().map(|p| p.eval(u))
    }
}

/// One dynamic branch with GP stages.
#[derive(Debug, Clone, PartialEq)]
pub enum CafBlock {
    /// First-order block for a real pole.
    Real {
        /// The pole.
        a: f64,
        /// Input stage.
        f: CaffeineStage,
    },
    /// Second-order block for a complex pair (input-shifted components).
    Pair {
        /// Real part of the pole.
        sigma: f64,
        /// Imaginary part of the pole.
        omega: f64,
        /// First component stage.
        f1: CaffeineStage,
        /// Second component stage.
        f2: CaffeineStage,
    },
}

impl CafBlock {
    /// Complex residue reconstructed from the components.
    pub fn residue_at(&self, u: f64) -> Complex {
        match self {
            CafBlock::Real { f, .. } => Complex::from_re(f.value(u)),
            CafBlock::Pair { f1, f2, .. } => {
                let c1 = f1.value(u);
                let c2 = f2.value(u);
                Complex::new(0.5 * (c1 + c2), 0.5 * (c1 - c2))
            }
        }
    }

    /// Transfer contribution at `(u, s)`.
    pub fn transfer(&self, u: f64, s: Complex) -> Complex {
        match self {
            CafBlock::Real { a, .. } => self.residue_at(u) * (s - Complex::from_re(*a)).inv(),
            CafBlock::Pair { sigma, omega, .. } => {
                let a = Complex::new(*sigma, *omega);
                let r = self.residue_at(u);
                r * (s - a).inv() + r.conj() * (s - a.conj()).inv()
            }
        }
    }
}

/// The CAFFEINE baseline model.
#[derive(Debug, Clone, PartialEq)]
pub struct CaffeineHammerstein {
    /// Static path (value = DC conductance, integral = static curve).
    pub static_path: CaffeineStage,
    /// Dynamic blocks.
    pub blocks: Vec<CafBlock>,
    /// DC anchor input.
    pub u0: f64,
    /// DC anchor output.
    pub y0: f64,
}

impl CaffeineHammerstein {
    /// `Closed` only when every stage is polynomial — i.e. the model can
    /// be simulated without manual integration.
    pub fn integrability(&self) -> Integrability {
        let mut stages: Vec<&CaffeineStage> = vec![&self.static_path];
        for b in &self.blocks {
            match b {
                CafBlock::Real { f, .. } => stages.push(f),
                CafBlock::Pair { f1, f2, .. } => {
                    stages.push(f1);
                    stages.push(f2);
                }
            }
        }
        if stages.iter().all(|s| s.form.integrability() == Integrability::Closed) {
            Integrability::Closed
        } else {
            Integrability::ManualRequired
        }
    }

    /// The model TFT `T(x, s)` for the Fig. 8 error contours.
    pub fn transfer(&self, x: f64, s: Complex) -> Complex {
        let mut acc = Complex::from_re(self.static_path.value(x));
        for b in &self.blocks {
            acc += b.transfer(x, s);
        }
        acc
    }

    /// Lowers the model into the shared compiled serving runtime
    /// ([`rvf_core::CompiledSim`]): every polynomial primitive becomes a
    /// row of the power-basis coefficient matrix, so one matvec per
    /// sample prices all stages. Returns `None` when a stage lacks a
    /// closed-form primitive (manual integration would be required —
    /// the paper's automation gap).
    pub fn compile(&self) -> Option<rvf_core::CompiledSim> {
        if self.integrability() != Integrability::Closed {
            return None;
        }
        let mut b = rvf_core::SimBuilder::new();
        let mut row = |stage: &CaffeineStage| -> Option<usize> {
            Some(b.drive_poly(stage.primitive.as_ref()?.coeffs()))
        };
        let s = row(&self.static_path)?;
        let mut specs = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            match block {
                CafBlock::Real { a, f } => specs.push((false, *a, 0.0, row(f)?, usize::MAX)),
                CafBlock::Pair { sigma, omega, f1, f2 } => {
                    specs.push((true, *sigma, *omega, row(f1)?, row(f2)?));
                }
            }
        }
        b.set_static_drive(s);
        for (pair, sigma, omega, d1, d2) in specs {
            if pair {
                b.block_pair(sigma, omega, d1, d2);
            } else {
                b.block_real(sigma, d1);
            }
        }
        // The wiring above registers every row before referencing it, so
        // lowering cannot fail on drive references; go through the typed
        // path anyway so a future wiring bug surfaces as the error text
        // instead of a builder assert.
        Some(b.try_build().expect("caffeine lowering wires every drive row"))
    }

    /// Simulates the model for fixed-step inputs through the compiled
    /// serving runtime (see [`compile`](CaffeineHammerstein::compile);
    /// [`simulate_reference`](CaffeineHammerstein::simulate_reference)
    /// is the scalar oracle). Returns `None` when a stage lacks a
    /// closed-form primitive.
    pub fn simulate(&self, dt: f64, inputs: &[f64]) -> Option<Vec<f64>> {
        if inputs.is_empty() {
            // Matches the reference loop: an empty stimulus is trivially
            // simulable even when the model lacks closed-form primitives.
            return Some(Vec::new());
        }
        Some(self.compile()?.simulate(dt, inputs))
    }

    /// The scalar reference simulation loop, kept as the oracle the
    /// compiled path is pinned against in tests.
    pub fn simulate_reference(&self, dt: f64, inputs: &[f64]) -> Option<Vec<f64>> {
        if inputs.is_empty() {
            return Some(Vec::new());
        }
        if self.integrability() != Integrability::Closed {
            return None;
        }
        enum S {
            Real { prop: FohScalar, x: f64, v: f64 },
            Pair { prop: FohPair, z: Complex, v: [f64; 2] },
        }
        let mut states: Vec<S> = Vec::with_capacity(self.blocks.len());
        for b in &self.blocks {
            match b {
                CafBlock::Real { a, f } => {
                    let v = f.integral(inputs[0]).expect("closed form checked");
                    states.push(S::Real { prop: FohScalar::new(*a, dt), x: -v / a, v });
                }
                CafBlock::Pair { sigma, omega, f1, f2 } => {
                    let v = [
                        f1.integral(inputs[0]).expect("closed form checked"),
                        f2.integral(inputs[0]).expect("closed form checked"),
                    ];
                    let lambda = Complex::new(*sigma, -*omega);
                    let w = Complex::new(v[0], v[1]);
                    states.push(S::Pair {
                        prop: FohPair::new(*sigma, *omega, dt),
                        z: -(w / lambda),
                        v,
                    });
                }
            }
        }
        let emit = |states: &[S], u: f64| -> f64 {
            let mut y = self.static_path.integral(u).expect("closed form checked");
            for s in states {
                match s {
                    S::Real { x, .. } => y += x,
                    S::Pair { z, .. } => y += z.re + z.im,
                }
            }
            y
        };
        let mut out = Vec::with_capacity(inputs.len());
        out.push(emit(&states, inputs[0]));
        for win in inputs.windows(2) {
            let u1 = win[1];
            for (s, b) in states.iter_mut().zip(&self.blocks) {
                match (s, b) {
                    (S::Real { prop, x, v }, CafBlock::Real { f, .. }) => {
                        let v1 = f.integral(u1).expect("closed form checked");
                        *x = prop.step(*x, *v, v1);
                        *v = v1;
                    }
                    (S::Pair { prop, z, v }, CafBlock::Pair { f1, f2, .. }) => {
                        let v1 = [
                            f1.integral(u1).expect("closed form checked"),
                            f2.integral(u1).expect("closed form checked"),
                        ];
                        let nz = prop.step([z.re, z.im], *v, v1);
                        *z = Complex::new(nz[0], nz[1]);
                        *v = v1;
                    }
                    _ => unreachable!("kinds always match"),
                }
            }
            out.push(emit(&states, u1));
        }
        Some(out)
    }

    /// Worst stage fit RMSE (diagnostic).
    pub fn worst_stage_rmse(&self) -> f64 {
        let mut worst = self.static_path.fit_rmse;
        for b in &self.blocks {
            match b {
                CafBlock::Real { f, .. } => worst = worst.max(f.fit_rmse),
                CafBlock::Pair { f1, f2, .. } => worst = worst.max(f1.fit_rmse).max(f2.fit_rmse),
            }
        }
        worst
    }
}

/// Builds the CAFFEINE baseline from a TFT dataset and a frequency-axis
/// vector fit (common poles + residue trajectories).
pub fn build_caffeine_hammerstein(
    dataset: &TftDataset,
    freq_model: &RationalModel,
    opts: &CaffeineOptions,
) -> CaffeineHammerstein {
    let states = dataset.states();
    let (u0, y0) = dataset
        .samples
        .iter()
        .min_by(|a, b| a.t.partial_cmp(&b.t).unwrap_or(core::cmp::Ordering::Equal))
        .map(|s| (s.state, s.y))
        .unwrap_or((0.0, 0.0));
    let mut gp = opts.gp.clone();
    if opts.integrable_only {
        gp.allow_operators = false;
    }
    let mut blocks = Vec::with_capacity(freq_model.poles().n_entries());
    for (p, entry) in freq_model.poles().entries().iter().enumerate() {
        let traj = freq_model.residue_trajectory(p);
        // Vary the seed per stage so structures differ.
        let mut gp_p = gp.clone();
        gp_p.seed = gp.seed.wrapping_add(p as u64 * 7919);
        match entry {
            PoleEntry::Real(a) => {
                let comp: Vec<f64> = traj.iter().map(|r| r.re).collect();
                let f = CaffeineStage::fit(&states, &comp, &gp_p, u0, 0.0);
                blocks.push(CafBlock::Real { a: *a, f });
            }
            PoleEntry::Pair(a) => {
                let c1: Vec<f64> = traj.iter().map(|r| r.re + r.im).collect();
                let c2: Vec<f64> = traj.iter().map(|r| r.re - r.im).collect();
                let f1 = CaffeineStage::fit(&states, &c1, &gp_p, u0, 0.0);
                let mut gp_q = gp_p.clone();
                gp_q.seed = gp_p.seed.wrapping_add(13);
                let f2 = CaffeineStage::fit(&states, &c2, &gp_q, u0, 0.0);
                blocks.push(CafBlock::Pair { sigma: a.re, omega: a.im, f1, f2 });
            }
        }
    }
    let g_traj = dataset.static_gains();
    let static_path = CaffeineStage::fit(&states, &g_traj, &gp, u0, y0);
    CaffeineHammerstein { static_path, blocks, u0, y0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvf_numerics::linspace;

    fn poly_stage(xs: &[f64], f: impl Fn(f64) -> f64) -> CaffeineStage {
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        let gp = GpOptions { allow_operators: false, generations: 20, ..Default::default() };
        CaffeineStage::fit(xs, &ys, &gp, 0.0, 0.0)
    }

    #[test]
    fn stage_fit_and_anchor() {
        let xs = linspace(-1.0, 1.0, 50);
        let s = poly_stage(&xs, |x| 2.0 * x);
        assert!(s.fit_rmse < 1e-9);
        // ∫2x = x², anchored to 0 at 0.
        assert!((s.integral(1.0).unwrap() - 1.0).abs() < 1e-8);
        assert!(s.integral(0.0).unwrap().abs() < 1e-10);
    }

    #[test]
    fn integrability_propagates() {
        let xs = linspace(-1.0, 1.0, 40);
        let s = poly_stage(&xs, |x| x);
        let m = CaffeineHammerstein {
            static_path: s.clone(),
            blocks: vec![CafBlock::Real { a: -1.0e9, f: s }],
            u0: 0.0,
            y0: 0.0,
        };
        assert_eq!(m.integrability(), Integrability::Closed);
        assert!(m.simulate(1e-11, &[0.0, 0.5, 1.0]).is_some());
    }

    #[test]
    fn non_integrable_model_refuses_simulation() {
        use crate::expr::{BasisTerm, Factor, UnaryOp};
        let form = CanonicalForm {
            terms: vec![BasisTerm { factors: vec![Factor::Op(UnaryOp::Tanh, [0.0, 1.0, 0.0])] }],
            weights: vec![1.0],
        };
        let stage = CaffeineStage { form, primitive: None, fit_rmse: 0.0 };
        let m = CaffeineHammerstein { static_path: stage, blocks: Vec::new(), u0: 0.0, y0: 0.0 };
        assert_eq!(m.integrability(), Integrability::ManualRequired);
        assert!(m.simulate(1e-11, &[0.0, 1.0]).is_none());
        assert!(m.compile().is_none());
        // An empty stimulus stays trivially simulable (pre-serving
        // contract preserved): Some(empty), not None.
        assert_eq!(m.simulate(1e-11, &[]), Some(Vec::new()));
        assert_eq!(m.simulate_reference(1e-11, &[]), Some(Vec::new()));
    }

    #[test]
    fn compiled_simulation_pinned_to_reference() {
        // The compiled runtime evaluates the polynomial primitives over
        // the shared power basis instead of per-stage Horner passes;
        // pin it to the scalar oracle at 1e-12 relative.
        let xs = linspace(-1.0, 1.0, 60);
        let f1 = poly_stage(&xs, |x| 1.0 + x - 0.4 * x * x);
        let f2 = poly_stage(&xs, |x| 0.5 - 0.8 * x);
        let fr = poly_stage(&xs, |x| 0.2 * x + 0.7 * x * x * x);
        let stat = poly_stage(&xs, |x| 2.0 - 0.3 * x);
        let m = CaffeineHammerstein {
            static_path: stat,
            blocks: vec![
                CafBlock::Pair { sigma: -1.0e9, omega: 4.0e9, f1, f2 },
                CafBlock::Real { a: -2.5e9, f: fr },
            ],
            u0: 0.0,
            y0: 1.0,
        };
        let inputs: Vec<f64> = (0..400).map(|i| 0.9 * ((i / 7) as f64 * 0.61).sin()).collect();
        let want = m.simulate_reference(1e-11, &inputs).unwrap();
        let got = m.simulate(1e-11, &inputs).unwrap();
        let peak = want.iter().fold(0.0f64, |p, v| p.max(v.abs())).max(1.0);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-12 * peak, "{g} vs {w}");
        }
        // And the batch path is bit-identical to per-stimulus serial.
        let sim = m.compile().unwrap();
        let halves: Vec<&[f64]> = inputs.chunks(57).collect();
        let batch = sim.simulate_batch(1e-11, &halves);
        for (s, out) in halves.iter().zip(&batch) {
            let single = sim.simulate(1e-11, s);
            assert_eq!(out.len(), single.len());
            for (a, b) in out.iter().zip(&single) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Streaming the same stimulus chunk by chunk reproduces the
        // one-shot bits: the CAFFEINE power-basis rows go through the
        // same chunk kernel as the RVF log-form rows.
        let mut session = sim.session(1e-11).unwrap();
        let mut streamed = Vec::new();
        for chunk in inputs.chunks(23) {
            streamed.extend(session.feed(chunk).unwrap());
        }
        assert_eq!(streamed.len(), got.len());
        for (a, b) in streamed.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn transfer_is_hermitian() {
        let xs = linspace(0.0, 1.0, 40);
        let f1 = poly_stage(&xs, |x| 1.0 + x);
        let f2 = poly_stage(&xs, |x| 1.0 - x);
        let stat = poly_stage(&xs, |_| 2.0);
        let m = CaffeineHammerstein {
            static_path: stat,
            blocks: vec![CafBlock::Pair { sigma: -1.0e9, omega: 4.0e9, f1, f2 }],
            u0: 0.5,
            y0: 1.0,
        };
        let s = Complex::from_im(2.0e9);
        assert!((m.transfer(0.5, s).conj() - m.transfer(0.5, s.conj())).abs() < 1e-12);
    }
}
