//! Zoo gate runner.
//!
//! ```sh
//! cargo run --release -p rvf-validate --bin zoo -- [--seed N] [--report PATH]
//! ```
//!
//! Runs every zoo family through the full extraction pipeline, prints a
//! per-family accuracy table, optionally writes the JSON report
//! artifact, and exits `1` if any family violates its committed
//! contract (`2` on harness errors).

use std::process::ExitCode;

use rvf_validate::{builtin_contracts, report_json, run_zoo, zoo, DEFAULT_SEED};

fn main() -> ExitCode {
    let mut seed = DEFAULT_SEED;
    let mut report_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::from(2);
                }
            },
            "--report" => match args.next() {
                Some(p) => report_path = Some(p),
                None => {
                    eprintln!("--report needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: zoo [--seed N] [--report PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }

    let families = zoo(seed);
    println!("zoo: {} families, seed {seed:#x}", families.len());
    let gated = match run_zoo(&families, &builtin_contracts()) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("zoo harness error: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "{:<22} {:>9} {:>12} {:>13} {:>6} {:>6}",
        "family", "nrmse", "max_abs_norm", "settled_nrmse", "poles", "gate"
    );
    let mut failed = 0usize;
    for g in &gated {
        let r = &g.run.report;
        let verdict = if g.violations.is_empty() { "pass" } else { "FAIL" };
        println!(
            "{:<22} {:>9.2e} {:>12.2e} {:>13.2e} {:>6} {:>6}",
            g.run.name, r.nrmse, r.max_abs_norm, r.settled_nrmse, g.run.n_freq_poles, verdict
        );
        for v in &g.violations {
            println!("    violation: {v}");
            failed += 1;
        }
    }

    if let Some(path) = report_path {
        let doc = report_json(seed, &gated).render();
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("cannot write report '{path}': {e}");
            return ExitCode::from(2);
        }
        println!("report written to {path}");
    }

    if failed > 0 {
        eprintln!("zoo gate FAILED: {failed} contract violation(s)");
        ExitCode::FAILURE
    } else {
        println!("zoo gate passed: {} families within contract", gated.len());
        ExitCode::SUCCESS
    }
}
