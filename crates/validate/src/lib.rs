//! # rvf-validate
//!
//! Circuit zoo + golden validation harness: accuracy contracts for
//! every extraction scenario the workspace supports.
//!
//! The paper's validation story is a single test vehicle (the 27-
//! transistor buffer, §IV). This crate generalizes it into a *zoo* of
//! parameterized circuit families — RC/RLC ladders, diode-clipper
//! variants, MOSFET square-law stages, controlled-source networks and
//! subcircuit-structured decks — each expressed as netlist text and
//! pushed through the complete pipeline:
//!
//! ```text
//! netlist → DC → training transient → TFT → RVF → compiled model
//!                                      │
//! netlist → DC → validation transient ─┴→ AccuracyReport vs contract
//! ```
//!
//! Every family carries a committed [`AccuracyContract`]
//! (`contracts/zoo.json`): swing-normalized RMS and per-sample bounds
//! plus a settling-window breakdown. The `zoo` binary runs the whole
//! corpus, writes a JSON report artifact and exits nonzero on any
//! contract violation — the repo's regression gate against silently
//! degrading extraction accuracy.
//!
//! ```no_run
//! use rvf_validate::{builtin_contracts, run_zoo, zoo, DEFAULT_SEED};
//!
//! let gated = run_zoo(&zoo(DEFAULT_SEED), &builtin_contracts()).unwrap();
//! assert!(gated.iter().all(|g| g.violations.is_empty()));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod json;
pub mod report;
pub mod runner;
pub mod zoo;

pub use json::Json;
pub use report::{AccuracyContract, AccuracyReport, Violation};
pub use runner::{
    builtin_contracts, parse_contracts, report_json, run_family, run_zoo, FamilyRun, GatedRun,
    ZooError, CONTRACT_MANIFEST,
};
pub use zoo::{zoo, ZooFamily, DEFAULT_SEED};
