//! Runs zoo families through the full extraction pipeline and gates
//! them against the committed contract manifest.

use std::collections::HashMap;

use rvf_circuit::{dc_operating_point, parse_netlist, transient, CircuitError, TranOptions};
use rvf_core::{extract_model, RvfError};

use crate::json::Json;
use crate::report::{AccuracyContract, AccuracyReport, Violation};
use crate::zoo::ZooFamily;

/// The committed per-family accuracy-contract manifest. Bounds were
/// measured with [`crate::zoo::DEFAULT_SEED`] and carry ~2–4× headroom;
/// tightening one below the measured error must fail the gate.
pub const CONTRACT_MANIFEST: &str = include_str!("../contracts/zoo.json");

/// Everything the harness knows about one executed family.
#[derive(Debug, Clone)]
pub struct FamilyRun {
    /// Family name.
    pub name: &'static str,
    /// Measured accuracy against the transient oracle.
    pub report: AccuracyReport,
    /// Frequency-stage pole count of the extracted model.
    pub n_freq_poles: usize,
    /// Model build time (excluding the training transient), seconds.
    pub build_seconds: f64,
}

/// Harness errors: anything that stops a family from producing a report.
#[derive(Debug)]
pub enum ZooError {
    /// Parsing, DC or transient simulation failed.
    Circuit {
        /// Family being run.
        family: String,
        /// Underlying circuit error.
        source: CircuitError,
    },
    /// TFT sampling or RVF fitting failed.
    Extraction {
        /// Family being run.
        family: String,
        /// Underlying extraction error.
        source: RvfError,
    },
    /// The contract manifest has no entry for a family.
    MissingContract {
        /// Family lacking a contract.
        family: String,
    },
    /// The contract manifest could not be parsed.
    Manifest(String),
}

impl core::fmt::Display for ZooError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Circuit { family, source } => write!(f, "family '{family}': {source}"),
            Self::Extraction { family, source } => write!(f, "family '{family}': {source}"),
            Self::MissingContract { family } => {
                write!(f, "no contract for family '{family}' in the manifest")
            }
            Self::Manifest(msg) => write!(f, "bad contract manifest: {msg}"),
        }
    }
}

impl std::error::Error for ZooError {}

/// Runs one family end to end: parse both decks, extract a model from
/// the training deck, simulate the validation deck at transistor level
/// (the oracle) and score the compiled model against it.
///
/// # Errors
///
/// Returns [`ZooError`] if any pipeline stage fails.
pub fn run_family(family: &ZooFamily) -> Result<FamilyRun, ZooError> {
    let ckt = |e: CircuitError| ZooError::Circuit { family: family.name.into(), source: e };
    let ext = |e: RvfError| ZooError::Extraction { family: family.name.into(), source: e };

    let mut train = parse_netlist(&family.train_deck).map_err(ckt)?;
    let (extraction, _dataset, _train_tran) =
        extract_model(&mut train, &family.tft, &family.rvf).map_err(ext)?;

    let mut valid = parse_netlist(&family.valid_deck).map_err(ckt)?;
    let op = dc_operating_point(&mut valid, &Default::default()).map_err(ckt)?;
    let opts = TranOptions { dt: family.dt, t_stop: family.t_stop, ..Default::default() };
    let oracle = transient(&mut valid, &op, &opts).map_err(ckt)?;

    // The compiled serving path (HammersteinModel::simulate lowers
    // through SimBuilder) against the transistor-level oracle.
    let y_model = extraction.model.simulate(family.dt, &oracle.inputs);
    let report = AccuracyReport::compare(&oracle.outputs, &y_model, family.settle_frac);
    Ok(FamilyRun {
        name: family.name,
        report,
        n_freq_poles: extraction.diagnostics.n_freq_poles,
        build_seconds: extraction.build_seconds,
    })
}

/// Parses a contract manifest (JSON object keyed by family name).
///
/// # Errors
///
/// Returns [`ZooError::Manifest`] on syntax errors or missing metrics.
pub fn parse_contracts(text: &str) -> Result<HashMap<String, AccuracyContract>, ZooError> {
    let doc = Json::parse(text).map_err(ZooError::Manifest)?;
    let fields =
        doc.as_obj().ok_or_else(|| ZooError::Manifest("manifest root must be an object".into()))?;
    let mut out = HashMap::new();
    for (name, entry) in fields {
        let metric = |key: &str| -> Result<f64, ZooError> {
            entry.get(key).and_then(Json::as_f64).ok_or_else(|| {
                ZooError::Manifest(format!("family '{name}' is missing numeric '{key}'"))
            })
        };
        out.insert(
            name.clone(),
            AccuracyContract {
                max_nrmse: metric("max_nrmse")?,
                max_abs_norm: metric("max_abs_norm")?,
                max_settled_nrmse: metric("max_settled_nrmse")?,
            },
        );
    }
    Ok(out)
}

/// The committed contracts, parsed.
///
/// # Panics
///
/// Panics if the committed manifest is malformed (a build defect, caught
/// by the crate tests).
pub fn builtin_contracts() -> HashMap<String, AccuracyContract> {
    parse_contracts(CONTRACT_MANIFEST).expect("committed manifest parses")
}

/// One gated family: the run plus any contract violations.
#[derive(Debug, Clone)]
pub struct GatedRun {
    /// The executed family.
    pub run: FamilyRun,
    /// The contract it was gated against.
    pub contract: AccuracyContract,
    /// Bounds exceeded (empty = pass).
    pub violations: Vec<Violation>,
}

/// Runs every family and gates it against `contracts`.
///
/// # Errors
///
/// Fails fast on pipeline errors or a family without a contract;
/// contract *violations* are data, not errors.
pub fn run_zoo(
    families: &[ZooFamily],
    contracts: &HashMap<String, AccuracyContract>,
) -> Result<Vec<GatedRun>, ZooError> {
    families
        .iter()
        .map(|family| {
            let contract = *contracts
                .get(family.name)
                .ok_or_else(|| ZooError::MissingContract { family: family.name.into() })?;
            let run = run_family(family)?;
            let violations = contract.check(&run.report);
            Ok(GatedRun { run, contract, violations })
        })
        .collect()
}

/// Renders the gated results as a JSON report artifact.
pub fn report_json(seed: u64, gated: &[GatedRun]) -> Json {
    let families = gated
        .iter()
        .map(|g| {
            let r = &g.run.report;
            let violations = g
                .violations
                .iter()
                .map(|v| {
                    Json::Obj(vec![
                        ("metric".into(), Json::Str(v.metric.into())),
                        ("measured".into(), Json::Num(v.measured)),
                        ("bound".into(), Json::Num(v.bound)),
                    ])
                })
                .collect();
            let entry = Json::Obj(vec![
                ("pass".into(), Json::Bool(g.violations.is_empty())),
                ("n_samples".into(), Json::Num(r.n_samples as f64)),
                ("swing".into(), Json::Num(r.swing)),
                ("rmse".into(), Json::Num(r.rmse)),
                ("nrmse".into(), Json::Num(r.nrmse)),
                ("max_abs".into(), Json::Num(r.max_abs)),
                ("max_abs_norm".into(), Json::Num(r.max_abs_norm)),
                ("settling_nrmse".into(), Json::Num(r.settling_nrmse)),
                ("settled_nrmse".into(), Json::Num(r.settled_nrmse)),
                ("n_freq_poles".into(), Json::Num(g.run.n_freq_poles as f64)),
                ("build_seconds".into(), Json::Num(g.run.build_seconds)),
                ("violations".into(), Json::Arr(violations)),
            ]);
            (g.run.name.to_string(), entry)
        })
        .collect();
    Json::Obj(vec![
        ("seed".into(), Json::Num(seed as f64)),
        ("n_families".into(), Json::Num(gated.len() as f64)),
        (
            "n_failed".into(),
            Json::Num(gated.iter().filter(|g| !g.violations.is_empty()).count() as f64),
        ),
        ("families".into(), Json::Obj(families)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_manifest_parses_and_covers_the_zoo() {
        let contracts = builtin_contracts();
        for family in crate::zoo::zoo(crate::zoo::DEFAULT_SEED) {
            assert!(contracts.contains_key(family.name), "no contract for '{}'", family.name);
        }
    }

    #[test]
    fn manifest_errors_are_typed() {
        assert!(matches!(parse_contracts("[1,2]"), Err(ZooError::Manifest(_))));
        assert!(matches!(parse_contracts("{\"f\": {}}"), Err(ZooError::Manifest(_))));
        let e = parse_contracts("nope").unwrap_err();
        assert!(e.to_string().contains("manifest"));
    }
}
