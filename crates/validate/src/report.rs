//! Typed accuracy reports and the contracts that gate them.

/// Time-domain accuracy of a model waveform against a circuit-level
/// oracle, with a settling-window breakdown.
///
/// All `*_norm`/`nrmse` figures are normalized by the oracle's
/// peak-to-peak swing — the paper's Table I convention — so contracts
/// transfer between circuits with different signal levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyReport {
    /// Number of compared samples.
    pub n_samples: usize,
    /// Peak-to-peak swing of the oracle waveform.
    pub swing: f64,
    /// Absolute RMS error over the full window.
    pub rmse: f64,
    /// Swing-normalized RMS error over the full window.
    pub nrmse: f64,
    /// Worst-case absolute error over the full window.
    pub max_abs: f64,
    /// Worst-case error normalized by the swing (per-sample bound).
    pub max_abs_norm: f64,
    /// First sample index of the settled window.
    pub settle_split: usize,
    /// Swing-normalized RMS error over the initial settling window
    /// `[0, settle_split)` — model state ramps from zero here.
    pub settling_nrmse: f64,
    /// Swing-normalized RMS error over the settled window
    /// `[settle_split, n)`.
    pub settled_nrmse: f64,
}

impl AccuracyReport {
    /// Compares a model waveform against the oracle, splitting the
    /// window at `settle_frac` (clamped to `[0, 1]`) of the samples.
    ///
    /// # Panics
    ///
    /// Panics if the waveforms are empty or differ in length.
    pub fn compare(oracle: &[f64], model: &[f64], settle_frac: f64) -> Self {
        assert_eq!(oracle.len(), model.len(), "accuracy compare needs equal-length waveforms");
        assert!(!oracle.is_empty(), "accuracy compare needs at least one sample");
        let n = oracle.len();
        let split = ((n as f64) * settle_frac.clamp(0.0, 1.0)) as usize;
        let split = split.min(n.saturating_sub(1));
        let lo = oracle.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = oracle.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let swing = (hi - lo).max(1e-30);
        let rmse = rvf_numerics::rmse(oracle, model);
        let max_abs = rvf_numerics::max_abs_err(oracle, model);
        let window_rms = |a: &[f64], b: &[f64]| -> f64 {
            if a.is_empty() {
                0.0
            } else {
                rvf_numerics::rmse(a, b)
            }
        };
        let settling = window_rms(&oracle[..split], &model[..split]) / swing;
        let settled = window_rms(&oracle[split..], &model[split..]) / swing;
        Self {
            n_samples: n,
            swing,
            rmse,
            nrmse: rmse / swing,
            max_abs,
            max_abs_norm: max_abs / swing,
            settle_split: split,
            settling_nrmse: settling,
            settled_nrmse: settled,
        }
    }
}

/// Accuracy bounds a zoo family must satisfy. Every bound is normalized
/// by the oracle swing (see [`AccuracyReport`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyContract {
    /// Bound on [`AccuracyReport::nrmse`].
    pub max_nrmse: f64,
    /// Bound on [`AccuracyReport::max_abs_norm`].
    pub max_abs_norm: f64,
    /// Bound on [`AccuracyReport::settled_nrmse`].
    pub max_settled_nrmse: f64,
}

/// One contract bound the measured report exceeded.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the violated metric (`"nrmse"`, …).
    pub metric: &'static str,
    /// The measured value.
    pub measured: f64,
    /// The contract bound.
    pub bound: f64,
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}: measured {:.3e} exceeds bound {:.3e}",
            self.metric, self.measured, self.bound
        )
    }
}

impl AccuracyContract {
    /// Checks a report against the contract; an empty vector means the
    /// contract holds.
    pub fn check(&self, report: &AccuracyReport) -> Vec<Violation> {
        let mut v = Vec::new();
        let mut gate = |metric: &'static str, measured: f64, bound: f64| {
            if !(measured <= bound) {
                v.push(Violation { metric, measured, bound });
            }
        };
        gate("nrmse", report.nrmse, self.max_nrmse);
        gate("max_abs_norm", report.max_abs_norm, self.max_abs_norm);
        gate("settled_nrmse", report.settled_nrmse, self.max_settled_nrmse);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_windows_and_normalization() {
        // Oracle swings 0..2; model off by 0.2 in the first half only.
        let oracle = vec![0.0, 2.0, 0.0, 2.0, 0.0, 2.0, 0.0, 2.0];
        let model = vec![0.2, 2.2, 0.2, 2.2, 0.0, 2.0, 0.0, 2.0];
        let r = AccuracyReport::compare(&oracle, &model, 0.5);
        assert_eq!(r.n_samples, 8);
        assert_eq!(r.settle_split, 4);
        assert!((r.swing - 2.0).abs() < 1e-12);
        assert!((r.max_abs - 0.2).abs() < 1e-12);
        assert!((r.max_abs_norm - 0.1).abs() < 1e-12);
        assert!((r.settling_nrmse - 0.1).abs() < 1e-12);
        assert!(r.settled_nrmse.abs() < 1e-12);
        assert!((r.nrmse - 0.1 / core::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn contract_flags_each_metric() {
        let oracle = vec![0.0, 1.0, 0.0, 1.0];
        let model = vec![0.1, 1.1, 0.1, 1.1];
        let r = AccuracyReport::compare(&oracle, &model, 0.25);
        let ok = AccuracyContract { max_nrmse: 0.2, max_abs_norm: 0.2, max_settled_nrmse: 0.2 };
        assert!(ok.check(&r).is_empty());
        let tight = AccuracyContract { max_nrmse: 0.05, max_abs_norm: 0.2, max_settled_nrmse: 0.2 };
        let v = tight.check(&r);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].metric, "nrmse");
        assert!(v[0].to_string().contains("exceeds"));
        let all = AccuracyContract { max_nrmse: 0.0, max_abs_norm: 0.0, max_settled_nrmse: 0.0 };
        assert_eq!(all.check(&r).len(), 3);
    }

    #[test]
    fn nan_model_output_violates() {
        // NaN comparisons must fail closed, not pass silently.
        let oracle = vec![0.0, 1.0];
        let model = vec![f64::NAN, 1.0];
        let r = AccuracyReport::compare(&oracle, &model, 0.0);
        let c = AccuracyContract { max_nrmse: 1.0, max_abs_norm: 1.0, max_settled_nrmse: 1.0 };
        assert!(!c.check(&r).is_empty());
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn length_mismatch_panics() {
        let _ = AccuracyReport::compare(&[1.0], &[1.0, 2.0], 0.2);
    }
}
