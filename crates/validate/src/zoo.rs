//! The circuit zoo: a deterministic, seeded generator of parameterized
//! extraction scenarios.
//!
//! Every family is expressed as *netlist text* on purpose — each zoo run
//! exercises the full front end (parser → MNA → DC → TFT → RVF →
//! compiled serving) exactly the way a user would drive it. Families
//! cover RC/RLC ladders of varying depth, diode-clipper variants (drive
//! level and corner frequency), square-law MOSFET stages, all four
//! controlled-source kinds (E/F/G/H) and subcircuit-structured decks.
//!
//! Component values are jittered ±8% by a [`rand`]-seeded generator so
//! the contracts hold over a *family*, not one hand-tuned instance; the
//! same seed always reproduces the same decks.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rvf_core::RvfOptions;
use rvf_tft::TftConfig;

/// Default zoo seed (fixed so CI and the committed contracts agree).
pub const DEFAULT_SEED: u64 = 0x2013_0318;

/// One extraction scenario: a training deck, a held-out validation deck
/// and the extraction/validation configuration.
#[derive(Debug, Clone)]
pub struct ZooFamily {
    /// Stable family name (contract manifest key).
    pub name: &'static str,
    /// One-line description of what the family exercises.
    pub description: &'static str,
    /// Netlist used for TFT training (extraction).
    pub train_deck: String,
    /// Netlist with a held-out stimulus; its transient is the oracle.
    pub valid_deck: String,
    /// TFT sampling configuration.
    pub tft: TftConfig,
    /// RVF fitting options.
    pub rvf: RvfOptions,
    /// Validation transient step.
    pub dt: f64,
    /// Validation transient length.
    pub t_stop: f64,
    /// Fraction of the validation window treated as model settling.
    pub settle_frac: f64,
}

impl ZooFamily {
    /// `true` if the family's decks use `.subckt`/`X` instantiation.
    pub fn uses_subckt(&self) -> bool {
        self.train_deck.to_ascii_uppercase().contains(".SUBCKT")
    }

    /// `true` if the decks use a controlled source (E/F/G/H element).
    pub fn uses_controlled_source(&self) -> bool {
        self.train_deck
            .lines()
            .map(str::trim_start)
            .any(|l| matches!(l.as_bytes().first(), Some(b'E' | b'F' | b'G' | b'H')))
    }
}

/// Per-family deterministic rng: decks don't change when families are
/// added or reordered.
fn family_rng(seed: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Jitters a nominal component value by ±8%.
fn jit(rng: &mut StdRng, nominal: f64) -> f64 {
    nominal * rng.gen_range(0.92..1.08)
}

/// TFT/RVF configuration for the µs-scale linear families (proven
/// accurate in the pipeline tests).
fn linear_cfg() -> (TftConfig, RvfOptions) {
    let tft = TftConfig {
        f_min_hz: 1.0e3,
        f_max_hz: 1.0e7,
        n_freqs: 24,
        t_train: 1.0e-4,
        steps: 500,
        n_snapshots: 40,
        embed_depth: 1,
        threads: 2,
    };
    (tft, RvfOptions { epsilon: 1e-4, ..Default::default() })
}

/// Configuration for the diode-clipper families (10 µs training period,
/// wide band to catch the 3 MHz corner).
fn clipper_cfg() -> (TftConfig, RvfOptions) {
    let tft = TftConfig {
        f_min_hz: 1.0e3,
        f_max_hz: 1.0e8,
        n_freqs: 30,
        t_train: 1.0e-5,
        steps: 400,
        n_snapshots: 40,
        embed_depth: 1,
        threads: 2,
    };
    (tft, RvfOptions { epsilon: 1e-3, ..Default::default() })
}

/// Configuration for the GHz-corner MOSFET stages (one 50 MHz training
/// period, band up to 5 GHz).
fn mos_cfg() -> (TftConfig, RvfOptions) {
    let tft = TftConfig {
        f_min_hz: 1.0e6,
        f_max_hz: 5.0e9,
        n_freqs: 24,
        t_train: 2.0e-8,
        steps: 400,
        n_snapshots: 40,
        embed_depth: 1,
        threads: 2,
    };
    (tft, RvfOptions { epsilon: 1e-3, ..Default::default() })
}

/// Standard held-out stimulus for the µs-scale families: a 100 kHz
/// trapezoidal pulse inside the trained 0.1–0.9 V range.
const LINEAR_VALID_SRC: &str = "Vin in 0 PULSE(0.2 0.8 1e-6 1e-7 1e-7 4e-6 1e-5)";

/// Training stimulus for the µs-scale families: one 10 kHz period
/// sweeping 0.1–0.9 V.
const LINEAR_TRAIN_SRC: &str = "Vin in 0 SINE(0.5 0.4 1e4)";

fn linear_family(name: &'static str, description: &'static str, body: String) -> ZooFamily {
    let (tft, rvf) = linear_cfg();
    let train =
        format!("* zoo: {name} (train)\n{LINEAR_TRAIN_SRC}\n{body}.input Vin\n.output out\n.end\n");
    let valid =
        format!("* zoo: {name} (valid)\n{LINEAR_VALID_SRC}\n{body}.input Vin\n.output out\n.end\n");
    ZooFamily {
        name,
        description,
        train_deck: train,
        valid_deck: valid,
        tft,
        rvf,
        dt: 2.0e-8,
        t_stop: 3.0e-5,
        settle_frac: 0.2,
    }
}

fn clipper_family(
    name: &'static str,
    description: &'static str,
    body: String,
    train_src: String,
    valid_src: String,
    dt: f64,
    t_stop: f64,
) -> ZooFamily {
    let (tft, rvf) = clipper_cfg();
    let train =
        format!("* zoo: {name} (train)\n{train_src}\n{body}.input Vin\n.output out\n.end\n");
    let valid =
        format!("* zoo: {name} (valid)\n{valid_src}\n{body}.input Vin\n.output out\n.end\n");
    ZooFamily {
        name,
        description,
        train_deck: train,
        valid_deck: valid,
        tft,
        rvf,
        dt,
        t_stop,
        settle_frac: 0.2,
    }
}

/// Builds the full zoo for a seed. The family list and their nominal
/// topologies are fixed; only component values jitter with the seed.
pub fn zoo(seed: u64) -> Vec<ZooFamily> {
    let mut families = Vec::new();
    let mut idx = 0u64;
    let rng = |i: &mut u64| {
        let r = family_rng(seed, *i);
        *i += 1;
        r
    };

    // 1. Single-section RC low-pass: the base linear contract.
    {
        let mut r = rng(&mut idx);
        let body =
            format!("R1 in out {:.6e}\nC1 out 0 {:.6e}\n", jit(&mut r, 1.0e3), jit(&mut r, 1.0e-9));
        families.push(linear_family("rc_lowpass", "single-section RC low-pass", body));
    }

    // 2. Deep RC ladder: 4 cascaded sections (higher-order roll-off).
    {
        let mut r = rng(&mut idx);
        let mut body = String::new();
        let nodes = ["in", "m1", "m2", "m3", "out"];
        for k in 0..4 {
            body.push_str(&format!(
                "R{k} {} {} {:.6e}\nC{k} {} 0 {:.6e}\n",
                nodes[k],
                nodes[k + 1],
                jit(&mut r, 1.0e3),
                nodes[k + 1],
                jit(&mut r, 3.0e-10)
            ));
        }
        families.push(linear_family("rc_ladder_deep", "4-section RC ladder", body));
    }

    // 3. RLC ladder: 2 sections with series inductance (complex poles,
    //    near-critically damped).
    {
        let mut r = rng(&mut idx);
        let mut body = String::new();
        let nodes = ["in", "mid", "out"];
        for k in 0..2 {
            body.push_str(&format!(
                "R{k} {} x{k} {:.6e}\nL{k} x{k} {} {:.6e}\nC{k} {} 0 {:.6e}\n",
                nodes[k],
                jit(&mut r, 5.0e2),
                nodes[k + 1],
                jit(&mut r, 2.0e-4),
                nodes[k + 1],
                jit(&mut r, 1.0e-9)
            ));
        }
        families.push(linear_family("rlc_ladder", "2-section RLC ladder", body));
    }

    // 4. VCVS (E) two-pole chain: ideal-buffer-separated RC stages with
    //    gain, exercising the voltage-controlled voltage source.
    {
        let mut r = rng(&mut idx);
        let body = format!(
            "R1 in a {:.6e}\nC1 a 0 {:.6e}\nE1 b 0 a 0 {:.6e}\nR2 b out {:.6e}\nC2 out 0 {:.6e}\n",
            jit(&mut r, 1.0e3),
            jit(&mut r, 1.0e-9),
            jit(&mut r, 0.8),
            jit(&mut r, 1.0e3),
            jit(&mut r, 1.0e-9)
        );
        families.push(linear_family("vcvs_chain", "VCVS-buffered two-pole RC chain", body));
    }

    // 5. VCCS (G) transconductance amplifier into an RC load.
    {
        let mut r = rng(&mut idx);
        let body = format!(
            "RI in 0 {:.6e}\nG1 out 0 in 0 {:.6e}\nRL out 0 {:.6e}\nCL out 0 {:.6e}\n",
            jit(&mut r, 1.0e4),
            jit(&mut r, 1.0e-3),
            jit(&mut r, 1.0e3),
            jit(&mut r, 1.0e-9)
        );
        families.push(linear_family("vccs_amp", "VCCS transconductance stage with RC load", body));
    }

    // 6. CCCS (F) current mirror: a zero-volt sense source feeds the
    //    mirrored current into an RC load.
    {
        let mut r = rng(&mut idx);
        let body = format!(
            "R1 in a {:.6e}\nVs a 0 DC 0\nF1 out 0 Vs {:.6e}\nRL out 0 {:.6e}\nCL out 0 {:.6e}\n",
            jit(&mut r, 1.0e3),
            -jit(&mut r, 1.5),
            jit(&mut r, 1.0e3),
            jit(&mut r, 1.0e-9)
        );
        families.push(linear_family("cccs_mirror", "CCCS mirrored-current RC stage", body));
    }

    // 7. CCVS (H) transresistance stage: branch current sensed through a
    //    zero-volt source, converted to a voltage, then RC-filtered.
    {
        let mut r = rng(&mut idx);
        let body = format!(
            "RI in s {:.6e}\nVs s 0 DC 0\nH1 m 0 Vs {:.6e}\nR2 m out {:.6e}\nC2 out 0 {:.6e}\n",
            jit(&mut r, 1.0e3),
            -jit(&mut r, 1.5e3),
            jit(&mut r, 1.0e3),
            jit(&mut r, 1.0e-9)
        );
        families.push(linear_family("ccvs_transresistance", "CCVS transresistance RC stage", body));
    }

    // 8. Subcircuit RC ladder: the deep ladder expressed as three
    //    instances of a `.subckt` section.
    {
        let mut r = rng(&mut idx);
        let body = format!(
            ".subckt sec a b\nRs a b {:.6e}\nCs b 0 {:.6e}\n.ends\nX1 in m1 sec\nX2 m1 m2 sec\nX3 m2 out sec\n",
            jit(&mut r, 1.0e3),
            jit(&mut r, 3.0e-10)
        );
        families.push(linear_family(
            "subckt_ladder",
            "RC ladder built from .subckt sections",
            body,
        ));
    }

    // Diode clippers: same topology as `rvf_circuit::diode_clipper`,
    // swept over drive level and corner frequency.
    let clipper_body = |r: &mut StdRng, c_nominal: f64| {
        format!(
            "R1 in out {:.6e}\nD1 out 0 IS=1e-14 N=1\nD2 0 out IS=1e-14 N=1\nC1 out 0 {:.6e}\nRL out 0 {:.6e}\n",
            jit(r, 1.0e3),
            jit(r, c_nominal),
            jit(r, 1.0e4)
        )
    };

    // 9. Soft drive: barely reaches the knee.
    {
        let mut r = rng(&mut idx);
        let body = clipper_body(&mut r, 5.0e-11);
        families.push(clipper_family(
            "clipper_soft",
            "diode clipper, soft drive (knee only)",
            body,
            "Vin in 0 SINE(0 0.5 1e5)".into(),
            "Vin in 0 SINE(0.1 0.35 2.5e5 1)".into(),
            1.0e-8,
            1.0e-5,
        ));
    }

    // 10. Hard drive: deep clipping on both rails.
    {
        let mut r = rng(&mut idx);
        let body = clipper_body(&mut r, 5.0e-11);
        families.push(clipper_family(
            "clipper_hard",
            "diode clipper, hard drive (deep clipping)",
            body,
            "Vin in 0 SINE(0 1.5 1e5)".into(),
            "Vin in 0 SINE(0.2 1.2 2.5e5 1)".into(),
            1.0e-8,
            1.0e-5,
        ));
    }

    // 11. Fast corner: 5× smaller shunt capacitance, faster stimulus.
    {
        let mut r = rng(&mut idx);
        let body = clipper_body(&mut r, 1.0e-11);
        let (mut tft, rvf) = clipper_cfg();
        tft.t_train = 5.0e-6;
        let train = format!(
            "* zoo: clipper_fast (train)\nVin in 0 SINE(0 1.2 2e5)\n{body}.input Vin\n.output out\n.end\n"
        );
        let valid = format!(
            "* zoo: clipper_fast (valid)\nVin in 0 SINE(0.15 1.0 5e5 1)\n{body}.input Vin\n.output out\n.end\n"
        );
        families.push(ZooFamily {
            name: "clipper_fast",
            description: "diode clipper, 5x higher corner frequency",
            train_deck: train,
            valid_deck: valid,
            tft,
            rvf,
            dt: 5.0e-9,
            t_stop: 5.0e-6,
            settle_frac: 0.2,
        });
    }

    // 12. Subcircuit clipper: the clipping stage wrapped in a .subckt,
    //     cascaded into an RC post-filter.
    {
        let mut r = rng(&mut idx);
        let body = format!(
            ".subckt clip a b\nRc a b {:.6e}\nD1 b 0 IS=1e-14 N=1\nD2 0 b IS=1e-14 N=1\nCc b 0 {:.6e}\nRl b 0 {:.6e}\n.ends\nX1 in mid clip\nR2 mid out {:.6e}\nC2 out 0 {:.6e}\n",
            jit(&mut r, 1.0e3),
            jit(&mut r, 5.0e-11),
            jit(&mut r, 1.0e4),
            jit(&mut r, 1.0e3),
            jit(&mut r, 5.0e-11)
        );
        families.push(clipper_family(
            "subckt_clipper",
            "subcircuit clipper stage with RC post-filter",
            body,
            "Vin in 0 SINE(0 1.2 1e5)".into(),
            "Vin in 0 SINE(0.2 1.0 2.5e5 1)".into(),
            1.0e-8,
            1.0e-5,
        ));
    }

    // MOSFET square-law stages at GHz corners (buffer-like device
    // parameters from the paper's test vehicle).
    let mos_family = |name: &'static str,
                      description: &'static str,
                      body: String,
                      train_src: &str,
                      valid_src: &str| {
        let (tft, rvf) = mos_cfg();
        ZooFamily {
            name,
            description,
            train_deck: format!(
                "* zoo: {name} (train)\nVDD vdd 0 DC 1.5\n{train_src}\n{body}.input Vin\n.output out\n.end\n"
            ),
            valid_deck: format!(
                "* zoo: {name} (valid)\nVDD vdd 0 DC 1.5\n{valid_src}\n{body}.input Vin\n.output out\n.end\n"
            ),
            tft,
            rvf,
            dt: 4.0e-11,
            t_stop: 6.4e-8,
            settle_frac: 0.2,
        }
    };

    // 13. Common-source amplifier: square-law gain stage, inverting.
    {
        let mut r = rng(&mut idx);
        let body = format!(
            "M1 out in 0 NMOS KP=2.6m VT=0.4 LAMBDA=0.08 CGS=8f CGD=2.5f\nRD vdd out {:.6e}\nCL out 0 {:.6e}\n",
            jit(&mut r, 8.0e2),
            jit(&mut r, 1.0e-12)
        );
        families.push(mos_family(
            "mos_cs_amp",
            "square-law common-source stage with RC load",
            body,
            "Vin in 0 SINE(0.9 0.25 5e7)",
            "Vin in 0 BIT(0.68 1.12 2.5e8 4e-10 0110100111010010)",
        ));
    }

    // 14. Source follower: near-unity gain, mild square-law compression.
    {
        let mut r = rng(&mut idx);
        let body = format!(
            "M1 vdd in out NMOS KP=40m VT=0.4 LAMBDA=0.08 CGS=8f CGD=2.5f\nRS out 0 {:.6e}\nCL out 0 {:.6e}\n",
            jit(&mut r, 1.0e3),
            jit(&mut r, 1.0e-12)
        );
        families.push(mos_family(
            "mos_follower",
            "NMOS source follower with resistive sink",
            body,
            "Vin in 0 SINE(0.9 0.3 5e7)",
            "Vin in 0 BIT(0.65 1.15 1.25e8 1.2e-9 01011001)",
        ));
    }

    families
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_is_deterministic_per_seed() {
        let a = zoo(DEFAULT_SEED);
        let b = zoo(DEFAULT_SEED);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.train_deck, y.train_deck);
            assert_eq!(x.valid_deck, y.valid_deck);
        }
        // A different seed moves component values but not the topology.
        let c = zoo(DEFAULT_SEED + 1);
        assert_eq!(a.len(), c.len());
        assert_ne!(a[0].train_deck, c[0].train_deck);
    }

    #[test]
    fn zoo_meets_coverage_floor() {
        let z = zoo(DEFAULT_SEED);
        assert!(z.len() >= 12, "zoo has only {} families", z.len());
        let subckt = z.iter().filter(|f| f.uses_subckt()).count();
        let ctrl = z.iter().filter(|f| f.uses_controlled_source()).count();
        assert!(subckt >= 2, "only {subckt} subcircuit families");
        assert!(ctrl >= 2, "only {ctrl} controlled-source families");
        // Names are unique (they key the contract manifest).
        let mut names: Vec<_> = z.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), z.len());
    }

    #[test]
    fn every_deck_parses() {
        for f in zoo(DEFAULT_SEED) {
            let ckt = rvf_circuit::parse_netlist(&f.train_deck)
                .unwrap_or_else(|e| panic!("{} train deck: {e}", f.name));
            assert!(ckt.n_devices() >= 2, "{}", f.name);
            rvf_circuit::parse_netlist(&f.valid_deck)
                .unwrap_or_else(|e| panic!("{} valid deck: {e}", f.name));
        }
    }
}
