//! Minimal JSON reader/writer for contract manifests and report
//! artifacts (the workspace is offline; no serde).
//!
//! Supports the full JSON value grammar minus `\u` escapes, which the
//! manifests never use. Object key order is preserved so rendered
//! output is deterministic.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Renders the value as pretty-printed JSON (2-space indent).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| {
            for _ in 0..n {
                out.push_str("  ");
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.render_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    Json::Str(k.clone()).render_into(out, indent + 1);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number '{text}'"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = core::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_render_round_trip() {
        let text = r#"{"a": 1.5, "b": [true, null, "x\"y"], "c": {"d": -2e-3}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64), Some(-2e-3));
        let rendered = v.render();
        let again = Json::parse(&rendered).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"abc").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("nulL").is_err());
        assert!(Json::parse("1.2.3").is_err());
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v.as_obj().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a"]);
    }
}
