//! The golden gate: every zoo family must extract end to end and land
//! inside its committed accuracy contract — and the gate must actually
//! trip when a bound is tightened below the measured error.

use rvf_validate::{
    builtin_contracts, report_json, run_zoo, zoo, AccuracyContract, Json, DEFAULT_SEED,
};

#[test]
fn zoo_corpus_meets_committed_contracts() {
    let families = zoo(DEFAULT_SEED);

    // Coverage floor: the zoo is only a zoo if it spans the front end.
    assert!(families.len() >= 12, "zoo shrank to {} families", families.len());
    let subckt = families.iter().filter(|f| f.uses_subckt()).count();
    let ctrl = families.iter().filter(|f| f.uses_controlled_source()).count();
    assert!(subckt >= 2, "only {subckt} families use subcircuits");
    assert!(ctrl >= 2, "only {ctrl} families use controlled sources");

    let contracts = builtin_contracts();
    let gated = run_zoo(&families, &contracts).unwrap();
    assert_eq!(gated.len(), families.len());

    for g in &gated {
        assert!(
            g.violations.is_empty(),
            "family '{}' violates its contract: {:?} (report {:?})",
            g.run.name,
            g.violations,
            g.run.report
        );
        // Sanity on the report itself.
        assert!(g.run.report.n_samples > 100, "{}", g.run.name);
        assert!(g.run.report.swing > 1e-3, "{}", g.run.name);
        assert!(g.run.report.nrmse.is_finite(), "{}", g.run.name);
        assert!(g.run.n_freq_poles >= 1, "{}", g.run.name);
    }

    // The gate is not vacuous: tightening any family's bound below its
    // measured error must produce a violation.
    for g in &gated {
        let tightened = AccuracyContract {
            max_nrmse: g.run.report.nrmse * 0.5,
            max_abs_norm: g.contract.max_abs_norm,
            max_settled_nrmse: g.contract.max_settled_nrmse,
        };
        let v = tightened.check(&g.run.report);
        assert!(
            v.iter().any(|v| v.metric == "nrmse"),
            "tightened contract did not trip for '{}'",
            g.run.name
        );
    }

    // The report artifact renders to valid JSON and round-trips.
    let doc = report_json(DEFAULT_SEED, &gated);
    let text = doc.render();
    let parsed = Json::parse(&text).unwrap();
    assert_eq!(parsed.get("n_failed").and_then(Json::as_f64), Some(0.0));
    assert_eq!(parsed.get("n_families").and_then(Json::as_f64), Some(gated.len() as f64));
    let fams = parsed.get("families").unwrap();
    for g in &gated {
        let entry = fams.get(g.run.name).unwrap_or_else(|| panic!("{} missing", g.run.name));
        assert_eq!(entry.get("pass"), Some(&Json::Bool(true)));
    }
}

#[test]
fn zoo_runs_are_reproducible() {
    // Same seed → identical decks → identical extraction and scores.
    let fam_a = &zoo(DEFAULT_SEED)[0];
    let fam_b = &zoo(DEFAULT_SEED)[0];
    let a = rvf_validate::run_family(fam_a).unwrap();
    let b = rvf_validate::run_family(fam_b).unwrap();
    assert_eq!(a.report, b.report);
    assert_eq!(a.n_freq_poles, b.n_freq_poles);
}

#[test]
fn missing_contract_is_a_typed_error() {
    let families = zoo(DEFAULT_SEED);
    let empty = std::collections::HashMap::new();
    let err = run_zoo(&families[..1], &empty).unwrap_err();
    assert!(matches!(err, rvf_validate::ZooError::MissingContract { .. }), "{err:?}");
    assert!(err.to_string().contains(families[0].name));
}
