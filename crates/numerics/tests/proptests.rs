//! Property-based tests for the numerical kernels.

use proptest::prelude::*;
use rvf_numerics::{
    c, cumtrapz, eig_2x2, eigenvalues, from_roots, linspace, lstsq, sort_eigenvalues, Complex,
    FohScalar, Lu, Mat, Qr,
};

fn finite_f64(range: core::ops::Range<f64>) -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL.prop_map(move |v| {
        let span = range.end - range.start;
        range.start + (v.abs() % 1.0) * span
    })
}

fn small_matrix(n: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-10.0..10.0f64, n * n).prop_map(move |data| Mat::from_vec(n, n, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_field_axioms(ar in -5.0..5.0f64, ai in -5.0..5.0f64,
                            br in -5.0..5.0f64, bi in -5.0..5.0f64) {
        let a = c(ar, ai);
        let b = c(br, bi);
        // Commutativity.
        prop_assert!(((a + b) - (b + a)).abs() < 1e-12);
        prop_assert!(((a * b) - (b * a)).abs() < 1e-12);
        // Conjugation is an automorphism.
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-10);
        // |ab| = |a||b|.
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9);
    }

    #[test]
    fn complex_inverse_round_trip(re in -100.0..100.0f64, im in -100.0..100.0f64) {
        prop_assume!(re.abs() > 1e-6 || im.abs() > 1e-6);
        let z = c(re, im);
        prop_assert!((z * z.inv() - Complex::ONE).abs() < 1e-10);
    }

    #[test]
    fn complex_exp_ln_round_trip(re in -3.0..3.0f64, im in -3.0..3.0f64) {
        prop_assume!(re.abs() > 1e-3 || im.abs() > 1e-3);
        let z = c(re, im);
        prop_assert!((z.ln().exp() - z).abs() < 1e-10 * z.abs().max(1.0));
    }

    #[test]
    fn lu_solve_residual(m in small_matrix(4), b in prop::collection::vec(-10.0..10.0f64, 4)) {
        if let Ok(lu) = Lu::factor(&m) {
            // Skip numerically hopeless cases.
            prop_assume!(lu.rcond_estimate() > 1e-10);
            let x = lu.solve(&b).unwrap();
            let r = m.matvec(&x);
            for (ri, bi) in r.iter().zip(&b) {
                prop_assert!((ri - bi).abs() < 1e-6, "residual too large");
            }
        }
    }

    #[test]
    fn lu_det_matches_eigenvalue_product(m in small_matrix(3)) {
        if let Ok(lu) = Lu::factor(&m) {
            prop_assume!(lu.rcond_estimate() > 1e-8);
            let det = lu.det();
            let e = eigenvalues(&m).unwrap();
            let prod: Complex = e.iter().copied().product();
            prop_assert!((prod.re - det).abs() < 1e-6 * det.abs().max(1.0),
                "det {det} vs eig product {prod:?}");
            prop_assert!(prod.im.abs() < 1e-6 * det.abs().max(1.0));
        }
    }

    #[test]
    fn qr_normal_equations(rows in 3usize..8, data in prop::collection::vec(-5.0..5.0f64, 64),
                           rhs in prop::collection::vec(-5.0..5.0f64, 8)) {
        let cols = 2usize;
        let a = Mat::from_vec(rows, cols, data[..rows * cols].to_vec());
        let b = &rhs[..rows];
        let f = Qr::factor(&a);
        if f.rank(1e-8) == cols {
            let x = f.solve_lstsq(b).unwrap();
            let ax = a.matvec(&x);
            let r: Vec<f64> = ax.iter().zip(b).map(|(p, q)| p - q).collect();
            let atr = a.matvec_t(&r);
            for v in atr {
                prop_assert!(v.abs() < 1e-6, "normal equations violated: {v}");
            }
        }
    }

    #[test]
    fn factor_with_rhs_agrees_with_factor_then_qt_mul(
        rows in 5usize..12,
        cols in 2usize..5,
        data in prop::collection::vec(-5.0..5.0f64, 60),
        rhs in prop::collection::vec(-5.0..5.0f64, 12),
    ) {
        // Random tall matrices: the fused path must agree with the
        // separate factor + qt_mul pipeline to 1e-14.
        let cols = cols.min(rows);
        let a = Mat::from_fn(rows, cols, |i, j| data[(i * cols + j) % data.len()]);
        let b: Vec<f64> = (0..rows).map(|i| rhs[i % rhs.len()]).collect();
        let (fused, y_fused) = Qr::factor_with_rhs(&a, &b);
        let separate = Qr::factor(&a);
        let y_sep = separate.qt_mul(&b);
        let scale = b.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        for (p, q) in y_fused.iter().zip(&y_sep) {
            prop_assert!((p - q).abs() <= 1e-14 * scale, "Qᵀb mismatch: {p} vs {q}");
        }
        let (rf, rs) = (fused.r(), separate.r());
        for i in 0..cols {
            for j in 0..cols {
                prop_assert!((rf[(i, j)] - rs[(i, j)]).abs() <= 1e-14 * rs.norm_max().max(1.0));
            }
        }
    }

    #[test]
    fn eigenvalue_trace_invariant(m in small_matrix(5)) {
        let e = eigenvalues(&m).unwrap();
        let sum: Complex = e.iter().sum();
        let tr: f64 = (0..5).map(|i| m[(i, i)]).sum();
        let scale = m.norm_max().max(1.0);
        prop_assert!((sum.re - tr).abs() < 1e-7 * scale * 5.0, "trace {tr} vs {sum:?}");
        prop_assert!(sum.im.abs() < 1e-7 * scale * 5.0);
    }

    #[test]
    fn eigenvalues_conjugate_symmetry(m in small_matrix(4)) {
        // Real matrices have conjugate-symmetric spectra.
        let mut e = eigenvalues(&m).unwrap();
        sort_eigenvalues(&mut e);
        let mut conj: Vec<Complex> = e.iter().map(|z| z.conj()).collect();
        sort_eigenvalues(&mut conj);
        let scale = m.norm_max().max(1.0);
        for (a, b) in e.iter().zip(&conj) {
            prop_assert!((*a - *b).abs() < 1e-6 * scale, "spectrum not conjugate-symmetric");
        }
    }

    #[test]
    fn polynomial_roots_recovered(r1 in -5.0..5.0f64, r2 in -5.0..5.0f64, r3 in -5.0..5.0f64) {
        prop_assume!((r1 - r2).abs() > 0.1 && (r2 - r3).abs() > 0.1 && (r1 - r3).abs() > 0.1);
        let p = from_roots(&[r1, r2, r3]);
        let mut roots = p.roots().unwrap();
        sort_eigenvalues(&mut roots);
        let mut want = [r1, r2, r3];
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (got, w) in roots.iter().zip(want) {
            prop_assert!((got.re - w).abs() < 1e-5 && got.im.abs() < 1e-5);
        }
    }

    #[test]
    fn eig_2x2_matches_general_solver(a in -5.0..5.0f64, b in -5.0..5.0f64,
                                      cc in -5.0..5.0f64, d in -5.0..5.0f64) {
        let m = Mat::from_rows(&[&[a, b], &[cc, d]]);
        let mut closed = eig_2x2(a, b, cc, d).to_vec();
        let mut general = eigenvalues(&m).unwrap();
        sort_eigenvalues(&mut closed);
        sort_eigenvalues(&mut general);
        for (x, y) in closed.iter().zip(&general) {
            prop_assert!((*x - *y).abs() < 1e-8);
        }
    }

    #[test]
    fn foh_scalar_decays_for_stable_pole(a in -1e6..-1.0f64, h in 1e-6..1e-2f64, x0 in -10.0..10.0f64) {
        // Homogeneous response magnitude never grows.
        let p = FohScalar::new(a, h);
        let x1 = p.step(x0, 0.0, 0.0);
        prop_assert!(x1.abs() <= x0.abs() + 1e-12);
    }

    #[test]
    fn cumtrapz_linearity(scale in -4.0..4.0f64) {
        let x = linspace(0.0, 1.0, 33);
        let y1: Vec<f64> = x.iter().map(|v| v.sin()).collect();
        let ys: Vec<f64> = y1.iter().map(|v| scale * v).collect();
        let c1 = cumtrapz(&x, &y1);
        let cs = cumtrapz(&x, &ys);
        for (a, b) in c1.iter().zip(&cs) {
            prop_assert!((scale * a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn lstsq_exact_for_consistent_systems(x0 in -5.0..5.0f64, x1 in -5.0..5.0f64) {
        // Build a consistent overdetermined system with known solution.
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, -1.0], &[0.5, 0.5], &[2.0, 2.0]]);
        let truth = [x0, x1];
        let b = a.matvec(&truth);
        let got = lstsq(&a, &b).unwrap();
        prop_assert!((got[0] - x0).abs() < 1e-8 && (got[1] - x1).abs() < 1e-8);
    }

    #[test]
    fn finite_strategy_is_in_range(v in finite_f64(2.0..3.0)) {
        prop_assert!((2.0..3.0).contains(&v));
    }
}
