//! Property tests for the Hessenberg–triangular pencil reduction — the
//! eig-style suite for `rvf_numerics::pencil`.

use proptest::prelude::*;
use rvf_numerics::{c, CLu, CMat, Complex, HtPencil, Lu, Mat};

fn small_matrix(n: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-10.0..10.0f64, n * n).prop_map(move |data| Mat::from_vec(n, n, data))
}

/// A pencil whose `G` is diagonally dominant (hence nonsingular) and
/// whose `C` is an arbitrary dense matrix — the stable-snapshot shape
/// the TFT sampler produces (MNA conductance + capacitance Jacobians).
fn stable_pencil(n: usize) -> impl Strategy<Value = (Mat, Mat)> {
    (small_matrix(n), small_matrix(n)).prop_map(move |(mut g, c)| {
        for i in 0..n {
            let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| g[(i, j)].abs()).sum();
            g[(i, i)] = row_sum + 1.0 + g[(i, i)].abs();
        }
        (g, c)
    })
}

fn max_abs_diff(a: &Mat, b: &Mat) -> f64 {
    a.as_slice().iter().zip(b.as_slice()).fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_pencils_round_trip_through_reduction((g, cm) in stable_pencil(5)) {
        let p = HtPencil::reduce(&g, &cm).unwrap();
        // Structure: H upper Hessenberg, R upper triangular.
        for i in 0..5 {
            for j in 0..5 {
                if i > j + 1 {
                    prop_assert!(p.hessenberg()[(i, j)].abs() < 1e-12);
                }
                if i > j {
                    prop_assert!(p.triangular()[(i, j)].abs() < 1e-12);
                }
            }
        }
        // Orthogonality of both factors.
        let qtq = p.q().transpose().matmul(p.q());
        let ztz = p.z().transpose().matmul(p.z());
        prop_assert!(max_abs_diff(&qtq, &Mat::identity(5)) < 1e-12);
        prop_assert!(max_abs_diff(&ztz, &Mat::identity(5)) < 1e-12);
        // Round-trip: Q·H·Zᵀ = G and Q·R·Zᵀ = C to high relative accuracy.
        let scale = g.norm_max().max(cm.norm_max()).max(1.0);
        let g2 = p.q().matmul(p.hessenberg()).matmul(&p.z().transpose());
        let c2 = p.q().matmul(p.triangular()).matmul(&p.z().transpose());
        prop_assert!(max_abs_diff(&g2, &g) < 1e-11 * scale);
        prop_assert!(max_abs_diff(&c2, &cm) < 1e-11 * scale);
    }

    #[test]
    fn reduced_solve_matches_real_lu_solve(
        (g, cm) in stable_pencil(4),
        b in prop::collection::vec(-5.0..5.0f64, 4),
        sigma in -0.4..0.4f64,
    ) {
        // At a real frequency σ the pencil system (G + σ·C)·x = b is a
        // plain real system: the reduced path must match Lu::factor.
        let p = HtPencil::reduce(&g, &cm).unwrap();
        let sys = g.axpy(sigma, &cm);
        if let Ok(lu) = Lu::factor(&sys) {
            prop_assume!(lu.rcond_estimate() > 1e-8);
            let x_ref = lu.solve(&b).unwrap();
            let x = p.solve(Complex::from_re(sigma), &b).unwrap();
            for (xi, ri) in x.iter().zip(&x_ref) {
                prop_assert!((xi.re - ri).abs() < 1e-8, "re mismatch: {} vs {}", xi.re, ri);
                prop_assert!(xi.im.abs() < 1e-8, "imaginary leak: {}", xi.im);
            }
        }
    }

    #[test]
    fn reduced_solve_matches_complex_lu_solve(
        (g, cm) in stable_pencil(6),
        b in prop::collection::vec(-5.0..5.0f64, 6),
        w in 0.1..100.0f64,
    ) {
        let p = HtPencil::reduce(&g, &cm).unwrap();
        let s = Complex::from_im(w);
        let sys = CMat::from_real_pair(&g, s, &cm);
        if let Ok(clu) = CLu::factor(&sys) {
            let x_ref = clu.solve_real(&b).unwrap();
            prop_assume!(x_ref.iter().all(|v| v.abs() < 1e6));
            let x = p.solve(s, &b).unwrap();
            for (xi, ri) in x.iter().zip(&x_ref) {
                prop_assert!((*xi - *ri).abs() < 1e-8 * ri.abs().max(1.0));
            }
        }
    }

    #[test]
    fn jw_real_kernel_matches_complex_hessenberg_solve(
        (g, cm) in stable_pencil(6),
        bt in prop::collection::vec(-5.0..5.0f64, 6),
        w in -1.0e6..1.0e6f64,
    ) {
        // The real-arithmetic jω kernel must track the general complex
        // reference path to ≤1e-12 relative on the reduced system —
        // this is the pin behind HtPencil::solve's automatic dispatch
        // for purely imaginary evaluation points.
        let p = HtPencil::reduce(&g, &cm).unwrap();
        let reference = p.solve_reduced_complex(Complex::from_im(w), &bt).unwrap();
        let fast = p.solve_reduced_jw(w, &bt).unwrap();
        let scale = reference.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-300);
        for (a, r) in fast.iter().zip(&reference) {
            prop_assert!(
                (*a - *r).abs() <= 1e-12 * scale,
                "jω vs complex mismatch at w={}: {:?} vs {:?}", w, a, r
            );
        }
    }

    #[test]
    fn projected_transfer_equals_unprojected_dot(
        (g, cm) in stable_pencil(5),
        b in prop::collection::vec(-3.0..3.0f64, 5),
        d in prop::collection::vec(-3.0..3.0f64, 5),
        w in 0.5..50.0f64,
    ) {
        let p = HtPencil::reduce(&g, &cm).unwrap();
        let s = c(0.0, w);
        let bt = p.project_input(&b).unwrap();
        let dt = p.project_output(&d).unwrap();
        let fast = p.transfer_projected(&bt, &dt, s).unwrap();
        let x = p.solve(s, &b).unwrap();
        let direct = d.iter().zip(&x).fold(Complex::ZERO, |acc, (di, xi)| acc + xi.scale(*di));
        prop_assert!((fast - direct).abs() < 1e-9 * direct.abs().max(1.0));
    }
}

#[test]
fn singular_c_pure_resistive_snapshot() {
    // A resistive snapshot has C = 0 (rank 0) — and partially dynamic
    // snapshots have rank-deficient C. Both must reduce and solve.
    let g = Mat::from_rows(&[
        &[3.0, -1.0, 0.0, -1.0],
        &[-1.0, 4.0, -2.0, 0.0],
        &[0.0, -2.0, 5.0, -1.0],
        &[-1.0, 0.0, -1.0, 3.0],
    ]);
    for cm in [
        Mat::zeros(4, 4),                         // no dynamic elements at all
        Mat::from_diag(&[0.0, 1.0e-9, 0.0, 0.0]), // one capacitor
        Mat::from_diag(&[0.0, 1.0e-9, 2.0e-9, 0.0]),
    ] {
        let p = HtPencil::reduce(&g, &cm).unwrap();
        let b = [1.0, 0.0, -2.0, 0.5];
        for s in [Complex::ZERO, Complex::from_im(1.0e9), Complex::new(-1.0e8, 5.0e8)] {
            let x = p.solve(s, &b).unwrap();
            let x_ref =
                CLu::factor(&CMat::from_real_pair(&g, s, &cm)).unwrap().solve_real(&b).unwrap();
            for (a, r) in x.iter().zip(&x_ref) {
                assert!((*a - *r).abs() < 1e-10, "C rank-deficient mismatch: {a:?} vs {r:?}");
            }
        }
    }
}

#[test]
fn reduction_is_reusable_across_many_frequencies() {
    // One reduction serves an entire log grid — the TFT access pattern.
    let g = Mat::from_rows(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]]);
    let cm = Mat::from_diag(&[1.0e-9, 2.0e-9, 0.5e-9]);
    let p = HtPencil::reduce(&g, &cm).unwrap();
    let b = [1.0, 0.0, 0.0];
    let d = [0.0, 0.0, 1.0];
    let bt = p.project_input(&b).unwrap();
    let dt = p.project_output(&d).unwrap();
    for i in 0..60 {
        let s = Complex::from_im(2.0 * core::f64::consts::PI * 10f64.powf(i as f64 / 6.0));
        let fast = p.transfer_projected(&bt, &dt, s).unwrap();
        let clu = CLu::factor(&CMat::from_real_pair(&g, s, &cm)).unwrap();
        let x = clu.solve_real(&b).unwrap();
        let naive = d.iter().zip(&x).fold(Complex::ZERO, |acc, (di, xi)| acc + xi.scale(*di));
        assert!((fast - naive).abs() < 1e-10 * naive.abs().max(1e-30));
    }
}
