//! Deterministic unit tests of the three kernel families the paper's
//! pipeline leans on (satellite to the workspace bootstrap):
//!
//! * LU solves against systems with known closed-form solutions (the
//!   MNA solves of every DC/transient/AC step),
//! * QR least squares, checked through residual orthogonality — the
//!   defining property of the fitting systems' solutions,
//! * eigenvalue recovery from companion matrices — the zeros-of-sigma
//!   eigenproblem that drives vector-fitting pole relocation.

use rvf_numerics::{
    c, eigenvalues, from_roots, lstsq, sort_eigenvalues, CLu, CMat, Complex, Lu, Mat, Qr,
};

const TOL: f64 = 1e-12;

// ---------------------------------------------------------------- LU --

#[test]
fn lu_solves_known_spd_system_exactly() {
    // A·x = b with A symmetric positive definite and x chosen first.
    let a = Mat::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
    let x_true = [1.0, -2.0, 3.0];
    let b = a.matvec(&x_true);
    let lu = Lu::factor(&a).unwrap();
    let x = lu.solve(&b).unwrap();
    for (got, want) in x.iter().zip(x_true) {
        assert!((got - want).abs() < TOL, "{got} vs {want}");
    }
}

#[test]
fn lu_pivots_through_zero_leading_entry() {
    // Requires a row exchange: naive elimination without pivoting
    // divides by zero on a11.
    let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
    let lu = Lu::factor(&a).unwrap();
    let x = lu.solve(&[5.0, 7.0]).unwrap();
    assert!((x[0] - 7.0).abs() < TOL && (x[1] - 5.0).abs() < TOL);
    assert!((lu.det().abs() - 1.0).abs() < TOL, "|det| of a permutation is 1");
}

#[test]
fn lu_det_of_triangular_product_is_diagonal_product() {
    // det(L·U) for a matrix assembled from known triangular factors.
    let l = Mat::from_rows(&[&[1.0, 0.0, 0.0], &[0.5, 1.0, 0.0], &[-2.0, 3.0, 1.0]]);
    let u = Mat::from_rows(&[&[2.0, 1.0, -1.0], &[0.0, -3.0, 2.0], &[0.0, 0.0, 5.0]]);
    let a = l.matmul(&u);
    let lu = Lu::factor(&a).unwrap();
    // det = 2 · (−3) · 5 = −30.
    assert!((lu.det() + 30.0).abs() < 1e-10, "det {}", lu.det());
}

#[test]
fn lu_rejects_singular_matrix() {
    let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
    assert!(
        Lu::factor(&a).is_err() || Lu::factor(&a).unwrap().rcond_estimate() < 1e-14,
        "rank-1 matrix must not produce a usable factorization"
    );
}

#[test]
fn complex_lu_matches_analytic_rc_impedance() {
    // One-node RC at s = jω: (G + sC)·v = i  ⇒  v = i / (G + jωC).
    let g = Mat::from_rows(&[&[1.0e-3]]);
    let cap = Mat::from_rows(&[&[1.0e-9]]);
    let omega = 2.0 * std::f64::consts::PI * 1.0e6;
    let s = Complex::from_im(omega);
    let sys = CMat::from_real_pair(&g, s, &cap);
    let clu = CLu::factor(&sys).unwrap();
    let v = clu.solve_real(&[1.0]).unwrap();
    let want = (c(1.0e-3, 0.0) + s * c(1.0e-9, 0.0)).inv();
    assert!((v[0] - want).abs() < 1e-9 * want.abs(), "{:?} vs {want:?}", v[0]);
}

// ---------------------------------------------------------------- QR --

#[test]
fn qr_least_squares_residual_is_orthogonal_to_column_space() {
    // Overdetermined 6×3 system with an inconsistent right-hand side:
    // the solution is characterized by Aᵀ(b − A·x) = 0.
    let a = Mat::from_rows(&[
        &[1.0, 2.0, 0.5],
        &[0.0, 1.0, -1.0],
        &[2.0, -1.0, 3.0],
        &[1.0, 1.0, 1.0],
        &[-1.0, 0.5, 2.0],
        &[3.0, 0.0, -2.0],
    ]);
    let b = [1.0, -2.0, 0.5, 4.0, -1.5, 2.0];
    let x = lstsq(&a, &b).unwrap();
    let ax = a.matvec(&x);
    let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
    let atr = a.matvec_t(&r);
    for v in &atr {
        assert!(v.abs() < 1e-10, "normal equations violated: Aᵀr = {atr:?}");
    }
    // The residual is genuinely nonzero (b is not in range(A)) — the
    // orthogonality check above is not vacuous.
    let rnorm: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(rnorm > 0.1, "rhs unexpectedly consistent, residual {rnorm}");
}

#[test]
fn qr_reproduces_consistent_system_exactly() {
    let a = Mat::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0], &[1.0, 4.0]]);
    // Points on the line y = 3 − 0.5·t: intercept 3, slope −0.5.
    let b = [2.5, 2.0, 1.5, 1.0];
    let f = Qr::factor(&a);
    assert_eq!(f.rank(1e-12), 2);
    let x = f.solve_lstsq(&b).unwrap();
    assert!((x[0] - 3.0).abs() < TOL && (x[1] + 0.5).abs() < TOL, "{x:?}");
}

#[test]
fn qr_factor_is_orthonormal_times_upper_triangular() {
    let a =
        Mat::from_rows(&[&[2.0, -1.0, 0.5], &[1.0, 3.0, 1.0], &[0.0, 1.0, -2.0], &[1.5, 0.5, 1.0]]);
    let f = Qr::factor(&a);
    let q = f.q();
    let r = f.r();
    // QᵀQ = I on the economy factor.
    for i in 0..3 {
        for j in 0..3 {
            let dot: f64 = (0..4).map(|k| q[(k, i)] * q[(k, j)]).sum();
            let want = if i == j { 1.0 } else { 0.0 };
            assert!((dot - want).abs() < 1e-12, "QᵀQ[{i}{j}] = {dot}");
        }
    }
    // R upper triangular and Q·R = A.
    for i in 1..3 {
        for j in 0..i {
            assert!(r[(i, j)].abs() < 1e-12, "R not triangular at ({i},{j})");
        }
    }
    let qr = q.matmul(&r);
    for i in 0..4 {
        for j in 0..3 {
            assert!((qr[(i, j)] - a[(i, j)]).abs() < 1e-12);
        }
    }
}

// --------------------------------------------- companion eigenvalues --

/// Companion matrix of the monic polynomial with the given low-to-high
/// coefficients `a0 + a1·x + … + x^n` (the relocation eigenproblem
/// shape: vector fitting finds new poles as eigenvalues of exactly such
/// a structure).
fn companion(coeffs_low_to_high: &[f64]) -> Mat {
    let n = coeffs_low_to_high.len();
    let mut m = Mat::zeros(n, n);
    for i in 1..n {
        m[(i, i - 1)] = 1.0;
    }
    for i in 0..n {
        m[(i, n - 1)] = -coeffs_low_to_high[i];
    }
    m
}

#[test]
fn companion_eigenvalues_recover_distinct_real_roots() {
    // p(x) = (x − 1)(x + 2)(x − 3)(x + 4)
    //      = x⁴ + 2x³ − 13x² − 14x + 24.
    let m = companion(&[24.0, -14.0, -13.0, 2.0]);
    let mut eigs = eigenvalues(&m).unwrap();
    sort_eigenvalues(&mut eigs);
    let mut want = [c(-4.0, 0.0), c(-2.0, 0.0), c(1.0, 0.0), c(3.0, 0.0)].to_vec();
    sort_eigenvalues(&mut want);
    for (got, w) in eigs.iter().zip(&want) {
        assert!((*got - *w).abs() < 1e-8, "{got:?} vs {w:?}");
    }
}

#[test]
fn companion_eigenvalues_recover_complex_pole_pair() {
    // p(x) = (x + 2)(x² + 2x + 5): roots −2 and −1 ± 2i — a stable
    // real pole plus a conjugate pair, the canonical VF pole layout.
    // Expansion: x³ + 4x² + 9x + 10.
    let m = companion(&[10.0, 9.0, 4.0]);
    let mut eigs = eigenvalues(&m).unwrap();
    sort_eigenvalues(&mut eigs);
    let mut want = vec![c(-2.0, 0.0), c(-1.0, 2.0), c(-1.0, -2.0)];
    sort_eigenvalues(&mut want);
    for (got, w) in eigs.iter().zip(&want) {
        assert!((*got - *w).abs() < 1e-8, "{got:?} vs {w:?}");
    }
}

#[test]
fn companion_route_agrees_with_poly_roots() {
    // The same roots through `from_roots(..).roots()` (which builds its
    // own companion internally) and through an explicit companion here.
    let roots = [-0.5, -1.5, -2.5, -3.5, -4.5];
    let p = from_roots(&roots);
    let mut via_poly = p.roots().unwrap();
    sort_eigenvalues(&mut via_poly);
    let mut want = roots;
    want.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (got, want) in via_poly.iter().zip(want) {
        assert!((got.re - want).abs() < 1e-7 && got.im.abs() < 1e-7, "{got:?} vs {want}");
    }
}

#[test]
fn companion_eigenvalues_scale_to_radian_frequencies() {
    // Pole relocation happens at ~1e9 rad/s in this problem domain;
    // the solver must stay accurate at that scaling, not just at O(1).
    let w = 1.0e9;
    // roots −w and (−0.1 ± 1.0i)·w  ⇒  monic cubic coefficients:
    let a2 = 1.2 * w; // sum of roots, negated
    let a1 = (0.01 + 1.0 + 0.2) * w * w; // pairwise products: 1.01w² + 0.2w²
    let a0 = 1.01 * w * w * w; // product, negated
    let m = companion(&[a0, a1, a2]);
    let mut eigs = eigenvalues(&m).unwrap();
    sort_eigenvalues(&mut eigs);
    let mut want = vec![c(-w, 0.0), c(-0.1 * w, w), c(-0.1 * w, -w)];
    sort_eigenvalues(&mut want);
    for (got, wv) in eigs.iter().zip(&want) {
        assert!((*got - *wv).abs() < 1e-4 * w, "{got:?} vs {wv:?}");
    }
}
