//! Radix-2 FFT and power-spectrum helpers.
//!
//! Used by the evaluation harness to quantify the paper's "spectrally
//! rich bit pattern" claim (Fig. 9): the PRBS validation stimulus excites
//! the model across the whole band, unlike the single-tone training
//! signal.

use crate::complex::Complex;

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two (zero-pad first; see
/// [`power_spectrum`]).
pub fn fft_in_place(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * core::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar(1.0, ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward FFT of a real signal (zero-padded to the next power of two).
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let n = signal.len().next_power_of_two().max(1);
    let mut data: Vec<Complex> = signal.iter().map(|&v| Complex::from_re(v)).collect();
    data.resize(n, Complex::ZERO);
    fft_in_place(&mut data);
    data
}

/// Inverse FFT (in place).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn ifft_in_place(data: &mut [Complex]) {
    let n = data.len();
    for v in data.iter_mut() {
        *v = v.conj();
    }
    fft_in_place(data);
    let scale = 1.0 / n as f64;
    for v in data.iter_mut() {
        *v = v.conj().scale(scale);
    }
}

/// One-sided power spectrum of a real signal sampled at `dt`.
///
/// Returns `(frequencies_hz, magnitudes)` up to the Nyquist frequency;
/// magnitudes are normalized by the transform length.
pub fn power_spectrum(signal: &[f64], dt: f64) -> (Vec<f64>, Vec<f64>) {
    let spec = fft_real(signal);
    let n = spec.len();
    let df = 1.0 / (n as f64 * dt);
    let half = n / 2;
    let freqs: Vec<f64> = (0..half).map(|i| i as f64 * df).collect();
    let mags: Vec<f64> = spec[..half].iter().map(|v| v.abs() / n as f64).collect();
    (freqs, mags)
}

/// Spectral occupancy: the fraction of one-sided bins whose magnitude
/// exceeds `threshold` relative to the peak bin. A single tone occupies
/// ~one bin; a PRBS pattern spreads across the band.
pub fn spectral_occupancy(signal: &[f64], dt: f64, threshold: f64) -> f64 {
    let (_, mags) = power_spectrum(signal, dt);
    if mags.len() <= 1 {
        return 0.0;
    }
    // Exclude DC.
    let peak = mags[1..].iter().fold(0.0_f64, |m, &v| m.max(v));
    if peak == 0.0 {
        return 0.0;
    }
    let hits = mags[1..].iter().filter(|&&v| v >= threshold * peak).count();
    hits as f64 / (mags.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        fft_in_place(&mut data);
        for v in &data {
            assert!((*v - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_single_tone_peaks_at_bin() {
        let n = 64;
        let k = 5;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * core::f64::consts::PI * k as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&signal);
        // Peak at bins k and n-k with magnitude n/2.
        assert!((spec[k].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((spec[n - k].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (i, v) in spec.iter().enumerate() {
            if i != k && i != n - k {
                assert!(v.abs() < 1e-9, "leakage at bin {i}");
            }
        }
    }

    #[test]
    fn round_trip_fft_ifft() {
        let mut data: Vec<Complex> =
            (0..32).map(|i| c((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos())).collect();
        let original = data.clone();
        fft_in_place(&mut data);
        ifft_in_place(&mut data);
        for (a, b) in data.iter().zip(&original) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_identity() {
        let signal: Vec<f64> = (0..128).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let spec = fft_real(&signal);
        let time_energy: f64 = signal.iter().map(|v| v * v).sum();
        let freq_energy: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / spec.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    fn occupancy_distinguishes_tone_from_noise_like() {
        let n = 512;
        let dt = 1e-9;
        let tone: Vec<f64> = (0..n)
            .map(|i| (2.0 * core::f64::consts::PI * 20.0 * i as f64 / n as f64).sin())
            .collect();
        // PRBS-like alternation with irregular runs.
        let mut lfsr = 0x5au8;
        let rich: Vec<f64> = (0..n)
            .map(|_| {
                let bit = ((lfsr >> 6) ^ (lfsr >> 5)) & 1;
                lfsr = ((lfsr << 1) | bit) & 0x7f;
                if bit == 1 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        let occ_tone = spectral_occupancy(&tone, dt, 0.05);
        let occ_rich = spectral_occupancy(&rich, dt, 0.05);
        assert!(occ_tone < 0.05, "tone occupancy {occ_tone}");
        assert!(occ_rich > 5.0 * occ_tone, "rich {occ_rich} vs tone {occ_tone}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut d = vec![Complex::ZERO; 12];
        fft_in_place(&mut d);
    }
}
