//! Real polynomials: arithmetic, calculus and root finding.
//!
//! The CAFFEINE baseline regresses residues onto polynomial canonical
//! forms; its "manually integrable" path is polynomial antidifferentiation,
//! implemented here. Root finding goes through the companion matrix and
//! the crate's own eigensolver.

use crate::complex::Complex;
use crate::eig::eigenvalues;
use crate::error::NumericsError;
use crate::matrix::Mat;

/// A real polynomial stored by ascending coefficients:
/// `p(x) = c₀ + c₁·x + … + c_n·xⁿ`.
///
/// # Examples
///
/// ```
/// use rvf_numerics::Poly;
///
/// let p = Poly::new(vec![1.0, 0.0, 1.0]); // 1 + x²
/// assert_eq!(p.eval(2.0), 5.0);
/// assert_eq!(p.deriv().eval(2.0), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Poly {
    coeffs: Vec<f64>,
}

impl Poly {
    /// Creates a polynomial from ascending coefficients, trimming
    /// trailing zeros.
    pub fn new(mut coeffs: Vec<f64>) -> Self {
        while coeffs.len() > 1 && coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Self { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { coeffs: vec![0.0] }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Self::new(vec![c])
    }

    /// Monomial `xⁿ`.
    pub fn monomial(n: usize) -> Self {
        let mut c = vec![0.0; n + 1];
        c[n] = 1.0;
        Self { coeffs: c }
    }

    /// Ascending coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Degree (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// `true` if every coefficient is zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0.0)
    }

    /// Horner evaluation at a real point.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Horner evaluation at a complex point.
    pub fn eval_complex(&self, x: Complex) -> Complex {
        self.coeffs.iter().rev().fold(Complex::ZERO, |acc, &c| acc * x + Complex::from_re(c))
    }

    /// Derivative.
    pub fn deriv(&self) -> Poly {
        if self.coeffs.len() <= 1 {
            return Poly::zero();
        }
        Poly::new(self.coeffs[1..].iter().enumerate().map(|(i, &c)| c * (i + 1) as f64).collect())
    }

    /// Antiderivative with integration constant `c0`.
    ///
    /// This is the closed-form integration path that makes polynomial
    /// CAFFEINE models automatable; general CAFFEINE bases have no such
    /// closed form (paper, Table I).
    pub fn antideriv(&self, c0: f64) -> Poly {
        let mut out = Vec::with_capacity(self.coeffs.len() + 1);
        out.push(c0);
        for (i, &c) in self.coeffs.iter().enumerate() {
            out.push(c / (i + 1) as f64);
        }
        Poly::new(out)
    }

    /// Polynomial sum.
    pub fn add(&self, other: &Poly) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = vec![0.0; n];
        for (i, &c) in self.coeffs.iter().enumerate() {
            out[i] += c;
        }
        for (i, &c) in other.coeffs.iter().enumerate() {
            out[i] += c;
        }
        Poly::new(out)
    }

    /// Polynomial product.
    pub fn mul(&self, other: &Poly) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![0.0; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Poly::new(out)
    }

    /// Scales all coefficients.
    pub fn scale(&self, k: f64) -> Poly {
        Poly::new(self.coeffs.iter().map(|&c| c * k).collect())
    }

    /// All complex roots via the companion-matrix eigenproblem.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::NoConvergence`] if the eigensolver fails,
    /// or [`NumericsError::RankDeficient`] for the zero polynomial.
    pub fn roots(&self) -> Result<Vec<Complex>, NumericsError> {
        // Trim leading (highest-order) zeros already done by `new`.
        let n = self.degree();
        if self.is_zero() {
            return Err(NumericsError::RankDeficient { rank: 0, wanted: 1 });
        }
        if n == 0 {
            return Ok(Vec::new());
        }
        let an = self.coeffs[n];
        // Companion matrix (top-row convention).
        let mut comp = Mat::zeros(n, n);
        for j in 0..n {
            comp[(0, j)] = -self.coeffs[n - 1 - j] / an;
        }
        for i in 1..n {
            comp[(i, i - 1)] = 1.0;
        }
        eigenvalues(&comp)
    }
}

/// Builds the monic polynomial with the given real roots.
pub fn from_roots(roots: &[f64]) -> Poly {
    let mut p = Poly::constant(1.0);
    for &r in roots {
        p = p.mul(&Poly::new(vec![-r, 1.0]));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eig::sort_eigenvalues;

    #[test]
    fn eval_and_horner() {
        let p = Poly::new(vec![1.0, -3.0, 2.0]); // 1 - 3x + 2x²
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(1.0), 0.0);
        assert_eq!(p.eval(2.0), 3.0);
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Poly::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(Poly::new(vec![]).degree(), 0);
    }

    #[test]
    fn derivative_and_antiderivative_inverse() {
        let p = Poly::new(vec![3.0, -2.0, 5.0, 1.0]);
        let back = p.deriv().antideriv(p.coeffs()[0]);
        assert_eq!(back, p);
    }

    #[test]
    fn arithmetic() {
        let a = Poly::new(vec![1.0, 1.0]); // 1 + x
        let b = Poly::new(vec![-1.0, 1.0]); // -1 + x
        assert_eq!(a.mul(&b), Poly::new(vec![-1.0, 0.0, 1.0])); // x² - 1
        assert_eq!(a.add(&b), Poly::new(vec![0.0, 2.0]));
        assert_eq!(a.scale(2.0), Poly::new(vec![2.0, 2.0]));
    }

    #[test]
    fn roots_of_cubic() {
        let p = from_roots(&[1.0, -2.0, 0.5]);
        let mut r = p.roots().unwrap();
        sort_eigenvalues(&mut r);
        let want = [-2.0, 0.5, 1.0];
        for (got, w) in r.iter().zip(want) {
            assert!((got.re - w).abs() < 1e-8 && got.im.abs() < 1e-8, "{r:?}");
        }
    }

    #[test]
    fn roots_complex_pair() {
        // x² + 1 → ±j.
        let p = Poly::new(vec![1.0, 0.0, 1.0]);
        let mut r = p.roots().unwrap();
        sort_eigenvalues(&mut r);
        assert!((r[0] - Complex::new(0.0, -1.0)).abs() < 1e-10);
        assert!((r[1] - Complex::new(0.0, 1.0)).abs() < 1e-10);
    }

    #[test]
    fn constant_has_no_roots_and_zero_errs() {
        assert!(Poly::constant(5.0).roots().unwrap().is_empty());
        assert!(Poly::zero().roots().is_err());
    }

    #[test]
    fn eval_complex_consistent() {
        let p = Poly::new(vec![1.0, 2.0, 3.0]);
        let z = Complex::from_re(1.5);
        assert!((p.eval_complex(z).re - p.eval(1.5)).abs() < 1e-14);
        assert_eq!(p.eval_complex(z).im, 0.0);
    }
}
