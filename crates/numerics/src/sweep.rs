//! Work-stealing sweep executor.
//!
//! The TFT stage evaluates one transfer function per Jacobian snapshot;
//! snapshots are independent but *not* uniformly priced: one near a
//! singular operating point (slow pivoting, retries upstream) or with a
//! larger MNA dimension can cost many times its neighbours. A fixed
//! `chunks_mut` partition then leaves every other worker idle while one
//! chunk drags. [`run_sweep`] instead drains an atomic-index task queue:
//! each scoped worker claims the next unclaimed index with a
//! `fetch_add`, so load balances itself at task granularity with no
//! channels, no `Arc`, and no dependency beyond `std`.
//!
//! Failure semantics:
//!
//! * the first task error aborts the sweep — remaining queued tasks are
//!   dropped, in-flight tasks finish their current item — and is
//!   returned as [`SweepError::Task`] with the index that failed;
//! * a panicking task is caught at the call site, aborts the sweep the
//!   same way, and surfaces as [`SweepError::WorkerPanicked`] instead
//!   of tearing down the caller — on the inline single-worker path too.
//!
//! # Examples
//!
//! ```
//! use rvf_numerics::sweep::run_sweep;
//!
//! // Square 0..8 on 3 workers; results come back in task order.
//! let squares = run_sweep(8, 3, |i| Ok::<_, ()>(i * i)).unwrap();
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;

/// Tuning knobs of a sweep run.
///
/// `threads` follows the [`run_sweep`] convention (`0` = one worker per
/// available core). `batch` is the number of consecutive task indices a
/// worker claims per queue operation: the default of `1` preserves
/// task-granular stealing, while larger batches cut atomic-queue
/// traffic for workloads made of many small uniform tasks (e.g. the
/// per-response blocks of a vector fit) at the cost of coarser load
/// balancing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Worker threads (`0` = available parallelism).
    pub threads: usize,
    /// Task indices claimed per queue pop (`0` is treated as `1`).
    pub batch: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self { threads: 0, batch: 1 }
    }
}

impl SweepConfig {
    /// A config with the given worker count and task-granular stealing.
    pub fn threads(threads: usize) -> Self {
        Self { threads, batch: 1 }
    }

    /// Sets the claim batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }
}

/// A result slot written by exactly one worker.
///
/// SAFETY: `Sync` is sound because the claim counter hands every index
/// to exactly one worker (no two threads ever touch the same slot) and
/// the spawning scope joins all workers before any slot is read.
struct Slot<T>(UnsafeCell<Option<T>>);

// SAFETY: see the type-level invariant above.
unsafe impl<T: Send> Sync for Slot<T> {}

/// Error produced by a [`run_sweep`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError<E> {
    /// A task returned an error; the sweep was aborted.
    Task {
        /// Index of the failing task.
        index: usize,
        /// The task's error.
        error: E,
    },
    /// A worker thread panicked while running a task.
    WorkerPanicked {
        /// Index of the worker whose task panicked.
        worker: usize,
    },
}

impl<E: core::fmt::Display> core::fmt::Display for SweepError<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Task { index, error } => write!(f, "sweep task {index} failed: {error}"),
            Self::WorkerPanicked { worker } => write!(f, "sweep worker {worker} panicked"),
        }
    }
}

impl<E: core::fmt::Debug + core::fmt::Display> std::error::Error for SweepError<E> {}

/// Runs `n_tasks` independent tasks over `threads` scoped workers using
/// an atomic-index task queue and returns the results in task order.
///
/// `task(i)` is called exactly once for every `i` in `0..n_tasks`
/// (unless an earlier task fails — see below). Workers claim indices
/// with a relaxed `fetch_add` on a shared counter, so a slow task only
/// occupies one worker while the rest keep draining the queue; there is
/// no up-front partition to go stale.
///
/// `threads == 0` resolves to [`std::thread::available_parallelism`];
/// the worker count is additionally clamped to `n_tasks`. With one
/// worker (or one task) the sweep runs inline on the calling thread,
/// so single-threaded callers pay no spawn overhead.
///
/// # Errors
///
/// Returns [`SweepError::Task`] wrapping the first task error observed
/// (by claim order, not necessarily the lowest failing index — ties
/// across workers are raced) and [`SweepError::WorkerPanicked`] if a
/// task panicked. In both cases the queue is drained early: tasks not
/// yet claimed when the failure is flagged are never started.
pub fn run_sweep<T, E, F>(n_tasks: usize, threads: usize, task: F) -> Result<Vec<T>, SweepError<E>>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let workers = resolve_threads(threads).min(n_tasks.max(1));
    let mut units = vec![(); workers];
    run_sweep_with(n_tasks, &SweepConfig::threads(threads), &mut units, |(), i| task(i))
}

/// [`run_sweep`] with per-worker mutable state and batched claiming.
///
/// `workspaces` is a pool of caller-owned scratch states: worker `w`
/// borrows `workspaces[w]` exclusively for the whole sweep, so a caller
/// that keeps the pool alive across sweeps pays its buffer allocations
/// once — the pattern behind the allocation-free steady state of the
/// vector-fitting relocation loop. The worker count is the minimum of
/// the resolved `cfg.threads`, `n_tasks`, and `workspaces.len()`; with
/// one worker (or one task) the sweep runs inline on the calling thread
/// using `workspaces[0]`.
///
/// `cfg.batch` indices are claimed per queue pop (see [`SweepConfig`]).
/// Results come back in task order, and because every task runs exactly
/// once on exactly one workspace, the output is independent of the
/// worker count and claim interleaving for any `task` that is a pure
/// function of `(workspace-as-scratch, index)`.
///
/// # Errors
///
/// Identical failure semantics to [`run_sweep`]: the first task error
/// or contained panic aborts the sweep early. A workspace a panicking
/// task ran on is left in an unspecified (but valid) state.
///
/// # Panics
///
/// Panics if `n_tasks > 0` and `workspaces` is empty.
///
/// # Examples
///
/// ```
/// use rvf_numerics::sweep::{run_sweep_with, SweepConfig};
///
/// // Square 0..8 on 3 workers, each with a reusable scratch buffer.
/// let mut scratch = vec![Vec::<usize>::new(); 3];
/// let cfg = SweepConfig::threads(3).with_batch(2);
/// let squares = run_sweep_with(8, &cfg, &mut scratch, |buf, i| {
///     buf.clear();
///     buf.push(i * i);
///     Ok::<_, ()>(buf[0])
/// })
/// .unwrap();
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_sweep_with<W, T, E, F>(
    n_tasks: usize,
    cfg: &SweepConfig,
    workspaces: &mut [W],
    task: F,
) -> Result<Vec<T>, SweepError<E>>
where
    W: Send,
    T: Send,
    E: Send,
    F: Fn(&mut W, usize) -> Result<T, E> + Sync,
{
    if n_tasks == 0 {
        return Ok(Vec::new());
    }
    assert!(!workspaces.is_empty(), "run_sweep_with needs at least one workspace");
    let batch = cfg.batch.max(1);
    let workers = resolve_threads(cfg.threads).min(n_tasks).min(workspaces.len());
    if workers <= 1 {
        // Inline fast path: no spawn, same semantics — including panic
        // containment, so a single-snapshot sweep behaves like a
        // multi-worker one.
        let ws = &mut workspaces[0];
        let mut out = Vec::with_capacity(n_tasks);
        for i in 0..n_tasks {
            match catch_task(&task, ws, i) {
                Ok(v) => out.push(v),
                Err(e) => return Err(e.into_error(0)),
            }
        }
        return Ok(out);
    }

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    // One write-once slot per task: workers deposit results directly at
    // their claimed index, so nothing is collected per item and no
    // reordering pass is needed at the join.
    let slots: Vec<Slot<T>> = (0..n_tasks).map(|_| Slot(UnsafeCell::new(None))).collect();
    let first_err = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (w, ws) in workspaces.iter_mut().take(workers).enumerate() {
            let (next, abort, task, slots) = (&next, &abort, &task, slots.as_slice());
            handles.push(scope.spawn(move || -> Result<(), SweepError<E>> {
                // The first failure (error or panic) wins and flags the
                // other workers down before they claim more work.
                loop {
                    if abort.load(Ordering::Acquire) {
                        return Ok(());
                    }
                    let start = next.fetch_add(batch, Ordering::Relaxed);
                    if start >= n_tasks {
                        return Ok(());
                    }
                    for i in start..(start + batch).min(n_tasks) {
                        if abort.load(Ordering::Acquire) {
                            return Ok(());
                        }
                        match catch_task(task, ws, i) {
                            // SAFETY: the fetch_add hands every index to
                            // exactly one worker, so this slot is written
                            // by this thread only, and the scope joins
                            // all workers before the slots are read.
                            Ok(v) => unsafe { *slots[i].0.get() = Some(v) },
                            Err(e) => {
                                abort.store(true, Ordering::Release);
                                return Err(e.into_error(w));
                            }
                        }
                    }
                }
            }));
        }
        let mut first_err: Option<SweepError<E>> = None;
        for (w, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    abort.store(true, Ordering::Release);
                    first_err.get_or_insert(e);
                }
                // Backstop: a panic escaping catch_task (e.g. from a
                // panicking Drop) still stays contained at the join.
                Err(_panic) => {
                    abort.store(true, Ordering::Release);
                    first_err.get_or_insert(SweepError::WorkerPanicked { worker: w });
                }
            }
        }
        first_err
    });
    if let Some(e) = first_err {
        return Err(e);
    }
    // All workers exited cleanly and no error was flagged, so every
    // index was claimed and filled exactly once.
    Ok(slots.into_iter().map(|s| s.0.into_inner().expect("sweep slot filled")).collect())
}

/// Outcome of one guarded task invocation.
enum TaskFailure<E> {
    Error { index: usize, error: E },
    Panicked,
}

impl<E> TaskFailure<E> {
    fn into_error(self, worker: usize) -> SweepError<E> {
        match self {
            Self::Error { index, error } => SweepError::Task { index, error },
            Self::Panicked => SweepError::WorkerPanicked { worker },
        }
    }
}

/// Runs `task(ws, i)` with panics caught at the call site, so a
/// poisoned task flags the sweep down immediately instead of surfacing
/// only when its worker is joined. `AssertUnwindSafe` is sound here: on
/// panic the whole sweep is aborted, every partial result is discarded,
/// and the workspace is documented as unspecified after a panic.
fn catch_task<W, T, E, F>(task: &F, ws: &mut W, i: usize) -> Result<T, TaskFailure<E>>
where
    F: Fn(&mut W, usize) -> Result<T, E> + Sync,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(ws, i))) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(error)) => Err(TaskFailure::Error { index: i, error }),
        Err(_payload) => Err(TaskFailure::Panicked),
    }
}

/// Resolves a requested thread count: `0` means "use every available
/// core" via [`std::thread::available_parallelism`] (falling back to 1
/// if the parallelism cannot be queried).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_in_task_order() {
        for threads in [1, 2, 3, 8] {
            let out = run_sweep(17, threads, |i| Ok::<_, ()>(2 * i + 1)).unwrap();
            assert_eq!(out, (0..17).map(|i| 2 * i + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_sweep_is_empty() {
        assert_eq!(run_sweep(0, 4, |_| Ok::<usize, ()>(0)).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = run_sweep(100, 7, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok::<_, ()>(i)
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn uneven_task_cost_still_completes() {
        // One deliberately slow task must not starve the rest.
        let out = run_sweep(32, 4, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Ok::<_, ()>(i * i)
        })
        .unwrap();
        assert_eq!(out[31], 31 * 31);
    }

    #[test]
    fn task_error_aborts_and_reports_index() {
        let err = run_sweep(64, 3, |i| if i == 5 { Err("boom") } else { Ok(i) }).unwrap_err();
        match err {
            SweepError::Task { index, error } => {
                assert_eq!(index, 5);
                assert_eq!(error, "boom");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_skips_unclaimed_tasks() {
        // With one worker the queue is strictly sequential: nothing
        // after the failing index may run.
        let calls = AtomicUsize::new(0);
        let err = run_sweep(100, 1, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            if i == 3 {
                Err(())
            } else {
                Ok(i)
            }
        })
        .unwrap_err();
        assert!(matches!(err, SweepError::Task { index: 3, .. }));
        assert_eq!(calls.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panicking_task_is_contained() {
        let err = run_sweep(16, 4, |i| if i == 7 { panic!("poisoned") } else { Ok::<_, ()>(i) })
            .unwrap_err();
        assert!(matches!(err, SweepError::WorkerPanicked { .. }), "got {err:?}");
    }

    #[test]
    fn panicking_task_is_contained_on_inline_path() {
        // A single worker (or single task) runs inline on the calling
        // thread; the panic must still become WorkerPanicked there.
        let err = run_sweep(4, 1, |i| if i == 2 { panic!("inline") } else { Ok::<_, ()>(i) })
            .unwrap_err();
        assert!(matches!(err, SweepError::WorkerPanicked { worker: 0 }), "got {err:?}");
        let err = run_sweep(1, 8, |_| -> Result<usize, ()> { panic!("single task") }).unwrap_err();
        assert!(matches!(err, SweepError::WorkerPanicked { worker: 0 }), "got {err:?}");
    }

    #[test]
    fn panic_aborts_unclaimed_tasks() {
        // Sequential single worker: nothing after the panicking index
        // may run, mirroring error_skips_unclaimed_tasks.
        let calls = AtomicUsize::new(0);
        let err = run_sweep(100, 1, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            if i == 3 {
                panic!("stop here");
            }
            Ok::<_, ()>(i)
        })
        .unwrap_err();
        assert!(matches!(err, SweepError::WorkerPanicked { .. }));
        assert_eq!(calls.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        // And the sweep accepts it.
        let out = run_sweep(9, 0, |i| Ok::<_, ()>(i)).unwrap();
        assert_eq!(out.len(), 9);
    }

    #[test]
    fn batched_claims_cover_every_task() {
        for batch in [1, 2, 3, 7, 100] {
            let cfg = SweepConfig::threads(4).with_batch(batch);
            let mut units = vec![(); 4];
            let out = run_sweep_with(23, &cfg, &mut units, |(), i| Ok::<_, ()>(3 * i)).unwrap();
            assert_eq!(out, (0..23).map(|i| 3 * i).collect::<Vec<_>>(), "batch {batch}");
        }
    }

    #[test]
    fn batch_zero_is_treated_as_one() {
        let cfg = SweepConfig::threads(2).with_batch(0);
        let mut units = vec![(); 2];
        let out = run_sweep_with(9, &cfg, &mut units, |(), i| Ok::<_, ()>(i)).unwrap();
        assert_eq!(out.len(), 9);
    }

    #[test]
    fn batched_error_aborts_and_reports_index() {
        let cfg = SweepConfig::threads(3).with_batch(4);
        let mut units = vec![(); 3];
        let err =
            run_sweep_with(64, &cfg, &mut units, |(), i| if i == 5 { Err("boom") } else { Ok(i) })
                .unwrap_err();
        assert!(matches!(err, SweepError::Task { index: 5, error: "boom" }), "got {err:?}");
    }

    #[test]
    fn workspaces_are_per_worker_and_reused() {
        // Each worker owns one workspace exclusively: the per-workspace
        // tallies must sum to the task count, and a workspace pool kept
        // across sweeps accumulates (i.e. is genuinely reused).
        let mut tallies = vec![0usize; 3];
        for _round in 0..2 {
            let cfg = SweepConfig::threads(3);
            run_sweep_with(30, &cfg, &mut tallies, |tally, i| {
                *tally += 1;
                Ok::<_, ()>(i)
            })
            .unwrap();
        }
        assert_eq!(tallies.iter().sum::<usize>(), 60);
    }

    #[test]
    fn worker_count_clamped_to_workspace_pool() {
        // 8 requested threads but a pool of 2: only 2 workers run, and
        // the inline path handles a pool of 1.
        let mut pool = vec![0usize; 2];
        let out = run_sweep_with(10, &SweepConfig::threads(8), &mut pool, |t, i| {
            *t += 1;
            Ok::<_, ()>(i)
        })
        .unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(pool.iter().sum::<usize>(), 10);
        let mut one = vec![0usize];
        run_sweep_with(5, &SweepConfig::threads(8), &mut one, |t, i| {
            *t += 1;
            Ok::<_, ()>(i)
        })
        .unwrap();
        assert_eq!(one[0], 5);
    }

    #[test]
    fn workspace_sweep_contains_panics() {
        let mut units = vec![(); 4];
        let err = run_sweep_with(16, &SweepConfig::threads(4), &mut units, |(), i| {
            if i == 7 {
                panic!("poisoned");
            }
            Ok::<_, ()>(i)
        })
        .unwrap_err();
        assert!(matches!(err, SweepError::WorkerPanicked { .. }), "got {err:?}");
    }

    #[test]
    fn display_formats() {
        let e: SweepError<&str> = SweepError::Task { index: 2, error: "bad" };
        assert!(e.to_string().contains("task 2"));
        let e: SweepError<&str> = SweepError::WorkerPanicked { worker: 1 };
        assert!(e.to_string().contains("panicked"));
    }
}
